//! Cross-crate integration: the full content-aware pipeline against
//! the baseline [19] on identical phantom material.

use medvt::analyze::AnalyzerConfig;
use medvt::core::{
    profile_video, Baseline19Controller, BaselineConfig, ContentAwareController, PipelineConfig,
    VideoProfile,
};
use medvt::encoder::EncoderConfig;
use medvt::frame::synth::{BodyPart, MotionPattern, PhantomVideo};
use medvt::frame::{Resolution, VideoClip};
use medvt::sched::WorkloadLut;

fn clip() -> VideoClip {
    PhantomVideo::builder(BodyPart::LungChest)
        .resolution(Resolution::new(192, 144))
        .motion(MotionPattern::Pan { dx: 1.0, dy: 0.3 })
        .seed(99)
        .build()
        .capture(17)
}

fn pipeline_config() -> PipelineConfig {
    PipelineConfig {
        analyzer: AnalyzerConfig {
            min_tile_width: 32,
            min_tile_height: 32,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn proposed() -> VideoProfile {
    let mut ctl = ContentAwareController::new(pipeline_config(), WorkloadLut::new());
    profile_video(
        "it",
        "lung_chest",
        &clip(),
        &mut ctl,
        &EncoderConfig::default(),
        false,
    )
}

fn baseline() -> VideoProfile {
    let mut ctl = Baseline19Controller::new(BaselineConfig {
        initial_cores_per_user: 4,
        ..Default::default()
    });
    ctl.set_rails_pinned(true);
    profile_video(
        "it",
        "lung_chest",
        &clip(),
        &mut ctl,
        &EncoderConfig::default(),
        false,
    )
}

#[test]
fn proposed_does_not_cost_more_than_baseline() {
    let p = proposed();
    let b = baseline();
    assert!(
        p.mean_frame_secs() <= b.mean_frame_secs(),
        "proposed {:.4}s vs baseline {:.4}s per frame",
        p.mean_frame_secs(),
        b.mean_frame_secs()
    );
}

#[test]
fn both_pipelines_meet_quality_floor() {
    let p = proposed();
    let b = baseline();
    assert!(p.mean_psnr_db > 36.0, "proposed psnr {}", p.mean_psnr_db);
    assert!(b.mean_psnr_db > 36.0, "baseline psnr {}", b.mean_psnr_db);
}

#[test]
fn proposed_tile_times_are_more_diverse() {
    // The paper's Fig. 3 point: content-aware tiles have diverse CPU
    // times (cheap borders, busy center) while capacity-balanced tiles
    // are deliberately uniform.
    let p = proposed();
    let b = baseline();
    let spread = |profile: &VideoProfile| {
        let f = &profile.frames[profile.frames.len() - 2];
        let times: Vec<f64> = f.tiles.iter().map(|t| t.fmax_secs).collect();
        let max = times.iter().copied().fold(0.0, f64::max);
        let min = times.iter().copied().fold(f64::INFINITY, f64::min);
        max / min.max(1e-12)
    };
    assert!(
        spread(&p) > spread(&b),
        "proposed spread {:.1} vs baseline {:.1}",
        spread(&p),
        spread(&b)
    );
}

#[test]
fn profiles_are_deterministic() {
    let a = proposed();
    let b = proposed();
    assert_eq!(a.frames.len(), b.frames.len());
    assert_eq!(a.mean_psnr_db, b.mean_psnr_db);
    assert_eq!(a.bitrate_mbps, b.bitrate_mbps);
    for (fa, fb) in a.frames.iter().zip(&b.frames) {
        assert_eq!(fa, fb);
    }
}

#[test]
fn gop_structure_shows_in_frame_kinds() {
    let p = proposed();
    assert_eq!(p.frames[0].kind, 'I');
    // Anchors at 8 and 16 are P (intra period 4 GOPs), mid-GOP are B.
    assert_eq!(p.frames[8].kind, 'P');
    assert_eq!(p.frames[4].kind, 'B');
    assert_eq!(p.frames[1].kind, 'B');
}

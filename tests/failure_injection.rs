//! Failure injection: misleading LUT seeds, oversubscribed queues,
//! degenerate content and deadline feedback under stress. The system
//! must degrade predictably, never panic or wedge.

use medvt::analyze::AnalyzerConfig;
use medvt::core::{
    Approach, ContentAwareController, FrameReport, PipelineConfig, ServerConfig, ServerSim,
    TileReport, TranscodeController, VideoProfile,
};
use medvt::encoder::{EncoderConfig, VideoEncoder};
use medvt::frame::synth::{BodyPart, MotionPattern, PhantomVideo};
use medvt::frame::{Rect, Resolution};
use medvt::sched::{Adjustment, FeedbackController, WorkloadLut};

const SLOT: f64 = 1.0 / 24.0;

fn pipeline_config() -> PipelineConfig {
    PipelineConfig {
        analyzer: AnalyzerConfig {
            min_tile_width: 32,
            min_tile_height: 32,
            ..Default::default()
        },
        ..Default::default()
    }
}

#[test]
fn poisoned_lut_recovers_through_observation() {
    // Seed a LUT with wildly wrong (tiny) estimates for everything the
    // pipeline will look up, then verify the online updates win.
    let clip = PhantomVideo::builder(BodyPart::Brain)
        .resolution(Resolution::new(192, 144))
        .motion(MotionPattern::Pan { dx: 1.0, dy: 0.0 })
        .seed(7)
        .build()
        .capture(17);
    let mut ctl = ContentAwareController::new(pipeline_config(), WorkloadLut::new());
    VideoEncoder::new(EncoderConfig::default()).encode_clip(&clip, &mut ctl);
    let mut reports = ctl.drain_reports();
    reports.sort_by_key(|r| r.poc);
    let measured: f64 = reports
        .last()
        .map(|r| r.tiles.iter().map(|t| t.fmax_secs).sum())
        .unwrap_or(0.0);
    let estimated: f64 = ctl.demand_secs().iter().sum();
    // After 17 frames of observations the estimate tracks reality
    // within a small factor regardless of the cold-start model.
    assert!(
        estimated / measured < 3.0 && measured / estimated < 3.0,
        "estimate {estimated} vs measured {measured}"
    );
}

#[test]
fn oversubscribed_queue_never_panics_and_reports_misses() {
    // Every user demands more than a whole core: only a few fit; the
    // rest are rejected, and nothing crashes.
    let tiles: Vec<TileReport> = (0..4)
        .map(|i| TileReport {
            rect: Rect::new(i * 64, 0, 64, 64),
            cycles: (SLOT * 0.5 * 3.6e9) as u64,
            fmax_secs: SLOT * 0.5,
            bits: 1000,
            psnr_db: 40.0,
        })
        .collect();
    let heavy = VideoProfile {
        name: "heavy".into(),
        class: "x".into(),
        fps: 24.0,
        frames: (0..8)
            .map(|poc| FrameReport {
                poc,
                kind: 'B',
                tiles: tiles.clone(),
            })
            .collect(),
        mean_psnr_db: 40.0,
        bitrate_mbps: 3.0,
    };
    let sim = ServerSim::new(ServerConfig {
        queue_len: 100,
        sim_slots: 24,
        ..Default::default()
    });
    let report = sim.serve_max(&[heavy], Approach::Proposed);
    // 2 cores/user → at most 16 admitted of 100.
    assert!(report.users_served <= 16);
    assert!(report.users_served >= 10);
    assert!(report.avg_power_w > 0.0);
}

#[test]
fn all_black_video_encodes_cheaply() {
    // Degenerate content: nothing to analyze, nothing to code.
    let black = medvt::frame::VideoClip::from_frames(
        Resolution::new(160, 128),
        24.0,
        vec![medvt::frame::Frame::black(Resolution::new(160, 128)); 9],
    );
    let mut ctl = ContentAwareController::new(pipeline_config(), WorkloadLut::new());
    let stats = VideoEncoder::new(EncoderConfig::default()).encode_clip(&black, &mut ctl);
    // ±1 code of quantization residue remains → ~48 dB.
    assert!(stats.mean_psnr() > 45.0, "psnr={}", stats.mean_psnr());
    // B frames sit at the per-block header floor, below the IDR.
    let b_bits = stats.frames[4].bits();
    assert!(b_bits < stats.frames[0].bits(), "b={b_bits}");
}

#[test]
fn feedback_loop_stabilizes_under_sustained_overload() {
    // Drive the deadline feedback with a persistently slow encoder and
    // verify it keeps requesting lightening (not flapping to Restore).
    let mut fc = FeedbackController::new(24.0);
    let slot = fc.slot_secs();
    let mut lightens = 0;
    let mut restores = 0;
    for _ in 0..48 {
        match fc.on_frame(slot * 1.4, &[slot * 1.4, slot * 0.2], true) {
            Adjustment::Lighten { .. } => lightens += 1,
            Adjustment::Restore => restores += 1,
            Adjustment::None => {}
        }
    }
    assert!(lightens > 40, "sustained overload must keep lightening");
    assert_eq!(restores, 0, "no restore while behind schedule");
    assert!(fc.window_hit_rate() < 0.5);
}

#[test]
fn single_frame_video_profile_schedules() {
    // A one-frame "video" exercises every wrap-around path.
    let clip = PhantomVideo::builder(BodyPart::Cardiac)
        .resolution(Resolution::new(160, 128))
        .seed(3)
        .build()
        .capture(1);
    let mut ctl = ContentAwareController::new(pipeline_config(), WorkloadLut::new());
    let profile = medvt::core::profile_video(
        "one",
        "cardiac",
        &clip,
        &mut ctl,
        &EncoderConfig::default(),
        false,
    );
    assert_eq!(profile.frames.len(), 1);
    let sim = ServerSim::new(ServerConfig {
        queue_len: 4,
        sim_slots: 24,
        ..Default::default()
    });
    let report = sim.serve_max(&[profile], Approach::Proposed);
    assert!(report.users_served >= 1);
}

//! Backend equivalence: the placement-aware `ThreadPoolBackend` must
//! be a pure *where-it-runs* decision — bit-identical reconstructions,
//! bits and PSNR versus the serial reference path, deterministic
//! across runs, and faithful to `place_threads` core assignments.

use medvt::core::{ContentAwareController, PipelineConfig};
use medvt::encoder::{
    encode_frame, encode_frame_with, EncoderConfig, FramePlan, Qp, TileConfig, UniformController,
    VideoEncoder,
};
use medvt::frame::synth::{BodyPart, MotionPattern, PhantomVideo};
use medvt::frame::{FrameKind, Resolution};
use medvt::mpsoc::{Platform, PowerModel};
use medvt::runtime::ThreadPoolBackend;
use medvt::sched::WorkloadLut;

fn pool(workers: usize) -> ThreadPoolBackend {
    ThreadPoolBackend::with_workers(Platform::quad_core(), PowerModel::default(), workers)
}

fn clip(frames: usize) -> medvt::frame::VideoClip {
    PhantomVideo::builder(BodyPart::Cardiac)
        .resolution(Resolution::new(256, 192))
        .motion(MotionPattern::Pan { dx: 1.0, dy: 0.5 })
        .seed(41)
        .build()
        .capture(frames)
}

/// A 16-tile frame encoded on the pool matches the serial encode in
/// every byte of the bitstream and every reconstructed sample.
#[test]
fn pool_frame_is_bit_identical_to_serial() {
    let frame = clip(1).get(0).expect("one frame").clone();
    let plan = FramePlan::uniform(
        frame.y().bounds(),
        4,
        4,
        TileConfig::with_qp(Qp::new(27).expect("valid")),
    );
    let serial = encode_frame(
        &frame,
        &[],
        FrameKind::Intra,
        0,
        &plan,
        &EncoderConfig::default(),
        false,
    );
    for workers in [1, 2, 4, 8] {
        let backend = pool(workers);
        let pooled = encode_frame_with(
            &frame,
            &[],
            FrameKind::Intra,
            0,
            &plan,
            &EncoderConfig::default(),
            &backend,
            None,
        );
        assert_eq!(serial.bytes, pooled.bytes, "bitstream at {workers} workers");
        assert_eq!(serial.recon, pooled.recon, "recon at {workers} workers");
        assert_eq!(serial.stats, pooled.stats, "stats at {workers} workers");
    }
}

/// A whole multi-tile clip through the content-aware pipeline produces
/// identical per-tile bits and PSNR on the pool and on the serial path.
#[test]
fn pool_clip_matches_serial_bits_and_psnr() {
    let clip = clip(9);
    let cfg = PipelineConfig {
        analyzer: medvt::analyze::AnalyzerConfig {
            min_tile_width: 32,
            min_tile_height: 32,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut serial_ctl = ContentAwareController::new(cfg, WorkloadLut::new());
    let serial = VideoEncoder::new(EncoderConfig::default()).encode_clip(&clip, &mut serial_ctl);
    let backend = pool(4);
    let mut pool_ctl = ContentAwareController::new(cfg, WorkloadLut::new());
    let pooled = VideoEncoder::new(EncoderConfig::default()).encode_clip_with(
        &clip,
        &mut pool_ctl,
        &backend,
    );
    assert_eq!(serial, pooled, "sequence stats must match bit for bit");
    assert!(serial.mean_psnr() > 30.0);
}

/// Two pool runs of the same clip are identical (no scheduling
/// nondeterminism leaks into the output).
#[test]
fn pool_runs_are_deterministic() {
    let clip = clip(9);
    let encode_once = || {
        let backend = pool(3);
        let mut ctl =
            UniformController::new(4, 2, TileConfig::with_qp(Qp::new(32).expect("valid")));
        VideoEncoder::new(EncoderConfig::default()).encode_clip_with(&clip, &mut ctl, &backend)
    };
    let first = encode_once();
    let second = encode_once();
    assert_eq!(first, second);
}

/// The pool runs every tile exactly where `place_threads` put it —
/// observable through the per-core execution log.
#[test]
fn pool_respects_place_threads_assignments() {
    let frame = clip(1).get(0).expect("one frame").clone();
    let plan = FramePlan::uniform(
        frame.y().bounds(),
        4,
        4,
        TileConfig::with_qp(Qp::new(32).expect("valid")),
    );
    let backend = pool(4);
    // The placement the backend derives from the tiles' cost hints
    // (Algorithm 2's place_threads over the worker set).
    let costs: Vec<f64> = plan.tiles.iter().map(|t| t.area() as f64).collect();
    let expected = backend.place_for_costs(&costs);
    assert_eq!(expected.len(), 16);

    backend.set_logging(true);
    let _ = encode_frame_with(
        &frame,
        &[],
        FrameKind::Intra,
        0,
        &plan,
        &EncoderConfig::default(),
        &backend,
        None,
    );
    let log = backend.drain_log();
    backend.set_logging(false);
    assert_eq!(log.len(), 16, "one log record per tile");
    for record in &log {
        assert_eq!(
            record.worker,
            expected[record.item] % 4,
            "tile {} ran on worker {} but was placed on core {}",
            record.item,
            record.worker,
            expected[record.item]
        );
    }
    // Uniform tiles on 4 workers: the placement balances 4 tiles per
    // worker, so every worker participated.
    for w in 0..4 {
        assert!(
            log.iter().any(|r| r.worker == w),
            "worker {w} never ran a tile"
        );
    }
}

/// Explicit core assignments (the server path) are honoured verbatim.
#[test]
fn pool_honours_explicit_assignment() {
    let frame = clip(1).get(0).expect("one frame").clone();
    let plan = FramePlan::uniform(
        frame.y().bounds(),
        2,
        2,
        TileConfig::with_qp(Qp::new(32).expect("valid")),
    );
    let backend = pool(4);
    let assignment = vec![3, 1, 1, 0];
    backend.set_logging(true);
    let with_assignment = encode_frame_with(
        &frame,
        &[],
        FrameKind::Intra,
        0,
        &plan,
        &EncoderConfig::default(),
        &backend,
        Some(&assignment),
    );
    let log = backend.drain_log();
    backend.set_logging(false);
    for record in &log {
        assert_eq!(record.worker, assignment[record.item]);
    }
    // And the output still matches the serial reference.
    let serial = encode_frame(
        &frame,
        &[],
        FrameKind::Intra,
        0,
        &plan,
        &EncoderConfig::default(),
        false,
    );
    assert_eq!(serial.bytes, with_assignment.bytes);
    assert_eq!(serial.recon, with_assignment.recon);
}

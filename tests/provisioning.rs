//! Provisioning-layer conservation and parity tests.
//!
//! The degrade-on-evict path re-enters evicted users into the request
//! queue one deadline class lower, which makes user accounting easy to
//! get subtly wrong (lost users, duplicated admissions, queue-order
//! corruption). These tests pin it down:
//!
//! * **conservation** — replaying the decision stream as a per-user
//!   state machine proves every user is in exactly one legal state at
//!   every step (a `Downgrade` may only follow that user's `Evict`, an
//!   `Admit` requires the user to be queued — catching duplication and
//!   loss), bounded by the deadline ladder's depth, and that the final
//!   census reconciles with the report's counters.
//! * **parity** — with the default unlimited [`CostPlan`] the
//!   optimized controller must stay bit-identical to the frozen
//!   reference controller, and a budgeted + degrading run must replay
//!   the same decision stream on analytical and thread-pool shards.

use medvt::admission::{
    replay_cost, serve_online, serve_online_reference, synthesize_trace, AdmissionEvent, CostPlan,
    EventKind, OnlineConfig, TraceConfig, UserRequest,
};
use medvt::core::VideoProfile;
use medvt::mpsoc::{Platform, PowerModel};
use medvt::runtime::{SimBackend, ThreadPoolBackend};
use medvt_bench::synthetic_profile as profile;
use proptest::prelude::*;
use std::collections::BTreeMap;

const HORIZON: usize = 144;

/// 1 / 2 / 3 admission cores at 1.15 headroom; under a lying 0.6
/// headroom the same tiles overcommit shards and force evictions.
fn tier_profiles() -> Vec<VideoProfile> {
    let unit = (1.0 / 24.0) * 0.25 / 1.15;
    vec![
        profile("prov-light", "brain", 4, unit),
        profile("prov-standard", "spine", 8, unit),
        profile("prov-heavy", "cardiac", 12, unit),
    ]
}

fn bl_shards() -> Vec<SimBackend> {
    let bl = Platform::big_little();
    (0..2)
        .map(|s| SimBackend::new(bl.socket_view(s), PowerModel::default()))
        .collect()
}

fn trace_for(arrivals: f64, seed: u64) -> Vec<UserRequest> {
    synthesize_trace(&TraceConfig {
        horizon_slots: HORIZON,
        arrivals_per_slot: arrivals,
        min_session_slots: 24,
        tail_alpha: 1.5,
        profiles: 3,
        seed,
    })
}

/// Per-user lifecycle derived from the decision stream.
#[derive(Debug, Clone, Copy, PartialEq)]
enum UserState {
    Queued,
    Active,
    Evicted,
    Terminal,
}

/// Replays `events` as a per-user state machine, panicking on any
/// illegal transition, and returns the final state census plus the
/// per-user downgrade counts.
fn replay_states(
    trace: &[UserRequest],
    horizon: usize,
    events: &[AdmissionEvent],
) -> (BTreeMap<usize, UserState>, BTreeMap<usize, usize>) {
    let mut state: BTreeMap<usize, UserState> = trace
        .iter()
        .filter(|r| r.arrival_slot < horizon)
        .map(|r| (r.user, UserState::Queued))
        .collect();
    let mut downgrades: BTreeMap<usize, usize> = BTreeMap::new();
    for e in events {
        let s = state
            .get_mut(&e.user)
            .unwrap_or_else(|| panic!("event for user {} outside the horizon's trace", e.user));
        *s = match (e.kind, *s) {
            (EventKind::Admit, UserState::Queued) => UserState::Active,
            (EventKind::Depart, UserState::Active) => UserState::Terminal,
            (EventKind::Evict, UserState::Active) => UserState::Evicted,
            (EventKind::Downgrade, UserState::Evicted) => {
                *downgrades.entry(e.user).or_insert(0) += 1;
                UserState::Queued
            }
            (EventKind::Abandon, UserState::Queued) | (EventKind::Reject, UserState::Queued) => {
                UserState::Terminal
            }
            (kind, from) => panic!(
                "illegal transition for user {} at slot {}: {kind:?} from {from:?}",
                e.user, e.slot
            ),
        };
    }
    (state, downgrades)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every user the controller ever touches is in exactly one legal
    /// lifecycle state, never lost and never duplicated, even while
    /// budget-constrained admission and eviction-degradation churn the
    /// queue; and the final census reconciles with the report.
    #[test]
    fn degrading_controller_conserves_users(
        arrivals in 0.3f64..1.4,
        seed in 0u64..400,
        budget in 3.0f64..15.0,
    ) {
        let tiers = tier_profiles();
        let trace = trace_for(arrivals, seed);
        prop_assume!(!trace.is_empty());
        let cfg = OnlineConfig {
            horizon_slots: HORIZON,
            headroom: 0.6, // overcommit: evictions and downgrades happen
            cost: CostPlan {
                credits_per_core_window: 1.0,
                budget_credits_per_window: budget,
                degrade_on_evict: true,
            },
            ..Default::default()
        };
        let report = serve_online(&cfg, &tiers, &trace, bl_shards());
        let (census, downgrades) = replay_states(&trace, HORIZON, &report.events);

        // The ladder has exactly two downward steps below Strict.
        for (&user, &n) in &downgrades {
            prop_assert!(n <= 2, "user {user} downgraded {n} times");
        }

        // Census vs report counters.
        let count = |want: UserState| census.values().filter(|&&s| s == want).count();
        prop_assert_eq!(count(UserState::Active), report.active_at_end);
        prop_assert_eq!(count(UserState::Queued), report.queued_at_end);
        let total_downgrades: usize = downgrades.values().sum();
        // Dropped-for-good users sit in Evicted: every eviction either
        // degraded back into the queue or ended the session.
        prop_assert_eq!(count(UserState::Evicted), report.evictions - total_downgrades);
        // Queue flow conservation: pushes (arrivals + re-entries) =
        // pops (admissions + abandons + rejects) + still queued.
        prop_assert_eq!(
            report.arrivals + total_downgrades,
            report.admissions + report.abandoned + report.rejected + report.queued_at_end
        );
        // Active flow conservation.
        prop_assert_eq!(
            report.admissions,
            report.departures + report.evictions + report.active_at_end
        );
        // The replayed spend trajectory respects the budget window by
        // window — the controller's own ledger, audited from outside.
        let cost = replay_cost(&cfg, &tiers, &trace, &report);
        prop_assert!(cost.within_budget,
            "peak window spend {} over budget {budget}", cost.peak_window_credits);
        prop_assert_eq!(cost.downgrades, total_downgrades);
    }

    /// With the default (unlimited, non-degrading) cost plan the
    /// optimized controller replays the frozen reference bit for bit
    /// on the same random traces the conservation test churns.
    #[test]
    fn unlimited_budget_replays_the_reference_stream(
        arrivals in 0.3f64..1.4,
        seed in 0u64..400,
    ) {
        let tiers = tier_profiles();
        let trace = trace_for(arrivals, seed);
        let cfg = OnlineConfig {
            horizon_slots: HORIZON,
            ..Default::default()
        };
        prop_assert!(!cfg.cost.is_budgeted());
        let fast = serve_online(&cfg, &tiers, &trace, bl_shards());
        let slow = serve_online_reference(&cfg, &tiers, &trace, bl_shards());
        prop_assert_eq!(&fast.events, &slow.events);
        prop_assert_eq!(fast.windows, slow.windows);
        prop_assert_eq!(fast.window_misses, slow.window_misses);
        prop_assert_eq!(fast.energy_j, slow.energy_j);
        prop_assert_eq!(fast.admissions, slow.admissions);
        prop_assert_eq!(fast.evictions, slow.evictions);
    }
}

/// A budgeted, degrading run makes identical decisions on analytical
/// and thread-pool shards: the cost ledger reads only backend-shared
/// accounting.
#[test]
fn budgeted_degrading_decisions_are_backend_independent() {
    let tiers = tier_profiles();
    let trace = trace_for(0.9, 42);
    let cfg = OnlineConfig {
        horizon_slots: HORIZON,
        headroom: 0.6,
        cost: CostPlan {
            credits_per_core_window: 1.0,
            budget_credits_per_window: 6.0,
            degrade_on_evict: true,
        },
        ..Default::default()
    };
    let bl = Platform::big_little();
    let sim: Vec<SimBackend> = (0..2)
        .map(|s| SimBackend::new(bl.socket_view(s), PowerModel::default()))
        .collect();
    let pool: Vec<ThreadPoolBackend> = (0..2)
        .map(|s| ThreadPoolBackend::with_workers(bl.socket_view(s), PowerModel::default(), 2))
        .collect();
    let a = serve_online(&cfg, &tiers, &trace, sim);
    let b = serve_online(&cfg, &tiers, &trace, pool);
    assert_eq!(a.events, b.events, "budgeted decision streams diverged");
    assert!(
        a.events.iter().any(|e| e.kind == EventKind::Downgrade),
        "the scenario must exercise degradation"
    );
    assert!(
        a.events.iter().any(|e| e.kind == EventKind::Evict),
        "the scenario must exercise eviction"
    );
}

//! Live multi-user transcoding through the online serving loop: real
//! tile encodes on the thread-pool shards must (1) not perturb a
//! single admission/eviction decision relative to analytical shards,
//! (2) produce bitstreams byte-identical to calling `encode_tile`
//! directly, and (3) keep the measured-vs-modeled window-time ratio
//! inside a documented tolerance.

use medvt::admission::{serve_online, DeadlineClass, UserRequest, Workload};
use medvt::encoder::CostModel;
use medvt::frame::synth::BodyPart;
use medvt::mpsoc::{Platform, PowerModel};
use medvt::runtime::{SimBackend, ThreadPoolBackend};
use medvt_bench::{live_online_config, live_workload, suggested_host_speed_factor};

/// The CI scenario's documented measured/modeled tolerance band.
///
/// The modeled window time prices reference f_max-seconds of the
/// content-aware pipeline's cost model; the measured time is a real
/// re-encode on whatever CPU runs the tests. The two differ by the
/// host-vs-reference speed factor and the cost model's calibration,
/// both of which are environment constants of order one — observed
/// ratios sit around 0.3–0.6 on 4-vCPU CI-class hosts. The band below
/// is deliberately wide (±~30x of that) so the test flags only
/// *structural* model breakage (runaway queueing, lost work, modeled
/// time decoupled from workload), never mere host-speed variation.
const RATIO_LO: f64 = 0.02;
const RATIO_HI: f64 = 50.0;

fn trace(users: usize) -> Vec<UserRequest> {
    (0..users)
        .map(|u| UserRequest {
            user: u,
            arrival_slot: 0,
            profile: 0,
            class: DeadlineClass::Standard,
            departure_slot: None,
        })
        .collect()
}

#[test]
fn live_path_matches_model_and_direct_encoding() {
    // The exact CI scenario `bench --bin live` runs, via the shared
    // medvt-bench fixture — the bench and this test cannot drift.
    let workloads = vec![live_workload("live-ci", BodyPart::Brain, "brain", 11).with_capture()];
    let cfg = live_online_config(48);
    let platform = Platform::quad_core();
    let power = PowerModel::default();
    let trace = trace(3);

    // Reference decision stream: analytical shards never run closures.
    let reference = serve_online(
        &cfg,
        &workloads,
        &trace,
        vec![SimBackend::new(platform.clone(), power)],
    );
    assert_eq!(
        workloads[0].captured_tiles(),
        0,
        "analytical shards must not execute work"
    );
    assert!(reference.admissions > 0, "scenario must admit users");

    // Live run: the same trace on a real worker pool.
    let live = serve_online(
        &cfg,
        &workloads,
        &trace,
        vec![ThreadPoolBackend::with_workers(platform, power, 2)],
    );

    // (1) Decision parity: live execution perturbs nothing.
    assert_eq!(
        live.events, reference.events,
        "live shards must replay the analytical admit/evict stream"
    );
    assert_eq!(live.windows, reference.windows);
    assert_eq!(live.window_misses, reference.window_misses);

    // (2) Bit identity: every tile the pool encoded matches a direct
    // `encode_tile` call with the same arguments, regardless of which
    // worker (and which reused `EncScratch`) produced it.
    let w = &workloads[0];
    assert!(w.captured_tiles() > 0, "live run must encode tiles");
    let mut compared = 0usize;
    for slot in 0..w.frame_count() {
        for thread in 0..w.demand_at(slot).len() {
            if let Some(captured) = w.captured(slot, thread) {
                let direct = w
                    .encode_direct(slot, thread)
                    .expect("profiled tile encodes")
                    .bytes;
                assert_eq!(
                    captured, direct,
                    "live bitstream differs from direct encode at \
                     frame {slot} tile {thread}"
                );
                compared += 1;
            }
        }
    }
    assert!(compared > 0, "bit-identity check must cover encoded tiles");

    // (3) Measured vs modeled window time within the documented band.
    let ratio = live
        .window_time_ratio()
        .expect("live run executes real work in modeled windows");
    assert!(
        (RATIO_LO..=RATIO_HI).contains(&ratio),
        "measured/modeled window-time ratio {ratio} outside the \
         documented [{RATIO_LO}, {RATIO_HI}] tolerance"
    );
    // The analytical run ran no wall-clock work at all.
    assert_eq!(reference.measured_window_secs(), 0.0);
    assert!(reference.modeled_window_secs() > 0.0);
    // Both runs model identical window time — the model does not see
    // execution.
    assert!(
        (live.modeled_window_secs() - reference.modeled_window_secs()).abs() < 1e-12,
        "modeled time must be backend-independent"
    );

    // (4) Host calibration round trip: the rho the live bench suggests
    // from this measured/modeled band, fed back through
    // `CostModel::with_host_speed_factor`, must scale modeled time
    // onto measured time — the automated closing of the validation
    // loop.
    let rho = suggested_host_speed_factor(&[ratio]).expect("ratio observed");
    assert!((RATIO_LO..=RATIO_HI).contains(&rho));
    let calibrated = CostModel::with_host_speed_factor(rho);
    let base = CostModel::default();
    // Calibration is a uniform rescaling: every modeled tile time
    // scales by exactly rho...
    let probe = medvt::encoder::TileStats {
        sad_samples: 50_000,
        transform_samples: 12_288,
        bits: 40_000,
        intra_blocks: 8,
        inter_blocks: 40,
        ..medvt::encoder::TileStats::new(medvt::frame::Rect::new(0, 0, 64, 64))
    };
    let scale = calibrated.tile_seconds(&probe, 3.6e9) / base.tile_seconds(&probe, 3.6e9);
    assert!(
        (scale - rho).abs() / rho < 1e-6,
        "with_host_speed_factor must rescale tile time by rho \
         (up to whole-cycle quantization): scale {scale}, rho {rho}"
    );
    // ...so the calibrated model's prediction of this run's window
    // time lands on the measurement.
    let predicted = live.modeled_window_secs() * rho;
    assert!(
        (predicted - live.measured_window_secs()).abs() <= 1e-9 * live.measured_window_secs(),
        "calibrated model must predict the measured window time \
         (predicted {predicted}, measured {})",
        live.measured_window_secs()
    );
}

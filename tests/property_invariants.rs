//! Cross-crate property tests: the system-level invariants that must
//! hold for arbitrary content and parameters.

use medvt::analyze::{AnalyzerConfig, CapacityBalancedTiler, Retiler};
use medvt::encoder::bits::BitWriter;
use medvt::encoder::{code_residual, EncoderConfig, FramePlan, Qp, TileConfig};
use medvt::frame::synth::{render_canvas, BodyPart, ValueNoise};
use medvt::frame::{Plane, Rect};
use medvt::mpsoc::{plan_core, DvfsPolicy, Platform};
use medvt::sched::{allocate, UserDemand};
use proptest::prelude::*;

const SLOT: f64 = 1.0 / 24.0;

/// Deterministic textured plane from a seed.
fn textured_plane(w: usize, h: usize, seed: u64) -> Plane {
    let noise = ValueNoise::new(seed);
    let mut p = Plane::new(w, h);
    for row in 0..h {
        for col in 0..w {
            let v = 20.0 + 210.0 * noise.fractal(col as f64, row as f64, 0.07, 3);
            p.set(col, row, v.clamp(0.0, 255.0) as u8);
        }
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The content-aware re-tiler must produce an exact partition for
    /// any anatomy class, seed and (8-aligned) frame geometry.
    #[test]
    fn retiler_always_partitions(
        seed in 0u64..1000,
        part_idx in 0usize..6,
        wu in 24usize..48,   // width units of 8
        hu in 20usize..40,
    ) {
        let w = wu * 8;
        let h = hu * 8;
        let canvas = render_canvas(
            BodyPart::ALL[part_idx],
            w,
            h,
            w as f64 * 0.26,
            h as f64 * 0.26,
            seed,
            1.0,
        );
        let retiler = Retiler::new(AnalyzerConfig {
            min_tile_width: 32,
            min_tile_height: 32,
            ..Default::default()
        }).expect("valid config");
        let outcome = retiler.retile(&canvas, None);
        prop_assert_eq!(outcome.tiling.covered_area(), w * h);
        prop_assert!(outcome.tiling.len() >= 4);
        prop_assert!(outcome.tiling.len() <= 16);
        // Valid as an encoder plan too.
        let plan = FramePlan {
            tiles: outcome.tiling.tiles().to_vec(),
            configs: vec![TileConfig::default(); outcome.tiling.len()],
        };
        prop_assert!(plan.validate(&Rect::frame(w, h)).is_ok());
    }

    /// The capacity tiler must hand back exactly one tile per core for
    /// any core count its layout supports.
    #[test]
    fn capacity_tiler_one_tile_per_core(
        seed in 0u64..500,
        cores in 1usize..9,
    ) {
        let luma = textured_plane(320, 240, seed);
        let tiling = CapacityBalancedTiler::new(cores).tile(&luma);
        prop_assert_eq!(tiling.len(), cores);
        prop_assert_eq!(tiling.covered_area(), 320 * 240);
    }

    /// Algorithm 2 never loses threads, never exceeds the platform and
    /// admission is monotone: admitted demand fits the core budget.
    #[test]
    fn allocator_conserves_threads_and_budget(
        user_count in 1usize..12,
        tiles in 1usize..8,
        demand_ms in 1u32..45,
    ) {
        let users: Vec<UserDemand> = (0..user_count)
            .map(|u| UserDemand::new(
                u,
                vec![demand_ms as f64 * 1e-3 / tiles as f64; tiles],
            ))
            .collect();
        let alloc = allocate(16, SLOT, &users);
        let fps = 1.0 / SLOT;
        let admitted_demand: f64 = users
            .iter()
            .filter(|u| alloc.admitted.contains(&u.user))
            .map(|u| u.core_demand(fps))
            .sum();
        prop_assert!(admitted_demand <= 16.0 + 1e-6);
        prop_assert_eq!(
            alloc.placements.len(),
            alloc.admitted.len() * tiles
        );
        let placed: f64 = alloc.placements.iter().map(|p| p.secs).sum();
        let expected: f64 = users
            .iter()
            .filter(|u| alloc.admitted.contains(&u.user))
            .map(|u| u.total_secs())
            .sum();
        prop_assert!((placed - expected).abs() < 1e-9);
    }

    /// Per-core DVFS planning conserves work: what ran plus what
    /// carried equals what was assigned, at every policy.
    #[test]
    fn dvfs_plans_conserve_work(
        load_frac in 0.0f64..2.5,
        policy_idx in 0usize..3,
    ) {
        let platform = Platform::quad_core();
        let policy = [
            DvfsPolicy::StretchToDeadline,
            DvfsPolicy::RaceToIdle,
            DvfsPolicy::PinnedMax,
        ][policy_idx];
        let load = SLOT * load_frac;
        let plan = plan_core(&platform, policy, load, SLOT, platform.fmin());
        // Work executed in fmax-seconds. Only the transition *into*
        // the busy frequency precedes work; the drop to idle during
        // slack is outside the busy period.
        let transition_overhead =
            platform.dvfs_transition_secs * plan.transitions.min(1) as f64;
        let ran_fmax = ((plan.busy_secs - transition_overhead).max(0.0)
            / platform.fmax().hz() as f64)
            * plan.freq.hz() as f64;
        prop_assert!(
            (ran_fmax + plan.carry_fmax_secs - load).abs() < 1e-6,
            "ran {} + carry {} != load {}",
            ran_fmax,
            plan.carry_fmax_secs,
            load
        );
        prop_assert!(plan.busy_secs <= SLOT + 1e-12);
    }

    /// Residual coding round-trips within the quantizer step for any
    /// content and QP.
    #[test]
    fn residual_coding_bounded_error(
        seed in 0u64..500,
        qp_val in 10u8..=51,
    ) {
        let orig = textured_plane(16, 16, seed);
        let pred = textured_plane(16, 16, seed.wrapping_add(17));
        let qp = Qp::new(qp_val).expect("valid");
        let mut w = BitWriter::new();
        let out = code_residual(
            orig.samples(),
            pred.samples(),
            16,
            16,
            8,
            qp,
            &mut w,
        );
        prop_assert!(out.bits >= 4, "four sub-blocks, one flag each");
        // Per-sample error bounded by ~step (DCT spreads quantization
        // error; bound with a generous constant).
        let max_err = orig
            .samples()
            .iter()
            .zip(&out.recon)
            .map(|(&a, &b)| (a as i16 - b as i16).unsigned_abs())
            .max()
            .unwrap_or(0);
        prop_assert!(
            (max_err as f64) <= qp.step_size() * 4.0 + 2.0,
            "max_err {} step {}",
            max_err,
            qp.step_size()
        );
    }
}

#[test]
fn encoder_config_rejects_bad_blocks() {
    for bs in [0usize, 4, 12, 20] {
        let cfg = EncoderConfig {
            block_size: bs,
            ..Default::default()
        };
        assert!(cfg.validate().is_err(), "block size {bs} must be rejected");
    }
}

//! Integration of profiling, Algorithm 2, the baseline allocator and
//! the MPSoC slot simulation — the machinery behind Table II and
//! Fig. 4 at test scale.

use medvt::core::{Approach, FrameReport, ServerConfig, ServerSim, TileReport, VideoProfile};
use medvt::frame::Rect;
use medvt::mpsoc::{DvfsPolicy, Platform, PowerModel};

const SLOT: f64 = 1.0 / 24.0;

/// Synthetic profile with per-tile times mimicking the paper's Fig. 3
/// content-aware tiling: busy center tiles, cheap border tiles,
/// Σ ≈ 0.0765 s per frame (≈1.8 slots at 24 fps).
fn content_aware_profile() -> VideoProfile {
    let times = [
        0.020, 0.018, 0.015, 0.010, 0.004, 0.003, 0.002, 0.002, 0.002, 0.0005,
    ];
    let tiles: Vec<TileReport> = times
        .iter()
        .enumerate()
        .map(|(i, &secs)| TileReport {
            rect: Rect::new((i % 5) * 64, (i / 5) * 64, 64, 64),
            cycles: (secs * 3.6e9) as u64,
            fmax_secs: secs,
            bits: 8_000,
            psnr_db: 40.5,
        })
        .collect();
    VideoProfile {
        name: "content-aware".into(),
        class: "brain".into(),
        fps: 24.0,
        frames: (0..8)
            .map(|poc| FrameReport {
                poc,
                kind: 'B',
                tiles: tiles.clone(),
            })
            .collect(),
        mean_psnr_db: 40.5,
        bitrate_mbps: 2.23,
    }
}

/// Capacity-balanced profile: 5 uniform tiles near core capacity
/// (paper Fig. 3a: Σ ≈ 0.159 s per frame).
fn baseline_profile() -> VideoProfile {
    let tiles: Vec<TileReport> = (0..5)
        .map(|i| TileReport {
            rect: Rect::new(i * 128, 0, 128, 240),
            cycles: (0.032 * 3.6e9) as u64,
            fmax_secs: 0.032,
            bits: 9_000,
            psnr_db: 40.6,
        })
        .collect();
    VideoProfile {
        name: "baseline".into(),
        class: "brain".into(),
        fps: 24.0,
        frames: (0..8)
            .map(|poc| FrameReport {
                poc,
                kind: 'B',
                tiles: tiles.clone(),
            })
            .collect(),
        mean_psnr_db: 40.6,
        bitrate_mbps: 2.23,
    }
}

fn sim() -> ServerSim {
    ServerSim::new(ServerConfig {
        queue_len: 40,
        sim_slots: 24,
        ..Default::default()
    })
}

#[test]
fn paper_like_workloads_give_paper_like_user_ratio() {
    // Proposed: Σ 0.0765 s/frame ≈ 1.84 slots → ≈2.1 fractional cores
    // per user with headroom. Baseline: 5 tiles, one core each.
    let s = sim();
    let prop = s.serve_max(&[content_aware_profile()], Approach::Proposed);
    let base = s.serve_max(&[baseline_profile()], Approach::Baseline);
    assert_eq!(base.users_served, 6, "32 cores / 5 tiles");
    assert!(
        prop.users_served >= 12,
        "proposed packs ~2 cores/user: {}",
        prop.users_served
    );
    let ratio = prop.users_served as f64 / base.users_served as f64;
    assert!(
        (1.3..=3.5).contains(&ratio),
        "user ratio {ratio} out of plausible band"
    );
}

#[test]
fn proposed_uses_less_power_at_equal_throughput() {
    let s = sim();
    for n in [1usize, 2, 4, 6] {
        let savings = s
            .power_savings_percent(&[content_aware_profile()], &[baseline_profile()], n)
            .expect("both serve n users");
        assert!(savings > 0.0, "n={n}: savings {savings}%");
    }
}

#[test]
fn savings_grow_with_user_count() {
    let s = sim();
    let at = |n| {
        s.power_savings_percent(&[content_aware_profile()], &[baseline_profile()], n)
            .expect("feasible")
    };
    let low = at(1);
    let high = at(6);
    assert!(
        high >= low * 0.8,
        "savings should not collapse with load: {low}% → {high}%"
    );
}

#[test]
fn stretch_policy_saves_energy_vs_race() {
    let profiles = [content_aware_profile()];
    let stretch = ServerSim::new(ServerConfig {
        policy: DvfsPolicy::StretchToDeadline,
        queue_len: 8,
        sim_slots: 24,
        ..Default::default()
    });
    let race = ServerSim::new(ServerConfig {
        policy: DvfsPolicy::RaceToIdle,
        queue_len: 8,
        sim_slots: 24,
        ..Default::default()
    });
    let e_stretch = stretch
        .serve_fixed(&profiles, 4, Approach::Proposed)
        .unwrap()
        .energy_j;
    let e_race = race
        .serve_fixed(&profiles, 4, Approach::Proposed)
        .unwrap()
        .energy_j;
    assert!(
        e_stretch < e_race,
        "stretch {e_stretch} J vs race {e_race} J"
    );
}

#[test]
fn deadline_misses_surface_under_oversubscription() {
    // A profile that genuinely overruns: one tile of 1.2 slots.
    let mut heavy = content_aware_profile();
    for f in &mut heavy.frames {
        f.tiles[0].fmax_secs = SLOT * 1.2;
    }
    let s = ServerSim::new(ServerConfig {
        platform: Platform::quad_core(),
        power: PowerModel::default(),
        queue_len: 2,
        sim_slots: 12,
        ..Default::default()
    });
    let report = s.serve_max(&[heavy], Approach::Proposed);
    assert!(report.users_served >= 1);
    assert!(
        report.miss_slots > 0,
        "an overrunning tile must register deadline misses"
    );
}

//! Control-plane regression tests: the optimized GOP-boundary
//! controller must replay the frozen pre-refactor baseline's decision
//! stream bit for bit, and batch admission must account for core
//! speeds on heterogeneous platforms.

use medvt::admission::{
    serve_online, serve_online_reference, synthesize_trace, EventKind, OnlineConfig, ShardPolicy,
    TraceConfig,
};
use medvt::core::{Approach, ServerConfig, ServerSim};
use medvt::mpsoc::{DvfsPolicy, Platform, PowerModel};
use medvt::runtime::SimBackend;
use medvt_bench::synthetic_profile as profile;

const SLOT: f64 = 1.0 / 24.0;
const HEADROOM: f64 = 1.15;

/// A light/heavy mix on the paper's 4-socket Xeon: light users take
/// half a core, heavy ones 2.5 cores (headroom included).
fn mixed_profiles() -> Vec<medvt::core::VideoProfile> {
    let unit = SLOT * 0.25 / HEADROOM;
    vec![
        profile("light", "brain", 2, unit),
        profile("heavy", "cardiac", 10, unit),
    ]
}

fn xeon_shards() -> Vec<SimBackend> {
    let platform = Platform::xeon_e5_2667_quad();
    (0..platform.sockets)
        .map(|s| SimBackend::new(platform.socket_view(s), PowerModel::default()))
        .collect()
}

/// A saturating trace: more demand than the fleet can hold, so the
/// controller exercises admits, waits, departures, and queue abandons.
fn saturating_trace() -> Vec<medvt::admission::UserRequest> {
    synthesize_trace(&TraceConfig {
        horizon_slots: 192,
        arrivals_per_slot: 2.0,
        min_session_slots: 48,
        tail_alpha: 1.4,
        profiles: 2,
        seed: 7,
    })
}

#[test]
fn optimized_controller_replays_the_reference_decision_stream() {
    let profiles = mixed_profiles();
    let trace = saturating_trace();
    for policy in [
        ShardPolicy::LeastLoaded,
        ShardPolicy::RoundRobin,
        ShardPolicy::ContentAffinity,
    ] {
        let cfg = OnlineConfig {
            horizon_slots: 192,
            shard_policy: policy,
            ..Default::default()
        };
        let fast = serve_online(&cfg, &profiles, &trace, xeon_shards());
        let slow = serve_online_reference(&cfg, &profiles, &trace, xeon_shards());
        assert_eq!(
            fast.events, slow.events,
            "{policy:?}: decision streams must be bit-identical"
        );
        // Strip the controller cost block entirely: wall times differ
        // by construction and the fast path legitimately skips no-op
        // replans, while everything decision-visible must match.
        let strip = |report: &medvt::admission::OnlineReport| {
            let mut r = report.clone();
            r.controller = medvt::runtime::ControllerTiming::default();
            r
        };
        assert_eq!(
            strip(&fast),
            strip(&slow),
            "{policy:?}: modeled reports must be bit-identical"
        );
        assert!(
            fast.controller.replans <= slow.controller.replans,
            "{policy:?}: the fast path must not replan more often"
        );
        // The counters the throughput metric divides by must agree —
        // otherwise "decisions per second" compares different work.
        assert_eq!(fast.controller.decisions, slow.controller.decisions);
        assert_eq!(fast.controller.boundaries, slow.controller.boundaries);
        assert!(
            fast.events.iter().any(|e| e.kind == EventKind::Admit),
            "{policy:?}: trace must exercise admission"
        );
        assert!(
            fast.events.iter().any(|e| e.kind == EventKind::Abandon),
            "{policy:?}: a saturating trace must exercise abandons"
        );
        assert!(
            fast.events.iter().any(|e| e.kind == EventKind::Depart),
            "{policy:?}: trace must exercise departures"
        );
    }
}

#[test]
fn batch_admission_respects_core_speeds_on_big_little() {
    // big.LITTLE (2 sockets): 8 big cores at speed 1.0 plus 8 LITTLE
    // at 0.45 — 11.6 effective cores, though 16 physical ones. Users
    // of two 0.45-core tiles (0.9 effective each, headroom included):
    // speed-aware admission fits 12 (10.8 <= 11.6), while a core-count
    // capacity of 16 would have admitted the whole queue. The 24
    // admitted threads exactly fill the platform — two per big core,
    // one per LITTLE — so everyone stays on time.
    let profiles = vec![profile("diag", "cardiac", 2, SLOT * 0.45 / HEADROOM)];
    let sim = ServerSim::new(ServerConfig {
        platform: Platform::big_little(),
        policy: DvfsPolicy::StretchToDeadline,
        queue_len: 16,
        ..Default::default()
    });
    let report = sim.serve_max(&profiles, Approach::Proposed);
    assert_eq!(
        report.users_served, 12,
        "admission must respect the 11.6-effective-core capacity"
    );
    // The platform runs essentially full (10.8 of 11.6 effective
    // cores), so transient carry-over is expected — but the vast
    // majority of one-second windows must still meet the framerate.
    assert!(
        report.on_time_rate() > 0.9,
        "near-full speed-aware pack must stay largely on time, got {}",
        report.on_time_rate()
    );
}

//! Integration tests for the online admission-control subsystem:
//! backend-independent decision streams and shard-policy behaviour on
//! the paper's 4-socket Xeon model.

use medvt::admission::{synthesize_trace, EventKind, ShardPolicy, TraceConfig};
use medvt::core::{ServerConfig, ServerSim, VideoProfile};
use medvt::mpsoc::PowerModel;
use medvt::runtime::ThreadPoolBackend;
use medvt_bench::synthetic_profile as profile;

const SLOT: f64 = 1.0 / 24.0;

/// Headroom used by `ServerConfig::default` — tile sizes below are
/// chosen so padded tiles are exactly a quarter slot and pack cleanly.
const HEADROOM: f64 = 1.15;

/// Per-tile cost whose headroom-padded size divides the slot exactly
/// (4 per core): packing never overloads, so both shard policies run
/// at a perfect on-time rate and differ only in admission throughput.
const UNIT: f64 = SLOT * 0.25 / HEADROOM;

/// A light/heavy user mix on the paper's evaluation server: light
/// users need 0.5 cores, heavy ones 2.5 (headroom included).
fn mixed_profiles() -> Vec<VideoProfile> {
    vec![
        profile("light", "brain", 2, UNIT),
        profile("heavy", "cardiac", 10, UNIT),
    ]
}

fn xeon_sim() -> ServerSim {
    ServerSim::new(ServerConfig::default())
}

fn trace() -> Vec<medvt::admission::UserRequest> {
    synthesize_trace(&TraceConfig {
        horizon_slots: 192,
        arrivals_per_slot: 0.5,
        min_session_slots: 48,
        tail_alpha: 1.4,
        profiles: 2,
        seed: 42,
    })
}

#[test]
fn sim_and_pool_backends_replay_identical_decisions() {
    let profiles = mixed_profiles();
    let requests = trace();
    let sim = xeon_sim();
    let online = sim.online_config(192, ShardPolicy::LeastLoaded);
    let analytical = sim.serve_online(&profiles, &requests, &online);
    let shards: Vec<ThreadPoolBackend> = (0..sim.config().platform.sockets)
        .map(|s| {
            ThreadPoolBackend::with_workers(
                sim.config().platform.socket_view(s),
                PowerModel::default(),
                2,
            )
        })
        .collect();
    let real = sim.serve_online_on(shards, &profiles, &requests, &online);
    // Decisions depend only on the analytical model: the event streams
    // and window accounting must be identical, not merely similar.
    assert_eq!(analytical.events, real.events);
    assert_eq!(analytical.windows, real.windows);
    assert_eq!(analytical.window_misses, real.window_misses);
    // Wall-clock controller timings legitimately differ between the
    // backends; everything modeled must agree bit for bit.
    assert_eq!(
        analytical.modeled_only(),
        real.modeled_only(),
        "full online reports must agree"
    );
    assert!(
        analytical.admissions > 0,
        "the trace must exercise admission"
    );
    assert!(
        analytical
            .events
            .iter()
            .any(|e| e.kind == EventKind::Depart),
        "the trace must exercise departures"
    );
}

#[test]
fn least_loaded_sustains_more_users_than_round_robin_at_equal_on_time_rate() {
    let profiles = mixed_profiles();
    let requests = trace();
    let sim = xeon_sim();
    let ll = sim.serve_online(
        &profiles,
        &requests,
        &sim.online_config(192, ShardPolicy::LeastLoaded),
    );
    let rr = sim.serve_online(
        &profiles,
        &requests,
        &sim.online_config(192, ShardPolicy::RoundRobin),
    );
    // Admission headroom keeps both runs feasible: identical (perfect)
    // on-time rates…
    assert!(ll.windows > 0 && rr.windows > 0);
    assert!((ll.on_time_rate() - rr.on_time_rate()).abs() < 1e-12);
    assert_eq!(ll.window_misses, 0);
    // …but blind rotation leaves capacity stranded whenever its
    // designated shard is full, so it sustains strictly fewer
    // concurrent users than least-loaded packing.
    assert!(
        ll.avg_concurrent_users > rr.avg_concurrent_users,
        "least-loaded {:.2} must beat round-robin {:.2}",
        ll.avg_concurrent_users,
        rr.avg_concurrent_users
    );
}

#[test]
fn content_affinity_keeps_classes_on_their_home_socket() {
    let profiles = mixed_profiles();
    let requests = trace();
    let sim = xeon_sim();
    let report = sim.serve_online(
        &profiles,
        &requests,
        &sim.online_config(192, ShardPolicy::ContentAffinity),
    );
    assert!(report.admissions > 0);
    // Affinity is a preference, not a cage: every admission lands on a
    // real socket and the run stays feasible.
    assert!(report
        .events
        .iter()
        .filter(|e| e.kind == EventKind::Admit)
        .all(|e| e.shard.is_some_and(|s| s < 4)));
}

#[test]
fn online_and_batch_serving_agree_on_capacity_order() {
    // The online path must not admit more steady-state users than the
    // batch admission bound for the same profile set.
    let profiles = vec![profile("light", "brain", 4, SLOT / 8.0)];
    let sim = xeon_sim();
    let batch = sim.serve_max(&profiles, medvt::core::Approach::Proposed);
    // Saturating arrivals: far more than capacity, nobody departs.
    let requests: Vec<medvt::admission::UserRequest> = (0..120)
        .map(|u| medvt::admission::UserRequest {
            user: u,
            arrival_slot: 0,
            profile: 0,
            class: medvt::admission::DeadlineClass::Standard,
            departure_slot: None,
        })
        .collect();
    let online = sim.serve_online(
        &profiles,
        &requests,
        &sim.online_config(96, ShardPolicy::LeastLoaded),
    );
    assert!(online.peak_concurrent_users > 0);
    assert!(
        online.peak_concurrent_users <= batch.users_served,
        "online peak {} cannot exceed the batch capacity {}",
        online.peak_concurrent_users,
        batch.users_served
    );
    // Sharding costs at most the per-socket rounding: within 4 users
    // (one per socket boundary) of the monolithic bound.
    assert!(
        online.peak_concurrent_users + 4 >= batch.users_served,
        "online peak {} too far below batch capacity {}",
        online.peak_concurrent_users,
        batch.users_served
    );
}

//! Heterogeneous (big.LITTLE) platform integration tests: speed-aware
//! placement must strictly beat speed-blind placement on worst-core
//! finish time, both execution backends must account identically on
//! asymmetric cores, and the placement invariants must hold for
//! arbitrary speed mixes.

use medvt::admission::{DeadlineClass, ShardPolicy, UserRequest};
use medvt::core::{ServerConfig, ServerSim, VideoProfile};
use medvt::mpsoc::{Platform, PowerModel};
use medvt::runtime::{
    DemandSource, ExecutionBackend, ReplanPolicy, ServerLoop, ServerLoopConfig, SimBackend,
    ThreadPoolBackend,
};
use medvt::sched::{place_threads, place_threads_on, UserDemand};
use medvt_bench::synthetic_profile as profile;
use proptest::prelude::*;

const SLOT: f64 = 1.0 / 24.0;

/// One big.LITTLE socket's speeds: 4 big (1.0) + 4 LITTLE (0.45).
fn socket_speeds() -> Vec<f64> {
    Platform::big_little().socket_view(0).core_speeds()
}

/// A mixed-demand frame: four large tiles only the big cores can run
/// on time, four mid tiles that overload the LITTLE cores unless
/// placement normalizes by speed.
fn mixed_demand() -> UserDemand {
    UserDemand::new(
        0,
        vec![
            SLOT * 0.9,
            SLOT * 0.9,
            SLOT * 0.9,
            SLOT * 0.9,
            SLOT * 0.5,
            SLOT * 0.5,
            SLOT * 0.5,
            SLOT * 0.5,
        ],
    )
}

/// ISSUE 3 acceptance: on the big.LITTLE preset, speed-aware placement
/// achieves strictly lower worst-core finish time than speed-blind
/// placement for a mixed-demand workload.
#[test]
fn speed_aware_placement_beats_speed_blind_on_big_little() {
    let speeds = socket_speeds();
    let demand = mixed_demand();
    let aware = place_threads_on(&speeds, SLOT, std::slice::from_ref(&demand));
    let blind = place_threads(speeds.len(), SLOT, &[demand]);
    let aware_worst = aware.worst_finish_secs(&speeds);
    let blind_worst = blind.worst_finish_secs(&speeds);
    assert!(
        aware_worst < blind_worst - 1e-12,
        "speed-aware worst finish {aware_worst} must be strictly below \
         speed-blind {blind_worst}"
    );
    // Both place every thread exactly once.
    assert_eq!(aware.placements.len(), 8);
    assert_eq!(blind.placements.len(), 8);
    // The speed-aware worst core finishes within ~1.2 slots; the blind
    // one rides a LITTLE core past two slots.
    assert!(aware_worst < SLOT * 1.3);
    assert!(blind_worst > SLOT * 2.0);
}

/// A flat per-slot demand source for driving the server loop.
struct FlatSource {
    tiles: usize,
    secs: f64,
}

impl DemandSource for FlatSource {
    fn demand_at(&self, _user: usize, _slot: usize) -> Vec<f64> {
        vec![self.secs; self.tiles]
    }
}

/// ISSUE 3 acceptance: `SimBackend` and `ThreadPoolBackend` report
/// identical statistics on the heterogeneous preset — per-class
/// stretching happens in the shared analytical accounting.
#[test]
fn sim_and_pool_backends_identical_on_big_little() {
    let platform = Platform::big_little();
    let power = PowerModel::default();
    let cfg = ServerLoopConfig {
        fps: 24.0,
        slots: 48,
        policy: Default::default(),
        replan: ReplanPolicy::PerGop { headroom: 1.1 },
        gop_slots: 8,
        window_slots: None,
    };
    let source = FlatSource {
        tiles: 6,
        secs: SLOT / 5.0,
    };
    let mut sim = SimBackend::new(platform.clone(), power);
    let mut pool = ThreadPoolBackend::with_workers(platform.clone(), power, 4);
    assert_eq!(sim.core_speeds(), pool.core_speeds());
    let a = ServerLoop::new(&mut sim, cfg).run(&source, &[0, 1], &[]);
    let b = ServerLoop::new(&mut pool, cfg).run(&source, &[0, 1], &[]);
    assert!(a.energy_j > 0.0);
    // Wall time differs (the pool really runs); every statistic the
    // accounting produces must not.
    assert_eq!(
        a.modeled_only(),
        b.modeled_only(),
        "backends must account identically"
    );
}

/// Online serving works end to end on a heterogeneous platform: one
/// shard per big.LITTLE socket, users admitted against effective
/// (speed-weighted) capacity, socket labels surfaced per shard.
#[test]
fn online_serving_on_big_little_sockets() {
    let sim = ServerSim::new(ServerConfig {
        platform: Platform::big_little(),
        ..Default::default()
    });
    // Light users (2 tiles ≈ 0.58 effective cores with headroom) that
    // any cluster can host.
    let profiles: Vec<VideoProfile> = vec![profile("light", "brain", 2, SLOT / 8.0)];
    let trace: Vec<UserRequest> = (0..6)
        .map(|u| UserRequest {
            user: u,
            arrival_slot: 0,
            profile: 0,
            class: DeadlineClass::Standard,
            departure_slot: None,
        })
        .collect();
    let report = sim.serve_online(
        &profiles,
        &trace,
        &sim.online_config(96, ShardPolicy::LeastLoaded),
    );
    assert_eq!(report.shards.len(), 2, "one shard per big.LITTLE socket");
    assert!(report.admissions > 0);
    assert_eq!(report.window_misses, 0, "light users must stay on time");
    for (s, shard) in report.shards.iter().enumerate() {
        assert!((shard.capacity_cores - 5.8).abs() < 1e-9);
        assert_eq!(shard.label, format!("big.LITTLE MPSoC (socket {s})"));
    }
}

/// Maps sampled palette indices to a plausible heterogeneous speed
/// mix (the vendored proptest shim has no `prop_oneof`).
fn speeds_from(indices: &[u32]) -> Vec<f64> {
    const PALETTE: [f64; 5] = [0.25, 0.45, 0.5, 0.75, 1.0];
    indices
        .iter()
        .map(|&i| PALETTE[i as usize % PALETTE.len()])
        .collect()
}

proptest! {
    /// Every thread is placed exactly once on a real core, and core
    /// loads reconcile with placements, for arbitrary speed mixes.
    #[test]
    fn prop_hetero_place_each_thread_exactly_once(
        speed_idx in proptest::collection::vec(0u32..5, 2..10),
        thread_ms in proptest::collection::vec(
            proptest::collection::vec(1u32..40, 1..6),
            1..6,
        ),
    ) {
        let speeds = speeds_from(&speed_idx);
        let users: Vec<UserDemand> = thread_ms
            .iter()
            .enumerate()
            .map(|(u, ms)| {
                UserDemand::new(u, ms.iter().map(|&m| m as f64 * 1e-3).collect())
            })
            .collect();
        let alloc = place_threads_on(&speeds, SLOT, &users);
        let expect: usize = users.iter().map(|u| u.thread_secs.len()).sum();
        prop_assert_eq!(alloc.placements.len(), expect);
        let mut seen = std::collections::HashSet::new();
        for p in &alloc.placements {
            prop_assert!(p.core < speeds.len());
            prop_assert!(seen.insert((p.user, p.thread)), "thread placed twice");
        }
        let mut check = vec![0.0f64; speeds.len()];
        for p in &alloc.placements {
            check[p.core] += p.secs;
        }
        for (a, b) in check.iter().zip(&alloc.core_loads) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    /// Speed-normalized overload stays bounded: no core's finish time
    /// exceeds the slot by more than one spilled thread stretched onto
    /// the slowest core.
    #[test]
    fn prop_hetero_normalized_overload_bounded(
        speed_idx in proptest::collection::vec(0u32..5, 2..10),
        thread_ms in proptest::collection::vec(
            proptest::collection::vec(1u32..40, 1..6),
            1..6,
        ),
    ) {
        let speeds = speeds_from(&speed_idx);
        let users: Vec<UserDemand> = thread_ms
            .iter()
            .enumerate()
            .map(|(u, ms)| {
                UserDemand::new(u, ms.iter().map(|&m| m as f64 * 1e-3).collect())
            })
            .collect();
        let alloc = place_threads_on(&speeds, SLOT, &users);
        let min_speed = speeds.iter().copied().fold(f64::INFINITY, f64::min);
        let largest = users
            .iter()
            .flat_map(|u| u.thread_secs.iter())
            .fold(0.0f64, |a, &b| a.max(b));
        let worst = alloc.worst_finish_secs(&speeds);
        // Spills land on the core minimizing post-placement finish
        // time, which is never later than placing on the least-loaded
        // core: that core's pre-placement finish is at most the
        // speed-weighted mean — max(slot, total work / platform
        // effective capacity) — so one stretched thread on the slowest
        // core still bounds the overshoot.
        let total: f64 = users.iter().map(UserDemand::total_secs).sum();
        let capacity: f64 = speeds.iter().sum();
        let floor = (total / capacity).max(SLOT);
        prop_assert!(
            worst <= floor + largest / min_speed + 1e-9,
            "normalized overload unbounded: worst finish {} for slot {} \
             (floor {}, largest {}, min speed {})",
            worst,
            SLOT,
            floor,
            largest,
            min_speed
        );
        // When demand fits the recruited candidates, no core may
        // finish later than the slot plus one spilled thread.
        if total / capacity <= SLOT {
            prop_assert!(worst <= SLOT + largest / min_speed + 1e-9);
        }
    }

    /// Fast cores are never idle while slower cores are overloaded:
    /// candidates are recruited fastest-first and spill targets the
    /// core with the smallest post-placement finish time.
    #[test]
    fn prop_hetero_fast_cores_never_idle_under_slow_overload(
        speed_idx in proptest::collection::vec(0u32..5, 2..10),
        thread_ms in proptest::collection::vec(
            proptest::collection::vec(1u32..60, 1..8),
            1..6,
        ),
    ) {
        let speeds = speeds_from(&speed_idx);
        let users: Vec<UserDemand> = thread_ms
            .iter()
            .enumerate()
            .map(|(u, ms)| {
                UserDemand::new(u, ms.iter().map(|&m| m as f64 * 1e-3).collect())
            })
            .collect();
        let alloc = place_threads_on(&speeds, SLOT, &users);
        let finish = alloc.finish_times(&speeds);
        for (i, (&fi, &si)) in finish.iter().zip(&speeds).enumerate() {
            if fi <= SLOT + 1e-9 {
                continue; // not overloaded
            }
            for (j, (&fj, &sj)) in finish.iter().zip(&speeds).enumerate() {
                prop_assert!(
                    !(fj == 0.0 && sj > si + 1e-12),
                    "core {} (speed {}) overloaded to {} while faster core {} \
                     (speed {}) sits idle; loads {:?}",
                    i, si, fi, j, sj, alloc.core_loads
                );
            }
        }
    }
}

//! Differential-fuzz harness for the dispatch-accelerated kernels.
//!
//! Two executable specifications anchor this suite:
//!
//! * `medvt_motion::cost::reference` — the textbook cost metrics. Every
//!   dispatch tier (AVX2, SSE2, scalar) must produce *bit-identical*
//!   costs for random planes, ragged block widths and motion vectors
//!   that clamp outside the reference frame, and every `*_upto`
//!   early-exit bound must decide exactly like the exact cost.
//! * `medvt_encoder::bits::reference` — the seed per-bit `BitWriter`.
//!   Random mixed sequences of `write_bit` / `write_bits` / `write_ue`
//!   / `write_se` / `byte_align` through the word-batched writer must
//!   emit byte-for-byte the same stream.
//!
//! Tiers are pinned with `cost::simd::with_tier`, so on an AVX2 host a
//! single run exercises all three code paths; on an older host the
//! unavailable tiers are skipped (the scalar tier always runs).

use medvt_frame::{Plane, Rect};
use medvt_motion::cost::{self, simd};
use medvt_motion::{CostMetric, MotionVector};
use proptest::prelude::*;

/// Deterministic textured plane; `salt` decorrelates cur/ref pairs.
fn plane(width: usize, height: usize, salt: u64) -> Plane {
    let mut p = Plane::new(width, height);
    let mut state = salt.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    for row in 0..height {
        for col in 0..width {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            p.set(col, row, (state >> 56) as u8);
        }
    }
    p
}

/// Every dispatch tier the host can actually execute.
fn tiers() -> impl Iterator<Item = simd::DispatchTier> {
    simd::DispatchTier::ALL
        .into_iter()
        .filter(|t| t.available())
}

/// Strategy: plane geometry with ragged (non-multiple-of-16) widths,
/// a block inside the current plane and an MV that may push the
/// reference read far out of bounds (exercising the clamped path).
#[allow(clippy::type_complexity)]
fn geometry() -> impl Strategy<Value = (usize, usize, Rect, MotionVector, u64)> {
    (
        17usize..49, // plane width: deliberately not SIMD-register aligned
        9usize..33,  // plane height
        0usize..24,  // block x
        0usize..16,  // block y
        1usize..24,  // block w
        1usize..24,  // block h
        -40i16..=40, // mv x: reaches outside any plane above
        -40i16..=40, // mv y
    )
        .prop_map(|(pw, ph, x, y, w, h, mx, my)| {
            let x = x.min(pw - 1);
            let y = y.min(ph - 1);
            let block = Rect::new(x, y, w.min(pw - x), h.min(ph - y));
            (
                pw,
                ph,
                block,
                MotionVector::new(mx, my),
                (pw * 31 + ph) as u64,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All tiers agree bit-exactly with `cost::reference` on the exact
    /// metrics, including ragged widths and clamped out-of-bounds MVs.
    #[test]
    fn every_tier_matches_reference_costs((pw, ph, block, mv, salt) in geometry()) {
        let cur = plane(pw, ph, salt);
        let reference = plane(pw, ph, salt.wrapping_add(7));
        let want = (
            cost::reference::sad(&cur, &reference, &block, mv),
            cost::reference::ssd(&cur, &reference, &block, mv),
            cost::reference::satd(&cur, &reference, &block, mv),
        );
        for t in tiers() {
            let got = simd::with_tier(t, || {
                (
                    cost::sad(&cur, &reference, &block, mv),
                    cost::ssd(&cur, &reference, &block, mv),
                    cost::satd(&cur, &reference, &block, mv),
                )
            });
            prop_assert_eq!(got, want, "tier {} diverged from reference", t.name());
        }
    }

    /// `*_upto` keeps exact early-exit semantics on every tier: the
    /// returned cost decides `< bound` exactly like the true cost, is
    /// exact whenever it is below the bound, and never overshoots.
    #[test]
    fn every_tier_preserves_upto_semantics(
        (pw, ph, block, mv, salt) in geometry(),
        bound_pct in 0u64..250,
    ) {
        let cur = plane(pw, ph, salt);
        let reference = plane(pw, ph, salt.wrapping_add(13));
        for metric in [CostMetric::Sad, CostMetric::Ssd, CostMetric::Satd] {
            let exact = cost::reference::block_cost(metric, &cur, &reference, &block, mv);
            let bound = bound_pct * exact.max(1) / 100;
            for t in tiers() {
                let c = simd::with_tier(t, || {
                    cost::block_cost_upto(metric, &cur, &reference, &block, mv, bound)
                });
                prop_assert_eq!(
                    c < bound,
                    exact < bound,
                    "tier {} flipped the {:?} bound decision",
                    t.name(),
                    metric
                );
                if c < bound {
                    prop_assert_eq!(c, exact);
                }
                prop_assert!(c <= exact, "tier {} overshot the exact cost", t.name());
            }
        }
    }
}

mod bitstream {
    use medvt_encoder::bits::{self, BitWriter};
    use proptest::prelude::*;

    /// One decoded write operation, derived from two raw u64 draws.
    fn apply(op: u64, payload: u64, new: &mut BitWriter, old: &mut bits::reference::BitWriter) {
        match op % 5 {
            0 => {
                let bit = payload & 1 != 0;
                new.write_bit(bit);
                old.write_bit(bit);
            }
            1 => {
                let n = (payload % 32 + 1) as u8;
                let v = (payload >> 6) as u32 & ((1u64 << n) - 1) as u32;
                new.write_bits(v, n);
                old.write_bits(v, n);
            }
            2 => {
                // Mix small values (short codes) with huge ones whose
                // Exp-Golomb info field spans the 32-bit split.
                let v = if payload & 1 == 0 {
                    (payload >> 1) as u32 % 600
                } else {
                    u32::MAX - (payload >> 1) as u32 % 600
                };
                new.write_ue(v);
                old.write_ue(v);
            }
            3 => {
                let v = (payload as i64 % 100_000) as i32;
                new.write_se(v);
                old.write_se(v);
            }
            _ => {
                new.byte_align();
                old.byte_align();
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Random mixed write sequences: the word-batched writer must
        /// track the per-bit reference writer bit count at every step
        /// and match its bytes exactly at the end.
        #[test]
        fn batched_writer_is_byte_identical_to_reference(
            ops in proptest::collection::vec((0u64..5, 0u64..u64::MAX), 1..400),
        ) {
            let mut new = BitWriter::new();
            let mut old = bits::reference::BitWriter::new();
            for (op, payload) in ops {
                apply(op, payload, &mut new, &mut old);
                prop_assert_eq!(new.bits_written(), old.bits_written());
            }
            new.byte_align();
            old.byte_align();
            prop_assert_eq!(new.into_bytes(), old.into_bytes());
        }

        /// Whole-syntax differential: coefficient coding through
        /// `code_block` emits the same stream on both writers.
        #[test]
        fn code_block_is_byte_identical_to_reference(
            raw in proptest::collection::vec(-300i64..300, 16),
            n in 0usize..2,
        ) {
            let n = if n == 0 { 4 } else { 8 };
            let levels: Vec<i32> = raw
                .iter()
                .cycle()
                .take(n * n)
                .map(|&v| (v / 7) as i32) // sparse-ish, like real levels
                .collect();
            let mut new = BitWriter::new();
            let mut old = bits::reference::BitWriter::new();
            let bits_new = bits::code_block(&levels, n, &mut new);
            let bits_old = bits::reference::code_block(&levels, n, &mut old);
            prop_assert_eq!(bits_new, bits_old);
            new.byte_align();
            old.byte_align();
            prop_assert_eq!(new.into_bytes(), old.into_bytes());
        }
    }
}

//! §III-D1's class-transfer property end to end: a workload LUT warmed
//! on one video of a body-part class estimates a *different* video of
//! the same class accurately from its very first GOP.

use medvt::analyze::AnalyzerConfig;
use medvt::core::{ContentAwareController, PipelineConfig, TranscodeController};
use medvt::encoder::{EncoderConfig, VideoEncoder};
use medvt::frame::synth::{BodyPart, MotionPattern, PhantomVideo};
use medvt::frame::Resolution;
use medvt::sched::{LutBank, WorkloadLut};

fn pipeline_config() -> PipelineConfig {
    PipelineConfig {
        analyzer: AnalyzerConfig {
            min_tile_width: 32,
            min_tile_height: 32,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn brain_clip(seed: u64) -> medvt::frame::VideoClip {
    PhantomVideo::builder(BodyPart::Brain)
        .resolution(Resolution::new(192, 144))
        .motion(MotionPattern::Pan { dx: 0.8, dy: 0.2 })
        .seed(seed)
        .build()
        .capture(17)
}

/// Encodes a clip and returns (controller demand estimate made *before*
/// the first GOP's feedback, measured steady per-frame total).
fn first_estimate_error(lut: WorkloadLut, seed: u64) -> f64 {
    let clip = brain_clip(seed);
    let mut ctl = ContentAwareController::new(pipeline_config(), lut);
    // Encode only the IDR to establish the tiling without observing
    // a full GOP of B-frames.
    let idr_only = medvt::frame::VideoClip::from_frames(
        clip.resolution(),
        clip.fps(),
        vec![clip.get(0).expect("frame 0").clone()],
    );
    VideoEncoder::new(EncoderConfig::default()).encode_clip(&idr_only, &mut ctl);
    let estimate: f64 = ctl.demand_secs().iter().sum();

    // Ground truth: full encode, measured mean B-frame totals.
    let mut truth_ctl = ContentAwareController::new(pipeline_config(), WorkloadLut::new());
    VideoEncoder::new(EncoderConfig::default()).encode_clip(&clip, &mut truth_ctl);
    let mut reports = truth_ctl.drain_reports();
    reports.sort_by_key(|r| r.poc);
    let measured: f64 = reports[9..]
        .iter()
        .map(|r| r.tiles.iter().map(|t| t.fmax_secs).sum::<f64>())
        .sum::<f64>()
        / (reports.len() - 9) as f64;
    (estimate - measured).abs() / measured
}

#[test]
fn warm_lut_beats_cold_start_on_same_class() {
    // Warm a LUT on one brain video…
    let mut bank = LutBank::new();
    let mut warm_ctl = ContentAwareController::new(pipeline_config(), WorkloadLut::new());
    VideoEncoder::new(EncoderConfig::default()).encode_clip(&brain_clip(100), &mut warm_ctl);
    bank.learn("brain", warm_ctl.lut());

    // …then estimate a different brain video (different seed) cold vs warm.
    let cold_err = first_estimate_error(WorkloadLut::new(), 200);
    let warm_err = first_estimate_error(bank.seed_for("brain"), 200);
    assert!(
        warm_err < cold_err,
        "warm relative error {warm_err:.3} should beat cold {cold_err:.3}"
    );
    // Paper: under 100 µs absolute error once warm; we check the
    // relative error is small.
    assert!(warm_err < 0.5, "warm error {warm_err:.3} too large");
}

#[test]
fn unknown_class_seeds_empty() {
    let mut bank = LutBank::new();
    let mut ctl = ContentAwareController::new(pipeline_config(), WorkloadLut::new());
    VideoEncoder::new(EncoderConfig::default()).encode_clip(&brain_clip(1), &mut ctl);
    bank.learn("brain", ctl.lut());
    assert!(bank.seed_for("cardiac").is_empty());
    assert!(!bank.seed_for("brain").is_empty());
}

#[test]
fn lut_observations_accumulate_across_videos() {
    let mut bank = LutBank::new();
    for seed in [1u64, 2] {
        let lut = bank.seed_for("brain");
        let mut ctl = ContentAwareController::new(pipeline_config(), lut);
        VideoEncoder::new(EncoderConfig::default()).encode_clip(&brain_clip(seed), &mut ctl);
        bank.learn("brain", ctl.lut());
    }
    let lut = bank.seed_for("brain");
    assert!(
        lut.total_observations() > 100,
        "bank holds {} observations",
        lut.total_observations()
    );
}

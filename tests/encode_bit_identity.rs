//! Whole-encode bit-identity guard for the kernel fast paths.
//!
//! The optimized SAD/SATD fast paths, the flat search memo, the
//! lock-free DCT basis and the scratch-reuse encode loop must not
//! change a single encoded byte or motion decision. This test encodes
//! a deterministic phantom clip through configurations that exercise
//! every optimized code path (interior and boundary motion candidates,
//! early-terminated full search, hexagon/diamond policy searches,
//! chroma coding) and compares FNV-1a hashes of the bitstream and the
//! per-tile dominant motion fields against goldens captured from the
//! pre-optimization kernels.
//!
//! If an intentional behaviour change ever lands (new syntax, new
//! mode decision), regenerate the goldens by running the test with
//! `MEDVT_PRINT_HASHES=1` and updating the constants — but kernel
//! PRs must never need that.

use medvt::encoder::{encode_frame, EncoderConfig, FramePlan, Qp, SearchSpec, TileConfig, TxPath};
use medvt::frame::synth::{BodyPart, MotionPattern, PhantomVideo};
use medvt::frame::{Frame, FrameKind, Rect, Resolution};
use medvt::motion::SearchWindow;

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// Encodes a 7-frame pan sequence under `plan`, chaining each frame's
/// reconstruction as the next frame's reference, and returns
/// `(bitstream_hash, motion_hash)`.
fn encode_sequence(plan: &FramePlan, ecfg: &EncoderConfig) -> (u64, u64) {
    let video = PhantomVideo::builder(BodyPart::Cardiac)
        .resolution(Resolution::new(128, 96))
        .motion(MotionPattern::Pan { dx: 1.3, dy: -0.6 })
        .seed(77)
        .build();
    let mut byte_hash = FNV_OFFSET;
    let mut mv_hash = FNV_OFFSET;
    let mut prev: Option<Frame> = None;
    for poc in 0..7 {
        let frame = video.render(poc);
        let (kind, refs): (FrameKind, Vec<&Frame>) = match &prev {
            None => (FrameKind::Intra, vec![]),
            Some(r) => (FrameKind::Predicted, vec![r]),
        };
        let encoded = encode_frame(&frame, &refs, kind, poc, plan, ecfg, false);
        fnv1a(&mut byte_hash, &encoded.bytes);
        for mv in &encoded.dominant_mvs {
            fnv1a(&mut mv_hash, &mv.x.to_le_bytes());
            fnv1a(&mut mv_hash, &mv.y.to_le_bytes());
        }
        prev = Some(encoded.recon);
    }
    (byte_hash, mv_hash)
}

fn plan_mixed(frame: Rect) -> FramePlan {
    // 2x2 tiles with deliberately different search algorithms and
    // windows so boundary candidates, early-terminated exhaustive
    // search and the gradient-descent policies all run.
    let tiles = medvt::encoder::split_aligned(frame, 2, 2);
    let configs = vec![
        TileConfig {
            qp: Qp::new(27).unwrap(),
            search: SearchSpec::Full,
            window: SearchWindow::W8,
        },
        TileConfig {
            qp: Qp::new(32).unwrap(),
            search: SearchSpec::Diamond,
            window: SearchWindow::W16,
        },
        TileConfig {
            qp: Qp::new(37).unwrap(),
            search: SearchSpec::default(), // hexagon-h
            window: SearchWindow::W32,
        },
        TileConfig {
            qp: Qp::new(22).unwrap(),
            search: SearchSpec::Tz,
            window: SearchWindow::W16,
        },
    ];
    FramePlan { tiles, configs }
}

#[test]
fn encoded_bytes_and_motion_fields_match_golden() {
    let frame_rect = Rect::frame(128, 96);
    let plan = plan_mixed(frame_rect);
    let ecfg = EncoderConfig::default();
    let (bytes_hash, mv_hash) = encode_sequence(&plan, &ecfg);
    if std::env::var("MEDVT_PRINT_HASHES").is_ok() {
        println!("bytes_hash = {bytes_hash:#018x}");
        println!("mv_hash    = {mv_hash:#018x}");
    }
    assert_eq!(
        bytes_hash, GOLDEN_BYTES_HASH,
        "encoded bitstream diverged from the pre-optimization kernels"
    );
    assert_eq!(
        mv_hash, GOLDEN_MV_HASH,
        "motion decisions diverged from the pre-optimization kernels"
    );
}

#[test]
fn luma_only_encode_matches_golden() {
    let frame_rect = Rect::frame(128, 96);
    let plan = plan_mixed(frame_rect);
    let ecfg = EncoderConfig {
        chroma: false,
        ..Default::default()
    };
    let (bytes_hash, _) = encode_sequence(&plan, &ecfg);
    if std::env::var("MEDVT_PRINT_HASHES").is_ok() {
        println!("luma_bytes_hash = {bytes_hash:#018x}");
    }
    assert_eq!(
        bytes_hash, GOLDEN_LUMA_BYTES_HASH,
        "luma-only bitstream diverged from the pre-optimization kernels"
    );
}

#[test]
fn int_transform_encode_matches_its_own_golden() {
    let frame_rect = Rect::frame(128, 96);
    let plan = plan_mixed(frame_rect);
    let ecfg = EncoderConfig {
        transform: TxPath::Int,
        ..Default::default()
    };
    let (bytes_hash, mv_hash) = encode_sequence(&plan, &ecfg);
    if std::env::var("MEDVT_PRINT_HASHES").is_ok() {
        println!("int_bytes_hash = {bytes_hash:#018x}");
        println!("int_mv_hash    = {mv_hash:#018x}");
    }
    assert_eq!(
        bytes_hash, GOLDEN_INT_BYTES_HASH,
        "integer-transform bitstream diverged from its pinned golden"
    );
    assert_eq!(
        mv_hash, GOLDEN_INT_MV_HASH,
        "integer-transform motion decisions diverged from the pinned golden"
    );
}

// Captured from the seed kernels (per-pixel clamped SAD, HashMap memo,
// mutexed DCT basis, allocating encode loop) before the fast paths
// landed. The optimized kernels must reproduce them bit for bit.
const GOLDEN_BYTES_HASH: u64 = 0x8d73f24316b57bc2;
const GOLDEN_MV_HASH: u64 = 0x8559cc17348ab034;
const GOLDEN_LUMA_BYTES_HASH: u64 = 0x17244043249ef2f3;
// The fixed-point transform path ([`TxPath::Int`]) produces a
// deliberately different bitstream; these goldens pin it separately so
// the f64 goldens above stay frozen.
const GOLDEN_INT_BYTES_HASH: u64 = 0xa173bac1c1ed705b;
const GOLDEN_INT_MV_HASH: u64 = 0xbea857534a9b432c;

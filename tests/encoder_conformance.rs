//! Encoder conformance across crates: rate–distortion behaviour,
//! tile independence, and GOP reference integrity on phantom material.

use medvt::analyze::Tiling;
use medvt::encoder::{
    encode_frame, encode_uniform, EncoderConfig, FramePlan, Qp, SearchSpec, TileConfig,
};
use medvt::frame::quality::frame_psnr;
use medvt::frame::synth::{BodyPart, MotionPattern, PhantomVideo};
use medvt::frame::{FrameKind, Resolution, VideoClip};
use medvt::motion::SearchWindow;

fn clip(frames: usize) -> VideoClip {
    PhantomVideo::builder(BodyPart::Cardiac)
        .resolution(Resolution::new(160, 128))
        .motion(MotionPattern::Breathe {
            amplitude: 0.03,
            period: 24.0,
        })
        .seed(55)
        .build()
        .capture(frames)
}

fn tcfg(qp: u8) -> TileConfig {
    TileConfig {
        qp: Qp::new(qp).expect("valid"),
        search: SearchSpec::Diamond,
        window: SearchWindow::W16,
    }
}

#[test]
fn rate_distortion_is_monotone_across_the_qp_ladder() {
    let clip = clip(9);
    let mut last_bits = u64::MAX;
    let mut last_psnr = f64::INFINITY;
    for qp in [22u8, 27, 32, 37, 42] {
        let stats = encode_uniform(&clip, 2, 2, tcfg(qp), EncoderConfig::default());
        let bits = stats.total_bits();
        let psnr = stats.mean_psnr();
        assert!(
            bits < last_bits,
            "QP{qp}: bits must fall ({bits} vs {last_bits})"
        );
        assert!(
            psnr < last_psnr + 0.01,
            "QP{qp}: psnr must not rise ({psnr} vs {last_psnr})"
        );
        last_bits = bits;
        last_psnr = psnr;
    }
}

#[test]
fn tiles_are_independent_units() {
    // Encoding the same frame with different tilings must reconstruct
    // equally well — tiles only partition work, not quality collapse.
    let clip = clip(1);
    let frame = clip.get(0).expect("one frame");
    let ecfg = EncoderConfig::default();
    let psnr_of = |cols: usize, rows: usize| {
        let plan = FramePlan::uniform(frame.y().bounds(), cols, rows, tcfg(27));
        let out = encode_frame(frame, &[], FrameKind::Intra, 0, &plan, &ecfg, false);
        frame_psnr(frame, &out.recon)
    };
    let single = psnr_of(1, 1);
    let many = psnr_of(4, 4);
    assert!(
        (single - many).abs() < 1.5,
        "tiling changed quality too much: {single} vs {many}"
    );
}

#[test]
fn more_tiles_cost_slightly_more_bits() {
    // Broken prediction contexts at tile borders cost bits — the
    // compression-loss column of Table I.
    let clip = clip(9);
    let one = encode_uniform(&clip, 1, 1, tcfg(32), EncoderConfig::default());
    let many = encode_uniform(&clip, 5, 4, tcfg(32), EncoderConfig::default());
    assert!(many.total_bits() >= one.total_bits());
    let loss = (many.total_bits() - one.total_bits()) as f64 / one.total_bits() as f64 * 100.0;
    assert!(loss < 20.0, "tiling overhead {loss}% looks wrong");
}

#[test]
fn inter_coding_exploits_temporal_redundancy() {
    let still = PhantomVideo::builder(BodyPart::Brain)
        .resolution(Resolution::new(160, 128))
        .motion(MotionPattern::Still)
        .noise_amplitude(0.0)
        .seed(5)
        .build()
        .capture(9);
    let stats = encode_uniform(&still, 1, 1, tcfg(32), EncoderConfig::default());
    let idr_bits = stats.frames[0].bits();
    for f in &stats.frames[1..] {
        // Static inter frames carry only per-block mode/MV headers and
        // empty coded-block flags — well under half the IDR cost.
        assert!(
            f.bits() < idr_bits / 2,
            "static B/P frame {} should be nearly free: {} vs IDR {}",
            f.poc,
            f.bits(),
            idr_bits
        );
        assert_eq!(f.total().inter_blocks + f.total().intra_blocks, 80);
    }
}

#[test]
fn validated_tiling_round_trips_through_encoder() {
    let clip = clip(1);
    let frame = clip.get(0).expect("one frame");
    let tiling = Tiling::uniform(frame.y().bounds(), 2, 2);
    let plan = FramePlan {
        tiles: tiling.tiles().to_vec(),
        configs: vec![tcfg(32); tiling.len()],
    };
    let out = encode_frame(
        frame,
        &[],
        FrameKind::Intra,
        0,
        &plan,
        &EncoderConfig::default(),
        true,
    );
    assert_eq!(out.stats.tiles.len(), 4);
    assert!(out.stats.psnr() > 30.0);
}

//! Telemetry regression tests: attaching a flight recorder must not
//! change a single serving decision, sim and pool shards must emit
//! identical normalized event streams, the recorder's counters must
//! agree with the report they observed, and the serialized
//! `OnlineReport`/`ControllerTiming` schema — now a view over
//! telemetry metrics — must stay byte-compatible with the
//! pre-telemetry form.

use medvt::admission::{
    serve_online, serve_online_with, synthesize_trace, OnlineConfig, ShardPolicy, TraceConfig,
};
use medvt::mpsoc::{Platform, PowerModel};
use medvt::runtime::{ControllerTiming, SimBackend, ThreadPoolBackend};
use medvt::telemetry::{CounterId, EventKind, FlightRecorder, HistId, Metrics};
use medvt_bench::synthetic_profile as profile;

const SLOT: f64 = 1.0 / 24.0;
const HEADROOM: f64 = 1.15;

fn mixed_profiles() -> Vec<medvt::core::VideoProfile> {
    let unit = SLOT * 0.25 / HEADROOM;
    vec![
        profile("light", "brain", 2, unit),
        profile("heavy", "cardiac", 10, unit),
    ]
}

fn platform() -> Platform {
    Platform::xeon_e5_2667_quad()
}

fn sim_shards() -> Vec<SimBackend> {
    let p = platform();
    (0..p.sockets)
        .map(|s| SimBackend::new(p.socket_view(s), PowerModel::default()))
        .collect()
}

fn pool_shards() -> Vec<ThreadPoolBackend> {
    let p = platform();
    (0..p.sockets)
        .map(|s| ThreadPoolBackend::with_workers(p.socket_view(s), PowerModel::default(), 2))
        .collect()
}

fn config() -> OnlineConfig {
    OnlineConfig {
        horizon_slots: 96,
        shard_policy: ShardPolicy::LeastLoaded,
        ..Default::default()
    }
}

fn trace() -> Vec<medvt::admission::UserRequest> {
    synthesize_trace(&TraceConfig {
        horizon_slots: 96,
        arrivals_per_slot: 1.0,
        min_session_slots: 24,
        tail_alpha: 1.4,
        profiles: 2,
        seed: 11,
    })
}

/// Wall-clock controller costs differ run to run by construction;
/// everything else must be bit-identical.
fn stripped(report: &medvt::admission::OnlineReport) -> medvt::admission::OnlineReport {
    let mut r = report.clone();
    r.controller = ControllerTiming::default();
    r
}

#[test]
fn attaching_a_recorder_changes_no_decisions() {
    let profiles = mixed_profiles();
    let trace = trace();
    let cfg = config();

    let without = serve_online(&cfg, &profiles, &trace, sim_shards());
    let rec = FlightRecorder::new(platform().sockets, 1 << 14);
    let with = serve_online_with(&cfg, &profiles, &trace, sim_shards(), &rec);

    assert_eq!(
        without.events, with.events,
        "recorder attachment must not alter the decision stream"
    );
    assert_eq!(
        stripped(&without),
        stripped(&with),
        "recorder attachment must not alter the modeled report"
    );
    assert!(rec.recorded() > 0, "the recorder must have captured events");
}

#[test]
fn recorder_counters_agree_with_the_report() {
    let profiles = mixed_profiles();
    let trace = trace();
    let cfg = config();
    let rec = FlightRecorder::new(platform().sockets, 1 << 14);
    let report = serve_online_with(&cfg, &profiles, &trace, sim_shards(), &rec);

    let m = rec.metrics();
    assert_eq!(m.counter(CounterId::Admits) as usize, report.admissions);
    assert_eq!(m.counter(CounterId::Evicts) as usize, report.evictions);
    assert_eq!(m.counter(CounterId::Departs) as usize, report.departures);
    assert_eq!(m.counter(CounterId::Abandons) as usize, report.abandoned);
    assert_eq!(m.counter(CounterId::Rejects) as usize, report.rejected);
    assert!(m.counter(CounterId::Boundaries) > 0);
    assert!(m.counter(CounterId::SlotsExecuted) > 0);

    // The snapshot serializes every counter under its stable name.
    let snapshot = serde_json::to_string(&rec.snapshot()).expect("snapshot serializes");
    for name in ["admits", "evicts", "boundaries", "placement_ns"] {
        assert!(
            snapshot.contains(&format!("\"{name}\"")) || snapshot.contains(name),
            "snapshot must carry metric {name}: {snapshot}"
        );
    }
}

#[test]
fn sim_and_pool_emit_identical_normalized_event_streams() {
    let profiles = mixed_profiles();
    let trace = trace();
    let cfg = config();

    let rec_sim = FlightRecorder::modeled(platform().sockets, 1 << 14);
    let rec_pool = FlightRecorder::modeled(platform().sockets, 1 << 14);
    let sim = serve_online_with(&cfg, &profiles, &trace, sim_shards(), &rec_sim);
    let pool = serve_online_with(&cfg, &profiles, &trace, pool_shards(), &rec_pool);

    assert_eq!(sim.events, pool.events, "decision parity");
    let sim_events = rec_sim.normalized_events();
    let pool_events = rec_pool.normalized_events();
    assert!(!sim_events.is_empty(), "streams must be non-trivial");
    assert!(
        sim_events
            .iter()
            .any(|e| matches!(e.kind, EventKind::SlotCore { .. })),
        "streams must include per-core slot spans"
    );
    assert_eq!(
        sim_events, pool_events,
        "telemetry streams must be bit-identical across backends"
    );
}

/// `ControllerTiming` is now a view over telemetry counters and
/// histogram sums; its serialized form — field names, order, and
/// integer widths — must stay exactly what pre-telemetry reports
/// carried.
#[test]
fn controller_timing_schema_is_frozen() {
    assert_eq!(
        serde_json::to_string(&ControllerTiming::default()).unwrap(),
        r#"{"boundaries":0,"replans":0,"placement_ns":0,"queue_ns":0,"decisions":0}"#
    );

    let m = Metrics::new();
    m.add(CounterId::Boundaries, 3);
    m.add(CounterId::Replans, 2);
    m.add(CounterId::Decisions, 7);
    m.observe(HistId::PlacementNs, 1_000);
    m.observe(HistId::PlacementNs, 500);
    m.observe(HistId::BoundaryNs, 250);
    let timing = ControllerTiming::from_metrics(&m);
    assert_eq!(
        serde_json::to_string(&timing).unwrap(),
        r#"{"boundaries":3,"replans":2,"placement_ns":1500,"queue_ns":250,"decisions":7}"#,
        "histogram sums must reproduce the exact pre-telemetry values"
    );
}

/// The `OnlineReport` JSON keeps its top-level keys in the frozen
/// order, with the controller block embedded under `controller`.
#[test]
fn online_report_serialized_schema_is_stable() {
    let profiles = mixed_profiles();
    let trace = trace();
    let report = serve_online(&config(), &profiles, &trace, sim_shards());
    let json = serde_json::to_string(&report).expect("report serializes");

    let expected_keys = [
        "shard_policy",
        "horizon_slots",
        "arrivals",
        "admissions",
        "evictions",
        "departures",
        "abandoned",
        "rejected",
        "queued_at_end",
        "active_at_end",
        "mean_queue_wait_slots",
        "avg_concurrent_users",
        "peak_concurrent_users",
        "windows",
        "window_misses",
        "energy_j",
        "shards",
        "events",
        "controller",
    ];
    let mut cursor = 0;
    for key in expected_keys {
        let needle = format!("\"{key}\":");
        let at = json[cursor..]
            .find(&needle)
            .unwrap_or_else(|| panic!("report JSON must carry key {key} in order"));
        cursor += at + needle.len();
    }
    assert!(
        json.contains(r#""controller":{"boundaries":"#),
        "controller block must keep its leading field"
    );
}

//! Cluster serving invariants: a reassembled multi-node bitstream must
//! be byte-identical to a single-node server-loop encode of the same
//! stream — including when a worker dies mid-run and its leased
//! segments are recovered on other nodes.

use medvt::cluster::{mixed_fleet, run_cluster, run_cluster_with, ClusterConfig};
use medvt::core::LiveWorkload;
use medvt::frame::synth::BodyPart;
use medvt::mpsoc::{Platform, PowerModel};
use medvt::runtime::{DemandSource, LoopDriver, ReplanPolicy, ServerLoopConfig, ThreadPoolBackend};
use medvt::telemetry::{EventKind, FlightRecorder};
use medvt_bench::live_workload;
use std::time::Duration;

const TOTAL_SLOTS: usize = 96;
const GOP_SLOTS: usize = 8;

/// One live stream as a single-user demand source with real work —
/// what one standalone serving node runs.
struct SoloLive<'a>(&'a LiveWorkload);

impl DemandSource for SoloLive<'_> {
    fn demand_at(&self, _user: usize, slot: usize) -> Vec<f64> {
        medvt::admission::Workload::demand_at(self.0, slot)
    }

    fn work_for(
        &self,
        _user: usize,
        slot: usize,
        thread: usize,
    ) -> Option<Box<dyn FnOnce() + Send + '_>> {
        medvt::admission::Workload::work_for(self.0, slot, thread)
    }
}

fn stream() -> LiveWorkload {
    live_workload("cluster-ci", BodyPart::Brain, "brain", 11)
}

/// The single-node reference: one server loop on a real worker pool
/// encodes the whole stream, and its captured tiles are assembled in
/// canonical order (slots in display order, tiles in tile order).
fn single_node_bitstream(workload: &LiveWorkload) -> Vec<u8> {
    let cfg = ServerLoopConfig {
        fps: 24.0,
        slots: TOTAL_SLOTS,
        policy: medvt::mpsoc::DvfsPolicy::RaceToIdle,
        replan: ReplanPolicy::PerGop { headroom: 1.15 },
        gop_slots: GOP_SLOTS,
        window_slots: Some(GOP_SLOTS),
    };
    let backend = ThreadPoolBackend::with_workers(Platform::quad_core(), PowerModel::default(), 2);
    let source = SoloLive(workload);
    let mut driver = LoopDriver::new(backend, cfg, Vec::new(), Vec::new());
    driver.update_membership(&[0], &[]);
    driver.advance(&source, TOTAL_SLOTS);
    let report = driver.into_report();
    assert_eq!(report.slots, TOTAL_SLOTS);

    let mut bytes = Vec::new();
    for slot in 0..TOTAL_SLOTS {
        let tiles = medvt::admission::Workload::demand_at(workload, slot).len();
        for thread in 0..tiles {
            bytes.extend(
                workload
                    .captured(slot, thread)
                    .expect("server loop encoded every profiled tile"),
            );
        }
    }
    bytes
}

#[test]
fn reassembled_bitstream_matches_single_node_server_loop() {
    let captured = stream().with_capture();
    let reference = single_node_bitstream(&captured);
    assert!(!reference.is_empty());

    let workload = stream();
    for fleet_size in [1usize, 3] {
        let cfg = ClusterConfig::new(mixed_fleet(fleet_size), TOTAL_SLOTS);
        let outcome = run_cluster(&cfg, &workload).expect("healthy fleet completes");
        assert_eq!(
            outcome.bitstream, reference,
            "{fleet_size}-node reassembly must be byte-identical to the \
             single-node server loop"
        );
        assert_eq!(outcome.leases_expired, 0, "healthy fleet never expires");
        assert_eq!(outcome.leases_granted, outcome.segments);
        assert!(outcome.recoveries.is_empty());
        let delivered: usize = outcome.nodes.iter().map(|n| n.segments).sum();
        assert_eq!(delivered, outcome.segments);
        if fleet_size > 1 {
            assert!(
                outcome.nodes.iter().filter(|n| n.segments > 0).count() > 1,
                "a multi-node fleet must spread segments across nodes"
            );
        }
        assert!(
            outcome
                .nodes
                .iter()
                .all(|n| n.energy_j > 0.0 || n.segments == 0),
            "delivered segments must carry modeled energy"
        );
    }
}

#[test]
fn worker_death_requeues_leases_and_preserves_bit_identity() {
    let captured = stream().with_capture();
    let reference = single_node_bitstream(&captured);

    let workload = stream();
    let mut nodes = mixed_fleet(2);
    // Node 1 crashes after delivering one segment: every lease it
    // still holds must expire, re-queue, and complete elsewhere.
    nodes[1].kill_after_segments = Some(1);
    let mut cfg = ClusterConfig::new(nodes, TOTAL_SLOTS);
    cfg.lease_timeout = Duration::from_millis(1500);
    cfg.lease_backoff = Duration::from_millis(5);

    let recorder = FlightRecorder::modeled(4, 1024);
    let outcome = run_cluster_with(&cfg, &workload, &recorder)
        .expect("survivor node completes the re-queued segments");

    assert_eq!(
        outcome.bitstream, reference,
        "recovered segments must reassemble byte-identically"
    );
    assert!(outcome.nodes[1].declared_dead, "node 1 must be condemned");
    assert!(!outcome.nodes[0].declared_dead);
    assert!(outcome.leases_expired > 0, "the dead node's leases expire");
    assert!(outcome.leases_requeued > 0, "expired leases re-queue");
    assert!(
        outcome.leases_granted > outcome.segments,
        "re-leases exceed the segment count"
    );
    assert!(
        !outcome.recoveries.is_empty(),
        "recovered segments must report recovery latency"
    );
    assert!(outcome.recoveries.iter().all(|r| r.latency_secs >= 0.0));
    assert_eq!(outcome.nodes[1].segments, 1, "one delivery before death");
    assert_eq!(
        outcome.nodes[0].segments,
        outcome.segments - 1,
        "the survivor serves everything else"
    );

    // The lease lifecycle is visible in telemetry: grants/expiries on
    // node tracks, requeues/reassemblies on the control track.
    let events = recorder.events();
    let granted = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::LeaseGranted { .. }))
        .count();
    let expired = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::LeaseExpired { .. }))
        .count();
    let reassembled = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::SegmentReassembled { .. }))
        .count();
    assert_eq!(granted, outcome.leases_granted);
    assert_eq!(expired, outcome.leases_expired);
    assert_eq!(reassembled, outcome.segments);
}

#[test]
fn two_concurrent_worker_deaths_still_reassemble_bit_identically() {
    let captured = stream().with_capture();
    let reference = single_node_bitstream(&captured);

    let workload = stream();
    let mut nodes = mixed_fleet(4);
    // Two of the four nodes die holding their very first leases
    // (initial grants spread least-loaded, so every node holds one).
    // Both must be condemned and the two survivors must absorb every
    // orphaned lease — concurrently, not one recovery after another.
    nodes[1].kill_after_segments = Some(0);
    nodes[3].kill_after_segments = Some(0);
    let mut cfg = ClusterConfig::new(nodes, TOTAL_SLOTS);
    cfg.lease_timeout = Duration::from_millis(1500);
    cfg.lease_backoff = Duration::from_millis(5);

    let recorder = FlightRecorder::modeled(6, 2048);
    let outcome = run_cluster_with(&cfg, &workload, &recorder)
        .expect("two survivors complete the re-queued segments");

    assert_eq!(
        outcome.bitstream, reference,
        "doubly-recovered segments must reassemble byte-identically"
    );
    assert!(outcome.nodes[1].declared_dead, "node 1 must be condemned");
    assert!(outcome.nodes[3].declared_dead, "node 3 must be condemned");
    assert!(!outcome.nodes[0].declared_dead);
    assert!(!outcome.nodes[2].declared_dead);
    assert!(outcome.leases_expired > 0, "both dead nodes' leases expire");
    assert!(outcome.leases_requeued > 0, "expired leases re-queue");
    assert!(
        outcome.leases_granted > outcome.segments,
        "re-leases exceed the segment count"
    );
    assert!(
        outcome.leases_expired >= 2,
        "each dead node must lose at least its first lease"
    );
    assert_eq!(outcome.nodes[1].segments, 0, "node 1 died empty-handed");
    assert_eq!(outcome.nodes[3].segments, 0, "node 3 died empty-handed");
    let delivered: usize = outcome.nodes.iter().map(|n| n.segments).sum();
    assert_eq!(delivered, outcome.segments, "no segment lost or doubled");
    assert_eq!(
        outcome.nodes[0].segments + outcome.nodes[2].segments,
        outcome.segments,
        "the survivors serve everything"
    );

    // Telemetry counts track the outcome exactly, even under
    // concurrent failures.
    let events = recorder.events();
    let granted = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::LeaseGranted { .. }))
        .count();
    let expired = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::LeaseExpired { .. }))
        .count();
    let requeued = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::LeaseRequeued { .. }))
        .count();
    let reassembled = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::SegmentReassembled { .. }))
        .count();
    assert_eq!(granted, outcome.leases_granted);
    assert_eq!(expired, outcome.leases_expired);
    assert_eq!(requeued, outcome.leases_requeued);
    assert_eq!(reassembled, outcome.segments);
}

//! # medvt — content-aware bio-medical video transcoding on MPSoCs
//!
//! A from-scratch Rust reproduction of *"Online Efficient Bio-Medical
//! Video Transcoding on MPSoCs Through Content-Aware Workload
//! Allocation"* (Iranfar, Pahlevan, Zapater, Žagar, Kovač, Atienza —
//! DATE 2018).
//!
//! This facade crate re-exports the workspace's subsystems:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`frame`] | `medvt-frame` | YUV frames, phantom bio-medical video generation, PSNR/SSIM, Y4M/PNM I/O |
//! | [`motion`] | `medvt-motion` | block-matching searches incl. the paper's bio-medical policy |
//! | [`encoder`] | `medvt-encoder` | HEVC-like tile encoder: DCT, quantization, entropy bits, GOP-8 RA |
//! | [`analyze`] | `medvt-analyze` | texture/motion classification, content-aware re-tiling, baseline tiler |
//! | [`mpsoc`] | `medvt-mpsoc` | 32-core Xeon platform model, DVFS, power/energy |
//! | [`sched`] | `medvt-sched` | workload LUT, Algorithm 2 allocator, deadline feedback |
//! | [`runtime`] | `medvt-runtime` | placement-aware execution: per-core worker pool, sim/thread-pool backends, server loop |
//! | [`telemetry`] | `medvt-telemetry` | flight-recorder observability: typed events, lock-free rings, counters/histograms, trace export |
//! | [`admission`] | `medvt-admission` | live admission control: request queue, shard policies, GOP-boundary admit/evict |
//! | [`core`] | `medvt-core` | the full pipeline, baseline \[19\], multi-user server (batch, online, live) on either backend |
//! | [`cluster`] | `medvt-cluster` | coordinator/worker cluster serving: segment leasing, fault-tolerant reassembly, heterogeneous fleets |
//!
//! # Examples
//!
//! ```
//! use medvt::core::{ContentAwareController, PipelineConfig};
//! use medvt::encoder::{EncoderConfig, VideoEncoder};
//! use medvt::frame::synth::{BodyPart, PhantomVideo};
//! use medvt::frame::Resolution;
//! use medvt::sched::WorkloadLut;
//!
//! let clip = PhantomVideo::builder(BodyPart::Cardiac)
//!     .resolution(Resolution::new(128, 96))
//!     .seed(3)
//!     .build()
//!     .capture(9);
//! let mut controller = ContentAwareController::new(
//!     PipelineConfig {
//!         analyzer: medvt::analyze::AnalyzerConfig {
//!             min_tile_width: 32,
//!             min_tile_height: 32,
//!             ..Default::default()
//!         },
//!         ..Default::default()
//!     },
//!     WorkloadLut::new(),
//! );
//! let stats = VideoEncoder::new(EncoderConfig::default()).encode_clip(&clip, &mut controller);
//! assert!(stats.mean_psnr() > 28.0);
//! ```

#![warn(missing_docs)]

pub use medvt_admission as admission;
pub use medvt_analyze as analyze;
pub use medvt_cluster as cluster;
pub use medvt_core as core;
pub use medvt_encoder as encoder;
pub use medvt_frame as frame;
pub use medvt_motion as motion;
pub use medvt_mpsoc as mpsoc;
pub use medvt_runtime as runtime;
pub use medvt_sched as sched;
pub use medvt_telemetry as telemetry;

//! Thread (tile) allocation — paper Algorithm 2, lines 1–15.
//!
//! Given each admitted user's per-tile CPU-time demands (in reference
//! fmax-seconds per 1/FPS slot), the allocator:
//!
//! 1. computes each user's core demand `N_core = ceil(Σ T_fmax · FPS)`;
//! 2. admits the maximum number of users by ascending core demand
//!    until the platform's cores are exhausted;
//! 3. places every admitted thread on the core that brings its load
//!    closest to a dynamic cap (the current maximum core load, clipped
//!    to the slot), i.e. `argmin_k |Cap − (Load_k + T_j)|`.
//!
//! On heterogeneous platforms ([`place_threads_on`]) loads are
//! normalized to *effective* fmax-seconds — `secs / speed_factor` —
//! so the cap-seeking argmin balances per-core **finish times**, not
//! raw seconds, and candidate cores are recruited fastest-first.
//!
//! The DVFS stage (lines 16–24) is `medvt_mpsoc::simulate_slot`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a [`UserDemand`] was rejected at construction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DemandError {
    /// A per-tile estimate was NaN or infinite.
    NonFinite {
        /// Thread (tile) index of the offending entry.
        thread: usize,
    },
    /// A per-tile estimate was negative.
    Negative {
        /// Thread (tile) index of the offending entry.
        thread: usize,
        /// The rejected value.
        secs: f64,
    },
}

impl fmt::Display for DemandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DemandError::NonFinite { thread } => {
                write!(f, "thread {thread} demand is not finite")
            }
            DemandError::Negative { thread, secs } => {
                write!(f, "thread {thread} demand is negative ({secs} s)")
            }
        }
    }
}

impl std::error::Error for DemandError {}

/// One user's demand for a scheduling slot: the estimated CPU time of
/// each of its tiles at the reference f_max.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserDemand {
    /// Caller-meaningful user identifier.
    pub user: usize,
    /// Per-tile fmax-seconds for one frame slot.
    pub thread_secs: Vec<f64>,
}

impl UserDemand {
    /// Creates a demand, validating every per-tile estimate: NaN,
    /// infinite or negative entries would otherwise propagate through
    /// `core_demand` and placement into nonsense allocations.
    pub fn try_new(user: usize, thread_secs: Vec<f64>) -> Result<Self, DemandError> {
        for (thread, &secs) in thread_secs.iter().enumerate() {
            if !secs.is_finite() {
                return Err(DemandError::NonFinite { thread });
            }
            if secs < 0.0 {
                return Err(DemandError::Negative { thread, secs });
            }
        }
        Ok(Self { user, thread_secs })
    }

    /// Creates a demand.
    ///
    /// # Panics
    ///
    /// Panics when any per-tile estimate is NaN, infinite or negative
    /// (see [`UserDemand::try_new`] for the fallible form).
    pub fn new(user: usize, thread_secs: Vec<f64>) -> Self {
        Self::try_new(user, thread_secs)
            .unwrap_or_else(|e| panic!("invalid demand for user {user}: {e}"))
    }

    /// Total fmax-seconds per slot.
    pub fn total_secs(&self) -> f64 {
        self.thread_secs.iter().sum()
    }

    /// Fractional core demand (Algorithm 2 line 1): `(Σ T) · FPS`.
    /// The paper sums these *fractional* demands during admission —
    /// that is how ~23 users of ~1.4 cores each fit on 32 cores.
    pub fn core_demand(&self, fps: f64) -> f64 {
        self.total_secs() * fps
    }

    /// Whole cores needed: `ceil((Σ T) · FPS)`, used for sizing the
    /// placement candidate set.
    pub fn cores_needed(&self, fps: f64) -> usize {
        self.core_demand(fps).ceil().max(1.0) as usize
    }
}

/// One placed thread.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// User identifier.
    pub user: usize,
    /// Thread (tile) index within the user.
    pub thread: usize,
    /// Core the thread runs on.
    pub core: usize,
    /// The thread's fmax-seconds.
    pub secs: f64,
}

/// The allocator's output.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Allocation {
    /// Users admitted this slot, in admission order.
    pub admitted: Vec<usize>,
    /// Users that did not fit.
    pub rejected: Vec<usize>,
    /// Thread placements.
    pub placements: Vec<Placement>,
    /// Resulting per-core load in reference fmax-seconds.
    pub core_loads: Vec<f64>,
}

impl Allocation {
    /// Highest core load, reference fmax-seconds.
    pub fn max_load(&self) -> f64 {
        self.core_loads.iter().copied().fold(0.0, f64::max)
    }

    /// Number of cores with any load.
    pub fn used_cores(&self) -> usize {
        self.core_loads.iter().filter(|&&l| l > 0.0).count()
    }

    /// Per-core finish times in seconds given per-core `speeds`: a
    /// core of speed `s` retires its reference-fmax-second load at
    /// rate `s`. On homogeneous platforms (all speeds 1.0) this equals
    /// `core_loads`.
    ///
    /// # Panics
    ///
    /// Panics when `speeds` length differs from the core count.
    pub fn finish_times(&self, speeds: &[f64]) -> Vec<f64> {
        assert_eq!(
            speeds.len(),
            self.core_loads.len(),
            "one speed per core required"
        );
        self.core_loads
            .iter()
            .zip(speeds)
            .map(|(&load, &s)| load / s)
            .collect()
    }

    /// Worst-core finish time in seconds given per-core `speeds` — the
    /// quantity speed-aware placement minimizes.
    pub fn worst_finish_secs(&self, speeds: &[f64]) -> f64 {
        self.finish_times(speeds).into_iter().fold(0.0, f64::max)
    }

    /// Load imbalance: max/mean over used cores (1.0 = perfect).
    pub fn imbalance(&self) -> f64 {
        let used: Vec<f64> = self
            .core_loads
            .iter()
            .copied()
            .filter(|&l| l > 0.0)
            .collect();
        if used.is_empty() {
            return 1.0;
        }
        let mean = used.iter().sum::<f64>() / used.len() as f64;
        self.max_load() / mean
    }
}

/// Runs Algorithm 2 lines 1–15.
///
/// `slot_secs` is the 1/FPS scheduling interval. Admission sorts users
/// by ascending core demand (line 2) — ties keep queue order. The
/// placement loop (lines 3–15) runs over the *demanded* core set
/// `N_core^U = Σ N_core^k` of the admitted users, not the whole
/// platform: that restriction is what consolidates threads onto few
/// cores and leaves the rest of the platform idle for other work or
/// deep sleep. Threads are handled in descending duration so large
/// tiles seed the packing.
///
/// # Panics
///
/// Panics when `cores` is zero or `slot_secs` is not positive.
pub fn allocate(cores: usize, slot_secs: f64, users: &[UserDemand]) -> Allocation {
    assert!(cores > 0, "need at least one core");
    allocate_on(&vec![1.0; cores], slot_secs, users)
}

/// Speed-aware admission *and* placement over heterogeneous cores:
/// users are admitted by ascending fractional demand against the
/// platform's **effective capacity** `Σ speeds` (reference cores), so
/// a big.LITTLE socket admits against e.g. 5.8 cores rather than its
/// raw core count, and the admitted set is placed with
/// [`place_threads_on`] semantics. On homogeneous platforms
/// (`speeds = [1.0; cores]`) this is bit-for-bit [`allocate`].
///
/// # Panics
///
/// Panics when `speeds` is empty or contains a non-positive or
/// non-finite entry, or `slot_secs` is not positive.
pub fn allocate_on(speeds: &[f64], slot_secs: f64, users: &[UserDemand]) -> Allocation {
    assert!(!speeds.is_empty(), "need at least one core");
    assert!(
        speeds.iter().all(|s| s.is_finite() && *s > 0.0),
        "core speeds must be positive and finite"
    );
    assert!(slot_secs > 0.0, "slot must be positive");
    let fps = 1.0 / slot_secs;
    let capacity: f64 = speeds.iter().sum();

    // Lines 1–2: admit the maximum number of users by ascending
    // *fractional* core demand until the summed demand reaches Nc.
    let mut order: Vec<usize> = (0..users.len()).collect();
    order.sort_by(|&a, &b| {
        users[a]
            .core_demand(fps)
            .total_cmp(&users[b].core_demand(fps))
            .then(a.cmp(&b))
    });
    let mut admitted = Vec::new();
    let mut rejected = Vec::new();
    let mut used = 0.0f64;
    for i in order {
        let need = users[i].core_demand(fps);
        if used + need <= capacity + 1e-9 {
            used += need;
            admitted.push(users[i].user);
        } else {
            rejected.push(users[i].user);
        }
    }

    // Gather admitted threads, largest first.
    let mut threads: Vec<Placement> = Vec::new();
    for u in users {
        if admitted.contains(&u.user) {
            for (t, &secs) in u.thread_secs.iter().enumerate() {
                threads.push(Placement {
                    user: u.user,
                    thread: t,
                    core: usize::MAX,
                    secs,
                });
            }
        }
    }
    let core_loads = place(&mut threads, speeds, used, slot_secs);
    Allocation {
        admitted,
        rejected,
        placements: threads,
        core_loads,
    }
}

/// Runs only the placement stage (lines 3–15) for an already-admitted
/// user set on identical reference-speed cores — what happens at the
/// start of every GOP once admission is settled (§III-D2: "thread
/// allocation is performed once at the beginning of each GOP").
///
/// # Panics
///
/// Panics when `cores` is zero or `slot_secs` is not positive.
pub fn place_threads(cores: usize, slot_secs: f64, users: &[UserDemand]) -> Allocation {
    assert!(cores > 0, "need at least one core");
    place_threads_on(&vec![1.0; cores], slot_secs, users)
}

/// Speed-aware placement (lines 3–15) over heterogeneous cores:
/// `speeds[k]` is core `k`'s throughput relative to the reference
/// class (`medvt_mpsoc::Platform::core_speeds`). Loads are normalized
/// to effective fmax-seconds (`secs / speed`) so the dynamic-cap
/// argmin balances per-core *finish times*; candidate cores are
/// recruited fastest-first, so fast cores are never left idle while
/// slower cores overload.
///
/// # Panics
///
/// Panics when `speeds` is empty or contains a non-positive or
/// non-finite entry, or `slot_secs` is not positive.
pub fn place_threads_on(speeds: &[f64], slot_secs: f64, users: &[UserDemand]) -> Allocation {
    assert!(!speeds.is_empty(), "need at least one core");
    assert!(
        speeds.iter().all(|s| s.is_finite() && *s > 0.0),
        "core speeds must be positive and finite"
    );
    assert!(slot_secs > 0.0, "slot must be positive");
    let fps = 1.0 / slot_secs;
    let demanded: f64 = users.iter().map(|u| u.core_demand(fps)).sum();
    let mut threads: Vec<Placement> = users
        .iter()
        .flat_map(|u| {
            u.thread_secs
                .iter()
                .enumerate()
                .map(|(t, &secs)| Placement {
                    user: u.user,
                    thread: t,
                    core: usize::MAX,
                    secs,
                })
        })
        .collect();
    let core_loads = place(&mut threads, speeds, demanded, slot_secs);
    Allocation {
        admitted: users.iter().map(|u| u.user).collect(),
        rejected: vec![],
        placements: threads,
        core_loads,
    }
}

/// Cap-seeking placement over a fastest-first candidate core set whose
/// cumulative speed covers `demand_frac` reference cores (clamped to
/// the platform), largest thread first. Loads and the cap are compared
/// in *normalized* (finish-time) units so heterogeneous cores balance
/// when they finish together.
fn place(threads: &mut [Placement], speeds: &[f64], demand_frac: f64, slot_secs: f64) -> Vec<f64> {
    threads.sort_by(|a, b| b.secs.total_cmp(&a.secs));
    let candidates = candidate_set(speeds, demand_frac);
    let mut core_loads = vec![0.0f64; speeds.len()];
    for th in threads.iter_mut() {
        let max_norm = max_norm_of(&core_loads, speeds, &candidates);
        let cap = cap_for(max_norm, slot_secs);
        let best_core = select_core(&core_loads, speeds, &candidates, slot_secs, cap, th.secs);
        th.core = best_core;
        core_loads[best_core] += th.secs;
    }
    core_loads
}

/// Candidate recruitment: fastest cores first (stable by id), until
/// their summed speed covers the demanded fractional cores — the
/// heterogeneous generalization of "the first ceil(ΣN_core) cores".
pub(crate) fn candidate_set(speeds: &[f64], demand_frac: f64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..speeds.len()).collect();
    order.sort_by(|&a, &b| speeds[b].total_cmp(&speeds[a]).then(a.cmp(&b)));
    let mut candidates = 0usize;
    let mut cum_speed = 0.0f64;
    while candidates < order.len() && (candidates == 0 || cum_speed < demand_frac - 1e-9) {
        cum_speed += speeds[order[candidates]];
        candidates += 1;
    }
    order.truncate(candidates);
    order
}

/// Highest normalized (finish-time) load over the candidate cores —
/// the fold order matches the historical inline computation so results
/// stay bitwise identical.
pub(crate) fn max_norm_of(core_loads: &[f64], speeds: &[f64], candidates: &[usize]) -> f64 {
    candidates
        .iter()
        .map(|&k| core_loads[k] / speeds[k])
        .fold(0.0, f64::max)
}

/// The dynamic fill ceiling: the current worst normalized load,
/// clipped to the slot.
pub(crate) fn cap_for(max_norm: f64, slot_secs: f64) -> f64 {
    if max_norm > slot_secs {
        slot_secs
    } else {
        max_norm
    }
}

/// Picks the core for one thread of `secs` fmax-seconds — the body of
/// Algorithm 2's placement loop, shared verbatim between the
/// from-scratch pass above and incremental replay
/// ([`crate::IncrementalPlacer`]) so both produce bitwise-identical
/// decisions.
///
/// The cap is a fill ceiling (lines 5–9: "CPU time … cannot be above
/// 1/FPS"): among cores where the thread still finishes within the
/// slot, pick the one landing nearest the cap; if none fits, spill to
/// the core whose *post-placement* finish time `(load + secs) / speed`
/// is smallest, so overload lands where it hurts the worst-core finish
/// least. (Spilling by pre-placement load instead can push a large
/// thread onto an idle slow core when a partially loaded fast core
/// would finish sooner.) Ties break to the first candidate in
/// recruitment order (fastest, then lowest id).
pub(crate) fn select_core(
    core_loads: &[f64],
    speeds: &[f64],
    candidates: &[usize],
    slot_secs: f64,
    cap: f64,
    secs: f64,
) -> usize {
    let mut best_fit: Option<(usize, f64)> = None;
    let mut spill: (usize, f64) = (candidates[0], f64::INFINITY);
    for &k in candidates {
        let with = (core_loads[k] + secs) / speeds[k];
        if with < spill.1 {
            spill = (k, with);
        }
        if with <= slot_secs + 1e-12 {
            let dist = (cap - with).abs();
            if best_fit.is_none_or(|(_, d)| dist < d) {
                best_fit = Some((k, dist));
            }
        }
    }
    best_fit.map_or(spill.0, |(k, _)| k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const SLOT: f64 = 1.0 / 24.0;

    fn demand(user: usize, secs: &[f64]) -> UserDemand {
        UserDemand::new(user, secs.to_vec())
    }

    #[test]
    fn cores_needed_matches_line1() {
        let u = demand(0, &[0.01, 0.02, 0.015]);
        // Σ = 0.045 s per slot x 24 fps = 1.08 → 2 cores.
        assert_eq!(u.cores_needed(24.0), 2);
        let light = demand(1, &[0.001]);
        assert_eq!(light.cores_needed(24.0), 1);
    }

    #[test]
    fn nan_and_negative_demands_rejected_with_typed_error() {
        assert_eq!(
            UserDemand::try_new(7, vec![0.01, f64::NAN]),
            Err(DemandError::NonFinite { thread: 1 })
        );
        assert_eq!(
            UserDemand::try_new(7, vec![f64::INFINITY]),
            Err(DemandError::NonFinite { thread: 0 })
        );
        assert_eq!(
            UserDemand::try_new(7, vec![0.01, 0.02, -0.5]),
            Err(DemandError::Negative {
                thread: 2,
                secs: -0.5
            })
        );
        // Zero is a legal (idle-tile) estimate.
        assert!(UserDemand::try_new(7, vec![0.0, 0.01]).is_ok());
        assert!(UserDemand::try_new(7, vec![]).is_ok());
        // The error explains itself.
        let err = UserDemand::try_new(7, vec![-1.0]).unwrap_err();
        assert!(err.to_string().contains("negative"));
    }

    #[test]
    #[should_panic(expected = "invalid demand for user 3")]
    fn new_panics_on_nan_demand() {
        UserDemand::new(3, vec![f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn new_panics_on_negative_demand() {
        UserDemand::new(3, vec![-0.01]);
    }

    #[test]
    fn admission_prefers_light_users() {
        // 3 cores; heavy user needs 3, light users need 1 each.
        let users = vec![
            demand(0, &[SLOT, SLOT, SLOT / 2.0]), // needs 3
            demand(1, &[SLOT / 3.0]),             // needs 1
            demand(2, &[SLOT / 3.0]),             // needs 1
            demand(3, &[SLOT / 3.0]),             // needs 1
        ];
        let alloc = allocate(3, SLOT, &users);
        assert_eq!(alloc.admitted, vec![1, 2, 3]);
        assert_eq!(alloc.rejected, vec![0]);
    }

    #[test]
    fn all_admitted_threads_are_placed() {
        let users = vec![
            demand(0, &[0.004, 0.003, 0.001]),
            demand(1, &[0.010, 0.002]),
        ];
        let alloc = allocate(4, SLOT, &users);
        assert_eq!(alloc.admitted.len(), 2);
        assert_eq!(alloc.placements.len(), 5);
        assert!(alloc.placements.iter().all(|p| p.core < 4));
        let total: f64 = alloc.core_loads.iter().sum();
        assert!((total - 0.020).abs() < 1e-12);
    }

    #[test]
    fn placement_balances_loads_across_demanded_cores() {
        // 8 threads of half a slot each: demand = 4 cores; balance is
        // exactly two threads per core.
        let users = vec![demand(0, &[SLOT / 2.0; 8])];
        let alloc = allocate(8, SLOT, &users);
        assert_eq!(alloc.used_cores(), 4);
        for &load in &alloc.core_loads[..4] {
            assert!((load - SLOT).abs() < 1e-12, "load={load}");
        }
        assert!((alloc.imbalance() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn consolidates_before_spreading() {
        // The cap rule packs threads onto busy cores while they stay
        // under the slot, minimizing the number of active cores — the
        // source of the paper's DVFS savings.
        let users = vec![demand(0, &[SLOT / 4.0; 4])];
        let alloc = allocate(8, SLOT, &users);
        // 4 x SLOT/4 fits one core exactly.
        assert_eq!(alloc.used_cores(), 1, "loads={:?}", alloc.core_loads);
        assert!(alloc.max_load() <= SLOT + 1e-12);
    }

    #[test]
    fn demand_rounding_can_overrun_and_carry() {
        // 3 x 0.6-slot threads: demand ceil(1.8) = 2 cores, so one core
        // must take two threads and carry the overrun into the next
        // slot — Algorithm 2's lines 5–6/21–22 behaviour.
        let users = vec![demand(0, &[SLOT * 0.6; 3])];
        let alloc = allocate(4, SLOT, &users);
        assert_eq!(alloc.used_cores(), 2);
        assert!(alloc.max_load() > SLOT);
    }

    #[test]
    fn empty_queue_yields_empty_allocation() {
        let alloc = allocate(4, SLOT, &[]);
        assert!(alloc.admitted.is_empty());
        assert!(alloc.placements.is_empty());
        assert_eq!(alloc.used_cores(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        allocate(0, SLOT, &[]);
    }

    #[test]
    fn speed_aware_placement_prefers_fast_cores() {
        // 4 fast cores + 4 half-speed cores; light load that fits the
        // fast cluster: the slow cores stay empty.
        let speeds = [1.0, 1.0, 1.0, 1.0, 0.5, 0.5, 0.5, 0.5];
        let users = vec![demand(0, &[SLOT / 2.0; 6])]; // 3 reference cores
        let alloc = place_threads_on(&speeds, SLOT, &users);
        assert_eq!(alloc.placements.len(), 6);
        for &load in &alloc.core_loads[4..] {
            assert_eq!(load, 0.0, "slow cores must stay idle under light load");
        }
    }

    #[test]
    fn speed_aware_placement_normalizes_finish_times() {
        // Threads that fit neither cluster in one piece spill to the
        // soonest-finishing core in *normalized* time: worst-core
        // finish is what gets balanced.
        let speeds = [1.0, 1.0, 0.5, 0.5];
        let users = vec![demand(0, &[SLOT * 0.6; 4])]; // 2.4 ref cores
        let alloc = place_threads_on(&speeds, SLOT, &users);
        let finish = alloc.finish_times(&speeds);
        // Fast cores take one 0.6-slot thread each (finish 0.6); the
        // remaining two can't fit anywhere (slow finish would be 1.2)
        // so they spill — but never onto an already-loaded fast core
        // while a sooner-finishing option exists.
        assert!(alloc.worst_finish_secs(&speeds) <= SLOT * 1.2 + 1e-12);
        assert_eq!(finish.len(), 4);
    }

    #[test]
    fn spill_minimizes_post_placement_finish_time() {
        // One big core (1.0) and one LITTLE (0.45). The 0.9-slot thread
        // seeds the big core; the 0.85-slot thread fits nowhere and
        // must spill. Pre-placement load would send it to the idle
        // LITTLE core (finish 0.85/0.45 = 1.89 slots); the argmin of
        // post-placement finish keeps it on the big core
        // ((0.9+0.85)/1.0 = 1.75 slots), the better worst case.
        let speeds = [1.0, 0.45];
        let users = vec![demand(0, &[SLOT * 0.9, SLOT * 0.85])];
        let alloc = place_threads_on(&speeds, SLOT, &users);
        assert!(
            alloc.placements.iter().all(|p| p.core == 0),
            "both threads belong on the big core: {:?}",
            alloc.placements
        );
        let worst = alloc.worst_finish_secs(&speeds) / SLOT;
        assert!(
            (worst - 1.75).abs() < 1e-9,
            "worst-core finish should be 1.75 slots, got {worst}"
        );
    }

    #[test]
    fn allocate_on_admits_against_effective_capacity() {
        // 4 big (1.0) + 4 LITTLE (0.45): effective capacity 5.8
        // reference cores, not 8 — exactly 5 one-core users fit.
        let speeds = [1.0, 1.0, 1.0, 1.0, 0.45, 0.45, 0.45, 0.45];
        let users: Vec<UserDemand> = (0..8)
            .map(|u| demand(u, &[SLOT / 2.0, SLOT / 2.0]))
            .collect();
        let alloc = allocate_on(&speeds, SLOT, &users);
        assert_eq!(
            alloc.admitted.len(),
            5,
            "5.8 effective cores admit 5 unit users"
        );
        assert_eq!(alloc.rejected.len(), 3);
    }

    #[test]
    fn allocate_on_homogeneous_matches_allocate() {
        let users = vec![
            demand(0, &[SLOT * 0.6, SLOT * 0.3]),
            demand(1, &[SLOT / 3.0; 5]),
            demand(2, &[SLOT * 0.9]),
            demand(3, &[SLOT / 4.0; 2]),
        ];
        let a = allocate(4, SLOT, &users);
        let b = allocate_on(&[1.0; 4], SLOT, &users);
        assert_eq!(a, b, "homogeneous allocate_on must equal allocate");
    }

    #[test]
    fn finish_times_match_loads_on_homogeneous_cores() {
        let users = vec![demand(0, &[SLOT / 3.0; 5])];
        let alloc = place_threads(4, SLOT, &users);
        let speeds = vec![1.0; 4];
        assert_eq!(alloc.finish_times(&speeds), alloc.core_loads);
        assert!((alloc.worst_finish_secs(&speeds) - alloc.max_load()).abs() < 1e-15);
    }

    proptest! {
        #[test]
        fn prop_no_thread_lost_and_loads_consistent(
            user_count in 1usize..6,
            threads_per_user in 1usize..6,
            base_ms in 1u32..20,
        ) {
            let users: Vec<UserDemand> = (0..user_count)
                .map(|u| {
                    demand(
                        u,
                        &vec![base_ms as f64 * 1e-3; threads_per_user],
                    )
                })
                .collect();
            let alloc = allocate(16, SLOT, &users);
            // Every admitted user's threads placed exactly once.
            let expect = alloc.admitted.len() * threads_per_user;
            prop_assert_eq!(alloc.placements.len(), expect);
            // Core loads equal the sum of placements.
            let mut check = [0.0f64; 16];
            for p in &alloc.placements {
                check[p.core] += p.secs;
            }
            for (a, b) in check.iter().zip(&alloc.core_loads) {
                prop_assert!((a - b).abs() < 1e-12);
            }
            // Admitted + rejected = all users.
            prop_assert_eq!(
                alloc.admitted.len() + alloc.rejected.len(),
                user_count
            );
        }

        /// `place_threads` invariants over irregular demand shapes:
        /// every thread placed exactly once on a valid core, core
        /// loads consistent with placements, overload bounded by one
        /// spilled thread, and a single-core-sized total never
        /// overloads at all.
        #[test]
        fn prop_place_threads_places_each_thread_once_with_bounded_load(
            thread_ms in proptest::collection::vec(
                proptest::collection::vec(1u32..40, 1..6),
                1..6,
            ),
        ) {
            let users: Vec<UserDemand> = thread_ms
                .iter()
                .enumerate()
                .map(|(u, ms)| {
                    demand(u, &ms.iter().map(|&m| m as f64 * 1e-3).collect::<Vec<_>>())
                })
                .collect();
            let cores = 16;
            let alloc = place_threads(cores, SLOT, &users);
            // Every thread placed exactly once, on a real core.
            let expect: usize = users.iter().map(|u| u.thread_secs.len()).sum();
            prop_assert_eq!(alloc.placements.len(), expect);
            let mut seen = std::collections::HashSet::new();
            for p in &alloc.placements {
                prop_assert!(p.core < cores);
                prop_assert!(seen.insert((p.user, p.thread)), "thread placed twice");
            }
            // Core loads equal the sum of their placements.
            let mut check = vec![0.0f64; cores];
            for p in &alloc.placements {
                check[p.core] += p.secs;
            }
            for (a, b) in check.iter().zip(&alloc.core_loads) {
                prop_assert!((a - b).abs() < 1e-12);
            }
            // No core overloads beyond the slot capacity by more than
            // one spilled thread (spill targets the least-loaded core,
            // which is provably under the slot when any work remains).
            let largest = users
                .iter()
                .flat_map(|u| u.thread_secs.iter())
                .fold(0.0f64, |a, &b| a.max(b));
            prop_assert!(alloc.max_load() <= SLOT + largest + 1e-12);
            // A total that fits one core never overloads anything.
            let total: f64 = users.iter().map(UserDemand::total_secs).sum();
            if total <= SLOT + 1e-12 {
                prop_assert!(alloc.max_load() <= SLOT + 1e-12);
            }
        }

        /// Equal-sized tiles divide slots exactly: the cap-seeking
        /// placement must never overload any core beyond the slot.
        #[test]
        fn prop_place_threads_equal_tiles_never_overload(
            tiles_per_slot in 2usize..16,
            threads in 1usize..40,
        ) {
            let secs = SLOT / tiles_per_slot as f64;
            let users = vec![demand(0, &vec![secs; threads])];
            let alloc = place_threads(32, SLOT, &users);
            prop_assert!(
                alloc.max_load() <= SLOT + 1e-12,
                "equal tiles overloaded a core: {} > slot",
                alloc.max_load()
            );
            prop_assert_eq!(alloc.placements.len(), threads);
        }

        /// Permuting the user list must not change the resulting
        /// per-core load vector: placement is order-stable.
        #[test]
        fn prop_place_threads_stable_under_user_permutation(
            thread_ms in proptest::collection::vec(
                proptest::collection::vec(1u32..40, 1..6),
                2..6,
            ),
            rotation in 1usize..5,
        ) {
            let users: Vec<UserDemand> = thread_ms
                .iter()
                .enumerate()
                .map(|(u, ms)| {
                    demand(u, &ms.iter().map(|&m| m as f64 * 1e-3).collect::<Vec<_>>())
                })
                .collect();
            let mut permuted = users.clone();
            let k = rotation % permuted.len();
            permuted.rotate_left(k);
            let a = place_threads(16, SLOT, &users);
            let b = place_threads(16, SLOT, &permuted);
            for (x, y) in a.core_loads.iter().zip(&b.core_loads) {
                prop_assert!(
                    (x - y).abs() < 1e-12,
                    "permutation changed core loads: {:?} vs {:?}",
                    a.core_loads,
                    b.core_loads
                );
            }
            prop_assert_eq!(a.placements.len(), b.placements.len());
        }
    }
}

//! The LUT-based workload estimator — paper §III-D1.
//!
//! The re-tiler produces a *limited* number of attainable tile
//! structures and the encoder a limited number of configurations, so
//! per-(structure, configuration) CPU-time histograms converge quickly.
//! The LUT stores those histograms, keeps updating them online, and —
//! because medical images fall into few body-part classes — a LUT
//! warmed on one video seeds estimation for other videos of the same
//! class ([`LutBank`]).

use medvt_analyze::TextureClass;
use medvt_encoder::Qp;
use medvt_frame::{FrameKind, Rect};
use medvt_motion::MotionLevel;
use serde::Serialize;
use std::collections::HashMap;

/// Ring-buffer histogram of observed CPU cycles for one key.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct CycleHistogram {
    samples: Vec<u64>,
    next: usize,
    filled: bool,
    observations: u64,
}

/// Capacity of each histogram's ring buffer.
const HISTOGRAM_CAPACITY: usize = 64;

impl CycleHistogram {
    fn new() -> Self {
        Self {
            samples: Vec::with_capacity(HISTOGRAM_CAPACITY),
            next: 0,
            filled: false,
            observations: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, cycles: u64) {
        if self.samples.len() < HISTOGRAM_CAPACITY {
            self.samples.push(cycles);
        } else {
            self.samples[self.next] = cycles;
            self.filled = true;
        }
        self.next = (self.next + 1) % HISTOGRAM_CAPACITY;
        self.observations += 1;
    }

    /// Robust estimate: the median of the retained window.
    pub fn estimate(&self) -> Option<u64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        Some(sorted[sorted.len() / 2])
    }

    /// Total number of observations ever recorded.
    pub fn observations(&self) -> u64 {
        self.observations
    }
}

/// The discrete key the LUT buckets on: tile geometry, content classes
/// and encoding configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct LutKey {
    /// Tile area in 64x64-sample units (rounded), coarse enough that
    /// re-tilings of similar size share a bucket.
    pub area_units: u32,
    /// Texture class of the tile.
    pub texture: TextureClass,
    /// Motion level of the tile.
    pub motion: MotionLevel,
    /// QP bucket (QP / 5).
    pub qp_bucket: u8,
    /// Search algorithm name.
    pub search: &'static str,
    /// Frame kind letter (I/P/B).
    pub kind: char,
}

impl LutKey {
    /// Builds a key from tile attributes.
    pub fn new(
        rect: &Rect,
        texture: TextureClass,
        motion: MotionLevel,
        qp: Qp,
        search: &'static str,
        kind: FrameKind,
    ) -> Self {
        Self {
            area_units: (rect.area() as f64 / 4096.0).round().max(1.0) as u32,
            texture,
            motion,
            qp_bucket: qp.value() / 5,
            search,
            kind: kind.letter(),
        }
    }
}

/// The workload lookup table: per-key cycle histograms, updated online.
///
/// # Examples
///
/// ```
/// use medvt_sched::{LutKey, WorkloadLut};
/// use medvt_analyze::TextureClass;
/// use medvt_encoder::Qp;
/// use medvt_frame::{FrameKind, Rect};
/// use medvt_motion::MotionLevel;
///
/// let mut lut = WorkloadLut::new();
/// let key = LutKey::new(
///     &Rect::new(0, 0, 128, 128),
///     TextureClass::High,
///     MotionLevel::High,
///     Qp::new(27).expect("valid"),
///     "biomed",
///     FrameKind::BiPredicted,
/// );
/// lut.observe(key, 1_000_000);
/// assert_eq!(lut.estimate(&key), Some(1_000_000));
/// ```
#[derive(Debug, Clone, Default, Serialize)]
pub struct WorkloadLut {
    entries: HashMap<LutKey, CycleHistogram>,
    default_cycles_per_sample: f64,
}

impl WorkloadLut {
    /// Creates an empty LUT with the default cold-start model.
    pub fn new() -> Self {
        Self {
            entries: HashMap::new(),
            // Cold-start guess: ~60 cycles per luma sample, the rough
            // cost of an unoptimized inter tile with a thorough search.
            default_cycles_per_sample: 60.0,
        }
    }

    /// Records a measured tile encode.
    pub fn observe(&mut self, key: LutKey, cycles: u64) {
        self.entries
            .entry(key)
            .or_insert_with(CycleHistogram::new)
            .observe(cycles);
    }

    /// Estimate for an exact key, if observed before.
    pub fn estimate(&self, key: &LutKey) -> Option<u64> {
        self.entries.get(key).and_then(CycleHistogram::estimate)
    }

    /// Estimate with fallbacks: exact key → same key at neighbouring
    /// area buckets (scaled) → cold-start area-proportional model.
    pub fn estimate_or_model(&self, key: &LutKey) -> u64 {
        if let Some(e) = self.estimate(key) {
            return e;
        }
        // Neighbouring area buckets with otherwise identical attributes
        // scale roughly linearly in area.
        let mut best: Option<(u32, u64)> = None;
        for (k, h) in &self.entries {
            if k.texture == key.texture
                && k.motion == key.motion
                && k.qp_bucket == key.qp_bucket
                && k.search == key.search
                && k.kind == key.kind
            {
                if let Some(est) = h.estimate() {
                    let d = k.area_units.abs_diff(key.area_units);
                    if best.is_none_or(|(bd, _)| d < bd.abs_diff(key.area_units)) {
                        best = Some((k.area_units, est));
                    }
                }
            }
        }
        if let Some((units, est)) = best {
            return (est as f64 * key.area_units as f64 / units as f64) as u64;
        }
        (self.default_cycles_per_sample * key.area_units as f64 * 4096.0) as u64
    }

    /// Number of distinct keys observed.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total observations across all keys.
    pub fn total_observations(&self) -> u64 {
        self.entries.values().map(|h| h.observations()).sum()
    }

    /// Merges another LUT's histograms into this one (class transfer).
    pub fn absorb(&mut self, other: &WorkloadLut) {
        for (k, h) in &other.entries {
            let entry = self.entries.entry(*k).or_insert_with(CycleHistogram::new);
            for &s in &h.samples {
                entry.observe(s);
            }
        }
    }
}

/// Per-body-part-class LUT bank — the transfer mechanism of §III-D1
/// ("the obtained LUT of one MRI or CT data \[serves\] the rest of the
/// images in the same class").
#[derive(Debug, Clone, Default)]
pub struct LutBank {
    per_class: HashMap<String, WorkloadLut>,
}

impl LutBank {
    /// Creates an empty bank.
    pub fn new() -> Self {
        Self::default()
    }

    /// The LUT for `class`, created empty on first use.
    pub fn lut_mut(&mut self, class: &str) -> &mut WorkloadLut {
        self.per_class.entry(class.to_string()).or_default()
    }

    /// Read access to a class LUT.
    pub fn lut(&self, class: &str) -> Option<&WorkloadLut> {
        self.per_class.get(class)
    }

    /// Seeds a fresh per-video LUT from the class LUT (cheap clone of
    /// converged histograms).
    pub fn seed_for(&self, class: &str) -> WorkloadLut {
        self.per_class.get(class).cloned().unwrap_or_default()
    }

    /// Folds a finished video's LUT back into its class.
    pub fn learn(&mut self, class: &str, lut: &WorkloadLut) {
        self.lut_mut(class).absorb(lut);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(area_units: u32, qp: u8) -> LutKey {
        LutKey {
            area_units,
            texture: TextureClass::Medium,
            motion: MotionLevel::Low,
            qp_bucket: qp / 5,
            search: "biomed",
            kind: 'B',
        }
    }

    #[test]
    fn histogram_median_is_robust_to_outliers() {
        let mut h = CycleHistogram::new();
        for _ in 0..20 {
            h.observe(1000);
        }
        h.observe(1_000_000); // one outlier
        assert_eq!(h.estimate(), Some(1000));
        assert_eq!(h.observations(), 21);
    }

    #[test]
    fn histogram_window_slides() {
        let mut h = CycleHistogram::new();
        for _ in 0..HISTOGRAM_CAPACITY {
            h.observe(100);
        }
        // Overwrite the window with a new regime.
        for _ in 0..HISTOGRAM_CAPACITY {
            h.observe(900);
        }
        assert_eq!(h.estimate(), Some(900));
    }

    #[test]
    fn empty_histogram_estimates_none() {
        assert_eq!(CycleHistogram::new().estimate(), None);
    }

    #[test]
    fn key_buckets_area_and_qp() {
        let a = LutKey::new(
            &Rect::new(0, 0, 64, 64),
            TextureClass::Low,
            MotionLevel::Low,
            Qp::new(32).unwrap(),
            "tz",
            FrameKind::Intra,
        );
        assert_eq!(a.area_units, 1);
        assert_eq!(a.qp_bucket, 6);
        assert_eq!(a.kind, 'I');
        // Slightly different tile geometry, same bucket.
        let b = LutKey::new(
            &Rect::new(8, 8, 64, 72),
            TextureClass::Low,
            MotionLevel::Low,
            Qp::new(34).unwrap(),
            "tz",
            FrameKind::Intra,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn estimate_converges_to_observed_workload() {
        let mut lut = WorkloadLut::new();
        let k = key(4, 30);
        for i in 0..50 {
            lut.observe(k, 2_000_000 + (i % 5) * 1000);
        }
        let est = lut.estimate(&k).unwrap();
        assert!((est as i64 - 2_002_000).abs() < 5_000);
        // Paper: < 100 µs error once warm. At 3.6 GHz, 100 µs = 360k
        // cycles; our spread is far below that.
        assert!((est as i64 - 2_000_000).unsigned_abs() < 360_000);
    }

    #[test]
    fn area_scaling_fallback() {
        let mut lut = WorkloadLut::new();
        lut.observe(key(2, 30), 1_000_000);
        // Unseen bucket of twice the area: estimate scales ~linearly.
        let est = lut.estimate_or_model(&key(4, 30));
        assert_eq!(est, 2_000_000);
    }

    #[test]
    fn cold_start_uses_area_model() {
        let lut = WorkloadLut::new();
        let est = lut.estimate_or_model(&key(4, 30));
        assert_eq!(est, (60.0 * 4.0 * 4096.0) as u64);
    }

    #[test]
    fn absorb_merges_histograms() {
        let mut a = WorkloadLut::new();
        let mut b = WorkloadLut::new();
        b.observe(key(1, 30), 500);
        b.observe(key(2, 30), 900);
        a.absorb(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.estimate(&key(1, 30)), Some(500));
    }

    #[test]
    fn bank_transfers_class_knowledge() {
        let mut bank = LutBank::new();
        let mut video_lut = WorkloadLut::new();
        video_lut.observe(key(3, 30), 7_000_000);
        bank.learn("brain", &video_lut);
        // A new brain video starts warm…
        let seeded = bank.seed_for("brain");
        assert_eq!(seeded.estimate(&key(3, 30)), Some(7_000_000));
        // …but an unknown class starts cold.
        assert!(bank.seed_for("cardiac").is_empty());
        assert!(bank.lut("brain").is_some());
    }
}

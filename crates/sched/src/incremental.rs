//! Incremental re-placement — the control-plane fast path.
//!
//! `serve_online` re-runs Algorithm 2's placement for every shard at
//! every GOP boundary, even when nothing changed. At scale that is the
//! controller's dominant cost: placement is O(threads × candidates)
//! per boundary per shard, and most boundaries change nothing.
//!
//! [`IncrementalPlacer`] keeps the placement *state* alive between
//! boundaries and applies membership/demand deltas:
//!
//! * an unchanged boundary (every pending update bitwise-equal to the
//!   stored demand) is **O(1)** — the cached [`Allocation`] is reused;
//! * a membership change replays only the placement suffix from the
//!   first thread whose canonical position moved, restoring per-core
//!   loads from periodic checkpoints instead of replaying from zero;
//! * on wide candidate sets the replayed argmin runs against a
//!   bucket-indexed structure of per-core finish times
//!   ([`PlacementStrategy::Indexed`]) — O(log cores) per thread
//!   instead of the linear scan.
//!
//! **Invariant (the whole point):** for any sequence of
//! `set_user`/`remove_user`/`refresh` calls, [`IncrementalPlacer::allocation`]
//! is *bitwise identical* — placements, core loads, ordering — to
//! [`place_threads_on`](crate::place_threads_on) called from scratch
//! on the current members sorted by ascending user id. Every fast path
//! below is engineered (and property-tested) against that contract;
//! decision parity between the sim and thread-pool backends depends on
//! it.

use crate::alloc::{candidate_set, cap_for, max_norm_of, select_core, Allocation, Placement};
use crate::UserDemand;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Bound;

/// How the replayed placement argmin is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementStrategy {
    /// Linear scan for small candidate sets, bucket index for wide
    /// ones (the crossover where the index's log-factor wins).
    #[default]
    Auto,
    /// Always the linear scan — the reference loop, shared with
    /// `place_threads_on`.
    Linear,
    /// Always the bucket-indexed finish-time structure.
    Indexed,
}

/// `Auto` switches to the index above this many candidate cores.
const INDEX_CROSSOVER: usize = 32;

/// A per-core-load checkpoint is stored every this many threads so
/// suffix replay restores loads in O(stride) instead of O(threads).
const CHECKPOINT_STRIDE: usize = 256;

/// Canonical identity of one thread in placement order.
#[derive(Debug, Clone, Copy)]
struct ThreadKey {
    secs: f64,
    user: usize,
    thread: usize,
}

/// Canonical placement order: descending `secs` (total order over
/// bits, like `f64::total_cmp`), then ascending user id, then thread
/// index — exactly what the stable `sort_by(b.secs.total_cmp(&a.secs))`
/// in `place` produces when users arrive sorted by id.
fn key_cmp(a: &ThreadKey, b: &ThreadKey) -> std::cmp::Ordering {
    b.secs
        .total_cmp(&a.secs)
        .then(a.user.cmp(&b.user))
        .then(a.thread.cmp(&b.thread))
}

fn key_eq(a: &ThreadKey, b: &ThreadKey) -> bool {
    a.secs.to_bits() == b.secs.to_bits() && a.user == b.user && a.thread == b.thread
}

/// Bitwise slice equality — `==` on `f64` treats `0.0 == -0.0`, which
/// would wrongly skip a replay when a demand flips zero sign (the sign
/// participates in `total_cmp` ordering).
fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

#[derive(Debug, Clone)]
struct Checkpoint {
    /// Number of placed threads the snapshot covers.
    idx: usize,
    loads: Vec<f64>,
}

/// One same-speed run of candidate cores, ordered by (load, core id).
///
/// Candidate recruitment sorts fastest-first then by id, so cores of
/// equal speed form contiguous runs; keeping one ordered set per run
/// lets both the spill argmin and the cap-seeking fit query work on
/// *loads* directly (for a fixed speed, `(load + secs) / speed` is
/// monotone non-decreasing in load, even through rounding).
#[derive(Debug)]
struct Bucket {
    speed: f64,
    /// `(load.to_bits(), core)` — loads are non-negative, so the IEEE
    /// bit pattern orders exactly like the float value.
    set: BTreeSet<(u64, usize)>,
}

impl Bucket {
    /// First (lowest-id) entry at the smallest distinct load strictly
    /// above `bits`.
    fn next_load(&self, bits: u64) -> Option<(u64, usize)> {
        self.set
            .range((Bound::Excluded((bits, usize::MAX)), Bound::Unbounded))
            .next()
            .copied()
    }

    /// First (lowest-id) entry at the greatest distinct load strictly
    /// below `bits`.
    fn prev_load(&self, bits: u64) -> Option<(u64, usize)> {
        let &(lb, _) = self.set.range(..(bits, 0usize)).next_back()?;
        self.first_at(lb)
    }

    /// First (lowest-id) entry at exactly load `bits`.
    fn first_at(&self, bits: u64) -> Option<(u64, usize)> {
        self.set
            .range((bits, 0usize)..=(bits, usize::MAX))
            .next()
            .copied()
    }
}

/// Bucket-indexed per-core finish times for the replayed argmin.
#[derive(Debug)]
struct CoreIndex {
    buckets: Vec<Bucket>,
    /// Maintained incrementally; loads only grow during a replay, so a
    /// running `f64::max` stays bitwise equal to the from-scratch fold.
    max_norm: f64,
    /// core id → bucket position (`usize::MAX` for non-candidates).
    bucket_of: Vec<usize>,
}

impl CoreIndex {
    fn build(speeds: &[f64], candidates: &[usize], loads: &[f64]) -> Self {
        let mut buckets: Vec<Bucket> = Vec::new();
        let mut bucket_of = vec![usize::MAX; speeds.len()];
        for &k in candidates {
            let sp = speeds[k];
            if buckets
                .last()
                .is_none_or(|b| b.speed.to_bits() != sp.to_bits())
            {
                buckets.push(Bucket {
                    speed: sp,
                    set: BTreeSet::new(),
                });
            }
            let bi = buckets.len() - 1;
            bucket_of[k] = bi;
            buckets[bi].set.insert((loads[k].to_bits(), k));
        }
        let max_norm = max_norm_of(loads, speeds, candidates);
        CoreIndex {
            buckets,
            max_norm,
            bucket_of,
        }
    }

    /// Commits one placement and maintains the index and running cap.
    fn place(&mut self, loads: &mut [f64], core: usize, secs: f64) {
        let b = &mut self.buckets[self.bucket_of[core]];
        b.set.remove(&(loads[core].to_bits(), core));
        loads[core] += secs;
        b.set.insert((loads[core].to_bits(), core));
        self.max_norm = self.max_norm.max(loads[core] / b.speed);
    }

    /// The indexed equivalent of [`select_core`]: same float
    /// expressions, same tie-breaks, evaluated against the ordered
    /// structure instead of a linear scan.
    ///
    /// Correctness rests on monotonicity: within one bucket,
    /// `with = (load + secs) / speed` is monotone non-decreasing in
    /// load (IEEE rounding preserves weak monotonicity), so the
    /// best-fit lives at the partition point around the cap and the
    /// spill at the minimum load. Rounding can flatten *distinct*
    /// loads onto bitwise-equal `with`/`dist` values, so every
    /// comparison walks its equal-value cohort and resolves the tie to
    /// the lowest core id — reproducing the scan's first-wins rule
    /// (within a bucket the scan order is ascending id; across buckets
    /// it is recruitment order, so bucket-order strict-`<` applies).
    fn select(&self, slot_secs: f64, cap: f64, secs: f64) -> usize {
        let fit_limit = slot_secs + 1e-12;
        let mut best_fit: Option<(f64, usize)> = None; // (dist, core)
        let mut spill: Option<(f64, usize)> = None; // (with, core)
        for b in &self.buckets {
            let with_of = |lbits: u64| (f64::from_bits(lbits) + secs) / b.speed;
            let Some(&(min_load, min_core)) = b.set.iter().next() else {
                continue;
            };

            // Spill candidate: minimum post-placement finish time =
            // minimum load; walk the equal-`with` cohort for the id.
            let w0 = with_of(min_load);
            let mut sp_core = min_core;
            let mut probe = min_load;
            while let Some((nl, nc)) = b.next_load(probe) {
                if with_of(nl).to_bits() != w0.to_bits() {
                    break;
                }
                sp_core = sp_core.min(nc);
                probe = nl;
            }
            if spill.is_none_or(|(w, _)| w0 < w) {
                spill = Some((w0, sp_core));
            }

            // Fit candidates straddle the load where `with` crosses
            // the cap; hint near `cap·speed − secs`, then walk to the
            // exact partition (rounding can move it a few loads).
            let hint = (cap * b.speed - secs).max(0.0);
            let anchor = match b.set.range(..=(hint.to_bits(), usize::MAX)).next_back() {
                Some(&(lb, _)) => b.first_at(lb),
                None => b.first_at(min_load),
            };
            let mut below: Option<(u64, usize)> = None;
            if let Some((lb, c)) = anchor {
                if with_of(lb) <= cap {
                    let (mut cl, mut cc) = (lb, c);
                    while let Some((nl, nc)) = b.next_load(cl) {
                        if with_of(nl) <= cap {
                            cl = nl;
                            cc = nc;
                        } else {
                            break;
                        }
                    }
                    below = Some((cl, cc));
                } else {
                    let mut cur = lb;
                    while let Some((pl, pc)) = b.prev_load(cur) {
                        if with_of(pl) <= cap {
                            below = Some((pl, pc));
                            break;
                        }
                        cur = pl;
                    }
                }
            }

            // Greatest load with `with <= cap` (always fits the slot
            // since cap <= slot): distance to the cap is minimized
            // there; walk down the bitwise-equal-dist cohort.
            let mut bucket_best: Option<(f64, usize)> = None;
            if let Some((lb, c)) = below {
                let d0 = (cap - with_of(lb)).abs();
                let mut core = c;
                let mut cur = lb;
                while let Some((pl, pc)) = b.prev_load(cur) {
                    if (cap - with_of(pl)).abs().to_bits() != d0.to_bits() {
                        break;
                    }
                    core = core.min(pc);
                    cur = pl;
                }
                bucket_best = Some((d0, core));
            }

            // Smallest load with `with > cap` that still fits the
            // slot; again walk the equal-dist cohort upward.
            let above = match below {
                Some((lb, _)) => b.next_load(lb),
                None => b.first_at(min_load),
            };
            if let Some((la, ca)) = above {
                let wa = with_of(la);
                if wa <= fit_limit {
                    let da = (cap - wa).abs();
                    let mut core = ca;
                    let mut cur = la;
                    while let Some((nl, nc)) = b.next_load(cur) {
                        let w = with_of(nl);
                        if w <= fit_limit && (cap - w).abs().to_bits() == da.to_bits() {
                            core = core.min(nc);
                            cur = nl;
                        } else {
                            break;
                        }
                    }
                    bucket_best = match bucket_best {
                        Some((db, cb)) if da.to_bits() == db.to_bits() => Some((db, cb.min(core))),
                        Some((db, _)) if da < db => Some((da, core)),
                        None => Some((da, core)),
                        keep => keep,
                    };
                }
            }

            if let Some((d, c)) = bucket_best {
                if best_fit.is_none_or(|(bd, _)| d < bd) {
                    best_fit = Some((d, c));
                }
            }
        }
        match best_fit {
            Some((_, c)) => c,
            None => spill.expect("candidate set is never empty").1,
        }
    }
}

/// Delta-maintained Algorithm 2 placement for one shard.
///
/// See the module docs for the contract; the short version:
///
/// * [`set_user`](Self::set_user) / [`remove_user`](Self::remove_user)
///   stage membership/demand deltas;
/// * [`refresh`](Self::refresh) applies them, replaying only the
///   placement suffix that the deltas disturb — and returns `false`
///   without touching anything when every staged update is
///   bitwise-identical to the stored demand (the steady-state O(1)
///   path);
/// * [`allocation`](Self::allocation) is always bitwise-equal to
///   `place_threads_on(speeds, slot_secs, members_sorted_by_id)`.
#[derive(Debug)]
pub struct IncrementalPlacer {
    speeds: Vec<f64>,
    slot_secs: f64,
    strategy: PlacementStrategy,
    /// Current members' demands, keyed (and therefore iterated) by id.
    demands: BTreeMap<usize, Vec<f64>>,
    /// Staged deltas: `Some(demand)` upserts, `None` removes.
    pending: BTreeMap<usize, Option<Vec<f64>>>,
    /// Canonical thread order of the current placement.
    order: Vec<ThreadKey>,
    /// Core chosen for `order[i]`.
    placed: Vec<usize>,
    /// Per-core load snapshots every [`CHECKPOINT_STRIDE`] threads.
    checkpoints: Vec<Checkpoint>,
    /// Cached candidate core set for the current total demand.
    candidates: Vec<usize>,
    alloc: Allocation,
    last_replayed: usize,
}

impl IncrementalPlacer {
    /// Creates an empty placer for the given platform (see
    /// [`place_threads_on`](crate::place_threads_on) for the speed
    /// convention) with the [`PlacementStrategy::Auto`] argmin.
    ///
    /// # Panics
    ///
    /// Panics when `speeds` is empty or contains a non-positive or
    /// non-finite entry, or `slot_secs` is not positive.
    pub fn new(speeds: &[f64], slot_secs: f64) -> Self {
        Self::with_strategy(speeds, slot_secs, PlacementStrategy::Auto)
    }

    /// [`IncrementalPlacer::new`] with an explicit argmin strategy.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`IncrementalPlacer::new`].
    pub fn with_strategy(speeds: &[f64], slot_secs: f64, strategy: PlacementStrategy) -> Self {
        assert!(!speeds.is_empty(), "need at least one core");
        assert!(
            speeds.iter().all(|s| s.is_finite() && *s > 0.0),
            "core speeds must be positive and finite"
        );
        assert!(slot_secs > 0.0, "slot must be positive");
        let cores = speeds.len();
        IncrementalPlacer {
            speeds: speeds.to_vec(),
            slot_secs,
            strategy,
            demands: BTreeMap::new(),
            pending: BTreeMap::new(),
            order: Vec::new(),
            placed: Vec::new(),
            checkpoints: Vec::new(),
            candidates: Vec::new(),
            alloc: Allocation {
                admitted: vec![],
                rejected: vec![],
                placements: vec![],
                core_loads: vec![0.0; cores],
            },
            last_replayed: 0,
        }
    }

    /// Stages an upsert of one user's demand; applied at the next
    /// [`refresh`](Self::refresh). Re-staging a bitwise-identical
    /// demand is a no-op there — the steady-state path.
    pub fn set_user(&mut self, demand: UserDemand) {
        self.pending.insert(demand.user, Some(demand.thread_secs));
    }

    /// Stages removal of one user (no-op if the user is unknown).
    pub fn remove_user(&mut self, user: usize) {
        self.pending.insert(user, None);
    }

    /// True when `user` is a current member (staged deltas not
    /// considered).
    pub fn is_member(&self, user: usize) -> bool {
        self.demands.contains_key(&user)
    }

    /// Number of current members.
    pub fn len(&self) -> usize {
        self.demands.len()
    }

    /// True when no users are placed.
    pub fn is_empty(&self) -> bool {
        self.demands.is_empty()
    }

    /// The current placement — bitwise-equal to `place_threads_on` on
    /// the current members sorted by ascending user id.
    pub fn allocation(&self) -> &Allocation {
        &self.alloc
    }

    /// Threads replayed by the last [`refresh`](Self::refresh) that
    /// returned `true` (diagnostics: 0 means pure checkpoint reuse).
    pub fn last_replayed(&self) -> usize {
        self.last_replayed
    }

    /// Applies staged deltas. Returns `true` when the placement was
    /// recomputed (callers should re-read [`allocation`](Self::allocation)),
    /// `false` when every staged delta was a bitwise no-op.
    pub fn refresh(&mut self) -> bool {
        if self.pending.is_empty() {
            return false;
        }
        let mut dirty: BTreeSet<usize> = BTreeSet::new();
        for (u, d) in std::mem::take(&mut self.pending) {
            match d {
                Some(v) => {
                    if !self.demands.get(&u).is_some_and(|old| bits_eq(old, &v)) {
                        self.demands.insert(u, v);
                        dirty.insert(u);
                    }
                }
                None => {
                    if self.demands.remove(&u).is_some() {
                        dirty.insert(u);
                    }
                }
            }
        }
        if dirty.is_empty() {
            return false;
        }

        // Total fractional demand, summed in id order — the same
        // association order as `place_threads_on` over an id-sorted
        // user list, so the candidate set comes out identical.
        let fps = 1.0 / self.slot_secs;
        let demand_frac: f64 = self
            .demands
            .values()
            .map(|v| v.iter().sum::<f64>() * fps)
            .sum();
        let candidates = candidate_set(&self.speeds, demand_frac);
        let candidates_changed = candidates != self.candidates;

        // Merge the canonical order: surviving threads keep their
        // relative order; dirty users' threads are re-sorted in.
        let mut fresh: Vec<ThreadKey> = Vec::new();
        for &u in &dirty {
            if let Some(v) = self.demands.get(&u) {
                for (t, &secs) in v.iter().enumerate() {
                    fresh.push(ThreadKey {
                        secs,
                        user: u,
                        thread: t,
                    });
                }
            }
        }
        fresh.sort_by(key_cmp);
        let mut merged: Vec<ThreadKey> = Vec::with_capacity(self.order.len() + fresh.len());
        let mut fi = 0usize;
        for key in self.order.iter().filter(|k| !dirty.contains(&k.user)) {
            while fi < fresh.len() && key_cmp(&fresh[fi], key).is_lt() {
                merged.push(fresh[fi]);
                fi += 1;
            }
            merged.push(*key);
        }
        merged.extend_from_slice(&fresh[fi..]);

        // Placement is a forward pass: thread i's core depends only on
        // threads before it (via loads and the running cap) and on the
        // candidate set. An unchanged prefix therefore keeps its
        // placement; replay starts at the first moved thread — or at
        // zero when the candidate set itself changed.
        let shared = merged.len().min(self.order.len());
        let mut divergence = merged[..shared]
            .iter()
            .zip(&self.order[..shared])
            .position(|(new, old)| !key_eq(new, old))
            .unwrap_or(shared);
        if candidates_changed {
            divergence = 0;
        }

        // Restore loads from the newest checkpoint at or before the
        // divergence, then catch up with the recorded placements.
        self.checkpoints.retain(|c| c.idx <= divergence);
        let (mut from, mut loads) = match self.checkpoints.last() {
            Some(c) => (c.idx, c.loads.clone()),
            None => (0, vec![0.0f64; self.speeds.len()]),
        };
        while from < divergence {
            loads[self.placed[from]] += merged[from].secs;
            from += 1;
        }

        let mut placed: Vec<usize> = Vec::with_capacity(merged.len());
        placed.extend_from_slice(&self.placed[..divergence]);
        let use_index = match self.strategy {
            PlacementStrategy::Auto => candidates.len() > INDEX_CROSSOVER,
            PlacementStrategy::Linear => false,
            PlacementStrategy::Indexed => true,
        };
        if use_index {
            let mut index = CoreIndex::build(&self.speeds, &candidates, &loads);
            for (i, thread) in merged.iter().enumerate().skip(divergence) {
                let cap = cap_for(index.max_norm, self.slot_secs);
                let core = index.select(self.slot_secs, cap, thread.secs);
                index.place(&mut loads, core, thread.secs);
                placed.push(core);
                if (i + 1) % CHECKPOINT_STRIDE == 0 {
                    self.checkpoints.push(Checkpoint {
                        idx: i + 1,
                        loads: loads.clone(),
                    });
                }
            }
        } else {
            for (i, thread) in merged.iter().enumerate().skip(divergence) {
                let max_norm = max_norm_of(&loads, &self.speeds, &candidates);
                let cap = cap_for(max_norm, self.slot_secs);
                let core = select_core(
                    &loads,
                    &self.speeds,
                    &candidates,
                    self.slot_secs,
                    cap,
                    thread.secs,
                );
                loads[core] += thread.secs;
                placed.push(core);
                if (i + 1) % CHECKPOINT_STRIDE == 0 {
                    self.checkpoints.push(Checkpoint {
                        idx: i + 1,
                        loads: loads.clone(),
                    });
                }
            }
        }

        self.last_replayed = merged.len() - divergence;
        self.order = merged;
        self.placed = placed;
        self.candidates = candidates;
        self.alloc = Allocation {
            admitted: self.demands.keys().copied().collect(),
            rejected: vec![],
            placements: self
                .order
                .iter()
                .zip(&self.placed)
                .map(|(k, &core)| Placement {
                    user: k.user,
                    thread: k.thread,
                    core,
                    secs: k.secs,
                })
                .collect(),
            core_loads: loads,
        };
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place_threads_on;
    use proptest::prelude::*;

    const SLOT: f64 = 1.0 / 24.0;

    fn from_scratch(speeds: &[f64], demands: &BTreeMap<usize, Vec<f64>>) -> Allocation {
        let users: Vec<UserDemand> = demands
            .iter()
            .map(|(&u, v)| UserDemand::new(u, v.clone()))
            .collect();
        place_threads_on(speeds, SLOT, &users)
    }

    fn assert_alloc_bits_eq(a: &Allocation, b: &Allocation) {
        assert_eq!(a.admitted, b.admitted);
        assert_eq!(a.rejected, b.rejected);
        assert_eq!(a.placements.len(), b.placements.len());
        for (x, y) in a.placements.iter().zip(&b.placements) {
            assert_eq!((x.user, x.thread, x.core), (y.user, y.thread, y.core));
            assert_eq!(x.secs.to_bits(), y.secs.to_bits());
        }
        assert_eq!(a.core_loads.len(), b.core_loads.len());
        for (x, y) in a.core_loads.iter().zip(&b.core_loads) {
            assert_eq!(x.to_bits(), y.to_bits(), "core loads diverge");
        }
    }

    #[test]
    fn empty_placer_matches_empty_from_scratch() {
        let placer = IncrementalPlacer::new(&[1.0; 4], SLOT);
        assert_alloc_bits_eq(
            placer.allocation(),
            &from_scratch(&[1.0; 4], &BTreeMap::new()),
        );
    }

    #[test]
    fn steady_state_refresh_is_a_noop() {
        let mut placer = IncrementalPlacer::new(&[1.0; 8], SLOT);
        placer.set_user(UserDemand::new(3, vec![SLOT / 4.0; 3]));
        placer.set_user(UserDemand::new(7, vec![SLOT / 2.0]));
        assert!(placer.refresh());
        assert!(placer.last_replayed() > 0);
        // Re-staging identical demands must not replay anything.
        placer.set_user(UserDemand::new(3, vec![SLOT / 4.0; 3]));
        placer.set_user(UserDemand::new(7, vec![SLOT / 2.0]));
        assert!(!placer.refresh(), "identical demands must be a no-op");
        // And an empty staging area is trivially a no-op.
        assert!(!placer.refresh());
    }

    #[test]
    fn removal_of_unknown_user_is_a_noop() {
        let mut placer = IncrementalPlacer::new(&[1.0; 4], SLOT);
        placer.set_user(UserDemand::new(1, vec![SLOT / 3.0]));
        assert!(placer.refresh());
        placer.remove_user(99);
        assert!(!placer.refresh());
        assert!(placer.is_member(1));
        assert_eq!(placer.len(), 1);
    }

    #[test]
    fn incremental_tracks_from_scratch_through_membership_churn() {
        for strategy in [PlacementStrategy::Linear, PlacementStrategy::Indexed] {
            let speeds = [1.0, 1.0, 1.0, 1.0, 0.45, 0.45, 0.45, 0.45];
            let mut placer = IncrementalPlacer::with_strategy(&speeds, SLOT, strategy);
            let mut mirror: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
            let steps: Vec<(usize, Option<Vec<f64>>)> = vec![
                (0, Some(vec![SLOT / 2.0, SLOT / 4.0])),
                (5, Some(vec![SLOT / 3.0; 4])),
                (2, Some(vec![SLOT * 0.9])),
                (0, None),
                (9, Some(vec![SLOT / 4.0; 2])),
                (5, Some(vec![SLOT / 3.0; 4])), // identical upsert
                (2, Some(vec![SLOT * 0.6, SLOT * 0.6])),
                (9, None),
                (5, None),
            ];
            for (u, d) in steps {
                match d {
                    Some(v) => {
                        placer.set_user(UserDemand::new(u, v.clone()));
                        mirror.insert(u, v);
                    }
                    None => {
                        placer.remove_user(u);
                        mirror.remove(&u);
                    }
                }
                placer.refresh();
                assert_alloc_bits_eq(placer.allocation(), &from_scratch(&speeds, &mirror));
            }
        }
    }

    #[test]
    fn equal_demand_ties_replay_identically() {
        // Many bitwise-equal thread durations force every tie-break
        // path (equal dist, equal with) through the index.
        for strategy in [PlacementStrategy::Linear, PlacementStrategy::Indexed] {
            let speeds = vec![1.0; 40];
            let mut placer = IncrementalPlacer::with_strategy(&speeds, SLOT, strategy);
            let mut mirror: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
            for u in 0..12 {
                let v = vec![SLOT / 4.0; 4];
                placer.set_user(UserDemand::new(u, v.clone()));
                mirror.insert(u, v);
            }
            placer.refresh();
            assert_alloc_bits_eq(placer.allocation(), &from_scratch(&speeds, &mirror));
            // Remove a middle user: the suffix replays over loaded
            // cores with heavy tie pressure.
            placer.remove_user(5);
            mirror.remove(&5);
            placer.refresh();
            assert_alloc_bits_eq(placer.allocation(), &from_scratch(&speeds, &mirror));
        }
    }

    proptest! {
        /// The contract: across random membership-change sequences, on
        /// random (heterogeneous) platforms, with both argmin
        /// strategies, the incremental allocation is byte-identical to
        /// from-scratch `place_threads_on` over the id-sorted members.
        #[test]
        fn prop_incremental_matches_from_scratch(
            speed_idx in proptest::collection::vec(0u32..4, 2..12),
            ops in proptest::collection::vec(
                (0usize..8, 0u32..5, proptest::collection::vec(0u32..30, 0..5)),
                1..25,
            ),
            indexed in 0u32..2,
        ) {
            const PALETTE: [f64; 4] = [0.25, 0.45, 0.5, 1.0];
            let speeds: Vec<f64> = speed_idx
                .iter()
                .map(|&i| PALETTE[i as usize % PALETTE.len()])
                .collect();
            let strategy = if indexed == 1 {
                PlacementStrategy::Indexed
            } else {
                PlacementStrategy::Linear
            };
            let mut placer = IncrementalPlacer::with_strategy(&speeds, SLOT, strategy);
            let mut mirror: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
            for (user, kind, ms) in ops {
                if kind == 0 {
                    placer.remove_user(user);
                    mirror.remove(&user);
                } else {
                    let v: Vec<f64> = ms.iter().map(|&m| m as f64 * 1e-3).collect();
                    placer.set_user(UserDemand::new(user, v.clone()));
                    mirror.insert(user, v);
                }
                placer.refresh();
                let expect = from_scratch(&speeds, &mirror);
                let got = placer.allocation();
                prop_assert_eq!(&got.admitted, &expect.admitted);
                prop_assert_eq!(got.placements.len(), expect.placements.len());
                for (x, y) in got.placements.iter().zip(&expect.placements) {
                    prop_assert_eq!(
                        (x.user, x.thread, x.core, x.secs.to_bits()),
                        (y.user, y.thread, y.core, y.secs.to_bits())
                    );
                }
                for (x, y) in got.core_loads.iter().zip(&expect.core_loads) {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }

        /// Same contract on a wide homogeneous platform where `Auto`
        /// engages the bucket index and checkpoints matter (enough
        /// threads to cross the stride).
        #[test]
        fn prop_indexed_wide_platform_matches_from_scratch(
            ops in proptest::collection::vec(
                (0usize..40, 0u32..4, 1u32..25),
                1..20,
            ),
        ) {
            let speeds = vec![1.0; 64];
            let mut placer = IncrementalPlacer::new(&speeds, SLOT);
            let mut mirror: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
            for (user, kind, ms) in ops {
                if kind == 0 {
                    placer.remove_user(user);
                    mirror.remove(&user);
                } else {
                    let v = vec![ms as f64 * 1e-3; 8];
                    placer.set_user(UserDemand::new(user, v.clone()));
                    mirror.insert(user, v);
                }
                placer.refresh();
                let expect = from_scratch(&speeds, &mirror);
                let got = placer.allocation();
                prop_assert_eq!(got.placements.len(), expect.placements.len());
                for (x, y) in got.placements.iter().zip(&expect.placements) {
                    prop_assert_eq!(
                        (x.user, x.thread, x.core, x.secs.to_bits()),
                        (y.user, y.thread, y.core, y.secs.to_bits())
                    );
                }
                for (x, y) in got.core_loads.iter().zip(&expect.core_loads) {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    }
}

//! The baseline allocator of Khan et al. \[19\]: one tile per core,
//! first-come-first-served admission, no load sharing between tiles.
//!
//! \[19\] sizes tiles so each one fills a core's capacity at the required
//! framerate, then binds exactly one tile to one core. Cores are not
//! shared between threads, so a user needs as many cores as it has
//! tiles, and the queue admits users in arrival order while whole-user
//! core sets remain. Frequency control is coarse: re-tiling happens
//! only when every core sits at the minimum or the maximum level
//! (tracked by [`BaselineRetileTrigger`]).

use crate::alloc::{Allocation, Placement, UserDemand};
use medvt_mpsoc::FreqLevel;
use serde::{Deserialize, Serialize};

/// Allocates one core per tile, users in queue order.
///
/// # Panics
///
/// Panics when `cores` is zero.
pub fn baseline_allocate(cores: usize, users: &[UserDemand]) -> Allocation {
    assert!(cores > 0, "need at least one core");
    let mut admitted = Vec::new();
    let mut rejected = Vec::new();
    let mut placements = Vec::new();
    let mut core_loads = vec![0.0f64; cores];
    let mut next_core = 0usize;
    for u in users {
        let need = u.thread_secs.len();
        if next_core + need <= cores {
            admitted.push(u.user);
            for (t, &secs) in u.thread_secs.iter().enumerate() {
                placements.push(Placement {
                    user: u.user,
                    thread: t,
                    core: next_core,
                    secs,
                });
                core_loads[next_core] = secs;
                next_core += 1;
            }
        } else {
            rejected.push(u.user);
        }
    }
    Allocation {
        admitted,
        rejected,
        placements,
        core_loads,
    }
}

/// \[19\]'s re-tiling trigger: only re-tile when *all* active cores sit
/// at the minimum or all at the maximum frequency — the condition the
/// paper criticizes for reacting too slowly to content changes.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BaselineRetileTrigger {
    last_decision: Option<bool>,
}

impl BaselineRetileTrigger {
    /// Creates a trigger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns `true` when \[19\] would re-tile given the active cores'
    /// current frequencies.
    pub fn should_retile(
        &mut self,
        active_freqs: &[FreqLevel],
        fmin: FreqLevel,
        fmax: FreqLevel,
    ) -> bool {
        if active_freqs.is_empty() {
            return false;
        }
        let all_min = active_freqs.iter().all(|&f| f == fmin);
        let all_max = active_freqs.iter().all(|&f| f == fmax);
        let decision = all_min || all_max;
        self.last_decision = Some(decision);
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(user: usize, secs: &[f64]) -> UserDemand {
        UserDemand::new(user, secs.to_vec())
    }

    #[test]
    fn one_core_per_tile() {
        let users = vec![demand(0, &[0.01, 0.02]), demand(1, &[0.01])];
        let alloc = baseline_allocate(4, &users);
        assert_eq!(alloc.admitted, vec![0, 1]);
        assert_eq!(alloc.placements.len(), 3);
        // Three distinct cores used, one thread each.
        let mut cores: Vec<usize> = alloc.placements.iter().map(|p| p.core).collect();
        cores.sort_unstable();
        cores.dedup();
        assert_eq!(cores.len(), 3);
    }

    #[test]
    fn queue_order_admission() {
        // First user hogs cores even though later users are lighter —
        // the contrast with Algorithm 2's ascending-demand admission.
        let users = vec![
            demand(0, &[0.04, 0.04, 0.04]), // 3 tiles
            demand(1, &[0.001]),
            demand(2, &[0.001]),
        ];
        let alloc = baseline_allocate(4, &users);
        assert_eq!(alloc.admitted, vec![0, 1]);
        assert_eq!(alloc.rejected, vec![2]);
    }

    #[test]
    fn user_needs_all_cores_or_nothing() {
        let users = vec![demand(0, &[0.01; 3]), demand(1, &[0.01; 3])];
        let alloc = baseline_allocate(4, &users);
        assert_eq!(alloc.admitted, vec![0]);
        assert_eq!(alloc.rejected, vec![1]);
        assert_eq!(alloc.used_cores(), 3);
    }

    #[test]
    fn no_core_sharing() {
        let users = vec![demand(0, &[0.001; 4])];
        let alloc = baseline_allocate(8, &users);
        // Algorithm 2 would pack these on one core; [19] burns four.
        assert_eq!(alloc.used_cores(), 4);
    }

    #[test]
    fn trigger_fires_only_at_rail_frequencies() {
        let fmin = FreqLevel::from_ghz(2.9);
        let fmid = FreqLevel::from_ghz(3.2);
        let fmax = FreqLevel::from_ghz(3.6);
        let mut trig = BaselineRetileTrigger::new();
        assert!(trig.should_retile(&[fmax, fmax], fmin, fmax));
        assert!(trig.should_retile(&[fmin, fmin, fmin], fmin, fmax));
        assert!(!trig.should_retile(&[fmax, fmid], fmin, fmax));
        assert!(!trig.should_retile(&[fmin, fmax], fmin, fmax));
        assert!(!trig.should_retile(&[], fmin, fmax));
    }
}

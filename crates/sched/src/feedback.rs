//! Deadline feedback — paper §III-D2, closing paragraph.
//!
//! After each frame the achieved encoding time is read back. If a frame
//! overran its 1/FPS slot while the cores already ran at the maximum
//! frequency, the *bottleneck tiles* get a lighter configuration for
//! the next frame (smaller search window, higher QP), so
//! over-utilization is compensated by under-utilization of following
//! frames; the framerate constraint is checked on one-second windows.

use serde::{Deserialize, Serialize};

/// What the controller asks the encoder to do for the next frame.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Adjustment {
    /// Keep the planned configuration.
    None,
    /// Lighten the listed tiles (indices into the frame's tiling):
    /// shrink their search window one step and raise their QP.
    Lighten {
        /// Bottleneck tile indices.
        tiles: Vec<usize>,
    },
    /// The previous frames banked slack; tiles may be restored to their
    /// planned configuration.
    Restore,
}

/// Rolling one-second deadline accountant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeedbackController {
    fps: f64,
    slot_secs: f64,
    /// Accumulated (frame_time - slot) debt within the current window.
    debt_secs: f64,
    /// Frames seen in the current one-second window.
    frames_in_window: usize,
    /// One-second windows that ended missing the framerate.
    missed_windows: usize,
    /// One-second windows completed.
    total_windows: usize,
    /// Whether tiles currently run a lightened configuration.
    lightened: bool,
}

impl FeedbackController {
    /// Creates a controller for the given target framerate.
    ///
    /// # Panics
    ///
    /// Panics when `fps` is not strictly positive.
    pub fn new(fps: f64) -> Self {
        assert!(fps > 0.0 && fps.is_finite(), "fps must be positive");
        Self {
            fps,
            slot_secs: 1.0 / fps,
            debt_secs: 0.0,
            frames_in_window: 0,
            missed_windows: 0,
            total_windows: 0,
            lightened: false,
        }
    }

    /// The per-frame slot in seconds.
    pub fn slot_secs(&self) -> f64 {
        self.slot_secs
    }

    /// Records one encoded frame and decides the next frame's
    /// adjustment.
    ///
    /// `frame_secs` is the frame's critical-path encode time,
    /// `tile_secs` the per-tile times, and `at_fmax` whether the
    /// relevant cores already ran at the maximum frequency (the paper
    /// only lightens configurations in that case — otherwise DVFS has
    /// headroom).
    pub fn on_frame(&mut self, frame_secs: f64, tile_secs: &[f64], at_fmax: bool) -> Adjustment {
        self.debt_secs += frame_secs - self.slot_secs;
        // Slack banks at most one slot: surplus speed in the distant
        // past cannot excuse a miss now.
        self.debt_secs = self.debt_secs.max(-self.slot_secs);
        self.frames_in_window += 1;
        if self.frames_in_window as f64 >= self.fps {
            // One-second boundary: check the framerate constraint.
            self.total_windows += 1;
            if self.debt_secs > 1e-9 {
                self.missed_windows += 1;
            }
            self.frames_in_window = 0;
            self.debt_secs = self.debt_secs.max(0.0); // new window, no stale surplus
        }
        if frame_secs > self.slot_secs && at_fmax {
            // Identify bottlenecks: tiles within 20% of the slowest.
            let worst = tile_secs.iter().copied().fold(0.0, f64::max);
            let tiles: Vec<usize> = tile_secs
                .iter()
                .enumerate()
                .filter(|(_, &t)| t >= worst * 0.8 && t > 0.0)
                .map(|(i, _)| i)
                .collect();
            if tiles.is_empty() {
                Adjustment::None
            } else {
                self.lightened = true;
                Adjustment::Lighten { tiles }
            }
        } else if self.lightened && self.debt_secs <= -self.slot_secs * 0.5 {
            // Half a slot of banked slack while lightened: restore the
            // planned quality.
            self.lightened = false;
            Adjustment::Restore
        } else {
            Adjustment::None
        }
    }

    /// Accumulated debt (positive = behind schedule), seconds.
    pub fn debt_secs(&self) -> f64 {
        self.debt_secs
    }

    /// Fraction of one-second windows that met the framerate.
    pub fn window_hit_rate(&self) -> f64 {
        if self.total_windows == 0 {
            1.0
        } else {
            1.0 - self.missed_windows as f64 / self.total_windows as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn on_time_frames_need_no_adjustment() {
        let mut fc = FeedbackController::new(24.0);
        let slot = fc.slot_secs();
        for _ in 0..24 {
            let adj = fc.on_frame(slot * 0.9, &[slot * 0.5, slot * 0.9], true);
            assert_eq!(adj, Adjustment::None);
        }
        assert!((fc.window_hit_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overrun_at_fmax_lightens_bottlenecks() {
        let mut fc = FeedbackController::new(24.0);
        let slot = fc.slot_secs();
        let adj = fc.on_frame(slot * 1.3, &[slot * 0.2, slot * 1.3, slot * 1.1], true);
        match adj {
            Adjustment::Lighten { tiles } => {
                assert!(tiles.contains(&1), "slowest tile flagged");
                assert!(tiles.contains(&2), "near-slowest flagged");
                assert!(!tiles.contains(&0), "fast tile untouched");
            }
            other => panic!("expected Lighten, got {other:?}"),
        }
    }

    #[test]
    fn overrun_below_fmax_defers_to_dvfs() {
        let mut fc = FeedbackController::new(24.0);
        let slot = fc.slot_secs();
        let adj = fc.on_frame(slot * 1.3, &[slot * 1.3], false);
        assert_eq!(adj, Adjustment::None);
    }

    #[test]
    fn banked_slack_restores_quality_after_lightening() {
        let mut fc = FeedbackController::new(24.0);
        let slot = fc.slot_secs();
        // First a miss that lightens…
        let adj = fc.on_frame(slot * 1.5, &[slot * 1.5], true);
        assert!(matches!(adj, Adjustment::Lighten { .. }));
        // …then persistent slack must eventually restore.
        let mut saw_restore = false;
        for _ in 0..10 {
            if fc.on_frame(slot * 0.5, &[slot * 0.5], true) == Adjustment::Restore {
                saw_restore = true;
                break;
            }
        }
        assert!(saw_restore, "persistent slack should restore quality");
    }

    #[test]
    fn no_restore_without_prior_lightening() {
        let mut fc = FeedbackController::new(24.0);
        let slot = fc.slot_secs();
        for _ in 0..30 {
            assert_eq!(
                fc.on_frame(slot * 0.4, &[slot * 0.4], true),
                Adjustment::None
            );
        }
    }

    #[test]
    fn window_accounting_detects_missed_seconds() {
        let mut fc = FeedbackController::new(4.0); // tiny fps for the test
        let slot = fc.slot_secs();
        // One second of frames, each 50% over.
        for _ in 0..4 {
            fc.on_frame(slot * 1.5, &[slot * 1.5], true);
        }
        assert!(fc.window_hit_rate() < 1.0);
        // A compensating fast second keeps later windows green.
        for _ in 0..4 {
            fc.on_frame(slot * 0.1, &[slot * 0.1], true);
        }
        assert_eq!(fc.window_hit_rate(), 0.5);
    }

    #[test]
    fn debt_tracks_over_and_under_utilization() {
        let mut fc = FeedbackController::new(24.0);
        let slot = fc.slot_secs();
        fc.on_frame(slot * 2.0, &[slot * 2.0], true);
        assert!(fc.debt_secs() > 0.0);
        fc.on_frame(slot * 0.1, &[slot * 0.1], true);
        assert!(fc.debt_secs() < slot);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_fps_rejected() {
        FeedbackController::new(0.0);
    }
}

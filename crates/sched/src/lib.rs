//! # medvt-sched
//!
//! Workload estimation and thread allocation for the `medvt`
//! reproduction of *"Online Efficient Bio-Medical Video Transcoding on
//! MPSoCs Through Content-Aware Workload Allocation"* (Iranfar et al.,
//! DATE 2018).
//!
//! Contents, mapped to the paper:
//!
//! * [`WorkloadLut`] / [`LutBank`] — the per-(tile structure, encoding
//!   configuration) CPU-time histograms of §III-D1, updated online and
//!   transferable across videos of the same body-part class;
//! * [`allocate`] / [`allocate_on`] / [`place_threads`] /
//!   [`place_threads_on`] — Algorithm 2 lines 1–15: ascending-demand
//!   admission and cap-seeking thread placement; the `_on` forms are
//!   speed-aware for heterogeneous (big.LITTLE) platforms, admitting
//!   against effective (speed-weighted) capacity and normalizing loads
//!   by per-core speed factors so the argmin balances finish times;
//! * [`IncrementalPlacer`] — the control-plane fast path: the same
//!   placement maintained by membership/demand deltas, O(1) at a
//!   steady-state GOP boundary and bitwise-identical to
//!   [`place_threads_on`] from scratch;
//! * [`baseline_allocate`] / [`BaselineRetileTrigger`] — the
//!   one-tile-per-core allocator and rail-frequency re-tile trigger of
//!   the baseline \[19\];
//! * [`FeedbackController`] — the per-frame deadline feedback of
//!   §III-D2 (lighten bottleneck tiles at f_max, restore on banked
//!   slack, one-second framerate accounting).
//!
//! The DVFS stage of Algorithm 2 (lines 16–24) lives in
//! [`medvt_mpsoc::simulate_slot`], which consumes the
//! [`Allocation::core_loads`] produced here.
//!
//! # Examples
//!
//! ```
//! use medvt_sched::{allocate, UserDemand};
//!
//! let slot = 1.0 / 24.0;
//! let users = vec![
//!     UserDemand::new(0, vec![slot * 0.2, slot * 0.3]),
//!     UserDemand::new(1, vec![slot * 0.5]),
//! ];
//! let alloc = allocate(4, slot, &users);
//! assert_eq!(alloc.admitted.len(), 2);
//! assert!(alloc.max_load() <= slot + 1e-12);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod alloc;
mod baseline;
mod feedback;
mod incremental;
mod lut;

pub use alloc::{
    allocate, allocate_on, place_threads, place_threads_on, Allocation, DemandError, Placement,
    UserDemand,
};
pub use baseline::{baseline_allocate, BaselineRetileTrigger};
pub use feedback::{Adjustment, FeedbackController};
pub use incremental::{IncrementalPlacer, PlacementStrategy};
pub use lut::{CycleHistogram, LutBank, LutKey, WorkloadLut};

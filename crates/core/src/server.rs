//! Multi-user transcoding server simulation — the evaluation vehicle
//! behind Table II and Fig. 4.
//!
//! The queue of users is always full (paper §IV-B2): users request
//! videos drawn from the profiled suite, the scheduler admits as many
//! as the 32 cores sustain at 24 fps, and every 1/FPS slot each
//! admitted user's current frame tiles execute on their assigned cores.
//! Admission and reporting live here; the slot loop itself is the
//! backend-generic [`medvt_runtime::ServerLoop`] — [`ServerSim`] runs
//! it on a [`SimBackend`] by default and on any other
//! [`ExecutionBackend`] (e.g. the real
//! [`medvt_runtime::ThreadPoolBackend`]) via [`ServerSim::serve_max_on`],
//! with identical energy/deadline accounting either way.

use crate::profile::VideoProfile;
use medvt_admission::{OnlineConfig, OnlineReport, ShardPolicy, UserRequest, Workload};
use medvt_mpsoc::{DvfsPolicy, Platform, PowerModel};
use medvt_runtime::{
    DemandSource, ExecutionBackend, ReplanPolicy, ServerLoop, ServerLoopConfig, SimBackend,
};
use medvt_sched::{allocate_on, baseline_allocate, Allocation, UserDemand};
use serde::{Deserialize, Serialize};

/// GOP length used for per-GOP thread re-placement (paper §III-D2).
const GOP_SLOTS: usize = 8;

/// Profile replay as a runtime demand source: user `u` plays profile
/// `u % profiles.len()`, staggered by 3 slots per user so IDR frames
/// decorrelate across users.
#[derive(Debug, Clone, Copy)]
struct ProfileSource<'a> {
    profiles: &'a [VideoProfile],
}

impl DemandSource for ProfileSource<'_> {
    fn demand_at(&self, user: usize, slot: usize) -> Vec<f64> {
        self.profiles[user % self.profiles.len()].demand_at(slot + user * 3)
    }
}

/// A profiled video is an admissible online workload: the steady
/// demand is what the LUT reports to Algorithm 2 at admission time,
/// and the body-part class is the content-affinity shard key.
impl Workload for VideoProfile {
    fn steady_demand(&self) -> Vec<f64> {
        VideoProfile::steady_demand(self)
    }

    fn demand_at(&self, slot: usize) -> Vec<f64> {
        VideoProfile::demand_at(self, slot)
    }

    fn content_class(&self) -> &str {
        &self.class
    }
}

/// Scheduling approach under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Approach {
    /// The paper's content-aware pipeline + Algorithm 2.
    Proposed,
    /// The capacity-balanced baseline \[19\].
    Baseline,
}

impl Approach {
    /// Display label.
    pub const fn label(&self) -> &'static str {
        match self {
            Approach::Proposed => "proposed",
            Approach::Baseline => "work [19]",
        }
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The multicore platform.
    pub platform: Platform,
    /// Power model.
    pub power: PowerModel,
    /// DVFS policy for the proposed approach (\[19\] races to idle).
    pub policy: DvfsPolicy,
    /// Target frames per second per user.
    pub fps: f64,
    /// Length of the always-full user queue offered to admission.
    pub queue_len: usize,
    /// Slots to simulate for power/deadline statistics.
    pub sim_slots: usize,
    /// Admission safety factor on estimated demands (> 1 keeps slack).
    /// The live system reclaims overruns by lightening bottleneck tiles
    /// (§III-D2); replayed profiles cannot be lightened, so this factor
    /// reserves the equivalent headroom at admission time instead.
    pub admission_headroom: f64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            platform: Platform::xeon_e5_2667_quad(),
            power: PowerModel::default(),
            policy: DvfsPolicy::StretchToDeadline,
            fps: 24.0,
            queue_len: 64,
            sim_slots: 48,
            admission_headroom: 1.15,
        }
    }
}

/// Min/max/average triple (Table II rows).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Stats3 {
    /// Minimum across served users.
    pub min: f64,
    /// Maximum across served users.
    pub max: f64,
    /// Mean across served users.
    pub avg: f64,
}

impl Stats3 {
    fn from_values(values: &[f64]) -> Stats3 {
        if values.is_empty() {
            return Stats3 {
                min: f64::NAN,
                max: f64::NAN,
                avg: f64::NAN,
            };
        }
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let avg = values.iter().sum::<f64>() / values.len() as f64;
        Stats3 { min, max, avg }
    }
}

/// Outcome of serving a user population for a stretch of slots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerReport {
    /// Which approach ran.
    pub approach: Approach,
    /// Users admitted and served.
    pub users_served: usize,
    /// PSNR across served users, dB.
    pub psnr_db: Stats3,
    /// Bitrate across served users, Mbit/s.
    pub bitrate_mbps: Stats3,
    /// Mean power over the simulation, watts.
    pub avg_power_w: f64,
    /// Total energy, joules.
    pub energy_j: f64,
    /// Simulated slots.
    pub slots: usize,
    /// Slots in which at least one core carried work over (transient
    /// over-utilization; compensated within the window per §III-D2).
    pub miss_slots: usize,
    /// One-second framerate windows evaluated (per active core).
    pub windows: usize,
    /// Windows that ended with unfinished work — actual framerate
    /// violations (the paper's "checked every second" criterion).
    pub window_misses: usize,
    /// Mean number of cores doing work per slot.
    pub avg_active_cores: f64,
}

impl ServerReport {
    /// Fraction of one-second windows meeting the framerate — the
    /// paper's deadline criterion. 0.0 (not a vacuous 1.0) when the
    /// run was too short to evaluate any window, matching
    /// [`medvt_runtime::LoopReport::on_time_rate`].
    pub fn on_time_rate(&self) -> f64 {
        if self.windows == 0 {
            0.0
        } else {
            1.0 - self.window_misses as f64 / self.windows as f64
        }
    }
}

/// The server simulator.
#[derive(Debug, Clone)]
pub struct ServerSim {
    cfg: ServerConfig,
}

impl ServerSim {
    /// Creates a simulator.
    pub fn new(cfg: ServerConfig) -> Self {
        Self { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// Builds the always-full queue: `len` users cycling through the
    /// profiled videos.
    fn queue(&self, profiles: &[VideoProfile], len: usize) -> Vec<UserDemand> {
        (0..len)
            .map(|u| UserDemand::new(u, profiles[u % profiles.len()].steady_demand()))
            .collect()
    }

    /// A fresh analytical backend matching this configuration.
    pub fn sim_backend(&self) -> SimBackend {
        SimBackend::new(self.cfg.platform.clone(), self.cfg.power)
    }

    /// Serves as many queued users as possible (Table II scenario) on
    /// the analytical backend.
    ///
    /// # Panics
    ///
    /// Panics when `profiles` is empty.
    pub fn serve_max(&self, profiles: &[VideoProfile], approach: Approach) -> ServerReport {
        self.serve_max_on(&mut self.sim_backend(), profiles, approach)
    }

    /// Serves as many queued users as possible, driving the frame
    /// slots through `backend` (e.g. a real
    /// [`medvt_runtime::ThreadPoolBackend`]).
    ///
    /// # Panics
    ///
    /// Panics when `profiles` is empty or `backend` has a different
    /// core count than the platform.
    pub fn serve_max_on<B: ExecutionBackend>(
        &self,
        backend: &mut B,
        profiles: &[VideoProfile],
        approach: Approach,
    ) -> ServerReport {
        assert!(!profiles.is_empty(), "need at least one profiled video");
        let users = self.queue(profiles, self.cfg.queue_len);
        let alloc = self.allocate_for(approach, &users);
        self.simulate_on(backend, profiles, approach, &alloc)
    }

    /// Serves exactly `n` users (Fig. 4's equal-throughput comparison),
    /// or `None` when the approach cannot admit all `n`.
    ///
    /// # Panics
    ///
    /// Panics when `profiles` is empty.
    pub fn serve_fixed(
        &self,
        profiles: &[VideoProfile],
        n: usize,
        approach: Approach,
    ) -> Option<ServerReport> {
        assert!(!profiles.is_empty(), "need at least one profiled video");
        let users = self.queue(profiles, n);
        let alloc = self.allocate_for(approach, &users);
        if alloc.admitted.len() < n {
            return None;
        }
        Some(self.simulate_on(&mut self.sim_backend(), profiles, approach, &alloc))
    }

    /// Fig. 4's quantity: percentage power saving of the proposed
    /// approach over the baseline at the same `n`-user throughput.
    /// Each approach runs on the profiles *its own pipeline* produced.
    /// `None` when either approach cannot serve `n` users.
    pub fn power_savings_percent(
        &self,
        proposed_profiles: &[VideoProfile],
        baseline_profiles: &[VideoProfile],
        n: usize,
    ) -> Option<f64> {
        let base = self.serve_fixed(baseline_profiles, n, Approach::Baseline)?;
        let prop = self.serve_fixed(proposed_profiles, n, Approach::Proposed)?;
        Some((base.avg_power_w - prop.avg_power_w) / base.avg_power_w * 100.0)
    }

    /// An [`OnlineConfig`] matching this server's fps/DVFS/headroom
    /// settings, serving `horizon_slots` under `shard_policy`.
    pub fn online_config(&self, horizon_slots: usize, shard_policy: ShardPolicy) -> OnlineConfig {
        OnlineConfig {
            fps: self.cfg.fps,
            gop_slots: GOP_SLOTS,
            horizon_slots,
            headroom: self.cfg.admission_headroom,
            policy: self.cfg.policy,
            shard_policy,
            evict_miss_windows: 1,
            cost: medvt_admission::CostPlan::unlimited(),
        }
    }

    /// Serves a live arrival `trace` online — one serving shard per
    /// platform socket, admission/eviction at GOP boundaries — on
    /// analytical per-socket backends.
    ///
    /// # Panics
    ///
    /// Panics when `profiles` is empty.
    pub fn serve_online(
        &self,
        profiles: &[VideoProfile],
        trace: &[UserRequest],
        online: &OnlineConfig,
    ) -> OnlineReport {
        let shards: Vec<SimBackend> = (0..self.cfg.platform.sockets)
            .map(|s| SimBackend::new(self.cfg.platform.socket_view(s), self.cfg.power))
            .collect();
        self.serve_online_on(shards, profiles, trace, online)
    }

    /// Serves a live arrival `trace` online on caller-provided shard
    /// backends (e.g. [`medvt_runtime::ThreadPoolBackend`]s), one per
    /// platform socket. Admission decisions depend only on the
    /// analytical model, so any backend replays the same decisions.
    ///
    /// # Panics
    ///
    /// Panics when `profiles` is empty, or the shard count/core counts
    /// do not match the platform's socket topology.
    pub fn serve_online_on<B: ExecutionBackend>(
        &self,
        shards: Vec<B>,
        profiles: &[VideoProfile],
        trace: &[UserRequest],
        online: &OnlineConfig,
    ) -> OnlineReport {
        assert!(!profiles.is_empty(), "need at least one profiled video");
        assert_eq!(
            shards.len(),
            self.cfg.platform.sockets,
            "one shard per socket"
        );
        assert!(
            shards
                .iter()
                .all(|b| b.cores() == self.cfg.platform.cores_per_socket()),
            "each shard must cover one socket's cores"
        );
        medvt_admission::serve_online(online, profiles, trace, shards)
    }

    fn allocate_for(&self, approach: Approach, users: &[UserDemand]) -> Allocation {
        let cores = self.cfg.platform.total_cores();
        match approach {
            Approach::Proposed => {
                let padded: Vec<UserDemand> = users
                    .iter()
                    .map(|u| {
                        UserDemand::new(
                            u.user,
                            u.thread_secs
                                .iter()
                                .map(|s| s * self.cfg.admission_headroom)
                                .collect(),
                        )
                    })
                    .collect();
                // Admit against the platform's *effective* capacity —
                // the sum of core speed factors — so heterogeneous
                // (big.LITTLE) platforms are probed natively instead
                // of as `cores` equal units. Homogeneous platforms
                // report unit speeds, where this is bitwise identical
                // to the core-count capacity.
                allocate_on(
                    &self.cfg.platform.core_speeds(),
                    1.0 / self.cfg.fps,
                    &padded,
                )
            }
            Approach::Baseline => baseline_allocate(cores, users),
        }
    }

    /// Drives the admitted users' slots through `backend` and folds
    /// the loop statistics into a Table II-style report.
    fn simulate_on<B: ExecutionBackend>(
        &self,
        backend: &mut B,
        profiles: &[VideoProfile],
        approach: Approach,
        alloc: &Allocation,
    ) -> ServerReport {
        assert_eq!(
            backend.cores(),
            self.cfg.platform.total_cores(),
            "backend must model the configured platform"
        );
        let slot_secs = 1.0 / self.cfg.fps;
        let policy = match approach {
            Approach::Proposed => self.cfg.policy,
            // [19]'s coarse rail control: cores stay pinned at f_max,
            // clock running even through slack.
            Approach::Baseline => DvfsPolicy::PinnedMax,
        };
        // The proposed approach re-places threads at GOP boundaries
        // (§III-D2), padded by the admission headroom so the candidate
        // core set keeps the reserved slack; the baseline binds tiles
        // to cores statically.
        let replan = match approach {
            Approach::Proposed => ReplanPolicy::PerGop {
                headroom: self.cfg.admission_headroom,
            },
            Approach::Baseline => ReplanPolicy::Static,
        };
        let source = ProfileSource { profiles };
        let report = ServerLoop::new(
            backend,
            ServerLoopConfig {
                fps: self.cfg.fps,
                slots: self.cfg.sim_slots,
                policy,
                replan,
                gop_slots: GOP_SLOTS,
                window_slots: None,
            },
        )
        .run(&source, &alloc.admitted, &alloc.placements);
        let served: Vec<&VideoProfile> = alloc
            .admitted
            .iter()
            .map(|&u| &profiles[u % profiles.len()])
            .collect();
        let psnrs: Vec<f64> = served.iter().map(|p| p.mean_psnr_db).collect();
        let rates: Vec<f64> = served.iter().map(|p| p.bitrate_mbps).collect();
        ServerReport {
            approach,
            users_served: alloc.admitted.len(),
            psnr_db: Stats3::from_values(&psnrs),
            bitrate_mbps: Stats3::from_values(&rates),
            avg_power_w: report.energy_j / (self.cfg.sim_slots as f64 * slot_secs),
            energy_j: report.energy_j,
            slots: self.cfg.sim_slots,
            miss_slots: report.miss_slots,
            windows: report.windows,
            window_misses: report.window_misses,
            avg_active_cores: report.avg_active_cores(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{FrameReport, TileReport};
    use medvt_frame::Rect;

    /// Builds a synthetic profile: `tiles` tiles, each `tile_secs` of
    /// fmax time per frame.
    fn profile(name: &str, tiles: usize, tile_secs: f64) -> VideoProfile {
        let tile_reports: Vec<TileReport> = (0..tiles)
            .map(|i| TileReport {
                rect: Rect::new(i * 64, 0, 64, 64),
                cycles: (tile_secs * 3.6e9) as u64,
                fmax_secs: tile_secs,
                bits: 10_000,
                psnr_db: 40.0 + i as f64 * 0.2,
            })
            .collect();
        let frames = (0..8)
            .map(|poc| FrameReport {
                poc,
                kind: 'B',
                tiles: tile_reports.clone(),
            })
            .collect();
        VideoProfile {
            name: name.into(),
            class: "test".into(),
            fps: 24.0,
            frames,
            mean_psnr_db: 40.5,
            bitrate_mbps: 2.2,
        }
    }

    fn sim() -> ServerSim {
        ServerSim::new(ServerConfig {
            queue_len: 40,
            // Two full one-second windows at 24 fps, so on_time_rate
            // is evaluated on real windows rather than returning the
            // empty-run 0.0.
            sim_slots: 48,
            ..Default::default()
        })
    }

    const SLOT: f64 = 1.0 / 24.0;

    #[test]
    fn proposed_serves_more_users_than_baseline() {
        // Each user: 6 tiles x SLOT/8 = 0.75 slots total → 1 core under
        // Algorithm 2 packing, but 6 whole cores under [19].
        let profiles = vec![profile("v", 6, SLOT / 8.0)];
        let s = sim();
        let prop = s.serve_max(&profiles, Approach::Proposed);
        let base = s.serve_max(&profiles, Approach::Baseline);
        assert!(
            prop.users_served > base.users_served,
            "proposed {} vs baseline {}",
            prop.users_served,
            base.users_served
        );
        // Baseline: 32 cores / 6 tiles = 5 users.
        assert_eq!(base.users_served, 5);
        // Proposed packs ~1 core per user: queue-bounded at 32 max.
        assert!(prop.users_served >= 20);
    }

    #[test]
    fn served_users_meet_deadlines_when_load_fits() {
        let profiles = vec![profile("v", 4, SLOT / 8.0)];
        let s = sim();
        let report = s.serve_max(&profiles, Approach::Proposed);
        assert_eq!(report.miss_slots, 0, "fits comfortably: no misses");
        assert!(report.on_time_rate() >= 1.0);
        assert!(report.avg_active_cores > 0.0);
    }

    #[test]
    fn fixed_users_none_when_infeasible() {
        let profiles = vec![profile("v", 8, SLOT / 2.0)];
        let s = sim();
        // 8 tiles/user → baseline fits 4 users on 32 cores; 5 is too many.
        assert!(s.serve_fixed(&profiles, 5, Approach::Baseline).is_none());
        assert!(s.serve_fixed(&profiles, 4, Approach::Baseline).is_some());
    }

    #[test]
    fn power_savings_positive_for_sparse_loads() {
        // Lots of idle-per-core waste in the baseline: big savings.
        let profiles = vec![profile("v", 6, SLOT / 10.0)];
        let s = sim();
        let savings = s
            .power_savings_percent(&profiles, &profiles, 3)
            .expect("both approaches serve 3 users");
        assert!(savings > 0.0, "savings={savings}%");
    }

    #[test]
    fn energy_scales_with_users() {
        let profiles = vec![profile("v", 4, SLOT / 8.0)];
        let s = sim();
        let two = s.serve_fixed(&profiles, 2, Approach::Proposed).unwrap();
        let six = s.serve_fixed(&profiles, 6, Approach::Proposed).unwrap();
        assert!(six.energy_j > two.energy_j);
        assert!(six.avg_active_cores >= two.avg_active_cores);
    }

    #[test]
    fn table2_style_stats_cover_min_max_avg() {
        let profiles = vec![profile("a", 4, SLOT / 8.0), {
            let mut p = profile("b", 4, SLOT / 8.0);
            p.mean_psnr_db = 46.5;
            p.bitrate_mbps = 2.45;
            p
        }];
        let s = sim();
        let report = s.serve_max(&profiles, Approach::Proposed);
        assert!(report.psnr_db.max >= 46.5 - 1e-9);
        assert!(report.psnr_db.min <= 40.5 + 1e-9);
        assert!(report.psnr_db.avg > report.psnr_db.min);
        assert!(report.bitrate_mbps.max >= report.bitrate_mbps.avg);
    }

    #[test]
    fn approach_labels() {
        assert_eq!(Approach::Proposed.label(), "proposed");
        assert_eq!(Approach::Baseline.label(), "work [19]");
    }

    #[test]
    fn thread_pool_backend_reports_identical_statistics() {
        use medvt_runtime::ThreadPoolBackend;
        let profiles = vec![profile("v", 6, SLOT / 8.0)];
        let s = sim();
        for approach in [Approach::Proposed, Approach::Baseline] {
            let analytical = s.serve_max(&profiles, approach);
            let mut pool =
                ThreadPoolBackend::with_workers(s.config().platform.clone(), s.config().power, 4);
            let real = s.serve_max_on(&mut pool, &profiles, approach);
            assert_eq!(analytical, real, "backends must account identically");
        }
    }
}

//! Multi-user transcoding server simulation — the evaluation vehicle
//! behind Table II and Fig. 4.
//!
//! The queue of users is always full (paper §IV-B2): users request
//! videos drawn from the profiled suite, the scheduler admits as many
//! as the 32 cores sustain at 24 fps, and every 1/FPS slot each
//! admitted user's current frame tiles execute on their assigned cores.
//! Energy comes from the MPSoC power model; deadline misses carry load
//! into the next slot exactly as Algorithm 2 lines 21–22 prescribe.

use crate::profile::VideoProfile;
use medvt_mpsoc::{simulate_slot, DvfsPolicy, FreqLevel, Platform, PowerModel};
use medvt_sched::{allocate, baseline_allocate, place_threads, Allocation, UserDemand};
use serde::{Deserialize, Serialize};

/// GOP length used for per-GOP thread re-placement (paper §III-D2).
const GOP_SLOTS: usize = 8;

/// Scheduling approach under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Approach {
    /// The paper's content-aware pipeline + Algorithm 2.
    Proposed,
    /// The capacity-balanced baseline [19].
    Baseline,
}

impl Approach {
    /// Display label.
    pub const fn label(&self) -> &'static str {
        match self {
            Approach::Proposed => "proposed",
            Approach::Baseline => "work [19]",
        }
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The multicore platform.
    pub platform: Platform,
    /// Power model.
    pub power: PowerModel,
    /// DVFS policy for the proposed approach ([19] races to idle).
    pub policy: DvfsPolicy,
    /// Target frames per second per user.
    pub fps: f64,
    /// Length of the always-full user queue offered to admission.
    pub queue_len: usize,
    /// Slots to simulate for power/deadline statistics.
    pub sim_slots: usize,
    /// Admission safety factor on estimated demands (> 1 keeps slack).
    /// The live system reclaims overruns by lightening bottleneck tiles
    /// (§III-D2); replayed profiles cannot be lightened, so this factor
    /// reserves the equivalent headroom at admission time instead.
    pub admission_headroom: f64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            platform: Platform::xeon_e5_2667_quad(),
            power: PowerModel::default(),
            policy: DvfsPolicy::StretchToDeadline,
            fps: 24.0,
            queue_len: 64,
            sim_slots: 48,
            admission_headroom: 1.15,
        }
    }
}

/// Min/max/average triple (Table II rows).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Stats3 {
    /// Minimum across served users.
    pub min: f64,
    /// Maximum across served users.
    pub max: f64,
    /// Mean across served users.
    pub avg: f64,
}

impl Stats3 {
    fn from_values(values: &[f64]) -> Stats3 {
        if values.is_empty() {
            return Stats3 {
                min: f64::NAN,
                max: f64::NAN,
                avg: f64::NAN,
            };
        }
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let avg = values.iter().sum::<f64>() / values.len() as f64;
        Stats3 { min, max, avg }
    }
}

/// Outcome of serving a user population for a stretch of slots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerReport {
    /// Which approach ran.
    pub approach: Approach,
    /// Users admitted and served.
    pub users_served: usize,
    /// PSNR across served users, dB.
    pub psnr_db: Stats3,
    /// Bitrate across served users, Mbit/s.
    pub bitrate_mbps: Stats3,
    /// Mean power over the simulation, watts.
    pub avg_power_w: f64,
    /// Total energy, joules.
    pub energy_j: f64,
    /// Simulated slots.
    pub slots: usize,
    /// Slots in which at least one core carried work over (transient
    /// over-utilization; compensated within the window per §III-D2).
    pub miss_slots: usize,
    /// One-second framerate windows evaluated (per active core).
    pub windows: usize,
    /// Windows that ended with unfinished work — actual framerate
    /// violations (the paper's "checked every second" criterion).
    pub window_misses: usize,
    /// Mean number of cores doing work per slot.
    pub avg_active_cores: f64,
}

impl ServerReport {
    /// Fraction of one-second windows meeting the framerate — the
    /// paper's deadline criterion.
    pub fn on_time_rate(&self) -> f64 {
        if self.windows == 0 {
            1.0
        } else {
            1.0 - self.window_misses as f64 / self.windows as f64
        }
    }
}

/// The server simulator.
#[derive(Debug, Clone)]
pub struct ServerSim {
    cfg: ServerConfig,
}

impl ServerSim {
    /// Creates a simulator.
    pub fn new(cfg: ServerConfig) -> Self {
        Self { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// Builds the always-full queue: `len` users cycling through the
    /// profiled videos.
    fn queue(&self, profiles: &[VideoProfile], len: usize) -> Vec<UserDemand> {
        (0..len)
            .map(|u| UserDemand::new(u, profiles[u % profiles.len()].steady_demand()))
            .collect()
    }

    /// Serves as many queued users as possible (Table II scenario).
    ///
    /// # Panics
    ///
    /// Panics when `profiles` is empty.
    pub fn serve_max(&self, profiles: &[VideoProfile], approach: Approach) -> ServerReport {
        assert!(!profiles.is_empty(), "need at least one profiled video");
        let users = self.queue(profiles, self.cfg.queue_len);
        let alloc = self.allocate_for(approach, &users);
        self.simulate(profiles, approach, &alloc)
    }

    /// Serves exactly `n` users (Fig. 4's equal-throughput comparison),
    /// or `None` when the approach cannot admit all `n`.
    ///
    /// # Panics
    ///
    /// Panics when `profiles` is empty.
    pub fn serve_fixed(
        &self,
        profiles: &[VideoProfile],
        n: usize,
        approach: Approach,
    ) -> Option<ServerReport> {
        assert!(!profiles.is_empty(), "need at least one profiled video");
        let users = self.queue(profiles, n);
        let alloc = self.allocate_for(approach, &users);
        if alloc.admitted.len() < n {
            return None;
        }
        Some(self.simulate(profiles, approach, &alloc))
    }

    /// Fig. 4's quantity: percentage power saving of the proposed
    /// approach over the baseline at the same `n`-user throughput.
    /// Each approach runs on the profiles *its own pipeline* produced.
    /// `None` when either approach cannot serve `n` users.
    pub fn power_savings_percent(
        &self,
        proposed_profiles: &[VideoProfile],
        baseline_profiles: &[VideoProfile],
        n: usize,
    ) -> Option<f64> {
        let base = self.serve_fixed(baseline_profiles, n, Approach::Baseline)?;
        let prop = self.serve_fixed(proposed_profiles, n, Approach::Proposed)?;
        Some((base.avg_power_w - prop.avg_power_w) / base.avg_power_w * 100.0)
    }

    fn allocate_for(&self, approach: Approach, users: &[UserDemand]) -> Allocation {
        let cores = self.cfg.platform.total_cores();
        match approach {
            Approach::Proposed => {
                let padded: Vec<UserDemand> = users
                    .iter()
                    .map(|u| {
                        UserDemand::new(
                            u.user,
                            u.thread_secs
                                .iter()
                                .map(|s| s * self.cfg.admission_headroom)
                                .collect(),
                        )
                    })
                    .collect();
                allocate(cores, 1.0 / self.cfg.fps, &padded)
            }
            Approach::Baseline => baseline_allocate(cores, users),
        }
    }

    /// Mean per-tile demand of user `u` over the GOP starting at
    /// `gop_start` (what the LUT would predict for the upcoming GOP).
    fn gop_demand(&self, profiles: &[VideoProfile], u: usize, gop_start: usize) -> Vec<f64> {
        let profile = &profiles[u % profiles.len()];
        let mut acc: Vec<f64> = Vec::new();
        let mut counts: Vec<u32> = Vec::new();
        for slot in gop_start..gop_start + GOP_SLOTS {
            let d = profile.demand_at(slot + u * 3);
            if d.len() > acc.len() {
                acc.resize(d.len(), 0.0);
                counts.resize(d.len(), 0);
            }
            for (i, &s) in d.iter().enumerate() {
                acc[i] += s;
                counts[i] += 1;
            }
        }
        acc.iter()
            .zip(&counts)
            .map(|(&a, &c)| if c == 0 { 0.0 } else { a / c as f64 })
            .collect()
    }

    fn simulate(
        &self,
        profiles: &[VideoProfile],
        approach: Approach,
        alloc: &Allocation,
    ) -> ServerReport {
        let cores = self.cfg.platform.total_cores();
        let slot_secs = 1.0 / self.cfg.fps;
        let policy = match approach {
            Approach::Proposed => self.cfg.policy,
            // [19]'s coarse rail control: cores stay pinned at f_max,
            // clock running even through slack.
            Approach::Baseline => DvfsPolicy::PinnedMax,
        };
        let mut prev_freqs: Vec<FreqLevel> =
            vec![self.cfg.platform.fmin(); cores];
        let mut carry = vec![0.0f64; cores];
        let mut energy = 0.0;
        let mut miss_slots = 0usize;
        let mut windows = 0usize;
        let mut window_misses = 0usize;
        let mut active_in_window = vec![false; cores];
        let window_len = self.cfg.fps.round().max(1.0) as usize;
        let mut active_cores_acc = 0usize;
        let mut placements = alloc.placements.clone();
        for slot in 0..self.cfg.sim_slots {
            // Thread allocation happens once per GOP (paper §III-D2),
            // using that GOP's estimated per-tile demand. The baseline
            // binds tiles to cores statically instead.
            if approach == Approach::Proposed && slot % GOP_SLOTS == 0 {
                // Demands are padded by the admission headroom so the
                // candidate core set keeps the reserved slack.
                let demands: Vec<UserDemand> = alloc
                    .admitted
                    .iter()
                    .map(|&u| {
                        UserDemand::new(
                            u,
                            self.gop_demand(profiles, u, slot)
                                .iter()
                                .map(|s| s * self.cfg.admission_headroom)
                                .collect(),
                        )
                    })
                    .collect();
                let placed = place_threads(cores, slot_secs, &demands);
                if std::env::var_os("MEDVT_DEBUG_SLOTS").is_some() {
                    let mut sorted = placed.core_loads.clone();
                    sorted.sort_by(|a, b| b.total_cmp(a));
                    eprintln!(
                        "gop@{slot}: padded loads top {:?} used {} threads {}",
                        &sorted[..4.min(sorted.len())]
                            .iter()
                            .map(|l| (l / slot_secs * 100.0).round() / 100.0)
                            .collect::<Vec<_>>(),
                        placed.used_cores(),
                        placed.placements.len(),
                    );
                }
                placements = placed.placements;
            }
            let mut loads = carry.clone();
            for p in &placements {
                // Stagger users so IDR frames decorrelate across users.
                // Placement vectors cover the maximum tile count of the
                // window; frames with fewer tiles simply have no work
                // for the higher thread indices.
                let profile = &profiles[p.user % profiles.len()];
                let demand = profile.demand_at(slot + p.user * 3);
                loads[p.core] += demand.get(p.thread).copied().unwrap_or(0.0);
            }
            let report = simulate_slot(
                &self.cfg.platform,
                &self.cfg.power,
                policy,
                &loads,
                &prev_freqs,
                slot_secs,
            );
            energy += report.energy_j;
            if report.deadline_misses > 0 {
                miss_slots += 1;
            }
            if std::env::var_os("MEDVT_DEBUG_SLOTS").is_some() {
                let max_load = loads.iter().copied().fold(0.0, f64::max);
                let carrying = report
                    .cores
                    .iter()
                    .filter(|c| c.carry_fmax_secs > 1e-9)
                    .count();
                eprintln!(
                    "slot {slot:>3}: max_load {:.3} slots, {} cores carrying, total carry {:.3}",
                    max_load / slot_secs,
                    carrying,
                    report.total_carry() / slot_secs
                );
            }
            active_cores_acc += report.active_cores();
            for (k, plan) in report.cores.iter().enumerate() {
                carry[k] = plan.carry_fmax_secs;
                prev_freqs[k] = plan.freq;
                if plan.busy_secs > 0.0 {
                    active_in_window[k] = true;
                }
            }
            // One-second framerate check (paper §III-D2): a core misses
            // its window when work remains unfinished at the boundary.
            if (slot + 1) % window_len == 0 {
                for (k, active) in active_in_window.iter_mut().enumerate() {
                    if *active {
                        windows += 1;
                        if carry[k] > 1e-9 {
                            window_misses += 1;
                        }
                    }
                    *active = false;
                }
            }
        }
        let served: Vec<&VideoProfile> = alloc
            .admitted
            .iter()
            .map(|&u| &profiles[u % profiles.len()])
            .collect();
        let psnrs: Vec<f64> = served.iter().map(|p| p.mean_psnr_db).collect();
        let rates: Vec<f64> = served.iter().map(|p| p.bitrate_mbps).collect();
        ServerReport {
            approach,
            users_served: alloc.admitted.len(),
            psnr_db: Stats3::from_values(&psnrs),
            bitrate_mbps: Stats3::from_values(&rates),
            avg_power_w: energy / (self.cfg.sim_slots as f64 * slot_secs),
            energy_j: energy,
            slots: self.cfg.sim_slots,
            miss_slots,
            windows,
            window_misses,
            avg_active_cores: active_cores_acc as f64 / self.cfg.sim_slots as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{FrameReport, TileReport};
    use medvt_frame::Rect;

    /// Builds a synthetic profile: `tiles` tiles, each `tile_secs` of
    /// fmax time per frame.
    fn profile(name: &str, tiles: usize, tile_secs: f64) -> VideoProfile {
        let tile_reports: Vec<TileReport> = (0..tiles)
            .map(|i| TileReport {
                rect: Rect::new(i * 64, 0, 64, 64),
                cycles: (tile_secs * 3.6e9) as u64,
                fmax_secs: tile_secs,
                bits: 10_000,
                psnr_db: 40.0 + i as f64 * 0.2,
            })
            .collect();
        let frames = (0..8)
            .map(|poc| FrameReport {
                poc,
                kind: 'B',
                tiles: tile_reports.clone(),
            })
            .collect();
        VideoProfile {
            name: name.into(),
            class: "test".into(),
            fps: 24.0,
            frames,
            mean_psnr_db: 40.5,
            bitrate_mbps: 2.2,
        }
    }

    fn sim() -> ServerSim {
        ServerSim::new(ServerConfig {
            queue_len: 40,
            sim_slots: 16,
            ..Default::default()
        })
    }

    const SLOT: f64 = 1.0 / 24.0;

    #[test]
    fn proposed_serves_more_users_than_baseline() {
        // Each user: 6 tiles x SLOT/8 = 0.75 slots total → 1 core under
        // Algorithm 2 packing, but 6 whole cores under [19].
        let profiles = vec![profile("v", 6, SLOT / 8.0)];
        let s = sim();
        let prop = s.serve_max(&profiles, Approach::Proposed);
        let base = s.serve_max(&profiles, Approach::Baseline);
        assert!(
            prop.users_served > base.users_served,
            "proposed {} vs baseline {}",
            prop.users_served,
            base.users_served
        );
        // Baseline: 32 cores / 6 tiles = 5 users.
        assert_eq!(base.users_served, 5);
        // Proposed packs ~1 core per user: queue-bounded at 32 max.
        assert!(prop.users_served >= 20);
    }

    #[test]
    fn served_users_meet_deadlines_when_load_fits() {
        let profiles = vec![profile("v", 4, SLOT / 8.0)];
        let s = sim();
        let report = s.serve_max(&profiles, Approach::Proposed);
        assert_eq!(report.miss_slots, 0, "fits comfortably: no misses");
        assert!(report.on_time_rate() >= 1.0);
        assert!(report.avg_active_cores > 0.0);
    }

    #[test]
    fn fixed_users_none_when_infeasible() {
        let profiles = vec![profile("v", 8, SLOT / 2.0)];
        let s = sim();
        // 8 tiles/user → baseline fits 4 users on 32 cores; 5 is too many.
        assert!(s.serve_fixed(&profiles, 5, Approach::Baseline).is_none());
        assert!(s.serve_fixed(&profiles, 4, Approach::Baseline).is_some());
    }

    #[test]
    fn power_savings_positive_for_sparse_loads() {
        // Lots of idle-per-core waste in the baseline: big savings.
        let profiles = vec![profile("v", 6, SLOT / 10.0)];
        let s = sim();
        let savings = s
            .power_savings_percent(&profiles, &profiles, 3)
            .expect("both approaches serve 3 users");
        assert!(savings > 0.0, "savings={savings}%");
    }

    #[test]
    fn energy_scales_with_users() {
        let profiles = vec![profile("v", 4, SLOT / 8.0)];
        let s = sim();
        let two = s.serve_fixed(&profiles, 2, Approach::Proposed).unwrap();
        let six = s.serve_fixed(&profiles, 6, Approach::Proposed).unwrap();
        assert!(six.energy_j > two.energy_j);
        assert!(six.avg_active_cores >= two.avg_active_cores);
    }

    #[test]
    fn table2_style_stats_cover_min_max_avg() {
        let profiles = vec![
            profile("a", 4, SLOT / 8.0),
            {
                let mut p = profile("b", 4, SLOT / 8.0);
                p.mean_psnr_db = 46.5;
                p.bitrate_mbps = 2.45;
                p
            },
        ];
        let s = sim();
        let report = s.serve_max(&profiles, Approach::Proposed);
        assert!(report.psnr_db.max >= 46.5 - 1e-9);
        assert!(report.psnr_db.min <= 40.5 + 1e-9);
        assert!(report.psnr_db.avg > report.psnr_db.min);
        assert!(report.bitrate_mbps.max >= report.bitrate_mbps.avg);
    }

    #[test]
    fn approach_labels() {
        assert_eq!(Approach::Proposed.label(), "proposed");
        assert_eq!(Approach::Baseline.label(), "work [19]");
    }
}

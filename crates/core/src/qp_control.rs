//! Per-tile quality-aware QP adaptation — paper §III-C1, Algorithm 1.
//!
//! Default QPs follow texture (higher QP for flatter tiles): 37 / 32 /
//! 27 for low / medium / high texture, with the extremes 42 (very flat,
//! still above the PSNR constraint) and 22 (extreme texture, needed to
//! meet it). Every frame, each tile's previous PSNR steers the QP:
//! comfortably above the constraint → raise QP (save bits and time),
//! below it → lower QP, otherwise return to the texture default.

use medvt_analyze::TextureClass;
use medvt_encoder::Qp;
use serde::{Deserialize, Serialize};

/// Observation of one tile from the previous frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TileObservation {
    /// Luma PSNR of the tile, dB.
    pub psnr_db: f64,
    /// Bits the tile consumed.
    pub bits: u64,
}

/// Configuration of the QP controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QpControlConfig {
    /// The PSNR constraint (dB) the service guarantees (Table II floors
    /// around 40 dB).
    pub psnr_constraint_db: f64,
    /// Margin above the constraint before QP may rise (Algorithm 1's
    /// `PSNR_margin`).
    pub psnr_margin_db: f64,
    /// QP adjustment step (`ΔQP`).
    pub delta_qp: i32,
    /// Hard QP bounds — the paper's extreme values 22 and 42.
    pub qp_floor: Qp,
    /// Upper bound, see [`QpControlConfig::qp_floor`].
    pub qp_ceiling: Qp,
}

impl Default for QpControlConfig {
    fn default() -> Self {
        Self {
            psnr_constraint_db: 39.5,
            psnr_margin_db: 3.0,
            delta_qp: 2,
            qp_floor: Qp::new(22).expect("22 is valid"),
            qp_ceiling: Qp::new(42).expect("42 is valid"),
        }
    }
}

/// The texture-default QP of §III-C1.
pub fn default_qp(texture: TextureClass) -> Qp {
    let v = match texture {
        TextureClass::Low => 37,
        TextureClass::Medium => 32,
        TextureClass::High => 27,
    };
    Qp::new(v).expect("defaults are valid")
}

/// Algorithm 1: stateful per-tile QP adaptation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QpController {
    config: QpControlConfig,
    /// Current QP per tile index (reset on re-tiling).
    current: Vec<Qp>,
}

impl QpController {
    /// Creates a controller.
    pub fn new(config: QpControlConfig) -> Self {
        Self {
            config,
            current: Vec::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &QpControlConfig {
        &self.config
    }

    /// Resets per-tile state for a new tiling, seeding each tile with
    /// its texture default.
    pub fn reset(&mut self, textures: &[TextureClass]) {
        self.current = textures.iter().map(|&t| default_qp(t)).collect();
    }

    /// Number of tiles tracked.
    pub fn len(&self) -> usize {
        self.current.len()
    }

    /// `true` when no tiling has been seeded yet.
    pub fn is_empty(&self) -> bool {
        self.current.is_empty()
    }

    /// The QP currently assigned to `tile`.
    ///
    /// # Panics
    ///
    /// Panics when `tile` is out of range (call [`QpController::reset`]
    /// first).
    pub fn qp(&self, tile: usize) -> Qp {
        self.current[tile]
    }

    /// Runs one Algorithm-1 step for `tile` given its texture and the
    /// previous frame's observation, returning the QP for the next
    /// frame.
    ///
    /// # Panics
    ///
    /// Panics when `tile` is out of range.
    pub fn adapt(
        &mut self,
        tile: usize,
        texture: TextureClass,
        prev: Option<TileObservation>,
    ) -> Qp {
        let cfg = self.config;
        let qp = match prev {
            None => default_qp(texture),
            Some(obs) => {
                let current = self.current[tile];
                if obs.psnr_db > cfg.psnr_constraint_db + cfg.psnr_margin_db {
                    // Line 2–3: comfortably above → coarser quantization.
                    current.offset(cfg.delta_qp)
                } else if obs.psnr_db < cfg.psnr_constraint_db {
                    // Line 4–5: constraint violated → finer quantization.
                    current.offset(-cfg.delta_qp)
                } else {
                    // Line 6–7: inside the band → texture default.
                    default_qp(texture)
                }
            }
        };
        let bounded = clamp_qp(qp, cfg.qp_floor, cfg.qp_ceiling);
        self.current[tile] = bounded;
        bounded
    }
}

fn clamp_qp(qp: Qp, floor: Qp, ceiling: Qp) -> Qp {
    if qp < floor {
        floor
    } else if qp > ceiling {
        ceiling
    } else {
        qp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> QpController {
        let mut c = QpController::new(QpControlConfig::default());
        c.reset(&[TextureClass::Low, TextureClass::Medium, TextureClass::High]);
        c
    }

    fn obs(psnr: f64) -> Option<TileObservation> {
        Some(TileObservation {
            psnr_db: psnr,
            bits: 10_000,
        })
    }

    #[test]
    fn defaults_match_paper() {
        assert_eq!(default_qp(TextureClass::Low).value(), 37);
        assert_eq!(default_qp(TextureClass::Medium).value(), 32);
        assert_eq!(default_qp(TextureClass::High).value(), 27);
    }

    #[test]
    fn reset_seeds_texture_defaults() {
        let c = controller();
        assert_eq!(c.len(), 3);
        assert_eq!(c.qp(0).value(), 37);
        assert_eq!(c.qp(1).value(), 32);
        assert_eq!(c.qp(2).value(), 27);
    }

    #[test]
    fn high_headroom_raises_qp() {
        let mut c = controller();
        // 50 dB >> 39.5 + 3: QP rises by ΔQP.
        let qp = c.adapt(1, TextureClass::Medium, obs(50.0));
        assert_eq!(qp.value(), 34);
        // And keeps rising on repeated headroom, up to the 42 ceiling.
        for _ in 0..10 {
            c.adapt(1, TextureClass::Medium, obs(50.0));
        }
        assert_eq!(c.qp(1).value(), 42);
    }

    #[test]
    fn violation_lowers_qp_to_floor() {
        let mut c = controller();
        for _ in 0..20 {
            c.adapt(2, TextureClass::High, obs(35.0));
        }
        assert_eq!(c.qp(2).value(), 22, "extreme texture hits the 22 floor");
    }

    #[test]
    fn in_band_returns_to_default() {
        let mut c = controller();
        c.adapt(0, TextureClass::Low, obs(50.0)); // pushed up
        assert_ne!(c.qp(0).value(), 37);
        let qp = c.adapt(0, TextureClass::Low, obs(40.5)); // inside band
        assert_eq!(qp.value(), 37);
    }

    #[test]
    fn first_frame_uses_default() {
        let mut c = controller();
        assert_eq!(c.adapt(1, TextureClass::Medium, None).value(), 32);
    }

    #[test]
    fn boundary_conditions_of_band() {
        let mut c = controller();
        let cfg = *c.config();
        // Exactly at constraint: in band (not below) → default.
        let qp = c.adapt(1, TextureClass::Medium, obs(cfg.psnr_constraint_db));
        assert_eq!(qp, default_qp(TextureClass::Medium));
        // Exactly at constraint+margin: in band (not above) → default.
        let qp = c.adapt(
            1,
            TextureClass::Medium,
            obs(cfg.psnr_constraint_db + cfg.psnr_margin_db),
        );
        assert_eq!(qp, default_qp(TextureClass::Medium));
    }
}

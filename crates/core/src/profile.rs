//! Video profiling: run a clip through a pipeline once and keep the
//! per-frame, per-tile workload/quality record.
//!
//! The encoder substrate is deterministic, so two users transcoding
//! the same stored video produce identical workloads. The multi-user
//! server therefore profiles each distinct video **once** per approach
//! and schedules any number of users from the profiles — the modelling
//! substitute for the paper's live 32-core runs (see DESIGN.md).

use crate::pipeline::{FrameReport, TranscodeController};
use medvt_encoder::{EncoderConfig, ScopedExecutor, SerialExecutor, TileExecutor, VideoEncoder};
use medvt_frame::VideoClip;
use serde::{Deserialize, Serialize};

/// The workload/quality record of one transcoded video.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VideoProfile {
    /// Video name (from the medical suite).
    pub name: String,
    /// Body-part class (LUT transfer key).
    pub class: String,
    /// Frame rate.
    pub fps: f64,
    /// Per-frame reports in display order.
    pub frames: Vec<FrameReport>,
    /// Sequence mean luma PSNR, dB.
    pub mean_psnr_db: f64,
    /// Sequence bitrate, Mbit/s.
    pub bitrate_mbps: f64,
}

impl VideoProfile {
    /// Per-tile f_max-second demand of the frame shown at `slot`
    /// (wrapping around the profile for endless streaming).
    pub fn demand_at(&self, slot: usize) -> Vec<f64> {
        let f = &self.frames[slot % self.frames.len()];
        f.tiles.iter().map(|t| t.fmax_secs).collect()
    }

    /// Steady-state per-tile demand: the per-tile mean over the last
    /// full GOP, excluding intra pictures (IDRs are several times
    /// cheaper than inter frames here — ME dominates — and would bias
    /// the estimate low). This is what the LUT would report to
    /// Algorithm 2.
    pub fn steady_demand(&self) -> Vec<f64> {
        let n = self.frames.len();
        let window = 9.min(n);
        let tail: Vec<&FrameReport> = self.frames[n - window..]
            .iter()
            .filter(|f| f.kind != 'I')
            .collect();
        let tail: Vec<&FrameReport> = if tail.is_empty() {
            self.frames[n - window..].iter().collect()
        } else {
            tail
        };
        let tiles = tail.iter().map(|f| f.tiles.len()).max().unwrap_or(0);
        let mut acc = vec![0.0f64; tiles];
        let mut counts = vec![0u32; tiles];
        for f in tail {
            for (i, t) in f.tiles.iter().enumerate() {
                acc[i] += t.fmax_secs;
                counts[i] += 1;
            }
        }
        acc.iter()
            .zip(&counts)
            .map(|(&a, &c)| if c == 0 { 0.0 } else { a / c as f64 })
            .collect()
    }

    /// Mean whole-frame f_max time, seconds.
    pub fn mean_frame_secs(&self) -> f64 {
        if self.frames.is_empty() {
            return 0.0;
        }
        self.frames.iter().map(FrameReport::total_secs).sum::<f64>() / self.frames.len() as f64
    }

    /// Cores this video demands at `fps` (Algorithm 2 line 1 on the
    /// steady demand).
    pub fn cores_needed(&self, fps: f64) -> usize {
        (self.steady_demand().iter().sum::<f64>() * fps)
            .ceil()
            .max(1.0) as usize
    }
}

/// Profiles `clip` through `controller`, consuming it frame by frame
/// with the workspace encoder. `parallel` selects unpinned scoped
/// threads; [`profile_video_with`] accepts any tile executor instead
/// (e.g. the runtime's placement-aware pool).
pub fn profile_video(
    name: impl Into<String>,
    class: impl Into<String>,
    clip: &VideoClip,
    controller: &mut dyn TranscodeController,
    encoder: &EncoderConfig,
    parallel: bool,
) -> VideoProfile {
    if parallel {
        profile_video_with(name, class, clip, controller, encoder, &ScopedExecutor)
    } else {
        profile_video_with(name, class, clip, controller, encoder, &SerialExecutor)
    }
}

/// Profiles `clip` through `controller`, encoding every frame's tiles
/// on `executor`. The profile is executor-independent (tile encoding
/// is deterministic); only the wall-clock cost of producing it moves.
pub fn profile_video_with(
    name: impl Into<String>,
    class: impl Into<String>,
    clip: &VideoClip,
    controller: &mut dyn TranscodeController,
    encoder: &EncoderConfig,
    executor: &dyn TileExecutor,
) -> VideoProfile {
    let stats = VideoEncoder::new(*encoder).encode_clip_with(clip, controller, executor);
    let mut frames = controller.drain_reports();
    frames.sort_by_key(|r| r.poc);
    VideoProfile {
        name: name.into(),
        class: class.into(),
        fps: clip.fps(),
        frames,
        mean_psnr_db: stats.mean_psnr(),
        bitrate_mbps: stats.bitrate_mbps(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline19::{Baseline19Controller, BaselineConfig};
    use crate::pipeline::{ContentAwareController, PipelineConfig};
    use medvt_analyze::AnalyzerConfig;
    use medvt_frame::synth::{BodyPart, MotionPattern, PhantomVideo};
    use medvt_frame::Resolution;
    use medvt_sched::WorkloadLut;

    fn clip() -> VideoClip {
        PhantomVideo::builder(BodyPart::Brain)
            .resolution(Resolution::new(192, 144))
            .motion(MotionPattern::Pan { dx: 1.0, dy: 0.0 })
            .seed(31)
            .build()
            .capture(9)
    }

    fn proposed_profile() -> VideoProfile {
        let cfg = PipelineConfig {
            analyzer: AnalyzerConfig {
                min_tile_width: 32,
                min_tile_height: 32,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut ctl = ContentAwareController::new(cfg, WorkloadLut::new());
        profile_video(
            "test",
            "brain",
            &clip(),
            &mut ctl,
            &EncoderConfig::default(),
            false,
        )
    }

    #[test]
    fn profile_has_every_frame_in_order() {
        let p = proposed_profile();
        assert_eq!(p.frames.len(), 9);
        for (i, f) in p.frames.iter().enumerate() {
            assert_eq!(f.poc, i);
            assert!(!f.tiles.is_empty());
        }
        assert!(p.mean_psnr_db > 32.0);
        assert!(p.bitrate_mbps > 0.0);
    }

    #[test]
    fn demand_wraps_around() {
        let p = proposed_profile();
        assert_eq!(p.demand_at(0), p.demand_at(9));
        assert_eq!(p.demand_at(3), p.demand_at(12));
    }

    #[test]
    fn steady_demand_reflects_tail_frames() {
        let p = proposed_profile();
        let steady = p.steady_demand();
        assert_eq!(steady.len(), p.frames.last().unwrap().tiles.len());
        assert!(steady.iter().all(|&d| d >= 0.0));
        let total: f64 = steady.iter().sum();
        assert!(total > 0.0);
        assert!(p.cores_needed(24.0) >= 1);
    }

    #[test]
    fn baseline_profile_differs_from_proposed() {
        let proposed = proposed_profile();
        let mut base_ctl = Baseline19Controller::new(BaselineConfig {
            initial_cores_per_user: 4,
            ..Default::default()
        });
        let baseline = profile_video(
            "test",
            "brain",
            &clip(),
            &mut base_ctl,
            &EncoderConfig::default(),
            false,
        );
        assert_eq!(baseline.frames.len(), proposed.frames.len());
        // The proposed pipeline should not cost more total fmax time.
        assert!(
            proposed.mean_frame_secs() <= baseline.mean_frame_secs() * 1.05,
            "proposed {} vs baseline {}",
            proposed.mean_frame_secs(),
            baseline.mean_frame_secs()
        );
    }
}

//! The content-aware transcoding pipeline — the paper's Fig. 2 loop
//! wired into the encoder as an [`EncodeController`].
//!
//! Per GOP-first frame: motion & texture evaluation → content-aware
//! re-tiling → per-tile configuration (Algorithm 1 QP + the §III-C2
//! motion-search policy). Per frame: QP adaptation from the previous
//! frame's PSNR, direction inheritance from the GOP-first frame, and
//! deadline-driven lightening from the feedback controller.

use crate::qp_control::{QpControlConfig, QpController, TileObservation};
use medvt_analyze::{AnalyzerConfig, Retiler, TextureClass, TileAnalysis};
use medvt_encoder::{
    CostModel, EncodeController, FramePlan, FramePlanContext, FrameStats, Qp, SearchSpec,
    TileConfig,
};
use medvt_frame::{FrameKind, Rect};
use medvt_motion::{MotionLevel, MotionVector, SearchWindow};
use medvt_sched::{Adjustment, LutKey, WorkloadLut};
use serde::{Deserialize, Serialize};

/// Configuration of the content-aware pipeline.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Content analyzer / re-tiler tunables.
    pub analyzer: AnalyzerConfig,
    /// Algorithm 1 QP controller tunables.
    pub qp: QpControlConfig,
    /// Cycle cost model (the profiling substitute).
    pub cost: CostModel,
    /// Maximum search window handed to the ME policy.
    pub max_window: SearchWindow,
    /// f_max in Hz, for converting cycles to `T_fmax` seconds.
    pub fmax_hz: f64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            analyzer: AnalyzerConfig::default(),
            qp: QpControlConfig::default(),
            cost: CostModel::default(),
            max_window: SearchWindow::W64,
            fmax_hz: 3.6e9,
        }
    }
}

/// Per-tile outcome of one encoded frame, in pipeline terms.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TileReport {
    /// Tile geometry.
    pub rect: Rect,
    /// Modelled CPU cycles to encode the tile.
    pub cycles: u64,
    /// Equivalent seconds at f_max.
    pub fmax_secs: f64,
    /// Bits produced.
    pub bits: u64,
    /// Luma PSNR, dB.
    pub psnr_db: f64,
}

/// One frame's pipeline report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameReport {
    /// Display index.
    pub poc: usize,
    /// Frame kind letter.
    pub kind: char,
    /// Per-tile reports in tiling order.
    pub tiles: Vec<TileReport>,
}

impl FrameReport {
    /// The frame's critical-path time at f_max assuming fully parallel
    /// tiles, seconds.
    pub fn critical_path_secs(&self) -> f64 {
        self.tiles.iter().map(|t| t.fmax_secs).fold(0.0, f64::max)
    }

    /// Sum of all tile times at f_max, seconds.
    pub fn total_secs(&self) -> f64 {
        self.tiles.iter().map(|t| t.fmax_secs).sum()
    }

    /// Frame bits.
    pub fn bits(&self) -> u64 {
        self.tiles.iter().map(|t| t.bits).sum()
    }
}

/// Controllers the sessions/profiler can drive: encoding control plus
/// report and feedback plumbing.
pub trait TranscodeController: EncodeController {
    /// Drains the reports of all frames encoded so far (display order
    /// not guaranteed; sort by `poc` if needed).
    fn drain_reports(&mut self) -> Vec<FrameReport>;

    /// Applies a deadline-feedback adjustment to future frames.
    fn apply_adjustment(&mut self, adjustment: &Adjustment);

    /// Estimated per-tile demand of the next frame, in f_max seconds
    /// (the `T_fmax` vector Algorithm 2 consumes).
    fn demand_secs(&self) -> Vec<f64>;
}

/// Bookkeeping for one planned tile.
#[derive(Debug, Clone, Copy)]
struct TileMeta {
    rect: Rect,
    texture: TextureClass,
    motion: MotionLevel,
    qp: Qp,
    search_name: &'static str,
    kind: FrameKind,
}

/// The proposed content-aware controller.
#[derive(Debug)]
pub struct ContentAwareController {
    cfg: PipelineConfig,
    retiler: Retiler,
    qp_ctl: QpController,
    lut: WorkloadLut,
    analyses: Vec<TileAnalysis>,
    directions: Option<Vec<MotionVector>>,
    prev_obs: Vec<Option<TileObservation>>,
    /// Per-tile lightening level from deadline feedback (0 = planned).
    lighten: Vec<u8>,
    /// Meta of the frame currently being encoded (set by `plan`).
    pending_meta: Vec<TileMeta>,
    pending_gop_first: bool,
    reports: Vec<FrameReport>,
}

impl ContentAwareController {
    /// Creates a controller; the LUT may come pre-seeded from a
    /// [`medvt_sched::LutBank`] class entry.
    ///
    /// # Panics
    ///
    /// Panics when the analyzer configuration is invalid.
    pub fn new(cfg: PipelineConfig, lut: WorkloadLut) -> Self {
        let retiler = Retiler::new(cfg.analyzer).expect("analyzer config must be valid");
        Self {
            cfg,
            retiler,
            qp_ctl: QpController::new(cfg.qp),
            lut,
            analyses: Vec::new(),
            directions: None,
            prev_obs: Vec::new(),
            lighten: Vec::new(),
            pending_meta: Vec::new(),
            pending_gop_first: false,
            reports: Vec::new(),
        }
    }

    /// Read access to the online LUT (e.g. to fold back into a bank).
    pub fn lut(&self) -> &WorkloadLut {
        &self.lut
    }

    /// The current tiling's analyses.
    pub fn analyses(&self) -> &[TileAnalysis] {
        &self.analyses
    }

    fn lighten_level(&self, tile: usize) -> u8 {
        self.lighten.get(tile).copied().unwrap_or(0)
    }
}

impl EncodeController for ContentAwareController {
    fn plan(&mut self, ctx: &FramePlanContext<'_>) -> FramePlan {
        // Re-tiling happens once per GOP, on its first coded frame
        // (paper §III-D2), against the previous anchor's reconstruction.
        if ctx.gop_first_coded || self.analyses.is_empty() {
            let prev_luma = ctx.prev_anchor.map(|f| f.y());
            let outcome = self.retiler.retile(ctx.frame.y(), prev_luma);
            let textures: Vec<TextureClass> =
                outcome.analyses.iter().map(|a| a.texture.class).collect();
            self.qp_ctl.reset(&textures);
            self.prev_obs = vec![None; outcome.analyses.len()];
            self.lighten = vec![0; outcome.analyses.len()];
            self.analyses = outcome.analyses;
            self.directions = None;
        }
        self.pending_gop_first = ctx.gop_first_coded;

        let mut tiles = Vec::with_capacity(self.analyses.len());
        let mut configs = Vec::with_capacity(self.analyses.len());
        self.pending_meta.clear();
        for (i, analysis) in self.analyses.iter().enumerate() {
            let texture = analysis.texture.class;
            let level = analysis.motion_level();
            let lighten = self.lighten_level(i);
            // Algorithm 1 QP, plus deadline lightening (+ΔQP per level).
            let mut qp = self.qp_ctl.adapt(i, texture, self.prev_obs[i]);
            if lighten > 0 {
                qp = qp.offset(2 * lighten as i32);
            }
            // §III-C2 search policy with GOP direction inheritance.
            let search = match (&self.directions, ctx.kind) {
                (_, FrameKind::Intra) => SearchSpec::biomed_first(level),
                (None, _) => SearchSpec::biomed_first(level),
                (Some(dirs), _) => SearchSpec::biomed_subsequent(level, dirs[i]),
            };
            // Deadline lightening also shrinks the allowed window.
            let mut window = self.cfg.max_window;
            for _ in 0..lighten {
                window = window.shrunk().unwrap_or(window);
            }
            tiles.push(analysis.rect);
            configs.push(TileConfig { qp, search, window });
            self.pending_meta.push(TileMeta {
                rect: analysis.rect,
                texture,
                motion: level,
                qp,
                search_name: search.name(),
                kind: ctx.kind,
            });
        }
        FramePlan { tiles, configs }
    }

    fn frame_done(&mut self, poc: usize, stats: &FrameStats, dominant_mvs: &[MotionVector]) {
        let mut tiles = Vec::with_capacity(stats.tiles.len());
        for (i, tile_stats) in stats.tiles.iter().enumerate() {
            let cycles = self.cfg.cost.tile_cycles(tile_stats);
            let fmax_secs = cycles as f64 / self.cfg.fmax_hz;
            let psnr = tile_stats.psnr().min(99.0);
            tiles.push(TileReport {
                rect: tile_stats.rect,
                cycles,
                fmax_secs,
                bits: tile_stats.bits,
                psnr_db: psnr,
            });
            if let Some(meta) = self.pending_meta.get(i) {
                let key = LutKey::new(
                    &meta.rect,
                    meta.texture,
                    meta.motion,
                    meta.qp,
                    meta.search_name,
                    meta.kind,
                );
                self.lut.observe(key, cycles);
            }
            if i < self.prev_obs.len() {
                self.prev_obs[i] = Some(TileObservation {
                    psnr_db: psnr,
                    bits: tile_stats.bits,
                });
            }
        }
        if self.pending_gop_first {
            self.directions = Some(dominant_mvs.to_vec());
        }
        let kind = self.pending_meta.first().map_or('B', |m| m.kind.letter());
        self.reports.push(FrameReport { poc, kind, tiles });
    }
}

impl TranscodeController for ContentAwareController {
    fn drain_reports(&mut self) -> Vec<FrameReport> {
        std::mem::take(&mut self.reports)
    }

    fn apply_adjustment(&mut self, adjustment: &Adjustment) {
        match adjustment {
            Adjustment::None => {}
            Adjustment::Lighten { tiles } => {
                for &t in tiles {
                    if let Some(l) = self.lighten.get_mut(t) {
                        *l = (*l + 1).min(2);
                    }
                }
            }
            Adjustment::Restore => self.lighten.iter_mut().for_each(|l| *l = 0),
        }
    }

    fn demand_secs(&self) -> Vec<f64> {
        // Estimate the next frame's per-tile time from the LUT using
        // the current tiling/configuration (B-frame steady state).
        self.analyses
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let texture = a.texture.class;
                let level = a.motion_level();
                let qp = if self.qp_ctl.is_empty() {
                    crate::qp_control::default_qp(texture)
                } else {
                    self.qp_ctl.qp(i)
                };
                let key = LutKey::new(
                    &a.rect,
                    texture,
                    level,
                    qp,
                    "biomed",
                    FrameKind::BiPredicted,
                );
                self.lut.estimate_or_model(&key) as f64 / self.cfg.fmax_hz
            })
            .collect()
    }
}

/// Motion-estimation policy selector for [`UniformMeController`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MePolicy {
    /// One fixed algorithm everywhere (e.g. TZ or hexagon — the
    /// reference columns of Table I).
    Fixed(SearchSpec),
    /// The proposed §III-C2 policy driven by per-tile motion probing
    /// and GOP direction inheritance.
    Proposed,
}

/// Uniform-tiling controller with a pluggable ME policy — the exact
/// configuration space of the paper's Table I (`n x m` uniform tiling,
/// fixed QP, ME method under test).
#[derive(Debug)]
pub struct UniformMeController {
    /// Grid columns.
    pub cols: usize,
    /// Grid rows.
    pub rows: usize,
    /// Fixed QP for every tile.
    pub qp: Qp,
    /// ME policy under test.
    pub policy: MePolicy,
    /// Search window handed to the algorithms.
    pub window: SearchWindow,
    analyzer: AnalyzerConfig,
    analyses: Vec<TileAnalysis>,
    directions: Option<Vec<MotionVector>>,
    pending_gop_first: bool,
}

impl UniformMeController {
    /// Creates the controller.
    pub fn new(cols: usize, rows: usize, qp: Qp, policy: MePolicy) -> Self {
        Self {
            cols,
            rows,
            qp,
            policy,
            window: SearchWindow::W64,
            analyzer: AnalyzerConfig::default(),
            analyses: Vec::new(),
            directions: None,
            pending_gop_first: false,
        }
    }
}

impl EncodeController for UniformMeController {
    fn plan(&mut self, ctx: &FramePlanContext<'_>) -> FramePlan {
        let frame_rect = ctx.frame.y().bounds();
        let tiling = medvt_analyze::Tiling::uniform(frame_rect, self.cols, self.rows);
        if ctx.gop_first_coded || self.analyses.is_empty() {
            let prev = ctx.prev_anchor.map(|f| f.y());
            self.analyses =
                medvt_analyze::analyze_tiling(ctx.frame.y(), prev, &tiling, &self.analyzer);
            self.directions = None;
        }
        self.pending_gop_first = ctx.gop_first_coded;
        let configs = self
            .analyses
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let search = match self.policy {
                    MePolicy::Fixed(s) => s,
                    MePolicy::Proposed => match &self.directions {
                        None => SearchSpec::biomed_first(a.motion_level()),
                        Some(dirs) => SearchSpec::biomed_subsequent(a.motion_level(), dirs[i]),
                    },
                };
                TileConfig {
                    qp: self.qp,
                    search,
                    window: self.window,
                }
            })
            .collect();
        FramePlan {
            tiles: tiling.tiles().to_vec(),
            configs,
        }
    }

    fn frame_done(&mut self, _poc: usize, _stats: &FrameStats, dominant_mvs: &[MotionVector]) {
        if self.pending_gop_first {
            self.directions = Some(dominant_mvs.to_vec());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medvt_encoder::{EncoderConfig, VideoEncoder};
    use medvt_frame::synth::{BodyPart, MotionPattern, PhantomVideo};
    use medvt_frame::Resolution;

    fn pipeline_cfg() -> PipelineConfig {
        PipelineConfig {
            analyzer: AnalyzerConfig {
                min_tile_width: 32,
                min_tile_height: 32,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    fn clip(frames: usize) -> medvt_frame::VideoClip {
        PhantomVideo::builder(BodyPart::Brain)
            .resolution(Resolution::new(192, 144))
            .motion(MotionPattern::Pan { dx: 1.0, dy: 0.0 })
            .seed(12)
            .build()
            .capture(frames)
    }

    #[test]
    fn pipeline_encodes_and_reports() {
        let clip = clip(9);
        let mut ctl = ContentAwareController::new(pipeline_cfg(), WorkloadLut::new());
        let stats = VideoEncoder::new(EncoderConfig::default()).encode_clip(&clip, &mut ctl);
        assert_eq!(stats.frames.len(), 9);
        let mut reports = ctl.drain_reports();
        reports.sort_by_key(|r| r.poc);
        assert_eq!(reports.len(), 9);
        // Tiles consistent within each GOP (the IDR may differ from the
        // GOP's own re-tiling).
        let n = reports[1].tiles.len();
        assert!(n >= 4, "content-aware tiling has ring+center tiles");
        assert!(reports[1..].iter().all(|r| r.tiles.len() == n));
        // The LUT learned from every tile of every frame.
        assert!(ctl.lut().total_observations() >= (8 * n) as u64);
        // PSNR respects the constraint direction.
        assert!(stats.mean_psnr() > 35.0, "psnr={}", stats.mean_psnr());
    }

    #[test]
    fn directions_are_inherited_within_gop() {
        let clip = clip(9);
        let mut ctl = ContentAwareController::new(pipeline_cfg(), WorkloadLut::new());
        VideoEncoder::new(EncoderConfig::default()).encode_clip(&clip, &mut ctl);
        let dirs = ctl.directions.as_ref().expect("directions recorded");
        assert_eq!(dirs.len(), ctl.analyses().len());
    }

    #[test]
    fn demand_estimates_are_positive_and_converge() {
        let clip = clip(17);
        let mut ctl = ContentAwareController::new(pipeline_cfg(), WorkloadLut::new());
        VideoEncoder::new(EncoderConfig::default()).encode_clip(&clip, &mut ctl);
        let demand = ctl.demand_secs();
        assert_eq!(demand.len(), ctl.analyses().len());
        assert!(demand.iter().all(|&d| d > 0.0));
        // Warm LUT: demand should be within 10x of measured mean tile time.
        let mut reports = ctl.drain_reports();
        reports.sort_by_key(|r| r.poc);
        let measured: f64 = reports
            .iter()
            .rev()
            .take(4)
            .map(FrameReport::total_secs)
            .sum::<f64>()
            / 4.0;
        let estimated: f64 = demand.iter().sum();
        assert!(
            estimated < measured * 10.0 && estimated > measured / 10.0,
            "estimated {estimated} vs measured {measured}"
        );
    }

    #[test]
    fn lightening_raises_qp_and_shrinks_window() {
        let clip = clip(2);
        let frame0 = clip.get(0).expect("frame 0").clone();
        let frame1 = clip.get(1).expect("frame 1").clone();
        let mut ctl = ContentAwareController::new(pipeline_cfg(), WorkloadLut::new());
        // Establish the GOP tiling.
        let ctx0 = FramePlanContext {
            poc: 0,
            kind: FrameKind::Intra,
            gop_start: 0,
            offset_in_gop: 0,
            gop_first_coded: true,
            frame: &frame0,
            prev_anchor: None,
        };
        let _ = ctl.plan(&ctx0);
        let ctx1 = FramePlanContext {
            poc: 1,
            kind: FrameKind::BiPredicted,
            gop_start: 0,
            offset_in_gop: 1,
            gop_first_coded: false,
            frame: &frame1,
            prev_anchor: Some(&frame0),
        };
        let planned = ctl.plan(&ctx1);
        // Deadline feedback flags tile 0 as the bottleneck.
        ctl.apply_adjustment(&Adjustment::Lighten { tiles: vec![0] });
        let lightened = ctl.plan(&ctx1);
        assert!(
            lightened.configs[0].qp > planned.configs[0].qp,
            "lightened QP {} vs planned {}",
            lightened.configs[0].qp,
            planned.configs[0].qp
        );
        assert!(lightened.configs[0].window.radius() < planned.configs[0].window.radius());
        // Other tiles untouched.
        assert_eq!(lightened.configs[1].window, planned.configs[1].window);
        // Restore undoes it.
        ctl.apply_adjustment(&Adjustment::Restore);
        let restored = ctl.plan(&ctx1);
        assert_eq!(restored.configs[0].window, planned.configs[0].window);
    }

    #[test]
    fn restore_clears_lightening() {
        let mut ctl = ContentAwareController::new(pipeline_cfg(), WorkloadLut::new());
        ctl.lighten = vec![2, 1, 0];
        ctl.apply_adjustment(&Adjustment::Restore);
        assert!(ctl.lighten.iter().all(|&l| l == 0));
    }

    #[test]
    fn uniform_me_controller_proposed_is_cheaper_than_tz() {
        let clip = clip(9);
        let encode = |policy: MePolicy| {
            let mut ctl = UniformMeController::new(2, 2, Qp::new(32).unwrap(), policy);
            VideoEncoder::new(EncoderConfig::default()).encode_clip(&clip, &mut ctl)
        };
        let tz = encode(MePolicy::Fixed(SearchSpec::Tz));
        let proposed = encode(MePolicy::Proposed);
        assert!(
            proposed.total_sad_samples() * 2 < tz.total_sad_samples(),
            "proposed {} vs tz {}",
            proposed.total_sad_samples(),
            tz.total_sad_samples()
        );
        // Quality stays close (Table I: ≤ ~0.3 dB loss).
        assert!(tz.mean_psnr() - proposed.mean_psnr() < 1.0);
    }
}

//! # medvt-core
//!
//! The complete content-aware transcoding framework of *"Online
//! Efficient Bio-Medical Video Transcoding on MPSoCs Through
//! Content-Aware Workload Allocation"* (Iranfar et al., DATE 2018) —
//! the paper's Fig. 2 pipeline assembled from the workspace substrates.
//!
//! * [`QpController`] — Algorithm 1 per-tile QP adaptation (§III-C1);
//! * [`ContentAwareController`] — the proposed pipeline: per-GOP
//!   motion/texture evaluation, content-aware re-tiling, per-tile
//!   QP + motion-search policy, LUT learning, deadline lightening;
//! * [`Baseline19Controller`] — the comparison system of Khan et al.
//!   \[19\]: capacity-balanced one-tile-per-core tiling, uniform QP,
//!   default hexagon search, rail-frequency re-tiling trigger;
//! * [`profile_video`] / [`VideoProfile`] — one-pass workload/quality
//!   records of a transcoded video (the deterministic substitute for
//!   live multi-user runs);
//! * [`ServerSim`] — the multi-user serving simulation behind Table II
//!   (users served) and Fig. 4 (power savings at equal throughput),
//!   plus the [`ServerSim::serve_online`] entry point replaying live
//!   arrival traces through the `medvt-admission` sharded
//!   admission-control subsystem.
//!
//! # Examples
//!
//! Transcode a phantom clip with the full content-aware pipeline:
//!
//! ```
//! use medvt_core::{ContentAwareController, PipelineConfig};
//! use medvt_analyze::AnalyzerConfig;
//! use medvt_encoder::{EncoderConfig, VideoEncoder};
//! use medvt_frame::synth::{BodyPart, PhantomVideo};
//! use medvt_frame::Resolution;
//! use medvt_sched::WorkloadLut;
//!
//! let clip = PhantomVideo::builder(BodyPart::Brain)
//!     .resolution(Resolution::new(192, 144))
//!     .seed(5)
//!     .build()
//!     .capture(9);
//! let config = PipelineConfig {
//!     analyzer: AnalyzerConfig {
//!         min_tile_width: 32,
//!         min_tile_height: 32,
//!         ..Default::default()
//!     },
//!     ..Default::default()
//! };
//! let mut controller = ContentAwareController::new(config, WorkloadLut::new());
//! let stats = VideoEncoder::new(EncoderConfig::default()).encode_clip(&clip, &mut controller);
//! assert!(stats.mean_psnr() > 30.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod baseline19;
mod live;
mod pipeline;
mod profile;
pub mod qp_control;
mod server;

pub use baseline19::{Baseline19Controller, BaselineConfig};
pub use live::LiveWorkload;
pub use pipeline::{
    ContentAwareController, FrameReport, MePolicy, PipelineConfig, TileReport, TranscodeController,
    UniformMeController,
};
pub use profile::{profile_video, profile_video_with, VideoProfile};
pub use qp_control::{default_qp, QpControlConfig, QpController, TileObservation};
pub use server::{Approach, ServerConfig, ServerReport, ServerSim, Stats3};

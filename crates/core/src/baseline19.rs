//! End-to-end baseline pipeline — Khan et al. \[19\] (IEEE TVLSI 2016),
//! the comparison system of the paper's evaluation.
//!
//! Differences from the proposed pipeline, per the paper's §IV-B
//! discussion of \[19\]:
//!
//! * tiles are sized to fill one core's capacity (workload-balanced),
//!   **one tile per core**, from a limited set of structures;
//! * no per-tile content adaptation: one uniform QP for the frame and
//!   the encoder's default hexagon search everywhere;
//! * re-tiling only when all cores sit at the minimum or maximum
//!   frequency, so the tiling reacts slowly to content changes.

use crate::pipeline::{FrameReport, TileReport, TranscodeController};
use crate::qp_control::QpControlConfig;
use medvt_analyze::{AnalyzerConfig, CapacityBalancedTiler, Tiling};
use medvt_encoder::{
    CostModel, EncodeController, FramePlan, FramePlanContext, FrameStats, Qp, SearchSpec,
    TileConfig,
};
use medvt_frame::FrameKind;
use medvt_motion::{HexOrientation, MotionVector, SearchWindow};
use medvt_sched::{Adjustment, LutKey, WorkloadLut};

/// Configuration of the baseline pipeline.
#[derive(Debug, Clone, Copy)]
pub struct BaselineConfig {
    /// Cores (= tiles) each user occupies. \[19\] derives it from the
    /// measured workload; the pipeline re-estimates it at re-tiling
    /// points within `1..=max_cores_per_user`.
    pub initial_cores_per_user: usize,
    /// Upper bound on tiles per user.
    pub max_cores_per_user: usize,
    /// Uniform starting QP.
    pub qp: Qp,
    /// QP band controller settings (frame-global here).
    pub qp_band: QpControlConfig,
    /// Cycle cost model (shared with the proposed pipeline for fair
    /// comparison).
    pub cost: CostModel,
    /// Search window for the default hexagon search.
    pub window: SearchWindow,
    /// f_max in Hz.
    pub fmax_hz: f64,
    /// Target frames per second (drives the core-count estimate).
    pub fps: f64,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        Self {
            initial_cores_per_user: 5,
            max_cores_per_user: 8,
            qp: Qp::new(32).expect("32 is valid"),
            qp_band: QpControlConfig::default(),
            cost: CostModel::default(),
            window: SearchWindow::W64,
            fmax_hz: 3.6e9,
            fps: 24.0,
        }
    }
}

/// The \[19\] baseline as an [`EncodeController`].
#[derive(Debug)]
pub struct Baseline19Controller {
    cfg: BaselineConfig,
    tiling: Option<Tiling>,
    qp: Qp,
    prev_frame_psnr: Option<f64>,
    /// Set by the session when all active cores sit at a rail
    /// frequency — \[19\]'s only re-tiling trigger.
    rails_pinned: bool,
    /// Rolling per-frame total fmax-seconds, for core-count estimation.
    last_frame_secs: Option<f64>,
    lut: WorkloadLut,
    pending_kind: FrameKind,
    reports: Vec<FrameReport>,
    analyzer: AnalyzerConfig,
}

impl Baseline19Controller {
    /// Creates the baseline controller.
    pub fn new(cfg: BaselineConfig) -> Self {
        Self {
            cfg,
            tiling: None,
            qp: cfg.qp,
            prev_frame_psnr: None,
            rails_pinned: false,
            last_frame_secs: None,
            lut: WorkloadLut::new(),
            pending_kind: FrameKind::Intra,
            reports: Vec::new(),
            analyzer: AnalyzerConfig::default(),
        }
    }

    /// Session hook: report whether all active cores currently sit at
    /// the minimum or maximum frequency.
    pub fn set_rails_pinned(&mut self, pinned: bool) {
        self.rails_pinned = pinned;
    }

    /// The tile count currently in use.
    pub fn tile_count(&self) -> usize {
        self.tiling.as_ref().map_or(0, Tiling::len)
    }

    /// Estimates how many capacity-filling tiles the content needs.
    fn estimate_cores(&self) -> usize {
        match self.last_frame_secs {
            None => self.cfg.initial_cores_per_user,
            Some(secs) => {
                ((secs * self.cfg.fps).ceil() as usize).clamp(1, self.cfg.max_cores_per_user)
            }
        }
    }
}

impl EncodeController for Baseline19Controller {
    fn plan(&mut self, ctx: &FramePlanContext<'_>) -> FramePlan {
        let needs_tiling = self.tiling.is_none();
        // [19]: re-tile only at rail frequencies, and only at GOP
        // boundaries (tiles cannot change mid-GOP in HEVC).
        if needs_tiling || (ctx.gop_first_coded && self.rails_pinned) {
            let cores = self.estimate_cores();
            let tiler = CapacityBalancedTiler::new(cores);
            self.tiling = Some(tiler.tile(ctx.frame.y()));
        }
        self.pending_kind = ctx.kind;
        let tiling = self.tiling.as_ref().expect("tiling set above");
        let config = TileConfig {
            qp: self.qp,
            search: SearchSpec::Hexagon(HexOrientation::Horizontal),
            window: self.cfg.window,
        };
        FramePlan {
            tiles: tiling.tiles().to_vec(),
            configs: vec![config; tiling.len()],
        }
    }

    fn frame_done(&mut self, poc: usize, stats: &FrameStats, _dominant_mvs: &[MotionVector]) {
        let mut tiles = Vec::with_capacity(stats.tiles.len());
        let mut total_secs = 0.0;
        for tile_stats in &stats.tiles {
            let cycles = self.cfg.cost.tile_cycles(tile_stats);
            let fmax_secs = cycles as f64 / self.cfg.fmax_hz;
            total_secs += fmax_secs;
            tiles.push(TileReport {
                rect: tile_stats.rect,
                cycles,
                fmax_secs,
                bits: tile_stats.bits,
                psnr_db: tile_stats.psnr().min(99.0),
            });
            // The baseline also profiles (coarsely: no content classes).
            let key = LutKey::new(
                &tile_stats.rect,
                medvt_analyze::TextureClass::Medium,
                medvt_motion::MotionLevel::High,
                self.qp,
                "hexagon-h",
                self.pending_kind,
            );
            self.lut.observe(key, cycles);
        }
        self.last_frame_secs = Some(total_secs);
        // Frame-global QP band control toward the PSNR constraint.
        let psnr = stats.psnr().min(99.0);
        let band = self.cfg.qp_band;
        if psnr > band.psnr_constraint_db + band.psnr_margin_db {
            self.qp = self.qp.offset(band.delta_qp);
        } else if psnr < band.psnr_constraint_db {
            self.qp = self.qp.offset(-band.delta_qp);
        }
        self.qp = if self.qp < band.qp_floor {
            band.qp_floor
        } else if self.qp > band.qp_ceiling {
            band.qp_ceiling
        } else {
            self.qp
        };
        self.prev_frame_psnr = Some(psnr);
        let _ = &self.analyzer;
        self.reports.push(FrameReport {
            poc,
            kind: self.pending_kind.letter(),
            tiles,
        });
    }
}

impl TranscodeController for Baseline19Controller {
    fn drain_reports(&mut self) -> Vec<FrameReport> {
        std::mem::take(&mut self.reports)
    }

    fn apply_adjustment(&mut self, _adjustment: &Adjustment) {
        // [19] has no per-tile deadline feedback: frequency selection
        // absorbs overruns, and the tiling only changes at rails.
    }

    fn demand_secs(&self) -> Vec<f64> {
        match &self.tiling {
            None => vec![
                1.0 / (self.cfg.fps * self.cfg.initial_cores_per_user as f64);
                self.cfg.initial_cores_per_user
            ],
            Some(tiling) => {
                let per_tile = self
                    .last_frame_secs
                    .map(|s| s / tiling.len() as f64)
                    .unwrap_or(1.0 / (self.cfg.fps * tiling.len() as f64));
                vec![per_tile; tiling.len()]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medvt_encoder::{EncoderConfig, VideoEncoder};
    use medvt_frame::synth::{BodyPart, MotionPattern, PhantomVideo};
    use medvt_frame::Resolution;

    fn clip(frames: usize) -> medvt_frame::VideoClip {
        PhantomVideo::builder(BodyPart::LungChest)
            .resolution(Resolution::new(192, 144))
            .motion(MotionPattern::Pan { dx: 1.0, dy: 0.0 })
            .seed(21)
            .build()
            .capture(frames)
    }

    #[test]
    fn baseline_encodes_with_one_tile_per_core() {
        let clip = clip(9);
        let mut ctl = Baseline19Controller::new(BaselineConfig::default());
        let stats = VideoEncoder::new(EncoderConfig::default()).encode_clip(&clip, &mut ctl);
        assert_eq!(stats.frames.len(), 9);
        assert_eq!(ctl.tile_count(), 5, "initial cores_per_user tiles");
        assert!(stats.frames.iter().all(|f| f.tiles.len() == 5));
        let mut reports = ctl.drain_reports();
        reports.sort_by_key(|r| r.poc);
        assert_eq!(reports.len(), 9);
    }

    #[test]
    fn tiling_frozen_until_rails_pinned() {
        let clip = clip(17);
        let mut ctl = Baseline19Controller::new(BaselineConfig {
            initial_cores_per_user: 4,
            ..Default::default()
        });
        // Never pinned: tiling must not change across GOPs.
        VideoEncoder::new(EncoderConfig::default()).encode_clip(&clip, &mut ctl);
        assert_eq!(ctl.tile_count(), 4);
    }

    #[test]
    fn rails_pinned_allows_retiling_to_measured_demand() {
        let clip = clip(17);
        let mut ctl = Baseline19Controller::new(BaselineConfig {
            initial_cores_per_user: 8,
            ..Default::default()
        });
        ctl.set_rails_pinned(true);
        VideoEncoder::new(EncoderConfig::default()).encode_clip(&clip, &mut ctl);
        // Phantom content is far lighter than 8 capacity tiles: the
        // re-tile at the second GOP shrinks the tile count.
        assert!(
            ctl.tile_count() < 8,
            "tile count stayed {}",
            ctl.tile_count()
        );
    }

    #[test]
    fn qp_band_reacts_to_quality() {
        let clip = clip(9);
        let mut ctl = Baseline19Controller::new(BaselineConfig {
            qp: Qp::new(22).expect("valid"),
            ..Default::default()
        });
        VideoEncoder::new(EncoderConfig::default()).encode_clip(&clip, &mut ctl);
        // QP 22 on phantom content overshoots the constraint: the band
        // controller must have raised it.
        assert!(ctl.qp.value() > 22, "qp={}", ctl.qp);
    }

    #[test]
    fn demand_is_uniform_across_tiles() {
        let clip = clip(9);
        let mut ctl = Baseline19Controller::new(BaselineConfig::default());
        VideoEncoder::new(EncoderConfig::default()).encode_clip(&clip, &mut ctl);
        let d = ctl.demand_secs();
        assert_eq!(d.len(), 5);
        assert!(d.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-15));
    }
}

//! Live transcoding workloads: real encoder work flowing through the
//! online serving stack.
//!
//! Everything upstream of this module moves *costs*: profiles replay
//! per-tile f_max-second estimates and the backends price them
//! analytically. [`LiveWorkload`] closes the loop — it pairs a
//! [`VideoProfile`] (the analytical demand the admission controller
//! and Algorithm 2 reason about) with the rendered frames of the same
//! clip, and hands the serving runtime one closure per placed tile
//! thread that **re-encodes that tile for real** on whichever worker
//! the placement chose.
//!
//! Invariants this adapter is built around:
//!
//! * **Decisions stay analytical.** `work_for` only adds physical
//!   execution; admission, eviction, placement and every reported
//!   statistic still read the cost model, so a live run on
//!   `ThreadPoolBackend` shards replays the *identical*
//!   admission/eviction stream as a cost-only run on `SimBackend`
//!   shards (verified by `tests/live_transcode.rs`).
//! * **Determinism.** Tiles encode open-loop — inter frames predict
//!   from the previous *original* frame, not the reconstruction — so
//!   every (frame, tile) encode is independent of scheduling order and
//!   byte-identical to calling [`medvt_encoder::encode_tile`] directly
//!   with the same arguments, no matter which worker runs it or what
//!   `EncScratch` state that worker carries from earlier tiles.
//! * **Scratch reuse.** The closures run [`medvt_encoder::encode_tile`],
//!   which draws its per-block buffers from the worker thread's
//!   persistent thread-local [`medvt_encoder::EncScratch`]; steady-state
//!   live serving allocates only per-tile outputs.

use crate::profile::VideoProfile;
use medvt_admission::Workload;
use medvt_encoder::{encode_tile, EncoderConfig, TileConfig, TileOutcome};
use medvt_frame::{Frame, FrameKind, VideoClip};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Captured bitstreams keyed by (frame index, tile thread).
type CaptureSink = Mutex<BTreeMap<(usize, usize), Vec<u8>>>;

/// A [`VideoProfile`] paired with its rendered frames: an admissible
/// online workload whose tile threads carry real encoding work.
///
/// The profile supplies the analytical demand (what the LUT would
/// report to Algorithm 2); the frames supply the pixels. Frame `i` of
/// the clip must be the frame `profile.frames[i]` was measured on, so
/// the modeled cost and the physical work describe the same tile.
#[derive(Debug)]
pub struct LiveWorkload {
    profile: VideoProfile,
    frames: Vec<Frame>,
    tile_cfg: TileConfig,
    enc_cfg: EncoderConfig,
    /// When capturing, every encoded tile's bitstream keyed by
    /// (frame index, thread) — wrapping slots that revisit a frame
    /// land on the same entry, which is harmless because identical
    /// (frame, tile) pairs produce identical bytes. Used for
    /// bit-identity checks against direct encoding.
    sink: Option<CaptureSink>,
}

impl LiveWorkload {
    /// Pairs `profile` with the rendered frames of `clip`.
    ///
    /// # Panics
    ///
    /// Panics when the clip is empty or its frame count differs from
    /// the profile's (the demand would describe different pictures
    /// than the work encodes).
    pub fn new(
        profile: VideoProfile,
        clip: &VideoClip,
        tile_cfg: TileConfig,
        enc_cfg: EncoderConfig,
    ) -> Self {
        assert!(!clip.is_empty(), "live workload needs at least one frame");
        assert_eq!(
            profile.frames.len(),
            clip.len(),
            "profile and clip must describe the same frames"
        );
        Self {
            profile,
            frames: clip.frames().to_vec(),
            tile_cfg,
            enc_cfg,
            sink: None,
        }
    }

    /// Enables bitstream capture: every tile encoded through
    /// [`Workload::work_for`] records its bytes for later comparison
    /// via [`LiveWorkload::captured`].
    pub fn with_capture(mut self) -> Self {
        self.sink = Some(Mutex::new(BTreeMap::new()));
        self
    }

    /// The analytical profile this workload replays.
    pub fn profile(&self) -> &VideoProfile {
        &self.profile
    }

    /// Number of distinct frames (slots wrap around this).
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Frame index shown at `slot` (endless streaming wraps).
    fn frame_index(&self, slot: usize) -> usize {
        slot % self.frames.len()
    }

    /// Encodes tile `thread` of the frame shown at `slot` on the
    /// calling thread — exactly the work a pool worker performs for
    /// the same (slot, thread), and therefore byte-identical to it.
    /// `None` when the frame has no such tile.
    pub fn encode_direct(&self, slot: usize, thread: usize) -> Option<TileOutcome> {
        let idx = self.frame_index(slot);
        let report = &self.profile.frames[idx];
        let tile = report.tiles.get(thread)?;
        // Open-loop transcode: the first frame of the clip (and any
        // frame the profile marks intra) codes without references;
        // other frames predict from the previous original frame.
        let (kind, refs): (FrameKind, Vec<&Frame>) = if idx == 0 || report.kind == 'I' {
            (FrameKind::Intra, Vec::new())
        } else {
            (FrameKind::Predicted, vec![&self.frames[idx - 1]])
        };
        Some(encode_tile(
            &self.frames[idx],
            &refs,
            kind,
            tile.rect,
            &self.tile_cfg,
            &self.enc_cfg,
        ))
    }

    /// The captured bitstream of (slot, thread), when capture is on
    /// and the tile was encoded through the serving loop.
    pub fn captured(&self, slot: usize, thread: usize) -> Option<Vec<u8>> {
        self.sink
            .as_ref()?
            .lock()
            .expect("capture sink")
            .get(&(self.frame_index(slot), thread))
            .cloned()
    }

    /// Number of tiles captured so far (0 without capture).
    pub fn captured_tiles(&self) -> usize {
        self.sink
            .as_ref()
            .map_or(0, |s| s.lock().expect("capture sink").len())
    }
}

impl Workload for LiveWorkload {
    fn steady_demand(&self) -> Vec<f64> {
        self.profile.steady_demand()
    }

    fn demand_at(&self, slot: usize) -> Vec<f64> {
        self.profile.demand_at(slot)
    }

    fn content_class(&self) -> &str {
        &self.profile.class
    }

    fn work_for(&self, slot: usize, thread: usize) -> Option<Box<dyn FnOnce() + Send + '_>> {
        let idx = self.frame_index(slot);
        self.profile.frames[idx].tiles.get(thread)?;
        Some(Box::new(move || {
            let outcome = self
                .encode_direct(slot, thread)
                .expect("tile existence checked before boxing");
            if let Some(sink) = &self.sink {
                sink.lock()
                    .expect("capture sink")
                    .insert((idx, thread), outcome.bytes);
            }
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{ContentAwareController, PipelineConfig};
    use crate::profile::profile_video;
    use medvt_analyze::AnalyzerConfig;
    use medvt_frame::synth::{BodyPart, MotionPattern, PhantomVideo};
    use medvt_frame::Resolution;
    use medvt_sched::WorkloadLut;

    fn clip() -> VideoClip {
        PhantomVideo::builder(BodyPart::Brain)
            .resolution(Resolution::new(128, 96))
            .motion(MotionPattern::Pan { dx: 1.0, dy: 0.0 })
            .seed(11)
            .build()
            .capture(9)
    }

    fn live() -> LiveWorkload {
        let clip = clip();
        let cfg = PipelineConfig {
            analyzer: AnalyzerConfig {
                min_tile_width: 32,
                min_tile_height: 32,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut ctl = ContentAwareController::new(cfg, WorkloadLut::new());
        let profile = profile_video(
            "live",
            "brain",
            &clip,
            &mut ctl,
            &EncoderConfig::default(),
            false,
        );
        LiveWorkload::new(
            profile,
            &clip,
            TileConfig::default(),
            EncoderConfig::default(),
        )
    }

    #[test]
    fn demand_matches_profile_and_work_exists_per_tile() {
        let w = live();
        for slot in [0usize, 3, 8, 9, 20] {
            let demand = w.demand_at(slot);
            assert_eq!(demand, w.profile().demand_at(slot));
            for thread in 0..demand.len() {
                assert!(
                    w.work_for(slot, thread).is_some(),
                    "every profiled tile carries work (slot {slot} thread {thread})"
                );
            }
            assert!(w.work_for(slot, demand.len()).is_none());
        }
        assert_eq!(w.content_class(), "brain");
    }

    #[test]
    fn captured_bytes_match_direct_encode() {
        let w = live().with_capture();
        for slot in [0usize, 4] {
            for thread in 0..w.demand_at(slot).len() {
                w.work_for(slot, thread).expect("work")();
                let captured = w.captured(slot, thread).expect("captured");
                let direct = w.encode_direct(slot, thread).expect("direct").bytes;
                assert_eq!(captured, direct, "slot {slot} thread {thread}");
            }
        }
        assert!(w.captured_tiles() > 0);
    }

    #[test]
    fn slots_wrap_to_the_same_frame() {
        let w = live().with_capture();
        let n = w.frame_count();
        w.work_for(2, 0).expect("work")();
        let first = w.captured(2, 0).expect("captured");
        w.work_for(2 + n, 0).expect("work")();
        let wrapped = w.captured(2 + n, 0).expect("captured");
        assert_eq!(first, wrapped, "slot {} revisits frame 2", 2 + n);
    }

    #[test]
    #[should_panic(expected = "same frames")]
    fn frame_count_mismatch_rejected() {
        let clip = clip();
        let short =
            VideoClip::from_frames(clip.resolution(), clip.fps(), clip.frames()[..4].to_vec());
        let w = live();
        let profile = w.profile().clone();
        LiveWorkload::new(
            profile,
            &short,
            TileConfig::default(),
            EncoderConfig::default(),
        );
    }
}

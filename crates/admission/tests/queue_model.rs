//! Model test for the bounded-departure request queue.
//!
//! [`RequestQueue::with_departure_bound`] replaces the departure heap
//! with per-slot buckets, promising that (a) sessions departing at or
//! past the bound are never indexed at all, and (b) under the serving
//! loop's contract (monotone drain slots; every push departs after the
//! last drained slot), `drain_departed` returns exactly what a naive
//! linear scan over the live queue would. This proptest drives random
//! push / take / drain interleavings against that linear-scan oracle.

use medvt_admission::{DeadlineClass, RequestQueue, UserRequest};
use proptest::prelude::*;

fn request(user: usize, arrival: usize, departure: Option<usize>) -> UserRequest {
    UserRequest {
        user,
        arrival_slot: arrival,
        profile: user % 3,
        class: DeadlineClass::Standard,
        departure_slot: departure,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The bounded queue agrees with a linear-scan oracle op for op:
    /// same membership, same arrival order, same drain results, same
    /// take results — and it never indexes an out-of-horizon session.
    #[test]
    fn bounded_queue_matches_linear_scan_oracle(
        bound in 4usize..48,
        ops in proptest::collection::vec((0u8..3, 0usize..96), 1..160),
    ) {
        let mut queue = RequestQueue::with_departure_bound(bound);
        // The oracle: live requests with their seq, arrival order.
        let mut oracle: Vec<(u64, UserRequest)> = Vec::new();
        let mut next_seq = 0u64;
        let mut slot = 0usize; // last drained slot (serving-loop clock)
        let mut in_horizon_pushes = 0usize;

        for (op, a) in ops {
            match op {
                // Push: departs strictly after the current slot (the
                // serving loop ingests arrivals before draining the
                // boundary), possibly past the bound, possibly never.
                0 => {
                    let departure = match a % 4 {
                        0 => None,
                        _ => Some(slot + 1 + a % (bound + 16)),
                    };
                    if departure.is_some_and(|d| d < bound) {
                        in_horizon_pushes += 1;
                    }
                    let user = next_seq as usize;
                    let seq = queue.push(request(user, slot, departure));
                    prop_assert_eq!(seq, next_seq, "sequence numbers are dense");
                    oracle.push((seq, request(user, slot, departure)));
                    next_seq += 1;
                }
                // Take: a previously issued seq — maybe live, maybe
                // already gone. Result must match the oracle exactly.
                1 => {
                    if next_seq == 0 {
                        continue;
                    }
                    let seq = a as u64 % next_seq;
                    let expected = oracle
                        .iter()
                        .position(|(s, _)| *s == seq)
                        .map(|i| oracle.remove(i).1);
                    prop_assert_eq!(queue.take(seq), expected);
                }
                // Drain: advance the clock and compare against the
                // linear scan "every live request departing by now".
                _ => {
                    slot = (slot + a % 8).min(bound - 1);
                    let expected: Vec<UserRequest> = oracle
                        .iter()
                        .filter(|(_, r)| r.departure_slot.is_some_and(|d| d <= slot))
                        .map(|(_, r)| r.clone())
                        .collect();
                    oracle.retain(|(_, r)| r.departure_slot.is_none_or(|d| d > slot));
                    prop_assert_eq!(queue.drain_departed(slot), expected);
                }
            }
            // Membership and order agree after every operation.
            prop_assert_eq!(queue.len(), oracle.len());
            prop_assert!(queue
                .iter()
                .eq(oracle.iter().map(|(_, r)| r)), "arrival order preserved");
            for (seq, _) in &oracle {
                prop_assert!(queue.contains(*seq));
            }
            // Out-of-horizon sessions are never indexed: the index can
            // hold at most one (possibly stale) entry per in-horizon
            // push, and exactly zero when there were none.
            prop_assert!(queue.indexed_departures() <= in_horizon_pushes);
            if in_horizon_pushes == 0 {
                prop_assert_eq!(queue.indexed_departures(), 0);
            }
        }
    }
}

//! The pre-refactor admission controller, kept verbatim as the
//! baseline for decision-stream parity and control-plane speedup
//! measurements.
//!
//! [`serve_online_reference`] is the linear controller `serve_online`
//! shipped with before incremental re-placement landed: every GOP
//! boundary it scans all active users for departures and evictions,
//! scans the whole queue for admissions with the stateless
//! [`Sharder::pick`](crate::Sharder::pick), rebuilds each shard's full
//! membership, and lets the drivers re-place every thread from
//! scratch. Cost per boundary is O(active + queue + threads·cores).
//!
//! It carries the same [`ControllerTiming`] instrumentation as the
//! optimized path — identical decision/boundary counting, wall time
//! split the same way — so `decisions_per_sec` ratios between the two
//! are like for like. Do not "improve" this module: its value is
//! staying byte-for-byte faithful to the old decision procedure.

use crate::request::{AdmitDecision, RequestQueue, UserRequest};
use crate::serve::{
    finish_report, ActiveUser, FinishState, OnlineConfig, OnlineReport, Setup, TraceSource,
    Workload,
};
use crate::serve::{AdmissionEvent, EventKind};
use crate::shard::Sharder;
use medvt_runtime::{ControllerTiming, ExecutionBackend, LoopDriver};
use std::collections::BTreeMap;
use std::time::Instant;

/// Serves `trace` with the frozen linear controller. Decision streams
/// and all modeled accounting are bit-identical to
/// [`serve_online`](crate::serve_online) on the same inputs; only the
/// wall-clock `controller` timings (and the `replans` count — the
/// reference re-places at every boundary, the optimized path only when
/// something changed) differ.
pub fn serve_online_reference<W: Workload, B: ExecutionBackend>(
    cfg: &OnlineConfig,
    workloads: &[W],
    trace: &[UserRequest],
    shards: Vec<B>,
) -> OnlineReport {
    let setup = Setup::new(cfg, workloads, trace, &shards);
    let source = TraceSource {
        workloads,
        profile_of: setup.profile_of.clone(),
    };
    let mut drivers: Vec<LoopDriver<B>> = shards
        .into_iter()
        .map(|b| LoopDriver::new(b, setup.loop_cfg, Vec::new(), Vec::new()))
        .collect();
    let n_shards = drivers.len();

    // Same queue configuration as `serve_online` — the shared
    // ingestion cost must stay identical between the two controllers.
    let mut queue = RequestQueue::with_departure_bound(cfg.horizon_slots.max(1));
    let mut sharder = Sharder::new(cfg.shard_policy);
    let mut active: BTreeMap<usize, ActiveUser> = BTreeMap::new();
    let mut shard_loads = vec![0.0f64; n_shards];
    let mut shard_admitted = vec![0usize; n_shards];
    let mut shard_peak = vec![0usize; n_shards];
    let mut events: Vec<AdmissionEvent> = Vec::new();
    let (mut arrivals, mut admissions, mut evictions) = (0usize, 0usize, 0usize);
    let (mut departures, mut abandoned, mut rejected) = (0usize, 0usize, 0usize);
    let mut wait_slots_sum = 0usize;
    let mut concurrent_slot_sum = 0usize;
    let mut peak_concurrent = 0usize;
    let mut timing = ControllerTiming::default();

    let mut next_arrival = 0usize;
    let mut slot = 0usize;
    while slot < cfg.horizon_slots {
        let boundary_clock = Instant::now();
        timing.boundaries += 1;
        // 1. Arrivals up to this boundary.
        while next_arrival < trace.len() && trace[next_arrival].arrival_slot <= slot {
            queue.push(trace[next_arrival].clone());
            arrivals += 1;
            next_arrival += 1;
        }
        // 2. Voluntary departures — active users first, then queued
        // requests whose user gave up waiting.
        let departing: Vec<usize> = active
            .iter()
            .filter(|(_, a)| a.departure_slot.is_some_and(|d| d <= slot))
            .map(|(&u, _)| u)
            .collect();
        timing.decisions += departing.len() as u64;
        for user in departing {
            let a = active.remove(&user).expect("departing user is active");
            shard_loads[a.shard] -= a.demand_cores;
            departures += 1;
            events.push(AdmissionEvent {
                slot,
                user,
                shard: Some(a.shard),
                kind: EventKind::Depart,
            });
        }
        for request in queue.drain_departed(slot) {
            abandoned += 1;
            timing.decisions += 1;
            events.push(AdmissionEvent {
                slot,
                user: request.user,
                shard: None,
                kind: EventKind::Abandon,
            });
        }
        // 3. Evictions under sustained deadline misses.
        let evicting: Vec<usize> = active
            .iter()
            .filter(|(&u, a)| {
                drivers[a.shard]
                    .user_stats(u)
                    .is_some_and(|s| s.consecutive_window_misses >= a.miss_tolerance)
            })
            .map(|(&u, _)| u)
            .collect();
        timing.decisions += evicting.len() as u64;
        for user in evicting {
            let a = active.remove(&user).expect("evicted user is active");
            shard_loads[a.shard] -= a.demand_cores;
            evictions += 1;
            events.push(AdmissionEvent {
                slot,
                user,
                shard: Some(a.shard),
                kind: EventKind::Evict,
            });
        }
        // 4. Admissions from the FIFO queue.
        timing.decisions += queue.len() as u64;
        let (admitted_now, rejected_now) = queue.try_admit(|request| {
            let demand = setup.demand_of[setup.profile_of[&request.user]];
            if demand > setup.max_capacity + 1e-9 {
                return AdmitDecision::Reject;
            }
            match sharder.pick(
                &shard_loads,
                &setup.capacities,
                demand,
                workloads[setup.profile_of[&request.user]].content_class(),
            ) {
                Some(shard) => {
                    // Reserve immediately so later queue entries see
                    // the updated load.
                    shard_loads[shard] += demand;
                    AdmitDecision::Admit(shard)
                }
                None => AdmitDecision::Wait,
            }
        });
        for request in rejected_now {
            rejected += 1;
            events.push(AdmissionEvent {
                slot,
                user: request.user,
                shard: None,
                kind: EventKind::Reject,
            });
        }
        for (request, shard) in admitted_now {
            let demand = setup.demand_of[setup.profile_of[&request.user]];
            active.insert(
                request.user,
                ActiveUser {
                    shard,
                    demand_cores: demand,
                    departure_slot: request.departure_slot,
                    miss_tolerance: request.class.miss_tolerance() * cfg.evict_miss_windows.max(1),
                    class: request.class,
                },
            );
            admissions += 1;
            shard_admitted[shard] += 1;
            wait_slots_sum += slot - request.arrival_slot;
            events.push(AdmissionEvent {
                slot,
                user: request.user,
                shard: Some(shard),
                kind: EventKind::Admit,
            });
        }
        // 5. Full membership rebuild → shards, then advance one GOP in
        // lockstep.
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); n_shards];
        for (&u, a) in &active {
            members[a.shard].push(u);
        }
        for (s, users) in members.into_iter().enumerate() {
            shard_peak[s] = shard_peak[s].max(users.len());
            drivers[s].set_membership(users);
        }
        timing.queue_ns += boundary_clock.elapsed().as_nanos() as u64;
        let n_slots = cfg.gop_slots.min(cfg.horizon_slots - slot);
        for d in &mut drivers {
            d.advance(&source, n_slots);
        }
        concurrent_slot_sum += active.len() * n_slots;
        peak_concurrent = peak_concurrent.max(active.len());
        slot += n_slots;
    }

    // Requests arriving after the last GOP boundary still arrived
    // within the horizon: ingest them so `arrivals`/`queued_at_end`
    // reconcile with the trace.
    while next_arrival < trace.len() && trace[next_arrival].arrival_slot < cfg.horizon_slots {
        queue.push(trace[next_arrival].clone());
        arrivals += 1;
        next_arrival += 1;
    }

    finish_report(
        cfg,
        &setup,
        drivers.into_iter().map(LoopDriver::into_report).collect(),
        FinishState {
            queued_at_end: queue.len(),
            active_at_end: active.len(),
            arrivals,
            admissions,
            evictions,
            departures,
            abandoned,
            rejected,
            wait_slots_sum,
            concurrent_slot_sum,
            peak_concurrent,
            shard_admitted,
            shard_peak,
            events,
            timing,
        },
    )
}

//! # medvt-admission
//!
//! Live admission control for the `medvt` reproduction of *"Online
//! Efficient Bio-Medical Video Transcoding on MPSoCs Through
//! Content-Aware Workload Allocation"* (Iranfar et al., DATE 2018):
//! sharded online serving with GOP-boundary admit/evict.
//!
//! The paper's serving scenario is an **online** one — users request
//! transcodes of stored bio-medical videos while the MPSoC is already
//! serving others, and "the received user requests are queued" until
//! Algorithm 2 admits them (§III-D2). The batch evaluation path
//! (`core::ServerSim::serve_max`) freezes that queue at its
//! steady-state; this crate models the live half: arrivals,
//! departures, overload and eviction, at the same GOP-boundary cadence
//! the paper re-runs its thread allocation.
//!
//! # Mapping to the paper's online scenario
//!
//! | paper concept | here |
//! |---|---|
//! | queued user requests (§III-D2) | [`RequestQueue`] of timestamped [`UserRequest`]s |
//! | Algorithm 2 line 1 per-user core demand | [`Workload::steady_demand`] × FPS × headroom, the admission unit |
//! | lines 2–3 maximize admitted users under `N_c` | GOP-boundary FIFO admission against per-socket capacity ([`serve_online`] step 4) |
//! | §III-D2 re-allocation at each GOP | shard membership pushed into `runtime::LoopDriver`, which re-runs the speed-aware `sched::place_threads_on` per socket |
//! | "framerate … checked every second" | per-user window accounting (`runtime::UserLoopStats`); sustained misses trigger eviction by [`DeadlineClass`] tolerance |
//! | 4-socket Xeon evaluation server (§IV-A) | one shard per socket (`Platform::socket_view`), placed by a pluggable [`ShardPolicy`] |
//! | always-full queue of §IV-B2 | a special case of [`TraceConfig`] (arrival rate ≫ service rate) |
//!
//! The related cloud-transcoding work (Li et al., on-demand
//! transcoding on heterogeneous cloud workers) motivates the queueing
//! half: Poisson arrivals, heavy-tailed session lengths
//! ([`synthesize_trace`]), deadline classes and admission against a
//! measured capacity model rather than a wish. Its cost half lives in
//! the provisioning layer: [`ProvisionPolicy`] rents a
//! priced platform mix ([`preset_catalogue`]) for a forecast load,
//! [`CostPlan`] lets [`serve_online`] admit against per-window budget
//! headroom, and evicted users re-enter the queue one
//! [`DeadlineClass`] lower instead of being dropped
//! (`degrade_on_evict`).
//!
//! Decisions read only the analytical accounting shared by every
//! execution backend, so one trace replays the **identical**
//! admission/eviction stream on `SimBackend` and `ThreadPoolBackend`
//! shards — verified by `tests/online_admission.rs`.
//!
//! # Example
//!
//! ```
//! use medvt_admission::{serve_online, OnlineConfig, ShardPolicy, TraceConfig, Workload};
//! use medvt_admission::synthesize_trace;
//! use medvt_mpsoc::{Platform, PowerModel};
//! use medvt_runtime::SimBackend;
//!
//! struct Flat;
//! impl Workload for Flat {
//!     fn steady_demand(&self) -> Vec<f64> {
//!         vec![1.0 / 24.0 / 4.0; 2]
//!     }
//!     fn demand_at(&self, _slot: usize) -> Vec<f64> {
//!         self.steady_demand()
//!     }
//!     fn content_class(&self) -> &str {
//!         "brain"
//!     }
//! }
//!
//! let platform = Platform::xeon_e5_2667_quad();
//! let shards: Vec<SimBackend> = (0..platform.sockets)
//!     .map(|s| SimBackend::new(platform.socket_view(s), PowerModel::default()))
//!     .collect();
//! let trace = synthesize_trace(&TraceConfig::default());
//! let report = serve_online(&OnlineConfig::default(), &[Flat], &trace, shards);
//! assert!(report.admissions > 0);
//! assert_eq!(report.shards.len(), 4);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod provision;
mod reference;
mod request;
mod serve;
mod shard;
mod trace;

pub use provision::{
    forecast_demand_cores, preset_catalogue, provision_fleet, replay_cost, CheapestFit, CostReport,
    FastestFit, ProvisionOutcome, ProvisionPolicy, ProvisionPreset, QosAware,
};
pub use reference::serve_online_reference;
pub use request::{AdmitDecision, DeadlineClass, RequestQueue, UserRequest};
pub use serve::{
    serve_online, serve_online_with, AdmissionEvent, CostPlan, EventKind, OnlineConfig,
    OnlineReport, ShardReport, Workload,
};
pub use shard::{ShardPolicy, Sharder};
pub use trace::{synthesize_trace, TraceConfig};

//! User requests and the arrival queue of the online serving scenario.

use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Service level a user signs up for — how many consecutive missed
/// one-second windows the controller tolerates before evicting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum DeadlineClass {
    /// Live diagnostics: a single sustained miss is disqualifying.
    Strict,
    /// Interactive review (the default tier).
    #[default]
    Standard,
    /// Archival / batch transcodes that tolerate sustained degradation.
    BestEffort,
}

impl DeadlineClass {
    /// Consecutive missed windows tolerated before eviction (scaled by
    /// the controller's base threshold).
    pub const fn miss_tolerance(&self) -> usize {
        match self {
            DeadlineClass::Strict => 1,
            DeadlineClass::Standard => 2,
            DeadlineClass::BestEffort => 4,
        }
    }

    /// The next-lower service tier — where graceful degradation
    /// re-queues an evicted user (the Li et al. cost/QoS trade).
    /// `None` from [`DeadlineClass::BestEffort`]: there is nothing
    /// below it, so a best-effort eviction is final.
    pub const fn downgrade(&self) -> Option<DeadlineClass> {
        match self {
            DeadlineClass::Strict => Some(DeadlineClass::Standard),
            DeadlineClass::Standard => Some(DeadlineClass::BestEffort),
            DeadlineClass::BestEffort => None,
        }
    }

    /// Display label.
    pub const fn label(&self) -> &'static str {
        match self {
            DeadlineClass::Strict => "strict",
            DeadlineClass::Standard => "standard",
            DeadlineClass::BestEffort => "best-effort",
        }
    }
}

/// One user's timestamped transcoding request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UserRequest {
    /// Unique user id (doubles as the runtime's user id once admitted).
    pub user: usize,
    /// Slot at which the request enters the queue.
    pub arrival_slot: usize,
    /// Index into the workload set (which video the user transcodes).
    pub profile: usize,
    /// Service tier.
    pub class: DeadlineClass,
    /// Slot at which the user leaves voluntarily (`None`: stays until
    /// the serving horizon ends). A queued user departing before
    /// admission abandons the queue.
    pub departure_slot: Option<usize>,
}

/// What the admission controller decides for one queued request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitDecision {
    /// Admit onto the given shard.
    Admit(usize),
    /// No shard has room now — stay queued for the next GOP boundary.
    Wait,
    /// Never admissible (demand exceeds any shard outright) — drop.
    Reject,
}

/// FIFO queue of arrived-but-not-yet-admitted requests.
///
/// Requests live in a ring of arrival-sequence slots (O(1) push and
/// O(1) keyed removal; a removed slot leaves a hole that iteration
/// skips and front-trimming reclaims) with a side heap indexing
/// departure slots — so [`drain_departed`](Self::drain_departed) pops
/// exactly the departed requests instead of scanning (and cloning)
/// every pending one at every GOP boundary. Sequence numbers returned
/// by [`push`](Self::push) stay valid for the request's whole queue
/// lifetime, so callers can keep side indexes (e.g. per-demand FIFOs)
/// without the queue knowing about them.
#[derive(Debug, Clone, Default)]
pub struct RequestQueue {
    /// Sequence number of `slots[0]`.
    base: u64,
    /// Arrival-ordered; `None` marks a request that already left.
    slots: VecDeque<Option<UserRequest>>,
    /// Live (non-hole) entries.
    live: usize,
    /// Min-heap of (departure slot, sequence). Entries go stale when a
    /// request leaves by admission/rejection first; they are skipped
    /// lazily on pop. Unused in bounded mode.
    departures: BinaryHeap<Reverse<(usize, u64)>>,
    /// Bounded mode only: `dep_buckets[slot]` holds the sequence
    /// numbers departing at `slot` — O(1) pushes and O(departed)
    /// drains, no heap sifting on the ingestion path.
    dep_buckets: Vec<Vec<u64>>,
    /// First bucket not yet drained (bounded mode).
    next_drain: usize,
    /// Departures at or past this slot are not indexed (see
    /// [`with_departure_bound`](Self::with_departure_bound)); `None`
    /// indexes everything via the heap.
    departure_bound: Option<usize>,
    next_seq: u64,
}

impl RequestQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty queue that will never see
    /// [`drain_departed`](Self::drain_departed) called with a slot at
    /// or past `bound` (typically the serving horizon). Departures at
    /// `bound` or later then skip the departure index entirely — on
    /// heavy-tailed session traces most queued sessions outlive the
    /// horizon, so this drops most of the per-arrival indexing cost.
    ///
    /// [`drain_departed`](Self::drain_departed) panics if the promise
    /// is broken.
    pub fn with_departure_bound(bound: usize) -> Self {
        Self {
            departure_bound: Some(bound),
            dep_buckets: vec![Vec::new(); bound],
            ..Self::default()
        }
    }

    /// Enqueues an arrived request at the tail; returns its stable
    /// sequence number (arrival order, starting at 0).
    pub fn push(&mut self, request: UserRequest) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        if let Some(d) = request.departure_slot {
            match self.departure_bound {
                Some(bound) if d < bound => self.dep_buckets[d].push(seq),
                Some(_) => {} // outlives every drain — unindexed
                None => self.departures.push(Reverse((d, seq))),
            }
        }
        self.slots.push_back(Some(request));
        self.live += 1;
        seq
    }

    /// Queued requests, arrival order.
    pub fn iter(&self) -> impl Iterator<Item = &UserRequest> {
        self.slots.iter().flatten()
    }

    /// Number of waiting requests.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` when nothing waits.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Departure-index entries currently held (heap entries in
    /// unbounded mode, undrained bucket entries in bounded mode),
    /// stale ones included. Purely observational — the bounded-mode
    /// contract "a departure at or past the bound is never indexed"
    /// is asserted through this.
    pub fn indexed_departures(&self) -> usize {
        self.departures.len() + self.dep_buckets.iter().map(Vec::len).sum::<usize>()
    }

    /// `true` when the request pushed as `seq` still waits.
    pub fn contains(&self, seq: u64) -> bool {
        seq >= self.base
            && ((seq - self.base) as usize) < self.slots.len()
            && self.slots[(seq - self.base) as usize].is_some()
    }

    /// Removes and returns the request pushed as `seq`, or `None` when
    /// it already left. O(1) plus amortized front-trimming.
    pub fn take(&mut self, seq: u64) -> Option<UserRequest> {
        if seq < self.base {
            return None;
        }
        let idx = (seq - self.base) as usize;
        let taken = self.slots.get_mut(idx)?.take();
        if taken.is_some() {
            self.live -= 1;
            self.trim_front();
        }
        taken
    }

    fn trim_front(&mut self) {
        while matches!(self.slots.front(), Some(None)) {
            self.slots.pop_front();
            self.base += 1;
        }
    }

    /// Removes and returns requests whose departure passed while they
    /// were still queued (the user gave up waiting), in arrival order.
    /// Cost is O(departed · log queue), independent of how many
    /// requests keep waiting.
    pub fn drain_departed(&mut self, slot: usize) -> Vec<UserRequest> {
        let mut seqs: Vec<u64> = Vec::new();
        if let Some(bound) = self.departure_bound {
            assert!(
                slot < bound,
                "drain_departed({slot}) breaks the departure bound {bound}"
            );
            while self.next_drain <= slot {
                let bucket = std::mem::take(&mut self.dep_buckets[self.next_drain]);
                seqs.extend(bucket.into_iter().filter(|&seq| self.contains(seq)));
                self.next_drain += 1;
            }
        } else {
            while let Some(&Reverse((d, seq))) = self.departures.peek() {
                if d > slot {
                    break;
                }
                self.departures.pop();
                if self.contains(seq) {
                    seqs.push(seq);
                }
            }
        }
        seqs.sort_unstable();
        seqs.into_iter()
            .map(|seq| self.take(seq).expect("membership checked"))
            .collect()
    }

    /// Scans the queue in FIFO order, asking `decide` about each
    /// request. `Admit` removes it (returned with its shard), `Wait`
    /// keeps it in place for the next boundary, `Reject` drops it
    /// (returned in the second list). The relative order of waiting
    /// requests is preserved — waiters are simply left untouched.
    pub fn try_admit<F>(&mut self, mut decide: F) -> (Vec<(UserRequest, usize)>, Vec<UserRequest>)
    where
        F: FnMut(&UserRequest) -> AdmitDecision,
    {
        self.try_admit_while(|request| Some(decide(request)))
    }

    /// [`try_admit`](Self::try_admit) with an early stop: `decide`
    /// returning `None` ends the scan, leaving that request and every
    /// later one untouched. The caller is responsible for `None` being
    /// sound — i.e. every unscanned request would have decided `Wait`.
    pub fn try_admit_while<F>(
        &mut self,
        mut decide: F,
    ) -> (Vec<(UserRequest, usize)>, Vec<UserRequest>)
    where
        F: FnMut(&UserRequest) -> Option<AdmitDecision>,
    {
        let mut leaving: Vec<(u64, AdmitDecision)> = Vec::new();
        'scan: for (idx, slot) in self.slots.iter().enumerate() {
            let Some(request) = slot else { continue };
            match decide(request) {
                None => break 'scan,
                Some(AdmitDecision::Wait) => {}
                Some(verdict) => leaving.push((self.base + idx as u64, verdict)),
            }
        }
        let mut admitted = Vec::new();
        let mut rejected = Vec::new();
        for (seq, verdict) in leaving {
            let request = self.take(seq).expect("seq seen in scan");
            match verdict {
                AdmitDecision::Admit(shard) => admitted.push((request, shard)),
                AdmitDecision::Reject => rejected.push(request),
                AdmitDecision::Wait => unreachable!("waiters stay in the queue"),
            }
        }
        (admitted, rejected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(user: usize, arrival: usize, departure: Option<usize>) -> UserRequest {
        UserRequest {
            user,
            arrival_slot: arrival,
            profile: 0,
            class: DeadlineClass::Standard,
            departure_slot: departure,
        }
    }

    #[test]
    fn fifo_order_preserved_through_waits() {
        let mut q = RequestQueue::new();
        for u in 0..4 {
            q.push(req(u, u, None));
        }
        // Admit evens, keep odds waiting.
        let (admitted, rejected) = q.try_admit(|r| {
            if r.user % 2 == 0 {
                AdmitDecision::Admit(r.user / 2)
            } else {
                AdmitDecision::Wait
            }
        });
        assert_eq!(rejected.len(), 0);
        assert_eq!(
            admitted
                .iter()
                .map(|(r, s)| (r.user, *s))
                .collect::<Vec<_>>(),
            vec![(0, 0), (2, 1)]
        );
        assert_eq!(q.iter().map(|r| r.user).collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn departed_requests_abandon_the_queue() {
        let mut q = RequestQueue::new();
        q.push(req(0, 0, Some(10)));
        q.push(req(1, 0, Some(40)));
        q.push(req(2, 0, None));
        let gone = q.drain_departed(16);
        assert_eq!(gone.len(), 1);
        assert_eq!(gone[0].user, 0);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn drain_skips_requests_already_admitted() {
        let mut q = RequestQueue::new();
        q.push(req(0, 0, Some(5)));
        q.push(req(1, 0, Some(5)));
        // Admit user 0 before its departure passes: its heap entry
        // goes stale and must be skipped, not double-drained.
        let (admitted, _) = q.try_admit(|r| {
            if r.user == 0 {
                AdmitDecision::Admit(0)
            } else {
                AdmitDecision::Wait
            }
        });
        assert_eq!(admitted.len(), 1);
        let gone = q.drain_departed(5);
        assert_eq!(gone.iter().map(|r| r.user).collect::<Vec<_>>(), vec![1]);
        assert!(q.is_empty());
        // Repeated drain finds nothing.
        assert!(q.drain_departed(100).is_empty());
    }

    #[test]
    fn drain_returns_arrival_order_not_departure_order() {
        let mut q = RequestQueue::new();
        q.push(req(0, 0, Some(20)));
        q.push(req(1, 1, Some(10)));
        q.push(req(2, 2, Some(15)));
        let gone = q.drain_departed(20);
        assert_eq!(
            gone.iter().map(|r| r.user).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn departure_bound_skips_out_of_horizon_sessions() {
        let mut q = RequestQueue::with_departure_bound(100);
        q.push(req(0, 0, Some(50)));
        q.push(req(1, 0, Some(100))); // outlives every drain — unindexed
        q.push(req(2, 0, Some(400)));
        let gone = q.drain_departed(99);
        assert_eq!(gone.iter().map(|r| r.user).collect::<Vec<_>>(), vec![0]);
        assert_eq!(q.len(), 2);
    }

    #[test]
    #[should_panic(expected = "breaks the departure bound")]
    fn draining_past_the_bound_panics() {
        let mut q = RequestQueue::with_departure_bound(100);
        q.push(req(0, 0, Some(400)));
        q.drain_departed(100);
    }

    #[test]
    fn reject_drops_request() {
        let mut q = RequestQueue::new();
        q.push(req(7, 0, None));
        let (admitted, rejected) = q.try_admit(|_| AdmitDecision::Reject);
        assert!(admitted.is_empty());
        assert_eq!(rejected.len(), 1);
        assert!(q.is_empty());
    }

    #[test]
    fn ring_wraps_cleanly_after_amortized_front_trim() {
        let mut q = RequestQueue::new();
        let seqs: Vec<u64> = (0..8).map(|u| q.push(req(u, u, None))).collect();
        // Take the whole front half: trim_front advances `base` past
        // every popped slot in one amortized sweep.
        for &seq in &seqs[..4] {
            assert!(q.take(seq).is_some());
        }
        assert_eq!(q.len(), 4);
        // Stale sequences below the new base are gone for good.
        for &seq in &seqs[..4] {
            assert!(!q.contains(seq));
            assert!(q.take(seq).is_none());
        }
        // New pushes reuse the ring storage the trim reclaimed (the
        // VecDeque wraps internally); keyed access and FIFO order must
        // survive the wrap.
        let new_seqs: Vec<u64> = (8..16).map(|u| q.push(req(u, u, None))).collect();
        assert_eq!(new_seqs[0], 8, "sequence numbers never restart");
        assert_eq!(q.len(), 12);
        assert_eq!(
            q.iter().map(|r| r.user).collect::<Vec<_>>(),
            (4..16).collect::<Vec<_>>()
        );
        // Keyed removal still lands on the right request on both sides
        // of the wrap point.
        assert_eq!(q.take(seqs[5]).map(|r| r.user), Some(5));
        assert_eq!(q.take(new_seqs[3]).map(|r| r.user), Some(11));
        assert!(!q.contains(new_seqs[3]));
        assert_eq!(q.len(), 10);
    }

    #[test]
    fn iteration_skips_holes_under_interleaved_take_and_abandon() {
        let mut q = RequestQueue::new();
        let seqs: Vec<u64> = (0..6)
            .map(|u| {
                // Odd users depart at slot 10 (abandon candidates).
                let dep = if u % 2 == 1 { Some(10) } else { None };
                q.push(req(u, 0, dep))
            })
            .collect();
        // Punch a mid-queue hole by keyed removal…
        assert_eq!(q.take(seqs[2]).map(|r| r.user), Some(2));
        // …then abandon the odd users around it.
        let gone = q.drain_departed(10);
        assert_eq!(gone.iter().map(|r| r.user).collect::<Vec<_>>(), [1, 3, 5]);
        // Iteration and admission scans both skip every hole and keep
        // arrival order over the survivors.
        assert_eq!(q.iter().map(|r| r.user).collect::<Vec<_>>(), [0, 4]);
        assert_eq!(q.len(), 2);
        let mut scanned = Vec::new();
        let (admitted, rejected) = q.try_admit(|r| {
            scanned.push(r.user);
            AdmitDecision::Admit(0)
        });
        assert_eq!(scanned, [0, 4], "scan must never surface a hole");
        assert_eq!(admitted.len(), 2);
        assert!(rejected.is_empty());
        assert!(q.is_empty());
    }

    #[test]
    fn departure_exactly_at_the_bound_is_never_drained() {
        let horizon = 48;
        let mut q = RequestQueue::with_departure_bound(horizon);
        q.push(req(0, 0, Some(horizon - 1))); // last indexable slot
        q.push(req(1, 0, Some(horizon))); // exactly at the bound
        q.push(req(2, 0, Some(horizon + 7))); // past it

        // Draining at the last legal slot catches user 0 only: a
        // departure exactly at the horizon can never be observed by a
        // legal drain, so it is (correctly) unindexed.
        let gone = q.drain_departed(horizon - 1);
        assert_eq!(gone.iter().map(|r| r.user).collect::<Vec<_>>(), [0]);
        assert_eq!(q.iter().map(|r| r.user).collect::<Vec<_>>(), [1, 2]);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn downgrade_chain_descends_and_terminates() {
        assert_eq!(
            DeadlineClass::Strict.downgrade(),
            Some(DeadlineClass::Standard)
        );
        assert_eq!(
            DeadlineClass::Standard.downgrade(),
            Some(DeadlineClass::BestEffort)
        );
        assert_eq!(DeadlineClass::BestEffort.downgrade(), None);
    }

    #[test]
    fn bounded_queue_reports_indexed_departures() {
        let mut q = RequestQueue::with_departure_bound(100);
        q.push(req(0, 0, Some(50))); // in-horizon: indexed
        q.push(req(1, 0, Some(100))); // at the bound: unindexed
        q.push(req(2, 0, Some(400))); // past it: unindexed
        q.push(req(3, 0, None)); // never departs: unindexed
        assert_eq!(q.indexed_departures(), 1);
        q.drain_departed(60);
        assert_eq!(q.indexed_departures(), 0);
    }

    #[test]
    fn class_tolerances_ordered() {
        assert!(DeadlineClass::Strict.miss_tolerance() < DeadlineClass::Standard.miss_tolerance());
        assert!(
            DeadlineClass::Standard.miss_tolerance() < DeadlineClass::BestEffort.miss_tolerance()
        );
        assert_eq!(DeadlineClass::default(), DeadlineClass::Standard);
    }
}

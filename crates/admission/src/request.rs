//! User requests and the arrival queue of the online serving scenario.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Service level a user signs up for — how many consecutive missed
/// one-second windows the controller tolerates before evicting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum DeadlineClass {
    /// Live diagnostics: a single sustained miss is disqualifying.
    Strict,
    /// Interactive review (the default tier).
    #[default]
    Standard,
    /// Archival / batch transcodes that tolerate sustained degradation.
    BestEffort,
}

impl DeadlineClass {
    /// Consecutive missed windows tolerated before eviction (scaled by
    /// the controller's base threshold).
    pub const fn miss_tolerance(&self) -> usize {
        match self {
            DeadlineClass::Strict => 1,
            DeadlineClass::Standard => 2,
            DeadlineClass::BestEffort => 4,
        }
    }

    /// Display label.
    pub const fn label(&self) -> &'static str {
        match self {
            DeadlineClass::Strict => "strict",
            DeadlineClass::Standard => "standard",
            DeadlineClass::BestEffort => "best-effort",
        }
    }
}

/// One user's timestamped transcoding request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UserRequest {
    /// Unique user id (doubles as the runtime's user id once admitted).
    pub user: usize,
    /// Slot at which the request enters the queue.
    pub arrival_slot: usize,
    /// Index into the workload set (which video the user transcodes).
    pub profile: usize,
    /// Service tier.
    pub class: DeadlineClass,
    /// Slot at which the user leaves voluntarily (`None`: stays until
    /// the serving horizon ends). A queued user departing before
    /// admission abandons the queue.
    pub departure_slot: Option<usize>,
}

/// What the admission controller decides for one queued request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitDecision {
    /// Admit onto the given shard.
    Admit(usize),
    /// No shard has room now — stay queued for the next GOP boundary.
    Wait,
    /// Never admissible (demand exceeds any shard outright) — drop.
    Reject,
}

/// FIFO queue of arrived-but-not-yet-admitted requests.
#[derive(Debug, Clone, Default)]
pub struct RequestQueue {
    pending: VecDeque<UserRequest>,
}

impl RequestQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues an arrived request at the tail.
    pub fn push(&mut self, request: UserRequest) {
        self.pending.push_back(request);
    }

    /// Queued requests, arrival order.
    pub fn iter(&self) -> impl Iterator<Item = &UserRequest> {
        self.pending.iter()
    }

    /// Number of waiting requests.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// `true` when nothing waits.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Removes and returns requests whose departure passed while they
    /// were still queued (the user gave up waiting).
    pub fn drain_departed(&mut self, slot: usize) -> Vec<UserRequest> {
        let mut gone = Vec::new();
        self.pending.retain(|r| {
            let departed = r.departure_slot.is_some_and(|d| d <= slot);
            if departed {
                gone.push(r.clone());
            }
            !departed
        });
        gone
    }

    /// Scans the queue in FIFO order, asking `decide` about each
    /// request. `Admit` removes it (returned with its shard), `Wait`
    /// keeps it in place for the next boundary, `Reject` drops it
    /// (returned in the second list). The relative order of waiting
    /// requests is preserved.
    pub fn try_admit<F>(&mut self, mut decide: F) -> (Vec<(UserRequest, usize)>, Vec<UserRequest>)
    where
        F: FnMut(&UserRequest) -> AdmitDecision,
    {
        let mut admitted = Vec::new();
        let mut rejected = Vec::new();
        let mut waiting = VecDeque::with_capacity(self.pending.len());
        for request in self.pending.drain(..) {
            match decide(&request) {
                AdmitDecision::Admit(shard) => admitted.push((request, shard)),
                AdmitDecision::Wait => waiting.push_back(request),
                AdmitDecision::Reject => rejected.push(request),
            }
        }
        self.pending = waiting;
        (admitted, rejected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(user: usize, arrival: usize, departure: Option<usize>) -> UserRequest {
        UserRequest {
            user,
            arrival_slot: arrival,
            profile: 0,
            class: DeadlineClass::Standard,
            departure_slot: departure,
        }
    }

    #[test]
    fn fifo_order_preserved_through_waits() {
        let mut q = RequestQueue::new();
        for u in 0..4 {
            q.push(req(u, u, None));
        }
        // Admit evens, keep odds waiting.
        let (admitted, rejected) = q.try_admit(|r| {
            if r.user % 2 == 0 {
                AdmitDecision::Admit(r.user / 2)
            } else {
                AdmitDecision::Wait
            }
        });
        assert_eq!(rejected.len(), 0);
        assert_eq!(
            admitted
                .iter()
                .map(|(r, s)| (r.user, *s))
                .collect::<Vec<_>>(),
            vec![(0, 0), (2, 1)]
        );
        assert_eq!(q.iter().map(|r| r.user).collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn departed_requests_abandon_the_queue() {
        let mut q = RequestQueue::new();
        q.push(req(0, 0, Some(10)));
        q.push(req(1, 0, Some(40)));
        q.push(req(2, 0, None));
        let gone = q.drain_departed(16);
        assert_eq!(gone.len(), 1);
        assert_eq!(gone[0].user, 0);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn reject_drops_request() {
        let mut q = RequestQueue::new();
        q.push(req(7, 0, None));
        let (admitted, rejected) = q.try_admit(|_| AdmitDecision::Reject);
        assert!(admitted.is_empty());
        assert_eq!(rejected.len(), 1);
        assert!(q.is_empty());
    }

    #[test]
    fn class_tolerances_ordered() {
        assert!(DeadlineClass::Strict.miss_tolerance() < DeadlineClass::Standard.miss_tolerance());
        assert!(
            DeadlineClass::Standard.miss_tolerance() < DeadlineClass::BestEffort.miss_tolerance()
        );
        assert_eq!(DeadlineClass::default(), DeadlineClass::Standard);
    }
}

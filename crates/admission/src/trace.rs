//! Synthetic arrival traces: Poisson arrivals with heavy-tailed
//! (Pareto) session lengths — the cloud-transcoding load shape of the
//! related on-demand work (Li et al.), made deterministic for replay.

use crate::request::{DeadlineClass, UserRequest};

/// Shape of a synthetic arrival trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceConfig {
    /// Serving horizon in frame slots.
    pub horizon_slots: usize,
    /// Poisson arrival rate, users per slot (λ).
    pub arrivals_per_slot: f64,
    /// Minimum session length in slots (the Pareto scale x_m).
    pub min_session_slots: usize,
    /// Pareto tail index α (1 < α < 2 gives the heavy tail of video
    /// session lengths; smaller is heavier).
    pub tail_alpha: f64,
    /// Number of distinct workload profiles users draw from.
    pub profiles: usize,
    /// RNG seed — identical configs replay identical traces.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            horizon_slots: 240,
            arrivals_per_slot: 0.25,
            min_session_slots: 48,
            tail_alpha: 1.5,
            profiles: 1,
            seed: 2018,
        }
    }
}

/// SplitMix64 — tiny, deterministic, no external dependency.
#[derive(Debug, Clone)]
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Poisson-distributed count with mean `lambda`. Knuth's method
    /// for small rates; beyond λ = 32 `exp(-λ)` heads toward f64
    /// underflow (unusable past ~700) and the product loop costs O(λ)
    /// draws, so large rates — the 1M-user scale sweeps — switch to a
    /// rounded Box–Muller normal approximation (error O(1/√λ), well
    /// under the trace synthesizer's needs). Both branches draw from
    /// the same deterministic stream, and rates ≤ 32 keep their exact
    /// historical sequences.
    fn poisson(&mut self, lambda: f64) -> usize {
        if lambda > 32.0 {
            let u1 = self.next_f64().max(1e-12);
            let u2 = self.next_f64();
            let g = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            return (lambda + lambda.sqrt() * g).round().max(0.0) as usize;
        }
        let limit = (-lambda).exp();
        let mut k = 0usize;
        let mut p = 1.0;
        loop {
            p *= self.next_f64();
            if p <= limit {
                return k;
            }
            k += 1;
        }
    }

    /// Pareto(x_m, α) via inverse CDF, capped at 64 × x_m so a single
    /// tail draw cannot swallow the whole horizon.
    fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        let u = (1.0 - self.next_f64()).max(1e-12);
        (xm * u.powf(-1.0 / alpha)).min(xm * 64.0)
    }
}

/// Synthesizes a deterministic arrival trace: per-slot Poisson arrival
/// counts, Pareto session lengths, uniformly drawn profiles and a
/// 20/60/20 strict/standard/best-effort class mix.
///
/// # Panics
///
/// Panics when the rate or tail index is not positive, or
/// `min_session_slots`/`profiles` is zero.
pub fn synthesize_trace(cfg: &TraceConfig) -> Vec<UserRequest> {
    assert!(cfg.arrivals_per_slot > 0.0, "need a positive arrival rate");
    assert!(cfg.tail_alpha > 0.0, "need a positive tail index");
    assert!(cfg.min_session_slots > 0, "sessions need a minimum length");
    assert!(cfg.profiles > 0, "need at least one profile");
    let mut rng = Rng(cfg.seed);
    let mut trace = Vec::new();
    let mut user = 0usize;
    for slot in 0..cfg.horizon_slots {
        for _ in 0..rng.poisson(cfg.arrivals_per_slot) {
            let session = rng
                .pareto(cfg.min_session_slots as f64, cfg.tail_alpha)
                .round() as usize;
            let class = match rng.next_f64() {
                u if u < 0.2 => DeadlineClass::Strict,
                u if u < 0.8 => DeadlineClass::Standard,
                _ => DeadlineClass::BestEffort,
            };
            trace.push(UserRequest {
                user,
                arrival_slot: slot,
                profile: (rng.next_u64() % cfg.profiles as u64) as usize,
                class,
                departure_slot: Some(slot + session.max(cfg.min_session_slots)),
            });
            user += 1;
        }
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic() {
        let cfg = TraceConfig::default();
        let a = synthesize_trace(&cfg);
        let b = synthesize_trace(&cfg);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let a = synthesize_trace(&TraceConfig::default());
        let b = synthesize_trace(&TraceConfig {
            seed: 99,
            ..Default::default()
        });
        assert_ne!(a, b);
    }

    #[test]
    fn arrivals_ordered_and_sessions_bounded() {
        let cfg = TraceConfig {
            horizon_slots: 480,
            arrivals_per_slot: 0.5,
            ..Default::default()
        };
        let trace = synthesize_trace(&cfg);
        for pair in trace.windows(2) {
            assert!(pair[0].arrival_slot <= pair[1].arrival_slot);
            assert!(pair[0].user < pair[1].user);
        }
        for r in &trace {
            let d = r.departure_slot.expect("synthetic users depart");
            assert!(d >= r.arrival_slot + cfg.min_session_slots);
            assert!(d <= r.arrival_slot + cfg.min_session_slots * 64 + 1);
            assert!(r.profile < cfg.profiles);
        }
    }

    #[test]
    fn high_rate_arrivals_track_mean_without_underflow() {
        // λ = 5208/slot over 192 slots ≈ 1M arrivals: Knuth's method
        // would spin on exp(-λ) = 0 forever. The normal branch must
        // land within a fraction of a percent of the mean.
        let cfg = TraceConfig {
            horizon_slots: 192,
            arrivals_per_slot: 5208.0,
            ..Default::default()
        };
        let trace = synthesize_trace(&cfg);
        let n = trace.len() as f64;
        let expect = 192.0 * 5208.0;
        assert!(
            (n - expect).abs() < expect * 0.01,
            "got {n} arrivals, expected ≈{expect}"
        );
        for pair in trace.windows(2) {
            assert!(pair[0].arrival_slot <= pair[1].arrival_slot);
        }
    }

    #[test]
    fn arrival_count_tracks_rate() {
        let cfg = TraceConfig {
            horizon_slots: 2000,
            arrivals_per_slot: 0.4,
            ..Default::default()
        };
        let n = synthesize_trace(&cfg).len() as f64;
        let expect = 2000.0 * 0.4;
        assert!(
            (n - expect).abs() < expect * 0.25,
            "got {n} arrivals, expected ≈{expect}"
        );
    }
}

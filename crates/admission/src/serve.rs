//! The online serving loop: GOP-boundary admission control over
//! per-socket shard loops.
//!
//! Every `gop_slots` slots the controller, in this order:
//!
//! 1. pulls newly arrived requests into the FIFO [`RequestQueue`];
//! 2. removes departed users (and queued requests whose user gave up);
//! 3. evicts users whose consecutive missed one-second windows exceed
//!    their [`DeadlineClass`](crate::DeadlineClass) tolerance — read
//!    from the runtime's per-user accounting; under
//!    [`CostPlan::degrade_on_evict`] the evicted user re-enters the
//!    queue one deadline class lower instead of being dropped;
//! 4. admits queued users whose Algorithm 2 line 1 core demand fits a
//!    shard chosen by the [`ShardPolicy`] *and* — when the
//!    [`CostPlan`] budget is finite — whose billing keeps the window
//!    spend within budget;
//! 5. pushes the membership *delta* into each shard's serving
//!    [`Node`](medvt_runtime::Node) as a
//!    [`NodeCommand`](medvt_runtime::NodeCommand) (the wrapped
//!    [`LoopDriver`](medvt_runtime::LoopDriver) incrementally
//!    re-places only the affected users at the boundary) and advances
//!    every shard one GOP in lockstep through the same command seam —
//!    the interface `medvt-cluster` drives remote worker nodes with.
//!
//! Decisions read only the analytical accounting, so replaying one
//! trace on `SimBackend` and `ThreadPoolBackend` shards produces
//! identical admission/eviction event streams.
//!
//! # Control-plane cost
//!
//! Steady state — no arrivals, departures, misses, or admissible
//! queued demand — costs O(shards) per boundary, independent of both
//! the active population and the queue depth: departures pop from a
//! slot-ordered heap, evictions read the runtime's miss-streak sets,
//! and the admission scan stops at the first queued request once the
//! smallest queued demand fits no shard (demand-monotone, so every
//! later request would also wait). The decision stream stays
//! bit-identical to the pre-refactor linear controller, kept as
//! [`serve_online_reference`](crate::serve_online_reference) and
//! pinned by the `control_plane` integration tests.

use crate::request::{AdmitDecision, RequestQueue, UserRequest};
use crate::shard::{ShardPolicy, Sharder};
use medvt_mpsoc::DvfsPolicy;
use medvt_runtime::{
    ControllerTiming, DemandSource, ExecutionBackend, LoopReport, Node, NodeCommand, ReplanPolicy,
    ServerLoopConfig, WindowTiming,
};
use medvt_telemetry::{
    CounterId, Event as TelEvent, EventKind as TelKind, HistId, Metrics, NoopRecorder, Recorder,
    CONTROL_TRACK,
};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::time::Instant;

/// A user-facing workload the admission controller can reason about —
/// implemented by `medvt_core::VideoProfile` (and by the synthetic
/// models in tests).
pub trait Workload {
    /// Steady-state per-tile f_max-second demand per slot (what the
    /// LUT reports to Algorithm 2 line 1 at admission time).
    fn steady_demand(&self) -> Vec<f64>;

    /// Per-tile demand of the frame shown at `slot`.
    fn demand_at(&self, slot: usize) -> Vec<f64>;

    /// Content (texture/body-part) class — the affinity key of
    /// [`ShardPolicy::ContentAffinity`].
    fn content_class(&self) -> &str;

    /// `true` when `demand_at` is slot-invariant — the controller then
    /// skips re-estimating this workload's demand at every boundary.
    ///
    /// Purely an optimization hint: the placement engine compares
    /// demands bitwise before replaying, so a truthful `false` never
    /// changes decisions, only costs the per-boundary re-estimate.
    /// Returning `true` for a slot-varying workload is a contract
    /// violation (stale demands would feed the placer). Default:
    /// `false`.
    fn steady(&self) -> bool {
        false
    }

    /// Real work for tile-thread `thread` of the frame shown at
    /// `slot`, when the workload carries any — e.g.
    /// `medvt_core::LiveWorkload`, which encodes the tile for real on
    /// the worker assigned by the placement. Cost-only workloads
    /// (profile replay, the default) return `None`.
    ///
    /// Admission/eviction decisions never depend on this: they read
    /// only the analytical accounting, so a workload with real work
    /// replays the same decision stream as its cost-only twin.
    fn work_for(&self, _slot: usize, _thread: usize) -> Option<Box<dyn FnOnce() + Send + '_>> {
        None
    }
}

/// Cost policy of an online run: how admitted demand is billed, how
/// much the operator will spend per GOP window, and whether eviction
/// degrades users instead of dropping them.
///
/// The default ([`CostPlan::unlimited`]) disables both mechanisms
/// structurally: with an infinite budget the admission path never
/// consults the spend ledger and with `degrade_on_evict` off the
/// eviction path never re-queues, so the decision stream stays
/// bit-identical to [`serve_online_reference`](crate::serve_online_reference)
/// — the provisioning extension of the sim-vs-pool invariant.
///
/// With a finite budget, a request is admitted only when *both* a
/// shard fits its demand and billing it keeps the window spend within
/// budget (`spend + demand × rate ≤ budget`). The check is
/// demand-monotone like the capacity probe, so the controller's
/// early-stop admission scans stay sound. Budget refusals are not
/// offered to a `RoundRobin` rotation (the shard never saw the
/// request), which is unobservable at infinite budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostPlan {
    /// Credits billed per admitted reference core per GOP window —
    /// the serving-side price of capacity (see
    /// `medvt_mpsoc::CostModel` for where the rate comes from).
    pub credits_per_core_window: f64,
    /// Spend ceiling per GOP window, in credits. `f64::INFINITY`
    /// disables cost-constrained admission entirely.
    pub budget_credits_per_window: f64,
    /// When `true`, an evicted user re-enters the queue at the
    /// next-lower [`DeadlineClass`](crate::DeadlineClass) (emitting
    /// [`EventKind::Downgrade`]) instead of being dropped; a
    /// best-effort eviction stays final.
    pub degrade_on_evict: bool,
}

impl CostPlan {
    /// No budget, no degradation — the cost-oblivious default whose
    /// decisions are bit-identical to the frozen reference controller.
    pub const fn unlimited() -> Self {
        Self {
            credits_per_core_window: 0.0,
            budget_credits_per_window: f64::INFINITY,
            degrade_on_evict: false,
        }
    }

    /// `true` when the budget binds (finite), i.e. the admission path
    /// consults the spend ledger.
    pub fn is_budgeted(&self) -> bool {
        self.budget_credits_per_window.is_finite()
    }
}

impl Default for CostPlan {
    fn default() -> Self {
        Self::unlimited()
    }
}

/// Online serving configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineConfig {
    /// Target frames per second per user.
    pub fps: f64,
    /// Slots per GOP — the admit/evict and re-placement period.
    pub gop_slots: usize,
    /// Serving horizon in slots.
    pub horizon_slots: usize,
    /// Admission safety factor on estimated demands (> 1 keeps slack).
    pub headroom: f64,
    /// DVFS policy for the shard backends.
    pub policy: DvfsPolicy,
    /// How admitted users are assigned to sockets.
    pub shard_policy: ShardPolicy,
    /// Base eviction threshold in consecutive missed windows; each
    /// user's class tolerance multiplies it.
    pub evict_miss_windows: usize,
    /// Cost policy: per-window billing rate, spend budget and
    /// eviction degradation. Defaults to [`CostPlan::unlimited`],
    /// which keeps the controller cost-oblivious and bit-identical to
    /// the frozen reference.
    pub cost: CostPlan,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        Self {
            fps: 24.0,
            gop_slots: 8,
            horizon_slots: 240,
            headroom: 1.15,
            policy: DvfsPolicy::StretchToDeadline,
            shard_policy: ShardPolicy::LeastLoaded,
            evict_miss_windows: 1,
            cost: CostPlan::unlimited(),
        }
    }
}

/// What happened to a user, when, and where.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// Queued user admitted onto a shard.
    Admit,
    /// Active user removed for sustained deadline misses.
    Evict,
    /// Active user left at its requested departure slot.
    Depart,
    /// Queued user departed before ever being admitted.
    Abandon,
    /// Request can never fit any shard — dropped at the door.
    Reject,
    /// Evicted user re-entered the queue at the next-lower deadline
    /// class (graceful degradation under [`CostPlan::degrade_on_evict`])
    /// instead of being dropped. Always immediately follows that
    /// user's [`EventKind::Evict`] at the same boundary.
    Downgrade,
}

/// One entry of the admission log — the decision stream compared
/// across backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmissionEvent {
    /// GOP-boundary slot the decision was taken at.
    pub slot: usize,
    /// The user concerned.
    pub user: usize,
    /// Shard involved (`None` for queue-side events).
    pub shard: Option<usize>,
    /// What happened.
    pub kind: EventKind,
}

/// Per-shard aggregate of an online run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardReport {
    /// Shard (socket) index.
    pub shard: usize,
    /// The backend's label — the socket-tagged platform name for
    /// platform shards, so reports stay attributable to a socket.
    pub label: String,
    /// Effective capacity in reference cores (sum of core speed
    /// factors); shards may differ on heterogeneous platforms.
    pub capacity_cores: f64,
    /// Users ever admitted here.
    pub admitted: usize,
    /// Peak simultaneous users.
    pub peak_users: usize,
    /// Energy, joules.
    pub energy_j: f64,
    /// Deadline windows evaluated (per active core).
    pub windows: usize,
    /// Windows ending with unfinished work.
    pub window_misses: usize,
    /// Mean busy cores per slot.
    pub avg_active_cores: f64,
    /// Wall-clock seconds this shard spent executing real work (0.0 on
    /// analytical shards).
    pub wall_secs: f64,
    /// Measured vs. modeled time of every completed deadline window on
    /// this shard, in window order.
    pub window_times: Vec<WindowTiming>,
}

impl ShardReport {
    /// Overall measured/modeled window-time ratio of this shard;
    /// `None` when the shard modeled no busy time or ran no real work.
    pub fn window_time_ratio(&self) -> Option<f64> {
        WindowTiming::aggregate_ratio(&self.window_times)
    }
}

/// Aggregate outcome of an online serving run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineReport {
    /// Shard policy label.
    pub shard_policy: String,
    /// Slots served.
    pub horizon_slots: usize,
    /// Requests that arrived within the horizon.
    pub arrivals: usize,
    /// Users admitted (each at most once).
    pub admissions: usize,
    /// Users evicted for sustained misses.
    pub evictions: usize,
    /// Users that departed voluntarily while active.
    pub departures: usize,
    /// Queued users that gave up before admission.
    pub abandoned: usize,
    /// Requests that could never fit any shard.
    pub rejected: usize,
    /// Requests still queued when the horizon ended.
    pub queued_at_end: usize,
    /// Users still active when the horizon ended.
    pub active_at_end: usize,
    /// Mean slots spent queued before admission.
    pub mean_queue_wait_slots: f64,
    /// Time-averaged simultaneously active users.
    pub avg_concurrent_users: f64,
    /// Peak simultaneously active users.
    pub peak_concurrent_users: usize,
    /// Deadline windows across all shards.
    pub windows: usize,
    /// Missed windows across all shards.
    pub window_misses: usize,
    /// Total energy, joules.
    pub energy_j: f64,
    /// Per-shard aggregates.
    pub shards: Vec<ShardReport>,
    /// The full decision log, in decision order.
    pub events: Vec<AdmissionEvent>,
    /// Control-plane cost: queue-side wall time and decision counts
    /// from the admission loop, placement-side wall time and replan
    /// counts summed over the shard drivers.
    pub controller: ControllerTiming,
}

impl OnlineReport {
    /// Fraction of deadline windows met across all shards; 0.0 when no
    /// window was ever evaluated.
    pub fn on_time_rate(&self) -> f64 {
        if self.windows == 0 {
            0.0
        } else {
            1.0 - self.window_misses as f64 / self.windows as f64
        }
    }

    /// (total measured wall, total modeled makespan) over every
    /// shard's deadline windows, in one pass.
    fn window_totals(&self) -> (f64, f64) {
        self.shards.iter().fold((0.0, 0.0), |(wall, modeled), s| {
            let (w, m) = WindowTiming::totals(&s.window_times);
            (wall + w, modeled + m)
        })
    }

    /// Total measured wall seconds over every shard's deadline windows.
    pub fn measured_window_secs(&self) -> f64 {
        self.window_totals().0
    }

    /// Total modeled makespan seconds over every shard's windows.
    pub fn modeled_window_secs(&self) -> f64 {
        self.window_totals().1
    }

    /// Overall measured/modeled window-time ratio across shards;
    /// `None` on cost-only runs (no real work was executed) or when
    /// nothing was ever scheduled.
    pub fn window_time_ratio(&self) -> Option<f64> {
        let (measured, modeled) = self.window_totals();
        WindowTiming::ratio_from(measured, modeled)
    }

    /// This report with the wall-clock controller timings zeroed. The
    /// backend-independent decision counters survive, so analytical
    /// and real-execution replays of one trace compare equal.
    pub fn modeled_only(&self) -> Self {
        let mut r = self.clone();
        r.controller = self.controller.modeled_only();
        r
    }
}

/// Replays `workloads` demands for admitted users, staggered 3 slots
/// per user so IDR frames decorrelate (mirrors `core`'s profile
/// replay).
pub(crate) struct TraceSource<'a, W> {
    pub(crate) workloads: &'a [W],
    pub(crate) profile_of: BTreeMap<usize, usize>,
}

impl<W: Workload> DemandSource for TraceSource<'_, W> {
    fn demand_at(&self, user: usize, slot: usize) -> Vec<f64> {
        self.workloads[self.profile_of[&user]].demand_at(slot + user * 3)
    }

    fn steady(&self, user: usize) -> bool {
        self.workloads[self.profile_of[&user]].steady()
    }

    fn work_for(
        &self,
        user: usize,
        slot: usize,
        thread: usize,
    ) -> Option<Box<dyn FnOnce() + Send + '_>> {
        self.workloads[self.profile_of[&user]].work_for(slot + user * 3, thread)
    }
}

/// An admitted user's controller-side state.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ActiveUser {
    pub(crate) shard: usize,
    pub(crate) demand_cores: f64,
    pub(crate) departure_slot: Option<usize>,
    pub(crate) miss_tolerance: usize,
    /// Service tier admitted at — the degradation ladder position an
    /// eviction downgrades from. Inert in the frozen reference.
    pub(crate) class: crate::request::DeadlineClass,
}

/// Validated trace-independent inputs shared by [`serve_online`] and
/// the frozen [`serve_online_reference`](crate::serve_online_reference)
/// baseline, so the two controllers decide from identical numbers.
pub(crate) struct Setup {
    pub(crate) capacities: Vec<f64>,
    pub(crate) labels: Vec<String>,
    pub(crate) max_capacity: f64,
    /// user id → workload index.
    pub(crate) profile_of: BTreeMap<usize, usize>,
    /// Padded fractional-core demand per workload index (line 1).
    pub(crate) demand_of: Vec<f64>,
    pub(crate) loop_cfg: ServerLoopConfig,
}

impl Setup {
    pub(crate) fn new<W: Workload, B: ExecutionBackend>(
        cfg: &OnlineConfig,
        workloads: &[W],
        trace: &[UserRequest],
        shards: &[B],
    ) -> Self {
        assert!(!workloads.is_empty(), "need at least one workload");
        assert!(!shards.is_empty(), "need at least one shard");
        assert!(
            trace
                .windows(2)
                .all(|w| w[0].arrival_slot <= w[1].arrival_slot),
            "trace must be sorted by arrival slot"
        );
        let capacities: Vec<f64> = shards
            .iter()
            .map(|b| b.core_speeds().iter().sum())
            .collect();
        let labels: Vec<String> = shards.iter().map(ExecutionBackend::label).collect();
        let max_capacity = capacities.iter().copied().fold(0.0f64, f64::max);
        let mut profile_of: BTreeMap<usize, usize> = BTreeMap::new();
        for r in trace {
            assert!(
                r.profile < workloads.len(),
                "request for user {} names profile {} but only {} workloads given",
                r.user,
                r.profile,
                workloads.len()
            );
            assert!(
                profile_of.insert(r.user, r.profile).is_none(),
                "duplicate user id {}",
                r.user
            );
        }
        let demand_of: Vec<f64> = workloads
            .iter()
            .map(|w| w.steady_demand().iter().sum::<f64>() * cfg.fps * cfg.headroom)
            .collect();
        let loop_cfg = ServerLoopConfig {
            fps: cfg.fps,
            slots: cfg.horizon_slots,
            policy: cfg.policy,
            replan: ReplanPolicy::PerGop {
                headroom: cfg.headroom,
            },
            gop_slots: cfg.gop_slots,
            window_slots: None,
        };
        Self {
            capacities,
            labels,
            max_capacity,
            profile_of,
            demand_of,
            loop_cfg,
        }
    }
}

/// Serves `trace` online across per-socket `shards` (one backend per
/// socket, each covering that socket's cores). Shards may be
/// heterogeneous — different core counts and speed factors — in which
/// case each is admitted against its own effective capacity (the sum
/// of its cores' speed factors).
///
/// Decisions depend only on the backends' analytical accounting, so
/// any [`ExecutionBackend`] mix with identical platforms replays the
/// same decision stream.
///
/// # Panics
///
/// Panics when `workloads` or `shards` is empty, `trace` is not sorted
/// by arrival slot, a trace user id repeats, or a request's profile
/// index is out of range.
pub fn serve_online<W: Workload, B: ExecutionBackend>(
    cfg: &OnlineConfig,
    workloads: &[W],
    trace: &[UserRequest],
    shards: Vec<B>,
) -> OnlineReport {
    serve_online_with(cfg, workloads, trace, shards, NoopRecorder)
}

/// [`serve_online`] with a telemetry [`Recorder`] attached: shard
/// drivers stamp their events with their shard index as the track, the
/// controller stamps queue-side events (admit/evict/depart, queue
/// depth, boundary passes) with
/// [`CONTROL_TRACK`](medvt_telemetry::CONTROL_TRACK), and every
/// counter/histogram is folded into the recorder when the run ends.
///
/// Pass `&FlightRecorder` (a `Copy` recorder) to capture, or
/// [`NoopRecorder`] for the zero-cost disabled path — decisions and
/// reports are bit-identical either way.
///
/// # Panics
///
/// Same contract as [`serve_online`].
pub fn serve_online_with<W: Workload, B: ExecutionBackend, R: Recorder + Copy>(
    cfg: &OnlineConfig,
    workloads: &[W],
    trace: &[UserRequest],
    shards: Vec<B>,
    recorder: R,
) -> OnlineReport {
    let setup = Setup::new(cfg, workloads, trace, &shards);
    let source = TraceSource {
        workloads,
        profile_of: setup.profile_of.clone(),
    };
    // Each shard is a serving `Node`: state transitions (membership
    // deltas, slot advancement, shutdown) go through the typed
    // `NodeCommand` seam — the same interface the cluster layer binds
    // worker nodes to — while read-only eviction queries stay direct.
    let mut nodes: Vec<Node<B, R>> = shards
        .into_iter()
        .enumerate()
        .map(|(s, b)| Node::with_recorder(b, setup.loop_cfg, recorder, s as u16))
        .collect();
    let n_shards = nodes.len();

    // Boundaries all sit below the horizon, so departures past it
    // never need indexing.
    let mut queue = RequestQueue::with_departure_bound(cfg.horizon_slots.max(1));
    let mut sharder = Sharder::new(cfg.shard_policy);
    sharder.attach(setup.capacities.clone());
    let mut active: BTreeMap<usize, ActiveUser> = BTreeMap::new();
    // Min-heap of (departure slot, user) over active users; entries go
    // stale on eviction and are skipped lazily on pop.
    let mut dep_heap: BinaryHeap<Reverse<(usize, usize)>> = BinaryHeap::new();
    // Multiset of queued padded demands keyed by bit pattern (demands
    // are non-negative finite floats, so bit order = numeric order):
    // its first key is the smallest queued demand, the admission
    // scan's stop probe.
    let mut queued_demands: BTreeMap<u64, usize> = BTreeMap::new();
    // Queued requests whose demand exceeds every shard outright. They
    // are rejected load-independently at their first scan, so the
    // early stop must not skip them; nonzero only between a bad
    // arrival and the boundary that rejects it.
    let mut queued_inadmissible = 0usize;
    // Indexed admission (stateless policies only): per-demand FIFOs of
    // queue sequence numbers. Entries go stale when a request abandons;
    // they are skipped lazily against `queue.contains`. RoundRobin
    // advances its rotation on every offered request — including
    // refusals — so it must keep the linear scan.
    let indexed = cfg.shard_policy != ShardPolicy::RoundRobin;
    let mut fifo_by_demand: BTreeMap<u64, VecDeque<u64>> = BTreeMap::new();
    // Per-boundary membership deltas, reused across boundaries.
    let mut added: Vec<Vec<usize>> = vec![Vec::new(); n_shards];
    let mut removed: Vec<Vec<usize>> = vec![Vec::new(); n_shards];
    let mut shard_users = vec![0usize; n_shards];
    let mut shard_admitted = vec![0usize; n_shards];
    let mut shard_peak = vec![0usize; n_shards];
    let mut events: Vec<AdmissionEvent> = Vec::new();
    let (mut arrivals, mut admissions, mut evictions) = (0usize, 0usize, 0usize);
    let (mut departures, mut abandoned, mut rejected) = (0usize, 0usize, 0usize);
    let mut wait_slots_sum = 0usize;
    let mut concurrent_slot_sum = 0usize;
    let mut peak_concurrent = 0usize;
    // Queue-side telemetry meter; `ControllerTiming` is derived from
    // it at the end, so the report schema is unchanged.
    let meter = Metrics::new();
    // Cost ledger: credits currently billed per window for the active
    // set. Only consulted when the budget is finite, so the default
    // (unlimited) plan leaves every decision untouched.
    let plan = cfg.cost;
    let budgeted = plan.is_budgeted();
    let rate = plan.credits_per_core_window;
    let budget = plan.budget_credits_per_window;
    let mut window_spend = 0.0f64;

    let ms_remove = |set: &mut BTreeMap<u64, usize>, demand: f64| {
        let bits = demand.to_bits();
        let count = set.get_mut(&bits).expect("demand was registered");
        *count -= 1;
        if *count == 0 {
            set.remove(&bits);
        }
    };

    let mut next_arrival = 0usize;
    let mut slot = 0usize;
    while slot < cfg.horizon_slots {
        let boundary_clock = Instant::now();
        meter.add(CounterId::Boundaries, 1);
        if R::ENABLED {
            recorder.record(TelEvent::new(
                CONTROL_TRACK,
                slot as u32,
                TelKind::GopBoundary,
            ));
        }
        // 1. Arrivals up to this boundary.
        while next_arrival < trace.len() && trace[next_arrival].arrival_slot <= slot {
            let request = &trace[next_arrival];
            let demand = setup.demand_of[request.profile];
            *queued_demands.entry(demand.to_bits()).or_insert(0) += 1;
            if demand > setup.max_capacity + 1e-9 {
                queued_inadmissible += 1;
            }
            let seq = queue.push(request.clone());
            if indexed {
                fifo_by_demand
                    .entry(demand.to_bits())
                    .or_default()
                    .push_back(seq);
            }
            arrivals += 1;
            next_arrival += 1;
        }
        // 2. Voluntary departures — active users first (popped from
        // the heap, processed in user-id order like the linear scan
        // they replace), then queued requests whose user gave up.
        let mut departing: Vec<usize> = Vec::new();
        while let Some(&Reverse((d, user))) = dep_heap.peek() {
            if d > slot {
                break;
            }
            dep_heap.pop();
            if active.contains_key(&user) {
                departing.push(user);
            }
        }
        departing.sort_unstable();
        // A degraded-then-readmitted user carries two identical heap
        // entries (same departure slot, same user): depart it once.
        departing.dedup();
        meter.add(CounterId::Decisions, departing.len() as u64);
        for user in departing {
            let a = active.remove(&user).expect("departing user is active");
            sharder.release_load(a.shard, a.demand_cores);
            if budgeted {
                window_spend -= a.demand_cores * rate;
            }
            shard_users[a.shard] -= 1;
            removed[a.shard].push(user);
            departures += 1;
            meter.add(CounterId::Departs, 1);
            if R::ENABLED {
                recorder.record(TelEvent::new(
                    a.shard as u16,
                    slot as u32,
                    TelKind::Depart { user: user as u32 },
                ));
            }
            events.push(AdmissionEvent {
                slot,
                user,
                shard: Some(a.shard),
                kind: EventKind::Depart,
            });
        }
        for request in queue.drain_departed(slot) {
            let demand = setup.demand_of[request.profile];
            ms_remove(&mut queued_demands, demand);
            if demand > setup.max_capacity + 1e-9 {
                queued_inadmissible -= 1;
            }
            abandoned += 1;
            meter.add(CounterId::Decisions, 1);
            meter.add(CounterId::Abandons, 1);
            if R::ENABLED {
                recorder.record(TelEvent::new(
                    CONTROL_TRACK,
                    slot as u32,
                    TelKind::Abandon {
                        user: request.user as u32,
                    },
                ));
            }
            events.push(AdmissionEvent {
                slot,
                user: request.user,
                shard: None,
                kind: EventKind::Abandon,
            });
        }
        // 3. Evictions under sustained deadline misses. Only users
        // whose *latest* window missed can be over their tolerance,
        // and the drivers index exactly those.
        let mut evicting: Vec<usize> = Vec::new();
        for n in &nodes {
            for u in n.miss_streaks() {
                let over = active.get(&u).is_some_and(|a| {
                    n.user_stats(u)
                        .is_some_and(|s| s.consecutive_window_misses >= a.miss_tolerance)
                });
                if over {
                    evicting.push(u);
                }
            }
        }
        evicting.sort_unstable();
        meter.add(CounterId::Decisions, evicting.len() as u64);
        for user in evicting {
            let a = active.remove(&user).expect("evicted user is active");
            sharder.release_load(a.shard, a.demand_cores);
            if budgeted {
                window_spend -= a.demand_cores * rate;
            }
            shard_users[a.shard] -= 1;
            removed[a.shard].push(user);
            evictions += 1;
            meter.add(CounterId::Evicts, 1);
            if R::ENABLED {
                recorder.record(TelEvent::new(
                    a.shard as u16,
                    slot as u32,
                    TelKind::Evict { user: user as u32 },
                ));
            }
            events.push(AdmissionEvent {
                slot,
                user,
                shard: Some(a.shard),
                kind: EventKind::Evict,
            });
            // Graceful degradation: the evicted user re-enters the
            // queue one deadline class lower (best-effort evictions
            // stay final). Departures ran above, so the re-queued
            // departure slot — if any — is strictly in the future and
            // the bounded queue indexes it like a fresh arrival. The
            // same boundary's admission step may re-admit immediately
            // onto whatever capacity the eviction freed.
            if plan.degrade_on_evict {
                if let Some(lower) = a.class.downgrade() {
                    let profile = setup.profile_of[&user];
                    let demand = setup.demand_of[profile];
                    *queued_demands.entry(demand.to_bits()).or_insert(0) += 1;
                    if demand > setup.max_capacity + 1e-9 {
                        queued_inadmissible += 1;
                    }
                    let seq = queue.push(UserRequest {
                        user,
                        arrival_slot: slot,
                        profile,
                        class: lower,
                        departure_slot: a.departure_slot,
                    });
                    if indexed {
                        fifo_by_demand
                            .entry(demand.to_bits())
                            .or_default()
                            .push_back(seq);
                    }
                    meter.add(CounterId::Decisions, 1);
                    if R::ENABLED {
                        recorder.record(TelEvent::new(
                            CONTROL_TRACK,
                            slot as u32,
                            TelKind::Downgraded { user: user as u32 },
                        ));
                    }
                    events.push(AdmissionEvent {
                        slot,
                        user,
                        shard: None,
                        kind: EventKind::Downgrade,
                    });
                }
            }
        }
        // 4. Admissions from the FIFO queue. Both paths below replay
        // the reference's FIFO scan semantics — a request is admitted
        // iff its demand fits some shard at its decision moment, and
        // loads only grow within a boundary — they just skip the
        // requests the scan would have stepped over.
        let considered = queue.len();
        meter.add(CounterId::Decisions, considered as u64);
        let (admitted_now, rejected_now) = if indexed {
            // Indexed path: cost O((rejects + admits) · distinct
            // demands), independent of queue depth. Valid because
            // LeastLoaded/ContentAffinity admit exactly when some
            // shard fits (stepped-over waiters change nothing), so
            // the FIFO scan's admit sequence is "repeatedly the
            // earliest queued request whose demand currently fits".
            let mut admitted: Vec<(UserRequest, usize)> = Vec::new();
            let mut rejected: Vec<UserRequest> = Vec::new();
            // Rejects are load-independent: flush inadmissible demand
            // classes wholesale, in arrival order.
            if queued_inadmissible > 0 {
                let bad: Vec<u64> = queued_demands
                    .keys()
                    .copied()
                    .filter(|&bits| f64::from_bits(bits) > setup.max_capacity + 1e-9)
                    .collect();
                let mut seqs: Vec<u64> = Vec::new();
                for bits in bad {
                    if let Some(mut fifo) = fifo_by_demand.remove(&bits) {
                        while let Some(seq) = fifo.pop_front() {
                            if queue.contains(seq) {
                                seqs.push(seq);
                            }
                        }
                    }
                }
                seqs.sort_unstable();
                for seq in seqs {
                    rejected.push(queue.take(seq).expect("validated live"));
                }
            }
            loop {
                // Earliest live request among demand classes that fit
                // somewhere right now. (`queued_demands` counts are
                // reconciled after this block, so a class emptied by
                // this loop just yields no candidate.)
                let mut best: Option<(u64, u64)> = None;
                for &bits in queued_demands.keys() {
                    let demand = f64::from_bits(bits);
                    if demand > setup.max_capacity + 1e-9 || !sharder.any_fits(demand) {
                        continue;
                    }
                    // Cost headroom: billing this class must keep the
                    // window spend within budget. Demand-monotone like
                    // the capacity probe, so skipping the class is
                    // exactly "every member would Wait".
                    if budgeted && window_spend + demand * rate > budget + 1e-9 {
                        continue;
                    }
                    let Some(fifo) = fifo_by_demand.get_mut(&bits) else {
                        continue;
                    };
                    while let Some(&seq) = fifo.front() {
                        if queue.contains(seq) {
                            break;
                        }
                        fifo.pop_front();
                    }
                    if let Some(&seq) = fifo.front() {
                        if best.is_none_or(|(s, _)| seq < s) {
                            best = Some((seq, bits));
                        }
                    }
                }
                let Some((seq, bits)) = best else { break };
                fifo_by_demand
                    .get_mut(&bits)
                    .expect("candidate class exists")
                    .pop_front();
                let request = queue.take(seq).expect("validated live");
                let demand = setup.demand_of[request.profile];
                let shard = sharder
                    .pick_attached(demand, workloads[request.profile].content_class())
                    .expect("any_fits implies a pick for stateless policies");
                sharder.admit_load(shard, demand);
                if budgeted {
                    window_spend += demand * rate;
                }
                admitted.push((request, shard));
            }
            (admitted, rejected)
        } else {
            // Linear path (rotation policies): the scan stops at the
            // first request once the smallest queued demand fits no
            // shard — loads only grow within a scan and fitting is
            // demand-monotone, so every later request would decide
            // Wait. (The stop probe may read a demand already admitted
            // this scan — it only under-estimates the remaining
            // minimum, which keeps the stop conservative.) Disabled
            // while an inadmissible request waits, whose Reject must
            // not be deferred.
            let allow_stop = queued_inadmissible == 0;
            let mut scanned = 0usize;
            let decided = queue.try_admit_while(|request| {
                if allow_stop {
                    let min_bits = *queued_demands.keys().next().expect("scan implies queued");
                    let min_demand = f64::from_bits(min_bits);
                    if !sharder.any_fits(min_demand) {
                        return None;
                    }
                    // Cost headroom is demand-monotone too: when even
                    // the smallest queued demand is unaffordable,
                    // every later request would also Wait.
                    if budgeted && window_spend + min_demand * rate > budget + 1e-9 {
                        return None;
                    }
                }
                scanned += 1;
                let demand = setup.demand_of[request.profile];
                if demand > setup.max_capacity + 1e-9 {
                    return Some(AdmitDecision::Reject);
                }
                // Budget refusals wait without being offered to the
                // rotation — the shard never saw the request.
                if budgeted && window_spend + demand * rate > budget + 1e-9 {
                    return Some(AdmitDecision::Wait);
                }
                match sharder.pick_attached(demand, workloads[request.profile].content_class()) {
                    Some(shard) => {
                        // Reserve immediately so later queue entries
                        // see the updated load.
                        sharder.admit_load(shard, demand);
                        if budgeted {
                            window_spend += demand * rate;
                        }
                        Some(AdmitDecision::Admit(shard))
                    }
                    None => Some(AdmitDecision::Wait),
                }
            });
            // Unscanned requests would all have been offered (and
            // refused) a shard: keep the rotation cursor in step.
            sharder.skip_all(considered - scanned);
            decided
        };
        for request in rejected_now {
            ms_remove(&mut queued_demands, setup.demand_of[request.profile]);
            queued_inadmissible -= 1;
            rejected += 1;
            meter.add(CounterId::Rejects, 1);
            if R::ENABLED {
                recorder.record(TelEvent::new(
                    CONTROL_TRACK,
                    slot as u32,
                    TelKind::Reject {
                        user: request.user as u32,
                    },
                ));
            }
            events.push(AdmissionEvent {
                slot,
                user: request.user,
                shard: None,
                kind: EventKind::Reject,
            });
        }
        for (request, shard) in admitted_now {
            let demand = setup.demand_of[request.profile];
            ms_remove(&mut queued_demands, demand);
            if let Some(d) = request.departure_slot {
                dep_heap.push(Reverse((d, request.user)));
            }
            active.insert(
                request.user,
                ActiveUser {
                    shard,
                    demand_cores: demand,
                    departure_slot: request.departure_slot,
                    miss_tolerance: request.class.miss_tolerance() * cfg.evict_miss_windows.max(1),
                    class: request.class,
                },
            );
            admissions += 1;
            shard_admitted[shard] += 1;
            shard_users[shard] += 1;
            added[shard].push(request.user);
            wait_slots_sum += slot - request.arrival_slot;
            meter.add(CounterId::Admits, 1);
            meter.observe(HistId::QueueWaitSlots, (slot - request.arrival_slot) as u64);
            if R::ENABLED {
                recorder.record(TelEvent::new(
                    shard as u16,
                    slot as u32,
                    TelKind::Admit {
                        user: request.user as u32,
                    },
                ));
            }
            events.push(AdmissionEvent {
                slot,
                user: request.user,
                shard: Some(shard),
                kind: EventKind::Admit,
            });
        }
        if R::ENABLED {
            recorder.record(TelEvent::new(
                CONTROL_TRACK,
                slot as u32,
                TelKind::QueueDepth {
                    depth: queue.len() as u32,
                },
            ));
        }
        // 5. Membership deltas → shards, then advance one GOP in
        // lockstep.
        for s in 0..n_shards {
            shard_peak[s] = shard_peak[s].max(shard_users[s]);
            // `take` moves the delta buffers into the command (they
            // are wire-shaped plain data); empty Vecs are allocation-
            // free, so the steady-state boundary still allocates
            // nothing here.
            nodes[s].handle(
                NodeCommand::UpdateMembership {
                    add: std::mem::take(&mut added[s]),
                    remove: std::mem::take(&mut removed[s]),
                },
                &source,
            );
        }
        meter.observe(
            HistId::BoundaryNs,
            boundary_clock.elapsed().as_nanos() as u64,
        );
        let n_slots = cfg.gop_slots.min(cfg.horizon_slots - slot);
        for n in &mut nodes {
            n.handle(NodeCommand::Advance { slots: n_slots }, &source);
        }
        concurrent_slot_sum += active.len() * n_slots;
        peak_concurrent = peak_concurrent.max(active.len());
        slot += n_slots;
    }

    // Requests arriving after the last GOP boundary still arrived
    // within the horizon: ingest them so `arrivals`/`queued_at_end`
    // reconcile with the trace (they could not have been admitted —
    // no boundary remained to act on).
    while next_arrival < trace.len() && trace[next_arrival].arrival_slot < cfg.horizon_slots {
        queue.push(trace[next_arrival].clone());
        arrivals += 1;
        next_arrival += 1;
    }

    // Derive the report's timing view, then fold the queue-side meter
    // into the recorder (each node folds its driver's meter when it
    // handles `Stop`).
    let timing = ControllerTiming::from_metrics(&meter);
    recorder.absorb(&meter);

    let reports: Vec<LoopReport> = nodes
        .iter_mut()
        .map(|n| {
            n.handle(NodeCommand::Stop, &source)
                .into_report()
                .expect("live node must yield a final report")
        })
        .collect();

    finish_report(
        cfg,
        &setup,
        reports,
        FinishState {
            queued_at_end: queue.len(),
            active_at_end: active.len(),
            arrivals,
            admissions,
            evictions,
            departures,
            abandoned,
            rejected,
            wait_slots_sum,
            concurrent_slot_sum,
            peak_concurrent,
            shard_admitted,
            shard_peak,
            events,
            timing,
        },
    )
}

/// Serve-loop tallies handed to [`finish_report`] once the horizon
/// ends.
pub(crate) struct FinishState {
    pub(crate) queued_at_end: usize,
    pub(crate) active_at_end: usize,
    pub(crate) arrivals: usize,
    pub(crate) admissions: usize,
    pub(crate) evictions: usize,
    pub(crate) departures: usize,
    pub(crate) abandoned: usize,
    pub(crate) rejected: usize,
    pub(crate) wait_slots_sum: usize,
    pub(crate) concurrent_slot_sum: usize,
    pub(crate) peak_concurrent: usize,
    pub(crate) shard_admitted: Vec<usize>,
    pub(crate) shard_peak: Vec<usize>,
    pub(crate) events: Vec<AdmissionEvent>,
    pub(crate) timing: ControllerTiming,
}

/// Assembles the [`OnlineReport`] from the shards' final
/// [`LoopReport`]s — shared with the frozen reference controller so
/// both summarize identically.
pub(crate) fn finish_report(
    cfg: &OnlineConfig,
    setup: &Setup,
    reports: Vec<LoopReport>,
    state: FinishState,
) -> OnlineReport {
    let mut shard_reports = Vec::with_capacity(reports.len());
    let (mut windows, mut window_misses, mut energy) = (0usize, 0usize, 0.0f64);
    // Placement-side cost lives in the drivers; fold it into the
    // serve-level queue/decision tallies.
    let mut controller = state.timing;
    for (s, r) in reports.into_iter().enumerate() {
        windows += r.windows;
        window_misses += r.window_misses;
        energy += r.energy_j;
        controller.placement_ns += r.controller.placement_ns;
        controller.replans += r.controller.replans;
        shard_reports.push(ShardReport {
            shard: s,
            label: setup.labels[s].clone(),
            capacity_cores: setup.capacities[s],
            admitted: state.shard_admitted[s],
            peak_users: state.shard_peak[s],
            energy_j: r.energy_j,
            windows: r.windows,
            window_misses: r.window_misses,
            avg_active_cores: r.avg_active_cores(),
            wall_secs: r.wall_secs,
            window_times: r.window_times,
        });
    }
    OnlineReport {
        shard_policy: cfg.shard_policy.label().to_string(),
        horizon_slots: cfg.horizon_slots,
        arrivals: state.arrivals,
        admissions: state.admissions,
        evictions: state.evictions,
        departures: state.departures,
        abandoned: state.abandoned,
        rejected: state.rejected,
        queued_at_end: state.queued_at_end,
        active_at_end: state.active_at_end,
        mean_queue_wait_slots: if state.admissions == 0 {
            0.0
        } else {
            state.wait_slots_sum as f64 / state.admissions as f64
        },
        avg_concurrent_users: if cfg.horizon_slots == 0 {
            0.0
        } else {
            state.concurrent_slot_sum as f64 / cfg.horizon_slots as f64
        },
        peak_concurrent_users: state.peak_concurrent,
        windows,
        window_misses,
        energy_j: energy,
        shards: shard_reports,
        events: state.events,
        controller,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{DeadlineClass, UserRequest};
    use medvt_mpsoc::{Platform, PowerModel};
    use medvt_runtime::SimBackend;

    const SLOT: f64 = 1.0 / 24.0;

    /// Flat synthetic workload: `tiles` tiles of `secs` each.
    struct Flat {
        tiles: usize,
        secs: f64,
        class: &'static str,
    }

    impl Workload for Flat {
        fn steady_demand(&self) -> Vec<f64> {
            vec![self.secs; self.tiles]
        }
        fn demand_at(&self, _slot: usize) -> Vec<f64> {
            vec![self.secs; self.tiles]
        }
        fn content_class(&self) -> &str {
            self.class
        }
    }

    fn quad_shards(n: usize) -> Vec<SimBackend> {
        (0..n)
            .map(|_| SimBackend::new(Platform::quad_core(), PowerModel::default()))
            .collect()
    }

    fn request(user: usize, arrival: usize, departure: Option<usize>) -> UserRequest {
        UserRequest {
            user,
            arrival_slot: arrival,
            profile: 0,
            class: DeadlineClass::Standard,
            departure_slot: departure,
        }
    }

    fn cfg(horizon: usize) -> OnlineConfig {
        OnlineConfig {
            horizon_slots: horizon,
            ..Default::default()
        }
    }

    #[test]
    fn admits_arrivals_and_honours_departures() {
        // One light user per core-quarter: everything fits shard 0.
        let workloads = [Flat {
            tiles: 2,
            secs: SLOT / 8.0,
            class: "brain",
        }];
        let trace = vec![request(0, 0, Some(48)), request(1, 10, None)];
        let report = serve_online(&cfg(96), &workloads, &trace, quad_shards(2));
        assert_eq!(report.arrivals, 2);
        assert_eq!(report.admissions, 2);
        assert_eq!(report.departures, 1);
        assert_eq!(report.evictions, 0);
        assert_eq!(report.active_at_end, 1);
        // User 1 arrived at slot 10 → admitted at boundary 16.
        let admit1 = report
            .events
            .iter()
            .find(|e| e.user == 1 && e.kind == EventKind::Admit)
            .expect("user 1 admitted");
        assert_eq!(admit1.slot, 16);
        assert!(report.mean_queue_wait_slots > 0.0);
        assert!(report.on_time_rate() > 0.99);
    }

    #[test]
    fn overloaded_strict_user_gets_evicted() {
        // A user demanding 6 core-slots on a 4-core shard: permanently
        // over capacity once forced in. Force it by setting headroom
        // low and capacity check off via a demand just under capacity
        // but real per-slot demand far above it.
        struct Lying;
        impl Workload for Lying {
            fn steady_demand(&self) -> Vec<f64> {
                vec![SLOT / 4.0; 4] // claims 1 core
            }
            fn demand_at(&self, _slot: usize) -> Vec<f64> {
                vec![SLOT * 1.5; 4] // actually needs 6 cores
            }
            fn content_class(&self) -> &str {
                "chaos"
            }
        }
        let trace = vec![UserRequest {
            user: 0,
            arrival_slot: 0,
            profile: 0,
            class: DeadlineClass::Strict,
            departure_slot: None,
        }];
        let report = serve_online(&cfg(240), &[Lying], &trace, quad_shards(1));
        assert_eq!(report.admissions, 1);
        assert_eq!(report.evictions, 1, "sustained misses must evict");
        assert_eq!(report.active_at_end, 0);
        let evict = report
            .events
            .iter()
            .find(|e| e.kind == EventKind::Evict)
            .expect("evicted");
        // The first window's miss (evaluated at the end of slot 23) is
        // visible at the very next GOP boundary.
        assert_eq!(evict.slot, 24);
    }

    #[test]
    fn impossible_demand_is_rejected_not_queued_forever() {
        let workloads = [Flat {
            tiles: 8,
            secs: SLOT,
            class: "huge",
        }]; // 8 cores × headroom — can never fit a 4-core shard.
        let trace = vec![request(0, 0, None)];
        let report = serve_online(&cfg(48), &workloads, &trace, quad_shards(2));
        assert_eq!(report.admissions, 0);
        assert_eq!(report.rejected, 1);
        assert_eq!(report.queued_at_end, 0);
    }

    #[test]
    fn full_shards_keep_requests_queued() {
        // Each user needs ~2.3 cores (2 tiles × SLOT × 1.15 headroom
        // × 24 fps / 24): two per 4-core shard. 5 users, 1 shard → 2
        // admitted, 3 queued (none reject: individually they fit).
        let workloads = [Flat {
            tiles: 2,
            secs: SLOT / 24.0 * 20.0,
            class: "busy",
        }];
        let trace: Vec<UserRequest> = (0..5).map(|u| request(u, 0, None)).collect();
        let report = serve_online(&cfg(48), &workloads, &trace, quad_shards(1));
        assert_eq!(report.admissions, 2);
        assert_eq!(report.rejected, 0);
        assert_eq!(report.queued_at_end, 3);
        assert_eq!(report.peak_concurrent_users, 2);
    }

    #[test]
    fn freed_capacity_is_reused() {
        // Shard fits two; a third waits until user 0 departs.
        let workloads = [Flat {
            tiles: 2,
            secs: SLOT / 24.0 * 20.0,
            class: "busy",
        }];
        let trace = vec![
            request(0, 0, Some(24)),
            request(1, 0, None),
            request(2, 0, None),
        ];
        let report = serve_online(&cfg(96), &workloads, &trace, quad_shards(1));
        assert_eq!(report.admissions, 3);
        let admit2 = report
            .events
            .iter()
            .find(|e| e.user == 2 && e.kind == EventKind::Admit)
            .expect("eventually admitted");
        assert_eq!(admit2.slot, 24, "admitted right at the departure boundary");
        assert!(report.mean_queue_wait_slots > 0.0);
    }

    #[test]
    fn least_loaded_spreads_round_robin_blocks() {
        // 4 heavy users (≈2.3 cores each) on two 4-core shards: least-
        // loaded fits two per shard; blind rotation repeatedly offers
        // a full shard while the other has room.
        let workloads = [Flat {
            tiles: 2,
            secs: SLOT / 24.0 * 20.0,
            class: "busy",
        }];
        let trace: Vec<UserRequest> = (0..4).map(|u| request(u, 0, None)).collect();
        let ll = serve_online(
            &OnlineConfig {
                shard_policy: ShardPolicy::LeastLoaded,
                ..cfg(48)
            },
            &workloads,
            &trace,
            quad_shards(2),
        );
        assert_eq!(ll.admissions, 4);
        assert_eq!(ll.shards[0].peak_users, 2);
        assert_eq!(ll.shards[1].peak_users, 2);
    }

    #[test]
    fn tail_arrivals_after_last_boundary_still_counted() {
        let workloads = [Flat {
            tiles: 1,
            secs: SLOT / 8.0,
            class: "x",
        }];
        // Boundaries at 0 and 8 only: slot 15 arrives after the last
        // one (still within the horizon), slot 16 is outside it.
        let trace = vec![request(0, 15, None), request(1, 16, None)];
        let report = serve_online(&cfg(16), &workloads, &trace, quad_shards(1));
        assert_eq!(report.arrivals, 1);
        assert_eq!(report.admissions, 0);
        assert_eq!(report.queued_at_end, 1);
    }

    #[test]
    fn heterogeneous_shards_admit_against_their_own_capacity() {
        use medvt_mpsoc::{CoreClass, FrequencySet};
        // Shard 0: a big.LITTLE socket (4×1.0 + 4×0.45 = 5.8 effective
        // cores); shard 1: a LITTLE-only socket (4×0.45 = 1.8).
        let bl = Platform::big_little();
        let little_only = Platform::with_classes(
            "LITTLE-only socket",
            1,
            vec![CoreClass::new(
                "LITTLE",
                4,
                FrequencySet::little_cluster(),
                0.45,
            )],
            50e-6,
        );
        let shards = vec![
            SimBackend::new(bl.socket_view(0), PowerModel::default()),
            SimBackend::new(little_only, PowerModel::default()),
        ];
        // Each user demands ~1.92 effective cores (headroom included):
        // beyond the little shard's 1.8, comfortably inside the big one.
        let workloads = [Flat {
            tiles: 2,
            secs: SLOT / 24.0 * 20.0,
            class: "busy",
        }];
        let trace: Vec<UserRequest> = (0..4).map(|u| request(u, 0, None)).collect();
        let report = serve_online(&cfg(48), &workloads, &trace, shards);
        // The 5.8-capacity shard fits three 1.92-core users; the
        // 1.8-capacity shard fits none — nothing may be admitted there.
        assert_eq!(report.admissions, 3);
        assert_eq!(report.shards[0].admitted, 3);
        assert_eq!(report.shards[1].admitted, 0);
        assert_eq!(report.rejected, 0, "demand fits the big shard");
        assert_eq!(report.queued_at_end, 1);
        // Capacities and socket labels are surfaced per shard.
        assert!((report.shards[0].capacity_cores - 5.8).abs() < 1e-9);
        assert!((report.shards[1].capacity_cores - 1.8).abs() < 1e-9);
        assert_eq!(report.shards[0].label, "big.LITTLE MPSoC (socket 0)");
        assert_eq!(report.shards[1].label, "LITTLE-only socket");
    }

    #[test]
    fn shard_reports_carry_socket_labels() {
        let workloads = [Flat {
            tiles: 2,
            secs: SLOT / 8.0,
            class: "brain",
        }];
        let platform = Platform::xeon_e5_2667_quad();
        let shards: Vec<SimBackend> = (0..platform.sockets)
            .map(|s| SimBackend::new(platform.socket_view(s), PowerModel::default()))
            .collect();
        let trace = vec![request(0, 0, None)];
        let report = serve_online(&cfg(48), &workloads, &trace, shards);
        let labels: Vec<&str> = report.shards.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(
            labels,
            vec![
                "4x Intel Xeon E5-2667 (socket 0)",
                "4x Intel Xeon E5-2667 (socket 1)",
                "4x Intel Xeon E5-2667 (socket 2)",
                "4x Intel Xeon E5-2667 (socket 3)",
            ],
            "every shard report names its socket"
        );
    }

    #[test]
    fn optimized_and_reference_controllers_agree() {
        // A trace exercising every decision kind: admits, waits,
        // voluntary departures, queue abandons, outright rejects, and
        // a deadline eviction (profile 3 under-reports its demand).
        struct Lying;
        impl Workload for Lying {
            fn steady_demand(&self) -> Vec<f64> {
                vec![SLOT / 4.0; 4]
            }
            fn demand_at(&self, _slot: usize) -> Vec<f64> {
                vec![SLOT * 1.5; 4]
            }
            fn content_class(&self) -> &str {
                "chaos"
            }
        }
        enum Mix {
            Flat(Flat),
            Lying(Lying),
        }
        impl Workload for Mix {
            fn steady_demand(&self) -> Vec<f64> {
                match self {
                    Mix::Flat(w) => w.steady_demand(),
                    Mix::Lying(w) => w.steady_demand(),
                }
            }
            fn demand_at(&self, slot: usize) -> Vec<f64> {
                match self {
                    Mix::Flat(w) => w.demand_at(slot),
                    Mix::Lying(w) => w.demand_at(slot),
                }
            }
            fn content_class(&self) -> &str {
                match self {
                    Mix::Flat(w) => w.content_class(),
                    Mix::Lying(w) => w.content_class(),
                }
            }
            fn steady(&self) -> bool {
                // Flat profiles are honestly steady; the lying one is
                // slot-invariant too, but keep it on the re-estimated
                // path so both refresh modes are exercised.
                matches!(self, Mix::Flat(_))
            }
        }
        let workloads = [
            Mix::Flat(Flat {
                tiles: 2,
                secs: SLOT / 24.0 * 20.0,
                class: "busy",
            }),
            Mix::Flat(Flat {
                tiles: 1,
                secs: SLOT / 8.0,
                class: "light",
            }),
            Mix::Flat(Flat {
                tiles: 8,
                secs: SLOT,
                class: "huge",
            }),
            Mix::Lying(Lying),
        ];
        let mut trace = vec![
            request(0, 0, Some(48)), // busy, departs while active
            request(1, 0, None),     // busy
            request(2, 1, None),     // busy — waits behind the first two
            UserRequest {
                profile: 1,
                ..request(3, 2, Some(20))
            }, // light, may abandon
            UserRequest {
                profile: 2,
                ..request(4, 9, None)
            }, // huge → rejected
            UserRequest {
                profile: 3,
                class: DeadlineClass::Strict,
                ..request(5, 9, None)
            }, // lying → evicted
            UserRequest {
                profile: 1,
                ..request(6, 30, None)
            }, // light, late
            request(7, 60, Some(70)), // busy, abandons if stuck
        ];
        trace.sort_by_key(|r| r.arrival_slot);
        for policy in [
            ShardPolicy::LeastLoaded,
            ShardPolicy::RoundRobin,
            ShardPolicy::ContentAffinity,
        ] {
            let cfg = OnlineConfig {
                shard_policy: policy,
                horizon_slots: 120,
                ..cfg(120)
            };
            let fast = serve_online(&cfg, &workloads, &trace, quad_shards(2));
            let slow = crate::serve_online_reference(&cfg, &workloads, &trace, quad_shards(2));
            assert_eq!(fast.events, slow.events, "{policy:?} decision stream");
            // Everything but the controller wall costs is bit-equal
            // (the reference replans every boundary, the fast path
            // only when membership or demand changed).
            let strip = |mut r: OnlineReport| {
                r.controller = ControllerTiming::default();
                r
            };
            assert_eq!(
                strip(fast.clone()),
                strip(slow.clone()),
                "{policy:?} report"
            );
            assert!(fast.controller.replans <= slow.controller.replans);
            assert_eq!(fast.controller.decisions, slow.controller.decisions);
            assert_eq!(fast.controller.boundaries, slow.controller.boundaries);
            assert!(fast.evictions >= 1, "{policy:?} must exercise eviction");
            assert!(fast.rejected >= 1, "{policy:?} must exercise rejection");
            assert!(fast.departures >= 1, "{policy:?} must exercise departure");
        }
    }

    #[test]
    fn budget_caps_admissions_and_departures_free_headroom() {
        // Each user demands ~1.917 cores; two 4-core shards hold four.
        // A 4-credit window budget at 1 credit per core-window holds
        // exactly two (3.83 credits) — cost, not capacity, binds.
        let workloads = [Flat {
            tiles: 2,
            secs: SLOT / 24.0 * 20.0,
            class: "busy",
        }];
        let trace = vec![
            request(0, 0, Some(24)),
            request(1, 0, None),
            request(2, 0, None),
            request(3, 0, None),
        ];
        let budgeted = OnlineConfig {
            cost: CostPlan {
                credits_per_core_window: 1.0,
                budget_credits_per_window: 4.0,
                degrade_on_evict: false,
            },
            ..cfg(96)
        };
        let report = serve_online(&budgeted, &workloads, &trace, quad_shards(2));
        assert_eq!(report.admissions, 3, "two upfront, one after the departure");
        assert_eq!(report.rejected, 0, "budget waits, it never rejects");
        assert_eq!(report.departures, 1);
        assert_eq!(report.queued_at_end, 1);
        assert_eq!(report.active_at_end, 2);
        let admit_slots: Vec<usize> = report
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Admit)
            .map(|e| e.slot)
            .collect();
        assert_eq!(
            admit_slots,
            vec![0, 0, 24],
            "third admit lands exactly when the departure frees credits"
        );
        // Without the budget the same trace fills both shards at 0.
        let free = serve_online(&cfg(96), &workloads, &trace, quad_shards(2));
        assert_eq!(free.admissions, 4);
    }

    #[test]
    fn huge_finite_budget_changes_nothing() {
        let workloads = [Flat {
            tiles: 2,
            secs: SLOT / 24.0 * 20.0,
            class: "busy",
        }];
        let trace: Vec<UserRequest> = (0..5).map(|u| request(u, 0, None)).collect();
        let roomy = OnlineConfig {
            cost: CostPlan {
                credits_per_core_window: 1.0,
                budget_credits_per_window: 1e9,
                degrade_on_evict: false,
            },
            ..cfg(96)
        };
        let budgeted = serve_online(&roomy, &workloads, &trace, quad_shards(2));
        let free = serve_online(&cfg(96), &workloads, &trace, quad_shards(2));
        assert_eq!(budgeted.events, free.events, "a slack budget never binds");
    }

    #[test]
    fn evicted_user_degrades_down_the_deadline_ladder() {
        // The lying profile misses every window once admitted. With
        // degradation on, a Strict user walks the whole ladder: each
        // eviction immediately requeues one class lower (same
        // boundary re-admission), and the miss streak keeps growing,
        // so tolerances 1 → 2 → 4 windows evict at slots 24 → 48 →
        // 96. After BestEffort there is nowhere lower: dropped.
        struct Lying;
        impl Workload for Lying {
            fn steady_demand(&self) -> Vec<f64> {
                vec![SLOT / 4.0; 4]
            }
            fn demand_at(&self, _slot: usize) -> Vec<f64> {
                vec![SLOT * 1.5; 4]
            }
            fn content_class(&self) -> &str {
                "chaos"
            }
        }
        let trace = vec![UserRequest {
            user: 0,
            arrival_slot: 0,
            profile: 0,
            class: DeadlineClass::Strict,
            departure_slot: None,
        }];
        let degrading = OnlineConfig {
            cost: CostPlan {
                degrade_on_evict: true,
                ..CostPlan::unlimited()
            },
            ..cfg(240)
        };
        let report = serve_online(&degrading, &[Lying], &trace, quad_shards(1));
        assert_eq!(report.admissions, 3, "one admission per deadline class");
        assert_eq!(report.evictions, 3);
        assert_eq!(report.active_at_end, 0);
        assert_eq!(report.queued_at_end, 0);
        let kinds_and_slots: Vec<(EventKind, usize)> =
            report.events.iter().map(|e| (e.kind, e.slot)).collect();
        assert_eq!(
            kinds_and_slots,
            vec![
                (EventKind::Admit, 0),
                (EventKind::Evict, 24),
                (EventKind::Downgrade, 24),
                (EventKind::Admit, 24),
                (EventKind::Evict, 48),
                (EventKind::Downgrade, 48),
                (EventKind::Admit, 48),
                (EventKind::Evict, 96),
            ],
            "Downgrade rides immediately behind its Evict; BestEffort is final"
        );
        // Without degradation the same trace is one admit, one evict.
        let plain = serve_online(&cfg(240), &[Lying], &trace, quad_shards(1));
        assert_eq!(plain.admissions, 1);
        assert_eq!(plain.evictions, 1);
    }

    #[test]
    fn zero_horizon_is_a_clean_noop() {
        let workloads = [Flat {
            tiles: 1,
            secs: SLOT / 8.0,
            class: "x",
        }];
        let report = serve_online(&cfg(0), &workloads, &[], quad_shards(2));
        assert_eq!(report.admissions, 0);
        assert_eq!(report.avg_concurrent_users, 0.0);
        assert_eq!(report.on_time_rate(), 0.0);
        assert!(report.events.is_empty());
    }
}

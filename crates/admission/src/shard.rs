//! Shard selection: which socket a newly admitted user lands on.
//!
//! Shards are per-socket serving domains (one `LoopDriver` + backend
//! each); loads are tracked in fractional cores — the sum of admitted
//! users' Algorithm 2 line 1 demands, headroom included.

use serde::{Deserialize, Serialize};

/// Pluggable placement policy for admitted users.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ShardPolicy {
    /// Place on the least-loaded shard with room (best-fit balance;
    /// the default).
    #[default]
    LeastLoaded,
    /// Blind rotation: each considered request is offered exactly one
    /// shard — the next in rotation — and stays queued when that shard
    /// is full, even if others have room. The classic cheap dispatcher
    /// the related cloud-transcoding work benchmarks against.
    RoundRobin,
    /// Texture-class affinity: users of one content class gravitate to
    /// one socket (warm per-class LUTs and caches), falling back to
    /// least-loaded when the preferred socket is full.
    ContentAffinity,
}

impl ShardPolicy {
    /// Display label.
    pub const fn label(&self) -> &'static str {
        match self {
            ShardPolicy::LeastLoaded => "least-loaded",
            ShardPolicy::RoundRobin => "round-robin",
            ShardPolicy::ContentAffinity => "content-affinity",
        }
    }
}

/// FNV-1a — stable across runs and platforms, so affinity decisions
/// replay identically.
fn class_hash(class: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in class.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Stateful shard chooser (rotation pointer for round-robin).
#[derive(Debug, Clone)]
pub struct Sharder {
    policy: ShardPolicy,
    rotation: usize,
}

impl Sharder {
    /// A chooser for `policy`.
    pub fn new(policy: ShardPolicy) -> Self {
        Self {
            policy,
            rotation: 0,
        }
    }

    /// The policy in use.
    pub fn policy(&self) -> ShardPolicy {
        self.policy
    }

    /// Least-loaded shard where `demand` still fits under `capacity`.
    fn least_loaded(loads: &[f64], capacity: f64, demand: f64) -> Option<usize> {
        loads
            .iter()
            .enumerate()
            .filter(|(_, &load)| load + demand <= capacity + 1e-9)
            .min_by(|(_, a), (_, b)| a.total_cmp(b))
            .map(|(k, _)| k)
    }

    /// Picks a shard for a user of fractional-core `demand` and
    /// content `class`, given current per-shard `loads` and the
    /// per-shard core `capacity`. `None`: no shard (under this
    /// policy's rules) has room right now.
    pub fn pick(
        &mut self,
        loads: &[f64],
        capacity: f64,
        demand: f64,
        class: &str,
    ) -> Option<usize> {
        assert!(!loads.is_empty(), "need at least one shard");
        match self.policy {
            ShardPolicy::LeastLoaded => Self::least_loaded(loads, capacity, demand),
            ShardPolicy::RoundRobin => {
                let shard = self.rotation % loads.len();
                self.rotation = self.rotation.wrapping_add(1);
                (loads[shard] + demand <= capacity + 1e-9).then_some(shard)
            }
            ShardPolicy::ContentAffinity => {
                let preferred = (class_hash(class) % loads.len() as u64) as usize;
                if loads[preferred] + demand <= capacity + 1e-9 {
                    Some(preferred)
                } else {
                    Self::least_loaded(loads, capacity, demand)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn least_loaded_picks_minimum_that_fits() {
        let mut s = Sharder::new(ShardPolicy::LeastLoaded);
        let loads = [6.0, 2.0, 7.5, 4.0];
        assert_eq!(s.pick(&loads, 8.0, 1.0, "brain"), Some(1));
        // Demand of 5 only fits shard 1.
        assert_eq!(s.pick(&loads, 8.0, 5.5, "brain"), Some(1));
        // Nothing fits a 7-core user.
        assert_eq!(s.pick(&loads, 8.0, 7.0, "brain"), None);
    }

    #[test]
    fn round_robin_is_blind_to_load() {
        let mut s = Sharder::new(ShardPolicy::RoundRobin);
        let loads = [7.9, 0.0, 0.0];
        // First offer goes to shard 0 even though it is nearly full —
        // the request waits rather than spilling elsewhere.
        assert_eq!(s.pick(&loads, 8.0, 1.0, "x"), None);
        // Rotation advanced: the next offers land on empty shards.
        assert_eq!(s.pick(&loads, 8.0, 1.0, "x"), Some(1));
        assert_eq!(s.pick(&loads, 8.0, 1.0, "x"), Some(2));
        assert_eq!(s.pick(&loads, 8.0, 1.0, "x"), None);
    }

    #[test]
    fn content_affinity_is_sticky_then_falls_back() {
        let mut s = Sharder::new(ShardPolicy::ContentAffinity);
        let empty = [0.0, 0.0, 0.0, 0.0];
        let home = s.pick(&empty, 8.0, 1.0, "cardiac").expect("fits");
        // Same class → same socket, deterministically.
        for _ in 0..4 {
            assert_eq!(s.pick(&empty, 8.0, 1.0, "cardiac"), Some(home));
        }
        // Preferred socket full → least-loaded fallback.
        let mut loads = [0.0; 4];
        loads[home] = 8.0;
        let fallback = s.pick(&loads, 8.0, 1.0, "cardiac").expect("fallback");
        assert_ne!(fallback, home);
    }
}

//! Shard selection: which socket a newly admitted user lands on.
//!
//! Shards are per-socket serving domains (one `LoopDriver` + backend
//! each); loads are tracked in fractional cores — the sum of admitted
//! users' Algorithm 2 line 1 demands, headroom included.

use serde::{Deserialize, Serialize};

/// Pluggable placement policy for admitted users.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ShardPolicy {
    /// Place on the least-loaded shard with room (best-fit balance;
    /// the default).
    #[default]
    LeastLoaded,
    /// Blind rotation: each considered request is offered exactly one
    /// shard — the next in rotation — and stays queued when that shard
    /// is full, even if others have room. The classic cheap dispatcher
    /// the related cloud-transcoding work benchmarks against.
    RoundRobin,
    /// Texture-class affinity: users of one content class gravitate to
    /// one socket (warm per-class LUTs and caches), falling back to
    /// least-loaded when the preferred socket is full.
    ContentAffinity,
}

impl ShardPolicy {
    /// Display label.
    pub const fn label(&self) -> &'static str {
        match self {
            ShardPolicy::LeastLoaded => "least-loaded",
            ShardPolicy::RoundRobin => "round-robin",
            ShardPolicy::ContentAffinity => "content-affinity",
        }
    }
}

/// FNV-1a — stable across runs and platforms, so affinity decisions
/// replay identically.
fn class_hash(class: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in class.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Stateful shard chooser (rotation pointer for round-robin).
#[derive(Debug, Clone)]
pub struct Sharder {
    policy: ShardPolicy,
    rotation: usize,
}

impl Sharder {
    /// A chooser for `policy`.
    pub fn new(policy: ShardPolicy) -> Self {
        Self {
            policy,
            rotation: 0,
        }
    }

    /// The policy in use.
    pub fn policy(&self) -> ShardPolicy {
        self.policy
    }

    /// Least-*utilized* shard where `demand` still fits under that
    /// shard's capacity. Utilization (`load / capacity`) and absolute
    /// load order identically when shards are homogeneous; on
    /// heterogeneous shards of different capacity it keeps big and
    /// small sockets proportionally filled.
    fn least_loaded(loads: &[f64], capacities: &[f64], demand: f64) -> Option<usize> {
        loads
            .iter()
            .zip(capacities)
            .enumerate()
            .filter(|(_, (&load, &cap))| load + demand <= cap + 1e-9)
            .min_by(|(_, (a, ca)), (_, (b, cb))| (*a / *ca).total_cmp(&(*b / *cb)))
            .map(|(k, _)| k)
    }

    /// Picks a shard for a user of fractional-core `demand` and
    /// content `class`, given current per-shard `loads` and per-shard
    /// effective core `capacities` (sum of core speed factors — shards
    /// may differ on heterogeneous platforms). `None`: no shard (under
    /// this policy's rules) has room right now.
    ///
    /// # Panics
    ///
    /// Panics when `loads` is empty or `capacities` has a different
    /// length.
    pub fn pick(
        &mut self,
        loads: &[f64],
        capacities: &[f64],
        demand: f64,
        class: &str,
    ) -> Option<usize> {
        assert!(!loads.is_empty(), "need at least one shard");
        assert_eq!(
            loads.len(),
            capacities.len(),
            "one capacity per shard required"
        );
        match self.policy {
            ShardPolicy::LeastLoaded => Self::least_loaded(loads, capacities, demand),
            ShardPolicy::RoundRobin => {
                let shard = self.rotation % loads.len();
                self.rotation = self.rotation.wrapping_add(1);
                (loads[shard] + demand <= capacities[shard] + 1e-9).then_some(shard)
            }
            ShardPolicy::ContentAffinity => {
                let preferred = (class_hash(class) % loads.len() as u64) as usize;
                if loads[preferred] + demand <= capacities[preferred] + 1e-9 {
                    Some(preferred)
                } else {
                    Self::least_loaded(loads, capacities, demand)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAP8: [f64; 4] = [8.0; 4];

    #[test]
    fn least_loaded_picks_minimum_that_fits() {
        let mut s = Sharder::new(ShardPolicy::LeastLoaded);
        let loads = [6.0, 2.0, 7.5, 4.0];
        assert_eq!(s.pick(&loads, &CAP8, 1.0, "brain"), Some(1));
        // Demand of 5 only fits shard 1.
        assert_eq!(s.pick(&loads, &CAP8, 5.5, "brain"), Some(1));
        // Nothing fits a 7-core user.
        assert_eq!(s.pick(&loads, &CAP8, 7.0, "brain"), None);
    }

    #[test]
    fn round_robin_is_blind_to_load() {
        let mut s = Sharder::new(ShardPolicy::RoundRobin);
        let loads = [7.9, 0.0, 0.0];
        let caps = [8.0; 3];
        // First offer goes to shard 0 even though it is nearly full —
        // the request waits rather than spilling elsewhere.
        assert_eq!(s.pick(&loads, &caps, 1.0, "x"), None);
        // Rotation advanced: the next offers land on empty shards.
        assert_eq!(s.pick(&loads, &caps, 1.0, "x"), Some(1));
        assert_eq!(s.pick(&loads, &caps, 1.0, "x"), Some(2));
        assert_eq!(s.pick(&loads, &caps, 1.0, "x"), None);
    }

    #[test]
    fn content_affinity_is_sticky_then_falls_back() {
        let mut s = Sharder::new(ShardPolicy::ContentAffinity);
        let empty = [0.0, 0.0, 0.0, 0.0];
        let home = s.pick(&empty, &CAP8, 1.0, "cardiac").expect("fits");
        // Same class → same socket, deterministically.
        for _ in 0..4 {
            assert_eq!(s.pick(&empty, &CAP8, 1.0, "cardiac"), Some(home));
        }
        // Preferred socket full → least-loaded fallback.
        let mut loads = [0.0; 4];
        loads[home] = 8.0;
        let fallback = s.pick(&loads, &CAP8, 1.0, "cardiac").expect("fallback");
        assert_ne!(fallback, home);
    }

    #[test]
    fn heterogeneous_capacities_fill_proportionally() {
        // A big shard (8 effective cores) and a little one (2): least-
        // loaded balances *utilization*, so the empty little shard wins
        // over a lightly-used big one, but a demand exceeding its
        // remaining capacity lands on the big shard.
        let mut s = Sharder::new(ShardPolicy::LeastLoaded);
        let caps = [8.0, 2.0];
        assert_eq!(s.pick(&[1.0, 0.0], &caps, 1.0, "x"), Some(1));
        // Both at 50% utilization: tie resolves to the first shard.
        assert_eq!(s.pick(&[4.0, 1.0], &caps, 1.0, "x"), Some(0));
        // 3-core demand cannot fit the little shard at all.
        assert_eq!(s.pick(&[0.0, 0.0], &caps, 3.0, "x"), Some(0));
        // Round-robin still respects per-shard capacity.
        let mut rr = Sharder::new(ShardPolicy::RoundRobin);
        assert_eq!(rr.pick(&[0.0, 0.0], &caps, 3.0, "x"), Some(0));
        assert_eq!(rr.pick(&[0.0, 0.0], &caps, 3.0, "x"), None);
    }
}

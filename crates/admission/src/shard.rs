//! Shard selection: which socket a newly admitted user lands on.
//!
//! Shards are per-socket serving domains (one `LoopDriver` + backend
//! each); loads are tracked in fractional cores — the sum of admitted
//! users' Algorithm 2 line 1 demands, headroom included.

use serde::{Deserialize, Serialize};

/// Pluggable placement policy for admitted users.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ShardPolicy {
    /// Place on the least-loaded shard with room (best-fit balance;
    /// the default).
    #[default]
    LeastLoaded,
    /// Blind rotation: each considered request is offered exactly one
    /// shard — the next in rotation — and stays queued when that shard
    /// is full, even if others have room. The classic cheap dispatcher
    /// the related cloud-transcoding work benchmarks against.
    RoundRobin,
    /// Texture-class affinity: users of one content class gravitate to
    /// one socket (warm per-class LUTs and caches), falling back to
    /// least-loaded when the preferred socket is full.
    ContentAffinity,
}

impl ShardPolicy {
    /// Display label.
    pub const fn label(&self) -> &'static str {
        match self {
            ShardPolicy::LeastLoaded => "least-loaded",
            ShardPolicy::RoundRobin => "round-robin",
            ShardPolicy::ContentAffinity => "content-affinity",
        }
    }
}

/// FNV-1a — stable across runs and platforms, so affinity decisions
/// replay identically.
fn class_hash(class: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in class.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Incrementally tracked per-shard state for the attached mode: loads
/// and utilizations are updated on admit/release instead of being
/// recomputed from member lists at every decision.
#[derive(Debug, Clone)]
struct Tracked {
    loads: Vec<f64>,
    capacities: Vec<f64>,
    /// `loads[s] / capacities[s]`, maintained with exactly that
    /// expression so cached values stay bitwise-equal to a fresh
    /// division — the least-loaded tie-break depends on it.
    utilization: Vec<f64>,
}

/// Stateful shard chooser (rotation pointer for round-robin, plus
/// optionally *attached* per-shard load tracking).
#[derive(Debug, Clone)]
pub struct Sharder {
    policy: ShardPolicy,
    rotation: usize,
    tracked: Option<Tracked>,
}

impl Sharder {
    /// A chooser for `policy`.
    pub fn new(policy: ShardPolicy) -> Self {
        Self {
            policy,
            rotation: 0,
            tracked: None,
        }
    }

    /// The policy in use.
    pub fn policy(&self) -> ShardPolicy {
        self.policy
    }

    /// Least-*utilized* shard where `demand` still fits under that
    /// shard's capacity. Utilization (`load / capacity`) and absolute
    /// load order identically when shards are homogeneous; on
    /// heterogeneous shards of different capacity it keeps big and
    /// small sockets proportionally filled.
    fn least_loaded(loads: &[f64], capacities: &[f64], demand: f64) -> Option<usize> {
        loads
            .iter()
            .zip(capacities)
            .enumerate()
            .filter(|(_, (&load, &cap))| load + demand <= cap + 1e-9)
            .min_by(|(_, (a, ca)), (_, (b, cb))| (*a / *ca).total_cmp(&(*b / *cb)))
            .map(|(k, _)| k)
    }

    /// Picks a shard for a user of fractional-core `demand` and
    /// content `class`, given current per-shard `loads` and per-shard
    /// effective core `capacities` (sum of core speed factors — shards
    /// may differ on heterogeneous platforms). `None`: no shard (under
    /// this policy's rules) has room right now.
    ///
    /// # Panics
    ///
    /// Panics when `loads` is empty or `capacities` has a different
    /// length.
    pub fn pick(
        &mut self,
        loads: &[f64],
        capacities: &[f64],
        demand: f64,
        class: &str,
    ) -> Option<usize> {
        assert!(!loads.is_empty(), "need at least one shard");
        assert_eq!(
            loads.len(),
            capacities.len(),
            "one capacity per shard required"
        );
        match self.policy {
            ShardPolicy::LeastLoaded => Self::least_loaded(loads, capacities, demand),
            ShardPolicy::RoundRobin => {
                let shard = self.rotation % loads.len();
                self.rotation = self.rotation.wrapping_add(1);
                (loads[shard] + demand <= capacities[shard] + 1e-9).then_some(shard)
            }
            ShardPolicy::ContentAffinity => {
                let preferred = (class_hash(class) % loads.len() as u64) as usize;
                if loads[preferred] + demand <= capacities[preferred] + 1e-9 {
                    Some(preferred)
                } else {
                    Self::least_loaded(loads, capacities, demand)
                }
            }
        }
    }

    /// Attaches incrementally tracked load state (all shards start
    /// empty). From here on, [`pick_attached`](Self::pick_attached) /
    /// [`admit_load`](Self::admit_load) /
    /// [`release_load`](Self::release_load) maintain loads and
    /// utilizations in place — decisions are bitwise-identical to
    /// [`pick`](Self::pick) with the same loads, without rebuilding
    /// anything per decision.
    ///
    /// # Panics
    ///
    /// Panics when `capacities` is empty or contains a non-positive
    /// entry.
    pub fn attach(&mut self, capacities: Vec<f64>) {
        assert!(!capacities.is_empty(), "need at least one shard");
        assert!(
            capacities.iter().all(|c| c.is_finite() && *c > 0.0),
            "shard capacities must be positive and finite"
        );
        let n = capacities.len();
        self.tracked = Some(Tracked {
            loads: vec![0.0; n],
            capacities,
            utilization: vec![0.0; n],
        });
    }

    fn tracked(&self) -> &Tracked {
        self.tracked.as_ref().expect("attach() before attached ops")
    }

    /// Current per-shard loads (attached mode).
    ///
    /// # Panics
    ///
    /// Panics when [`attach`](Self::attach) has not been called.
    pub fn loads(&self) -> &[f64] {
        &self.tracked().loads
    }

    /// Adds an admitted user's fractional-core `demand` to `shard`.
    ///
    /// # Panics
    ///
    /// Panics when [`attach`](Self::attach) has not been called.
    pub fn admit_load(&mut self, shard: usize, demand: f64) {
        let t = self.tracked.as_mut().expect("attach() before attached ops");
        t.loads[shard] += demand;
        t.utilization[shard] = t.loads[shard] / t.capacities[shard];
    }

    /// Removes a departing/evicted user's `demand` from `shard`.
    ///
    /// # Panics
    ///
    /// Panics when [`attach`](Self::attach) has not been called.
    pub fn release_load(&mut self, shard: usize, demand: f64) {
        let t = self.tracked.as_mut().expect("attach() before attached ops");
        t.loads[shard] -= demand;
        t.utilization[shard] = t.loads[shard] / t.capacities[shard];
    }

    /// True when some shard could fit `demand` right now — the O(1)
    /// early-out probe: when even the smallest queued demand fits
    /// nowhere, the whole admission scan can be skipped (load growth
    /// is monotone in demand, so nothing larger fits either).
    ///
    /// # Panics
    ///
    /// Panics when [`attach`](Self::attach) has not been called.
    pub fn any_fits(&self, demand: f64) -> bool {
        let t = self.tracked();
        t.loads
            .iter()
            .zip(&t.capacities)
            .any(|(&load, &cap)| load + demand <= cap + 1e-9)
    }

    /// [`pick`](Self::pick) against the attached load state.
    ///
    /// # Panics
    ///
    /// Panics when [`attach`](Self::attach) has not been called.
    pub fn pick_attached(&mut self, demand: f64, class: &str) -> Option<usize> {
        let t = self.tracked.as_ref().expect("attach() before attached ops");
        match self.policy {
            ShardPolicy::LeastLoaded => Self::least_loaded_tracked(t, demand),
            ShardPolicy::RoundRobin => {
                let shard = self.rotation % t.loads.len();
                self.rotation = self.rotation.wrapping_add(1);
                (t.loads[shard] + demand <= t.capacities[shard] + 1e-9).then_some(shard)
            }
            ShardPolicy::ContentAffinity => {
                let preferred = (class_hash(class) % t.loads.len() as u64) as usize;
                if t.loads[preferred] + demand <= t.capacities[preferred] + 1e-9 {
                    Some(preferred)
                } else {
                    Self::least_loaded_tracked(t, demand)
                }
            }
        }
    }

    /// Cached-utilization form of [`least_loaded`](Self::least_loaded):
    /// the same filter and ordering expressions over bitwise-identical
    /// values, minus the per-comparison divisions.
    fn least_loaded_tracked(t: &Tracked, demand: f64) -> Option<usize> {
        t.loads
            .iter()
            .zip(&t.capacities)
            .enumerate()
            .filter(|(_, (&load, &cap))| load + demand <= cap + 1e-9)
            .min_by(|(a, _), (b, _)| t.utilization[*a].total_cmp(&t.utilization[*b]))
            .map(|(k, _)| k)
    }

    /// Accounts for `considered` requests being skipped without
    /// individual [`pick_attached`](Self::pick_attached) calls (the
    /// early-out path): round-robin advances its rotation exactly as
    /// if each had been offered a shard, so decision streams stay
    /// identical with the non-early-out controller.
    pub fn skip_all(&mut self, considered: usize) {
        if self.policy == ShardPolicy::RoundRobin {
            self.rotation = self.rotation.wrapping_add(considered);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAP8: [f64; 4] = [8.0; 4];

    #[test]
    fn least_loaded_picks_minimum_that_fits() {
        let mut s = Sharder::new(ShardPolicy::LeastLoaded);
        let loads = [6.0, 2.0, 7.5, 4.0];
        assert_eq!(s.pick(&loads, &CAP8, 1.0, "brain"), Some(1));
        // Demand of 5 only fits shard 1.
        assert_eq!(s.pick(&loads, &CAP8, 5.5, "brain"), Some(1));
        // Nothing fits a 7-core user.
        assert_eq!(s.pick(&loads, &CAP8, 7.0, "brain"), None);
    }

    #[test]
    fn round_robin_is_blind_to_load() {
        let mut s = Sharder::new(ShardPolicy::RoundRobin);
        let loads = [7.9, 0.0, 0.0];
        let caps = [8.0; 3];
        // First offer goes to shard 0 even though it is nearly full —
        // the request waits rather than spilling elsewhere.
        assert_eq!(s.pick(&loads, &caps, 1.0, "x"), None);
        // Rotation advanced: the next offers land on empty shards.
        assert_eq!(s.pick(&loads, &caps, 1.0, "x"), Some(1));
        assert_eq!(s.pick(&loads, &caps, 1.0, "x"), Some(2));
        assert_eq!(s.pick(&loads, &caps, 1.0, "x"), None);
    }

    #[test]
    fn content_affinity_is_sticky_then_falls_back() {
        let mut s = Sharder::new(ShardPolicy::ContentAffinity);
        let empty = [0.0, 0.0, 0.0, 0.0];
        let home = s.pick(&empty, &CAP8, 1.0, "cardiac").expect("fits");
        // Same class → same socket, deterministically.
        for _ in 0..4 {
            assert_eq!(s.pick(&empty, &CAP8, 1.0, "cardiac"), Some(home));
        }
        // Preferred socket full → least-loaded fallback.
        let mut loads = [0.0; 4];
        loads[home] = 8.0;
        let fallback = s.pick(&loads, &CAP8, 1.0, "cardiac").expect("fallback");
        assert_ne!(fallback, home);
    }

    #[test]
    fn attached_picks_match_stateless_picks() {
        // Replay one admit/release trace through both interfaces under
        // every policy: decisions must be identical call for call.
        let caps = vec![8.0, 2.0, 5.8, 8.0];
        // (demand, class, optional (shard, demand) released beforehand).
        type Step = (f64, &'static str, Option<(usize, f64)>);
        let trace: [Step; 8] = [
            (1.0, "brain", None),
            (2.5, "cardiac", None),
            (1.0, "spine", Some((0, 1.0))),
            (6.0, "brain", None),
            (0.5, "cardiac", Some((2, 0.5))),
            (3.0, "spine", None),
            (9.0, "brain", None), // fits nowhere
            (1.5, "cardiac", None),
        ];
        for policy in [
            ShardPolicy::LeastLoaded,
            ShardPolicy::RoundRobin,
            ShardPolicy::ContentAffinity,
        ] {
            let mut stateless = Sharder::new(policy);
            let mut attached = Sharder::new(policy);
            attached.attach(caps.clone());
            let mut loads = vec![0.0f64; caps.len()];
            for &(demand, class, release) in &trace {
                if let Some((shard, d)) = release {
                    loads[shard] -= d;
                    attached.release_load(shard, d);
                }
                let a = stateless.pick(&loads, &caps, demand, class);
                let b = attached.pick_attached(demand, class);
                assert_eq!(a, b, "{policy:?} diverged on demand {demand}");
                assert_eq!(
                    attached.any_fits(demand),
                    loads
                        .iter()
                        .zip(&caps)
                        .any(|(&l, &c)| l + demand <= c + 1e-9)
                );
                if let Some(shard) = a {
                    loads[shard] += demand;
                    attached.admit_load(shard, demand);
                }
            }
            for (x, y) in loads.iter().zip(attached.loads()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn skip_all_advances_round_robin_like_individual_offers() {
        let caps = vec![1.0; 3];
        let mut a = Sharder::new(ShardPolicy::RoundRobin);
        let mut b = Sharder::new(ShardPolicy::RoundRobin);
        a.attach(caps.clone());
        b.attach(caps);
        for _ in 0..5 {
            b.pick_attached(9.0, "x"); // nothing ever fits
        }
        a.skip_all(5);
        // Rotations now aligned: the next offers match.
        assert_eq!(a.pick_attached(0.5, "x"), b.pick_attached(0.5, "x"));
    }

    #[test]
    fn heterogeneous_capacities_fill_proportionally() {
        // A big shard (8 effective cores) and a little one (2): least-
        // loaded balances *utilization*, so the empty little shard wins
        // over a lightly-used big one, but a demand exceeding its
        // remaining capacity lands on the big shard.
        let mut s = Sharder::new(ShardPolicy::LeastLoaded);
        let caps = [8.0, 2.0];
        assert_eq!(s.pick(&[1.0, 0.0], &caps, 1.0, "x"), Some(1));
        // Both at 50% utilization: tie resolves to the first shard.
        assert_eq!(s.pick(&[4.0, 1.0], &caps, 1.0, "x"), Some(0));
        // 3-core demand cannot fit the little shard at all.
        assert_eq!(s.pick(&[0.0, 0.0], &caps, 3.0, "x"), Some(0));
        // Round-robin still respects per-shard capacity.
        let mut rr = Sharder::new(ShardPolicy::RoundRobin);
        assert_eq!(rr.pick(&[0.0, 0.0], &caps, 3.0, "x"), Some(0));
        assert_eq!(rr.pick(&[0.0, 0.0], &caps, 3.0, "x"), None);
    }
}

//! Cost/QoS-aware provisioning: which priced platform mix to rent for
//! a forecast load.
//!
//! The Li et al. cloud-transcoding studies (PAPERS.md) pick
//! heterogeneous VM types against a cost budget and QoS deadlines.
//! Here the "VM types" are [`ProvisionPreset`]s — platform presets
//! priced per GOP window by `medvt_mpsoc::CostModel` — and a
//! [`ProvisionPolicy`] greedily rents instances until the forecast
//! demand is covered or the budget runs out. The rented fleet becomes
//! the shard set of [`serve_online`](crate::serve_online), whose
//! [`CostPlan`](crate::CostPlan) then enforces the *serving-side*
//! budget and degrades evicted users down the deadline ladder.
//!
//! Every rental emits a `Provisioned` telemetry event on the control
//! track, and [`replay_cost`] re-derives the per-window spend
//! trajectory from a finished run's decision stream — bitwise equal
//! to the controller's internal ledger, so budget-respect is
//! checkable after the fact.

use crate::request::UserRequest;
use crate::serve::{EventKind, OnlineConfig, OnlineReport, Workload};
use medvt_mpsoc::{CoreClass, CostModel, FrequencySet, Platform, PowerModel};
use medvt_runtime::SimBackend;
use medvt_telemetry::{Event as TelEvent, EventKind as TelKind, Recorder, CONTROL_TRACK};
use serde::Serialize;
use std::collections::BTreeMap;

/// One rentable platform preset with its per-window price tag.
#[derive(Debug, Clone, PartialEq)]
pub struct ProvisionPreset {
    /// Catalogue key ("xeon-socket", "little-cluster", …).
    pub name: String,
    /// The platform one rented instance provides (one serving shard).
    pub platform: Platform,
    /// Default power model for classes without their own.
    pub power: PowerModel,
    /// Rental price in whole credits per GOP window.
    pub price_credits: u64,
    /// Effective capacity in reference cores
    /// ([`Platform::speed_capacity`]).
    pub capacity_cores: f64,
}

impl ProvisionPreset {
    fn new(name: &str, platform: Platform, pricing: &CostModel) -> Self {
        let power = PowerModel::default();
        let price_credits = pricing.platform_window_price(&platform, &power);
        let capacity_cores = platform.speed_capacity();
        Self {
            name: name.to_string(),
            platform,
            power,
            price_credits,
            capacity_cores,
        }
    }
}

/// The stock catalogue: one-socket slices of the repo's platform
/// presets plus an overclocked, energy-inefficient speed tier. Under
/// the default [`CostModel`] calibration the prices come out 4 / 3 /
/// 2 / 1 / 6 credits with capacities 8.0 / 5.8 / 4.0 / 1.8 / 9.6
/// reference cores — so cores-per-credit ranks xeon ≈ big over
/// big.LITTLE over LITTLE over overclocked, and the three policies
/// below genuinely diverge.
pub fn preset_catalogue(pricing: &CostModel) -> Vec<ProvisionPreset> {
    let bl = Platform::big_little();
    let classes = bl.classes().to_vec();
    let overclocked =
        CoreClass::new("core", 8, FrequencySet::xeon_e5_2667(), 1.2).with_power(PowerModel {
            ceff_w_per_ghz_v2: 12.0,
            ..PowerModel::default()
        });
    vec![
        ProvisionPreset::new(
            "xeon-socket",
            Platform::new(
                "Xeon E5-2667 socket",
                1,
                8,
                FrequencySet::xeon_e5_2667(),
                10e-6,
            ),
            pricing,
        ),
        ProvisionPreset::new(
            "big.LITTLE-socket",
            Platform::with_classes("big.LITTLE socket", 1, classes.clone(), 50e-6),
            pricing,
        ),
        ProvisionPreset::new(
            "big-cluster",
            Platform::with_classes("big cluster", 1, vec![classes[0].clone()], 50e-6),
            pricing,
        ),
        ProvisionPreset::new(
            "little-cluster",
            Platform::with_classes("LITTLE cluster", 1, vec![classes[1].clone()], 50e-6),
            pricing,
        ),
        ProvisionPreset::new(
            "overclocked-xeon",
            Platform::with_classes("overclocked Xeon socket", 1, vec![overclocked], 10e-6),
            pricing,
        ),
    ]
}

/// Chooses which preset to rent next, one instance at a time.
///
/// [`provision_fleet`] calls [`pick`](Self::pick) greedily until the
/// forecast is covered or nothing affordable remains; a policy sees
/// only the catalogue and its remaining budget, so every policy is
/// deterministic on the same inputs.
pub trait ProvisionPolicy {
    /// Stable policy label for reports and artifacts.
    fn label(&self) -> &'static str;

    /// Index of the next preset to rent, or `None` when no affordable
    /// preset is worth renting. Must only return presets with
    /// `price_credits <= remaining_credits`.
    fn pick(&self, catalogue: &[ProvisionPreset], remaining_credits: u64) -> Option<usize>;
}

/// Rents the cheapest affordable preset (ties: more capacity, then
/// lower index) — the cost-first strawman.
#[derive(Debug, Clone, Copy, Default)]
pub struct CheapestFit;

impl ProvisionPolicy for CheapestFit {
    fn label(&self) -> &'static str {
        "cheapest-fit"
    }

    fn pick(&self, catalogue: &[ProvisionPreset], remaining_credits: u64) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, p) in catalogue.iter().enumerate() {
            if p.price_credits > remaining_credits {
                continue;
            }
            best = Some(match best {
                None => i,
                Some(b) => {
                    let better = p.price_credits < catalogue[b].price_credits
                        || (p.price_credits == catalogue[b].price_credits
                            && p.capacity_cores > catalogue[b].capacity_cores + 1e-12);
                    if better {
                        i
                    } else {
                        b
                    }
                }
            });
        }
        best
    }
}

/// Rents the highest-capacity affordable preset regardless of
/// efficiency (ties: lower price, then lower index) — the speed-first
/// strawman.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastestFit;

impl ProvisionPolicy for FastestFit {
    fn label(&self) -> &'static str {
        "fastest-fit"
    }

    fn pick(&self, catalogue: &[ProvisionPreset], remaining_credits: u64) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, p) in catalogue.iter().enumerate() {
            if p.price_credits > remaining_credits {
                continue;
            }
            best = Some(match best {
                None => i,
                Some(b) => {
                    let better = p.capacity_cores > catalogue[b].capacity_cores + 1e-12
                        || ((p.capacity_cores - catalogue[b].capacity_cores).abs() <= 1e-12
                            && p.price_credits < catalogue[b].price_credits);
                    if better {
                        i
                    } else {
                        b
                    }
                }
            });
        }
        best
    }
}

/// Li-style QoS-aware provisioning: rents the affordable preset with
/// the most capacity per credit (ties: more absolute capacity, then
/// lower index) — maximum deadline-meeting ability at equal spend.
#[derive(Debug, Clone, Copy, Default)]
pub struct QosAware;

impl ProvisionPolicy for QosAware {
    fn label(&self) -> &'static str {
        "qos-aware"
    }

    fn pick(&self, catalogue: &[ProvisionPreset], remaining_credits: u64) -> Option<usize> {
        let ratio = |p: &ProvisionPreset| p.capacity_cores / p.price_credits as f64;
        let mut best: Option<usize> = None;
        for (i, p) in catalogue.iter().enumerate() {
            if p.price_credits > remaining_credits {
                continue;
            }
            best = Some(match best {
                None => i,
                Some(b) => {
                    let (r, br) = (ratio(p), ratio(&catalogue[b]));
                    let better = r > br + 1e-12
                        || ((r - br).abs() <= 1e-12
                            && p.capacity_cores > catalogue[b].capacity_cores + 1e-12);
                    if better {
                        i
                    } else {
                        b
                    }
                }
            });
        }
        best
    }
}

/// A provisioned fleet: which catalogue entries were rented, in rental
/// order.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ProvisionOutcome {
    /// The renting policy's label.
    pub policy: String,
    /// Catalogue index of each rented instance, rental order.
    pub chosen: Vec<usize>,
    /// Credits spent per window on the rented fleet.
    pub spent_credits: u64,
    /// Total effective capacity of the fleet, reference cores.
    pub capacity_cores: f64,
}

impl ProvisionOutcome {
    /// One analytical serving shard per rented instance, rental order
    /// — the shard set [`serve_online`](crate::serve_online) runs on.
    pub fn sim_shards(&self, catalogue: &[ProvisionPreset]) -> Vec<SimBackend> {
        self.chosen
            .iter()
            .map(|&i| SimBackend::new(catalogue[i].platform.clone(), catalogue[i].power))
            .collect()
    }
}

/// Greedily rents instances under `policy` until `forecast_cores` is
/// covered or nothing affordable remains, emitting one `Provisioned`
/// telemetry event (control track, slot 0) per rental.
///
/// # Panics
///
/// Panics when a policy returns an unaffordable preset (a policy
/// contract violation).
pub fn provision_fleet<R: Recorder + Copy>(
    policy: &dyn ProvisionPolicy,
    catalogue: &[ProvisionPreset],
    forecast_cores: f64,
    budget_credits: u64,
    recorder: R,
) -> ProvisionOutcome {
    let mut chosen = Vec::new();
    let mut remaining = budget_credits;
    let mut capacity = 0.0f64;
    while capacity + 1e-9 < forecast_cores {
        let Some(i) = policy.pick(catalogue, remaining) else {
            break;
        };
        let preset = &catalogue[i];
        assert!(
            preset.price_credits <= remaining,
            "{} picked unaffordable preset {}",
            policy.label(),
            preset.name
        );
        remaining -= preset.price_credits;
        capacity += preset.capacity_cores;
        if R::ENABLED {
            recorder.record(TelEvent::new(
                CONTROL_TRACK,
                0,
                TelKind::Provisioned { preset: i as u32 },
            ));
        }
        chosen.push(i);
    }
    ProvisionOutcome {
        policy: policy.label().to_string(),
        chosen,
        spent_credits: budget_credits - remaining,
        capacity_cores: capacity,
    }
}

/// Peak concurrent admission-unit demand of a trace: the sweep maximum
/// of every user's padded core demand over their [arrival, departure)
/// session — the load a provisioning policy sizes a fleet for. Uses
/// the same demand formula as the admission controller
/// (`steady_demand × fps × headroom`).
pub fn forecast_demand_cores<W: Workload>(
    cfg: &OnlineConfig,
    workloads: &[W],
    trace: &[UserRequest],
) -> f64 {
    let demand_of: Vec<f64> = workloads
        .iter()
        .map(|w| w.steady_demand().iter().sum::<f64>() * cfg.fps * cfg.headroom)
        .collect();
    let mut deltas: BTreeMap<usize, f64> = BTreeMap::new();
    for r in trace {
        if r.arrival_slot >= cfg.horizon_slots {
            continue;
        }
        let d = demand_of[r.profile];
        *deltas.entry(r.arrival_slot).or_insert(0.0) += d;
        let end = r.departure_slot.unwrap_or(cfg.horizon_slots);
        *deltas.entry(end.min(cfg.horizon_slots)).or_insert(0.0) -= d;
    }
    let mut level = 0.0f64;
    let mut peak = 0.0f64;
    for (_, delta) in deltas {
        level += delta;
        peak = peak.max(level);
    }
    peak
}

/// The per-window cost trajectory replayed from a finished run's
/// decision stream.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CostReport {
    /// GOP windows billed (boundary count).
    pub windows: usize,
    /// Credits billed across all windows (spend × windows summed).
    pub total_credits: f64,
    /// Largest single-window spend.
    pub peak_window_credits: f64,
    /// `Downgrade` events in the stream.
    pub downgrades: usize,
    /// `true` when every window's spend respects the config's budget
    /// (vacuously true for unlimited plans).
    pub within_budget: bool,
}

/// Replays `report`'s decision stream against the config's
/// [`CostPlan`](crate::CostPlan), re-deriving the spend ledger with
/// the same float operations in the same order as the controller —
/// the trajectory is bitwise equal, so `within_budget` is an exact
/// after-the-fact audit of budget-constrained admission.
pub fn replay_cost<W: Workload>(
    cfg: &OnlineConfig,
    workloads: &[W],
    trace: &[UserRequest],
    report: &OnlineReport,
) -> CostReport {
    let demand_of: Vec<f64> = workloads
        .iter()
        .map(|w| w.steady_demand().iter().sum::<f64>() * cfg.fps * cfg.headroom)
        .collect();
    let profile_of: BTreeMap<usize, usize> = trace.iter().map(|r| (r.user, r.profile)).collect();
    let rate = cfg.cost.credits_per_core_window;
    let mut spend = 0.0f64;
    let (mut windows, mut downgrades) = (0usize, 0usize);
    let (mut total, mut peak) = (0.0f64, 0.0f64);
    let mut idx = 0usize;
    let mut slot = 0usize;
    while slot < cfg.horizon_slots {
        while idx < report.events.len() && report.events[idx].slot <= slot {
            let e = &report.events[idx];
            let billed = demand_of[profile_of[&e.user]] * rate;
            match e.kind {
                EventKind::Admit => spend += billed,
                EventKind::Depart | EventKind::Evict => spend -= billed,
                EventKind::Downgrade => downgrades += 1,
                EventKind::Abandon | EventKind::Reject => {}
            }
            idx += 1;
        }
        windows += 1;
        total += spend;
        peak = peak.max(spend);
        slot += cfg.gop_slots.max(1);
    }
    let within_budget =
        !cfg.cost.is_budgeted() || peak <= cfg.cost.budget_credits_per_window + 1e-9;
    CostReport {
        windows,
        total_credits: total,
        peak_window_credits: peak,
        downgrades,
        within_budget,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medvt_telemetry::{FlightRecorder, NoopRecorder};

    fn catalogue() -> Vec<ProvisionPreset> {
        preset_catalogue(&CostModel::default())
    }

    #[test]
    fn catalogue_prices_and_capacities_are_calibrated() {
        let cat = catalogue();
        let names: Vec<&str> = cat.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "xeon-socket",
                "big.LITTLE-socket",
                "big-cluster",
                "little-cluster",
                "overclocked-xeon"
            ]
        );
        let prices: Vec<u64> = cat.iter().map(|p| p.price_credits).collect();
        assert_eq!(prices, [4, 3, 2, 1, 6]);
        let caps: Vec<f64> = cat.iter().map(|p| p.capacity_cores).collect();
        for (got, want) in caps.iter().zip([8.0, 5.8, 4.0, 1.8, 9.6]) {
            assert!((got - want).abs() < 1e-9, "capacity {got} != {want}");
        }
    }

    #[test]
    fn policies_rank_the_catalogue_differently() {
        let cat = catalogue();
        // Unlimited remaining budget: each policy's standing pick.
        assert_eq!(CheapestFit.pick(&cat, u64::MAX), Some(3), "LITTLE cluster");
        assert_eq!(FastestFit.pick(&cat, u64::MAX), Some(4), "overclocked");
        assert_eq!(QosAware.pick(&cat, u64::MAX), Some(0), "xeon socket");
        // Tight budget: everyone converges on what is affordable.
        assert_eq!(CheapestFit.pick(&cat, 1), Some(3));
        assert_eq!(FastestFit.pick(&cat, 2), Some(2));
        assert_eq!(QosAware.pick(&cat, 3), Some(2), "big beats bl per credit");
        assert_eq!(QosAware.pick(&cat, 0), None);
    }

    #[test]
    fn greedy_rental_exhausts_budget_under_overload() {
        let cat = catalogue();
        // Forecast far beyond anything affordable; 12 = lcm of all
        // prices, so both extremes spend exactly the budget.
        let cheap = provision_fleet(&CheapestFit, &cat, 1e6, 12, NoopRecorder);
        let qos = provision_fleet(&QosAware, &cat, 1e6, 12, NoopRecorder);
        assert_eq!(cheap.spent_credits, 12);
        assert_eq!(qos.spent_credits, 12);
        assert_eq!(cheap.chosen, vec![3; 12]);
        assert_eq!(qos.chosen, vec![0; 3]);
        assert!((cheap.capacity_cores - 21.6).abs() < 1e-9);
        assert!((qos.capacity_cores - 24.0).abs() < 1e-9);
        assert!(qos.capacity_cores > cheap.capacity_cores);
    }

    #[test]
    fn rental_stops_at_the_forecast_and_emits_telemetry() {
        let cat = catalogue();
        let recorder = FlightRecorder::modeled(1, 256);
        let outcome = provision_fleet(&QosAware, &cat, 10.0, 1_000, &recorder);
        // One xeon (8.0) is short of 10; two cover it.
        assert_eq!(outcome.chosen, vec![0, 0]);
        assert_eq!(outcome.spent_credits, 8);
        let events = recorder.events();
        let provisioned = events
            .iter()
            .filter(|e| matches!(e.kind, TelKind::Provisioned { preset: 0 }))
            .count();
        assert_eq!(provisioned, outcome.chosen.len());
        let shards = outcome.sim_shards(&cat);
        assert_eq!(shards.len(), 2);
    }
}

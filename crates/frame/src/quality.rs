//! Objective quality metrics: MSE, PSNR and SSIM.
//!
//! The paper's quality constraint loop (Algorithm 1) and all of Table I /
//! Table II report PSNR, so these functions are on the hot path of both
//! the QP controller and the experiment harness.

use crate::{Frame, Plane, Rect};

/// Mean squared error between the same region of two planes.
///
/// # Panics
///
/// Panics when the planes have different dimensions or `rect` does not
/// fit inside them, or when `rect` is empty.
pub fn region_mse(a: &Plane, b: &Plane, rect: &Rect) -> f64 {
    assert_eq!(a.width(), b.width(), "plane widths differ");
    assert_eq!(a.height(), b.height(), "plane heights differ");
    assert!(!rect.is_empty(), "mse over empty rect");
    assert!(a.bounds().contains_rect(rect), "rect {rect} outside plane");
    let mut acc = 0u64;
    for row in rect.y..rect.bottom() {
        let ra = &a.row(row)[rect.x..rect.right()];
        let rb = &b.row(row)[rect.x..rect.right()];
        for (&sa, &sb) in ra.iter().zip(rb) {
            let d = sa as i64 - sb as i64;
            acc += (d * d) as u64;
        }
    }
    acc as f64 / rect.area() as f64
}

/// Mean squared error over two full planes.
///
/// # Panics
///
/// Panics when the planes have different dimensions.
pub fn plane_mse(a: &Plane, b: &Plane) -> f64 {
    region_mse(a, b, &a.bounds())
}

/// Converts an MSE to 8-bit PSNR in dB.
///
/// Identical inputs (MSE = 0) return [`f64::INFINITY`].
pub fn mse_to_psnr(mse: f64) -> f64 {
    if mse <= 0.0 {
        f64::INFINITY
    } else {
        10.0 * (255.0f64 * 255.0 / mse).log10()
    }
}

/// PSNR between the same region of two planes, in dB.
///
/// # Panics
///
/// See [`region_mse`].
pub fn region_psnr(a: &Plane, b: &Plane, rect: &Rect) -> f64 {
    mse_to_psnr(region_mse(a, b, rect))
}

/// Luma PSNR between two full planes, in dB.
///
/// # Panics
///
/// Panics when the planes have different dimensions.
pub fn plane_psnr(a: &Plane, b: &Plane) -> f64 {
    mse_to_psnr(plane_mse(a, b))
}

/// Combined YUV PSNR with the conventional 6:1:1 plane weighting.
///
/// # Panics
///
/// Panics when the frames have different resolutions.
pub fn frame_psnr_weighted(a: &Frame, b: &Frame) -> f64 {
    let y = plane_mse(a.y(), b.y());
    let u = plane_mse(a.u(), b.u());
    let v = plane_mse(a.v(), b.v());
    mse_to_psnr((6.0 * y + u + v) / 8.0)
}

/// Luma-only frame PSNR — what the paper's tables report.
///
/// # Panics
///
/// Panics when the frames have different resolutions.
pub fn frame_psnr(a: &Frame, b: &Frame) -> f64 {
    plane_psnr(a.y(), b.y())
}

/// Structural similarity (SSIM) over a plane region using the standard
/// constants and a per-region (not sliding-window) formulation.
///
/// This is an extension beyond the paper (which reports PSNR only) used
/// by the extended quality benches.
///
/// # Panics
///
/// See [`region_mse`].
pub fn region_ssim(a: &Plane, b: &Plane, rect: &Rect) -> f64 {
    assert!(!rect.is_empty(), "ssim over empty rect");
    assert!(a.bounds().contains_rect(rect), "rect {rect} outside plane");
    let n = rect.area() as f64;
    let (mut sa, mut sb, mut saa, mut sbb, mut sab) = (0f64, 0f64, 0f64, 0f64, 0f64);
    for row in rect.y..rect.bottom() {
        let ra = &a.row(row)[rect.x..rect.right()];
        let rb = &b.row(row)[rect.x..rect.right()];
        for (&xa, &xb) in ra.iter().zip(rb) {
            let xa = xa as f64;
            let xb = xb as f64;
            sa += xa;
            sb += xb;
            saa += xa * xa;
            sbb += xb * xb;
            sab += xa * xb;
        }
    }
    let mu_a = sa / n;
    let mu_b = sb / n;
    let var_a = (saa / n - mu_a * mu_a).max(0.0);
    let var_b = (sbb / n - mu_b * mu_b).max(0.0);
    let cov = sab / n - mu_a * mu_b;
    const C1: f64 = (0.01 * 255.0) * (0.01 * 255.0);
    const C2: f64 = (0.03 * 255.0) * (0.03 * 255.0);
    ((2.0 * mu_a * mu_b + C1) * (2.0 * cov + C2))
        / ((mu_a * mu_a + mu_b * mu_b + C1) * (var_a + var_b + C2))
}

/// Mean SSIM over 8x8 windows of the whole luma plane.
///
/// # Panics
///
/// Panics when the planes have different dimensions.
pub fn plane_ssim(a: &Plane, b: &Plane) -> f64 {
    assert_eq!(a.width(), b.width());
    assert_eq!(a.height(), b.height());
    let mut total = 0.0;
    let mut count = 0usize;
    let step = 8;
    let mut y = 0;
    while y < a.height() {
        let h = step.min(a.height() - y);
        let mut x = 0;
        while x < a.width() {
            let w = step.min(a.width() - x);
            total += region_ssim(a, b, &Rect::new(x, y, w, h));
            count += 1;
            x += step;
        }
        y += step;
    }
    total / count as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Resolution;

    #[test]
    fn identical_planes_have_infinite_psnr() {
        let p = Plane::filled(16, 16, 80);
        assert_eq!(plane_mse(&p, &p), 0.0);
        assert!(plane_psnr(&p, &p).is_infinite());
    }

    #[test]
    fn known_mse_value() {
        let a = Plane::filled(4, 4, 100);
        let b = Plane::filled(4, 4, 110);
        assert_eq!(plane_mse(&a, &b), 100.0);
        let psnr = plane_psnr(&a, &b);
        // 10*log10(65025/100) = 28.13 dB.
        assert!((psnr - 28.131).abs() < 0.01, "psnr={psnr}");
    }

    #[test]
    fn psnr_decreases_with_distortion() {
        let a = Plane::filled(8, 8, 100);
        let b = Plane::filled(8, 8, 105);
        let c = Plane::filled(8, 8, 120);
        assert!(plane_psnr(&a, &b) > plane_psnr(&a, &c));
    }

    #[test]
    fn region_mse_only_counts_region() {
        let a = Plane::filled(8, 8, 0);
        let mut b = Plane::filled(8, 8, 0);
        b.fill_rect(&Rect::new(0, 0, 4, 8), 10);
        // Left half differs by 10, right half identical.
        assert_eq!(region_mse(&a, &b, &Rect::new(4, 0, 4, 8)), 0.0);
        assert_eq!(region_mse(&a, &b, &Rect::new(0, 0, 4, 8)), 100.0);
        assert_eq!(plane_mse(&a, &b), 50.0);
    }

    #[test]
    fn frame_psnr_uses_luma() {
        let res = Resolution::new(16, 16);
        let a = Frame::flat(res, 100);
        let mut b = Frame::flat(res, 100);
        // Chroma-only distortion leaves luma PSNR infinite.
        b.u_mut().fill_rect(&Rect::frame(8, 8), 10);
        assert!(frame_psnr(&a, &b).is_infinite());
        assert!(frame_psnr_weighted(&a, &b).is_finite());
    }

    #[test]
    fn ssim_is_one_for_identical_textured_content() {
        let mut p = Plane::new(16, 16);
        for (i, s) in p.samples_mut().iter_mut().enumerate() {
            *s = (i * 7 % 251) as u8;
        }
        let s = plane_ssim(&p, &p);
        assert!((s - 1.0).abs() < 1e-9, "ssim={s}");
    }

    #[test]
    fn ssim_penalizes_structure_loss() {
        let mut textured = Plane::new(16, 16);
        for (i, s) in textured.samples_mut().iter_mut().enumerate() {
            *s = if i % 2 == 0 { 60 } else { 190 };
        }
        let flat = Plane::filled(16, 16, 125);
        let s = plane_ssim(&textured, &flat);
        assert!(s < 0.5, "flattening texture should tank ssim, got {s}");
    }

    #[test]
    fn mse_to_psnr_monotone() {
        assert!(mse_to_psnr(1.0) > mse_to_psnr(2.0));
        assert!(mse_to_psnr(0.0).is_infinite());
    }

    #[test]
    #[should_panic(expected = "widths differ")]
    fn mismatched_planes_panic() {
        let a = Plane::new(4, 4);
        let b = Plane::new(8, 4);
        plane_mse(&a, &b);
    }
}

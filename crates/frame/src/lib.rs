//! # medvt-frame
//!
//! Video-frame primitives and synthetic bio-medical video generation for
//! the `medvt` reproduction of *"Online Efficient Bio-Medical Video
//! Transcoding on MPSoCs Through Content-Aware Workload Allocation"*
//! (Iranfar et al., DATE 2018).
//!
//! This crate is the foundation of the workspace:
//!
//! * [`Plane`], [`Frame`], [`Rect`], [`Resolution`] — raw YUV 4:2:0
//!   pictures and the tile/block geometry every other crate shares;
//! * [`RegionStats`] — single-pass region statistics (mean, σ, CV)
//!   backing the paper's texture classifier (Eq. 1);
//! * [`quality`] — MSE/PSNR/SSIM used by the QP controller and the
//!   experiment tables;
//! * [`synth`] — deterministic phantom bio-medical videos substituting
//!   the paper's anonymized clinical material;
//! * [`io`] — Y4M and PGM/PPM interchange.
//!
//! # Examples
//!
//! Generate phantom brain MRI frames and measure how static the frame
//! corners are:
//!
//! ```
//! use medvt_frame::synth::{BodyPart, PhantomVideo};
//! use medvt_frame::{quality, Rect, Resolution};
//!
//! let video = PhantomVideo::builder(BodyPart::Brain)
//!     .resolution(Resolution::new(128, 96))
//!     .seed(7)
//!     .build();
//! let first = video.render(0);
//! let later = video.render(24);
//! let corner = Rect::new(0, 0, 16, 12);
//! let mse = quality::region_mse(first.y(), later.y(), &corner);
//! assert!(mse < 16.0, "corners barely change: {mse}");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod frame;
mod plane;
mod rect;
mod video;

pub mod io {
    //! Image and raw-video interchange (PGM/PPM, Y4M).
    mod pnm;
    mod y4m;

    pub use pnm::{overlay_rects, save_pgm, save_ppm, write_pgm, write_ppm};
    pub use y4m::{load_y4m, read_y4m, save_y4m, write_y4m};
}

pub mod quality;
pub mod stats;
pub mod synth;

pub use error::FrameError;
pub use frame::{Frame, FrameKind, Resolution};
pub use plane::Plane;
pub use rect::{find_overlap, Rect};
pub use stats::RegionStats;
pub use video::{FrameSource, VideoClip};

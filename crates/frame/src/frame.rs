//! YUV 4:2:0 frames and frame metadata.

use crate::{FrameError, Plane, Rect};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Video resolution in luma samples.
///
/// # Examples
///
/// ```
/// use medvt_frame::Resolution;
///
/// let r = Resolution::VGA;
/// assert_eq!(r.width, 640);
/// assert_eq!(r.height, 480);
/// assert_eq!(r.luma_samples(), 640 * 480);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Resolution {
    /// Width in luma samples.
    pub width: usize,
    /// Height in luma samples.
    pub height: usize,
}

impl Resolution {
    /// 640x480 — the resolution of the paper's ten clinical videos.
    pub const VGA: Resolution = Resolution::new(640, 480);
    /// 1280x720.
    pub const HD720: Resolution = Resolution::new(1280, 720);
    /// 1920x1080.
    pub const HD1080: Resolution = Resolution::new(1920, 1080);

    /// Creates a resolution.
    pub const fn new(width: usize, height: usize) -> Self {
        Self { width, height }
    }

    /// Number of luma samples per frame.
    pub const fn luma_samples(&self) -> usize {
        self.width * self.height
    }

    /// The full-frame rectangle.
    pub const fn rect(&self) -> Rect {
        Rect::frame(self.width, self.height)
    }

    /// Validates 4:2:0 compatibility (non-zero, even dimensions).
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::Dimensions`] for zero or odd dimensions.
    pub fn validate_420(&self) -> Result<(), FrameError> {
        if self.width == 0 || self.height == 0 {
            return Err(FrameError::Dimensions {
                width: self.width,
                height: self.height,
                reason: "zero dimension",
            });
        }
        if !self.width.is_multiple_of(2) || !self.height.is_multiple_of(2) {
            return Err(FrameError::Dimensions {
                width: self.width,
                height: self.height,
                reason: "4:2:0 chroma requires even dimensions",
            });
        }
        Ok(())
    }
}

impl fmt::Display for Resolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.width, self.height)
    }
}

/// A YUV 4:2:0 picture.
///
/// The luma plane is full resolution; both chroma planes are subsampled
/// 2x in each dimension. Every pipeline stage in `medvt` operates on
/// these frames: the phantom generator produces them, the encoder codes
/// and reconstructs them, and the analyzer reads their luma plane.
///
/// # Examples
///
/// ```
/// use medvt_frame::{Frame, Resolution};
///
/// let f = Frame::flat(Resolution::new(64, 48), 128);
/// assert_eq!(f.y().width(), 64);
/// assert_eq!(f.u().width(), 32);
/// assert_eq!(f.v().height(), 24);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    y: Plane,
    u: Plane,
    v: Plane,
}

impl Frame {
    /// Creates a black frame (luma 16, chroma 128 — studio-range black).
    ///
    /// # Panics
    ///
    /// Panics if the resolution is not 4:2:0 compatible.
    pub fn black(res: Resolution) -> Self {
        res.validate_420()
            .expect("resolution must be 4:2:0 compatible");
        Self {
            y: Plane::filled(res.width, res.height, 16),
            u: Plane::filled(res.width / 2, res.height / 2, 128),
            v: Plane::filled(res.width / 2, res.height / 2, 128),
        }
    }

    /// Creates a frame with constant luma `value` and neutral chroma.
    ///
    /// # Panics
    ///
    /// Panics if the resolution is not 4:2:0 compatible.
    pub fn flat(res: Resolution, value: u8) -> Self {
        res.validate_420()
            .expect("resolution must be 4:2:0 compatible");
        Self {
            y: Plane::filled(res.width, res.height, value),
            u: Plane::filled(res.width / 2, res.height / 2, 128),
            v: Plane::filled(res.width / 2, res.height / 2, 128),
        }
    }

    /// Assembles a frame from existing planes.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::Dimensions`] when the chroma planes are not
    /// exactly half the luma plane in each dimension.
    pub fn from_planes(y: Plane, u: Plane, v: Plane) -> Result<Self, FrameError> {
        let ok = u.width() == y.width() / 2
            && u.height() == y.height() / 2
            && v.width() == y.width() / 2
            && v.height() == y.height() / 2;
        if !ok {
            return Err(FrameError::Dimensions {
                width: y.width(),
                height: y.height(),
                reason: "chroma planes must be half the luma dimensions",
            });
        }
        Ok(Self { y, u, v })
    }

    /// Builds a 4:2:0 frame from a luma plane, deriving chroma as neutral.
    pub fn from_luma(y: Plane) -> Self {
        let u = Plane::filled((y.width() / 2).max(1), (y.height() / 2).max(1), 128);
        let v = u.clone();
        Self { y, u, v }
    }

    /// Frame resolution (luma).
    pub fn resolution(&self) -> Resolution {
        Resolution::new(self.y.width(), self.y.height())
    }

    /// Borrows the luma plane.
    pub fn y(&self) -> &Plane {
        &self.y
    }

    /// Mutably borrows the luma plane.
    pub fn y_mut(&mut self) -> &mut Plane {
        &mut self.y
    }

    /// Borrows the first chroma (Cb) plane.
    pub fn u(&self) -> &Plane {
        &self.u
    }

    /// Mutably borrows the first chroma (Cb) plane.
    pub fn u_mut(&mut self) -> &mut Plane {
        &mut self.u
    }

    /// Borrows the second chroma (Cr) plane.
    pub fn v(&self) -> &Plane {
        &self.v
    }

    /// Mutably borrows the second chroma (Cr) plane.
    pub fn v_mut(&mut self) -> &mut Plane {
        &mut self.v
    }

    /// Decomposes the frame into its planes.
    pub fn into_planes(self) -> (Plane, Plane, Plane) {
        (self.y, self.u, self.v)
    }

    /// Total number of samples across all three planes.
    pub fn total_samples(&self) -> usize {
        self.y.samples().len() + self.u.samples().len() + self.v.samples().len()
    }
}

/// Picture/slice type in a GOP, following HEVC Random Access terminology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FrameKind {
    /// Intra-only picture (IDR/CRA).
    Intra,
    /// Uni-predicted picture.
    Predicted,
    /// Bi-predicted picture (the B slices of the paper's RA configuration).
    BiPredicted,
}

impl FrameKind {
    /// `true` when inter prediction is allowed.
    pub const fn is_inter(&self) -> bool {
        !matches!(self, FrameKind::Intra)
    }

    /// One-letter label (`I`, `P`, `B`) used in logs and experiment output.
    pub const fn letter(&self) -> char {
        match self {
            FrameKind::Intra => 'I',
            FrameKind::Predicted => 'P',
            FrameKind::BiPredicted => 'B',
        }
    }
}

impl fmt::Display for FrameKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolution_constants() {
        assert_eq!(Resolution::VGA.to_string(), "640x480");
        assert_eq!(Resolution::VGA.luma_samples(), 307_200);
        assert_eq!(Resolution::HD720.rect(), Rect::frame(1280, 720));
    }

    #[test]
    fn validate_420_rejects_odd_and_zero() {
        assert!(Resolution::new(640, 480).validate_420().is_ok());
        assert!(Resolution::new(641, 480).validate_420().is_err());
        assert!(Resolution::new(640, 481).validate_420().is_err());
        assert!(Resolution::new(0, 480).validate_420().is_err());
    }

    #[test]
    fn black_frame_is_studio_black() {
        let f = Frame::black(Resolution::new(16, 16));
        assert_eq!(f.y().get(0, 0), 16);
        assert_eq!(f.u().get(0, 0), 128);
        assert_eq!(f.v().get(0, 0), 128);
        assert_eq!(f.total_samples(), 256 + 64 + 64);
    }

    #[test]
    fn from_planes_validates_chroma_geometry() {
        let y = Plane::new(8, 8);
        let u = Plane::new(4, 4);
        let v = Plane::new(4, 4);
        assert!(Frame::from_planes(y.clone(), u.clone(), v.clone()).is_ok());
        let bad_u = Plane::new(8, 4);
        assert!(Frame::from_planes(y, bad_u, v).is_err());
    }

    #[test]
    fn from_luma_has_neutral_chroma() {
        let f = Frame::from_luma(Plane::filled(8, 8, 77));
        assert_eq!(f.y().get(3, 3), 77);
        assert_eq!(f.u().get(0, 0), 128);
    }

    #[test]
    fn frame_kind_properties() {
        assert!(!FrameKind::Intra.is_inter());
        assert!(FrameKind::Predicted.is_inter());
        assert!(FrameKind::BiPredicted.is_inter());
        assert_eq!(FrameKind::Intra.to_string(), "I");
        assert_eq!(FrameKind::BiPredicted.letter(), 'B');
    }

    #[test]
    fn into_planes_round_trip() {
        let f = Frame::flat(Resolution::new(4, 4), 9);
        let (y, u, v) = f.into_planes();
        let f2 = Frame::from_planes(y, u, v).unwrap();
        assert_eq!(f2.y().get(0, 0), 9);
    }
}

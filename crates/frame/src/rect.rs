//! Axis-aligned integer rectangles used for tiles, blocks and search areas.
//!
//! All coordinates are in luma samples with the origin at the top-left
//! corner of the frame. A [`Rect`] is half-open: it covers columns
//! `x..x + w` and rows `y..y + h`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An axis-aligned rectangle in frame coordinates.
///
/// # Examples
///
/// ```
/// use medvt_frame::Rect;
///
/// let tile = Rect::new(64, 0, 128, 96);
/// assert_eq!(tile.area(), 128 * 96);
/// assert!(tile.contains(64, 95));
/// assert!(!tile.contains(192, 0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Rect {
    /// Column of the left edge.
    pub x: usize,
    /// Row of the top edge.
    pub y: usize,
    /// Width in samples.
    pub w: usize,
    /// Height in samples.
    pub h: usize,
}

impl Rect {
    /// Creates a rectangle from its top-left corner and size.
    pub const fn new(x: usize, y: usize, w: usize, h: usize) -> Self {
        Self { x, y, w, h }
    }

    /// A rectangle covering a full `width x height` frame.
    pub const fn frame(width: usize, height: usize) -> Self {
        Self::new(0, 0, width, height)
    }

    /// Number of samples covered.
    pub const fn area(&self) -> usize {
        self.w * self.h
    }

    /// `true` when the rectangle covers no samples.
    pub const fn is_empty(&self) -> bool {
        self.w == 0 || self.h == 0
    }

    /// Column one past the right edge.
    pub const fn right(&self) -> usize {
        self.x + self.w
    }

    /// Row one past the bottom edge.
    pub const fn bottom(&self) -> usize {
        self.y + self.h
    }

    /// Sample coordinates of the center (rounded down).
    pub const fn center(&self) -> (usize, usize) {
        (self.x + self.w / 2, self.y + self.h / 2)
    }

    /// `true` when `(col, row)` lies inside the rectangle.
    pub const fn contains(&self, col: usize, row: usize) -> bool {
        col >= self.x && col < self.x + self.w && row >= self.y && row < self.y + self.h
    }

    /// `true` when `other` lies fully inside `self`.
    pub const fn contains_rect(&self, other: &Rect) -> bool {
        other.x >= self.x
            && other.y >= self.y
            && other.x + other.w <= self.x + self.w
            && other.y + other.h <= self.y + self.h
    }

    /// `true` when the two rectangles share at least one sample.
    pub const fn intersects(&self, other: &Rect) -> bool {
        self.x < other.x + other.w
            && other.x < self.x + self.w
            && self.y < other.y + other.h
            && other.y < self.y + self.h
    }

    /// The overlapping region of two rectangles, if any.
    ///
    /// # Examples
    ///
    /// ```
    /// use medvt_frame::Rect;
    ///
    /// let a = Rect::new(0, 0, 10, 10);
    /// let b = Rect::new(5, 5, 10, 10);
    /// assert_eq!(a.intersection(&b), Some(Rect::new(5, 5, 5, 5)));
    /// ```
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        let x = self.x.max(other.x);
        let y = self.y.max(other.y);
        let right = self.right().min(other.right());
        let bottom = self.bottom().min(other.bottom());
        Some(Rect::new(x, y, right - x, bottom - y))
    }

    /// Clamps the rectangle so it fits inside `bounds`.
    ///
    /// Returns an empty rectangle at the clamped origin when there is no
    /// overlap at all.
    pub fn clamped_to(&self, bounds: &Rect) -> Rect {
        self.intersection(bounds).unwrap_or(Rect::new(
            self.x.min(bounds.right()),
            self.y.min(bounds.bottom()),
            0,
            0,
        ))
    }

    /// Splits the rectangle into `cols x rows` uniform cells.
    ///
    /// Remainder samples are distributed one-per-cell from the first
    /// column/row, so cell sizes differ by at most one sample, mirroring
    /// HEVC uniform tile spacing.
    ///
    /// Cells are returned in raster order.
    ///
    /// # Panics
    ///
    /// Panics if `cols` or `rows` is zero, or exceeds the rectangle size.
    pub fn split_uniform(&self, cols: usize, rows: usize) -> Vec<Rect> {
        assert!(cols > 0 && rows > 0, "tile grid must be non-empty");
        assert!(
            cols <= self.w && rows <= self.h,
            "tile grid {}x{} exceeds rect {}x{}",
            cols,
            rows,
            self.w,
            self.h
        );
        let xs = split_axis(self.x, self.w, cols);
        let ys = split_axis(self.y, self.h, rows);
        let mut cells = Vec::with_capacity(cols * rows);
        for (y0, hh) in &ys {
            for (x0, ww) in &xs {
                cells.push(Rect::new(*x0, *y0, *ww, *hh));
            }
        }
        cells
    }

    /// Grows the rectangle by `dw` columns to the right and `dh` rows
    /// down, clamped so the result stays inside `bounds`.
    pub fn grown(&self, dw: usize, dh: usize, bounds: &Rect) -> Rect {
        let w = (self.w + dw).min(bounds.right().saturating_sub(self.x));
        let h = (self.h + dh).min(bounds.bottom().saturating_sub(self.y));
        Rect::new(self.x, self.y, w, h)
    }

    /// Iterates over all `(col, row)` sample coordinates in raster order.
    pub fn samples(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let this = *self;
        (this.y..this.bottom())
            .flat_map(move |row| (this.x..this.right()).map(move |col| (col, row)))
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}@({},{})", self.w, self.h, self.x, self.y)
    }
}

/// Finds one overlapping pair among `rects`, or `None` when all are
/// pairwise disjoint.
///
/// O(n log n) sweep over top/bottom edges in ascending `y`: an ordered
/// map from left edge to the open rect keeps the active set, and each
/// insertion only has to inspect its two x-neighbours (the active set
/// stays x-disjoint by induction, so any overlapper of a new interval
/// is adjacent to its insertion point). Empty rects never overlap
/// anything. Ends sort before starts at equal `y`, so touching rects
/// do not count as overlapping.
pub fn find_overlap(rects: &[Rect]) -> Option<(Rect, Rect)> {
    // (y, is_start, rect index).
    let mut events: Vec<(usize, bool, usize)> = Vec::with_capacity(rects.len() * 2);
    for (i, r) in rects.iter().enumerate() {
        if !r.is_empty() {
            events.push((r.y, true, i));
            events.push((r.y + r.h, false, i));
        }
    }
    events.sort_by_key(|&(y, is_start, _)| (y, is_start));

    // Active rects ordered by left edge: x -> rect index.
    let mut active: std::collections::BTreeMap<usize, usize> = std::collections::BTreeMap::new();
    for (_, is_start, i) in events {
        let r = &rects[i];
        if !is_start {
            // Only remove if this rect still owns the slot (duplicate
            // x keys were already reported as overlaps on insert).
            if active.get(&r.x) == Some(&i) {
                active.remove(&r.x);
            }
            continue;
        }
        if let Some(&other) = active.get(&r.x) {
            return Some((rects[other], *r));
        }
        if let Some((_, &left)) = active.range(..r.x).next_back() {
            let l = &rects[left];
            if l.x + l.w > r.x {
                return Some((*l, *r));
            }
        }
        if let Some((_, &right)) = active.range(r.x + 1..).next() {
            let rr = &rects[right];
            if r.x + r.w > rr.x {
                return Some((*r, *rr));
            }
        }
        active.insert(r.x, i);
    }
    None
}

/// Splits an axis of length `len` starting at `origin` into `n` spans whose
/// lengths differ by at most one. Earlier spans take the remainder, like
/// HEVC `uniform_spacing_flag` tiles.
fn split_axis(origin: usize, len: usize, n: usize) -> Vec<(usize, usize)> {
    let base = len / n;
    let extra = len % n;
    let mut spans = Vec::with_capacity(n);
    let mut pos = origin;
    for i in 0..n {
        let span = base + usize::from(i < extra);
        spans.push((pos, span));
        pos += span;
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_overlap_detects_and_clears() {
        // Disjoint partition with staggered rows: no overlap.
        let disjoint = [
            Rect::new(0, 0, 96, 32),
            Rect::new(0, 32, 40, 32),
            Rect::new(40, 32, 56, 32),
        ];
        assert_eq!(find_overlap(&disjoint), None);
        // Same x, overlapping y.
        let stacked = [Rect::new(0, 0, 64, 40), Rect::new(0, 32, 64, 32)];
        assert!(find_overlap(&stacked).is_some());
        // Overlap in x between same-band neighbours.
        let side = [Rect::new(0, 0, 32, 64), Rect::new(16, 0, 32, 64)];
        assert_eq!(
            find_overlap(&side),
            Some((Rect::new(0, 0, 32, 64), Rect::new(16, 0, 32, 64)))
        );
        // Touching edges never count; empty rects are ignored.
        let touching = [
            Rect::new(0, 0, 32, 32),
            Rect::new(32, 0, 32, 32),
            Rect::new(0, 32, 64, 32),
            Rect::new(5, 5, 0, 9),
        ];
        assert_eq!(find_overlap(&touching), None);
    }

    #[test]
    fn area_and_edges() {
        let r = Rect::new(2, 3, 4, 5);
        assert_eq!(r.area(), 20);
        assert_eq!(r.right(), 6);
        assert_eq!(r.bottom(), 8);
        assert_eq!(r.center(), (4, 5));
        assert!(!r.is_empty());
        assert!(Rect::new(0, 0, 0, 7).is_empty());
    }

    #[test]
    fn containment() {
        let r = Rect::new(10, 10, 10, 10);
        assert!(r.contains(10, 10));
        assert!(r.contains(19, 19));
        assert!(!r.contains(20, 10));
        assert!(!r.contains(10, 20));
        assert!(r.contains_rect(&Rect::new(12, 12, 8, 8)));
        assert!(!r.contains_rect(&Rect::new(12, 12, 9, 8)));
    }

    #[test]
    fn intersection_basic() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, 5, 10, 10);
        assert_eq!(a.intersection(&b), Some(Rect::new(5, 5, 5, 5)));
        let c = Rect::new(10, 0, 5, 5);
        assert_eq!(a.intersection(&c), None);
        assert!(!a.intersects(&c));
    }

    #[test]
    fn intersection_is_commutative() {
        let a = Rect::new(3, 1, 17, 9);
        let b = Rect::new(7, 4, 30, 3);
        assert_eq!(a.intersection(&b), b.intersection(&a));
    }

    #[test]
    fn split_uniform_covers_exactly() {
        let r = Rect::frame(640, 480);
        for (cols, rows) in [(1, 1), (2, 2), (5, 3), (7, 4), (11, 5)] {
            let cells = r.split_uniform(cols, rows);
            assert_eq!(cells.len(), cols * rows);
            let total: usize = cells.iter().map(Rect::area).sum();
            assert_eq!(total, r.area(), "{}x{} split loses samples", cols, rows);
            // Non-overlap: pairwise disjoint.
            for (i, a) in cells.iter().enumerate() {
                for b in cells.iter().skip(i + 1) {
                    assert!(!a.intersects(b), "{a} overlaps {b}");
                }
            }
        }
    }

    #[test]
    fn split_uniform_distributes_remainder() {
        // 10 wide into 3 cols: widths 4,3,3.
        let r = Rect::frame(10, 6);
        let cells = r.split_uniform(3, 1);
        assert_eq!(cells[0].w, 4);
        assert_eq!(cells[1].w, 3);
        assert_eq!(cells[2].w, 3);
        assert_eq!(cells[0].x, 0);
        assert_eq!(cells[1].x, 4);
        assert_eq!(cells[2].x, 7);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn split_uniform_rejects_zero() {
        Rect::frame(8, 8).split_uniform(0, 1);
    }

    #[test]
    fn grown_respects_bounds() {
        let bounds = Rect::frame(100, 100);
        let r = Rect::new(80, 90, 10, 5);
        let g = r.grown(50, 50, &bounds);
        assert_eq!(g, Rect::new(80, 90, 20, 10));
    }

    #[test]
    fn clamped_to_bounds() {
        let bounds = Rect::frame(100, 100);
        let r = Rect::new(90, 90, 20, 20);
        assert_eq!(r.clamped_to(&bounds), Rect::new(90, 90, 10, 10));
        let outside = Rect::new(200, 200, 5, 5);
        assert!(outside.clamped_to(&bounds).is_empty());
    }

    #[test]
    fn samples_iterates_raster_order() {
        let r = Rect::new(1, 1, 2, 2);
        let pts: Vec<_> = r.samples().collect();
        assert_eq!(pts, vec![(1, 1), (2, 1), (1, 2), (2, 2)]);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Rect::new(1, 2, 3, 4).to_string(), "3x4@(1,2)");
    }
}

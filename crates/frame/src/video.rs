//! Video sequences and frame sources.

use crate::{Frame, Resolution};
use serde::{Deserialize, Serialize};

/// A source of video frames with fixed resolution and frame rate.
///
/// Both stored clips ([`VideoClip`]) and procedural generators
/// (`medvt_frame::synth::PhantomVideo`) implement this, so the
/// transcoding pipeline is agnostic to where pictures come from.
pub trait FrameSource {
    /// Resolution of every frame produced.
    fn resolution(&self) -> Resolution;

    /// Nominal frames per second.
    fn fps(&self) -> f64;

    /// Produces frame number `index` (display order), or `None` past the
    /// end of finite sources.
    fn frame(&mut self, index: usize) -> Option<Frame>;

    /// Total number of frames for finite sources, `None` for unbounded
    /// generators.
    fn len_hint(&self) -> Option<usize>;
}

/// An in-memory video clip: decoded master material ready to transcode.
///
/// # Examples
///
/// ```
/// use medvt_frame::{Frame, FrameSource, Resolution, VideoClip};
///
/// let res = Resolution::new(32, 32);
/// let mut clip = VideoClip::new(res, 24.0);
/// clip.push(Frame::black(res));
/// clip.push(Frame::flat(res, 200));
/// assert_eq!(clip.len(), 2);
/// assert_eq!(clip.frame(1).unwrap().y().get(0, 0), 200);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VideoClip {
    resolution: Resolution,
    fps: f64,
    frames: Vec<Frame>,
}

impl VideoClip {
    /// Creates an empty clip.
    ///
    /// # Panics
    ///
    /// Panics when `fps` is not strictly positive and finite.
    pub fn new(resolution: Resolution, fps: f64) -> Self {
        assert!(fps.is_finite() && fps > 0.0, "fps must be positive");
        Self {
            resolution,
            fps,
            frames: Vec::new(),
        }
    }

    /// Creates a clip from pre-built frames.
    ///
    /// # Panics
    ///
    /// Panics when `fps` is invalid or any frame's resolution differs
    /// from `resolution`.
    pub fn from_frames(resolution: Resolution, fps: f64, frames: Vec<Frame>) -> Self {
        let mut clip = Self::new(resolution, fps);
        for f in frames {
            clip.push(f);
        }
        clip
    }

    /// Appends a frame.
    ///
    /// # Panics
    ///
    /// Panics when the frame resolution does not match the clip.
    pub fn push(&mut self, frame: Frame) {
        assert_eq!(
            frame.resolution(),
            self.resolution,
            "frame resolution mismatch"
        );
        self.frames.push(frame);
    }

    /// Clip resolution.
    pub fn resolution(&self) -> Resolution {
        self.resolution
    }

    /// Nominal frames per second.
    pub fn fps(&self) -> f64 {
        self.fps
    }

    /// Number of frames stored.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// `true` when the clip holds no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Clip duration in seconds.
    pub fn duration_secs(&self) -> f64 {
        self.frames.len() as f64 / self.fps
    }

    /// Borrows frame `index` if present.
    pub fn get(&self, index: usize) -> Option<&Frame> {
        self.frames.get(index)
    }

    /// Borrows all frames.
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// Iterates over the frames.
    pub fn iter(&self) -> std::slice::Iter<'_, Frame> {
        self.frames.iter()
    }

    /// Collects the first `n` frames of any [`FrameSource`] into a clip.
    ///
    /// Useful for materializing a deterministic phantom video once and
    /// feeding it to several encoders under comparison.
    pub fn capture<S: FrameSource>(source: &mut S, n: usize) -> Self {
        let mut clip = Self::new(source.resolution(), source.fps());
        for i in 0..n {
            match source.frame(i) {
                Some(f) => clip.push(f),
                None => break,
            }
        }
        clip
    }
}

impl FrameSource for VideoClip {
    fn resolution(&self) -> Resolution {
        self.resolution
    }

    fn fps(&self) -> f64 {
        self.fps
    }

    fn frame(&mut self, index: usize) -> Option<Frame> {
        self.frames.get(index).cloned()
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.frames.len())
    }
}

impl<'a> IntoIterator for &'a VideoClip {
    type Item = &'a Frame;
    type IntoIter = std::slice::Iter<'a, Frame>;

    fn into_iter(self) -> Self::IntoIter {
        self.frames.iter()
    }
}

impl Extend<Frame> for VideoClip {
    fn extend<T: IntoIterator<Item = Frame>>(&mut self, iter: T) {
        for f in iter {
            self.push(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn res() -> Resolution {
        Resolution::new(16, 16)
    }

    #[test]
    fn push_and_duration() {
        let mut clip = VideoClip::new(res(), 24.0);
        assert!(clip.is_empty());
        for _ in 0..48 {
            clip.push(Frame::black(res()));
        }
        assert_eq!(clip.len(), 48);
        assert!((clip.duration_secs() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "resolution mismatch")]
    fn push_rejects_wrong_resolution() {
        let mut clip = VideoClip::new(res(), 24.0);
        clip.push(Frame::black(Resolution::new(32, 32)));
    }

    #[test]
    #[should_panic(expected = "fps")]
    fn zero_fps_rejected() {
        VideoClip::new(res(), 0.0);
    }

    #[test]
    fn frame_source_impl() {
        let mut clip = VideoClip::from_frames(
            res(),
            24.0,
            vec![Frame::flat(res(), 1), Frame::flat(res(), 2)],
        );
        assert_eq!(clip.len_hint(), Some(2));
        assert_eq!(clip.frame(0).unwrap().y().get(0, 0), 1);
        assert_eq!(clip.frame(1).unwrap().y().get(0, 0), 2);
        assert!(clip.frame(2).is_none());
    }

    #[test]
    fn capture_copies_frames() {
        let mut src = VideoClip::from_frames(
            res(),
            24.0,
            vec![
                Frame::flat(res(), 5),
                Frame::flat(res(), 6),
                Frame::flat(res(), 7),
            ],
        );
        let clip = VideoClip::capture(&mut src, 2);
        assert_eq!(clip.len(), 2);
        assert_eq!(clip.get(1).unwrap().y().get(0, 0), 6);
        // Capturing more than available stops early.
        let all = VideoClip::capture(&mut src, 10);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn extend_and_iter() {
        let mut clip = VideoClip::new(res(), 24.0);
        clip.extend(vec![Frame::black(res()); 3]);
        assert_eq!(clip.iter().count(), 3);
        assert_eq!((&clip).into_iter().count(), 3);
    }
}

//! First-order statistics over plane regions.
//!
//! The content analyzer (paper §III-A) classifies tile texture by the
//! *coefficient of variation* (CV = σ/μ) of luma samples, and probes
//! motion by comparing a handful of salient sample positions. Both need
//! cheap single-pass statistics, which this module provides.

use crate::{Plane, Rect};
use serde::{Deserialize, Serialize};

/// Single-pass statistics of the samples inside one plane region.
///
/// # Examples
///
/// ```
/// use medvt_frame::{Plane, Rect, RegionStats};
///
/// let mut p = Plane::filled(8, 8, 100);
/// p.set(3, 3, 200);
/// let s = RegionStats::of(&p, &Rect::frame(8, 8));
/// assert_eq!(s.max, 200);
/// assert_eq!(s.max_pos, (3, 3));
/// assert!(s.cv() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegionStats {
    /// Arithmetic mean of the samples.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Smallest sample value.
    pub min: u8,
    /// Largest sample value.
    pub max: u8,
    /// Coordinates `(col, row)` of the first occurrence of `max`.
    pub max_pos: (usize, usize),
    /// Number of samples aggregated.
    pub count: usize,
}

impl RegionStats {
    /// Computes statistics over `rect` of `plane` in one pass.
    ///
    /// # Panics
    ///
    /// Panics when `rect` is empty or not fully inside the plane.
    pub fn of(plane: &Plane, rect: &Rect) -> Self {
        assert!(!rect.is_empty(), "cannot take stats of an empty rect");
        assert!(
            plane.bounds().contains_rect(rect),
            "rect {rect} outside plane"
        );
        let mut sum = 0u64;
        let mut sum_sq = 0u64;
        let mut min = u8::MAX;
        let mut max = u8::MIN;
        let mut max_pos = (rect.x, rect.y);
        for row in rect.y..rect.bottom() {
            for (i, &s) in plane.row(row)[rect.x..rect.right()].iter().enumerate() {
                sum += s as u64;
                sum_sq += (s as u64) * (s as u64);
                if s < min {
                    min = s;
                }
                if s > max {
                    max = s;
                    max_pos = (rect.x + i, row);
                }
            }
        }
        let n = rect.area() as f64;
        let mean = sum as f64 / n;
        let var = (sum_sq as f64 / n - mean * mean).max(0.0);
        Self {
            mean,
            stddev: var.sqrt(),
            min,
            max,
            max_pos,
            count: rect.area(),
        }
    }

    /// Coefficient of variation σ/μ — the texture measure of paper Eq. (1).
    ///
    /// Flat black regions (μ = 0) have zero diversity, so the CV is
    /// defined as 0 there rather than dividing by zero.
    pub fn cv(&self) -> f64 {
        if self.mean <= f64::EPSILON {
            0.0
        } else {
            self.stddev / self.mean
        }
    }

    /// Population variance σ².
    pub fn variance(&self) -> f64 {
        self.stddev * self.stddev
    }

    /// Dynamic range `max - min` of the region.
    pub fn range(&self) -> u8 {
        self.max - self.min
    }
}

/// Mean of all samples in `rect`.
///
/// # Panics
///
/// Panics when `rect` is empty or not fully inside the plane.
pub fn region_mean(plane: &Plane, rect: &Rect) -> f64 {
    RegionStats::of(plane, rect).mean
}

/// Coefficient of variation of `rect`, see [`RegionStats::cv`].
///
/// # Panics
///
/// Panics when `rect` is empty or not fully inside the plane.
pub fn region_cv(plane: &Plane, rect: &Rect) -> f64 {
    RegionStats::of(plane, rect).cv()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_plane() -> Plane {
        let mut p = Plane::new(4, 4);
        for (i, s) in p.samples_mut().iter_mut().enumerate() {
            *s = (i * 10) as u8;
        }
        p
    }

    #[test]
    fn constant_region_has_zero_stddev() {
        let p = Plane::filled(6, 6, 42);
        let s = RegionStats::of(&p, &Rect::frame(6, 6));
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.cv(), 0.0);
        assert_eq!(s.min, 42);
        assert_eq!(s.max, 42);
        assert_eq!(s.range(), 0);
    }

    #[test]
    fn black_region_cv_is_zero_not_nan() {
        let p = Plane::new(4, 4);
        let s = RegionStats::of(&p, &Rect::frame(4, 4));
        assert_eq!(s.cv(), 0.0);
        assert!(s.cv().is_finite());
    }

    #[test]
    fn mean_and_stddev_match_manual_computation() {
        let p = Plane::from_vec(2, 2, vec![1, 2, 3, 4]).unwrap();
        let s = RegionStats::of(&p, &Rect::frame(2, 2));
        assert!((s.mean - 2.5).abs() < 1e-12);
        // Population variance of {1,2,3,4} = 1.25.
        assert!((s.variance() - 1.25).abs() < 1e-9);
    }

    #[test]
    fn max_pos_first_occurrence() {
        let p = Plane::from_vec(3, 1, vec![9, 9, 1]).unwrap();
        let s = RegionStats::of(&p, &Rect::frame(3, 1));
        assert_eq!(s.max_pos, (0, 0));
    }

    #[test]
    fn subregion_stats_ignore_outside() {
        let p = ramp_plane();
        let s = RegionStats::of(&p, &Rect::new(0, 0, 1, 1));
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.count, 1);
        let s2 = RegionStats::of(&p, &Rect::new(3, 3, 1, 1));
        assert_eq!(s2.mean, 150.0);
    }

    #[test]
    fn helpers_agree_with_struct() {
        let p = ramp_plane();
        let r = Rect::frame(4, 4);
        let s = RegionStats::of(&p, &r);
        assert_eq!(region_mean(&p, &r), s.mean);
        assert_eq!(region_cv(&p, &r), s.cv());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_rect_panics() {
        let p = Plane::new(4, 4);
        RegionStats::of(&p, &Rect::new(0, 0, 0, 0));
    }

    #[test]
    fn textured_region_has_higher_cv_than_flat() {
        let mut textured = Plane::filled(8, 8, 100);
        for row in 0..8 {
            for col in 0..8 {
                if (row + col) % 2 == 0 {
                    textured.set(col, row, 30);
                }
            }
        }
        let flat = Plane::filled(8, 8, 100);
        let r = Rect::frame(8, 8);
        assert!(region_cv(&textured, &r) > region_cv(&flat, &r));
    }
}

//! PGM/PPM image output for visual inspection of frames and tilings.
//!
//! The experiment harness uses these to regenerate Fig. 1-style images
//! (frame content, tiling overlays, texture/motion maps).

use crate::{Frame, FrameError, Plane, Rect};
use std::io::Write;
use std::path::Path;

/// Writes a luma plane as a binary PGM (P5) image.
///
/// # Errors
///
/// Returns [`FrameError::Io`] on write failure.
pub fn write_pgm<W: Write>(mut w: W, plane: &Plane) -> Result<(), FrameError> {
    write!(w, "P5\n{} {}\n255\n", plane.width(), plane.height())?;
    w.write_all(plane.samples())?;
    Ok(())
}

/// Writes a luma plane as a PGM file at `path`.
///
/// # Errors
///
/// Returns [`FrameError::Io`] on file-system failure.
pub fn save_pgm<P: AsRef<Path>>(path: P, plane: &Plane) -> Result<(), FrameError> {
    let f = std::fs::File::create(path)?;
    write_pgm(std::io::BufWriter::new(f), plane)
}

/// Converts a 4:2:0 frame to interleaved RGB24 using BT.601.
fn frame_to_rgb(frame: &Frame) -> Vec<u8> {
    let w = frame.y().width();
    let h = frame.y().height();
    let mut rgb = Vec::with_capacity(w * h * 3);
    for row in 0..h {
        for col in 0..w {
            let y = frame.y().get(col, row) as f64;
            let u = frame.u().get_clamped(col as isize / 2, row as isize / 2) as f64 - 128.0;
            let v = frame.v().get_clamped(col as isize / 2, row as isize / 2) as f64 - 128.0;
            let r = y + 1.402 * v;
            let g = y - 0.344_136 * u - 0.714_136 * v;
            let b = y + 1.772 * u;
            rgb.push(r.clamp(0.0, 255.0) as u8);
            rgb.push(g.clamp(0.0, 255.0) as u8);
            rgb.push(b.clamp(0.0, 255.0) as u8);
        }
    }
    rgb
}

/// Writes a frame as a binary PPM (P6) image.
///
/// # Errors
///
/// Returns [`FrameError::Io`] on write failure.
pub fn write_ppm<W: Write>(mut w: W, frame: &Frame) -> Result<(), FrameError> {
    let wpx = frame.y().width();
    let hpx = frame.y().height();
    write!(w, "P6\n{wpx} {hpx}\n255\n")?;
    w.write_all(&frame_to_rgb(frame))?;
    Ok(())
}

/// Writes a frame as a PPM file at `path`.
///
/// # Errors
///
/// Returns [`FrameError::Io`] on file-system failure.
pub fn save_ppm<P: AsRef<Path>>(path: P, frame: &Frame) -> Result<(), FrameError> {
    let f = std::fs::File::create(path)?;
    write_ppm(std::io::BufWriter::new(f), frame)
}

/// Draws 1-sample-wide rectangle outlines into a copy of `plane`, used
/// to visualize tile structures (Fig. 1 / Fig. 3 style).
pub fn overlay_rects(plane: &Plane, rects: &[Rect], value: u8) -> Plane {
    let mut out = plane.clone();
    let bounds = out.bounds();
    for r in rects {
        let r = r.clamped_to(&bounds);
        if r.is_empty() {
            continue;
        }
        for col in r.x..r.right() {
            out.set(col, r.y, value);
            out.set(col, r.bottom() - 1, value);
        }
        for row in r.y..r.bottom() {
            out.set(r.x, row, value);
            out.set(r.right() - 1, row, value);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Resolution;

    #[test]
    fn pgm_header_and_payload() {
        let p = Plane::filled(4, 2, 9);
        let mut buf = Vec::new();
        write_pgm(&mut buf, &p).unwrap();
        let header = b"P5\n4 2\n255\n";
        assert_eq!(&buf[..header.len()], header);
        assert_eq!(buf.len(), header.len() + 8);
        assert!(buf[header.len()..].iter().all(|&b| b == 9));
    }

    #[test]
    fn ppm_has_rgb_payload() {
        let f = Frame::flat(Resolution::new(4, 2), 128);
        let mut buf = Vec::new();
        write_ppm(&mut buf, &f).unwrap();
        let header = b"P6\n4 2\n255\n";
        assert_eq!(&buf[..header.len()], header);
        assert_eq!(buf.len(), header.len() + 4 * 2 * 3);
    }

    #[test]
    fn neutral_chroma_yields_gray() {
        let f = Frame::flat(Resolution::new(2, 2), 100);
        let rgb = frame_to_rgb(&f);
        // With u=v=128 the RGB triplet equals the luma.
        assert_eq!(&rgb[0..3], &[100, 100, 100]);
    }

    #[test]
    fn overlay_draws_borders_only() {
        let p = Plane::new(8, 8);
        let out = overlay_rects(&p, &[Rect::new(2, 2, 4, 4)], 255);
        assert_eq!(out.get(2, 2), 255);
        assert_eq!(out.get(5, 2), 255);
        assert_eq!(out.get(2, 5), 255);
        // Interior untouched.
        assert_eq!(out.get(3, 3), 0);
        // Original not mutated.
        assert_eq!(p.get(2, 2), 0);
    }

    #[test]
    fn overlay_clamps_out_of_bounds_rects() {
        let p = Plane::new(4, 4);
        let out = overlay_rects(&p, &[Rect::new(2, 2, 10, 10)], 200);
        assert_eq!(out.get(3, 3), 200);
    }

    #[test]
    fn save_round_trip_via_tempfile() {
        let dir = std::env::temp_dir().join("medvt_pnm_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.pgm");
        save_pgm(&path, &Plane::filled(3, 3, 7)).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.starts_with(b"P5"));
        std::fs::remove_file(&path).ok();
    }
}

//! Minimal YUV4MPEG2 (Y4M) reader/writer for 4:2:0 material.
//!
//! Y4M is the interchange format Kvazaar and the HM reference software
//! consume; supporting it lets `medvt` exchange raw video with standard
//! tools when real clinical material is available.

use crate::{Frame, FrameError, Plane, Resolution, VideoClip};
use std::io::{BufRead, Write};
use std::path::Path;

/// Writes a clip as YUV4MPEG2 with C420 chroma.
///
/// # Errors
///
/// Returns [`FrameError::Io`] on write failure.
pub fn write_y4m<W: Write>(mut w: W, clip: &VideoClip) -> Result<(), FrameError> {
    let res = clip.resolution();
    // Rational fps: use round numerator over 1 when integral, else x1000.
    let fps = clip.fps();
    let (num, den) = if (fps - fps.round()).abs() < 1e-9 {
        (fps.round() as u64, 1u64)
    } else {
        ((fps * 1000.0).round() as u64, 1000u64)
    };
    writeln!(
        w,
        "YUV4MPEG2 W{} H{} F{}:{} Ip A1:1 C420",
        res.width, res.height, num, den
    )?;
    for frame in clip {
        w.write_all(b"FRAME\n")?;
        w.write_all(frame.y().samples())?;
        w.write_all(frame.u().samples())?;
        w.write_all(frame.v().samples())?;
    }
    Ok(())
}

/// Writes a clip to a `.y4m` file.
///
/// # Errors
///
/// Returns [`FrameError::Io`] on file-system failure.
pub fn save_y4m<P: AsRef<Path>>(path: P, clip: &VideoClip) -> Result<(), FrameError> {
    let f = std::fs::File::create(path)?;
    write_y4m(std::io::BufWriter::new(f), clip)
}

/// Reads a YUV4MPEG2 stream (C420 only) into a clip.
///
/// A mutable reference to any `BufRead` can be passed as the reader.
///
/// # Errors
///
/// Returns [`FrameError::Parse`] for malformed headers or unsupported
/// chroma, and [`FrameError::Io`] for underlying read failures.
pub fn read_y4m<R: BufRead>(mut r: R) -> Result<VideoClip, FrameError> {
    let mut header = String::new();
    r.read_line(&mut header)?;
    let header = header.trim_end();
    if !header.starts_with("YUV4MPEG2") {
        return Err(FrameError::Parse("missing YUV4MPEG2 magic".into()));
    }
    let mut width = None;
    let mut height = None;
    let mut fps = 24.0f64;
    for token in header.split_whitespace().skip(1) {
        let (tag, rest) = token.split_at(1);
        match tag {
            "W" => width = rest.parse::<usize>().ok(),
            "H" => height = rest.parse::<usize>().ok(),
            "F" => {
                let mut parts = rest.splitn(2, ':');
                let num: f64 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| FrameError::Parse("bad frame rate".into()))?;
                let den: f64 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| FrameError::Parse("bad frame rate".into()))?;
                if den <= 0.0 {
                    return Err(FrameError::Parse("zero frame-rate denominator".into()));
                }
                fps = num / den;
            }
            "C" if !rest.starts_with("420") => {
                return Err(FrameError::Parse(format!("unsupported chroma C{rest}")));
            }
            _ => {} // interlacing/aspect ignored
        }
    }
    let (width, height) = match (width, height) {
        (Some(w), Some(h)) => (w, h),
        _ => return Err(FrameError::Parse("missing W/H in header".into())),
    };
    let res = Resolution::new(width, height);
    res.validate_420()?;
    let mut clip = VideoClip::new(res, fps);
    let y_len = width * height;
    let c_len = y_len / 4;
    loop {
        let mut marker = String::new();
        let n = r.read_line(&mut marker)?;
        if n == 0 {
            break; // clean EOF
        }
        if !marker.starts_with("FRAME") {
            return Err(FrameError::Parse(format!(
                "expected FRAME marker, got {marker:?}"
            )));
        }
        let mut y = vec![0u8; y_len];
        let mut u = vec![0u8; c_len];
        let mut v = vec![0u8; c_len];
        r.read_exact(&mut y)?;
        r.read_exact(&mut u)?;
        r.read_exact(&mut v)?;
        let frame = Frame::from_planes(
            Plane::from_vec(width, height, y)?,
            Plane::from_vec(width / 2, height / 2, u)?,
            Plane::from_vec(width / 2, height / 2, v)?,
        )?;
        clip.push(frame);
    }
    Ok(clip)
}

/// Reads a `.y4m` file into a clip.
///
/// # Errors
///
/// See [`read_y4m`].
pub fn load_y4m<P: AsRef<Path>>(path: P) -> Result<VideoClip, FrameError> {
    let f = std::fs::File::open(path)?;
    read_y4m(std::io::BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_clip() -> VideoClip {
        let res = Resolution::new(8, 6);
        let mut clip = VideoClip::new(res, 24.0);
        let mut f = Frame::flat(res, 100);
        f.y_mut().set(3, 3, 250);
        clip.push(f);
        clip.push(Frame::flat(res, 50));
        clip
    }

    #[test]
    fn round_trip_preserves_samples() {
        let clip = sample_clip();
        let mut buf = Vec::new();
        write_y4m(&mut buf, &clip).unwrap();
        let back = read_y4m(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.resolution(), clip.resolution());
        assert_eq!(back.fps(), 24.0);
        assert_eq!(back.get(0).unwrap().y().get(3, 3), 250);
        assert_eq!(back.get(1).unwrap().y().get(0, 0), 50);
    }

    #[test]
    fn header_contains_geometry() {
        let clip = sample_clip();
        let mut buf = Vec::new();
        write_y4m(&mut buf, &clip).unwrap();
        let text = String::from_utf8_lossy(&buf[..40]).to_string();
        assert!(text.contains("W8"), "{text}");
        assert!(text.contains("H6"));
        assert!(text.contains("F24:1"));
        assert!(text.contains("C420"));
    }

    #[test]
    fn fractional_fps_round_trips() {
        let res = Resolution::new(4, 4);
        let clip = VideoClip::from_frames(res, 23.976, vec![Frame::black(res)]);
        let mut buf = Vec::new();
        write_y4m(&mut buf, &clip).unwrap();
        let back = read_y4m(std::io::Cursor::new(buf)).unwrap();
        assert!((back.fps() - 23.976).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_y4m(std::io::Cursor::new(b"NOPE\n".to_vec())).unwrap_err();
        assert!(matches!(err, FrameError::Parse(_)));
    }

    #[test]
    fn rejects_unsupported_chroma() {
        let data = b"YUV4MPEG2 W4 H4 F24:1 C444\n".to_vec();
        let err = read_y4m(std::io::Cursor::new(data)).unwrap_err();
        assert!(err.to_string().contains("C444"));
    }

    #[test]
    fn rejects_truncated_frame() {
        let mut buf = Vec::new();
        write_y4m(&mut buf, &sample_clip()).unwrap();
        buf.truncate(buf.len() - 5);
        assert!(read_y4m(std::io::Cursor::new(buf)).is_err());
    }

    #[test]
    fn empty_stream_yields_empty_clip() {
        let data = b"YUV4MPEG2 W4 H4 F24:1 C420\n".to_vec();
        let clip = read_y4m(std::io::Cursor::new(data)).unwrap();
        assert!(clip.is_empty());
    }
}

//! A single 8-bit sample plane (luma or chroma).

use crate::{FrameError, Rect};
use serde::{Deserialize, Serialize};

/// A rectangular plane of 8-bit samples stored row-major.
///
/// Planes are the unit every other crate operates on: the encoder reads
/// and reconstructs planes, motion search matches blocks between planes,
/// and the content analyzer computes statistics over plane regions.
///
/// # Examples
///
/// ```
/// use medvt_frame::Plane;
///
/// let mut p = Plane::filled(16, 16, 128);
/// p.set(3, 4, 200);
/// assert_eq!(p.get(3, 4), 200);
/// assert_eq!(p.get(0, 0), 128);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Plane {
    width: usize,
    height: usize,
    data: Vec<u8>,
}

impl Plane {
    /// Creates a zero-filled plane.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        Self::filled(width, height, 0)
    }

    /// Creates a plane filled with `value`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn filled(width: usize, height: usize, value: u8) -> Self {
        assert!(width > 0 && height > 0, "plane dimensions must be non-zero");
        Self {
            width,
            height,
            data: vec![value; width * height],
        }
    }

    /// Wraps an existing sample buffer.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::BufferSize`] when `data.len() != width * height`.
    pub fn from_vec(width: usize, height: usize, data: Vec<u8>) -> Result<Self, FrameError> {
        if data.len() != width * height {
            return Err(FrameError::BufferSize {
                expected: width * height,
                actual: data.len(),
            });
        }
        Ok(Self {
            width,
            height,
            data,
        })
    }

    /// Plane width in samples.
    pub const fn width(&self) -> usize {
        self.width
    }

    /// Plane height in samples.
    pub const fn height(&self) -> usize {
        self.height
    }

    /// The rectangle covering the whole plane.
    pub const fn bounds(&self) -> Rect {
        Rect::frame(self.width, self.height)
    }

    /// Borrows the raw sample buffer.
    pub fn samples(&self) -> &[u8] {
        &self.data
    }

    /// Mutably borrows the raw sample buffer.
    pub fn samples_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Consumes the plane and returns its sample buffer.
    pub fn into_vec(self) -> Vec<u8> {
        self.data
    }

    /// Sample at `(col, row)`.
    ///
    /// # Panics
    ///
    /// Panics when the coordinate is out of bounds.
    #[inline]
    pub fn get(&self, col: usize, row: usize) -> u8 {
        debug_assert!(col < self.width && row < self.height);
        self.data[row * self.width + col]
    }

    /// Sample at `(col, row)` with the coordinate clamped to the plane,
    /// replicating edge samples like HEVC reference-picture padding.
    #[inline]
    pub fn get_clamped(&self, col: isize, row: isize) -> u8 {
        let c = col.clamp(0, self.width as isize - 1) as usize;
        let r = row.clamp(0, self.height as isize - 1) as usize;
        self.data[r * self.width + c]
    }

    /// Writes `value` at `(col, row)`.
    ///
    /// # Panics
    ///
    /// Panics when the coordinate is out of bounds.
    #[inline]
    pub fn set(&mut self, col: usize, row: usize, value: u8) {
        debug_assert!(col < self.width && row < self.height);
        self.data[row * self.width + col] = value;
    }

    /// Borrows one full row of samples.
    #[inline]
    pub fn row(&self, row: usize) -> &[u8] {
        let start = row * self.width;
        &self.data[start..start + self.width]
    }

    /// Mutably borrows one full row of samples.
    #[inline]
    pub fn row_mut(&mut self, row: usize) -> &mut [u8] {
        let start = row * self.width;
        &mut self.data[start..start + self.width]
    }

    /// Borrows `w` samples of `row` starting at column `col`.
    ///
    /// # Panics
    ///
    /// Panics when the span reaches outside the plane.
    #[inline]
    pub fn row_span(&self, row: usize, col: usize, w: usize) -> &[u8] {
        debug_assert!(col + w <= self.width && row < self.height);
        let start = row * self.width + col;
        &self.data[start..start + w]
    }

    /// Borrows the sample buffer from `(col, row)` to the end of the
    /// plane. Row `r` of a block anchored at that origin starts at
    /// offset `r * width()` in the returned slice, which lets strided
    /// kernels walk a block without per-row bounds arithmetic.
    ///
    /// # Panics
    ///
    /// Panics when the origin is outside the plane.
    #[inline]
    pub fn span_from(&self, col: usize, row: usize) -> &[u8] {
        debug_assert!(col < self.width && row < self.height);
        &self.data[row * self.width + col..]
    }

    /// Fills `rect` (clamped to the plane) with `value`.
    pub fn fill_rect(&mut self, rect: &Rect, value: u8) {
        let r = rect.clamped_to(&self.bounds());
        for row in r.y..r.bottom() {
            self.row_mut(row)[r.x..r.right()].fill(value);
        }
    }

    /// Copies the samples of `rect` into a fresh row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics when `rect` is not fully inside the plane.
    pub fn copy_rect(&self, rect: &Rect) -> Vec<u8> {
        let mut out = Vec::new();
        self.copy_rect_into(rect, &mut out);
        out
    }

    /// Allocation-free [`Plane::copy_rect`]: clears `out` and fills it
    /// with the samples of `rect` in raster order. Reusing `out`
    /// across blocks makes block gathering zero-allocation in steady
    /// state.
    ///
    /// # Panics
    ///
    /// Panics when `rect` is not fully inside the plane.
    pub fn copy_rect_into(&self, rect: &Rect, out: &mut Vec<u8>) {
        assert!(
            self.bounds().contains_rect(rect),
            "rect {rect} outside plane {}x{}",
            self.width,
            self.height
        );
        out.clear();
        out.reserve(rect.area());
        for row in rect.y..rect.bottom() {
            out.extend_from_slice(&self.row(row)[rect.x..rect.right()]);
        }
    }

    /// Copies a `w x h` block whose top-left corner may lie outside the
    /// plane; out-of-bounds samples replicate the nearest edge sample.
    ///
    /// This is the access pattern of motion compensation with unrestricted
    /// motion vectors.
    pub fn copy_block_clamped(&self, x: isize, y: isize, w: usize, h: usize) -> Vec<u8> {
        let mut out = Vec::new();
        self.copy_block_clamped_into(x, y, w, h, &mut out);
        out
    }

    /// Allocation-free [`Plane::copy_block_clamped`]: clears `out` and
    /// fills it with the clamped block.
    ///
    /// Blocks fully inside the plane (the overwhelming majority of
    /// motion-compensation reads) are copied row-by-row with
    /// `copy_from_slice`; only boundary blocks take the per-sample
    /// clamped path.
    pub fn copy_block_clamped_into(
        &self,
        x: isize,
        y: isize,
        w: usize,
        h: usize,
        out: &mut Vec<u8>,
    ) {
        out.clear();
        out.reserve(w * h);
        let interior =
            x >= 0 && y >= 0 && (x as usize) + w <= self.width && (y as usize) + h <= self.height;
        if interior {
            let (x, y) = (x as usize, y as usize);
            for row in y..y + h {
                out.extend_from_slice(&self.row(row)[x..x + w]);
            }
        } else {
            for row in 0..h as isize {
                for col in 0..w as isize {
                    out.push(self.get_clamped(x + col, y + row));
                }
            }
        }
    }

    /// Writes a row-major `rect`-sized buffer into the plane at `rect`.
    ///
    /// # Panics
    ///
    /// Panics when `rect` is not fully inside the plane or the buffer size
    /// does not match `rect.area()`.
    pub fn write_rect(&mut self, rect: &Rect, samples: &[u8]) {
        assert!(
            self.bounds().contains_rect(rect),
            "rect {rect} outside plane"
        );
        assert_eq!(samples.len(), rect.area(), "buffer size mismatch");
        for (i, row) in (rect.y..rect.bottom()).enumerate() {
            let src = &samples[i * rect.w..(i + 1) * rect.w];
            self.row_mut(row)[rect.x..rect.right()].copy_from_slice(src);
        }
    }

    /// Iterates over the samples of `rect` in raster order.
    ///
    /// # Panics
    ///
    /// Panics when `rect` is not fully inside the plane.
    pub fn rect_samples<'a>(&'a self, rect: &Rect) -> impl Iterator<Item = u8> + 'a {
        assert!(
            self.bounds().contains_rect(rect),
            "rect {rect} outside plane"
        );
        let rect = *rect;
        (rect.y..rect.bottom())
            .flat_map(move |row| self.row(row)[rect.x..rect.right()].iter().copied())
    }

    /// Downsamples by 2x in both dimensions via 2x2 box averaging, used to
    /// derive chroma planes and coarse analysis pyramids.
    pub fn halved(&self) -> Plane {
        let w = (self.width / 2).max(1);
        let h = (self.height / 2).max(1);
        let mut out = Plane::new(w, h);
        for row in 0..h {
            for col in 0..w {
                let x = col * 2;
                let y = row * 2;
                let a = self.get(x, y) as u16;
                let b = self.get_clamped(x as isize + 1, y as isize) as u16;
                let c = self.get_clamped(x as isize, y as isize + 1) as u16;
                let d = self.get_clamped(x as isize + 1, y as isize + 1) as u16;
                out.set(col, row, ((a + b + c + d + 2) / 4) as u8);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filled_and_get_set() {
        let mut p = Plane::filled(4, 3, 7);
        assert_eq!(p.width(), 4);
        assert_eq!(p.height(), 3);
        assert!(p.samples().iter().all(|&s| s == 7));
        p.set(3, 2, 99);
        assert_eq!(p.get(3, 2), 99);
    }

    #[test]
    fn from_vec_validates_len() {
        assert!(Plane::from_vec(2, 2, vec![0; 4]).is_ok());
        let err = Plane::from_vec(2, 2, vec![0; 5]).unwrap_err();
        assert!(matches!(
            err,
            FrameError::BufferSize {
                expected: 4,
                actual: 5
            }
        ));
    }

    #[test]
    fn get_clamped_replicates_edges() {
        let mut p = Plane::new(2, 2);
        p.set(0, 0, 10);
        p.set(1, 0, 20);
        p.set(0, 1, 30);
        p.set(1, 1, 40);
        assert_eq!(p.get_clamped(-5, -5), 10);
        assert_eq!(p.get_clamped(9, -1), 20);
        assert_eq!(p.get_clamped(-1, 9), 30);
        assert_eq!(p.get_clamped(9, 9), 40);
    }

    #[test]
    fn fill_and_copy_rect_round_trip() {
        let mut p = Plane::new(8, 8);
        let r = Rect::new(2, 3, 4, 2);
        p.fill_rect(&r, 55);
        let buf = p.copy_rect(&r);
        assert_eq!(buf, vec![55; 8]);
        // Outside the rect untouched.
        assert_eq!(p.get(1, 3), 0);
        assert_eq!(p.get(6, 3), 0);
    }

    #[test]
    fn write_rect_round_trip() {
        let mut p = Plane::new(6, 6);
        let r = Rect::new(1, 1, 3, 2);
        let buf: Vec<u8> = (0..6).collect();
        p.write_rect(&r, &buf);
        assert_eq!(p.copy_rect(&r), buf);
        assert_eq!(p.get(0, 0), 0);
    }

    #[test]
    fn copy_block_clamped_handles_negative_origin() {
        let mut p = Plane::new(3, 3);
        p.set(0, 0, 42);
        let block = p.copy_block_clamped(-2, -2, 2, 2);
        assert_eq!(block, vec![42; 4]);
    }

    #[test]
    fn copy_into_variants_reuse_and_match() {
        let mut p = Plane::new(8, 6);
        for (i, s) in p.samples_mut().iter_mut().enumerate() {
            *s = (i * 7 % 256) as u8;
        }
        let mut buf = vec![1, 2, 3]; // dirty buffer must be cleared
        let r = Rect::new(2, 1, 4, 3);
        p.copy_rect_into(&r, &mut buf);
        assert_eq!(buf, p.copy_rect(&r));
        // Interior fast path agrees with the clamped spec...
        p.copy_block_clamped_into(2, 1, 4, 3, &mut buf);
        assert_eq!(buf, p.copy_rect(&r));
        // ...and boundary blocks agree with per-sample clamping.
        p.copy_block_clamped_into(-1, 4, 4, 4, &mut buf);
        let expected: Vec<u8> = (0..4)
            .flat_map(|row| (0..4).map(move |col| (col - 1, 4 + row)))
            .map(|(c, r)| p.get_clamped(c, r))
            .collect();
        assert_eq!(buf, expected);
    }

    #[test]
    fn rect_samples_matches_copy_rect() {
        let mut p = Plane::new(5, 5);
        for (i, s) in p.samples_mut().iter_mut().enumerate() {
            *s = i as u8;
        }
        let r = Rect::new(1, 2, 3, 2);
        let collected: Vec<u8> = p.rect_samples(&r).collect();
        assert_eq!(collected, p.copy_rect(&r));
    }

    #[test]
    fn halved_averages_quads() {
        let p = Plane::from_vec(2, 2, vec![10, 20, 30, 40]).unwrap();
        let h = p.halved();
        assert_eq!(h.width(), 1);
        assert_eq!(h.height(), 1);
        assert_eq!(h.get(0, 0), 25);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_panics() {
        Plane::new(0, 4);
    }

    #[test]
    fn fill_rect_clamps_to_plane() {
        let mut p = Plane::new(4, 4);
        p.fill_rect(&Rect::new(2, 2, 10, 10), 9);
        assert_eq!(p.get(3, 3), 9);
        assert_eq!(p.get(1, 1), 0);
    }
}

//! Phantom bio-medical video generation.
//!
//! [`PhantomVideo`] substitutes the ten anonymized clinical videos of the
//! paper's evaluation (640x480 @ 24 fps): it renders a static anatomy
//! canvas once, then produces frames by sampling it through a
//! time-varying [`MotionPattern`] view, adding per-frame speckle and an
//! elliptical vignette that keeps corners dark and flat. That reproduces
//! every content property the paper's method exploits.

use crate::synth::anatomy::{render_canvas, BodyPart};
use crate::synth::motion::{MotionPattern, ViewTransform};
use crate::synth::noise::speckle;
use crate::{Frame, FrameSource, Plane, Resolution, VideoClip};
use serde::{Deserialize, Serialize};

/// Full parameterization of a phantom video.
///
/// Construct via [`PhantomVideo::builder`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhantomConfig {
    /// Anatomy class.
    pub body_part: BodyPart,
    /// Output resolution.
    pub resolution: Resolution,
    /// Frame rate.
    pub fps: f64,
    /// Texture realization seed.
    pub seed: u64,
    /// View trajectory; `None` selects the class default.
    pub motion: Option<MotionPattern>,
    /// Total frames, `None` = unbounded.
    pub frames: Option<usize>,
    /// Peak per-frame speckle amplitude in luma codes.
    pub noise_amplitude: f64,
    /// Texture contrast gain in `[0, 2]`.
    pub texture_gain: f64,
    /// Normalized elliptical radius where the vignette starts to fall.
    pub vignette_inner: f64,
    /// Normalized elliptical radius where the vignette reaches black.
    pub vignette_outer: f64,
}

impl Default for PhantomConfig {
    fn default() -> Self {
        Self {
            body_part: BodyPart::Brain,
            resolution: Resolution::VGA,
            fps: 24.0,
            seed: 1,
            motion: None,
            frames: None,
            noise_amplitude: 2.0,
            texture_gain: 1.0,
            vignette_inner: 0.60,
            vignette_outer: 1.20,
        }
    }
}

impl PhantomConfig {
    /// The motion actually used: the explicit override or the class default.
    pub fn effective_motion(&self) -> MotionPattern {
        self.motion.unwrap_or(default_motion(self.body_part))
    }
}

/// The clinically-motivated default trajectory per body part.
pub fn default_motion(part: BodyPart) -> MotionPattern {
    match part {
        BodyPart::Bones => MotionPattern::Pan { dx: 1.0, dy: 0.0 },
        BodyPart::LungChest => MotionPattern::Breathe {
            amplitude: 0.025,
            period: 96.0,
        },
        BodyPart::Brain => MotionPattern::Rotate { deg_per_frame: 0.4 },
        BodyPart::SpinalCord => MotionPattern::Pan { dx: 0.0, dy: 0.8 },
        BodyPart::LigamentTendon => MotionPattern::PanPause {
            dx: 0.9,
            dy: 0.45,
            move_frames: 24,
            pause_frames: 24,
        },
        BodyPart::Cardiac => MotionPattern::Breathe {
            amplitude: 0.04,
            period: 24.0,
        },
    }
}

/// Builder for [`PhantomVideo`].
///
/// # Examples
///
/// ```
/// use medvt_frame::synth::{BodyPart, PhantomVideo};
/// use medvt_frame::{FrameSource, Resolution};
///
/// let mut video = PhantomVideo::builder(BodyPart::Brain)
///     .resolution(Resolution::new(128, 96))
///     .seed(42)
///     .frames(24)
///     .build();
/// let frame = video.frame(0).expect("first frame exists");
/// assert_eq!(frame.resolution(), Resolution::new(128, 96));
/// ```
#[derive(Debug, Clone)]
pub struct PhantomVideoBuilder {
    config: PhantomConfig,
}

impl PhantomVideoBuilder {
    /// Sets the output resolution (default 640x480).
    pub fn resolution(mut self, res: Resolution) -> Self {
        self.config.resolution = res;
        self
    }

    /// Sets the frame rate (default 24).
    pub fn fps(mut self, fps: f64) -> Self {
        self.config.fps = fps;
        self
    }

    /// Sets the texture realization seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Overrides the class-default motion pattern.
    pub fn motion(mut self, motion: MotionPattern) -> Self {
        self.config.motion = Some(motion);
        self
    }

    /// Makes the video finite with `n` frames.
    pub fn frames(mut self, n: usize) -> Self {
        self.config.frames = Some(n);
        self
    }

    /// Sets the per-frame speckle amplitude in luma codes (default 2).
    pub fn noise_amplitude(mut self, amp: f64) -> Self {
        self.config.noise_amplitude = amp;
        self
    }

    /// Sets the texture contrast gain (default 1).
    pub fn texture_gain(mut self, gain: f64) -> Self {
        self.config.texture_gain = gain;
        self
    }

    /// Sets the vignette inner/outer normalized radii.
    pub fn vignette(mut self, inner: f64, outer: f64) -> Self {
        self.config.vignette_inner = inner;
        self.config.vignette_outer = outer;
        self
    }

    /// Renders the anatomy canvas and finishes the builder.
    ///
    /// # Panics
    ///
    /// Panics when the resolution is not 4:2:0 compatible or the
    /// vignette radii are not ordered `0 < inner < outer`.
    pub fn build(self) -> PhantomVideo {
        PhantomVideo::new(self.config)
    }
}

/// A deterministic procedural bio-medical video.
///
/// Implements [`FrameSource`]; frames are a pure function of the frame
/// index, so the source supports random access and is safe to share
/// between comparison runs.
#[derive(Debug, Clone)]
pub struct PhantomVideo {
    config: PhantomConfig,
    motion: MotionPattern,
    canvas: Plane,
    margin: usize,
}

impl PhantomVideo {
    /// Starts a builder for the given anatomy class.
    pub fn builder(body_part: BodyPart) -> PhantomVideoBuilder {
        PhantomVideoBuilder {
            config: PhantomConfig {
                body_part,
                ..PhantomConfig::default()
            },
        }
    }

    /// Builds the video from a complete configuration.
    ///
    /// # Panics
    ///
    /// Panics when the resolution is not 4:2:0 compatible or the
    /// vignette radii are not ordered `0 < inner < outer`.
    pub fn new(config: PhantomConfig) -> Self {
        config
            .resolution
            .validate_420()
            .expect("phantom resolution must be 4:2:0 compatible");
        assert!(
            config.vignette_inner > 0.0 && config.vignette_inner < config.vignette_outer,
            "vignette radii must satisfy 0 < inner < outer"
        );
        let res = config.resolution;
        // Margin absorbs the largest excursions of pan/rotate so sampling
        // rarely clamps.
        let margin = (res.width.max(res.height) / 4).max(16);
        // Anatomy occupies the central ~60% of the *output* frame
        // (paper Fig. 1: diagnostic content is centered, borders are
        // near-black), regardless of the canvas margin.
        let canvas = render_canvas(
            config.body_part,
            res.width + 2 * margin,
            res.height + 2 * margin,
            res.width as f64 * 0.26,
            res.height as f64 * 0.26,
            config.seed,
            config.texture_gain,
        );
        let motion = config.effective_motion();
        Self {
            config,
            motion,
            canvas,
            margin,
        }
    }

    /// The configuration this video was built from.
    pub fn config(&self) -> &PhantomConfig {
        &self.config
    }

    /// The motion pattern in effect.
    pub fn motion_pattern(&self) -> MotionPattern {
        self.motion
    }

    /// Bilinearly samples the canvas at fractional coordinates.
    #[inline]
    fn sample_canvas(&self, x: f64, y: f64) -> f64 {
        let x0 = x.floor();
        let y0 = y.floor();
        let fx = x - x0;
        let fy = y - y0;
        let xi = x0 as isize;
        let yi = y0 as isize;
        let s00 = self.canvas.get_clamped(xi, yi) as f64;
        let s10 = self.canvas.get_clamped(xi + 1, yi) as f64;
        let s01 = self.canvas.get_clamped(xi, yi + 1) as f64;
        let s11 = self.canvas.get_clamped(xi + 1, yi + 1) as f64;
        let top = s00 + (s10 - s00) * fx;
        let bot = s01 + (s11 - s01) * fx;
        top + (bot - top) * fy
    }

    /// Renders frame `t` (display order). Pure function of `t`.
    pub fn render(&self, t: usize) -> Frame {
        let res = self.config.resolution;
        let view: ViewTransform = self.motion.at(t);
        let cx = res.width as f64 / 2.0;
        let cy = res.height as f64 / 2.0;
        let inv_hw = 2.0 / res.width as f64;
        let inv_hh = 2.0 / res.height as f64;
        let inner = self.config.vignette_inner;
        let outer = self.config.vignette_outer;
        let amp = self.config.noise_amplitude;
        let seed = self.config.seed;
        let mut y_plane = Plane::new(res.width, res.height);
        for row in 0..res.height {
            let out_row = y_plane.row_mut(row);
            for (col, out) in out_row.iter_mut().enumerate() {
                let x = col as f64;
                let yf = row as f64;
                let (sx, sy) = view.source_of(x, yf, cx, cy);
                let sample = self.sample_canvas(sx + self.margin as f64, sy + self.margin as f64);
                // Elliptical vignette in *output* space: corners stay
                // dark and static regardless of content motion.
                let nx = (x - cx) * inv_hw;
                let ny = (yf - cy) * inv_hh;
                let r = (nx * nx + ny * ny).sqrt();
                let w = vignette_weight(r, inner, outer);
                let mut v = 16.0 + (sample - 16.0) * w;
                if amp > 0.0 && w > 0.0 {
                    v += amp * w * speckle(seed, t as u64, col as u32, row as u32);
                }
                *out = v.clamp(0.0, 255.0) as u8;
            }
        }
        // Chroma: faint structure-correlated tint around neutral, so
        // chroma coding is exercised without dominating bitrate.
        let half = y_plane.halved();
        let mut u = Plane::new(res.width / 2, res.height / 2);
        let mut v = Plane::new(res.width / 2, res.height / 2);
        for row in 0..u.height() {
            for col in 0..u.width() {
                let luma = half.get(col, row) as i16;
                u.set(col, row, (124 + (luma - 16) / 24).clamp(0, 255) as u8);
                v.set(col, row, (130 - (luma - 16) / 32).clamp(0, 255) as u8);
            }
        }
        Frame::from_planes(y_plane, u, v).expect("derived chroma geometry is valid")
    }

    /// Materializes the first `n` frames into a [`VideoClip`].
    pub fn capture(&self, n: usize) -> VideoClip {
        let mut clip = VideoClip::new(self.config.resolution, self.config.fps);
        let limit = match self.config.frames {
            Some(total) => n.min(total),
            None => n,
        };
        for t in 0..limit {
            clip.push(self.render(t));
        }
        clip
    }
}

impl FrameSource for PhantomVideo {
    fn resolution(&self) -> Resolution {
        self.config.resolution
    }

    fn fps(&self) -> f64 {
        self.config.fps
    }

    fn frame(&mut self, index: usize) -> Option<Frame> {
        match self.config.frames {
            Some(total) if index >= total => None,
            _ => Some(self.render(index)),
        }
    }

    fn len_hint(&self) -> Option<usize> {
        self.config.frames
    }
}

/// Vignette weight: 1 inside `inner`, hermite falloff to 0 at `outer`.
fn vignette_weight(r: f64, inner: f64, outer: f64) -> f64 {
    if r <= inner {
        1.0
    } else if r >= outer {
        0.0
    } else {
        let t = (r - inner) / (outer - inner);
        1.0 - t * t * (3.0 - 2.0 * t)
    }
}

/// The reproduction stand-in for the paper's "10 different anonymized
/// bio-medical videos": ten deterministic phantom configurations that
/// span all six body-part classes with varied motion and texture.
///
/// All are 640x480 @ 24 fps, like the paper's material.
pub fn medical_suite(base_seed: u64) -> Vec<(String, PhantomConfig)> {
    let mk = |i: u64, part: BodyPart, motion: Option<MotionPattern>, gain: f64| PhantomConfig {
        body_part: part,
        seed: base_seed.wrapping_add(i * 7919),
        motion,
        texture_gain: gain,
        ..PhantomConfig::default()
    };
    vec![
        ("brain_rotate".into(), mk(0, BodyPart::Brain, None, 1.0)),
        (
            "brain_pan".into(),
            mk(
                1,
                BodyPart::Brain,
                Some(MotionPattern::Pan { dx: 0.8, dy: 0.0 }),
                1.1,
            ),
        ),
        ("bones_pan".into(), mk(2, BodyPart::Bones, None, 1.0)),
        (
            "bones_still".into(),
            mk(3, BodyPart::Bones, Some(MotionPattern::Still), 0.9),
        ),
        ("lung_breathe".into(), mk(4, BodyPart::LungChest, None, 1.0)),
        (
            "lung_pan".into(),
            mk(
                5,
                BodyPart::LungChest,
                Some(MotionPattern::Pan { dx: 0.0, dy: 1.2 }),
                1.2,
            ),
        ),
        (
            "spine_scroll".into(),
            mk(6, BodyPart::SpinalCord, None, 1.0),
        ),
        (
            "tendon_inspect".into(),
            mk(7, BodyPart::LigamentTendon, None, 1.0),
        ),
        ("cardiac_pulse".into(), mk(8, BodyPart::Cardiac, None, 1.1)),
        (
            "cardiac_rotate".into(),
            mk(
                9,
                BodyPart::Cardiac,
                Some(MotionPattern::Rotate { deg_per_frame: 0.6 }),
                0.9,
            ),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::RegionStats;
    use crate::{quality::plane_psnr, Rect};

    fn small(part: BodyPart) -> PhantomVideo {
        PhantomVideo::builder(part)
            .resolution(Resolution::new(96, 72))
            .seed(11)
            .build()
    }

    #[test]
    fn frames_are_deterministic() {
        let v = small(BodyPart::Brain);
        assert_eq!(v.render(5), v.render(5));
    }

    #[test]
    fn finite_video_ends() {
        let mut v = PhantomVideo::builder(BodyPart::Bones)
            .resolution(Resolution::new(64, 48))
            .frames(3)
            .build();
        assert!(v.frame(2).is_some());
        assert!(v.frame(3).is_none());
        assert_eq!(v.len_hint(), Some(3));
    }

    #[test]
    fn corners_stay_dark_and_static_under_motion() {
        let v = small(BodyPart::Brain); // rotating by default
        let f0 = v.render(0);
        let f10 = v.render(10);
        let corner = Rect::new(0, 0, 16, 12);
        let s0 = RegionStats::of(f0.y(), &corner);
        assert!(s0.mean < 40.0, "corner mean {}", s0.mean);
        // Corner changes only by speckle: tiny MSE.
        let mse = crate::quality::region_mse(f0.y(), f10.y(), &corner);
        assert!(mse < 16.0, "corner should be near-static, mse={mse}");
    }

    #[test]
    fn center_moves_when_panning() {
        let v = PhantomVideo::builder(BodyPart::Bones)
            .resolution(Resolution::new(96, 72))
            .motion(MotionPattern::Pan { dx: 2.0, dy: 0.0 })
            .noise_amplitude(0.0)
            .build();
        let f0 = v.render(0);
        let f5 = v.render(5);
        let center = Rect::new(32, 24, 32, 24);
        let mse = crate::quality::region_mse(f0.y(), f5.y(), &center);
        assert!(mse > 1.0, "panned center should change, mse={mse}");
    }

    #[test]
    fn still_video_with_no_noise_repeats_exactly() {
        let v = PhantomVideo::builder(BodyPart::Cardiac)
            .resolution(Resolution::new(64, 48))
            .motion(MotionPattern::Still)
            .noise_amplitude(0.0)
            .build();
        assert!(plane_psnr(v.render(0).y(), v.render(9).y()).is_infinite());
    }

    #[test]
    fn pan_shifts_content_by_integer_pixels() {
        let v = PhantomVideo::builder(BodyPart::Brain)
            .resolution(Resolution::new(96, 72))
            .motion(MotionPattern::Pan { dx: 1.0, dy: 0.0 })
            .noise_amplitude(0.0)
            .build();
        let f0 = v.render(0);
        let f2 = v.render(2);
        // Inside the vignette-flat region the content of f2 at x equals
        // f0 at x-2 (up to vignette weighting differences).
        let probe = Rect::new(44, 34, 8, 8);
        let mut max_err = 0i32;
        for (x, y) in probe.samples() {
            let a = f2.y().get(x, y) as i32;
            let b = f0.y().get(x - 2, y) as i32;
            max_err = max_err.max((a - b).abs());
        }
        assert!(max_err <= 6, "shifted content mismatch {max_err}");
    }

    #[test]
    fn capture_produces_clip() {
        let v = small(BodyPart::LungChest);
        let clip = v.capture(4);
        assert_eq!(clip.len(), 4);
        assert_eq!(clip.resolution(), Resolution::new(96, 72));
    }

    #[test]
    fn capture_respects_finite_length() {
        let v = PhantomVideo::builder(BodyPart::Brain)
            .resolution(Resolution::new(64, 48))
            .frames(2)
            .build();
        assert_eq!(v.capture(10).len(), 2);
    }

    #[test]
    fn medical_suite_has_ten_videos_across_classes() {
        let suite = medical_suite(1);
        assert_eq!(suite.len(), 10);
        let mut parts: Vec<_> = suite.iter().map(|(_, c)| c.body_part).collect();
        parts.sort_by_key(|p| p.label());
        parts.dedup();
        assert_eq!(parts.len(), 6, "all six classes represented");
        for (name, cfg) in &suite {
            assert!(!name.is_empty());
            assert_eq!(cfg.resolution, Resolution::VGA);
            assert_eq!(cfg.fps, 24.0);
        }
    }

    #[test]
    #[should_panic(expected = "vignette")]
    fn bad_vignette_rejected() {
        PhantomVideo::builder(BodyPart::Brain)
            .resolution(Resolution::new(64, 48))
            .vignette(1.0, 0.5)
            .build();
    }

    #[test]
    fn chroma_planes_track_structure() {
        let v = small(BodyPart::Bones);
        let f = v.render(0);
        let su = RegionStats::of(f.u(), &f.u().bounds());
        // Chroma is near-neutral but not perfectly flat.
        assert!(su.mean > 118.0 && su.mean < 134.0);
        assert!(su.range() >= 1);
    }
}

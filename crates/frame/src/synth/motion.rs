//! Time-varying view transforms modelling how specialists move
//! bio-medical video during diagnosis.
//!
//! Paper §I observes that clinicians rotate/pan a study around an area
//! of interest, so *whole-frame* coherent motion dominates: every tile
//! moves in the same direction. [`MotionPattern`] reproduces those
//! trajectories; [`ViewTransform`] is the sampled affine view at one
//! frame instant.

use serde::{Deserialize, Serialize};

/// The camera/view trajectory of a phantom video.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
#[derive(Default)]
pub enum MotionPattern {
    /// No motion at all (still study).
    #[default]
    Still,
    /// Constant-velocity pan in samples per frame. The paper's Fig. 1
    /// upper pair pans right; the lower pair pans down.
    Pan {
        /// Horizontal velocity in samples/frame (positive = content
        /// moves right).
        dx: f64,
        /// Vertical velocity in samples/frame (positive = down).
        dy: f64,
    },
    /// Rotation about the frame center at a constant angular rate,
    /// as when rotating a volume around an axis of interest.
    Rotate {
        /// Angular velocity in degrees per frame.
        deg_per_frame: f64,
    },
    /// Periodic breathing/pulsation: isotropic scale oscillation.
    Breathe {
        /// Peak scale deviation (e.g. `0.03` = ±3%).
        amplitude: f64,
        /// Period in frames (e.g. 96 = 4 s at 24 fps).
        period: f64,
    },
    /// Pan for `move_frames`, then hold still, then pan again —
    /// the inspect-then-move rhythm of a diagnostic session.
    PanPause {
        /// Horizontal velocity while moving.
        dx: f64,
        /// Vertical velocity while moving.
        dy: f64,
        /// Frames of motion per cycle.
        move_frames: u32,
        /// Frames of stillness per cycle.
        pause_frames: u32,
    },
}

impl MotionPattern {
    /// Samples the view transform at frame `t`.
    pub fn at(&self, t: usize) -> ViewTransform {
        let t = t as f64;
        match *self {
            MotionPattern::Still => ViewTransform::IDENTITY,
            MotionPattern::Pan { dx, dy } => ViewTransform {
                tx: dx * t,
                ty: dy * t,
                ..ViewTransform::IDENTITY
            },
            MotionPattern::Rotate { deg_per_frame } => ViewTransform {
                angle_rad: deg_per_frame.to_radians() * t,
                ..ViewTransform::IDENTITY
            },
            MotionPattern::Breathe { amplitude, period } => ViewTransform {
                scale: 1.0 + amplitude * (t * std::f64::consts::TAU / period).sin(),
                ..ViewTransform::IDENTITY
            },
            MotionPattern::PanPause {
                dx,
                dy,
                move_frames,
                pause_frames,
            } => {
                let cycle = (move_frames + pause_frames) as f64;
                let full_cycles = (t / cycle).floor();
                let phase = t - full_cycles * cycle;
                let moved = full_cycles * move_frames as f64 + phase.min(move_frames as f64);
                ViewTransform {
                    tx: dx * moved,
                    ty: dy * moved,
                    ..ViewTransform::IDENTITY
                }
            }
        }
    }

    /// `true` when the pattern is actually moving at frame `t`
    /// (i.e. the transform differs from the one at `t + 1`).
    pub fn is_moving_at(&self, t: usize) -> bool {
        self.at(t) != self.at(t + 1)
    }

    /// The dominant translation direction over the first GOP, as a
    /// coarse `(sign_x, sign_y)` pair. Used by tests to check the
    /// "whole frame moves the same way" premise.
    pub fn dominant_direction(&self, gop_len: usize) -> (i8, i8) {
        let a = self.at(0);
        let b = self.at(gop_len.max(1));
        let sx = (b.tx - a.tx).partial_cmp(&0.0).map_or(0, |o| match o {
            std::cmp::Ordering::Greater => 1,
            std::cmp::Ordering::Less => -1,
            std::cmp::Ordering::Equal => 0,
        });
        let sy = (b.ty - a.ty).partial_cmp(&0.0).map_or(0, |o| match o {
            std::cmp::Ordering::Greater => 1,
            std::cmp::Ordering::Less => -1,
            std::cmp::Ordering::Equal => 0,
        });
        (sx, sy)
    }
}

/// Affine view parameters at one frame instant: rotation about the frame
/// center, isotropic scale, then translation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ViewTransform {
    /// Rotation angle in radians (counter-clockwise).
    pub angle_rad: f64,
    /// Isotropic scale factor.
    pub scale: f64,
    /// Horizontal translation of the *content* in samples.
    pub tx: f64,
    /// Vertical translation of the *content* in samples.
    pub ty: f64,
}

impl ViewTransform {
    /// The identity view.
    pub const IDENTITY: ViewTransform = ViewTransform {
        angle_rad: 0.0,
        scale: 1.0,
        tx: 0.0,
        ty: 0.0,
    };

    /// Maps an *output* pixel back to *canvas* coordinates.
    ///
    /// `(x, y)` is the output sample, `(cx, cy)` the frame center. The
    /// content is rotated/scaled about the center and shifted by
    /// `(tx, ty)`, so the source position applies the inverse.
    #[inline]
    pub fn source_of(&self, x: f64, y: f64, cx: f64, cy: f64) -> (f64, f64) {
        // Undo translation first, then rotate/scale back about center.
        let px = x - self.tx - cx;
        let py = y - self.ty - cy;
        let (sin, cos) = (-self.angle_rad).sin_cos();
        let inv_s = 1.0 / self.scale;
        let sx = (px * cos - py * sin) * inv_s + cx;
        let sy = (px * sin + py * cos) * inv_s + cy;
        (sx, sy)
    }
}

impl Default for ViewTransform {
    fn default() -> Self {
        Self::IDENTITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn still_is_identity_forever() {
        let p = MotionPattern::Still;
        assert_eq!(p.at(0), ViewTransform::IDENTITY);
        assert_eq!(p.at(1000), ViewTransform::IDENTITY);
        assert!(!p.is_moving_at(5));
    }

    #[test]
    fn pan_accumulates_linearly() {
        let p = MotionPattern::Pan { dx: 1.5, dy: -0.5 };
        let t10 = p.at(10);
        assert!((t10.tx - 15.0).abs() < 1e-12);
        assert!((t10.ty + 5.0).abs() < 1e-12);
        assert!(p.is_moving_at(0));
        assert_eq!(p.dominant_direction(8), (1, -1));
    }

    #[test]
    fn rotate_accumulates_angle() {
        let p = MotionPattern::Rotate { deg_per_frame: 0.5 };
        let t = p.at(24);
        assert!((t.angle_rad - 12f64.to_radians()).abs() < 1e-12);
        assert!(p.is_moving_at(3));
    }

    #[test]
    fn breathe_is_periodic() {
        let p = MotionPattern::Breathe {
            amplitude: 0.05,
            period: 48.0,
        };
        let a = p.at(0);
        let b = p.at(48);
        assert!((a.scale - b.scale).abs() < 1e-9);
        let quarter = p.at(12);
        assert!((quarter.scale - 1.05).abs() < 1e-9);
    }

    #[test]
    fn pan_pause_holds_during_pause() {
        let p = MotionPattern::PanPause {
            dx: 2.0,
            dy: 0.0,
            move_frames: 10,
            pause_frames: 5,
        };
        // Frames 10..15 are paused at tx = 20.
        assert!((p.at(10).tx - 20.0).abs() < 1e-12);
        assert!((p.at(14).tx - 20.0).abs() < 1e-12);
        assert!(!p.is_moving_at(12));
        // Motion resumes at 15.
        assert!((p.at(16).tx - 22.0).abs() < 1e-12);
        assert!(p.is_moving_at(15));
        // Second cycle accumulates on top of the first.
        assert!((p.at(25).tx - 40.0).abs() < 1e-12);
    }

    #[test]
    fn source_of_inverts_pure_translation() {
        let t = ViewTransform {
            tx: 3.0,
            ty: -2.0,
            ..ViewTransform::IDENTITY
        };
        let (sx, sy) = t.source_of(10.0, 10.0, 50.0, 50.0);
        assert!((sx - 7.0).abs() < 1e-12);
        assert!((sy - 12.0).abs() < 1e-12);
    }

    #[test]
    fn source_of_keeps_center_fixed_under_rotation() {
        let t = ViewTransform {
            angle_rad: 0.7,
            ..ViewTransform::IDENTITY
        };
        let (sx, sy) = t.source_of(50.0, 50.0, 50.0, 50.0);
        assert!((sx - 50.0).abs() < 1e-9);
        assert!((sy - 50.0).abs() < 1e-9);
    }

    #[test]
    fn source_of_rotation_round_trip() {
        // Rotating forward then sampling backward recovers the point.
        let fwd = ViewTransform {
            angle_rad: 0.3,
            scale: 1.1,
            tx: 2.0,
            ty: 1.0,
        };
        let (cx, cy) = (64.0, 48.0);
        // Forward-map a canvas point p to output q manually…
        let (px, py) = (70.0, 40.0);
        let (sin, cos) = fwd.angle_rad.sin_cos();
        let qx = ((px - cx) * cos - (py - cy) * sin) * fwd.scale + cx + fwd.tx;
        let qy = ((px - cx) * sin + (py - cy) * cos) * fwd.scale + cy + fwd.ty;
        // …then source_of must map q back to p.
        let (rx, ry) = fwd.source_of(qx, qy, cx, cy);
        assert!((rx - px).abs() < 1e-9, "rx={rx}");
        assert!((ry - py).abs() < 1e-9, "ry={ry}");
    }

    #[test]
    fn default_pattern_is_still() {
        assert_eq!(MotionPattern::default(), MotionPattern::Still);
    }
}

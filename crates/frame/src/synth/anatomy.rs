//! Procedural anatomy canvases for phantom videos.
//!
//! Each [`BodyPart`] renders a *canvas* — a static high-resolution luma
//! texture that the motion model later samples with a time-varying
//! transform. The canvases reproduce the content statistics the paper
//! exploits: bright, textured structure concentrated at the center and
//! dark, flat surroundings.

use crate::synth::noise::ValueNoise;
use crate::Plane;
use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// Anatomical category of a phantom video.
///
/// The paper (§III-D1) notes medical images cluster into a small number
/// of classes by imaged body part, and that workload LUTs transfer
/// within a class. These variants mirror the classes it lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum BodyPart {
    /// Long bones / skeletal X-ray-like content: sharp, high-contrast edges.
    Bones,
    /// Lung & chest CT-like content: two lobes with fine speckle and ribs.
    LungChest,
    /// Brain MRI-like content: smooth gyri-like blobs, medium texture.
    Brain,
    /// Spinal cord: vertically stacked vertebra segments.
    SpinalCord,
    /// Ligament / tendon: fibrous diagonal striation.
    LigamentTendon,
    /// Cardiac ultrasound-like content: chambers with strong speckle.
    Cardiac,
}

impl BodyPart {
    /// All classes, in a stable order used by the experiment harness.
    pub const ALL: [BodyPart; 6] = [
        BodyPart::Bones,
        BodyPart::LungChest,
        BodyPart::Brain,
        BodyPart::SpinalCord,
        BodyPart::LigamentTendon,
        BodyPart::Cardiac,
    ];

    /// Short lowercase label for file names and reports.
    pub const fn label(&self) -> &'static str {
        match self {
            BodyPart::Bones => "bones",
            BodyPart::LungChest => "lung_chest",
            BodyPart::Brain => "brain",
            BodyPart::SpinalCord => "spinal_cord",
            BodyPart::LigamentTendon => "ligament_tendon",
            BodyPart::Cardiac => "cardiac",
        }
    }
}

impl std::fmt::Display for BodyPart {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Renders the static anatomy canvas for `part`.
///
/// The canvas is `width x height` luma samples; structure is centered
/// with semi-axes `(content_rx, content_ry)` and fades to black beyond
/// ~1.35x that radius. `seed` selects a reproducible texture
/// realization; `texture_gain` in `[0, 2]` scales texture contrast.
///
/// # Panics
///
/// Panics if any dimension or radius is zero.
pub fn render_canvas(
    part: BodyPart,
    width: usize,
    height: usize,
    content_rx: f64,
    content_ry: f64,
    seed: u64,
    texture_gain: f64,
) -> Plane {
    assert!(
        width > 0 && height > 0,
        "canvas dimensions must be non-zero"
    );
    assert!(
        content_rx > 0.0 && content_ry > 0.0,
        "content radii must be positive"
    );
    let mut plane = Plane::filled(width, height, 16);
    let noise = ValueNoise::new(seed);
    let cx = width as f64 / 2.0;
    let cy = height as f64 / 2.0;
    let rx = content_rx;
    let ry = content_ry;
    for row in 0..height {
        for col in 0..width {
            let x = col as f64;
            let y = row as f64;
            let nx = (x - cx) / rx;
            let ny = (y - cy) / ry;
            let r2 = nx * nx + ny * ny;
            let base = intensity(part, nx, ny, r2, x, y, &noise, texture_gain);
            // Soft falloff outside the anatomy keeps borders dark & flat.
            let falloff = smoothstep(1.35, 0.95, r2.sqrt());
            let v = 16.0 + base * falloff;
            plane.set(col, row, v.clamp(0.0, 255.0) as u8);
        }
    }
    plane
}

/// Luma contribution (above black level) of `part` at normalized
/// anatomy coordinates `(nx, ny)` / absolute canvas coordinates `(x, y)`.
#[allow(clippy::too_many_arguments)]
fn intensity(
    part: BodyPart,
    nx: f64,
    ny: f64,
    r2: f64,
    x: f64,
    y: f64,
    noise: &ValueNoise,
    gain: f64,
) -> f64 {
    match part {
        BodyPart::Brain => {
            // Smooth dome with gyri-like low-frequency convolutions.
            let dome = (1.0 - (r2 * 0.55).min(1.0)) * 150.0;
            let gyri = (noise.fractal(x, y, 0.035, 3) - 0.5) * 90.0 * gain;
            // Dark ventricle pair near the center.
            let v1 = gaussian(nx + 0.25, ny, 0.18) * 70.0;
            let v2 = gaussian(nx - 0.25, ny, 0.18) * 70.0;
            (dome + gyri - v1 - v2).max(0.0)
        }
        BodyPart::Bones => {
            // Two bright shafts with crisp edges and a joint gap.
            let shaft1 = capsule(nx, ny, -0.9, -0.25, -0.1, -0.02, 0.16);
            let shaft2 = capsule(nx, ny, 0.1, 0.05, 0.9, 0.3, 0.14);
            let edge = |d: f64| smoothstep(0.03, 0.0, d) * 190.0;
            let trabecular = (noise.fractal(x, y, 0.12, 2) - 0.5) * 55.0 * gain;
            let s = edge(shaft1).max(edge(shaft2));
            if s > 1.0 {
                (s + trabecular).max(0.0)
            } else {
                // Faint soft tissue halo.
                (smoothstep(1.2, 0.3, r2.sqrt()) * 30.0).max(0.0)
            }
        }
        BodyPart::LungChest => {
            // Two lobes of fine-grained parenchyma behind periodic ribs.
            let lobe_l = gaussian(nx + 0.52, ny, 0.42);
            let lobe_r = gaussian(nx - 0.52, ny, 0.42);
            let parenchyma = (lobe_l + lobe_r).min(1.0) * 120.0;
            let speckle = (noise.fractal(x, y, 0.22, 3) - 0.5) * 110.0 * gain;
            let ribs = ((ny * 5.5 + nx * nx * 1.4).sin().abs()).powi(6) * 60.0;
            let mediastinum = gaussian(nx, ny, 0.16) * 80.0;
            (parenchyma + speckle * (lobe_l + lobe_r).min(1.0) + ribs + mediastinum).max(0.0)
        }
        BodyPart::SpinalCord => {
            // Vertical stack of vertebra segments around a bright cord.
            let column = smoothstep(0.30, 0.10, nx.abs()) * 130.0;
            let segments = ((ny * PI * 3.2).sin().abs()).powi(2) * 70.0;
            let cord = smoothstep(0.08, 0.02, nx.abs()) * 60.0;
            let marrow = (noise.fractal(x, y, 0.09, 2) - 0.5) * 45.0 * gain;
            if nx.abs() < 0.5 {
                (column + segments * smoothstep(0.4, 0.1, nx.abs()) + cord + marrow).max(0.0)
            } else {
                0.0
            }
        }
        BodyPart::LigamentTendon => {
            // Fibrous diagonal striation with anisotropic texture.
            let body = smoothstep(1.1, 0.5, r2.sqrt()) * 100.0;
            let fibers = ((nx * 9.0 - ny * 14.0).sin().abs()).powi(3) * 85.0 * gain;
            let undulation = (noise.fractal(x, y * 0.25, 0.05, 2) - 0.5) * 40.0;
            (body + fibers * smoothstep(1.1, 0.6, r2.sqrt()) + undulation).max(0.0)
        }
        BodyPart::Cardiac => {
            // Myocardial ring with two dark chambers and heavy speckle.
            let ring = gaussian(r2.sqrt() - 0.62, 0.0, 0.22) * 150.0;
            let chamber_l = gaussian(nx + 0.22, ny - 0.1, 0.2) * 90.0;
            let chamber_r = gaussian(nx - 0.3, ny + 0.15, 0.17) * 90.0;
            let speckle = (noise.fractal(x, y, 0.3, 3) - 0.5) * 120.0 * gain;
            let muscle = smoothstep(1.0, 0.2, r2.sqrt()) * 95.0;
            (muscle + ring + speckle * smoothstep(1.05, 0.5, r2.sqrt()) - chamber_l - chamber_r)
                .max(0.0)
        }
    }
}

/// Unnormalized Gaussian bump.
fn gaussian(dx: f64, dy: f64, sigma: f64) -> f64 {
    (-(dx * dx + dy * dy) / (2.0 * sigma * sigma)).exp()
}

/// Distance from point to the capsule (thick segment) minus its radius;
/// negative inside.
fn capsule(px: f64, py: f64, ax: f64, ay: f64, bx: f64, by: f64, radius: f64) -> f64 {
    let abx = bx - ax;
    let aby = by - ay;
    let apx = px - ax;
    let apy = py - ay;
    let t = ((apx * abx + apy * aby) / (abx * abx + aby * aby)).clamp(0.0, 1.0);
    let dx = apx - t * abx;
    let dy = apy - t * aby;
    (dx * dx + dy * dy).sqrt() - radius
}

/// Hermite smoothstep from 1 at `edge1` to 0 at `edge0` (note: callers
/// pass `edge0 > edge1` for a falling edge).
fn smoothstep(edge0: f64, edge1: f64, x: f64) -> f64 {
    let t = ((x - edge0) / (edge1 - edge0)).clamp(0.0, 1.0);
    t * t * (3.0 - 2.0 * t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::RegionStats;
    use crate::Rect;

    fn canvas(part: BodyPart) -> Plane {
        render_canvas(part, 160, 120, 48.0, 36.0, 7, 1.0)
    }

    #[test]
    fn all_parts_render_nonempty() {
        for part in BodyPart::ALL {
            let c = canvas(part);
            let s = RegionStats::of(&c, &Rect::frame(160, 120));
            assert!(s.max > 60, "{part} canvas too dark (max={})", s.max);
        }
    }

    #[test]
    fn center_brighter_and_more_textured_than_corners() {
        for part in BodyPart::ALL {
            let c = canvas(part);
            let center = RegionStats::of(&c, &Rect::new(60, 45, 40, 30));
            let corner = RegionStats::of(&c, &Rect::new(0, 0, 30, 20));
            assert!(
                center.mean > corner.mean + 10.0,
                "{part}: center {} vs corner {}",
                center.mean,
                corner.mean
            );
            assert!(
                center.stddev > corner.stddev,
                "{part}: center texture should exceed corner texture"
            );
        }
    }

    #[test]
    fn corners_are_near_black_and_flat() {
        for part in BodyPart::ALL {
            let c = canvas(part);
            let corner = RegionStats::of(&c, &Rect::new(0, 0, 24, 18));
            assert!(corner.mean < 40.0, "{part}: corner mean {}", corner.mean);
            assert!(
                corner.stddev < 12.0,
                "{part}: corner stddev {}",
                corner.stddev
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = render_canvas(BodyPart::Brain, 64, 64, 20.0, 20.0, 3, 1.0);
        let b = render_canvas(BodyPart::Brain, 64, 64, 20.0, 20.0, 3, 1.0);
        assert_eq!(a, b);
        let c = render_canvas(BodyPart::Brain, 64, 64, 20.0, 20.0, 4, 1.0);
        assert_ne!(a, c);
    }

    #[test]
    fn texture_gain_increases_variation() {
        let flat = render_canvas(BodyPart::LungChest, 128, 96, 40.0, 30.0, 5, 0.2);
        let rough = render_canvas(BodyPart::LungChest, 128, 96, 40.0, 30.0, 5, 1.8);
        let r = Rect::new(32, 24, 64, 48);
        let s_flat = RegionStats::of(&flat, &r);
        let s_rough = RegionStats::of(&rough, &r);
        assert!(
            s_rough.stddev > s_flat.stddev,
            "gain should raise texture: {} vs {}",
            s_rough.stddev,
            s_flat.stddev
        );
    }

    #[test]
    fn body_part_labels_are_stable() {
        assert_eq!(BodyPart::Brain.label(), "brain");
        assert_eq!(BodyPart::LungChest.to_string(), "lung_chest");
        assert_eq!(BodyPart::ALL.len(), 6);
    }

    #[test]
    fn bones_have_higher_edge_contrast_than_brain() {
        let bones = canvas(BodyPart::Bones);
        let brain = canvas(BodyPart::Brain);
        let r = Rect::new(40, 30, 80, 60);
        // Bones: crisp shafts → large dynamic range in center region.
        assert!(RegionStats::of(&bones, &r).range() >= RegionStats::of(&brain, &r).range());
    }
}

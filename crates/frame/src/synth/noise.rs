//! Deterministic lattice value-noise used to texture phantom anatomy.
//!
//! The generator must be reproducible across platforms and cheap enough
//! to texture a canvas once per video, so it uses an integer hash over
//! lattice points with bilinear interpolation and octave stacking.

/// Deterministic 2-D value noise field.
///
/// # Examples
///
/// ```
/// use medvt_frame::synth::ValueNoise;
///
/// let n = ValueNoise::new(7);
/// let a = n.sample(1.5, 2.25);
/// let b = n.sample(1.5, 2.25);
/// assert_eq!(a, b); // deterministic
/// assert!((0.0..=1.0).contains(&a));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ValueNoise {
    seed: u64,
}

impl ValueNoise {
    /// Creates a noise field from a seed.
    pub const fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Hash of one lattice point into `[0, 1)`.
    fn lattice(&self, ix: i64, iy: i64) -> f64 {
        // SplitMix64-style avalanche over the packed coordinates.
        let mut z = self
            .seed
            .wrapping_add((ix as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((iy as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Smoothly interpolated noise at `(x, y)`, in `[0, 1]`.
    pub fn sample(&self, x: f64, y: f64) -> f64 {
        let ix = x.floor() as i64;
        let iy = y.floor() as i64;
        let fx = x - ix as f64;
        let fy = y - iy as f64;
        // Smoothstep fade for C1 continuity at lattice lines.
        let u = fx * fx * (3.0 - 2.0 * fx);
        let v = fy * fy * (3.0 - 2.0 * fy);
        let n00 = self.lattice(ix, iy);
        let n10 = self.lattice(ix + 1, iy);
        let n01 = self.lattice(ix, iy + 1);
        let n11 = self.lattice(ix + 1, iy + 1);
        let nx0 = n00 + (n10 - n00) * u;
        let nx1 = n01 + (n11 - n01) * u;
        nx0 + (nx1 - nx0) * v
    }

    /// Fractal (octave-stacked) noise in `[0, 1]`.
    ///
    /// `base_freq` is the lattice frequency of the first octave in
    /// cycles per sample; each octave doubles frequency and halves
    /// amplitude.
    ///
    /// # Panics
    ///
    /// Panics when `octaves` is zero.
    pub fn fractal(&self, x: f64, y: f64, base_freq: f64, octaves: u32) -> f64 {
        assert!(octaves > 0, "need at least one octave");
        let mut total = 0.0;
        let mut amp = 1.0;
        let mut freq = base_freq;
        let mut norm = 0.0;
        for o in 0..octaves {
            // Offset octaves so their lattices do not align.
            let off = o as f64 * 101.7;
            total += amp * self.sample(x * freq + off, y * freq + off);
            norm += amp;
            amp *= 0.5;
            freq *= 2.0;
        }
        total / norm
    }
}

/// Cheap deterministic per-sample hash in `[-1, 1]`, used for frame
/// speckle noise: `speckle(seed, frame, x, y)`.
pub fn speckle(seed: u64, frame: u64, x: u32, y: u32) -> f64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(frame.wrapping_mul(0xD1B5_4A32_D192_ED03))
        .wrapping_add((x as u64) << 32 | y as u64);
    z = (z ^ (z >> 33)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    z = (z ^ (z >> 33)).wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    z ^= z >> 33;
    ((z >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_in_unit_interval() {
        let n = ValueNoise::new(42);
        for i in 0..200 {
            let v = n.sample(i as f64 * 0.37, i as f64 * 0.73);
            assert!((0.0..=1.0).contains(&v), "out of range: {v}");
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let a = ValueNoise::new(5).sample(3.2, 4.8);
        let b = ValueNoise::new(5).sample(3.2, 4.8);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = ValueNoise::new(1).sample(10.5, 20.5);
        let b = ValueNoise::new(2).sample(10.5, 20.5);
        assert_ne!(a, b);
    }

    #[test]
    fn continuity_at_lattice_points() {
        let n = ValueNoise::new(9);
        let at = n.sample(5.0, 5.0);
        let near = n.sample(5.0 + 1e-9, 5.0 + 1e-9);
        assert!((at - near).abs() < 1e-6);
    }

    #[test]
    fn fractal_in_unit_interval_and_rougher() {
        let n = ValueNoise::new(11);
        let mut vals = Vec::new();
        for i in 0..100 {
            let v = n.fractal(i as f64, i as f64 * 0.5, 0.05, 4);
            assert!((0.0..=1.0).contains(&v));
            vals.push(v);
        }
        // Fractal field is non-constant.
        let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min > 0.05);
    }

    #[test]
    #[should_panic(expected = "octave")]
    fn zero_octaves_panics() {
        ValueNoise::new(1).fractal(0.0, 0.0, 0.1, 0);
    }

    #[test]
    fn speckle_range_and_determinism() {
        for i in 0..100u32 {
            let v = speckle(3, 7, i, i * 2);
            assert!((-1.0..=1.0).contains(&v));
        }
        assert_eq!(speckle(3, 7, 5, 6), speckle(3, 7, 5, 6));
        assert_ne!(speckle(3, 7, 5, 6), speckle(3, 8, 5, 6));
    }
}

//! Synthetic bio-medical video generation.
//!
//! This module substitutes the clinical material the paper evaluated on
//! (ten anonymized 640x480 @ 24 fps diagnostic videos) with
//! deterministic phantoms that preserve the content statistics the
//! method exploits:
//!
//! * bright, textured anatomy concentrated at the frame center,
//! * dark, low-texture borders and corners,
//! * globally coherent motion (pan / rotation about an axis /
//!   periodic breathing), matching the diagnostic-procedure motions
//!   described in paper §I and Fig. 1.
//!
//! # Examples
//!
//! ```
//! use medvt_frame::synth::{BodyPart, PhantomVideo};
//! use medvt_frame::{FrameSource, Resolution};
//!
//! let mut video = PhantomVideo::builder(BodyPart::LungChest)
//!     .resolution(Resolution::new(128, 96))
//!     .frames(48)
//!     .build();
//! let clip = video.capture(8);
//! assert_eq!(clip.len(), 8);
//! ```

mod anatomy;
mod motion;
mod noise;
mod phantom;

pub use anatomy::{render_canvas, BodyPart};
pub use motion::{MotionPattern, ViewTransform};
pub use noise::{speckle, ValueNoise};
pub use phantom::{
    default_motion, medical_suite, PhantomConfig, PhantomVideo, PhantomVideoBuilder,
};

//! Error types for frame construction and I/O.

use std::error::Error;
use std::fmt;
use std::io;

/// Errors produced by the `medvt-frame` crate.
#[derive(Debug)]
#[non_exhaustive]
pub enum FrameError {
    /// A sample buffer did not match the requested plane geometry.
    BufferSize {
        /// Required number of samples.
        expected: usize,
        /// Provided number of samples.
        actual: usize,
    },
    /// Frame dimensions are unusable (zero or not chroma-subsampling
    /// compatible).
    Dimensions {
        /// Offending width.
        width: usize,
        /// Offending height.
        height: usize,
        /// Why the dimensions are rejected.
        reason: &'static str,
    },
    /// A bitstream or container header could not be parsed.
    Parse(String),
    /// An underlying I/O failure.
    Io(io::Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BufferSize { expected, actual } => {
                write!(f, "buffer holds {actual} samples, plane needs {expected}")
            }
            FrameError::Dimensions {
                width,
                height,
                reason,
            } => write!(f, "invalid dimensions {width}x{height}: {reason}"),
            FrameError::Parse(msg) => write!(f, "parse error: {msg}"),
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl Error for FrameError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = FrameError::BufferSize {
            expected: 4,
            actual: 5,
        };
        assert!(e.to_string().contains('4'));
        assert!(e.to_string().contains('5'));
        let e = FrameError::Dimensions {
            width: 0,
            height: 2,
            reason: "zero width",
        };
        assert!(e.to_string().contains("0x2"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FrameError>();
    }

    #[test]
    fn io_error_source_preserved() {
        let inner = io::Error::other("boom");
        let e = FrameError::from(inner);
        assert!(e.source().is_some());
    }
}

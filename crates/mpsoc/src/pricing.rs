//! Rental pricing over the power model — the provisioning layer's
//! cost view of a platform.
//!
//! The Li et al. cloud-transcoding studies (see PAPERS.md) price
//! heterogeneous machine types per billing interval and trade that
//! cost against QoS deadlines. Here the "machine type" is a
//! [`Platform`] preset and the billing interval is one GOP window, so
//! a preset's price falls out of the model the repo already has:
//! energy per window from each class's [`PowerModel`] at its f_max,
//! plus a capacity premium proportional to the class speed factor
//! (faster silicon rents above its energy bill, as real clouds do).
//!
//! Prices quantize to whole credits per window (`ceil`, minimum 1) so
//! provisioning policies and budget sweeps can reason in exact integer
//! arithmetic — equal-cost comparisons between fleets are then exact,
//! not float-fuzzy.

use crate::platform::{CoreClass, Platform};
use crate::power::PowerModel;
use serde::{Deserialize, Serialize};

/// Converts a platform's modeled power/speed into credits per GOP
/// window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Credits charged per joule of modeled full-tilt energy.
    pub credits_per_joule: f64,
    /// Credits charged per reference core per window — the capacity
    /// premium (multiplied by each class's speed factor).
    pub credits_per_core_window: f64,
    /// Billing window length in seconds (one GOP at the serving fps).
    pub window_secs: f64,
}

impl Default for CostModel {
    /// Calibrated to the serving default of 8-slot GOPs at 24 fps.
    /// With the stock presets this prices a Xeon socket at 4 credits,
    /// a big.LITTLE socket at 3, a big-only cluster at 2 and a
    /// LITTLE-only cluster at 1 per window.
    fn default() -> Self {
        Self {
            credits_per_joule: 0.01,
            credits_per_core_window: 0.4,
            window_secs: 8.0 / 24.0,
        }
    }
}

impl CostModel {
    /// A model billing per GOP window of `gop_slots` slots at `fps`.
    ///
    /// # Panics
    ///
    /// Panics when `fps` is not strictly positive or `gop_slots` is 0.
    pub fn per_gop_window(fps: f64, gop_slots: usize) -> Self {
        assert!(fps > 0.0 && fps.is_finite(), "fps must be positive");
        assert!(gop_slots > 0, "a GOP window needs at least one slot");
        Self {
            window_secs: gop_slots as f64 / fps,
            ..Self::default()
        }
    }

    /// Unquantized credits per window for every core of `class` in one
    /// socket: full-tilt energy at the class f_max (its own power
    /// model, or `default_power` when none is attached) plus the
    /// speed-factor capacity premium.
    pub fn class_window_credits(&self, class: &CoreClass, default_power: &PowerModel) -> f64 {
        let power = class.power().unwrap_or(default_power);
        let energy_j = power.active_power_w(class.fmax()) * self.window_secs;
        class.cores_per_socket as f64
            * (self.credits_per_joule * energy_j
                + self.credits_per_core_window * class.speed_factor)
    }

    /// Unquantized credits per window for the whole platform (all
    /// sockets, all classes).
    pub fn platform_window_credits(&self, platform: &Platform, default_power: &PowerModel) -> f64 {
        platform.sockets as f64
            * platform
                .classes()
                .iter()
                .map(|c| self.class_window_credits(c, default_power))
                .sum::<f64>()
    }

    /// Integer rental price of the platform in credits per window:
    /// `ceil` of the unquantized credits, never below 1 — nothing
    /// rents for free.
    pub fn platform_window_price(&self, platform: &Platform, default_power: &PowerModel) -> u64 {
        self.platform_window_credits(platform, default_power)
            .ceil()
            .max(1.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freq::FrequencySet;

    fn price(platform: &Platform) -> u64 {
        CostModel::default().platform_window_price(platform, &PowerModel::default())
    }

    #[test]
    fn stock_presets_price_as_documented() {
        let xeon_socket = Platform::xeon_e5_2667_quad().socket_view(0);
        let bl_socket = Platform::big_little().socket_view(0);
        let classes = Platform::big_little().classes().to_vec();
        let big_only = Platform::with_classes("big-only", 1, vec![classes[0].clone()], 50e-6);
        let little_only = Platform::with_classes("LITTLE-only", 1, vec![classes[1].clone()], 50e-6);
        assert_eq!(price(&xeon_socket), 4);
        assert_eq!(price(&bl_socket), 3);
        assert_eq!(price(&big_only), 2);
        assert_eq!(price(&little_only), 1);
    }

    #[test]
    fn price_scales_with_sockets_and_never_hits_zero() {
        let one = Platform::new("one", 1, 8, FrequencySet::xeon_e5_2667(), 10e-6);
        let four = Platform::xeon_e5_2667_quad();
        let m = CostModel::default();
        let p = PowerModel::default();
        assert!(
            (m.platform_window_credits(&four, &p) - 4.0 * m.platform_window_credits(&one, &p))
                .abs()
                < 1e-9
        );
        // A free-tier model still charges the 1-credit floor.
        let gratis = CostModel {
            credits_per_joule: 0.0,
            credits_per_core_window: 0.0,
            ..CostModel::default()
        };
        assert_eq!(gratis.platform_window_price(&one, &p), 1);
    }

    #[test]
    fn class_credits_use_attached_power_model() {
        let m = CostModel::default();
        let dflt = PowerModel::default();
        let bl = Platform::big_little();
        let little = &bl.classes()[1];
        let with_own = m.class_window_credits(little, &dflt);
        // Re-pricing the same geometry without its power model falls
        // back to the (hungrier) default model: strictly pricier.
        let bare = CoreClass::new(
            "LITTLE",
            little.cores_per_socket,
            FrequencySet::little_cluster(),
            little.speed_factor,
        );
        assert!(m.class_window_credits(&bare, &dflt) > with_own);
    }

    #[test]
    fn per_gop_window_tracks_fps() {
        let m = CostModel::per_gop_window(24.0, 8);
        assert!((m.window_secs - 1.0 / 3.0).abs() < 1e-12);
        let slow = CostModel::per_gop_window(12.0, 8);
        assert!(slow.window_secs > m.window_secs);
    }
}

//! # medvt-mpsoc
//!
//! MPSoC platform model for the `medvt` reproduction of *"Online
//! Efficient Bio-Medical Video Transcoding on MPSoCs Through
//! Content-Aware Workload Allocation"* (Iranfar et al., DATE 2018).
//!
//! The paper evaluates on a four-socket Intel Xeon E5-2667 server (32
//! cores, per-core DVFS at {2.9, 3.2, 3.6} GHz, 10 µs transitions) with
//! measured power. This crate substitutes that hardware with a
//! deterministic model:
//!
//! * [`Platform`] — socket/core/frequency geometry as a set of
//!   [`CoreClass`]es replicated per socket
//!   ([`Platform::xeon_e5_2667_quad`] matches §IV-A's homogeneous
//!   server; [`Platform::big_little`] models an Arm-style asymmetric
//!   MPSoC with per-class ladders, power envelopes and speed factors);
//! * [`FreqLevel`] / [`FrequencySet`] — the DVFS ladder with a V/f map;
//! * [`PowerModel`] — `P = P_static + C_eff·V²·f` per core, calibrated
//!   to the E5-2667 envelope, overridable per core class;
//! * [`CostModel`] — rental pricing per GOP window derived from the
//!   power model plus a speed-factor capacity premium, quantized to
//!   whole credits (the provisioning layer's cost view);
//! * [`simulate_slot`] — executes one 1/FPS scheduling interval across
//!   all cores under a [`DvfsPolicy`], producing per-core plans,
//!   deadline slack/misses, DVFS transition-bound flags and energy,
//!   each core planned against its own class.
//!
//! # The core-class model
//!
//! Workload is expressed in **reference fmax-seconds** — CPU time on a
//! speed-1.0 core running at its maximum frequency, matching the
//! `T_fmax` quantity of the paper's Algorithm 2. A [`CoreClass`] with
//! `speed_factor` `s` retires `s` reference fmax-seconds per wall
//! second at its own f_max, so the same tile takes `secs / s` seconds
//! there; frequencies below the class f_max stretch it further along
//! the class's own ladder. Schedulers normalize per-core loads by
//! [`Platform::core_speeds`] so the dynamic-cap placement balances
//! *finish times*, not raw seconds, and admission checks fractional
//! core demand against [`Platform::speed_capacity`].
//!
//! # Examples
//!
//! ```
//! use medvt_mpsoc::{simulate_slot, DvfsPolicy, Platform, PowerModel};
//!
//! let platform = Platform::quad_core();
//! let power = PowerModel::default();
//! let slot = 1.0 / 24.0;
//! let loads = vec![0.0, slot * 0.4, slot * 0.8, 0.0];
//! let prev = vec![platform.fmin(); 4];
//! let report = simulate_slot(
//!     &platform,
//!     &power,
//!     DvfsPolicy::StretchToDeadline,
//!     &loads,
//!     &prev,
//!     slot,
//! );
//! assert_eq!(report.deadline_misses, 0);
//! assert!(report.power_w() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod freq;
mod platform;
mod power;
mod pricing;
mod slot;

pub use freq::{FreqLevel, FrequencySet};
pub use platform::{CoreClass, Platform};
pub use power::PowerModel;
pub use pricing::CostModel;
pub use slot::{
    plan_core, plan_core_on, record_slot_events, simulate_slot, CorePlan, DvfsPolicy, SlotReport,
};

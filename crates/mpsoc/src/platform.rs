//! Platform description: the multicore server the scheduler targets.

use crate::freq::{FreqLevel, FrequencySet};
use serde::{Deserialize, Serialize};

/// An MPSoC / multicore-server description.
///
/// # Examples
///
/// ```
/// use medvt_mpsoc::Platform;
///
/// let server = Platform::xeon_e5_2667_quad();
/// assert_eq!(server.total_cores(), 32);
/// assert!((server.freqs().max().ghz() - 3.6).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    /// Human-readable platform name.
    pub name: String,
    /// Number of processor sockets.
    pub sockets: usize,
    /// Physical cores per socket.
    pub cores_per_socket: usize,
    /// Available DVFS ladder (shared by all cores; per-core settings).
    freqs: FrequencySet,
    /// DVFS transition latency in seconds (paper: 10 µs).
    pub dvfs_transition_secs: f64,
}

impl Platform {
    /// Builds a platform description.
    ///
    /// # Panics
    ///
    /// Panics when sockets or cores are zero, or the transition latency
    /// is negative.
    pub fn new(
        name: impl Into<String>,
        sockets: usize,
        cores_per_socket: usize,
        freqs: FrequencySet,
        dvfs_transition_secs: f64,
    ) -> Self {
        assert!(sockets > 0, "need at least one socket");
        assert!(cores_per_socket > 0, "need at least one core per socket");
        assert!(
            dvfs_transition_secs >= 0.0,
            "transition latency cannot be negative"
        );
        Self {
            name: name.into(),
            sockets,
            cores_per_socket,
            freqs,
            dvfs_transition_secs,
        }
    }

    /// The paper's evaluation server: four 8-core Intel Xeon E5-2667
    /// processors, DVFS levels {2.9, 3.2, 3.6} GHz, 10 µs transition
    /// latency (§IV-A).
    pub fn xeon_e5_2667_quad() -> Self {
        Self::new(
            "4x Intel Xeon E5-2667",
            4,
            8,
            FrequencySet::xeon_e5_2667(),
            10e-6,
        )
    }

    /// A small embedded-style MPSoC useful for tests (1 socket, 4
    /// cores, same ladder).
    pub fn quad_core() -> Self {
        Self::new("quad-core MPSoC", 1, 4, FrequencySet::xeon_e5_2667(), 10e-6)
    }

    /// Total physical cores.
    pub fn total_cores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    /// Core ids belonging to socket `socket` (cores are numbered
    /// socket-major: socket 0 owns `0..cores_per_socket`, …).
    ///
    /// # Panics
    ///
    /// Panics when `socket` is out of range.
    pub fn socket_cores(&self, socket: usize) -> std::ops::Range<usize> {
        assert!(socket < self.sockets, "socket {socket} out of range");
        socket * self.cores_per_socket..(socket + 1) * self.cores_per_socket
    }

    /// The socket a core id belongs to.
    ///
    /// # Panics
    ///
    /// Panics when `core` is out of range.
    pub fn socket_of(&self, core: usize) -> usize {
        assert!(core < self.total_cores(), "core {core} out of range");
        core / self.cores_per_socket
    }

    /// A single-socket view of this platform — the shard a per-socket
    /// server loop schedules against. Same frequency ladder, power
    /// behaviour and transition latency; one socket's worth of cores.
    pub fn socket_view(&self) -> Platform {
        Platform::new(
            format!("{} (one socket)", self.name),
            1,
            self.cores_per_socket,
            self.freqs.clone(),
            self.dvfs_transition_secs,
        )
    }

    /// The DVFS ladder.
    pub fn freqs(&self) -> &FrequencySet {
        &self.freqs
    }

    /// Highest operating point.
    pub fn fmax(&self) -> FreqLevel {
        self.freqs.max()
    }

    /// Lowest operating point.
    pub fn fmin(&self) -> FreqLevel {
        self.freqs.min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_platform_geometry() {
        let p = Platform::xeon_e5_2667_quad();
        assert_eq!(p.sockets, 4);
        assert_eq!(p.cores_per_socket, 8);
        assert_eq!(p.total_cores(), 32);
        assert!((p.dvfs_transition_secs - 10e-6).abs() < 1e-12);
        assert_eq!(p.freqs().len(), 3);
    }

    #[test]
    fn fmax_fmin() {
        let p = Platform::quad_core();
        assert!((p.fmax().ghz() - 3.6).abs() < 1e-12);
        assert!((p.fmin().ghz() - 2.9).abs() < 1e-12);
    }

    #[test]
    fn socket_topology_accessors() {
        let p = Platform::xeon_e5_2667_quad();
        assert_eq!(p.socket_cores(0), 0..8);
        assert_eq!(p.socket_cores(3), 24..32);
        assert_eq!(p.socket_of(0), 0);
        assert_eq!(p.socket_of(7), 0);
        assert_eq!(p.socket_of(8), 1);
        assert_eq!(p.socket_of(31), 3);
        let shard = p.socket_view();
        assert_eq!(shard.sockets, 1);
        assert_eq!(shard.total_cores(), 8);
        assert_eq!(shard.freqs(), p.freqs());
        assert!((shard.dvfs_transition_secs - p.dvfs_transition_secs).abs() < 1e-18);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn socket_cores_out_of_range_rejected() {
        Platform::quad_core().socket_cores(1);
    }

    #[test]
    #[should_panic(expected = "socket")]
    fn zero_sockets_rejected() {
        Platform::new("bad", 0, 8, FrequencySet::xeon_e5_2667(), 0.0);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_latency_rejected() {
        Platform::new("bad", 1, 1, FrequencySet::xeon_e5_2667(), -1.0);
    }
}

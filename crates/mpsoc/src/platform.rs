//! Platform description: the multicore server the scheduler targets.
//!
//! Real MPSoCs are heterogeneous — big.LITTLE clusters with distinct
//! frequency ladders, power envelopes and per-cycle throughput — so a
//! [`Platform`] is a set of [`CoreClass`]es replicated across sockets.
//! The single-class constructors ([`Platform::new`],
//! [`Platform::xeon_e5_2667_quad`]) reproduce the paper's homogeneous
//! evaluation server exactly; [`Platform::big_little`] models an
//! Arm-style asymmetric MPSoC.

use crate::freq::{FreqLevel, FrequencySet};
use crate::power::PowerModel;
use serde::{Deserialize, Serialize};

/// One class of identical cores present in every socket — e.g. the
/// "big" or "LITTLE" cluster of an asymmetric MPSoC.
///
/// Workload across the workspace is expressed in *reference*
/// fmax-seconds: CPU time on a speed-1.0 core running at its maximum
/// frequency. A class with `speed_factor` 0.5 retires the same work at
/// half that rate even at its own f_max, so one reference fmax-second
/// costs two wall seconds there.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreClass {
    /// Human-readable class name ("big", "LITTLE", "core", …).
    pub name: String,
    /// Cores of this class per socket.
    pub cores_per_socket: usize,
    /// The class's own DVFS ladder.
    freqs: FrequencySet,
    /// Work retired per second at this class's f_max, relative to the
    /// reference class (1.0 = reference speed).
    pub speed_factor: f64,
    /// Class-specific power model; `None` uses the platform-wide model
    /// the caller passes to `simulate_slot`.
    power: Option<PowerModel>,
}

impl CoreClass {
    /// Builds a core class.
    ///
    /// # Panics
    ///
    /// Panics when `cores_per_socket` is zero or `speed_factor` is not
    /// strictly positive and finite.
    pub fn new(
        name: impl Into<String>,
        cores_per_socket: usize,
        freqs: FrequencySet,
        speed_factor: f64,
    ) -> Self {
        assert!(cores_per_socket > 0, "class needs at least one core");
        assert!(
            speed_factor.is_finite() && speed_factor > 0.0,
            "speed factor must be positive and finite"
        );
        Self {
            name: name.into(),
            cores_per_socket,
            freqs,
            speed_factor,
            power: None,
        }
    }

    /// Attaches a class-specific power model (builder style).
    pub fn with_power(mut self, power: PowerModel) -> Self {
        self.power = Some(power);
        self
    }

    /// The class's DVFS ladder.
    pub fn freqs(&self) -> &FrequencySet {
        &self.freqs
    }

    /// Highest operating point of this class.
    pub fn fmax(&self) -> FreqLevel {
        self.freqs.max()
    }

    /// Lowest operating point of this class.
    pub fn fmin(&self) -> FreqLevel {
        self.freqs.min()
    }

    /// Class-specific power model, when one is attached.
    pub fn power(&self) -> Option<&PowerModel> {
        self.power.as_ref()
    }
}

/// An MPSoC / multicore-server description.
///
/// Cores are numbered socket-major, classes in declaration order
/// within each socket: socket 0 holds class 0's cores first, then
/// class 1's, …; socket 1 repeats the layout.
///
/// # Examples
///
/// ```
/// use medvt_mpsoc::Platform;
///
/// let server = Platform::xeon_e5_2667_quad();
/// assert_eq!(server.total_cores(), 32);
/// assert!((server.freqs().max().ghz() - 3.6).abs() < 1e-12);
///
/// let bl = Platform::big_little();
/// assert!(bl.is_heterogeneous());
/// assert!(bl.core_speeds().iter().any(|&s| s < 1.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    /// Human-readable platform name.
    pub name: String,
    /// Number of processor sockets.
    pub sockets: usize,
    /// Core classes replicated in every socket.
    classes: Vec<CoreClass>,
    /// DVFS transition latency in seconds (paper: 10 µs).
    pub dvfs_transition_secs: f64,
}

impl Platform {
    /// Builds a homogeneous platform: one class of identical cores at
    /// reference speed — the paper's setting.
    ///
    /// # Panics
    ///
    /// Panics when sockets or cores are zero, or the transition latency
    /// is negative.
    pub fn new(
        name: impl Into<String>,
        sockets: usize,
        cores_per_socket: usize,
        freqs: FrequencySet,
        dvfs_transition_secs: f64,
    ) -> Self {
        Self::with_classes(
            name,
            sockets,
            vec![CoreClass::new("core", cores_per_socket, freqs, 1.0)],
            dvfs_transition_secs,
        )
    }

    /// Builds a platform from explicit core classes.
    ///
    /// # Panics
    ///
    /// Panics when sockets is zero, no class is given, or the
    /// transition latency is negative. (Class invariants are enforced
    /// by [`CoreClass::new`].)
    pub fn with_classes(
        name: impl Into<String>,
        sockets: usize,
        classes: Vec<CoreClass>,
        dvfs_transition_secs: f64,
    ) -> Self {
        assert!(sockets > 0, "need at least one socket");
        assert!(!classes.is_empty(), "need at least one core class");
        assert!(
            dvfs_transition_secs >= 0.0,
            "transition latency cannot be negative"
        );
        Self {
            name: name.into(),
            sockets,
            classes,
            dvfs_transition_secs,
        }
    }

    /// The paper's evaluation server: four 8-core Intel Xeon E5-2667
    /// processors, DVFS levels {2.9, 3.2, 3.6} GHz, 10 µs transition
    /// latency (§IV-A).
    pub fn xeon_e5_2667_quad() -> Self {
        Self::new(
            "4x Intel Xeon E5-2667",
            4,
            8,
            FrequencySet::xeon_e5_2667(),
            10e-6,
        )
    }

    /// A small embedded-style MPSoC useful for tests (1 socket, 4
    /// cores, same ladder).
    pub fn quad_core() -> Self {
        Self::new("quad-core MPSoC", 1, 4, FrequencySet::xeon_e5_2667(), 10e-6)
    }

    /// An Arm-style asymmetric MPSoC: two sockets, each with a 4-core
    /// "big" cluster (2.0 GHz peak, reference speed) and a 4-core
    /// "LITTLE" cluster (1.4 GHz peak, 0.45× reference throughput,
    /// much lighter power envelope). The heterogeneous counterpart of
    /// [`Platform::xeon_e5_2667_quad`] for speed-aware scheduling.
    pub fn big_little() -> Self {
        let big =
            CoreClass::new("big", 4, FrequencySet::big_cluster(), 1.0).with_power(PowerModel {
                ceff_w_per_ghz_v2: 3.0,
                static_w: 0.8,
                idle_w: 0.3,
                clock_idle_frac: 0.25,
                transition_j: 1e-4,
            });
        let little = CoreClass::new("LITTLE", 4, FrequencySet::little_cluster(), 0.45).with_power(
            PowerModel {
                ceff_w_per_ghz_v2: 1.1,
                static_w: 0.25,
                idle_w: 0.08,
                clock_idle_frac: 0.2,
                transition_j: 4e-5,
            },
        );
        Self::with_classes("big.LITTLE MPSoC", 2, vec![big, little], 50e-6)
    }

    /// The core classes replicated in each socket.
    pub fn classes(&self) -> &[CoreClass] {
        &self.classes
    }

    /// `true` when the platform has more than one core class or any
    /// class off reference speed.
    pub fn is_heterogeneous(&self) -> bool {
        self.classes.len() > 1 || self.classes.iter().any(|c| c.speed_factor != 1.0)
    }

    /// Physical cores per socket, summed over classes.
    pub fn cores_per_socket(&self) -> usize {
        self.classes.iter().map(|c| c.cores_per_socket).sum()
    }

    /// Total physical cores.
    pub fn total_cores(&self) -> usize {
        self.sockets * self.cores_per_socket()
    }

    /// Core ids belonging to socket `socket` (cores are numbered
    /// socket-major: socket 0 owns `0..cores_per_socket()`, …).
    ///
    /// # Panics
    ///
    /// Panics when `socket` is out of range.
    pub fn socket_cores(&self, socket: usize) -> std::ops::Range<usize> {
        assert!(socket < self.sockets, "socket {socket} out of range");
        let per = self.cores_per_socket();
        socket * per..(socket + 1) * per
    }

    /// The socket a core id belongs to.
    ///
    /// # Panics
    ///
    /// Panics when `core` is out of range.
    pub fn socket_of(&self, core: usize) -> usize {
        assert!(core < self.total_cores(), "core {core} out of range");
        core / self.cores_per_socket()
    }

    /// Index (into [`Platform::classes`]) of the class core `core`
    /// belongs to.
    ///
    /// # Panics
    ///
    /// Panics when `core` is out of range.
    pub fn class_index_of(&self, core: usize) -> usize {
        assert!(core < self.total_cores(), "core {core} out of range");
        let mut within = core % self.cores_per_socket();
        for (i, class) in self.classes.iter().enumerate() {
            if within < class.cores_per_socket {
                return i;
            }
            within -= class.cores_per_socket;
        }
        unreachable!("core within socket must land in a class");
    }

    /// The class core `core` belongs to.
    ///
    /// # Panics
    ///
    /// Panics when `core` is out of range.
    pub fn class_of(&self, core: usize) -> &CoreClass {
        &self.classes[self.class_index_of(core)]
    }

    /// Per-core speed factors, indexed by core id — what speed-aware
    /// placement normalizes loads with.
    pub fn core_speeds(&self) -> Vec<f64> {
        let mut speeds = Vec::with_capacity(self.total_cores());
        for _ in 0..self.sockets {
            for class in &self.classes {
                speeds.extend(std::iter::repeat_n(
                    class.speed_factor,
                    class.cores_per_socket,
                ));
            }
        }
        speeds
    }

    /// Per-core minimum operating points, indexed by core id — the
    /// cold-start DVFS state of each core's own ladder.
    pub fn core_fmins(&self) -> Vec<FreqLevel> {
        let mut fmins = Vec::with_capacity(self.total_cores());
        for _ in 0..self.sockets {
            for class in &self.classes {
                fmins.extend(std::iter::repeat_n(class.fmin(), class.cores_per_socket));
            }
        }
        fmins
    }

    /// Effective capacity in reference cores: the sum of all cores'
    /// speed factors — what fractional-core admission checks against.
    pub fn speed_capacity(&self) -> f64 {
        self.core_speeds().iter().sum()
    }

    /// A single-socket view of socket `socket` — the shard a
    /// per-socket server loop schedules against. Same class layout,
    /// power behaviour and transition latency; one socket's worth of
    /// cores, labelled with the socket index so shard reports stay
    /// attributable.
    ///
    /// # Panics
    ///
    /// Panics when `socket` is out of range.
    pub fn socket_view(&self, socket: usize) -> Platform {
        assert!(socket < self.sockets, "socket {socket} out of range");
        Platform::with_classes(
            format!("{} (socket {socket})", self.name),
            1,
            self.classes.clone(),
            self.dvfs_transition_secs,
        )
    }

    /// The reference DVFS ladder (class 0's). Homogeneous platforms
    /// have exactly one ladder; heterogeneous callers should prefer
    /// [`Platform::class_of`] + [`CoreClass::freqs`].
    pub fn freqs(&self) -> &FrequencySet {
        self.classes[0].freqs()
    }

    /// Highest operating point across all classes.
    pub fn fmax(&self) -> FreqLevel {
        self.classes
            .iter()
            .map(CoreClass::fmax)
            .max()
            .expect("non-empty by construction")
    }

    /// Lowest operating point across all classes.
    pub fn fmin(&self) -> FreqLevel {
        self.classes
            .iter()
            .map(CoreClass::fmin)
            .min()
            .expect("non-empty by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_platform_geometry() {
        let p = Platform::xeon_e5_2667_quad();
        assert_eq!(p.sockets, 4);
        assert_eq!(p.cores_per_socket(), 8);
        assert_eq!(p.total_cores(), 32);
        assert!((p.dvfs_transition_secs - 10e-6).abs() < 1e-12);
        assert_eq!(p.freqs().len(), 3);
        assert!(!p.is_heterogeneous());
        assert!(p.core_speeds().iter().all(|&s| s == 1.0));
        assert!((p.speed_capacity() - 32.0).abs() < 1e-12);
    }

    #[test]
    fn fmax_fmin() {
        let p = Platform::quad_core();
        assert!((p.fmax().ghz() - 3.6).abs() < 1e-12);
        assert!((p.fmin().ghz() - 2.9).abs() < 1e-12);
    }

    #[test]
    fn socket_topology_accessors() {
        let p = Platform::xeon_e5_2667_quad();
        assert_eq!(p.socket_cores(0), 0..8);
        assert_eq!(p.socket_cores(3), 24..32);
        assert_eq!(p.socket_of(0), 0);
        assert_eq!(p.socket_of(7), 0);
        assert_eq!(p.socket_of(8), 1);
        assert_eq!(p.socket_of(31), 3);
        let shard = p.socket_view(2);
        assert_eq!(shard.sockets, 1);
        assert_eq!(shard.total_cores(), 8);
        assert_eq!(shard.freqs(), p.freqs());
        assert!((shard.dvfs_transition_secs - p.dvfs_transition_secs).abs() < 1e-18);
    }

    #[test]
    fn socket_view_labels_its_socket() {
        let p = Platform::xeon_e5_2667_quad();
        assert_eq!(p.socket_view(0).name, "4x Intel Xeon E5-2667 (socket 0)");
        assert_eq!(p.socket_view(3).name, "4x Intel Xeon E5-2667 (socket 3)");
        assert_ne!(p.socket_view(0).name, p.socket_view(1).name);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn socket_view_out_of_range_rejected() {
        Platform::quad_core().socket_view(1);
    }

    #[test]
    fn big_little_geometry_and_classes() {
        let p = Platform::big_little();
        assert_eq!(p.sockets, 2);
        assert_eq!(p.classes().len(), 2);
        assert_eq!(p.cores_per_socket(), 8);
        assert_eq!(p.total_cores(), 16);
        assert!(p.is_heterogeneous());
        // Socket-major, class-major numbering: cores 0..4 big, 4..8
        // LITTLE, 8..12 big (socket 1), 12..16 LITTLE.
        assert_eq!(p.class_of(0).name, "big");
        assert_eq!(p.class_of(3).name, "big");
        assert_eq!(p.class_of(4).name, "LITTLE");
        assert_eq!(p.class_of(7).name, "LITTLE");
        assert_eq!(p.class_of(8).name, "big");
        assert_eq!(p.class_of(15).name, "LITTLE");
        assert_eq!(p.socket_of(7), 0);
        assert_eq!(p.socket_of(8), 1);
        // Speeds and capacity: 8×1.0 + 8×0.45 = 11.6 reference cores.
        let speeds = p.core_speeds();
        assert_eq!(speeds.len(), 16);
        assert!((speeds[0] - 1.0).abs() < 1e-12);
        assert!((speeds[4] - 0.45).abs() < 1e-12);
        assert!((p.speed_capacity() - 11.6).abs() < 1e-9);
        // Each class runs its own ladder; fmax/fmin span the classes.
        assert!((p.class_of(0).fmax().ghz() - 2.0).abs() < 1e-12);
        assert!((p.class_of(4).fmax().ghz() - 1.4).abs() < 1e-12);
        assert!((p.fmax().ghz() - 2.0).abs() < 1e-12);
        assert!((p.fmin().ghz() - 0.6).abs() < 1e-12);
        // LITTLE cores carry their own power model.
        assert!(p.class_of(4).power().is_some());
        let fmins = p.core_fmins();
        assert_eq!(fmins[0], p.class_of(0).fmin());
        assert_eq!(fmins[4], p.class_of(4).fmin());
    }

    #[test]
    fn socket_view_preserves_heterogeneity() {
        let p = Platform::big_little();
        let shard = p.socket_view(1);
        assert_eq!(shard.name, "big.LITTLE MPSoC (socket 1)");
        assert_eq!(shard.total_cores(), 8);
        assert!(shard.is_heterogeneous());
        assert!((shard.speed_capacity() - 5.8).abs() < 1e-9);
        assert_eq!(shard.class_of(0).name, "big");
        assert_eq!(shard.class_of(4).name, "LITTLE");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn socket_cores_out_of_range_rejected() {
        Platform::quad_core().socket_cores(1);
    }

    #[test]
    #[should_panic(expected = "socket")]
    fn zero_sockets_rejected() {
        Platform::new("bad", 0, 8, FrequencySet::xeon_e5_2667(), 0.0);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_latency_rejected() {
        Platform::new("bad", 1, 1, FrequencySet::xeon_e5_2667(), -1.0);
    }

    #[test]
    #[should_panic(expected = "speed factor")]
    fn non_positive_speed_rejected() {
        CoreClass::new("bad", 1, FrequencySet::xeon_e5_2667(), 0.0);
    }

    #[test]
    #[should_panic(expected = "core class")]
    fn empty_class_list_rejected() {
        Platform::with_classes("bad", 1, vec![], 0.0);
    }
}

//! Per-core power model: `P = P_static + C_eff · V(f)² · f`.
//!
//! Calibrated to the Xeon E5-2667 v4 envelope (135 W TDP for 8 cores
//! plus uncore): a fully-busy core at 3.2 GHz draws ≈ 14 W, idling in a
//! shallow sleep state well under 1 W. Absolute watts only need to be
//! plausible — the experiments compare *ratios* between scheduling
//! policies on the same model.

use crate::freq::FreqLevel;
use serde::{Deserialize, Serialize};

/// Core-level power model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Effective switched capacitance in W / (GHz · V²).
    pub ceff_w_per_ghz_v2: f64,
    /// Static (leakage) power of an active core, in watts.
    pub static_w: f64,
    /// Power of a core idling at the minimum operating point (clock
    /// gated), in watts.
    pub idle_w: f64,
    /// Fraction of the dynamic power a core still burns when idling
    /// with its clock running (no work, no gating) — the state of a
    /// core pinned at a rail frequency between tiles.
    pub clock_idle_frac: f64,
    /// Energy cost of one DVFS transition, in joules.
    pub transition_j: f64,
}

impl PowerModel {
    /// Power of a core actively executing at `freq`, in watts.
    pub fn active_power_w(&self, freq: FreqLevel) -> f64 {
        let v = freq.voltage();
        self.static_w + self.ceff_w_per_ghz_v2 * v * v * freq.ghz()
    }

    /// Power of an idle (clock-gated) core, in watts.
    pub fn idle_power_w(&self) -> f64 {
        self.idle_w
    }

    /// Power of a core idling with its clock still running at `freq`
    /// (pinned-rail operation, no clock gating), in watts.
    pub fn clock_idle_power_w(&self, freq: FreqLevel) -> f64 {
        let v = freq.voltage();
        self.static_w + self.clock_idle_frac * self.ceff_w_per_ghz_v2 * v * v * freq.ghz()
    }

    /// Energy of one core over a slot: `busy_secs` active at `freq`,
    /// the rest idle, plus `transitions` DVFS switches.
    ///
    /// # Panics
    ///
    /// Panics when `busy_secs` exceeds `slot_secs` beyond rounding.
    pub fn core_energy_j(
        &self,
        freq: FreqLevel,
        busy_secs: f64,
        slot_secs: f64,
        transitions: u32,
    ) -> f64 {
        assert!(
            busy_secs <= slot_secs + 1e-9,
            "busy {busy_secs}s exceeds slot {slot_secs}s"
        );
        self.active_power_w(freq) * busy_secs
            + self.idle_power_w() * (slot_secs - busy_secs).max(0.0)
            + self.transition_j * transitions as f64
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        Self {
            ceff_w_per_ghz_v2: 4.0,
            static_w: 1.2,
            idle_w: 0.6,
            clock_idle_frac: 0.25,
            // 10 µs transition at ~20 W average draw.
            transition_j: 2e-4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ghz(v: f64) -> FreqLevel {
        FreqLevel::from_ghz(v)
    }

    #[test]
    fn active_power_in_xeon_envelope() {
        let m = PowerModel::default();
        let p32 = m.active_power_w(ghz(3.2));
        // ≈ 1.2 + 4.0 * 1.0 * 3.2 ≈ 14 W.
        assert!((10.0..18.0).contains(&p32), "p32={p32}");
        let p36 = m.active_power_w(ghz(3.6));
        let p29 = m.active_power_w(ghz(2.9));
        assert!(p29 < p32 && p32 < p36);
        // Full 8-core socket at 3.2 GHz ≈ 110 W < 135 W TDP.
        assert!(p32 * 8.0 < 135.0);
    }

    #[test]
    fn cubic_ish_scaling_with_frequency() {
        let m = PowerModel::default();
        // Energy per unit work: E = P(f)/f; lower f is more efficient.
        let e29 = m.active_power_w(ghz(2.9)) / 2.9;
        let e36 = m.active_power_w(ghz(3.6)) / 3.6;
        assert!(e29 < e36, "lower frequency must be more energy-efficient");
    }

    #[test]
    fn idle_far_below_active() {
        let m = PowerModel::default();
        assert!(m.idle_power_w() * 10.0 < m.active_power_w(ghz(2.9)));
    }

    #[test]
    fn core_energy_accumulates_parts() {
        let m = PowerModel::default();
        let slot = 1.0 / 24.0;
        let e_idle = m.core_energy_j(ghz(2.9), 0.0, slot, 0);
        assert!((e_idle - m.idle_power_w() * slot).abs() < 1e-12);
        let e_full = m.core_energy_j(ghz(3.6), slot, slot, 0);
        assert!((e_full - m.active_power_w(ghz(3.6)) * slot).abs() < 1e-12);
        let e_half = m.core_energy_j(ghz(3.6), slot / 2.0, slot, 1);
        assert!(e_half > e_idle && e_half < e_full + m.transition_j);
        assert!(e_half > m.core_energy_j(ghz(3.6), slot / 2.0, slot, 0));
    }

    #[test]
    #[should_panic(expected = "exceeds slot")]
    fn busy_beyond_slot_rejected() {
        PowerModel::default().core_energy_j(ghz(3.6), 1.0, 0.5, 0);
    }
}

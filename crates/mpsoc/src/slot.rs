//! Time-slot simulation: executes one 1/FPS scheduling interval on
//! every core and accounts time, deadline slack and energy.
//!
//! This is the substrate under Algorithm 2's DVFS stage (lines 16–24):
//! cores whose load fits the slot run and then idle (or run slower but
//! still on time), cores that cannot finish stay at f_max and carry the
//! remainder into the next slot.
//!
//! Loads are given in **reference fmax-seconds** (CPU time on a
//! speed-1.0 core at its maximum frequency). On a heterogeneous
//! [`Platform`] every core plans against its own class: the class
//! ladder picks the operating point, the class speed factor stretches
//! the work, and the class power model (when attached) prices it.

use crate::freq::FreqLevel;
use crate::platform::{CoreClass, Platform};
use crate::power::PowerModel;
use medvt_telemetry::{Event, EventKind, Recorder};
use serde::{Deserialize, Serialize};

/// How a core's frequency is chosen for a slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum DvfsPolicy {
    /// Run the load at f_max, then idle (clock-gated) at f_min for the
    /// slack — the literal reading of Algorithm 2 lines 17–19.
    RaceToIdle,
    /// Run at the lowest frequency that still meets the deadline,
    /// idling for any remaining slack — the refinement behind Fig. 3's
    /// "only two of the three cores at maximum frequency". This is the
    /// default.
    #[default]
    StretchToDeadline,
    /// Stay pinned at f_max through the whole slot, clock running even
    /// during slack — the coarse rail-frequency operation of the
    /// baseline \[19\], which only re-decides frequency when every core
    /// sits at a rail.
    PinnedMax,
}

/// The execution plan of one core for one slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorePlan {
    /// Chosen operating point for the busy period.
    pub freq: FreqLevel,
    /// Seconds spent executing.
    pub busy_secs: f64,
    /// Seconds idling at the end of the slot.
    pub slack_secs: f64,
    /// Load (in reference fmax-seconds) that did not fit and carries
    /// into the next slot.
    pub carry_fmax_secs: f64,
    /// DVFS transitions performed this slot.
    pub transitions: u32,
    /// `true` when the slack period keeps the clock running at `freq`
    /// (pinned-rail operation) instead of gating down to idle.
    pub slack_clock_running: bool,
    /// `true` when DVFS transition overhead consumed the entire slot:
    /// zero executable seconds remained and the whole load carried
    /// over. Only possible when the transition latency rivals the slot
    /// length; reported explicitly so the silent clamp to zero progress
    /// is observable.
    pub transition_bound: bool,
}

impl CorePlan {
    /// `true` when the core finished its assigned load in the slot.
    pub fn met_deadline(&self) -> bool {
        self.carry_fmax_secs <= 1e-12
    }

    /// Energy of this plan over a slot of `slot_secs`, joules.
    pub fn energy_j(&self, power: &PowerModel, slot_secs: f64) -> f64 {
        let slack_power = if self.slack_clock_running {
            power.clock_idle_power_w(self.freq)
        } else {
            power.idle_power_w()
        };
        power.active_power_w(self.freq) * self.busy_secs
            + slack_power * (slot_secs - self.busy_secs).max(0.0)
            + power.transition_j * self.transitions as f64
    }
}

/// Plans one core's slot given its assigned load in reference
/// fmax-seconds, for a core of `class` with `dvfs_transition_secs`
/// switch latency.
///
/// `prev_freq` is the core's operating point from the previous slot,
/// used to count DVFS transitions (each costs `dvfs_transition_secs`
/// of the busy budget — 10 µs on the paper's platform, negligible but
/// modelled).
pub fn plan_core_on(
    class: &CoreClass,
    dvfs_transition_secs: f64,
    policy: DvfsPolicy,
    load_fmax_secs: f64,
    slot_secs: f64,
    prev_freq: FreqLevel,
) -> CorePlan {
    assert!(load_fmax_secs >= 0.0, "load cannot be negative");
    assert!(slot_secs > 0.0, "slot must be positive");
    // Reference work stretched to this class's own f_max seconds.
    let local_load = load_fmax_secs / class.speed_factor;
    let fmax = class.fmax();
    if local_load <= 1e-15 {
        // Fully idle core.
        let fmin = class.fmin();
        return CorePlan {
            freq: fmin,
            busy_secs: 0.0,
            slack_secs: slot_secs,
            carry_fmax_secs: 0.0,
            transitions: u32::from(prev_freq != fmin),
            slack_clock_running: false,
            transition_bound: false,
        };
    }
    let freq = match policy {
        DvfsPolicy::RaceToIdle | DvfsPolicy::PinnedMax => fmax,
        DvfsPolicy::StretchToDeadline => class
            .freqs()
            .lowest_meeting(local_load, slot_secs)
            .unwrap_or(fmax),
    };
    let pinned = policy == DvfsPolicy::PinnedMax;
    let mut transitions = u32::from(prev_freq != freq);
    let run_secs = freq.stretch(local_load, fmax) + dvfs_transition_secs * transitions as f64;
    if run_secs <= slot_secs {
        // Fits: idle the remainder (drop to fmin per Algorithm 2 line
        // 18 — except under pinned-rail operation, which keeps the
        // clock running at the rail through the slack).
        let slack = slot_secs - run_secs;
        if !pinned && slack > dvfs_transition_secs && freq != class.fmin() {
            transitions += 1; // drop to fmin for the slack period
        }
        CorePlan {
            freq,
            busy_secs: run_secs,
            slack_secs: slack,
            carry_fmax_secs: 0.0,
            transitions,
            slack_clock_running: pinned,
            transition_bound: false,
        }
    } else {
        // Does not fit even at the chosen point: run flat out at fmax
        // for the whole slot and carry the remainder (lines 21–22).
        // The DVFS switch eats into the executable time; when it eats
        // the *whole* slot the core makes zero progress — flagged as
        // transition-bound rather than silently clamped.
        let transitions = u32::from(prev_freq != fmax);
        let done_local = (slot_secs - dvfs_transition_secs * transitions as f64).max(0.0);
        CorePlan {
            freq: fmax,
            busy_secs: slot_secs,
            slack_secs: 0.0,
            carry_fmax_secs: (load_fmax_secs - done_local * class.speed_factor).max(0.0),
            transitions,
            slack_clock_running: pinned,
            transition_bound: done_local <= 0.0,
        }
    }
}

/// Plans one core's slot on `platform`'s *reference class* (class 0) —
/// exactly the whole platform on the paper's homogeneous servers.
/// Heterogeneous callers should use [`plan_core_on`] with the class of
/// the core in question; [`simulate_slot`] does so per core.
pub fn plan_core(
    platform: &Platform,
    policy: DvfsPolicy,
    load_fmax_secs: f64,
    slot_secs: f64,
    prev_freq: FreqLevel,
) -> CorePlan {
    plan_core_on(
        &platform.classes()[0],
        platform.dvfs_transition_secs,
        policy,
        load_fmax_secs,
        slot_secs,
        prev_freq,
    )
}

/// Aggregate outcome of simulating one slot across all cores.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlotReport {
    /// Per-core plans, indexed by core id.
    pub cores: Vec<CorePlan>,
    /// Slot length in seconds.
    pub slot_secs: f64,
    /// Total energy over the slot, joules.
    pub energy_j: f64,
    /// Per-core energy over the slot, joules (sums to `energy_j`) —
    /// what per-user energy attribution in the server loop splits up.
    pub core_energy_j: Vec<f64>,
    /// Cores that failed to finish their load.
    pub deadline_misses: usize,
    /// Cores whose slot was entirely consumed by DVFS transition
    /// overhead (zero executable seconds; full load carried). Nonzero
    /// only when the transition latency rivals the slot length.
    pub transition_bound_cores: usize,
}

impl SlotReport {
    /// Mean power over the slot, watts.
    pub fn power_w(&self) -> f64 {
        self.energy_j / self.slot_secs
    }

    /// Total load carried into the next slot, reference fmax-seconds.
    pub fn total_carry(&self) -> f64 {
        self.cores.iter().map(|c| c.carry_fmax_secs).sum()
    }

    /// Cores that executed anything this slot.
    pub fn active_cores(&self) -> usize {
        self.cores.iter().filter(|c| c.busy_secs > 0.0).count()
    }
}

/// Simulates one slot: `loads[k]` is core `k`'s assigned load in
/// reference fmax-seconds; `prev_freqs` the operating points left from
/// the last slot (pass each core's class fmin for a cold start —
/// [`Platform::core_fmins`]).
///
/// Each core plans against its own [`CoreClass`]: ladder, speed factor
/// and (when attached) class power model. `power` prices the cores of
/// classes without their own model.
///
/// # Panics
///
/// Panics when `loads` and `prev_freqs` lengths differ from the
/// platform's core count.
pub fn simulate_slot(
    platform: &Platform,
    power: &PowerModel,
    policy: DvfsPolicy,
    loads: &[f64],
    prev_freqs: &[FreqLevel],
    slot_secs: f64,
) -> SlotReport {
    assert_eq!(
        loads.len(),
        platform.total_cores(),
        "one load per platform core required"
    );
    assert_eq!(
        prev_freqs.len(),
        platform.total_cores(),
        "one previous frequency per core required"
    );
    let mut cores = Vec::with_capacity(loads.len());
    let mut core_energy = Vec::with_capacity(loads.len());
    let mut energy = 0.0;
    let mut misses = 0;
    let mut transition_bound = 0;
    for (k, &load) in loads.iter().enumerate() {
        let class = platform.class_of(k);
        let plan = plan_core_on(
            class,
            platform.dvfs_transition_secs,
            policy,
            load,
            slot_secs,
            prev_freqs[k],
        );
        let e = plan.energy_j(class.power().unwrap_or(power), slot_secs);
        core_energy.push(e);
        energy += e;
        if !plan.met_deadline() {
            misses += 1;
        }
        if plan.transition_bound {
            transition_bound += 1;
        }
        cores.push(plan);
    }
    SlotReport {
        cores,
        slot_secs,
        energy_j: energy,
        core_energy_j: core_energy,
        deadline_misses: misses,
        transition_bound_cores: transition_bound,
    }
}

/// Emits one telemetry [`EventKind::SlotCore`] event per *interesting*
/// core of a [`simulate_slot`] outcome — cores that executed work or
/// carried load — stamped with `track`/`slot`.
///
/// The busy time is the *modeled* `busy_secs` rounded to nanoseconds.
/// Because analytical and thread-pool backends produce bit-identical
/// `SlotReport`s for the same inputs (the repo's backend-parity
/// invariant), the emitted events are deterministic and identical
/// across backends — wall-clock time never enters the payload.
///
/// Callers gate on `R::ENABLED` so the disabled path costs nothing.
pub fn record_slot_events<R: Recorder>(recorder: &R, track: u16, slot: u32, report: &SlotReport) {
    if !R::ENABLED {
        return;
    }
    for (core, plan) in report.cores.iter().enumerate() {
        let carry = !plan.met_deadline();
        if plan.busy_secs <= 0.0 && !carry && !plan.transition_bound {
            continue;
        }
        let busy_ns = (plan.busy_secs * 1e9).round().clamp(0.0, u32::MAX as f64) as u32;
        recorder.record(Event::new(
            track,
            slot,
            EventKind::SlotCore {
                core: core as u16,
                busy_ns,
                carry,
                transition_bound: plan.transition_bound,
            },
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freq::FrequencySet;

    fn setup() -> (Platform, PowerModel) {
        (Platform::quad_core(), PowerModel::default())
    }

    fn fmin_vec(p: &Platform) -> Vec<FreqLevel> {
        p.core_fmins()
    }

    const SLOT: f64 = 1.0 / 24.0;

    #[test]
    fn idle_core_costs_idle_energy() {
        let (p, m) = setup();
        let plan = plan_core(&p, DvfsPolicy::StretchToDeadline, 0.0, SLOT, p.fmin());
        assert_eq!(plan.busy_secs, 0.0);
        assert_eq!(plan.transitions, 0);
        assert!(plan.met_deadline());
        let e = m.core_energy_j(plan.freq, plan.busy_secs, SLOT, plan.transitions);
        assert!((e - m.idle_power_w() * SLOT).abs() < 1e-12);
    }

    #[test]
    fn stretch_picks_lowest_sufficient_frequency() {
        let (p, _) = setup();
        // Half-slot load at fmax → 2.9 GHz stretches it to 0.62 slots: fits.
        let plan = plan_core(
            &p,
            DvfsPolicy::StretchToDeadline,
            SLOT * 0.5,
            SLOT,
            p.fmax(),
        );
        assert_eq!(plan.freq, p.fmin());
        assert!(plan.met_deadline());
        assert!(plan.slack_secs > 0.0);
    }

    #[test]
    fn race_runs_at_fmax_and_idles() {
        let (p, _) = setup();
        let plan = plan_core(&p, DvfsPolicy::RaceToIdle, SLOT * 0.5, SLOT, p.fmax());
        assert_eq!(plan.freq, p.fmax());
        assert!(plan.met_deadline());
        assert!((plan.busy_secs - SLOT * 0.5).abs() < 1e-9);
    }

    #[test]
    fn stretch_saves_energy_over_race() {
        let (p, m) = setup();
        let load = SLOT * 0.5;
        let race = plan_core(&p, DvfsPolicy::RaceToIdle, load, SLOT, p.fmax());
        let stretch = plan_core(&p, DvfsPolicy::StretchToDeadline, load, SLOT, p.fmax());
        let e_race = m.core_energy_j(race.freq, race.busy_secs, SLOT, race.transitions);
        let e_stretch = m.core_energy_j(stretch.freq, stretch.busy_secs, SLOT, stretch.transitions);
        assert!(
            e_stretch < e_race,
            "stretch {e_stretch} J vs race {e_race} J"
        );
    }

    #[test]
    fn pinned_max_keeps_clock_running_through_slack() {
        let (p, m) = setup();
        let load = SLOT * 0.4;
        let pinned = plan_core(&p, DvfsPolicy::PinnedMax, load, SLOT, p.fmax());
        assert_eq!(pinned.freq, p.fmax());
        assert!(pinned.slack_clock_running);
        assert_eq!(pinned.transitions, 0, "never leaves the rail");
        let race = plan_core(&p, DvfsPolicy::RaceToIdle, load, SLOT, p.fmax());
        assert!(!race.slack_clock_running);
        // Pinned-rail slack burns clock power: strictly more energy.
        let e_pinned = pinned.energy_j(&m, SLOT);
        let e_race = race.energy_j(&m, SLOT);
        assert!(
            e_pinned > e_race,
            "pinned {e_pinned} J must exceed race {e_race} J"
        );
    }

    #[test]
    fn clock_idle_power_sits_between_gated_and_active() {
        let (p, m) = setup();
        let ci = m.clock_idle_power_w(p.fmax());
        assert!(ci > m.idle_power_w());
        assert!(ci < m.active_power_w(p.fmax()));
    }

    #[test]
    fn overload_carries_remainder() {
        let (p, _) = setup();
        let plan = plan_core(
            &p,
            DvfsPolicy::StretchToDeadline,
            SLOT * 1.4,
            SLOT,
            p.fmax(),
        );
        assert_eq!(plan.freq, p.fmax());
        assert!(!plan.met_deadline());
        assert!((plan.carry_fmax_secs - SLOT * 0.4).abs() < 1e-9);
        assert_eq!(plan.slack_secs, 0.0);
        assert!(!plan.transition_bound);
    }

    #[test]
    fn transition_longer_than_slot_is_flagged_not_negative() {
        // A pathological platform whose DVFS switch outlasts the slot:
        // the core makes zero progress, which must be reported as
        // transition-bound with every quantity still non-negative.
        let p = Platform::new(
            "slow-switch",
            1,
            1,
            FrequencySet::xeon_e5_2667(),
            SLOT * 2.0,
        );
        let m = PowerModel::default();
        let load = SLOT * 0.5;
        let plan = plan_core(&p, DvfsPolicy::StretchToDeadline, load, SLOT, p.fmax());
        // Coming from fmax at a fitting frequency there may be no
        // transition; force one by starting from fmin with an overload.
        let plan2 = plan_core(
            &p,
            DvfsPolicy::StretchToDeadline,
            SLOT * 1.5,
            SLOT,
            p.fmin(),
        );
        assert!(plan2.transition_bound, "transition ate the whole slot");
        assert!(
            (plan2.carry_fmax_secs - SLOT * 1.5).abs() < 1e-12,
            "full load carries"
        );
        assert!(plan2.busy_secs >= 0.0 && plan2.slack_secs >= 0.0);
        assert!(plan2.energy_j(&m, SLOT) >= 0.0);
        // The fitting case stays unflagged.
        assert!(!plan.transition_bound);
        // And the aggregate surfaces the count.
        let report = simulate_slot(
            &p,
            &m,
            DvfsPolicy::StretchToDeadline,
            &[SLOT * 1.5],
            &[p.fmin()],
            SLOT,
        );
        assert_eq!(report.transition_bound_cores, 1);
        assert!(report.energy_j >= 0.0);
        assert!(report.total_carry() >= 0.0);
    }

    #[test]
    fn simulate_slot_aggregates() {
        let (p, m) = setup();
        let loads = vec![0.0, SLOT * 0.3, SLOT * 0.9, SLOT * 1.5];
        let report = simulate_slot(
            &p,
            &m,
            DvfsPolicy::StretchToDeadline,
            &loads,
            &fmin_vec(&p),
            SLOT,
        );
        assert_eq!(report.cores.len(), 4);
        assert_eq!(report.deadline_misses, 1);
        assert_eq!(report.transition_bound_cores, 0);
        assert_eq!(report.active_cores(), 3);
        assert!(report.total_carry() > 0.0);
        assert!(report.power_w() > 0.0);
        assert_eq!(report.core_energy_j.len(), 4);
        let sum: f64 = report.core_energy_j.iter().sum();
        assert!((sum - report.energy_j).abs() < 1e-12);
    }

    #[test]
    fn lighter_total_load_uses_less_energy() {
        let (p, m) = setup();
        let heavy = vec![SLOT * 0.9; 4];
        let light = vec![SLOT * 0.2; 4];
        let e_heavy = simulate_slot(
            &p,
            &m,
            DvfsPolicy::StretchToDeadline,
            &heavy,
            &fmin_vec(&p),
            SLOT,
        )
        .energy_j;
        let e_light = simulate_slot(
            &p,
            &m,
            DvfsPolicy::StretchToDeadline,
            &light,
            &fmin_vec(&p),
            SLOT,
        )
        .energy_j;
        assert!(e_light < e_heavy);
    }

    #[test]
    fn transition_latency_counted_in_busy_time() {
        let (p, _) = setup();
        // Core coming from fmin, needs fmax: one transition eats 10 µs.
        let plan = plan_core(
            &p,
            DvfsPolicy::StretchToDeadline,
            SLOT * 0.95,
            SLOT,
            p.fmin(),
        );
        assert!(plan.transitions >= 1);
        assert!(plan.busy_secs > SLOT * 0.95);
    }

    #[test]
    fn slow_class_stretches_reference_work() {
        // A 0.5-speed class needs twice the seconds for the same
        // reference load, even at its own fmax.
        let half = CoreClass::new("half", 1, FrequencySet::xeon_e5_2667(), 0.5);
        let full = CoreClass::new("full", 1, FrequencySet::xeon_e5_2667(), 1.0);
        let load = SLOT * 0.4;
        let on_half = plan_core_on(&half, 0.0, DvfsPolicy::RaceToIdle, load, SLOT, half.fmax());
        let on_full = plan_core_on(&full, 0.0, DvfsPolicy::RaceToIdle, load, SLOT, full.fmax());
        assert!((on_half.busy_secs - 2.0 * on_full.busy_secs).abs() < 1e-12);
        assert!(on_half.met_deadline());
        // Overload on the slow class carries in *reference* units.
        let big = plan_core_on(&half, 0.0, DvfsPolicy::RaceToIdle, SLOT, SLOT, half.fmax());
        // One slot of reference work = two slots local: half executes,
        // half (in reference units: SLOT*0.5) carries.
        assert!((big.carry_fmax_secs - SLOT * 0.5).abs() < 1e-12);
    }

    #[test]
    fn big_little_slot_uses_class_ladders_and_power() {
        let p = Platform::big_little();
        let m = PowerModel::default();
        let mut loads = vec![0.0; p.total_cores()];
        loads[0] = SLOT * 0.5; // big core
        loads[4] = SLOT * 0.2; // LITTLE core (0.44 slots local)
        let report = simulate_slot(
            &p,
            &m,
            DvfsPolicy::StretchToDeadline,
            &loads,
            &p.core_fmins(),
            SLOT,
        );
        assert_eq!(report.deadline_misses, 0);
        // Frequencies come from each core's own ladder.
        let big_ladder = p.class_of(0).freqs().levels().to_vec();
        let little_ladder = p.class_of(4).freqs().levels().to_vec();
        assert!(big_ladder.contains(&report.cores[0].freq));
        assert!(little_ladder.contains(&report.cores[4].freq));
        // The LITTLE class's lighter power model prices its idle cores
        // below the big class's idle cores.
        assert!(report.core_energy_j[5] < report.core_energy_j[1]);
    }

    #[test]
    #[should_panic(expected = "one load per platform core")]
    fn wrong_load_count_rejected() {
        let (p, m) = setup();
        simulate_slot(&p, &m, DvfsPolicy::RaceToIdle, &[0.0], &fmin_vec(&p), SLOT);
    }
}

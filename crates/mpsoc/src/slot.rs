//! Time-slot simulation: executes one 1/FPS scheduling interval on
//! every core and accounts time, deadline slack and energy.
//!
//! This is the substrate under Algorithm 2's DVFS stage (lines 16–24):
//! cores whose load fits the slot run and then idle (or run slower but
//! still on time), cores that cannot finish stay at f_max and carry the
//! remainder into the next slot.

use crate::freq::FreqLevel;
use crate::platform::Platform;
use crate::power::PowerModel;
use serde::{Deserialize, Serialize};

/// How a core's frequency is chosen for a slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum DvfsPolicy {
    /// Run the load at f_max, then idle (clock-gated) at f_min for the
    /// slack — the literal reading of Algorithm 2 lines 17–19.
    RaceToIdle,
    /// Run at the lowest frequency that still meets the deadline,
    /// idling for any remaining slack — the refinement behind Fig. 3's
    /// "only two of the three cores at maximum frequency". This is the
    /// default.
    #[default]
    StretchToDeadline,
    /// Stay pinned at f_max through the whole slot, clock running even
    /// during slack — the coarse rail-frequency operation of the
    /// baseline [19], which only re-decides frequency when every core
    /// sits at a rail.
    PinnedMax,
}

/// The execution plan of one core for one slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorePlan {
    /// Chosen operating point for the busy period.
    pub freq: FreqLevel,
    /// Seconds spent executing.
    pub busy_secs: f64,
    /// Seconds idling at the end of the slot.
    pub slack_secs: f64,
    /// Load (in fmax-seconds) that did not fit and carries into the
    /// next slot.
    pub carry_fmax_secs: f64,
    /// DVFS transitions performed this slot.
    pub transitions: u32,
    /// `true` when the slack period keeps the clock running at `freq`
    /// (pinned-rail operation) instead of gating down to idle.
    pub slack_clock_running: bool,
}

impl CorePlan {
    /// `true` when the core finished its assigned load in the slot.
    pub fn met_deadline(&self) -> bool {
        self.carry_fmax_secs <= 1e-12
    }

    /// Energy of this plan over a slot of `slot_secs`, joules.
    pub fn energy_j(&self, power: &PowerModel, slot_secs: f64) -> f64 {
        let slack_power = if self.slack_clock_running {
            power.clock_idle_power_w(self.freq)
        } else {
            power.idle_power_w()
        };
        power.active_power_w(self.freq) * self.busy_secs
            + slack_power * (slot_secs - self.busy_secs).max(0.0)
            + power.transition_j * self.transitions as f64
    }
}

/// Plans one core's slot given its assigned load in fmax-seconds.
///
/// `prev_freq` is the core's operating point from the previous slot,
/// used to count DVFS transitions (each costs
/// [`Platform::dvfs_transition_secs`] of the busy budget — 10 µs on
/// the paper's platform, negligible but modelled).
pub fn plan_core(
    platform: &Platform,
    policy: DvfsPolicy,
    load_fmax_secs: f64,
    slot_secs: f64,
    prev_freq: FreqLevel,
) -> CorePlan {
    assert!(load_fmax_secs >= 0.0, "load cannot be negative");
    assert!(slot_secs > 0.0, "slot must be positive");
    let fmax = platform.fmax();
    if load_fmax_secs <= 1e-15 {
        // Fully idle core.
        let fmin = platform.fmin();
        return CorePlan {
            freq: fmin,
            busy_secs: 0.0,
            slack_secs: slot_secs,
            carry_fmax_secs: 0.0,
            transitions: u32::from(prev_freq != fmin),
            slack_clock_running: false,
        };
    }
    let freq = match policy {
        DvfsPolicy::RaceToIdle | DvfsPolicy::PinnedMax => fmax,
        DvfsPolicy::StretchToDeadline => platform
            .freqs()
            .lowest_meeting(load_fmax_secs, slot_secs)
            .unwrap_or(fmax),
    };
    let pinned = policy == DvfsPolicy::PinnedMax;
    let mut transitions = u32::from(prev_freq != freq);
    let run_secs =
        freq.stretch(load_fmax_secs, fmax) + platform.dvfs_transition_secs * transitions as f64;
    if run_secs <= slot_secs {
        // Fits: idle the remainder (drop to fmin per Algorithm 2 line
        // 18 — except under pinned-rail operation, which keeps the
        // clock running at the rail through the slack).
        let slack = slot_secs - run_secs;
        if !pinned && slack > platform.dvfs_transition_secs && freq != platform.fmin() {
            transitions += 1; // drop to fmin for the slack period
        }
        CorePlan {
            freq,
            busy_secs: run_secs,
            slack_secs: slack,
            carry_fmax_secs: 0.0,
            transitions,
            slack_clock_running: pinned,
        }
    } else {
        // Does not fit even at the chosen point: run flat out at fmax
        // for the whole slot and carry the remainder (lines 21–22).
        // The DVFS switch eats into the executable time.
        let transitions = u32::from(prev_freq != fmax);
        let done_fmax = (slot_secs - platform.dvfs_transition_secs * transitions as f64).max(0.0);
        CorePlan {
            freq: fmax,
            busy_secs: slot_secs,
            slack_secs: 0.0,
            carry_fmax_secs: (load_fmax_secs - done_fmax).max(0.0),
            transitions,
            slack_clock_running: pinned,
        }
    }
}

/// Aggregate outcome of simulating one slot across all cores.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlotReport {
    /// Per-core plans, indexed by core id.
    pub cores: Vec<CorePlan>,
    /// Slot length in seconds.
    pub slot_secs: f64,
    /// Total energy over the slot, joules.
    pub energy_j: f64,
    /// Per-core energy over the slot, joules (sums to `energy_j`) —
    /// what per-user energy attribution in the server loop splits up.
    pub core_energy_j: Vec<f64>,
    /// Cores that failed to finish their load.
    pub deadline_misses: usize,
}

impl SlotReport {
    /// Mean power over the slot, watts.
    pub fn power_w(&self) -> f64 {
        self.energy_j / self.slot_secs
    }

    /// Total load carried into the next slot, fmax-seconds.
    pub fn total_carry(&self) -> f64 {
        self.cores.iter().map(|c| c.carry_fmax_secs).sum()
    }

    /// Cores that executed anything this slot.
    pub fn active_cores(&self) -> usize {
        self.cores.iter().filter(|c| c.busy_secs > 0.0).count()
    }
}

/// Simulates one slot: `loads[k]` is core `k`'s assigned load in
/// fmax-seconds; `prev_freqs` the operating points left from the last
/// slot (pass fmin for a cold start).
///
/// # Panics
///
/// Panics when `loads` and `prev_freqs` lengths differ from the
/// platform's core count.
pub fn simulate_slot(
    platform: &Platform,
    power: &PowerModel,
    policy: DvfsPolicy,
    loads: &[f64],
    prev_freqs: &[FreqLevel],
    slot_secs: f64,
) -> SlotReport {
    assert_eq!(
        loads.len(),
        platform.total_cores(),
        "one load per platform core required"
    );
    assert_eq!(
        prev_freqs.len(),
        platform.total_cores(),
        "one previous frequency per core required"
    );
    let mut cores = Vec::with_capacity(loads.len());
    let mut core_energy = Vec::with_capacity(loads.len());
    let mut energy = 0.0;
    let mut misses = 0;
    for (k, &load) in loads.iter().enumerate() {
        let plan = plan_core(platform, policy, load, slot_secs, prev_freqs[k]);
        let e = plan.energy_j(power, slot_secs);
        core_energy.push(e);
        energy += e;
        if !plan.met_deadline() {
            misses += 1;
        }
        cores.push(plan);
    }
    SlotReport {
        cores,
        slot_secs,
        energy_j: energy,
        core_energy_j: core_energy,
        deadline_misses: misses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Platform, PowerModel) {
        (Platform::quad_core(), PowerModel::default())
    }

    fn fmin_vec(p: &Platform) -> Vec<FreqLevel> {
        vec![p.fmin(); p.total_cores()]
    }

    const SLOT: f64 = 1.0 / 24.0;

    #[test]
    fn idle_core_costs_idle_energy() {
        let (p, m) = setup();
        let plan = plan_core(&p, DvfsPolicy::StretchToDeadline, 0.0, SLOT, p.fmin());
        assert_eq!(plan.busy_secs, 0.0);
        assert_eq!(plan.transitions, 0);
        assert!(plan.met_deadline());
        let e = m.core_energy_j(plan.freq, plan.busy_secs, SLOT, plan.transitions);
        assert!((e - m.idle_power_w() * SLOT).abs() < 1e-12);
    }

    #[test]
    fn stretch_picks_lowest_sufficient_frequency() {
        let (p, _) = setup();
        // Half-slot load at fmax → 2.9 GHz stretches it to 0.62 slots: fits.
        let plan = plan_core(
            &p,
            DvfsPolicy::StretchToDeadline,
            SLOT * 0.5,
            SLOT,
            p.fmax(),
        );
        assert_eq!(plan.freq, p.fmin());
        assert!(plan.met_deadline());
        assert!(plan.slack_secs > 0.0);
    }

    #[test]
    fn race_runs_at_fmax_and_idles() {
        let (p, _) = setup();
        let plan = plan_core(&p, DvfsPolicy::RaceToIdle, SLOT * 0.5, SLOT, p.fmax());
        assert_eq!(plan.freq, p.fmax());
        assert!(plan.met_deadline());
        assert!((plan.busy_secs - SLOT * 0.5).abs() < 1e-9);
    }

    #[test]
    fn stretch_saves_energy_over_race() {
        let (p, m) = setup();
        let load = SLOT * 0.5;
        let race = plan_core(&p, DvfsPolicy::RaceToIdle, load, SLOT, p.fmax());
        let stretch = plan_core(&p, DvfsPolicy::StretchToDeadline, load, SLOT, p.fmax());
        let e_race = m.core_energy_j(race.freq, race.busy_secs, SLOT, race.transitions);
        let e_stretch = m.core_energy_j(stretch.freq, stretch.busy_secs, SLOT, stretch.transitions);
        assert!(
            e_stretch < e_race,
            "stretch {e_stretch} J vs race {e_race} J"
        );
    }

    #[test]
    fn pinned_max_keeps_clock_running_through_slack() {
        let (p, m) = setup();
        let load = SLOT * 0.4;
        let pinned = plan_core(&p, DvfsPolicy::PinnedMax, load, SLOT, p.fmax());
        assert_eq!(pinned.freq, p.fmax());
        assert!(pinned.slack_clock_running);
        assert_eq!(pinned.transitions, 0, "never leaves the rail");
        let race = plan_core(&p, DvfsPolicy::RaceToIdle, load, SLOT, p.fmax());
        assert!(!race.slack_clock_running);
        // Pinned-rail slack burns clock power: strictly more energy.
        let e_pinned = pinned.energy_j(&m, SLOT);
        let e_race = race.energy_j(&m, SLOT);
        assert!(
            e_pinned > e_race,
            "pinned {e_pinned} J must exceed race {e_race} J"
        );
    }

    #[test]
    fn clock_idle_power_sits_between_gated_and_active() {
        let (p, m) = setup();
        let ci = m.clock_idle_power_w(p.fmax());
        assert!(ci > m.idle_power_w());
        assert!(ci < m.active_power_w(p.fmax()));
    }

    #[test]
    fn overload_carries_remainder() {
        let (p, _) = setup();
        let plan = plan_core(
            &p,
            DvfsPolicy::StretchToDeadline,
            SLOT * 1.4,
            SLOT,
            p.fmax(),
        );
        assert_eq!(plan.freq, p.fmax());
        assert!(!plan.met_deadline());
        assert!((plan.carry_fmax_secs - SLOT * 0.4).abs() < 1e-9);
        assert_eq!(plan.slack_secs, 0.0);
    }

    #[test]
    fn simulate_slot_aggregates() {
        let (p, m) = setup();
        let loads = vec![0.0, SLOT * 0.3, SLOT * 0.9, SLOT * 1.5];
        let report = simulate_slot(
            &p,
            &m,
            DvfsPolicy::StretchToDeadline,
            &loads,
            &fmin_vec(&p),
            SLOT,
        );
        assert_eq!(report.cores.len(), 4);
        assert_eq!(report.deadline_misses, 1);
        assert_eq!(report.active_cores(), 3);
        assert!(report.total_carry() > 0.0);
        assert!(report.power_w() > 0.0);
        assert_eq!(report.core_energy_j.len(), 4);
        let sum: f64 = report.core_energy_j.iter().sum();
        assert!((sum - report.energy_j).abs() < 1e-12);
    }

    #[test]
    fn lighter_total_load_uses_less_energy() {
        let (p, m) = setup();
        let heavy = vec![SLOT * 0.9; 4];
        let light = vec![SLOT * 0.2; 4];
        let e_heavy = simulate_slot(
            &p,
            &m,
            DvfsPolicy::StretchToDeadline,
            &heavy,
            &fmin_vec(&p),
            SLOT,
        )
        .energy_j;
        let e_light = simulate_slot(
            &p,
            &m,
            DvfsPolicy::StretchToDeadline,
            &light,
            &fmin_vec(&p),
            SLOT,
        )
        .energy_j;
        assert!(e_light < e_heavy);
    }

    #[test]
    fn transition_latency_counted_in_busy_time() {
        let (p, _) = setup();
        // Core coming from fmin, needs fmax: one transition eats 10 µs.
        let plan = plan_core(
            &p,
            DvfsPolicy::StretchToDeadline,
            SLOT * 0.95,
            SLOT,
            p.fmin(),
        );
        assert!(plan.transitions >= 1);
        assert!(plan.busy_secs > SLOT * 0.95);
    }

    #[test]
    #[should_panic(expected = "one load per platform core")]
    fn wrong_load_count_rejected() {
        let (p, m) = setup();
        simulate_slot(&p, &m, DvfsPolicy::RaceToIdle, &[0.0], &fmin_vec(&p), SLOT);
    }
}

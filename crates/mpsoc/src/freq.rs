//! Operating frequencies and the discrete DVFS ladder.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One operating point, stored in hertz.
///
/// # Examples
///
/// ```
/// use medvt_mpsoc::FreqLevel;
///
/// let f = FreqLevel::from_ghz(3.6);
/// assert_eq!(f.hz(), 3_600_000_000);
/// assert!((f.ghz() - 3.6).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FreqLevel(u64);

impl FreqLevel {
    /// Creates a level from hertz.
    ///
    /// # Panics
    ///
    /// Panics when `hz` is zero.
    pub const fn from_hz(hz: u64) -> Self {
        assert!(hz > 0, "frequency must be non-zero");
        Self(hz)
    }

    /// Creates a level from gigahertz.
    ///
    /// # Panics
    ///
    /// Panics when `ghz` is not strictly positive.
    pub fn from_ghz(ghz: f64) -> Self {
        assert!(ghz > 0.0 && ghz.is_finite(), "frequency must be positive");
        Self((ghz * 1e9).round() as u64)
    }

    /// Frequency in hertz.
    pub const fn hz(&self) -> u64 {
        self.0
    }

    /// Frequency in gigahertz.
    pub fn ghz(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Core voltage at this operating point (linear V/f map calibrated
    /// to the Xeon E5-2667 v4 envelope: 2.9 GHz→0.95 V, 3.6 GHz→1.10 V).
    pub fn voltage(&self) -> f64 {
        let ghz = self.ghz();
        (0.95 + (ghz - 2.9) * (0.15 / 0.7)).clamp(0.7, 1.3)
    }

    /// Seconds to execute work specified in fmax-seconds at this level:
    /// `load_fmax * fmax / self`.
    pub fn stretch(&self, load_fmax_secs: f64, fmax: FreqLevel) -> f64 {
        load_fmax_secs * fmax.hz() as f64 / self.hz() as f64
    }
}

impl fmt::Display for FreqLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}GHz", self.ghz())
    }
}

/// A sorted ladder of available frequencies.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrequencySet {
    levels: Vec<FreqLevel>,
}

impl FrequencySet {
    /// Builds a set from levels (deduplicated, sorted ascending).
    ///
    /// # Panics
    ///
    /// Panics when no level is given.
    pub fn new(mut levels: Vec<FreqLevel>) -> Self {
        assert!(!levels.is_empty(), "need at least one frequency level");
        levels.sort_unstable();
        levels.dedup();
        Self { levels }
    }

    /// The paper's platform ladder: 2.9, 3.2 and 3.6 GHz (§IV-A).
    pub fn xeon_e5_2667() -> Self {
        Self::new(vec![
            FreqLevel::from_ghz(2.9),
            FreqLevel::from_ghz(3.2),
            FreqLevel::from_ghz(3.6),
        ])
    }

    /// An Arm-style "big" cluster ladder: 1.4, 1.8 and 2.0 GHz.
    pub fn big_cluster() -> Self {
        Self::new(vec![
            FreqLevel::from_ghz(1.4),
            FreqLevel::from_ghz(1.8),
            FreqLevel::from_ghz(2.0),
        ])
    }

    /// An Arm-style "LITTLE" cluster ladder: 0.6, 1.0 and 1.4 GHz.
    pub fn little_cluster() -> Self {
        Self::new(vec![
            FreqLevel::from_ghz(0.6),
            FreqLevel::from_ghz(1.0),
            FreqLevel::from_ghz(1.4),
        ])
    }

    /// Lowest level.
    pub fn min(&self) -> FreqLevel {
        self.levels[0]
    }

    /// Highest level.
    pub fn max(&self) -> FreqLevel {
        *self.levels.last().expect("non-empty by construction")
    }

    /// All levels, ascending.
    pub fn levels(&self) -> &[FreqLevel] {
        &self.levels
    }

    /// Number of levels.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// `false`; sets are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// The lowest frequency at which `load_fmax_secs` of fmax-work
    /// still finishes within `slot_secs`, or `None` when even the
    /// maximum cannot.
    pub fn lowest_meeting(&self, load_fmax_secs: f64, slot_secs: f64) -> Option<FreqLevel> {
        let fmax = self.max();
        self.levels
            .iter()
            .copied()
            .find(|f| f.stretch(load_fmax_secs, fmax) <= slot_secs + 1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_round_trip() {
        let f = FreqLevel::from_ghz(2.9);
        assert_eq!(f.hz(), 2_900_000_000);
        assert!((f.ghz() - 2.9).abs() < 1e-12);
        assert_eq!(f.to_string(), "2.9GHz");
    }

    #[test]
    fn voltage_monotone_in_frequency() {
        let ladder = FrequencySet::xeon_e5_2667();
        let vs: Vec<f64> = ladder.levels().iter().map(|f| f.voltage()).collect();
        assert!(vs.windows(2).all(|w| w[0] < w[1]));
        assert!((ladder.max().voltage() - 1.10).abs() < 1e-9);
        assert!((ladder.min().voltage() - 0.95).abs() < 1e-9);
    }

    #[test]
    fn stretch_scales_inversely() {
        let fmax = FreqLevel::from_ghz(3.6);
        let f = FreqLevel::from_ghz(2.9);
        let t = f.stretch(1.0, fmax);
        assert!((t - 3.6 / 2.9).abs() < 1e-12);
        assert_eq!(fmax.stretch(0.5, fmax), 0.5);
    }

    #[test]
    fn xeon_ladder_matches_paper() {
        let set = FrequencySet::xeon_e5_2667();
        assert_eq!(set.len(), 3);
        assert!((set.min().ghz() - 2.9).abs() < 1e-12);
        assert!((set.max().ghz() - 3.6).abs() < 1e-12);
    }

    #[test]
    fn lowest_meeting_picks_minimum_sufficient() {
        let set = FrequencySet::xeon_e5_2667();
        let slot = 1.0 / 24.0;
        // Tiny load: even 2.9 GHz meets the deadline.
        assert_eq!(
            set.lowest_meeting(slot * 0.5, slot),
            Some(FreqLevel::from_ghz(2.9))
        );
        // Load that only fits at full speed.
        assert_eq!(
            set.lowest_meeting(slot * 0.95, slot),
            Some(FreqLevel::from_ghz(3.6))
        );
        // Load needing 3.2 but not 3.6: stretch at 3.2 = load*1.125.
        assert_eq!(
            set.lowest_meeting(slot * 0.85, slot),
            Some(FreqLevel::from_ghz(3.2))
        );
        // Overload: nothing meets.
        assert_eq!(set.lowest_meeting(slot * 1.5, slot), None);
    }

    #[test]
    fn set_sorts_and_dedups() {
        let set = FrequencySet::new(vec![
            FreqLevel::from_ghz(3.6),
            FreqLevel::from_ghz(2.9),
            FreqLevel::from_ghz(3.6),
        ]);
        assert_eq!(set.len(), 2);
        assert!((set.min().ghz() - 2.9).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_set_rejected() {
        FrequencySet::new(vec![]);
    }
}

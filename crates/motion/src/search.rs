//! Search framework: windows, contexts, results and the
//! [`MotionSearch`] trait all algorithms implement.

use crate::cost::{block_cost_upto, CostMetric};
use crate::MotionVector;
use medvt_frame::{Plane, Rect};
use serde::{Deserialize, Serialize};
use std::cell::{Cell, RefCell};

/// A square search window of `size x size` samples centered on the
/// collocated block, i.e. motion components are clamped to
/// `±size/2` (paper §III-C2 uses sizes 64, 32, 16 and 8).
///
/// # Examples
///
/// ```
/// use medvt_motion::SearchWindow;
///
/// assert_eq!(SearchWindow::W64.radius(), 32);
/// assert_eq!(SearchWindow::from_size(16).size(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SearchWindow {
    radius: i16,
}

impl SearchWindow {
    /// 64x64 window (±32) — the paper's maximum for high-motion tiles.
    pub const W64: SearchWindow = SearchWindow { radius: 32 };
    /// 32x32 window (±16).
    pub const W32: SearchWindow = SearchWindow { radius: 16 };
    /// 16x16 window (±8) — low-motion tiles, first GOP frame.
    pub const W16: SearchWindow = SearchWindow { radius: 8 };
    /// 8x8 window (±4) — low-motion tiles, subsequent GOP frames.
    pub const W8: SearchWindow = SearchWindow { radius: 4 };

    /// The window sizes the paper considers, largest first.
    pub const ALL: [SearchWindow; 4] = [
        SearchWindow::W64,
        SearchWindow::W32,
        SearchWindow::W16,
        SearchWindow::W8,
    ];

    /// Creates a window from its side length in samples.
    ///
    /// # Panics
    ///
    /// Panics when `size < 2`.
    pub fn from_size(size: usize) -> Self {
        assert!(size >= 2, "search window must be at least 2 samples");
        Self {
            radius: (size / 2) as i16,
        }
    }

    /// Maximum absolute motion component.
    pub const fn radius(&self) -> i16 {
        self.radius
    }

    /// Side length in samples.
    pub const fn size(&self) -> usize {
        (self.radius as usize) * 2
    }

    /// `true` when `mv` lies inside the window.
    pub fn contains(&self, mv: MotionVector) -> bool {
        mv.linf_norm() <= self.radius
    }

    /// The next smaller paper window, if any (64→32→16→8).
    pub fn shrunk(&self) -> Option<SearchWindow> {
        Self::ALL
            .iter()
            .copied()
            .filter(|w| w.radius < self.radius)
            .max_by_key(|w| w.radius)
    }
}

impl Default for SearchWindow {
    fn default() -> Self {
        SearchWindow::W64
    }
}

/// One memoized candidate slot, stamped with the owning context's
/// generation so pooled buffers never need clearing.
#[derive(Debug, Clone, Copy, Default)]
struct MemoSlot {
    gen: u32,
    /// 0 = empty, 1 = lower bound (early-terminated), 2 = exact.
    tag: u8,
    value: u64,
}

const TAG_LOWER: u8 = 1;
const TAG_EXACT: u8 = 2;

/// Flat per-window candidate memo, recycled through a thread-local
/// pool so steady-state block searches allocate nothing.
#[derive(Debug, Default)]
struct MemoBuf {
    gen: u32,
    slots: Vec<MemoSlot>,
}

impl MemoBuf {
    /// Prepares the buffer for a window of side length `side`:
    /// guarantees capacity and invalidates previous entries by bumping
    /// the generation stamp (no O(side²) clear).
    fn begin(&mut self, side: usize) {
        let need = side * side;
        if self.slots.len() < need {
            self.slots.resize(need, MemoSlot::default());
        }
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            // Generation wrapped: stale stamps could collide, so clear
            // once every 2^32 contexts.
            self.slots.fill(MemoSlot::default());
            self.gen = 1;
        }
    }

    #[inline]
    fn get(&self, idx: usize) -> (u8, u64) {
        let s = self.slots[idx];
        if s.gen == self.gen {
            (s.tag, s.value)
        } else {
            (0, 0)
        }
    }

    #[inline]
    fn set(&mut self, idx: usize, tag: u8, value: u64) {
        self.slots[idx] = MemoSlot {
            gen: self.gen,
            tag,
            value,
        };
    }
}

thread_local! {
    /// Recycled memo buffers; a stack because policy algorithms nest
    /// narrowed contexts inside their parent's lifetime.
    static MEMO_POOL: RefCell<Vec<MemoBuf>> = const { RefCell::new(Vec::new()) };
}

fn memo_acquire(side: usize) -> MemoBuf {
    let mut buf = MEMO_POOL
        .with(|pool| pool.borrow_mut().pop())
        .unwrap_or_default();
    buf.begin(side);
    buf
}

fn memo_release(buf: MemoBuf) {
    // Ignore failures during thread teardown.
    let _ = MEMO_POOL.try_with(|pool| pool.borrow_mut().push(buf));
}

/// Everything an algorithm needs to search one block: the two planes,
/// the block geometry, the window, the metric and a starting predictor.
///
/// The context memoizes candidate costs, so the number of *distinct*
/// candidates evaluated — the standard complexity measure for
/// block-matching algorithms — is available as [`SearchContext::evaluations`].
///
/// Memoization uses a flat array indexed by window offset (one slot
/// per candidate, no hashing), recycled through a thread-local pool so
/// constructing a context in a steady-state encode loop does not
/// allocate.
#[derive(Debug)]
pub struct SearchContext<'a> {
    cur: &'a Plane,
    reference: &'a Plane,
    block: Rect,
    window: SearchWindow,
    metric: CostMetric,
    predictor: MotionVector,
    evaluations: Cell<u64>,
    memo: RefCell<MemoBuf>,
}

impl Drop for SearchContext<'_> {
    fn drop(&mut self) {
        memo_release(std::mem::take(self.memo.get_mut()));
    }
}

impl<'a> SearchContext<'a> {
    /// Creates a search context.
    ///
    /// # Panics
    ///
    /// Panics when `block` is not fully inside `cur`.
    pub fn new(
        cur: &'a Plane,
        reference: &'a Plane,
        block: Rect,
        window: SearchWindow,
        metric: CostMetric,
        predictor: MotionVector,
    ) -> Self {
        assert!(
            cur.bounds().contains_rect(&block),
            "block {block} outside current plane"
        );
        Self {
            cur,
            reference,
            block,
            window,
            metric,
            predictor,
            evaluations: Cell::new(0),
            memo: RefCell::new(memo_acquire(window.size() + 1)),
        }
    }

    /// Flat memo index of an in-window candidate.
    #[inline]
    fn slot_index(&self, mv: MotionVector) -> usize {
        let r = self.window.radius() as isize;
        let side = 2 * r as usize + 1;
        (mv.y as isize + r) as usize * side + (mv.x as isize + r) as usize
    }

    /// The block being matched.
    pub fn block(&self) -> Rect {
        self.block
    }

    /// The active search window.
    pub fn window(&self) -> SearchWindow {
        self.window
    }

    /// The starting predictor, clamped into the window.
    pub fn predictor(&self) -> MotionVector {
        self.predictor.clamped(self.window.radius())
    }

    /// Distinct candidates evaluated so far.
    pub fn evaluations(&self) -> u64 {
        self.evaluations.get()
    }

    /// A derived context over the same planes/block with a different
    /// window (used by policy algorithms that shrink the window); the
    /// evaluation counter starts at zero.
    pub fn narrowed(&self, window: SearchWindow) -> SearchContext<'a> {
        self.narrowed_with_predictor(window, self.predictor)
    }

    /// Like [`SearchContext::narrowed`] but replacing the predictor,
    /// used when a policy injects an inherited motion direction.
    pub fn narrowed_with_predictor(
        &self,
        window: SearchWindow,
        predictor: MotionVector,
    ) -> SearchContext<'a> {
        SearchContext::new(
            self.cur,
            self.reference,
            self.block,
            window,
            self.metric,
            predictor,
        )
    }

    /// Cost of candidate `mv`, or `None` when it falls outside the
    /// window. Repeated queries of the same candidate are served from
    /// cache and counted once.
    pub fn try_cost(&self, mv: MotionVector) -> Option<u64> {
        self.try_cost_upto(mv, u64::MAX)
    }

    /// Like [`SearchContext::try_cost`] but with an early-termination
    /// `bound`: the metric may stop at a row boundary once its partial
    /// sum reaches `bound`. The result decides `cost < bound` exactly
    /// like the exact cost would (see [`crate::cost`]), and is exact
    /// whenever it is below `bound` — so search decisions driven by a
    /// monotonically decreasing running best are bit-identical to the
    /// unbounded search, while rejected candidates cost a fraction of
    /// the samples.
    ///
    /// Distinct candidates are still counted exactly once in
    /// [`SearchContext::evaluations`], terminated or not.
    pub fn try_cost_upto(&self, mv: MotionVector, bound: u64) -> Option<u64> {
        if !self.window.contains(mv) {
            return None;
        }
        let idx = self.slot_index(mv);
        let mut memo = self.memo.borrow_mut();
        let (tag, cached) = memo.get(idx);
        match tag {
            TAG_EXACT => Some(cached),
            // A stored lower bound came from an earlier early exit, so
            // it is >= the bound active then; running bests only
            // decrease, so it also rejects against any later bound it
            // still reaches.
            TAG_LOWER if cached >= bound => Some(cached),
            _ => {
                let c = block_cost_upto(
                    self.metric,
                    self.cur,
                    self.reference,
                    &self.block,
                    mv,
                    bound,
                );
                if c < bound {
                    memo.set(idx, TAG_EXACT, c);
                } else {
                    memo.set(idx, TAG_LOWER, c);
                }
                if tag == 0 {
                    self.evaluations.set(self.evaluations.get() + 1);
                }
                Some(c)
            }
        }
    }

    /// Builds the search result once an algorithm settles on `best`.
    pub fn result(&self, best: MotionVector, cost: u64) -> SearchResult {
        SearchResult {
            mv: best,
            cost,
            evaluations: self.evaluations(),
        }
    }
}

/// Running best-candidate tracker.
#[derive(Debug, Clone, Copy)]
pub struct Best {
    /// Best motion vector found so far.
    pub mv: MotionVector,
    /// Its cost.
    pub cost: u64,
}

impl Best {
    /// Seeds the tracker from the first valid candidate among `seeds`.
    ///
    /// # Panics
    ///
    /// Panics when no seed lies inside the window (the zero vector is
    /// always inside, so passing it guarantees success).
    pub fn seeded(ctx: &SearchContext<'_>, seeds: &[MotionVector]) -> Best {
        let mut best: Option<Best> = None;
        for &s in seeds {
            let bound = best.map_or(u64::MAX, |b| b.cost);
            if let Some(c) = ctx.try_cost_upto(s, bound) {
                let better = best.is_none_or(|b| c < b.cost);
                if better {
                    best = Some(Best { mv: s, cost: c });
                }
            }
        }
        best.expect("at least one seed must lie inside the search window")
    }

    /// Evaluates `mv` and keeps it when strictly better. Returns `true`
    /// on improvement.
    ///
    /// The evaluation early-terminates against the running best cost
    /// (decision-equivalent to the exact comparison; see
    /// [`SearchContext::try_cost_upto`]), so hopeless candidates stop
    /// after a few rows.
    pub fn try_candidate(&mut self, ctx: &SearchContext<'_>, mv: MotionVector) -> bool {
        match ctx.try_cost_upto(mv, self.cost) {
            Some(c) if c < self.cost => {
                self.mv = mv;
                self.cost = c;
                true
            }
            _ => false,
        }
    }
}

/// Outcome of one block search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchResult {
    /// The selected motion vector.
    pub mv: MotionVector,
    /// Distortion of the selected vector.
    pub cost: u64,
    /// Distinct candidates evaluated — the complexity measure behind
    /// the speedup rows of Table I.
    pub evaluations: u64,
}

/// A block-matching motion search algorithm.
///
/// Implementations must stay inside `ctx.window()` (guaranteed by
/// [`SearchContext::try_cost`]) and should start from
/// [`SearchContext::predictor`].
pub trait MotionSearch: std::fmt::Debug {
    /// Human-readable algorithm name used in experiment tables.
    fn name(&self) -> &'static str;

    /// Searches one block.
    fn search(&self, ctx: &SearchContext<'_>) -> SearchResult;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planes() -> (Plane, Plane) {
        crate::testutil::shifted_planes(64, 64, 3, 1)
    }

    #[test]
    fn window_properties() {
        assert_eq!(SearchWindow::W8.size(), 8);
        assert_eq!(SearchWindow::W8.radius(), 4);
        assert!(SearchWindow::W8.contains(MotionVector::new(4, -4)));
        assert!(!SearchWindow::W8.contains(MotionVector::new(5, 0)));
        assert_eq!(SearchWindow::W64.shrunk(), Some(SearchWindow::W32));
        assert_eq!(SearchWindow::W8.shrunk(), None);
        assert_eq!(SearchWindow::default(), SearchWindow::W64);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_window_rejected() {
        SearchWindow::from_size(1);
    }

    #[test]
    fn context_counts_distinct_evaluations() {
        let (cur, reference) = planes();
        let ctx = SearchContext::new(
            &cur,
            &reference,
            Rect::new(16, 16, 8, 8),
            SearchWindow::W16,
            CostMetric::Sad,
            MotionVector::ZERO,
        );
        assert_eq!(ctx.evaluations(), 0);
        ctx.try_cost(MotionVector::ZERO);
        ctx.try_cost(MotionVector::ZERO); // cached, not recounted
        ctx.try_cost(MotionVector::new(1, 0));
        assert_eq!(ctx.evaluations(), 2);
    }

    #[test]
    fn out_of_window_candidates_rejected() {
        let (cur, reference) = planes();
        let ctx = SearchContext::new(
            &cur,
            &reference,
            Rect::new(16, 16, 8, 8),
            SearchWindow::W8,
            CostMetric::Sad,
            MotionVector::ZERO,
        );
        assert!(ctx.try_cost(MotionVector::new(9, 0)).is_none());
        assert_eq!(ctx.evaluations(), 0);
    }

    #[test]
    fn predictor_is_clamped() {
        let (cur, reference) = planes();
        let ctx = SearchContext::new(
            &cur,
            &reference,
            Rect::new(16, 16, 8, 8),
            SearchWindow::W8,
            CostMetric::Sad,
            MotionVector::new(100, -100),
        );
        assert_eq!(ctx.predictor(), MotionVector::new(4, -4));
    }

    #[test]
    fn best_tracker_improves_only() {
        let (cur, reference) = planes();
        let ctx = SearchContext::new(
            &cur,
            &reference,
            Rect::new(16, 16, 8, 8),
            SearchWindow::W16,
            CostMetric::Sad,
            MotionVector::ZERO,
        );
        let mut best = Best::seeded(&ctx, &[MotionVector::ZERO]);
        let improved = best.try_candidate(&ctx, MotionVector::new(-3, -1));
        assert!(improved, "true motion candidate must improve on zero");
        assert_eq!(best.mv, MotionVector::new(-3, -1));
        assert_eq!(best.cost, 0);
        assert!(!best.try_candidate(&ctx, MotionVector::new(2, 2)));
    }

    #[test]
    fn bounded_queries_count_once_and_stay_decision_equivalent() {
        let (cur, reference) = planes();
        let make_ctx = || {
            SearchContext::new(
                &cur,
                &reference,
                Rect::new(16, 16, 8, 8),
                SearchWindow::W16,
                CostMetric::Sad,
                MotionVector::ZERO,
            )
        };
        let ctx = make_ctx();
        let exact = ctx.try_cost(MotionVector::new(5, 5)).unwrap();
        assert!(exact > 0);

        let ctx2 = make_ctx();
        // Early-terminated: the result still rejects against the bound.
        let lb = ctx2.try_cost_upto(MotionVector::new(5, 5), 1).unwrap();
        assert!(lb >= 1 && lb <= exact);
        assert_eq!(ctx2.evaluations(), 1);
        // Tighter bound later: still rejected straight from the memo.
        let lb2 = ctx2.try_cost_upto(MotionVector::new(5, 5), 1).unwrap();
        assert!(lb2 >= 1);
        assert_eq!(ctx2.evaluations(), 1, "repeat query must not recount");
        // Unbounded re-query upgrades to the exact cost, still one eval.
        assert_eq!(ctx2.try_cost(MotionVector::new(5, 5)), Some(exact));
        assert_eq!(ctx2.evaluations(), 1);
        // A bound above the cost returns the exact value.
        let ctx3 = make_ctx();
        assert_eq!(
            ctx3.try_cost_upto(MotionVector::new(5, 5), exact + 1),
            Some(exact)
        );
    }

    #[test]
    fn full_search_with_early_termination_matches_unbounded_decisions() {
        let (cur, reference) = planes();
        let block = Rect::new(20, 20, 16, 16);
        let ctx = SearchContext::new(
            &cur,
            &reference,
            block,
            SearchWindow::W16,
            CostMetric::Sad,
            MotionVector::ZERO,
        );
        // Exhaustive sweep through Best (bounded) vs raw exact argmin.
        let mut best = Best::seeded(&ctx, &[MotionVector::ZERO]);
        for dy in -8i16..=8 {
            for dx in -8i16..=8 {
                best.try_candidate(&ctx, MotionVector::new(dx, dy));
            }
        }
        let verify = SearchContext::new(
            &cur,
            &reference,
            block,
            SearchWindow::W16,
            CostMetric::Sad,
            MotionVector::ZERO,
        );
        let mut exact_best = (
            MotionVector::ZERO,
            verify.try_cost(MotionVector::ZERO).unwrap(),
        );
        for dy in -8i16..=8 {
            for dx in -8i16..=8 {
                let mv = MotionVector::new(dx, dy);
                let c = verify.try_cost(mv).unwrap();
                if c < exact_best.1 {
                    exact_best = (mv, c);
                }
            }
        }
        assert_eq!(best.mv, exact_best.0);
        assert_eq!(best.cost, exact_best.1);
        assert_eq!(ctx.evaluations(), verify.evaluations());
    }

    #[test]
    fn narrowed_context_shares_geometry() {
        let (cur, reference) = planes();
        let ctx = SearchContext::new(
            &cur,
            &reference,
            Rect::new(16, 16, 8, 8),
            SearchWindow::W64,
            CostMetric::Sad,
            MotionVector::new(2, 1),
        );
        let narrow = ctx.narrowed(SearchWindow::W8);
        assert_eq!(narrow.block(), ctx.block());
        assert_eq!(narrow.window(), SearchWindow::W8);
        assert_eq!(narrow.evaluations(), 0);
    }
}

//! Search framework: windows, contexts, results and the
//! [`MotionSearch`] trait all algorithms implement.

use crate::cost::{block_cost, CostMetric};
use crate::MotionVector;
use medvt_frame::{Plane, Rect};
use serde::{Deserialize, Serialize};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;

/// A square search window of `size x size` samples centered on the
/// collocated block, i.e. motion components are clamped to
/// `±size/2` (paper §III-C2 uses sizes 64, 32, 16 and 8).
///
/// # Examples
///
/// ```
/// use medvt_motion::SearchWindow;
///
/// assert_eq!(SearchWindow::W64.radius(), 32);
/// assert_eq!(SearchWindow::from_size(16).size(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SearchWindow {
    radius: i16,
}

impl SearchWindow {
    /// 64x64 window (±32) — the paper's maximum for high-motion tiles.
    pub const W64: SearchWindow = SearchWindow { radius: 32 };
    /// 32x32 window (±16).
    pub const W32: SearchWindow = SearchWindow { radius: 16 };
    /// 16x16 window (±8) — low-motion tiles, first GOP frame.
    pub const W16: SearchWindow = SearchWindow { radius: 8 };
    /// 8x8 window (±4) — low-motion tiles, subsequent GOP frames.
    pub const W8: SearchWindow = SearchWindow { radius: 4 };

    /// The window sizes the paper considers, largest first.
    pub const ALL: [SearchWindow; 4] = [
        SearchWindow::W64,
        SearchWindow::W32,
        SearchWindow::W16,
        SearchWindow::W8,
    ];

    /// Creates a window from its side length in samples.
    ///
    /// # Panics
    ///
    /// Panics when `size < 2`.
    pub fn from_size(size: usize) -> Self {
        assert!(size >= 2, "search window must be at least 2 samples");
        Self {
            radius: (size / 2) as i16,
        }
    }

    /// Maximum absolute motion component.
    pub const fn radius(&self) -> i16 {
        self.radius
    }

    /// Side length in samples.
    pub const fn size(&self) -> usize {
        (self.radius as usize) * 2
    }

    /// `true` when `mv` lies inside the window.
    pub fn contains(&self, mv: MotionVector) -> bool {
        mv.linf_norm() <= self.radius
    }

    /// The next smaller paper window, if any (64→32→16→8).
    pub fn shrunk(&self) -> Option<SearchWindow> {
        Self::ALL
            .iter()
            .copied()
            .filter(|w| w.radius < self.radius)
            .max_by_key(|w| w.radius)
    }
}

impl Default for SearchWindow {
    fn default() -> Self {
        SearchWindow::W64
    }
}

/// Everything an algorithm needs to search one block: the two planes,
/// the block geometry, the window, the metric and a starting predictor.
///
/// The context memoizes candidate costs, so the number of *distinct*
/// candidates evaluated — the standard complexity measure for
/// block-matching algorithms — is available as [`SearchContext::evaluations`].
#[derive(Debug)]
pub struct SearchContext<'a> {
    cur: &'a Plane,
    reference: &'a Plane,
    block: Rect,
    window: SearchWindow,
    metric: CostMetric,
    predictor: MotionVector,
    evaluations: Cell<u64>,
    cache: RefCell<HashMap<MotionVector, u64>>,
}

impl<'a> SearchContext<'a> {
    /// Creates a search context.
    ///
    /// # Panics
    ///
    /// Panics when `block` is not fully inside `cur`.
    pub fn new(
        cur: &'a Plane,
        reference: &'a Plane,
        block: Rect,
        window: SearchWindow,
        metric: CostMetric,
        predictor: MotionVector,
    ) -> Self {
        assert!(
            cur.bounds().contains_rect(&block),
            "block {block} outside current plane"
        );
        Self {
            cur,
            reference,
            block,
            window,
            metric,
            predictor,
            evaluations: Cell::new(0),
            cache: RefCell::new(HashMap::new()),
        }
    }

    /// The block being matched.
    pub fn block(&self) -> Rect {
        self.block
    }

    /// The active search window.
    pub fn window(&self) -> SearchWindow {
        self.window
    }

    /// The starting predictor, clamped into the window.
    pub fn predictor(&self) -> MotionVector {
        self.predictor.clamped(self.window.radius())
    }

    /// Distinct candidates evaluated so far.
    pub fn evaluations(&self) -> u64 {
        self.evaluations.get()
    }

    /// A derived context over the same planes/block with a different
    /// window (used by policy algorithms that shrink the window); the
    /// evaluation counter starts at zero.
    pub fn narrowed(&self, window: SearchWindow) -> SearchContext<'a> {
        self.narrowed_with_predictor(window, self.predictor)
    }

    /// Like [`SearchContext::narrowed`] but replacing the predictor,
    /// used when a policy injects an inherited motion direction.
    pub fn narrowed_with_predictor(
        &self,
        window: SearchWindow,
        predictor: MotionVector,
    ) -> SearchContext<'a> {
        SearchContext::new(
            self.cur,
            self.reference,
            self.block,
            window,
            self.metric,
            predictor,
        )
    }

    /// Cost of candidate `mv`, or `None` when it falls outside the
    /// window. Repeated queries of the same candidate are served from
    /// cache and counted once.
    pub fn try_cost(&self, mv: MotionVector) -> Option<u64> {
        if !self.window.contains(mv) {
            return None;
        }
        if let Some(&c) = self.cache.borrow().get(&mv) {
            return Some(c);
        }
        let c = block_cost(self.metric, self.cur, self.reference, &self.block, mv);
        self.cache.borrow_mut().insert(mv, c);
        self.evaluations.set(self.evaluations.get() + 1);
        Some(c)
    }

    /// Builds the search result once an algorithm settles on `best`.
    pub fn result(&self, best: MotionVector, cost: u64) -> SearchResult {
        SearchResult {
            mv: best,
            cost,
            evaluations: self.evaluations(),
        }
    }
}

/// Running best-candidate tracker.
#[derive(Debug, Clone, Copy)]
pub struct Best {
    /// Best motion vector found so far.
    pub mv: MotionVector,
    /// Its cost.
    pub cost: u64,
}

impl Best {
    /// Seeds the tracker from the first valid candidate among `seeds`.
    ///
    /// # Panics
    ///
    /// Panics when no seed lies inside the window (the zero vector is
    /// always inside, so passing it guarantees success).
    pub fn seeded(ctx: &SearchContext<'_>, seeds: &[MotionVector]) -> Best {
        let mut best: Option<Best> = None;
        for &s in seeds {
            if let Some(c) = ctx.try_cost(s) {
                let better = best.is_none_or(|b| c < b.cost);
                if better {
                    best = Some(Best { mv: s, cost: c });
                }
            }
        }
        best.expect("at least one seed must lie inside the search window")
    }

    /// Evaluates `mv` and keeps it when strictly better. Returns `true`
    /// on improvement.
    pub fn try_candidate(&mut self, ctx: &SearchContext<'_>, mv: MotionVector) -> bool {
        match ctx.try_cost(mv) {
            Some(c) if c < self.cost => {
                self.mv = mv;
                self.cost = c;
                true
            }
            _ => false,
        }
    }
}

/// Outcome of one block search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchResult {
    /// The selected motion vector.
    pub mv: MotionVector,
    /// Distortion of the selected vector.
    pub cost: u64,
    /// Distinct candidates evaluated — the complexity measure behind
    /// the speedup rows of Table I.
    pub evaluations: u64,
}

/// A block-matching motion search algorithm.
///
/// Implementations must stay inside `ctx.window()` (guaranteed by
/// [`SearchContext::try_cost`]) and should start from
/// [`SearchContext::predictor`].
pub trait MotionSearch: std::fmt::Debug {
    /// Human-readable algorithm name used in experiment tables.
    fn name(&self) -> &'static str;

    /// Searches one block.
    fn search(&self, ctx: &SearchContext<'_>) -> SearchResult;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planes() -> (Plane, Plane) {
        crate::testutil::shifted_planes(64, 64, 3, 1)
    }

    #[test]
    fn window_properties() {
        assert_eq!(SearchWindow::W8.size(), 8);
        assert_eq!(SearchWindow::W8.radius(), 4);
        assert!(SearchWindow::W8.contains(MotionVector::new(4, -4)));
        assert!(!SearchWindow::W8.contains(MotionVector::new(5, 0)));
        assert_eq!(SearchWindow::W64.shrunk(), Some(SearchWindow::W32));
        assert_eq!(SearchWindow::W8.shrunk(), None);
        assert_eq!(SearchWindow::default(), SearchWindow::W64);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_window_rejected() {
        SearchWindow::from_size(1);
    }

    #[test]
    fn context_counts_distinct_evaluations() {
        let (cur, reference) = planes();
        let ctx = SearchContext::new(
            &cur,
            &reference,
            Rect::new(16, 16, 8, 8),
            SearchWindow::W16,
            CostMetric::Sad,
            MotionVector::ZERO,
        );
        assert_eq!(ctx.evaluations(), 0);
        ctx.try_cost(MotionVector::ZERO);
        ctx.try_cost(MotionVector::ZERO); // cached, not recounted
        ctx.try_cost(MotionVector::new(1, 0));
        assert_eq!(ctx.evaluations(), 2);
    }

    #[test]
    fn out_of_window_candidates_rejected() {
        let (cur, reference) = planes();
        let ctx = SearchContext::new(
            &cur,
            &reference,
            Rect::new(16, 16, 8, 8),
            SearchWindow::W8,
            CostMetric::Sad,
            MotionVector::ZERO,
        );
        assert!(ctx.try_cost(MotionVector::new(9, 0)).is_none());
        assert_eq!(ctx.evaluations(), 0);
    }

    #[test]
    fn predictor_is_clamped() {
        let (cur, reference) = planes();
        let ctx = SearchContext::new(
            &cur,
            &reference,
            Rect::new(16, 16, 8, 8),
            SearchWindow::W8,
            CostMetric::Sad,
            MotionVector::new(100, -100),
        );
        assert_eq!(ctx.predictor(), MotionVector::new(4, -4));
    }

    #[test]
    fn best_tracker_improves_only() {
        let (cur, reference) = planes();
        let ctx = SearchContext::new(
            &cur,
            &reference,
            Rect::new(16, 16, 8, 8),
            SearchWindow::W16,
            CostMetric::Sad,
            MotionVector::ZERO,
        );
        let mut best = Best::seeded(&ctx, &[MotionVector::ZERO]);
        let improved = best.try_candidate(&ctx, MotionVector::new(-3, -1));
        assert!(improved, "true motion candidate must improve on zero");
        assert_eq!(best.mv, MotionVector::new(-3, -1));
        assert_eq!(best.cost, 0);
        assert!(!best.try_candidate(&ctx, MotionVector::new(2, 2)));
    }

    #[test]
    fn narrowed_context_shares_geometry() {
        let (cur, reference) = planes();
        let ctx = SearchContext::new(
            &cur,
            &reference,
            Rect::new(16, 16, 8, 8),
            SearchWindow::W64,
            CostMetric::Sad,
            MotionVector::new(2, 1),
        );
        let narrow = ctx.narrowed(SearchWindow::W8);
        assert_eq!(narrow.block(), ctx.block());
        assert_eq!(narrow.window(), SearchWindow::W8);
        assert_eq!(narrow.evaluations(), 0);
    }
}

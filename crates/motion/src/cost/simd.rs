//! Runtime-dispatched SIMD kernels behind the cost metrics.
//!
//! Every metric in [`super`] funnels its inner loops through this
//! module. Dispatch picks the widest instruction set the host supports
//! — AVX2, then SSE2, then portable scalar — once per process via
//! [`std::arch::is_x86_feature_detected!`], and each `*_upto` call
//! resolves the tier exactly once before its row loop so the hot path
//! never touches thread-locals per row.
//!
//! # The bit-exactness contract
//!
//! Every tier computes the *same integer result* as the scalar code
//! (which is itself differential-tested against
//! [`super::reference`]): SAD/SSD/SATD are sums of integer terms, and
//! integer SIMD addition is exact, so lane order cannot change the
//! total. The SATD kernel performs the 4x4 Hadamard butterfly
//! column-first instead of row-first; since the butterfly is the
//! linear map `H·X·Hᵀ` either way (associativity) and every
//! intermediate fits `i16` (inputs in `[-255, 255]` grow to at most
//! 4080), the 16 transformed values — and therefore their absolute
//! sum — are identical. Proptests in `tests/kernel_differential.rs`
//! enforce equality across every available tier.
//!
//! # Overriding dispatch
//!
//! * `MEDVT_FORCE_SCALAR=1` (any non-empty value other than `0`) pins
//!   the process-wide tier to scalar — CI runs the kernel lanes twice,
//!   once per setting, so the fallback stays covered.
//! * [`with_tier`] pins a tier for the current thread inside a closure
//!   (benchmarks measuring one tier against another, differential
//!   tests sweeping all tiers).

use std::cell::Cell;
use std::sync::OnceLock;

/// Instruction-set tier a kernel call executes under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DispatchTier {
    /// 256-bit AVX2 paths (x86_64 with runtime-detected `avx2`).
    Avx2,
    /// 128-bit SSE2 paths (baseline on x86_64, runtime-detected).
    Sse2,
    /// Portable scalar fallback — the pre-SIMD loops, verbatim.
    Scalar,
}

impl DispatchTier {
    /// All tiers, widest first (the order dispatch probes them).
    pub const ALL: [DispatchTier; 3] =
        [DispatchTier::Avx2, DispatchTier::Sse2, DispatchTier::Scalar];

    /// Stable lowercase name recorded in benchmark artifacts.
    pub const fn name(self) -> &'static str {
        match self {
            DispatchTier::Avx2 => "avx2",
            DispatchTier::Sse2 => "sse2",
            DispatchTier::Scalar => "scalar",
        }
    }

    /// Whether the host can execute this tier.
    pub fn available(self) -> bool {
        match self {
            DispatchTier::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            DispatchTier::Sse2 => std::arch::is_x86_feature_detected!("sse2"),
            #[cfg(target_arch = "x86_64")]
            DispatchTier::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }
}

/// Whether `MEDVT_FORCE_SCALAR` pins dispatch to the scalar tier.
pub fn forced_scalar() -> bool {
    match std::env::var("MEDVT_FORCE_SCALAR") {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    }
}

fn detect() -> DispatchTier {
    if forced_scalar() {
        return DispatchTier::Scalar;
    }
    DispatchTier::ALL
        .into_iter()
        .find(|t| t.available())
        .unwrap_or(DispatchTier::Scalar)
}

static GLOBAL_TIER: OnceLock<DispatchTier> = OnceLock::new();

thread_local! {
    static TIER_OVERRIDE: Cell<Option<DispatchTier>> = const { Cell::new(None) };
}

/// The tier the calling thread dispatches to right now: a
/// [`with_tier`] override when active, otherwise the process-wide
/// detected tier (environment override applied once, then cached).
pub fn tier() -> DispatchTier {
    TIER_OVERRIDE
        .with(|o| o.get())
        .unwrap_or_else(|| *GLOBAL_TIER.get_or_init(detect))
}

/// Runs `f` with dispatch pinned to `t` on the current thread,
/// restoring the previous override afterwards (also on panic, so a
/// failing proptest cannot leak a tier into later cases).
///
/// # Panics
///
/// Panics when the host cannot execute `t`.
pub fn with_tier<T>(t: DispatchTier, f: impl FnOnce() -> T) -> T {
    assert!(
        t.available(),
        "tier {} not available on this host",
        t.name()
    );
    struct Restore(Option<DispatchTier>);
    impl Drop for Restore {
        fn drop(&mut self) {
            TIER_OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _guard = TIER_OVERRIDE.with(|o| {
        let prev = o.get();
        o.set(Some(t));
        Restore(prev)
    });
    f()
}

// ---------------------------------------------------------------------
// Row kernels. Each takes the tier resolved once by the caller.
// ---------------------------------------------------------------------

/// Sum of absolute differences over one row pair (zip semantics:
/// trailing samples of the longer slice are ignored).
#[inline]
pub fn row_sad(t: DispatchTier, cur: &[u8], reference: &[u8]) -> u64 {
    match t {
        DispatchTier::Scalar => row_sad_scalar(cur, reference),
        #[cfg(target_arch = "x86_64")]
        DispatchTier::Sse2 => unsafe { row_sad_sse2(cur, reference) },
        #[cfg(target_arch = "x86_64")]
        DispatchTier::Avx2 => unsafe { row_sad_avx2(cur, reference) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => row_sad_scalar(cur, reference),
    }
}

/// Sum of squared differences over one row pair.
#[inline]
pub fn row_ssd(t: DispatchTier, cur: &[u8], reference: &[u8]) -> u64 {
    match t {
        DispatchTier::Scalar => row_ssd_scalar(cur, reference),
        #[cfg(target_arch = "x86_64")]
        DispatchTier::Sse2 => unsafe { row_ssd_sse2(cur, reference) },
        #[cfg(target_arch = "x86_64")]
        DispatchTier::Avx2 => unsafe { row_ssd_avx2(cur, reference) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => row_ssd_scalar(cur, reference),
    }
}

/// Σ|coeff| of the 4x4 Hadamard transform of the residual between two
/// strided 4x4 blocks (`cur[r * cur_stride + c]` vs
/// `reference[r * ref_stride + c]`). The caller halves the result to
/// keep SATD on the SAD scale, exactly like the scalar path.
#[inline]
pub fn satd4(
    t: DispatchTier,
    cur: &[u8],
    cur_stride: usize,
    reference: &[u8],
    ref_stride: usize,
) -> u64 {
    debug_assert!(cur.len() >= 3 * cur_stride + 4);
    debug_assert!(reference.len() >= 3 * ref_stride + 4);
    match t {
        DispatchTier::Scalar => satd4_scalar(cur, cur_stride, reference, ref_stride),
        #[cfg(target_arch = "x86_64")]
        DispatchTier::Sse2 | DispatchTier::Avx2 => unsafe {
            satd4_sse2(cur, cur_stride, reference, ref_stride)
        },
        #[cfg(not(target_arch = "x86_64"))]
        _ => satd4_scalar(cur, cur_stride, reference, ref_stride),
    }
}

// ---------------------------------------------------------------------
// Scalar tier: the pre-SIMD loops, verbatim.
// ---------------------------------------------------------------------

fn row_sad_scalar(cur: &[u8], reference: &[u8]) -> u64 {
    cur.iter()
        .zip(reference)
        .map(|(&c, &r)| (c as i16 - r as i16).unsigned_abs() as u32)
        .sum::<u32>() as u64
}

fn row_ssd_scalar(cur: &[u8], reference: &[u8]) -> u64 {
    cur.iter()
        .zip(reference)
        .map(|(&c, &r)| {
            let d = (c as i32 - r as i32).unsigned_abs();
            (d * d) as u64
        })
        .sum()
}

fn satd4_scalar(cur: &[u8], cur_stride: usize, reference: &[u8], ref_stride: usize) -> u64 {
    let mut res = [0i32; 16];
    for sy in 0..4 {
        for sx in 0..4 {
            res[sy * 4 + sx] =
                cur[sy * cur_stride + sx] as i32 - reference[sy * ref_stride + sx] as i32;
        }
    }
    super::hadamard4_cost(&res)
}

// ---------------------------------------------------------------------
// x86_64 tiers.
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;

    /// Horizontal sum of the two u64 lanes (SSE2 only — no SSE4.1
    /// `_mm_extract_epi64`).
    #[inline]
    unsafe fn hsum_epi64(v: __m128i) -> u64 {
        let hi = _mm_unpackhi_epi64(v, v);
        _mm_cvtsi128_si64(_mm_add_epi64(v, hi)) as u64
    }

    /// Horizontal sum of four i32 lanes, widened to u64 before adding
    /// so lane totals near `i32::MAX` cannot wrap.
    #[inline]
    unsafe fn hsum_epi32(v: __m128i) -> u64 {
        let mut lanes = [0i32; 4];
        _mm_storeu_si128(lanes.as_mut_ptr() as *mut __m128i, v);
        lanes.iter().map(|&x| x as u32 as u64).sum()
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn row_sad_sse2(cur: &[u8], reference: &[u8]) -> u64 {
        let n = cur.len().min(reference.len());
        let mut acc = _mm_setzero_si128();
        let mut i = 0usize;
        while i + 16 <= n {
            let a = _mm_loadu_si128(cur.as_ptr().add(i) as *const __m128i);
            let b = _mm_loadu_si128(reference.as_ptr().add(i) as *const __m128i);
            acc = _mm_add_epi64(acc, _mm_sad_epu8(a, b));
            i += 16;
        }
        if i + 8 <= n {
            let a = _mm_loadl_epi64(cur.as_ptr().add(i) as *const __m128i);
            let b = _mm_loadl_epi64(reference.as_ptr().add(i) as *const __m128i);
            acc = _mm_add_epi64(acc, _mm_sad_epu8(a, b));
            i += 8;
        }
        let mut total = hsum_epi64(acc);
        while i < n {
            total += (cur[i] as i16 - reference[i] as i16).unsigned_abs() as u64;
            i += 1;
        }
        total
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn row_sad_avx2(cur: &[u8], reference: &[u8]) -> u64 {
        let n = cur.len().min(reference.len());
        let mut acc = _mm256_setzero_si256();
        let mut i = 0usize;
        while i + 32 <= n {
            let a = _mm256_loadu_si256(cur.as_ptr().add(i) as *const __m256i);
            let b = _mm256_loadu_si256(reference.as_ptr().add(i) as *const __m256i);
            acc = _mm256_add_epi64(acc, _mm256_sad_epu8(a, b));
            i += 32;
        }
        let head = hsum_epi64(_mm_add_epi64(
            _mm256_castsi256_si128(acc),
            _mm256_extracti128_si256(acc, 1),
        ));
        // 16/8-byte chunks and the scalar tail via the SSE2 kernel.
        head + row_sad_sse2(&cur[i..n], &reference[i..n])
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn row_ssd_sse2(cur: &[u8], reference: &[u8]) -> u64 {
        let n = cur.len().min(reference.len());
        // Each i32 lane gains at most 2 * 255^2 per 16-sample chunk, so
        // lanes stay far from i32::MAX for any plausible row length.
        debug_assert!(n <= 1 << 15, "row too long for i32 lane accumulation");
        let zero = _mm_setzero_si128();
        let mut acc = _mm_setzero_si128();
        let mut i = 0usize;
        while i + 16 <= n {
            let a = _mm_loadu_si128(cur.as_ptr().add(i) as *const __m128i);
            let b = _mm_loadu_si128(reference.as_ptr().add(i) as *const __m128i);
            let dlo = _mm_sub_epi16(_mm_unpacklo_epi8(a, zero), _mm_unpacklo_epi8(b, zero));
            let dhi = _mm_sub_epi16(_mm_unpackhi_epi8(a, zero), _mm_unpackhi_epi8(b, zero));
            acc = _mm_add_epi32(acc, _mm_madd_epi16(dlo, dlo));
            acc = _mm_add_epi32(acc, _mm_madd_epi16(dhi, dhi));
            i += 16;
        }
        if i + 8 <= n {
            let a = _mm_loadl_epi64(cur.as_ptr().add(i) as *const __m128i);
            let b = _mm_loadl_epi64(reference.as_ptr().add(i) as *const __m128i);
            let d = _mm_sub_epi16(_mm_unpacklo_epi8(a, zero), _mm_unpacklo_epi8(b, zero));
            acc = _mm_add_epi32(acc, _mm_madd_epi16(d, d));
            i += 8;
        }
        let mut total = hsum_epi32(acc);
        while i < n {
            let d = (cur[i] as i32 - reference[i] as i32).unsigned_abs();
            total += (d * d) as u64;
            i += 1;
        }
        total
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn row_ssd_avx2(cur: &[u8], reference: &[u8]) -> u64 {
        let n = cur.len().min(reference.len());
        debug_assert!(n <= 1 << 15, "row too long for i32 lane accumulation");
        let zero = _mm256_setzero_si256();
        let mut acc = _mm256_setzero_si256();
        let mut i = 0usize;
        while i + 32 <= n {
            let a = _mm256_loadu_si256(cur.as_ptr().add(i) as *const __m256i);
            let b = _mm256_loadu_si256(reference.as_ptr().add(i) as *const __m256i);
            // unpack interleaves within 128-bit halves; a sum is
            // order-independent, so lane placement is irrelevant.
            let dlo =
                _mm256_sub_epi16(_mm256_unpacklo_epi8(a, zero), _mm256_unpacklo_epi8(b, zero));
            let dhi =
                _mm256_sub_epi16(_mm256_unpackhi_epi8(a, zero), _mm256_unpackhi_epi8(b, zero));
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(dlo, dlo));
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(dhi, dhi));
            i += 32;
        }
        let head = hsum_epi32(_mm_add_epi32(
            _mm256_castsi256_si128(acc),
            _mm256_extracti128_si256(acc, 1),
        ));
        head + row_ssd_sse2(&cur[i..n], &reference[i..n])
    }

    #[inline]
    fn row4(p: &[u8], off: usize) -> u64 {
        u32::from_le_bytes(p[off..off + 4].try_into().expect("4-byte row")) as u64
    }

    /// 4x4 Hadamard |coeff| sum over packed i16 lanes.
    ///
    /// Layout: two registers hold the residual, rows 0|1 and rows 2|3
    /// (4 lanes each half). The butterfly runs column-first, then the
    /// block is transposed with unpack ops and the butterfly runs
    /// again — `H·(H·X)ᵀ`-style, which by associativity produces the
    /// same 16 values as the scalar row-first order. All intermediates
    /// fit i16: inputs in [-255, 255] grow to at most 4080.
    #[target_feature(enable = "sse2")]
    pub unsafe fn satd4_sse2(
        cur: &[u8],
        cur_stride: usize,
        reference: &[u8],
        ref_stride: usize,
    ) -> u64 {
        let zero = _mm_setzero_si128();
        let d01 = _mm_sub_epi16(
            load_pair_epi16(cur, cur_stride, 0),
            load_pair_epi16(reference, ref_stride, 0),
        );
        let d23 = _mm_sub_epi16(
            load_pair_epi16(cur, cur_stride, 2),
            load_pair_epi16(reference, ref_stride, 2),
        );
        // Vertical butterfly on [row0|row1], [row2|row3].
        let (t0, t1) = butterfly_pairs(d01, d23);
        // Transpose: t0 = [m0|m2], t1 = [m1|m3] → [col0|col1], [col2|col3].
        let u0 = _mm_unpacklo_epi16(t0, t1);
        let u1 = _mm_unpackhi_epi16(t0, t1);
        let v0 = _mm_unpacklo_epi32(u0, u1);
        let v1 = _mm_unpackhi_epi32(u0, u1);
        // Second butterfly along the other axis.
        let (f0, f1) = butterfly_pairs(v0, v1);
        // |x| = max(x, -x); values ≤ 4080 so i16::MIN never appears.
        let a0 = _mm_max_epi16(f0, _mm_sub_epi16(zero, f0));
        let a1 = _mm_max_epi16(f1, _mm_sub_epi16(zero, f1));
        let ones = _mm_set1_epi16(1);
        let sums = _mm_add_epi32(_mm_madd_epi16(a0, ones), _mm_madd_epi16(a1, ones));
        hsum_epi32(sums)
    }

    /// Rows `r` and `r + 1` of a strided 4-wide block, widened to the
    /// eight i16 lanes of one register (row `r` low, row `r + 1` high).
    #[inline]
    unsafe fn load_pair_epi16(p: &[u8], stride: usize, r: usize) -> __m128i {
        let packed = row4(p, r * stride) | (row4(p, (r + 1) * stride) << 32);
        _mm_unpacklo_epi8(_mm_set_epi64x(0, packed as i64), _mm_setzero_si128())
    }

    /// One Hadamard butterfly stage over registers packing elements
    /// 0|1 and 2|3 of the transformed axis in their 64-bit halves:
    /// returns `([b0|b2], [b1|b3])` where
    /// `(b0,b1,b2,b3) = (s0+s1, s0-s1, d0+d1, d0-d1)` with
    /// `s0 = e0+e2, s1 = e1+e3, d0 = e0-e2, d1 = e1-e3` per lane.
    #[inline]
    unsafe fn butterfly_pairs(p01: __m128i, p23: __m128i) -> (__m128i, __m128i) {
        let sum = _mm_add_epi16(p01, p23); // [s0|s1]
        let dif = _mm_sub_epi16(p01, p23); // [d0|d1]
        let x = _mm_unpacklo_epi64(sum, dif); // [s0|d0]
        let y = _mm_unpackhi_epi64(sum, dif); // [s1|d1]
        (_mm_add_epi16(x, y), _mm_sub_epi16(x, y))
    }
}

#[cfg(target_arch = "x86_64")]
use x86::{row_sad_avx2, row_sad_sse2, row_ssd_avx2, row_ssd_sse2, satd4_sse2};

#[cfg(test)]
mod tests {
    use super::*;

    fn bytes(n: usize, seed: u64) -> Vec<u8> {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as u8
            })
            .collect()
    }

    #[test]
    fn scalar_always_available_and_named() {
        assert!(DispatchTier::Scalar.available());
        assert_eq!(DispatchTier::Scalar.name(), "scalar");
        assert_eq!(DispatchTier::Avx2.name(), "avx2");
        assert_eq!(DispatchTier::Sse2.name(), "sse2");
    }

    #[test]
    fn with_tier_overrides_and_restores() {
        let outer = tier();
        with_tier(DispatchTier::Scalar, || {
            assert_eq!(tier(), DispatchTier::Scalar);
        });
        assert_eq!(tier(), outer);
    }

    #[test]
    fn with_tier_restores_on_panic() {
        let outer = tier();
        let result = std::panic::catch_unwind(|| {
            with_tier(DispatchTier::Scalar, || panic!("boom"));
        });
        assert!(result.is_err());
        assert_eq!(tier(), outer);
    }

    #[test]
    fn row_kernels_agree_across_tiers_and_lengths() {
        // Lengths cover every chunk boundary: 32/16/8-byte blocks plus
        // ragged tails of 0..=7.
        for len in 0..=67usize {
            let a = bytes(len, 3);
            let b = bytes(len, 17);
            let want_sad = row_sad_scalar(&a, &b);
            let want_ssd = row_ssd_scalar(&a, &b);
            for t in DispatchTier::ALL {
                if !t.available() {
                    continue;
                }
                assert_eq!(row_sad(t, &a, &b), want_sad, "sad len={len} tier={t:?}");
                assert_eq!(row_ssd(t, &a, &b), want_ssd, "ssd len={len} tier={t:?}");
            }
        }
    }

    #[test]
    fn row_kernels_honor_zip_semantics() {
        let a = bytes(20, 5);
        let b = bytes(33, 9);
        for t in DispatchTier::ALL {
            if !t.available() {
                continue;
            }
            assert_eq!(row_sad(t, &a, &b), row_sad_scalar(&a, &b));
            assert_eq!(row_sad(t, &b, &a), row_sad_scalar(&b, &a));
            assert_eq!(row_ssd(t, &a, &b), row_ssd_scalar(&a, &b));
        }
    }

    #[test]
    fn satd4_agrees_across_tiers_and_strides() {
        for (cs, rs) in [(4usize, 4usize), (7, 5), (24, 24), (31, 16)] {
            let cur = bytes(3 * cs + 4, 11);
            let reference = bytes(3 * rs + 4, 29);
            let want = satd4_scalar(&cur, cs, &reference, rs);
            for t in DispatchTier::ALL {
                if !t.available() {
                    continue;
                }
                assert_eq!(
                    satd4(t, &cur, cs, &reference, rs),
                    want,
                    "tier={t:?} cs={cs} rs={rs}"
                );
            }
        }
    }

    #[test]
    fn satd4_extreme_residuals_fit_i16() {
        // All-255 vs all-0: the largest possible residual magnitudes.
        let cur = vec![255u8; 16];
        let reference = vec![0u8; 16];
        let want = satd4_scalar(&cur, 4, &reference, 4);
        for t in DispatchTier::ALL {
            if !t.available() {
                continue;
            }
            assert_eq!(satd4(t, &cur, 4, &reference, 4), want, "tier={t:?}");
        }
    }
}

//! Diamond search (Zhu & Ma, 1997).

use crate::search::{Best, MotionSearch, SearchContext, SearchResult};
use crate::MotionVector;

/// Large-diamond offsets (LDSP) around the running center.
const LDSP: [(i16, i16); 8] = [
    (0, -2),
    (1, -1),
    (2, 0),
    (1, 1),
    (0, 2),
    (-1, 1),
    (-2, 0),
    (-1, -1),
];

/// Small-diamond offsets (SDSP) for the final refinement.
const SDSP: [(i16, i16); 4] = [(0, -1), (1, 0), (0, 1), (-1, 0)];

/// Diamond search: walk the large diamond until the center is best,
/// then refine once with the small diamond.
#[derive(Debug, Clone, Copy, Default)]
pub struct DiamondSearch;

impl MotionSearch for DiamondSearch {
    fn name(&self) -> &'static str {
        "diamond"
    }

    fn search(&self, ctx: &SearchContext<'_>) -> SearchResult {
        let mut best = Best::seeded(ctx, &[MotionVector::ZERO, ctx.predictor()]);
        // LDSP walk; the window bounds the number of recenters, but keep
        // a hard cap for safety on adversarial content.
        let mut guard = 4 * ctx.window().size() as u32 + 16;
        loop {
            let center = best.mv;
            let mut moved = false;
            for (dx, dy) in LDSP {
                moved |= best.try_candidate(ctx, center + MotionVector::new(dx, dy));
            }
            guard = guard.saturating_sub(1);
            if !moved || guard == 0 {
                break;
            }
        }
        // SDSP refinement.
        let center = best.mv;
        for (dx, dy) in SDSP {
            best.try_candidate(ctx, center + MotionVector::new(dx, dy));
        }
        ctx.result(best.mv, best.cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::full::FullSearch;
    use crate::cost::CostMetric;
    use crate::SearchWindow;
    use medvt_frame::{Plane, Rect};

    fn shifted_planes(dx: isize, dy: isize) -> (Plane, Plane) {
        crate::testutil::shifted_planes(64, 64, dx, dy)
    }

    fn ctx<'a>(cur: &'a Plane, reference: &'a Plane, pred: MotionVector) -> SearchContext<'a> {
        SearchContext::new(
            cur,
            reference,
            Rect::new(24, 24, 16, 16),
            SearchWindow::W16,
            CostMetric::Sad,
            pred,
        )
    }

    #[test]
    fn tracks_small_motion_exactly() {
        let (cur, reference) = shifted_planes(2, 1);
        let c = ctx(&cur, &reference, MotionVector::ZERO);
        let r = DiamondSearch.search(&c);
        assert_eq!(r.mv, MotionVector::new(-2, -1));
        assert_eq!(r.cost, 0);
    }

    #[test]
    fn predictor_accelerates_large_motion() {
        let (cur, reference) = shifted_planes(7, 0);
        let no_pred = ctx(&cur, &reference, MotionVector::ZERO);
        let r1 = DiamondSearch.search(&no_pred);
        let with_pred = ctx(&cur, &reference, MotionVector::new(-7, 0));
        let r2 = DiamondSearch.search(&with_pred);
        assert_eq!(r2.mv, MotionVector::new(-7, 0));
        assert!(r2.evaluations <= r1.evaluations);
    }

    #[test]
    fn cheaper_than_full_search() {
        let (cur, reference) = shifted_planes(3, -2);
        let c1 = ctx(&cur, &reference, MotionVector::ZERO);
        let ds = DiamondSearch.search(&c1);
        let c2 = ctx(&cur, &reference, MotionVector::ZERO);
        let fs = FullSearch.search(&c2);
        assert!(ds.evaluations * 4 < fs.evaluations);
        assert_eq!(ds.cost, fs.cost, "smooth shifted content: DS finds optimum");
    }

    #[test]
    fn result_stays_in_window() {
        let (cur, reference) = shifted_planes(40, 40);
        let c = ctx(&cur, &reference, MotionVector::ZERO);
        let r = DiamondSearch.search(&c);
        assert!(c.window().contains(r.mv));
    }
}

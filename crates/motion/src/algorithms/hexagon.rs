//! Hexagon-based search (Zhu, Lin & Chau, IEEE TCSVT 2002), with the
//! horizontal, vertical and rotating variants the paper builds on.

use crate::search::{Best, MotionSearch, SearchContext, SearchResult};
use crate::MotionVector;
use serde::{Deserialize, Serialize};

/// Horizontally-elongated hexagon pattern.
const HEX_H: [(i16, i16); 6] = [(-2, 0), (2, 0), (-1, -2), (1, -2), (-1, 2), (1, 2)];
/// Vertically-elongated hexagon pattern.
const HEX_V: [(i16, i16); 6] = [(0, -2), (0, 2), (-2, -1), (-2, 1), (2, -1), (2, 1)];
/// Small '+' refinement pattern.
const SHSP: [(i16, i16); 4] = [(0, -1), (1, 0), (0, 1), (-1, 0)];

/// Orientation policy of the hexagon pattern.
///
/// Horizontal and vertical have identical complexity, but each tracks
/// motion along its long axis better (paper §III-C2). `Rotating`
/// alternates orientations and is used on the first frame of a GOP when
/// the motion direction is still unknown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum HexOrientation {
    /// Long axis horizontal.
    #[default]
    Horizontal,
    /// Long axis vertical.
    Vertical,
    /// Alternate horizontal/vertical every iteration.
    Rotating,
}

/// Hexagon-based search with a configurable orientation policy.
#[derive(Debug, Clone, Copy, Default)]
pub struct HexagonSearch {
    /// Pattern orientation policy.
    pub orientation: HexOrientation,
}

impl HexagonSearch {
    /// Creates a search with the given orientation policy.
    pub const fn new(orientation: HexOrientation) -> Self {
        Self { orientation }
    }

    /// Pattern for iteration `iter` under this policy.
    fn pattern(&self, iter: u32) -> &'static [(i16, i16); 6] {
        match self.orientation {
            HexOrientation::Horizontal => &HEX_H,
            HexOrientation::Vertical => &HEX_V,
            HexOrientation::Rotating => {
                if iter.is_multiple_of(2) {
                    &HEX_H
                } else {
                    &HEX_V
                }
            }
        }
    }
}

impl MotionSearch for HexagonSearch {
    fn name(&self) -> &'static str {
        match self.orientation {
            HexOrientation::Horizontal => "hexagon-h",
            HexOrientation::Vertical => "hexagon-v",
            HexOrientation::Rotating => "hexagon-rot",
        }
    }

    fn search(&self, ctx: &SearchContext<'_>) -> SearchResult {
        let mut best = Best::seeded(ctx, &[MotionVector::ZERO, ctx.predictor()]);
        let mut iter = 0u32;
        let guard = 4 * ctx.window().size() as u32 + 16;
        loop {
            let center = best.mv;
            let mut moved = false;
            for &(dx, dy) in self.pattern(iter) {
                moved |= best.try_candidate(ctx, center + MotionVector::new(dx, dy));
            }
            iter += 1;
            if !moved || iter >= guard {
                break;
            }
        }
        // Small-pattern refinement.
        let center = best.mv;
        for (dx, dy) in SHSP {
            best.try_candidate(ctx, center + MotionVector::new(dx, dy));
        }
        ctx.result(best.mv, best.cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostMetric;
    use crate::SearchWindow;
    use medvt_frame::{Plane, Rect};

    fn shifted_planes(dx: isize, dy: isize) -> (Plane, Plane) {
        crate::testutil::shifted_planes(96, 96, dx, dy)
    }

    fn ctx<'a>(cur: &'a Plane, reference: &'a Plane) -> SearchContext<'a> {
        SearchContext::new(
            cur,
            reference,
            Rect::new(40, 40, 16, 16),
            SearchWindow::W32,
            CostMetric::Sad,
            MotionVector::ZERO,
        )
    }

    #[test]
    fn all_orientations_find_moderate_motion() {
        let (cur, reference) = shifted_planes(5, -3);
        for orientation in [
            HexOrientation::Horizontal,
            HexOrientation::Vertical,
            HexOrientation::Rotating,
        ] {
            let c = ctx(&cur, &reference);
            let r = HexagonSearch::new(orientation).search(&c);
            assert_eq!(
                r.mv,
                MotionVector::new(-5, 3),
                "{orientation:?} missed the motion"
            );
            assert_eq!(r.cost, 0);
        }
    }

    #[test]
    fn horizontal_orientation_tracks_horizontal_motion() {
        // Paper §III-C2: both orientations have the same complexity, but
        // each tracks motion along its long axis better.
        let (cur, reference) = shifted_planes(10, 0);
        let ch = ctx(&cur, &reference);
        let h = HexagonSearch::new(HexOrientation::Horizontal).search(&ch);
        let cv = ctx(&cur, &reference);
        let v = HexagonSearch::new(HexOrientation::Vertical).search(&cv);
        assert_eq!(h.mv, MotionVector::new(-10, 0));
        assert!(h.cost <= v.cost, "h={} v={}", h.cost, v.cost);
        // "Same complexity": evaluation counts within 2x of each other.
        assert!(h.evaluations <= 2 * v.evaluations);
        assert!(v.evaluations <= 2 * h.evaluations);
    }

    #[test]
    fn vertical_orientation_tracks_vertical_motion() {
        let (cur, reference) = shifted_planes(0, 10);
        let ch = ctx(&cur, &reference);
        let h = HexagonSearch::new(HexOrientation::Horizontal).search(&ch);
        let cv = ctx(&cur, &reference);
        let v = HexagonSearch::new(HexOrientation::Vertical).search(&cv);
        assert_eq!(v.mv, MotionVector::new(0, -10));
        assert!(v.cost <= h.cost, "v={} h={}", v.cost, h.cost);
        assert!(h.evaluations <= 2 * v.evaluations);
        assert!(v.evaluations <= 2 * h.evaluations);
    }

    #[test]
    fn names_are_distinct() {
        assert_eq!(
            HexagonSearch::new(HexOrientation::Horizontal).name(),
            "hexagon-h"
        );
        assert_eq!(
            HexagonSearch::new(HexOrientation::Vertical).name(),
            "hexagon-v"
        );
        assert_eq!(
            HexagonSearch::new(HexOrientation::Rotating).name(),
            "hexagon-rot"
        );
    }

    #[test]
    fn stays_in_window() {
        let (cur, reference) = shifted_planes(60, 60);
        let c = ctx(&cur, &reference);
        let r = HexagonSearch::default().search(&c);
        assert!(c.window().contains(r.mv));
    }
}

//! Cross-search (Ghanbari, IEEE TCOM 1990).

use crate::search::{Best, MotionSearch, SearchContext, SearchResult};
use crate::MotionVector;

/// Cross-search: a logarithmic search probing an X-shaped (diagonal)
/// pattern whose half-distance halves whenever the center stays best;
/// the final step probes the '+' pattern as well.
///
/// The paper applies it to low-motion tiles of the first frame in a GOP
/// (§III-C2) because it converges in very few evaluations when motion
/// is small.
#[derive(Debug, Clone, Copy, Default)]
pub struct CrossSearch;

impl MotionSearch for CrossSearch {
    fn name(&self) -> &'static str {
        "cross"
    }

    fn search(&self, ctx: &SearchContext<'_>) -> SearchResult {
        let mut best = Best::seeded(ctx, &[MotionVector::ZERO, ctx.predictor()]);
        let mut step = (ctx.window().radius() / 2).max(1);
        while step >= 1 {
            let center = best.mv;
            let mut moved = false;
            // X pattern.
            for (dx, dy) in [(step, step), (step, -step), (-step, step), (-step, -step)] {
                moved |= best.try_candidate(ctx, center + MotionVector::new(dx, dy));
            }
            if step == 1 {
                // Terminal stage: also probe the '+' points.
                let center = best.mv;
                for (dx, dy) in [(1, 0), (-1, 0), (0, 1), (0, -1)] {
                    best.try_candidate(ctx, center + MotionVector::new(dx, dy));
                }
                break;
            }
            if !moved {
                step /= 2;
            }
        }
        ctx.result(best.mv, best.cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::full::FullSearch;
    use crate::cost::CostMetric;
    use crate::SearchWindow;
    use medvt_frame::{Plane, Rect};

    fn shifted_planes(dx: isize, dy: isize) -> (Plane, Plane) {
        crate::testutil::shifted_planes(64, 64, dx, dy)
    }

    fn ctx<'a>(cur: &'a Plane, reference: &'a Plane, window: SearchWindow) -> SearchContext<'a> {
        SearchContext::new(
            cur,
            reference,
            Rect::new(24, 24, 16, 16),
            window,
            CostMetric::Sad,
            MotionVector::ZERO,
        )
    }

    #[test]
    fn finds_small_motion() {
        let (cur, reference) = shifted_planes(1, 1);
        let c = ctx(&cur, &reference, SearchWindow::W16);
        let r = CrossSearch.search(&c);
        assert_eq!(r.mv, MotionVector::new(-1, -1));
        assert_eq!(r.cost, 0);
    }

    #[test]
    fn finds_axis_motion_via_terminal_plus() {
        let (cur, reference) = shifted_planes(1, 0);
        let c = ctx(&cur, &reference, SearchWindow::W16);
        let r = CrossSearch.search(&c);
        assert_eq!(r.mv, MotionVector::new(-1, 0));
        assert_eq!(r.cost, 0);
    }

    #[test]
    fn very_cheap_on_static_content() {
        let (cur, reference) = shifted_planes(0, 0);
        let c = ctx(&cur, &reference, SearchWindow::W16);
        let r = CrossSearch.search(&c);
        assert_eq!(r.mv, MotionVector::ZERO);
        // Center + a handful of X/+ probes per halving only.
        assert!(r.evaluations <= 20, "evals={}", r.evaluations);
        let c2 = ctx(&cur, &reference, SearchWindow::W16);
        let full = FullSearch.search(&c2);
        assert!(r.evaluations * 5 < full.evaluations);
    }

    #[test]
    fn respects_small_window() {
        let (cur, reference) = shifted_planes(6, 6);
        let c = ctx(&cur, &reference, SearchWindow::W8);
        let r = CrossSearch.search(&c);
        assert!(c.window().contains(r.mv));
    }
}

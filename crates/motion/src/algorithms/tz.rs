//! Test Zone (TZ) search — the motion search of the HEVC reference
//! software (HM), simplified. Used as the quality/compression reference
//! of Table I.

use crate::search::{Best, MotionSearch, SearchContext, SearchResult};
use crate::MotionVector;

/// 8-point diamond at stride `s` around the origin.
const fn zone(s: i16) -> [(i16, i16); 8] {
    [
        (0, -s),
        (s, 0),
        (0, s),
        (-s, 0),
        (s / 2, -s / 2),
        (s / 2, s / 2),
        (-s / 2, s / 2),
        (-s / 2, -s / 2),
    ]
}

/// Simplified TZ search: predictor selection, expanding zonal diamond,
/// conditional raster sweep, and zonal refinement — the structure of
/// the HM encoder's `xTZSearch`.
#[derive(Debug, Clone, Copy)]
pub struct TzSearch {
    /// Raster-scan stride; HM's default is 5. The raster stage triggers
    /// when the best zonal distance exceeds this value.
    pub raster_step: i16,
}

impl TzSearch {
    /// TZ search with the HM default raster stride of 5.
    pub const fn new() -> Self {
        Self { raster_step: 5 }
    }

    /// Zonal refinement around `best` with shrinking strides.
    fn refine(&self, ctx: &SearchContext<'_>, best: &mut Best) {
        loop {
            let center = best.mv;
            let mut moved = false;
            let mut s = 2i16;
            while s >= 1 {
                for (dx, dy) in zone(s) {
                    moved |= best.try_candidate(ctx, center + MotionVector::new(dx, dy));
                }
                s /= 2;
            }
            if !moved {
                break;
            }
        }
    }
}

impl Default for TzSearch {
    fn default() -> Self {
        Self::new()
    }
}

impl MotionSearch for TzSearch {
    fn name(&self) -> &'static str {
        "tz"
    }

    fn search(&self, ctx: &SearchContext<'_>) -> SearchResult {
        let mut best = Best::seeded(ctx, &[MotionVector::ZERO, ctx.predictor()]);
        let r = ctx.window().radius();
        // Stage 1: expanding zonal search from the start point.
        let start = best.mv;
        let mut best_dist = 0i16;
        let mut stride = 1i16;
        while stride <= r {
            for (dx, dy) in zone(stride) {
                if best.try_candidate(ctx, start + MotionVector::new(dx, dy)) {
                    best_dist = stride;
                }
            }
            stride *= 2;
        }
        // Stage 2: raster sweep when the zonal stage landed far out,
        // mirroring HM's iRaster heuristic.
        if best_dist > self.raster_step {
            let step = self.raster_step.max(1);
            let mut dy = -r;
            while dy <= r {
                let mut dx = -r;
                while dx <= r {
                    best.try_candidate(ctx, MotionVector::new(dx, dy));
                    dx += step;
                }
                dy += step;
            }
        }
        // Stage 3: zonal refinement to sample accuracy.
        self.refine(ctx, &mut best);
        ctx.result(best.mv, best.cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::full::FullSearch;
    use crate::cost::CostMetric;
    use crate::SearchWindow;
    use medvt_frame::{Plane, Rect};

    fn shifted_planes(dx: isize, dy: isize) -> (Plane, Plane) {
        crate::testutil::shifted_planes(96, 96, dx, dy)
    }

    fn ctx<'a>(cur: &'a Plane, reference: &'a Plane) -> SearchContext<'a> {
        SearchContext::new(
            cur,
            reference,
            Rect::new(40, 40, 16, 16),
            SearchWindow::W32,
            CostMetric::Sad,
            MotionVector::ZERO,
        )
    }

    #[test]
    fn matches_full_search_quality_on_shifted_content() {
        // Displacements within the texture's matching basin; larger
        // jumps need predictors in any zonal search (HM included).
        for (dx, dy) in [(0, 0), (3, 1), (5, 5), (8, -6)] {
            let (cur, reference) = shifted_planes(dx, dy);
            let c1 = ctx(&cur, &reference);
            let tz = TzSearch::new().search(&c1);
            let c2 = ctx(&cur, &reference);
            let full = FullSearch.search(&c2);
            assert_eq!(tz.cost, full.cost, "shift ({dx},{dy})");
        }
    }

    #[test]
    fn cheaper_than_full_search() {
        let (cur, reference) = shifted_planes(8, -6);
        let c1 = ctx(&cur, &reference);
        let tz = TzSearch::new().search(&c1);
        let c2 = ctx(&cur, &reference);
        let full = FullSearch.search(&c2);
        assert!(tz.evaluations < full.evaluations / 2);
    }

    #[test]
    fn raster_stage_rescues_distant_motion() {
        // Motion of 15 samples: the stride-16 zonal ring lands one
        // sample away from the optimum, flagging a large best-distance;
        // that triggers the raster sweep + refinement, which must then
        // settle on the exact optimum.
        let (cur, reference) = shifted_planes(15, 0);
        let c = ctx(&cur, &reference);
        let r = TzSearch::new().search(&c);
        assert_eq!(r.mv, MotionVector::new(-15, 0));
        assert_eq!(r.cost, 0);
    }

    #[test]
    fn more_thorough_than_fast_searches() {
        let (cur, reference) = shifted_planes(5, 5);
        let c = ctx(&cur, &reference);
        let tz = TzSearch::new().search(&c);
        let c2 = ctx(&cur, &reference);
        let hex = crate::algorithms::hexagon::HexagonSearch::default().search(&c2);
        assert!(tz.evaluations >= hex.evaluations);
        assert!(tz.cost <= hex.cost);
    }
}

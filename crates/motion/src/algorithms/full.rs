//! Exhaustive full search — the quality ceiling for block matching.

use crate::search::{Best, MotionSearch, SearchContext, SearchResult};
use crate::MotionVector;

/// Exhaustive search of every integer displacement inside the window.
///
/// Optimal distortion, intolerable runtime (paper §II-B) — kept as the
/// quality reference for tests and ablations.
#[derive(Debug, Clone, Copy, Default)]
pub struct FullSearch;

impl MotionSearch for FullSearch {
    fn name(&self) -> &'static str {
        "full"
    }

    fn search(&self, ctx: &SearchContext<'_>) -> SearchResult {
        let r = ctx.window().radius();
        let mut best = Best::seeded(ctx, &[MotionVector::ZERO]);
        for dy in -r..=r {
            for dx in -r..=r {
                best.try_candidate(ctx, MotionVector::new(dx, dy));
            }
        }
        ctx.result(best.mv, best.cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostMetric;
    use crate::SearchWindow;
    use medvt_frame::{Plane, Rect};

    fn shifted_planes(dx: isize, dy: isize) -> (Plane, Plane) {
        crate::testutil::shifted_planes(48, 48, dx, dy)
    }

    #[test]
    fn finds_exact_displacement() {
        let (cur, reference) = shifted_planes(5, -3);
        let ctx = SearchContext::new(
            &cur,
            &reference,
            Rect::new(16, 16, 16, 16),
            SearchWindow::W16,
            CostMetric::Sad,
            MotionVector::ZERO,
        );
        let r = FullSearch.search(&ctx);
        assert_eq!(r.mv, MotionVector::new(-5, 3));
        assert_eq!(r.cost, 0);
    }

    #[test]
    fn evaluation_count_is_window_area() {
        let (cur, reference) = shifted_planes(0, 0);
        let ctx = SearchContext::new(
            &cur,
            &reference,
            Rect::new(16, 16, 8, 8),
            SearchWindow::W8,
            CostMetric::Sad,
            MotionVector::ZERO,
        );
        let r = FullSearch.search(&ctx);
        // (2*4+1)^2 = 81 candidates.
        assert_eq!(r.evaluations, 81);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(FullSearch.name(), "full");
    }
}

//! The block-matching search algorithms surveyed in paper §II-B plus
//! the references it compares against.

pub(crate) mod cross;
pub(crate) mod diamond;
pub(crate) mod full;
pub(crate) mod hexagon;
pub(crate) mod ots;
pub(crate) mod three_step;
pub(crate) mod tz;

pub use cross::CrossSearch;
pub use diamond::DiamondSearch;
pub use full::FullSearch;
pub use hexagon::{HexOrientation, HexagonSearch};
pub use ots::OneAtATimeSearch;
pub use three_step::ThreeStepSearch;
pub use tz::TzSearch;

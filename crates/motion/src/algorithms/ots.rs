//! One-at-a-time search (Srinivasan & Rao, IEEE TCOM 1985).

use crate::mv::MotionAxis;
use crate::search::{Best, MotionSearch, SearchContext, SearchResult};
use crate::MotionVector;

/// One-at-a-time search: ride one axis while the cost improves, then
/// the perpendicular axis.
///
/// With a known motion direction this is nearly free, which is why the
/// paper uses it for low-motion tiles on non-first GOP frames, seeded
/// with the direction recovered from the first frame (§III-C2).
#[derive(Debug, Clone, Copy)]
pub struct OneAtATimeSearch {
    /// Axis to ride first; [`MotionAxis::None`] falls back to the
    /// classic horizontal-then-vertical order.
    pub first_axis: MotionAxis,
}

impl OneAtATimeSearch {
    /// Classic variant: horizontal axis first.
    pub const fn new() -> Self {
        Self {
            first_axis: MotionAxis::Horizontal,
        }
    }

    /// Variant that rides `axis` first (direction-seeded).
    pub const fn along(axis: MotionAxis) -> Self {
        Self { first_axis: axis }
    }

    /// Walks from `best.mv` along ±`unit` as long as the cost improves.
    fn ride(&self, ctx: &SearchContext<'_>, best: &mut Best, unit: MotionVector) {
        if unit.is_zero() {
            return;
        }
        for dir in [unit, -unit] {
            loop {
                let next = best.mv + dir;
                if !best.try_candidate(ctx, next) {
                    break;
                }
            }
        }
    }
}

impl Default for OneAtATimeSearch {
    fn default() -> Self {
        Self::new()
    }
}

impl MotionSearch for OneAtATimeSearch {
    fn name(&self) -> &'static str {
        "one-at-a-time"
    }

    fn search(&self, ctx: &SearchContext<'_>) -> SearchResult {
        let mut best = Best::seeded(ctx, &[MotionVector::ZERO, ctx.predictor()]);
        let first = match self.first_axis {
            MotionAxis::None => MotionAxis::Horizontal,
            other => other,
        };
        let second = match first {
            MotionAxis::Horizontal => MotionAxis::Vertical,
            _ => MotionAxis::Horizontal,
        };
        self.ride(ctx, &mut best, first.unit());
        self.ride(ctx, &mut best, second.unit());
        // One extra pass on the first axis catches L-shaped walks.
        self.ride(ctx, &mut best, first.unit());
        ctx.result(best.mv, best.cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostMetric;
    use crate::SearchWindow;
    use medvt_frame::{Plane, Rect};

    fn shifted_planes(dx: isize, dy: isize) -> (Plane, Plane) {
        crate::testutil::shifted_planes(64, 64, dx, dy)
    }

    fn ctx<'a>(cur: &'a Plane, reference: &'a Plane, pred: MotionVector) -> SearchContext<'a> {
        SearchContext::new(
            cur,
            reference,
            Rect::new(24, 24, 16, 16),
            SearchWindow::W8,
            CostMetric::Sad,
            pred,
        )
    }

    #[test]
    fn rides_horizontal_motion() {
        let (cur, reference) = shifted_planes(3, 0);
        let c = ctx(&cur, &reference, MotionVector::ZERO);
        let r = OneAtATimeSearch::new().search(&c);
        assert_eq!(r.mv, MotionVector::new(-3, 0));
        assert_eq!(r.cost, 0);
    }

    #[test]
    fn l_shaped_walk_finds_diagonal_motion() {
        let (cur, reference) = shifted_planes(2, 2);
        let c = ctx(&cur, &reference, MotionVector::ZERO);
        let r = OneAtATimeSearch::new().search(&c);
        // Monotone ramps along each axis let OTS descend both.
        assert_eq!(r.mv, MotionVector::new(-2, -2));
    }

    #[test]
    fn axis_seeding_reduces_evaluations_for_vertical_motion() {
        let (cur, reference) = shifted_planes(0, 4);
        let c1 = ctx(&cur, &reference, MotionVector::ZERO);
        let horizontal_first = OneAtATimeSearch::new().search(&c1);
        let c2 = ctx(&cur, &reference, MotionVector::ZERO);
        let vertical_first = OneAtATimeSearch::along(MotionAxis::Vertical).search(&c2);
        assert_eq!(vertical_first.mv, MotionVector::new(0, -4));
        assert!(vertical_first.evaluations <= horizontal_first.evaluations);
    }

    #[test]
    fn handful_of_evaluations_on_static_content() {
        let (cur, reference) = shifted_planes(0, 0);
        let c = ctx(&cur, &reference, MotionVector::ZERO);
        let r = OneAtATimeSearch::new().search(&c);
        assert_eq!(r.mv, MotionVector::ZERO);
        assert!(r.evaluations <= 7, "evals={}", r.evaluations);
    }

    #[test]
    fn none_axis_defaults_to_horizontal() {
        let (cur, reference) = shifted_planes(2, 0);
        let c = ctx(&cur, &reference, MotionVector::ZERO);
        let r = OneAtATimeSearch::along(MotionAxis::None).search(&c);
        assert_eq!(r.mv, MotionVector::new(-2, 0));
    }
}

//! Three-step search (Li et al., TCSVT 1994).

use crate::search::{Best, MotionSearch, SearchContext, SearchResult};
use crate::MotionVector;

/// The classic three-step search: evaluate the 8 neighbours at a
/// coarse step around the running center, recenter on the best, halve
/// the step, repeat until the step reaches one.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreeStepSearch;

impl MotionSearch for ThreeStepSearch {
    fn name(&self) -> &'static str {
        "three-step"
    }

    fn search(&self, ctx: &SearchContext<'_>) -> SearchResult {
        let mut best = Best::seeded(ctx, &[MotionVector::ZERO, ctx.predictor()]);
        // Initial step: half the radius rounded up to a power of two,
        // so W16 (r=8) gives the classic 4-2-1 schedule.
        let mut step = ((ctx.window().radius() / 2).max(1) as u16).next_power_of_two() as i16;
        while step >= 1 {
            let center = best.mv;
            for dy in [-step, 0, step] {
                for dx in [-step, 0, step] {
                    if dx == 0 && dy == 0 {
                        continue;
                    }
                    best.try_candidate(ctx, center + MotionVector::new(dx, dy));
                }
            }
            if step == 1 {
                break;
            }
            step /= 2;
        }
        ctx.result(best.mv, best.cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::full::FullSearch;
    use crate::cost::CostMetric;
    use crate::SearchWindow;
    use medvt_frame::{Plane, Rect};

    fn shifted_planes(dx: isize, dy: isize) -> (Plane, Plane) {
        crate::testutil::shifted_planes(64, 64, dx, dy)
    }

    fn ctx<'a>(cur: &'a Plane, reference: &'a Plane) -> SearchContext<'a> {
        SearchContext::new(
            cur,
            reference,
            Rect::new(24, 24, 16, 16),
            SearchWindow::W16,
            CostMetric::Sad,
            MotionVector::ZERO,
        )
    }

    #[test]
    fn finds_power_of_two_displacement_exactly() {
        let (cur, reference) = shifted_planes(4, -2);
        let c = ctx(&cur, &reference);
        let r = ThreeStepSearch.search(&c);
        assert_eq!(r.mv, MotionVector::new(-4, 2));
        assert_eq!(r.cost, 0);
    }

    #[test]
    fn far_fewer_evaluations_than_full_search() {
        let (cur, reference) = shifted_planes(3, 3);
        let c1 = ctx(&cur, &reference);
        let tss = ThreeStepSearch.search(&c1);
        let c2 = ctx(&cur, &reference);
        let full = FullSearch.search(&c2);
        assert!(tss.evaluations * 3 < full.evaluations);
        // Quality within a reasonable factor of optimum.
        assert!(tss.cost <= full.cost.saturating_mul(3) + 1024);
    }

    #[test]
    fn stays_inside_window() {
        let (cur, reference) = shifted_planes(30, 30);
        let c = ctx(&cur, &reference);
        let r = ThreeStepSearch.search(&c);
        assert!(c.window().contains(r.mv));
    }
}

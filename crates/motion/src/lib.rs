//! # medvt-motion
//!
//! Block-matching motion estimation for the `medvt` reproduction of
//! *"Online Efficient Bio-Medical Video Transcoding on MPSoCs Through
//! Content-Aware Workload Allocation"* (Iranfar et al., DATE 2018).
//!
//! The crate provides:
//!
//! * the classic fast searches the paper surveys (§II-B): three-step,
//!   diamond, cross, one-at-a-time and hexagon-based search, plus
//!   exhaustive [`FullSearch`] and the HM reference [`TzSearch`];
//! * the paper's proposed [`BioMedicalSearch`] policy (§III-C2), which
//!   combines cross / one-at-a-time / rotating- and direction-locked
//!   hexagon search across the frames of a GOP;
//! * [`MotionField`] — per-tile block-grid estimation with dominant
//!   direction extraction, feeding the GOP direction-inheritance.
//!
//! Complexity is measured in *distinct candidates evaluated* (see
//! [`SearchResult::evaluations`]), the standard metric behind the
//! speedup rows of the paper's Table I.
//!
//! # Examples
//!
//! ```
//! use medvt_frame::{Plane, Rect};
//! use medvt_motion::{
//!     CostMetric, DiamondSearch, MotionSearch, MotionVector, SearchContext, SearchWindow,
//! };
//!
//! // Reference: a gradient; current frame: the same content shifted right.
//! let mut reference = Plane::new(64, 64);
//! for row in 0..64 {
//!     for col in 0..64 {
//!         reference.set(col, row, ((col * 7 + row * 3) % 255) as u8);
//!     }
//! }
//! let mut cur = Plane::new(64, 64);
//! for row in 0..64 {
//!     for col in 0..64 {
//!         cur.set(col, row, reference.get_clamped(col as isize - 2, row as isize));
//!     }
//! }
//! let ctx = SearchContext::new(
//!     &cur,
//!     &reference,
//!     Rect::new(24, 24, 16, 16),
//!     SearchWindow::W16,
//!     CostMetric::Sad,
//!     MotionVector::ZERO,
//! );
//! let result = DiamondSearch.search(&ctx);
//! assert_eq!(result.mv, MotionVector::new(-2, 0));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod algorithms;
mod biomed;
pub mod cost;
mod field;
mod mv;
mod search;
#[cfg(test)]
mod testutil;

pub use algorithms::{
    CrossSearch, DiamondSearch, FullSearch, HexOrientation, HexagonSearch, OneAtATimeSearch,
    ThreeStepSearch, TzSearch,
};
pub use biomed::{BioMedicalSearch, GopPhase, MotionLevel};
pub use cost::{
    block_cost, block_cost_upto, sad, sad_upto, satd, satd_upto, ssd, ssd_upto, CostMetric,
};
pub use field::{FieldStats, MotionField};
pub use mv::{MotionAxis, MotionVector};
pub use search::{Best, MotionSearch, SearchContext, SearchResult, SearchWindow};

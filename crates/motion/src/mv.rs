//! Motion vectors and coarse motion directions.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Neg, Sub};

/// An integer-sample motion vector.
///
/// Positive `x` points right, positive `y` points down, matching the
/// raster coordinate system of [`medvt_frame::Plane`].
///
/// # Examples
///
/// ```
/// use medvt_motion::MotionVector;
///
/// let mv = MotionVector::new(3, -4);
/// assert_eq!(mv.sq_norm(), 25);
/// assert_eq!(mv + MotionVector::new(1, 1), MotionVector::new(4, -3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct MotionVector {
    /// Horizontal displacement in samples.
    pub x: i16,
    /// Vertical displacement in samples.
    pub y: i16,
}

impl MotionVector {
    /// The zero (no-motion) vector.
    pub const ZERO: MotionVector = MotionVector { x: 0, y: 0 };

    /// Creates a motion vector.
    pub const fn new(x: i16, y: i16) -> Self {
        Self { x, y }
    }

    /// Squared Euclidean norm.
    pub fn sq_norm(&self) -> i32 {
        let x = self.x as i32;
        let y = self.y as i32;
        x * x + y * y
    }

    /// Chebyshev (max-axis) norm — the norm search windows clamp.
    pub fn linf_norm(&self) -> i16 {
        self.x.abs().max(self.y.abs())
    }

    /// `true` when both components are zero.
    pub fn is_zero(&self) -> bool {
        *self == Self::ZERO
    }

    /// Clamps each component into `[-limit, limit]`.
    pub fn clamped(&self, limit: i16) -> MotionVector {
        MotionVector::new(self.x.clamp(-limit, limit), self.y.clamp(-limit, limit))
    }

    /// The coarse axis of this vector, used to pick the hexagon-search
    /// orientation (paper §III-C2: horizontal hexagon when the motion is
    /// more horizontal).
    pub fn dominant_axis(&self) -> MotionAxis {
        if self.is_zero() {
            MotionAxis::None
        } else if self.x.abs() >= self.y.abs() {
            MotionAxis::Horizontal
        } else {
            MotionAxis::Vertical
        }
    }
}

impl Add for MotionVector {
    type Output = MotionVector;

    fn add(self, rhs: MotionVector) -> MotionVector {
        MotionVector::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for MotionVector {
    type Output = MotionVector;

    fn sub(self, rhs: MotionVector) -> MotionVector {
        MotionVector::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Neg for MotionVector {
    type Output = MotionVector;

    fn neg(self) -> MotionVector {
        MotionVector::new(-self.x, -self.y)
    }
}

impl fmt::Display for MotionVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// Coarse motion axis used for direction-locked searches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MotionAxis {
    /// No preferred axis (zero motion).
    None,
    /// Motion is predominantly horizontal.
    Horizontal,
    /// Motion is predominantly vertical.
    Vertical,
}

impl MotionAxis {
    /// Unit step along the axis (zero for [`MotionAxis::None`]).
    pub const fn unit(&self) -> MotionVector {
        match self {
            MotionAxis::None => MotionVector::ZERO,
            MotionAxis::Horizontal => MotionVector::new(1, 0),
            MotionAxis::Vertical => MotionVector::new(0, 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = MotionVector::new(2, -3);
        let b = MotionVector::new(-1, 5);
        assert_eq!(a + b, MotionVector::new(1, 2));
        assert_eq!(a - b, MotionVector::new(3, -8));
        assert_eq!(-a, MotionVector::new(-2, 3));
    }

    #[test]
    fn norms() {
        let mv = MotionVector::new(-3, 4);
        assert_eq!(mv.sq_norm(), 25);
        assert_eq!(mv.linf_norm(), 4);
        assert!(MotionVector::ZERO.is_zero());
        assert!(!mv.is_zero());
    }

    #[test]
    fn clamping() {
        let mv = MotionVector::new(100, -100);
        assert_eq!(mv.clamped(8), MotionVector::new(8, -8));
        assert_eq!(MotionVector::new(3, 2).clamped(8), MotionVector::new(3, 2));
    }

    #[test]
    fn dominant_axis_rules() {
        assert_eq!(MotionVector::ZERO.dominant_axis(), MotionAxis::None);
        assert_eq!(
            MotionVector::new(5, 3).dominant_axis(),
            MotionAxis::Horizontal
        );
        assert_eq!(
            MotionVector::new(2, -7).dominant_axis(),
            MotionAxis::Vertical
        );
        // Ties go horizontal, matching the paper's preference order.
        assert_eq!(
            MotionVector::new(4, 4).dominant_axis(),
            MotionAxis::Horizontal
        );
    }

    #[test]
    fn axis_units() {
        assert_eq!(MotionAxis::Horizontal.unit(), MotionVector::new(1, 0));
        assert_eq!(MotionAxis::Vertical.unit(), MotionVector::new(0, 1));
        assert_eq!(MotionAxis::None.unit(), MotionVector::ZERO);
    }

    #[test]
    fn display_format() {
        assert_eq!(MotionVector::new(-2, 7).to_string(), "(-2,7)");
    }
}

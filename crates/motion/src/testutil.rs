//! Shared fixtures for the motion-search unit tests.
//!
//! The texture must be (a) smooth at the block-matching scale, so
//! gradient-descent searches (diamond, hexagon, OTS, cross) can ride
//! the SAD surface into the basin of the true displacement, and (b)
//! non-periodic and non-linear, so the global optimum is unique —
//! linear ramps and single sinusoids alias under many displacements.
//! Low-frequency fractal value noise satisfies both, and resembles the
//! smooth anatomy content of the target videos.

use medvt_frame::synth::ValueNoise;
use medvt_frame::Plane;

/// A smooth, non-periodic test texture with ~20-sample features.
pub(crate) fn smooth_texture(width: usize, height: usize) -> Plane {
    let noise = ValueNoise::new(0xBEEF);
    let mut p = Plane::new(width, height);
    for row in 0..height {
        for col in 0..width {
            let v = 30.0 + 200.0 * noise.fractal(col as f64, row as f64, 1.0 / 20.0, 2);
            p.set(col, row, v.clamp(0.0, 255.0) as u8);
        }
    }
    p
}

/// Returns `(cur, reference)` where the current plane shows the
/// reference content moved by `(dx, dy)` samples (content moves right
/// for positive `dx`), so the true motion vector is `(-dx, -dy)`.
pub(crate) fn shifted_planes(width: usize, height: usize, dx: isize, dy: isize) -> (Plane, Plane) {
    let reference = smooth_texture(width, height);
    let mut cur = Plane::new(width, height);
    for row in 0..height {
        for col in 0..width {
            cur.set(
                col,
                row,
                reference.get_clamped(col as isize - dx, row as isize - dy),
            );
        }
    }
    (cur, reference)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::sad;
    use crate::MotionVector;
    use medvt_frame::Rect;

    #[test]
    fn true_displacement_has_zero_sad_and_is_unique_nearby() {
        let (cur, reference) = shifted_planes(96, 96, 4, -3);
        let block = Rect::new(40, 40, 16, 16);
        let truth = MotionVector::new(-4, 3);
        assert_eq!(sad(&cur, &reference, &block, truth), 0);
        for ddx in -6..=6i16 {
            for ddy in -6..=6i16 {
                if ddx == 0 && ddy == 0 {
                    continue;
                }
                let mv = truth + MotionVector::new(ddx, ddy);
                assert!(
                    sad(&cur, &reference, &block, mv) > 0,
                    "aliased optimum at {mv}"
                );
            }
        }
    }

    #[test]
    fn sad_surface_is_basin_shaped_along_axes() {
        let (cur, reference) = shifted_planes(96, 96, 6, 0);
        let block = Rect::new(40, 40, 16, 16);
        // Walking away from the optimum along x monotonically raises SAD
        // for the first several steps (what descent searches rely on).
        let mut prev = 0;
        for step in 0..7i16 {
            let c = sad(&cur, &reference, &block, MotionVector::new(-6 + step, 0));
            assert!(c >= prev, "non-monotone at step {step}");
            prev = c;
        }
    }
}

//! The paper's proposed fast motion-estimation policy for bio-medical
//! video (§III-C2).
//!
//! The policy exploits two content facts: (1) motion inside a tile is
//! either low or high and globally coherent, and (2) the direction
//! found on the first frame of a GOP stays valid for the whole GOP. It
//! therefore picks, per tile:
//!
//! | motion | GOP-first frame              | remaining GOP frames                  |
//! |--------|------------------------------|---------------------------------------|
//! | low    | cross-search, 16x16 window   | one-at-a-time along the direction, 8x8 |
//! | high   | rotating hexagon, max window | direction-locked hexagon, shrunk window |

use crate::algorithms::{CrossSearch, HexOrientation, HexagonSearch, OneAtATimeSearch};
use crate::mv::MotionAxis;
use crate::search::{MotionSearch, SearchContext, SearchResult, SearchWindow};
use crate::MotionVector;
use serde::{Deserialize, Serialize};

/// Coarse per-tile motion level, the output of the paper's Eq. (3)
/// motion probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum MotionLevel {
    /// Below the motion threshold `M_th`.
    #[default]
    Low,
    /// At or above the motion threshold.
    High,
}

/// Position of the current frame within its GOP, which decides whether
/// the direction is being *discovered* or *reused*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GopPhase {
    /// First frame of the GOP: direction unknown, use exploratory search.
    First,
    /// Any later frame: ride the direction found on the first frame.
    Subsequent {
        /// The tile's representative motion vector from the GOP-first
        /// frame.
        direction: MotionVector,
    },
}

/// The proposed combined search (paper §III-C2).
///
/// # Examples
///
/// ```
/// use medvt_motion::{BioMedicalSearch, GopPhase, MotionLevel, MotionSearch};
///
/// let first = BioMedicalSearch::new(MotionLevel::Low, GopPhase::First);
/// assert_eq!(first.name(), "biomed");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BioMedicalSearch {
    /// Tile motion level from the content analyzer.
    pub level: MotionLevel,
    /// GOP phase and inherited direction.
    pub phase: GopPhase,
}

impl BioMedicalSearch {
    /// Creates the policy for a tile.
    pub const fn new(level: MotionLevel, phase: GopPhase) -> Self {
        Self { level, phase }
    }

    /// Convenience constructor for the first frame of a GOP.
    pub const fn first_frame(level: MotionLevel) -> Self {
        Self::new(level, GopPhase::First)
    }

    /// Convenience constructor for later GOP frames with the direction
    /// recovered from the first frame.
    pub const fn subsequent(level: MotionLevel, direction: MotionVector) -> Self {
        Self::new(level, GopPhase::Subsequent { direction })
    }

    /// The window the policy actually searches, given the maximum
    /// window the encoder allows for this tile.
    pub fn effective_window(&self, max_window: SearchWindow) -> SearchWindow {
        match (self.level, self.phase) {
            // Low motion: 16x16 suffices on the GOP-first frame…
            (MotionLevel::Low, GopPhase::First) => min_window(max_window, SearchWindow::W16),
            // …and 8x8 afterwards (paper: "further decreased to 8x8").
            (MotionLevel::Low, GopPhase::Subsequent { .. }) => {
                min_window(max_window, SearchWindow::W8)
            }
            // High motion: the maximum allowable window on the first
            // frame, a shrunk one afterwards.
            (MotionLevel::High, GopPhase::First) => max_window,
            (MotionLevel::High, GopPhase::Subsequent { .. }) => {
                max_window.shrunk().unwrap_or(max_window)
            }
        }
    }
}

impl MotionSearch for BioMedicalSearch {
    fn name(&self) -> &'static str {
        "biomed"
    }

    fn search(&self, ctx: &SearchContext<'_>) -> SearchResult {
        let window = self.effective_window(ctx.window());
        // On subsequent GOP frames the paper starts estimation "in the
        // direction of the motion vector obtained from the corresponding
        // tile of the first frame": when the caller supplies no better
        // predictor, the inherited direction seeds the search.
        let narrowed = match self.phase {
            GopPhase::Subsequent { direction } if ctx.predictor().is_zero() => {
                ctx.narrowed_with_predictor(window, direction)
            }
            _ => ctx.narrowed(window),
        };
        match (self.level, self.phase) {
            (MotionLevel::Low, GopPhase::First) => CrossSearch.search(&narrowed),
            (MotionLevel::Low, GopPhase::Subsequent { direction }) => {
                OneAtATimeSearch::along(direction.dominant_axis()).search(&narrowed)
            }
            (MotionLevel::High, GopPhase::First) => {
                HexagonSearch::new(HexOrientation::Rotating).search(&narrowed)
            }
            (MotionLevel::High, GopPhase::Subsequent { direction }) => {
                let orientation = match direction.dominant_axis() {
                    MotionAxis::Vertical => HexOrientation::Vertical,
                    // Zero or horizontal direction → horizontal hexagon,
                    // matching the paper's tie-break.
                    _ => HexOrientation::Horizontal,
                };
                HexagonSearch::new(orientation).search(&narrowed)
            }
        }
    }
}

/// The smaller of two windows.
fn min_window(a: SearchWindow, b: SearchWindow) -> SearchWindow {
    if a.radius() <= b.radius() {
        a
    } else {
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostMetric;
    use medvt_frame::{Plane, Rect};

    fn shifted_planes(dx: isize, dy: isize) -> (Plane, Plane) {
        crate::testutil::shifted_planes(96, 96, dx, dy)
    }

    fn ctx<'a>(cur: &'a Plane, reference: &'a Plane, window: SearchWindow) -> SearchContext<'a> {
        SearchContext::new(
            cur,
            reference,
            Rect::new(40, 40, 16, 16),
            window,
            CostMetric::Sad,
            MotionVector::ZERO,
        )
    }

    #[test]
    fn window_policy_matches_paper() {
        let p = BioMedicalSearch::first_frame(MotionLevel::Low);
        assert_eq!(p.effective_window(SearchWindow::W64), SearchWindow::W16);
        let p = BioMedicalSearch::subsequent(MotionLevel::Low, MotionVector::new(1, 0));
        assert_eq!(p.effective_window(SearchWindow::W64), SearchWindow::W8);
        let p = BioMedicalSearch::first_frame(MotionLevel::High);
        assert_eq!(p.effective_window(SearchWindow::W64), SearchWindow::W64);
        let p = BioMedicalSearch::subsequent(MotionLevel::High, MotionVector::new(1, 0));
        assert_eq!(p.effective_window(SearchWindow::W64), SearchWindow::W32);
        // Never grows beyond the allowed maximum.
        let p = BioMedicalSearch::first_frame(MotionLevel::Low);
        assert_eq!(p.effective_window(SearchWindow::W8), SearchWindow::W8);
    }

    #[test]
    fn low_motion_first_frame_finds_small_motion() {
        let (cur, reference) = shifted_planes(1, 1);
        let c = ctx(&cur, &reference, SearchWindow::W64);
        let r = BioMedicalSearch::first_frame(MotionLevel::Low).search(&c);
        assert_eq!(r.mv, MotionVector::new(-1, -1));
        assert!(r.evaluations < 30);
    }

    #[test]
    fn low_motion_subsequent_rides_direction_cheaply() {
        let (cur, reference) = shifted_planes(2, 0);
        let c = ctx(&cur, &reference, SearchWindow::W64);
        let r = BioMedicalSearch::subsequent(MotionLevel::Low, MotionVector::new(-2, 0)).search(&c);
        assert_eq!(r.mv, MotionVector::new(-2, 0));
        assert!(r.evaluations <= 12, "evals={}", r.evaluations);
    }

    #[test]
    fn high_motion_first_frame_explores_widely() {
        let (cur, reference) = shifted_planes(7, -4);
        let c = ctx(&cur, &reference, SearchWindow::W64);
        let r = BioMedicalSearch::first_frame(MotionLevel::High).search(&c);
        assert_eq!(r.mv, MotionVector::new(-7, 4));
        assert_eq!(r.cost, 0);
    }

    #[test]
    fn inherited_direction_rescues_large_motion() {
        // A displacement outside the cold-start matching basin (but
        // inside the shrunk subsequent-frame window) is found only when
        // the direction inherited from the GOP-first frame seeds the
        // search into the right basin.
        let (cur, reference) = shifted_planes(14, -7);
        let c = ctx(&cur, &reference, SearchWindow::W64);
        let cold = BioMedicalSearch::first_frame(MotionLevel::High).search(&c);
        let c2 = ctx(&cur, &reference, SearchWindow::W64);
        let seeded =
            BioMedicalSearch::subsequent(MotionLevel::High, MotionVector::new(-14, 7)).search(&c2);
        assert_eq!(seeded.mv, MotionVector::new(-14, 7));
        assert_eq!(seeded.cost, 0);
        assert!(seeded.cost <= cold.cost);
    }

    #[test]
    fn high_motion_subsequent_locks_orientation() {
        let (cur, reference) = shifted_planes(0, 12);
        let c = ctx(&cur, &reference, SearchWindow::W64);
        let r =
            BioMedicalSearch::subsequent(MotionLevel::High, MotionVector::new(0, -12)).search(&c);
        assert_eq!(r.mv, MotionVector::new(0, -12));
    }

    #[test]
    fn subsequent_frames_cost_less_than_first() {
        let (cur, reference) = shifted_planes(6, 0);
        let c1 = ctx(&cur, &reference, SearchWindow::W64);
        let first = BioMedicalSearch::first_frame(MotionLevel::High).search(&c1);
        let c2 = ctx(&cur, &reference, SearchWindow::W64);
        let later = BioMedicalSearch::subsequent(MotionLevel::High, first.mv).search(&c2);
        assert!(later.evaluations <= first.evaluations);
        assert_eq!(later.mv, first.mv);
    }

    #[test]
    fn cheaper_than_plain_hexagon_on_low_motion_tiles() {
        let (cur, reference) = shifted_planes(1, 0);
        let c1 = ctx(&cur, &reference, SearchWindow::W64);
        let biomed =
            BioMedicalSearch::subsequent(MotionLevel::Low, MotionVector::new(-1, 0)).search(&c1);
        let c2 = ctx(&cur, &reference, SearchWindow::W64);
        let hex = HexagonSearch::default().search(&c2);
        assert!(biomed.evaluations < hex.evaluations);
        assert!(biomed.cost <= hex.cost);
    }
}

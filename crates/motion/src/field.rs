//! Per-tile motion fields: block-grid motion estimation results and the
//! dominant-direction extraction the paper's GOP policy relies on.

use crate::cost::CostMetric;
use crate::search::{MotionSearch, SearchContext, SearchWindow};
use crate::MotionVector;
use medvt_frame::{Plane, Rect};
use serde::{Deserialize, Serialize};

/// Aggregate statistics of estimating one tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FieldStats {
    /// Total distinct candidates evaluated over all blocks — the
    /// motion-estimation complexity of the tile.
    pub evaluations: u64,
    /// Total distortion of the selected vectors.
    pub total_cost: u64,
    /// Number of blocks estimated.
    pub blocks: u32,
}

/// The motion vectors of every block in one tile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MotionField {
    tile: Rect,
    block_size: usize,
    cols: usize,
    rows: usize,
    mvs: Vec<MotionVector>,
    costs: Vec<u64>,
}

impl MotionField {
    /// Estimates motion for every `block_size` block of `tile` in `cur`
    /// against `reference` using `algo`.
    ///
    /// Blocks at the tile's right/bottom edge shrink to fit. Each block
    /// is seeded with the vector of its left neighbour (fallback: the
    /// block above, then zero) — the spatial-predictor chain real
    /// encoders use.
    ///
    /// # Panics
    ///
    /// Panics when `tile` is empty, not inside `cur`, or `block_size`
    /// is zero.
    pub fn estimate(
        cur: &Plane,
        reference: &Plane,
        tile: Rect,
        block_size: usize,
        algo: &dyn MotionSearch,
        window: SearchWindow,
        metric: CostMetric,
    ) -> (MotionField, FieldStats) {
        assert!(block_size > 0, "block size must be non-zero");
        assert!(!tile.is_empty(), "cannot estimate an empty tile");
        assert!(
            cur.bounds().contains_rect(&tile),
            "tile {tile} outside plane"
        );
        let cols = tile.w.div_ceil(block_size);
        let rows = tile.h.div_ceil(block_size);
        let mut mvs = Vec::with_capacity(cols * rows);
        let mut costs = Vec::with_capacity(cols * rows);
        let mut stats = FieldStats::default();
        for br in 0..rows {
            for bc in 0..cols {
                let x = tile.x + bc * block_size;
                let y = tile.y + br * block_size;
                let w = block_size.min(tile.right() - x);
                let h = block_size.min(tile.bottom() - y);
                let predictor = if bc > 0 {
                    mvs[br * cols + bc - 1]
                } else if br > 0 {
                    mvs[(br - 1) * cols]
                } else {
                    MotionVector::ZERO
                };
                let ctx = SearchContext::new(
                    cur,
                    reference,
                    Rect::new(x, y, w, h),
                    window,
                    metric,
                    predictor,
                );
                let r = algo.search(&ctx);
                stats.evaluations += r.evaluations;
                stats.total_cost += r.cost;
                stats.blocks += 1;
                mvs.push(r.mv);
                costs.push(r.cost);
            }
        }
        (
            MotionField {
                tile,
                block_size,
                cols,
                rows,
                mvs,
                costs,
            },
            stats,
        )
    }

    /// The tile this field covers.
    pub fn tile(&self) -> Rect {
        self.tile
    }

    /// Block grid dimensions `(cols, rows)`.
    pub fn grid(&self) -> (usize, usize) {
        (self.cols, self.rows)
    }

    /// The motion vector of block `(col, row)`.
    ///
    /// # Panics
    ///
    /// Panics when the block coordinate is outside the grid.
    pub fn mv(&self, col: usize, row: usize) -> MotionVector {
        assert!(col < self.cols && row < self.rows, "block outside grid");
        self.mvs[row * self.cols + col]
    }

    /// All vectors in raster order.
    pub fn vectors(&self) -> &[MotionVector] {
        &self.mvs
    }

    /// Distortions of the selected vectors, raster order.
    pub fn costs(&self) -> &[u64] {
        &self.costs
    }

    /// The component-wise median motion vector — robust representative
    /// of the tile's global motion, inherited by later GOP frames.
    pub fn dominant_mv(&self) -> MotionVector {
        if self.mvs.is_empty() {
            return MotionVector::ZERO;
        }
        let mut xs: Vec<i16> = self.mvs.iter().map(|m| m.x).collect();
        let mut ys: Vec<i16> = self.mvs.iter().map(|m| m.y).collect();
        xs.sort_unstable();
        ys.sort_unstable();
        MotionVector::new(xs[xs.len() / 2], ys[ys.len() / 2])
    }

    /// Fraction of blocks whose vector agrees in sign with the dominant
    /// vector on both axes — a coherence measure of the "whole tile
    /// moves together" premise.
    pub fn coherence(&self) -> f64 {
        if self.mvs.is_empty() {
            return 1.0;
        }
        let dom = self.dominant_mv();
        let agree = self
            .mvs
            .iter()
            .filter(|m| m.x.signum() == dom.x.signum() && m.y.signum() == dom.y.signum())
            .count();
        agree as f64 / self.mvs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::DiamondSearch;

    fn shifted_planes(dx: isize, dy: isize) -> (Plane, Plane) {
        crate::testutil::shifted_planes(96, 96, dx, dy)
    }

    #[test]
    fn uniform_shift_yields_coherent_field() {
        let (cur, reference) = shifted_planes(3, -2);
        let tile = Rect::new(16, 16, 64, 64);
        let (field, stats) = MotionField::estimate(
            &cur,
            &reference,
            tile,
            16,
            &DiamondSearch,
            SearchWindow::W16,
            CostMetric::Sad,
        );
        assert_eq!(field.grid(), (4, 4));
        assert_eq!(stats.blocks, 16);
        assert_eq!(field.dominant_mv(), MotionVector::new(-3, 2));
        assert!(field.coherence() > 0.9);
        assert_eq!(stats.total_cost, 0);
        assert!(stats.evaluations > 0);
    }

    #[test]
    fn ragged_tiles_shrink_edge_blocks() {
        let (cur, reference) = shifted_planes(0, 0);
        let tile = Rect::new(0, 0, 40, 24);
        let (field, stats) = MotionField::estimate(
            &cur,
            &reference,
            tile,
            16,
            &DiamondSearch,
            SearchWindow::W8,
            CostMetric::Sad,
        );
        // 40/16 → 3 cols, 24/16 → 2 rows.
        assert_eq!(field.grid(), (3, 2));
        assert_eq!(stats.blocks, 6);
        assert_eq!(field.vectors().len(), 6);
    }

    #[test]
    fn static_content_has_zero_dominant_mv() {
        let (cur, reference) = shifted_planes(0, 0);
        let tile = Rect::new(16, 16, 32, 32);
        let (field, _) = MotionField::estimate(
            &cur,
            &reference,
            tile,
            16,
            &DiamondSearch,
            SearchWindow::W16,
            CostMetric::Sad,
        );
        assert_eq!(field.dominant_mv(), MotionVector::ZERO);
        assert_eq!(field.costs().iter().sum::<u64>(), 0);
    }

    #[test]
    fn mv_accessor_checks_bounds() {
        let (cur, reference) = shifted_planes(1, 0);
        let (field, _) = MotionField::estimate(
            &cur,
            &reference,
            Rect::new(0, 0, 32, 32),
            16,
            &DiamondSearch,
            SearchWindow::W8,
            CostMetric::Sad,
        );
        let _ = field.mv(1, 1);
        let result = std::panic::catch_unwind(|| field.mv(2, 0));
        assert!(result.is_err());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_tile_rejected() {
        let (cur, reference) = shifted_planes(0, 0);
        MotionField::estimate(
            &cur,
            &reference,
            Rect::new(0, 0, 0, 0),
            16,
            &DiamondSearch,
            SearchWindow::W8,
            CostMetric::Sad,
        );
    }
}

//! Block-matching distortion metrics: SAD, SSD and SATD.
//!
//! All metrics compare a block of the *current* plane against a
//! motion-shifted block of the *reference* plane. Reference access uses
//! edge clamping, matching unrestricted motion vectors over padded
//! reference pictures in HEVC.

use crate::MotionVector;
use medvt_frame::{Plane, Rect};
use serde::{Deserialize, Serialize};

/// Distortion metric selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum CostMetric {
    /// Sum of absolute differences — the classic ME metric.
    #[default]
    Sad,
    /// Sum of squared differences.
    Ssd,
    /// Sum of absolute Hadamard-transformed differences (4x4 blocks),
    /// a closer proxy for post-transform bit cost.
    Satd,
}

/// Sum of absolute differences between `block` of `cur` and the block
/// displaced by `mv` in `reference`.
///
/// # Panics
///
/// Panics when `block` is not fully inside `cur`.
pub fn sad(cur: &Plane, reference: &Plane, block: &Rect, mv: MotionVector) -> u64 {
    assert!(
        cur.bounds().contains_rect(block),
        "block {block} outside current plane"
    );
    let mut acc = 0u64;
    for row in block.y..block.bottom() {
        let cur_row = &cur.row(row)[block.x..block.right()];
        let ref_y = row as isize + mv.y as isize;
        for (i, &c) in cur_row.iter().enumerate() {
            let ref_x = (block.x + i) as isize + mv.x as isize;
            let r = reference.get_clamped(ref_x, ref_y);
            acc += (c as i16 - r as i16).unsigned_abs() as u64;
        }
    }
    acc
}

/// Sum of squared differences (same access pattern as [`sad`]).
///
/// # Panics
///
/// Panics when `block` is not fully inside `cur`.
pub fn ssd(cur: &Plane, reference: &Plane, block: &Rect, mv: MotionVector) -> u64 {
    assert!(
        cur.bounds().contains_rect(block),
        "block {block} outside current plane"
    );
    let mut acc = 0u64;
    for row in block.y..block.bottom() {
        let cur_row = &cur.row(row)[block.x..block.right()];
        let ref_y = row as isize + mv.y as isize;
        for (i, &c) in cur_row.iter().enumerate() {
            let ref_x = (block.x + i) as isize + mv.x as isize;
            let r = reference.get_clamped(ref_x, ref_y);
            let d = (c as i64) - (r as i64);
            acc += (d * d) as u64;
        }
    }
    acc
}

/// 4x4 Hadamard transform of a residual block, returning Σ|coeff|.
fn hadamard4_cost(res: &[i32; 16]) -> u64 {
    let mut m = [0i32; 16];
    // Rows.
    for r in 0..4 {
        let a = res[r * 4];
        let b = res[r * 4 + 1];
        let c = res[r * 4 + 2];
        let d = res[r * 4 + 3];
        let s0 = a + c;
        let s1 = b + d;
        let d0 = a - c;
        let d1 = b - d;
        m[r * 4] = s0 + s1;
        m[r * 4 + 1] = s0 - s1;
        m[r * 4 + 2] = d0 + d1;
        m[r * 4 + 3] = d0 - d1;
    }
    // Columns.
    let mut acc = 0u64;
    for c in 0..4 {
        let a = m[c];
        let b = m[4 + c];
        let cc = m[8 + c];
        let d = m[12 + c];
        let s0 = a + cc;
        let s1 = b + d;
        let d0 = a - cc;
        let d1 = b - d;
        acc += (s0 + s1).unsigned_abs() as u64;
        acc += (s0 - s1).unsigned_abs() as u64;
        acc += (d0 + d1).unsigned_abs() as u64;
        acc += (d0 - d1).unsigned_abs() as u64;
    }
    acc
}

/// Sum of absolute Hadamard-transformed differences over 4x4 sub-blocks.
///
/// Blocks whose dimensions are not multiples of 4 fall back to [`sad`]
/// for the ragged edge.
///
/// # Panics
///
/// Panics when `block` is not fully inside `cur`.
pub fn satd(cur: &Plane, reference: &Plane, block: &Rect, mv: MotionVector) -> u64 {
    assert!(
        cur.bounds().contains_rect(block),
        "block {block} outside current plane"
    );
    let mut acc = 0u64;
    let full_w = block.w - block.w % 4;
    let full_h = block.h - block.h % 4;
    let mut res = [0i32; 16];
    let mut by = 0;
    while by < full_h {
        let mut bx = 0;
        while bx < full_w {
            for sy in 0..4 {
                let row = block.y + by + sy;
                let ref_y = row as isize + mv.y as isize;
                for sx in 0..4 {
                    let col = block.x + bx + sx;
                    let ref_x = col as isize + mv.x as isize;
                    res[sy * 4 + sx] =
                        cur.get(col, row) as i32 - reference.get_clamped(ref_x, ref_y) as i32;
                }
            }
            // Normalize by 2 to keep SATD on a SAD-comparable scale.
            acc += hadamard4_cost(&res) / 2;
            bx += 4;
        }
        by += 4;
    }
    // Ragged right edge.
    if full_w < block.w {
        let edge = Rect::new(block.x + full_w, block.y, block.w - full_w, block.h);
        acc += sad(cur, reference, &edge, mv);
    }
    // Ragged bottom edge (excluding the corner already counted).
    if full_h < block.h {
        let edge = Rect::new(block.x, block.y + full_h, full_w, block.h - full_h);
        acc += sad(cur, reference, &edge, mv);
    }
    acc
}

/// Dispatches to the chosen metric.
///
/// # Panics
///
/// Panics when `block` is not fully inside `cur`.
pub fn block_cost(
    metric: CostMetric,
    cur: &Plane,
    reference: &Plane,
    block: &Rect,
    mv: MotionVector,
) -> u64 {
    match metric {
        CostMetric::Sad => sad(cur, reference, block, mv),
        CostMetric::Ssd => ssd(cur, reference, block, mv),
        CostMetric::Satd => satd(cur, reference, block, mv),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planes() -> (Plane, Plane) {
        // Reference: gradient; current: the same gradient shifted right by 2.
        let mut reference = Plane::new(32, 16);
        for row in 0..16 {
            for col in 0..32 {
                reference.set(col, row, (col * 8 % 256) as u8);
            }
        }
        let mut cur = Plane::new(32, 16);
        for row in 0..16 {
            for col in 0..32 {
                cur.set(
                    col,
                    row,
                    reference.get_clamped(col as isize - 2, row as isize),
                );
            }
        }
        (cur, reference)
    }

    #[test]
    fn sad_zero_for_true_motion() {
        let (cur, reference) = planes();
        let block = Rect::new(8, 4, 8, 8);
        // Content moved right by 2 ⇒ the matching reference block is at -2.
        assert_eq!(sad(&cur, &reference, &block, MotionVector::new(-2, 0)), 0);
        assert!(sad(&cur, &reference, &block, MotionVector::ZERO) > 0);
    }

    #[test]
    fn ssd_grows_faster_than_sad() {
        let (cur, reference) = planes();
        let block = Rect::new(8, 4, 8, 8);
        let s = sad(&cur, &reference, &block, MotionVector::ZERO);
        let q = ssd(&cur, &reference, &block, MotionVector::ZERO);
        // Each sample differs by 16 ⇒ ssd = 16 * sad.
        assert_eq!(q, s * 16);
    }

    #[test]
    fn satd_zero_for_perfect_match() {
        let (cur, reference) = planes();
        let block = Rect::new(8, 4, 8, 8);
        assert_eq!(satd(&cur, &reference, &block, MotionVector::new(-2, 0)), 0);
    }

    #[test]
    fn satd_prefers_true_motion() {
        let (cur, reference) = planes();
        let block = Rect::new(8, 4, 8, 8);
        let good = satd(&cur, &reference, &block, MotionVector::new(-2, 0));
        let bad = satd(&cur, &reference, &block, MotionVector::new(3, 1));
        assert!(good < bad);
    }

    #[test]
    fn hadamard_dc_only() {
        // Constant residual of 1: all energy in DC = 16, so cost = 16.
        let res = [1i32; 16];
        assert_eq!(hadamard4_cost(&res), 16);
    }

    #[test]
    fn satd_handles_ragged_blocks() {
        let (cur, reference) = planes();
        let block = Rect::new(1, 1, 7, 6);
        // Must not panic; must still prefer the true displacement.
        let good = satd(&cur, &reference, &block, MotionVector::new(-2, 0));
        let bad = satd(&cur, &reference, &block, MotionVector::new(2, 0));
        assert!(good < bad);
    }

    #[test]
    fn block_cost_dispatches() {
        let (cur, reference) = planes();
        let block = Rect::new(8, 4, 8, 8);
        let mv = MotionVector::new(-2, 0);
        assert_eq!(block_cost(CostMetric::Sad, &cur, &reference, &block, mv), 0);
        assert_eq!(block_cost(CostMetric::Ssd, &cur, &reference, &block, mv), 0);
        assert_eq!(
            block_cost(CostMetric::Satd, &cur, &reference, &block, mv),
            0
        );
    }

    #[test]
    fn clamped_access_at_frame_edge() {
        let (cur, reference) = planes();
        let block = Rect::new(0, 0, 8, 8);
        // Large negative MV reads clamped samples; must not panic.
        let c = sad(&cur, &reference, &block, MotionVector::new(-100, -100));
        assert!(c > 0);
    }
}

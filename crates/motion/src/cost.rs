//! Block-matching distortion metrics: SAD, SSD and SATD.
//!
//! All metrics compare a block of the *current* plane against a
//! motion-shifted block of the *reference* plane. Reference access uses
//! edge clamping, matching unrestricted motion vectors over padded
//! reference pictures in HEVC.
//!
//! Two implementations back every metric:
//!
//! * an **interior fast path** taken when the displaced block lies
//!   fully inside the reference plane — both operands are then plain
//!   row slices and the inner loops run explicit SIMD kernels picked
//!   at runtime by [`mod@simd`] (AVX2 → SSE2 → scalar), every tier
//!   bit-equal to the scalar code;
//! * the **clamped path** for boundary candidates, identical to the
//!   original per-sample [`Plane::get_clamped`] access (kept verbatim
//!   in [`mod@reference`] as the executable specification).
//!
//! The `_upto` variants additionally take an exclusive `bound` and may
//! stop at a row boundary once the partial sum reaches it. Because the
//! partial sum of a non-negative series never exceeds the total, the
//! returned value is either the exact cost (when it is below `bound`)
//! or a lower bound that is `>= bound` — either way a caller comparing
//! against `bound` makes the same accept/reject decision as with the
//! exact cost, which keeps motion decisions bit-identical.

use crate::MotionVector;
use medvt_frame::{Plane, Rect};
use serde::{Deserialize, Serialize};

pub mod simd;

/// Distortion metric selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum CostMetric {
    /// Sum of absolute differences — the classic ME metric.
    #[default]
    Sad,
    /// Sum of squared differences.
    Ssd,
    /// Sum of absolute Hadamard-transformed differences (4x4 blocks),
    /// a closer proxy for post-transform bit cost.
    Satd,
}

/// Top-left corner of the displaced block in reference coordinates
/// when it lies fully inside the reference plane.
#[inline]
fn interior_origin(reference: &Plane, block: &Rect, mv: MotionVector) -> Option<(usize, usize)> {
    let x0 = block.x as isize + mv.x as isize;
    let y0 = block.y as isize + mv.y as isize;
    if x0 >= 0
        && y0 >= 0
        && (x0 as usize) + block.w <= reference.width()
        && (y0 as usize) + block.h <= reference.height()
    {
        Some((x0 as usize, y0 as usize))
    } else {
        None
    }
}

/// Sum of absolute differences between `block` of `cur` and the block
/// displaced by `mv` in `reference`.
///
/// # Panics
///
/// Panics when `block` is not fully inside `cur`.
pub fn sad(cur: &Plane, reference: &Plane, block: &Rect, mv: MotionVector) -> u64 {
    sad_upto(cur, reference, block, mv, u64::MAX)
}

/// [`sad`] with early termination: may return at a row boundary once
/// the partial sum reaches `bound` (see the module docs for why the
/// result still decides `cost < bound` exactly).
///
/// # Panics
///
/// Panics when `block` is not fully inside `cur`.
pub fn sad_upto(cur: &Plane, reference: &Plane, block: &Rect, mv: MotionVector, bound: u64) -> u64 {
    assert!(
        cur.bounds().contains_rect(block),
        "block {block} outside current plane"
    );
    let mut acc = 0u64;
    if let Some((rx, ry)) = interior_origin(reference, block, mv) {
        // Resolve the SIMD tier once, not per row.
        let t = simd::tier();
        for (i, row) in (block.y..block.bottom()).enumerate() {
            let cur_row = &cur.row(row)[block.x..block.right()];
            let ref_row = &reference.row(ry + i)[rx..rx + block.w];
            acc += simd::row_sad(t, cur_row, ref_row);
            if acc >= bound {
                return acc;
            }
        }
    } else {
        for row in block.y..block.bottom() {
            let cur_row = &cur.row(row)[block.x..block.right()];
            let ref_y = row as isize + mv.y as isize;
            for (i, &c) in cur_row.iter().enumerate() {
                let ref_x = (block.x + i) as isize + mv.x as isize;
                let r = reference.get_clamped(ref_x, ref_y);
                acc += (c as i16 - r as i16).unsigned_abs() as u64;
            }
            if acc >= bound {
                return acc;
            }
        }
    }
    acc
}

/// Sum of squared differences (same access pattern as [`sad`]).
///
/// # Panics
///
/// Panics when `block` is not fully inside `cur`.
pub fn ssd(cur: &Plane, reference: &Plane, block: &Rect, mv: MotionVector) -> u64 {
    ssd_upto(cur, reference, block, mv, u64::MAX)
}

/// [`ssd`] with early termination at row granularity against `bound`.
///
/// # Panics
///
/// Panics when `block` is not fully inside `cur`.
pub fn ssd_upto(cur: &Plane, reference: &Plane, block: &Rect, mv: MotionVector, bound: u64) -> u64 {
    assert!(
        cur.bounds().contains_rect(block),
        "block {block} outside current plane"
    );
    let mut acc = 0u64;
    if let Some((rx, ry)) = interior_origin(reference, block, mv) {
        // Resolve the SIMD tier once, not per row.
        let t = simd::tier();
        for (i, row) in (block.y..block.bottom()).enumerate() {
            let cur_row = &cur.row(row)[block.x..block.right()];
            let ref_row = &reference.row(ry + i)[rx..rx + block.w];
            acc += simd::row_ssd(t, cur_row, ref_row);
            if acc >= bound {
                return acc;
            }
        }
    } else {
        for row in block.y..block.bottom() {
            let cur_row = &cur.row(row)[block.x..block.right()];
            let ref_y = row as isize + mv.y as isize;
            for (i, &c) in cur_row.iter().enumerate() {
                let ref_x = (block.x + i) as isize + mv.x as isize;
                let r = reference.get_clamped(ref_x, ref_y);
                let d = (c as i64) - (r as i64);
                acc += (d * d) as u64;
            }
            if acc >= bound {
                return acc;
            }
        }
    }
    acc
}

/// 4x4 Hadamard transform of a residual block, returning Σ|coeff|.
fn hadamard4_cost(res: &[i32; 16]) -> u64 {
    let mut m = [0i32; 16];
    // Rows.
    for r in 0..4 {
        let a = res[r * 4];
        let b = res[r * 4 + 1];
        let c = res[r * 4 + 2];
        let d = res[r * 4 + 3];
        let s0 = a + c;
        let s1 = b + d;
        let d0 = a - c;
        let d1 = b - d;
        m[r * 4] = s0 + s1;
        m[r * 4 + 1] = s0 - s1;
        m[r * 4 + 2] = d0 + d1;
        m[r * 4 + 3] = d0 - d1;
    }
    // Columns.
    let mut acc = 0u64;
    for c in 0..4 {
        let a = m[c];
        let b = m[4 + c];
        let cc = m[8 + c];
        let d = m[12 + c];
        let s0 = a + cc;
        let s1 = b + d;
        let d0 = a - cc;
        let d1 = b - d;
        acc += (s0 + s1).unsigned_abs() as u64;
        acc += (s0 - s1).unsigned_abs() as u64;
        acc += (d0 + d1).unsigned_abs() as u64;
        acc += (d0 - d1).unsigned_abs() as u64;
    }
    acc
}

/// Sum of absolute Hadamard-transformed differences over 4x4 sub-blocks.
///
/// Blocks whose dimensions are not multiples of 4 fall back to [`sad`]
/// for the ragged edge.
///
/// # Panics
///
/// Panics when `block` is not fully inside `cur`.
pub fn satd(cur: &Plane, reference: &Plane, block: &Rect, mv: MotionVector) -> u64 {
    satd_upto(cur, reference, block, mv, u64::MAX)
}

/// [`satd`] with early termination after each row of 4x4 sub-blocks
/// against `bound`.
///
/// # Panics
///
/// Panics when `block` is not fully inside `cur`.
pub fn satd_upto(
    cur: &Plane,
    reference: &Plane,
    block: &Rect,
    mv: MotionVector,
    bound: u64,
) -> u64 {
    assert!(
        cur.bounds().contains_rect(block),
        "block {block} outside current plane"
    );
    let mut acc = 0u64;
    let full_w = block.w - block.w % 4;
    let full_h = block.h - block.h % 4;
    let mut res = [0i32; 16];
    let interior = interior_origin(reference, block, mv);
    // Resolve the SIMD tier once, not per sub-block.
    let t = simd::tier();
    let mut by = 0;
    while by < full_h {
        let mut bx = 0;
        while bx < full_w {
            if let Some((rx, ry)) = interior {
                // Normalize by 2 to keep SATD on a SAD-comparable scale.
                acc += simd::satd4(
                    t,
                    cur.span_from(block.x + bx, block.y + by),
                    cur.width(),
                    reference.span_from(rx + bx, ry + by),
                    reference.width(),
                ) / 2;
            } else {
                for sy in 0..4 {
                    let row = block.y + by + sy;
                    let ref_y = row as isize + mv.y as isize;
                    for sx in 0..4 {
                        let col = block.x + bx + sx;
                        let ref_x = col as isize + mv.x as isize;
                        res[sy * 4 + sx] =
                            cur.get(col, row) as i32 - reference.get_clamped(ref_x, ref_y) as i32;
                    }
                }
                acc += hadamard4_cost(&res) / 2;
            }
            bx += 4;
        }
        if acc >= bound {
            return acc;
        }
        by += 4;
    }
    // Ragged right edge.
    if full_w < block.w {
        let edge = Rect::new(block.x + full_w, block.y, block.w - full_w, block.h);
        acc += sad(cur, reference, &edge, mv);
    }
    // Ragged bottom edge (excluding the corner already counted).
    if full_h < block.h {
        let edge = Rect::new(block.x, block.y + full_h, full_w, block.h - full_h);
        acc += sad(cur, reference, &edge, mv);
    }
    acc
}

/// Dispatches to the chosen metric.
///
/// # Panics
///
/// Panics when `block` is not fully inside `cur`.
pub fn block_cost(
    metric: CostMetric,
    cur: &Plane,
    reference: &Plane,
    block: &Rect,
    mv: MotionVector,
) -> u64 {
    block_cost_upto(metric, cur, reference, block, mv, u64::MAX)
}

/// [`block_cost`] with early termination against `bound` (see the
/// module docs for the decision-equivalence argument).
///
/// # Panics
///
/// Panics when `block` is not fully inside `cur`.
pub fn block_cost_upto(
    metric: CostMetric,
    cur: &Plane,
    reference: &Plane,
    block: &Rect,
    mv: MotionVector,
    bound: u64,
) -> u64 {
    match metric {
        CostMetric::Sad => sad_upto(cur, reference, block, mv, bound),
        CostMetric::Ssd => ssd_upto(cur, reference, block, mv, bound),
        CostMetric::Satd => satd_upto(cur, reference, block, mv, bound),
    }
}

/// The original per-sample clamped implementations, kept verbatim as
/// the executable specification of every metric.
///
/// The optimized kernels in the parent module must agree with these on
/// every input (enforced by proptests); the kernel benchmark uses them
/// as the measured "before".
pub mod reference {
    use super::*;

    /// Specification [`super::sad`]: per-sample clamped access.
    ///
    /// # Panics
    ///
    /// Panics when `block` is not fully inside `cur`.
    pub fn sad(cur: &Plane, reference: &Plane, block: &Rect, mv: MotionVector) -> u64 {
        assert!(
            cur.bounds().contains_rect(block),
            "block {block} outside current plane"
        );
        let mut acc = 0u64;
        for row in block.y..block.bottom() {
            let cur_row = &cur.row(row)[block.x..block.right()];
            let ref_y = row as isize + mv.y as isize;
            for (i, &c) in cur_row.iter().enumerate() {
                let ref_x = (block.x + i) as isize + mv.x as isize;
                let r = reference.get_clamped(ref_x, ref_y);
                acc += (c as i16 - r as i16).unsigned_abs() as u64;
            }
        }
        acc
    }

    /// Specification [`super::ssd`]: per-sample clamped access.
    ///
    /// # Panics
    ///
    /// Panics when `block` is not fully inside `cur`.
    pub fn ssd(cur: &Plane, reference: &Plane, block: &Rect, mv: MotionVector) -> u64 {
        assert!(
            cur.bounds().contains_rect(block),
            "block {block} outside current plane"
        );
        let mut acc = 0u64;
        for row in block.y..block.bottom() {
            let cur_row = &cur.row(row)[block.x..block.right()];
            let ref_y = row as isize + mv.y as isize;
            for (i, &c) in cur_row.iter().enumerate() {
                let ref_x = (block.x + i) as isize + mv.x as isize;
                let r = reference.get_clamped(ref_x, ref_y);
                let d = (c as i64) - (r as i64);
                acc += (d * d) as u64;
            }
        }
        acc
    }

    /// Specification [`super::satd`]: per-sample clamped access.
    ///
    /// # Panics
    ///
    /// Panics when `block` is not fully inside `cur`.
    pub fn satd(cur: &Plane, reference: &Plane, block: &Rect, mv: MotionVector) -> u64 {
        assert!(
            cur.bounds().contains_rect(block),
            "block {block} outside current plane"
        );
        let mut acc = 0u64;
        let full_w = block.w - block.w % 4;
        let full_h = block.h - block.h % 4;
        let mut res = [0i32; 16];
        let mut by = 0;
        while by < full_h {
            let mut bx = 0;
            while bx < full_w {
                for sy in 0..4 {
                    let row = block.y + by + sy;
                    let ref_y = row as isize + mv.y as isize;
                    for sx in 0..4 {
                        let col = block.x + bx + sx;
                        let ref_x = col as isize + mv.x as isize;
                        res[sy * 4 + sx] =
                            cur.get(col, row) as i32 - reference.get_clamped(ref_x, ref_y) as i32;
                    }
                }
                acc += super::hadamard4_cost(&res) / 2;
                bx += 4;
            }
            by += 4;
        }
        if full_w < block.w {
            let edge = Rect::new(block.x + full_w, block.y, block.w - full_w, block.h);
            acc += sad(cur, reference, &edge, mv);
        }
        if full_h < block.h {
            let edge = Rect::new(block.x, block.y + full_h, full_w, block.h - full_h);
            acc += sad(cur, reference, &edge, mv);
        }
        acc
    }

    /// Specification [`super::block_cost`].
    ///
    /// # Panics
    ///
    /// Panics when `block` is not fully inside `cur`.
    pub fn block_cost(
        metric: CostMetric,
        cur: &Plane,
        reference: &Plane,
        block: &Rect,
        mv: MotionVector,
    ) -> u64 {
        match metric {
            CostMetric::Sad => sad(cur, reference, block, mv),
            CostMetric::Ssd => ssd(cur, reference, block, mv),
            CostMetric::Satd => satd(cur, reference, block, mv),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn planes() -> (Plane, Plane) {
        // Reference: gradient; current: the same gradient shifted right by 2.
        let mut reference = Plane::new(32, 16);
        for row in 0..16 {
            for col in 0..32 {
                reference.set(col, row, (col * 8 % 256) as u8);
            }
        }
        let mut cur = Plane::new(32, 16);
        for row in 0..16 {
            for col in 0..32 {
                cur.set(
                    col,
                    row,
                    reference.get_clamped(col as isize - 2, row as isize),
                );
            }
        }
        (cur, reference)
    }

    #[test]
    fn sad_zero_for_true_motion() {
        let (cur, reference) = planes();
        let block = Rect::new(8, 4, 8, 8);
        // Content moved right by 2 ⇒ the matching reference block is at -2.
        assert_eq!(sad(&cur, &reference, &block, MotionVector::new(-2, 0)), 0);
        assert!(sad(&cur, &reference, &block, MotionVector::ZERO) > 0);
    }

    #[test]
    fn ssd_grows_faster_than_sad() {
        let (cur, reference) = planes();
        let block = Rect::new(8, 4, 8, 8);
        let s = sad(&cur, &reference, &block, MotionVector::ZERO);
        let q = ssd(&cur, &reference, &block, MotionVector::ZERO);
        // Each sample differs by 16 ⇒ ssd = 16 * sad.
        assert_eq!(q, s * 16);
    }

    #[test]
    fn satd_zero_for_perfect_match() {
        let (cur, reference) = planes();
        let block = Rect::new(8, 4, 8, 8);
        assert_eq!(satd(&cur, &reference, &block, MotionVector::new(-2, 0)), 0);
    }

    #[test]
    fn satd_prefers_true_motion() {
        let (cur, reference) = planes();
        let block = Rect::new(8, 4, 8, 8);
        let good = satd(&cur, &reference, &block, MotionVector::new(-2, 0));
        let bad = satd(&cur, &reference, &block, MotionVector::new(3, 1));
        assert!(good < bad);
    }

    #[test]
    fn hadamard_dc_only() {
        // Constant residual of 1: all energy in DC = 16, so cost = 16.
        let res = [1i32; 16];
        assert_eq!(hadamard4_cost(&res), 16);
    }

    #[test]
    fn satd_handles_ragged_blocks() {
        let (cur, reference) = planes();
        let block = Rect::new(1, 1, 7, 6);
        // Must not panic; must still prefer the true displacement.
        let good = satd(&cur, &reference, &block, MotionVector::new(-2, 0));
        let bad = satd(&cur, &reference, &block, MotionVector::new(2, 0));
        assert!(good < bad);
    }

    #[test]
    fn block_cost_dispatches() {
        let (cur, reference) = planes();
        let block = Rect::new(8, 4, 8, 8);
        let mv = MotionVector::new(-2, 0);
        assert_eq!(block_cost(CostMetric::Sad, &cur, &reference, &block, mv), 0);
        assert_eq!(block_cost(CostMetric::Ssd, &cur, &reference, &block, mv), 0);
        assert_eq!(
            block_cost(CostMetric::Satd, &cur, &reference, &block, mv),
            0
        );
    }

    #[test]
    fn clamped_access_at_frame_edge() {
        let (cur, reference) = planes();
        let block = Rect::new(0, 0, 8, 8);
        // Large negative MV reads clamped samples; must not panic.
        let c = sad(&cur, &reference, &block, MotionVector::new(-100, -100));
        assert!(c > 0);
    }

    #[test]
    fn interior_detection() {
        let reference = Plane::new(32, 16);
        let block = Rect::new(8, 4, 8, 8);
        assert!(interior_origin(&reference, &block, MotionVector::ZERO).is_some());
        assert!(interior_origin(&reference, &block, MotionVector::new(-8, -4)).is_some());
        assert!(interior_origin(&reference, &block, MotionVector::new(-9, 0)).is_none());
        assert!(interior_origin(&reference, &block, MotionVector::new(16, 0)).is_some());
        assert!(interior_origin(&reference, &block, MotionVector::new(17, 0)).is_none());
        assert!(interior_origin(&reference, &block, MotionVector::new(0, 5)).is_none());
    }

    #[test]
    fn upto_is_exact_below_bound_and_reaches_bound_otherwise() {
        let (cur, reference) = planes();
        let block = Rect::new(8, 4, 8, 8);
        let mv = MotionVector::ZERO;
        let exact = sad(&cur, &reference, &block, mv);
        assert!(exact > 0);
        // Bound above the exact cost: exact value comes back.
        assert_eq!(sad_upto(&cur, &reference, &block, mv, exact + 1), exact);
        // Bound at or below the exact cost: the result is >= bound.
        for bound in [1, exact / 2, exact] {
            let c = sad_upto(&cur, &reference, &block, mv, bound);
            assert!(c >= bound, "bound {bound} gave {c}");
            assert!(c <= exact);
        }
    }

    /// Strategy: a 24x20 plane pair plus a block/MV that may reach far
    /// outside the reference (boundary clamping) or stay interior.
    fn geometry() -> impl Strategy<Value = (Rect, MotionVector)> {
        (
            0usize..16,
            0usize..12,
            1usize..9,
            1usize..9,
            -30i16..=30,
            -30i16..=30,
        )
            .prop_map(|(x, y, w, h, mx, my)| {
                let w = w.min(24 - x);
                let h = h.min(20 - y);
                (Rect::new(x, y, w, h), MotionVector::new(mx, my))
            })
    }

    fn textured_planes() -> (Plane, Plane) {
        let mut cur = Plane::new(24, 20);
        let mut reference = Plane::new(24, 20);
        for row in 0..20 {
            for col in 0..24 {
                cur.set(col, row, ((col * 31 + row * 17 + 5) % 256) as u8);
                reference.set(col, row, ((col * 13 + row * 41 + 99) % 256) as u8);
            }
        }
        (cur, reference)
    }

    proptest! {
        #[test]
        fn prop_sad_matches_reference((block, mv) in geometry()) {
            let (cur, reference) = textured_planes();
            prop_assert_eq!(
                sad(&cur, &reference, &block, mv),
                super::reference::sad(&cur, &reference, &block, mv)
            );
        }

        #[test]
        fn prop_ssd_matches_reference((block, mv) in geometry()) {
            let (cur, reference) = textured_planes();
            prop_assert_eq!(
                ssd(&cur, &reference, &block, mv),
                super::reference::ssd(&cur, &reference, &block, mv)
            );
        }

        #[test]
        fn prop_satd_matches_reference((block, mv) in geometry()) {
            let (cur, reference) = textured_planes();
            prop_assert_eq!(
                satd(&cur, &reference, &block, mv),
                super::reference::satd(&cur, &reference, &block, mv)
            );
        }

        #[test]
        fn prop_upto_decides_like_exact(
            (block, mv) in geometry(),
            bound_num in 0u64..200,
        ) {
            let (cur, reference) = textured_planes();
            for metric in [CostMetric::Sad, CostMetric::Ssd, CostMetric::Satd] {
                let exact = super::reference::block_cost(metric, &cur, &reference, &block, mv);
                // Bounds straddling the exact cost in both directions.
                let bound = bound_num * exact.max(1) / 100;
                let c = block_cost_upto(metric, &cur, &reference, &block, mv, bound);
                prop_assert_eq!(c < bound, exact < bound);
                if c < bound {
                    prop_assert_eq!(c, exact);
                }
                prop_assert!(c <= exact);
            }
        }
    }
}

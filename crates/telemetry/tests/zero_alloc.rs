//! Allocation discipline for the recorder hot paths, following the
//! counting-allocator harness from `crates/encoder/tests/zero_alloc.rs`:
//! a `#[global_allocator]` counts every allocation event, and the
//! steady-state recording paths must add exactly zero.
//!
//! Also pins the bounded-retention contract: a `FlightRecorder` ring
//! never retains more than its configured capacity no matter how many
//! events are written, and the overflow is reported as `dropped`.

use medvt_telemetry::{
    CounterId, Event, EventKind, FlightRecorder, HistId, Metrics, NoopRecorder, Recorder,
    CONTROL_TRACK,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn alloc_events() -> u64 {
    ALLOC_EVENTS.load(Ordering::Relaxed)
}

fn one_of_each(track: u16, slot: u32) -> [Event; 4] {
    [
        Event::new(CONTROL_TRACK, slot, EventKind::GopBoundary),
        Event::new(track, slot, EventKind::Admit { user: slot }),
        Event::new(CONTROL_TRACK, slot, EventKind::QueueDepth { depth: slot }),
        Event::new(
            track,
            slot,
            EventKind::SlotCore {
                core: 2,
                busy_ns: 1_000_000,
                carry: false,
                transition_bound: false,
            },
        ),
    ]
}

#[test]
fn noop_recorder_steady_state_allocates_nothing() {
    let rec = NoopRecorder;
    let meter = Metrics::new();
    // Warm up (nothing to warm, but keep the harness shape).
    for ev in one_of_each(0, 0) {
        rec.record(ev);
    }
    let before = alloc_events();
    for slot in 0..10_000u32 {
        for ev in one_of_each((slot % 4) as u16, slot) {
            rec.record(ev);
        }
        meter.add(CounterId::Boundaries, 1);
        meter.observe(HistId::PlacementNs, u64::from(slot) * 17);
    }
    rec.absorb(&meter);
    let after = alloc_events();
    assert_eq!(
        after - before,
        0,
        "NoopRecorder steady state must not allocate"
    );
}

#[test]
fn flight_recorder_steady_state_allocates_nothing() {
    // All allocation happens at construction (ring slots); recording
    // into the rings and updating metrics must be allocation-free.
    let rec = FlightRecorder::new(4, 1 << 10);
    let meter = Metrics::new();
    for ev in one_of_each(0, 0) {
        rec.record(ev); // warm up
    }
    let before = alloc_events();
    for slot in 0..10_000u32 {
        for ev in one_of_each((slot % 4) as u16, slot) {
            rec.record(ev);
        }
        meter.add(CounterId::Decisions, 3);
        meter.observe(HistId::BoundaryNs, u64::from(slot));
    }
    rec.absorb(&meter);
    let after = alloc_events();
    assert_eq!(
        after - before,
        0,
        "FlightRecorder steady state must not allocate"
    );
}

#[test]
fn flight_recorder_never_exceeds_ring_capacity() {
    const CAP: usize = 128;
    const WRITES: u32 = 10 * CAP as u32;
    let rec = FlightRecorder::modeled(2, CAP);
    // Hammer one shard track and the control track far past capacity.
    for slot in 0..WRITES {
        rec.record(Event::new(0, slot, EventKind::Admit { user: slot }));
        rec.record(Event::new(CONTROL_TRACK, slot, EventKind::GopBoundary));
    }
    let snap = rec.snapshot();
    for ring in &snap.rings {
        assert!(ring.capacity <= CAP);
        assert_eq!(ring.dropped, ring.recorded.saturating_sub(CAP as u64));
    }
    // Retained events per ring bounded by capacity...
    assert!(rec.events().len() <= snap.rings.len() * CAP);
    // ...nothing lost silently...
    assert_eq!(rec.recorded(), u64::from(WRITES) * 2);
    assert_eq!(rec.dropped(), u64::from(WRITES - CAP as u32) * 2);
    // ...and the retained window is the *newest* events.
    let shard_slots: Vec<u32> = rec
        .events()
        .into_iter()
        .filter(|e| matches!(e.kind, EventKind::Admit { .. }))
        .map(|e| e.slot)
        .collect();
    assert_eq!(shard_slots.len(), CAP);
    assert_eq!(*shard_slots.first().unwrap(), WRITES - CAP as u32);
    assert_eq!(*shard_slots.last().unwrap(), WRITES - 1);
}

//! Microbenchmark for the hot recording path: raw ring writes and
//! full `Recorder::record` dispatch (wall-stamped and modeled).
//!
//! Run with `cargo run --release -p medvt-telemetry --example
//! ring_micro`. Expect single-digit nanoseconds per event on a warm
//! cache; the seqlock write is a handful of release stores and the
//! wall stamp is cached per slot.

use medvt_telemetry::{Event, EventKind, EventRing, FlightRecorder, Recorder};
use std::time::Instant;

const EVENTS: u32 = 1_000_000;
/// Cores per synthetic slot burst — matches a 256-core fleet emitting
/// one span per busy core per slot.
const BURST: u32 = 256;

fn span(track: u16, slot: u32, core: u16) -> Event {
    Event::new(
        track,
        slot,
        EventKind::SlotCore {
            core,
            busy_ns: 41_000_000,
            carry: false,
            transition_bound: false,
        },
    )
}

fn main() {
    let ring = EventRing::new(1 << 12);
    let clock = Instant::now();
    for s in 0..EVENTS {
        ring.write(&span(0, s / BURST, (s % BURST) as u16));
    }
    let raw = clock.elapsed().as_nanos() as f64 / f64::from(EVENTS);

    let rec = FlightRecorder::new(4, 1 << 12);
    let clock = Instant::now();
    for s in 0..EVENTS {
        rec.record(span((s % 4) as u16, s / BURST, (s % BURST) as u16));
    }
    let wall = clock.elapsed().as_nanos() as f64 / f64::from(EVENTS);

    let rec = FlightRecorder::modeled(4, 1 << 12);
    let clock = Instant::now();
    for s in 0..EVENTS {
        rec.record(span((s % 4) as u16, s / BURST, (s % BURST) as u16));
    }
    let modeled = clock.elapsed().as_nanos() as f64 / f64::from(EVENTS);
    assert_eq!(rec.recorded(), u64::from(EVENTS));

    println!("raw ring write:            {raw:.1} ns/event");
    println!("record (wall-stamped):     {wall:.1} ns/event");
    println!("record (modeled, no wall): {modeled:.1} ns/event");
}

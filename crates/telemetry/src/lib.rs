//! # medvt-telemetry
//!
//! Flight-recorder telemetry for the `medvt` serving stack: typed
//! control-plane/worker events, lock-free bounded ring buffers,
//! monotonic counters, log-bucketed latency histograms, and exporters
//! (JSON-lines, Chrome/Perfetto `trace_event`).
//!
//! The crate is built around three ideas:
//!
//! * **Static dispatch, zero cost when off.** Instrumented code is
//!   generic over [`Recorder`]; the default [`NoopRecorder`] is a
//!   zero-sized type whose `record` is an inlined no-op and whose
//!   [`Recorder::ENABLED`] constant lets call sites skip event
//!   construction entirely. The counting-allocator test in
//!   `tests/zero_alloc.rs` proves the enabled path allocates nothing
//!   per event either.
//! * **Bounded retention.** [`FlightRecorder`] stores events in
//!   fixed-capacity [`EventRing`]s that overwrite the oldest entry on
//!   wrap, so even a 10⁵-user scale run records with fixed memory.
//!   Dropped-event counts are surfaced in the snapshot rather than
//!   silently discarded.
//! * **Model-time determinism.** Every event carries the modeled slot
//!   index; wall-clock nanoseconds ride along in a separate field that
//!   [`normalized`] strips. Sim and thread-pool backends therefore
//!   emit *identical* normalized event streams on the same trace —
//!   the repo's decision-parity invariant extended to telemetry.
//!
//! Aggregates live in [`Metrics`] (counters keyed by [`CounterId`],
//! base-2 log-bucketed [`Histogram`]s keyed by [`HistId`]) and are
//! captured as a serializable [`TelemetrySnapshot`] with
//! p50/p95/p99/max per histogram.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod event;
mod export;
mod metrics;
mod recorder;
mod ring;

pub use event::{Event, EventKind, CONTROL_TRACK};
pub use export::{chrome_trace, json_lines};
pub use metrics::{
    CounterId, CounterSnapshot, HistId, Histogram, HistogramSnapshot, Metrics, MetricsSnapshot,
};
pub use recorder::{
    normalized, FlightRecorder, NoopRecorder, Recorder, RingStat, TelemetrySnapshot,
};
pub use ring::EventRing;

//! Typed telemetry events with a fixed three-word binary encoding.
//!
//! Events are packed into `[u64; 3]` so the ring buffer can store them
//! in plain atomic words — no allocation, no serialization on the hot
//! path. The layout is:
//!
//! ```text
//! w0: tag(8) | track(16) | reserved(8) | slot(32)
//! w1: kind-specific payload (user id, queue depth, core fields, ...)
//! w2: wall-clock nanoseconds since recorder start (0 in modeled view)
//! ```

/// Track id used for control-plane events (admission controller,
/// queue) as opposed to per-shard worker tracks `0..n_shards`.
pub const CONTROL_TRACK: u16 = u16::MAX;

/// What happened. Every variant is fully described by one payload
/// word; see the module docs for the packing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A GOP boundary was reached on this track (control plane: a
    /// controller boundary pass; shard: the driver crossed a GOP).
    GopBoundary,
    /// The shard's placement engine re-planned; payload is the member
    /// count it planned for.
    Replan {
        /// Active users on the shard at the replan.
        users: u32,
    },
    /// A queued request was admitted onto this shard.
    Admit {
        /// Global user id.
        user: u32,
    },
    /// An active user was evicted for sustained deadline misses.
    Evict {
        /// Global user id.
        user: u32,
    },
    /// An active user departed voluntarily.
    Depart {
        /// Global user id.
        user: u32,
    },
    /// A queued request gave up waiting before admission.
    Abandon {
        /// Global user id.
        user: u32,
    },
    /// A request was rejected outright (demand exceeds any shard).
    Reject {
        /// Global user id.
        user: u32,
    },
    /// Waiting-queue depth after this boundary's admissions.
    QueueDepth {
        /// Requests still queued.
        depth: u32,
    },
    /// One core's activity inside an executed slot.
    SlotCore {
        /// Core index within the shard.
        core: u16,
        /// Modeled busy time in the slot, nanoseconds (saturating).
        busy_ns: u32,
        /// Work carried past the slot deadline (miss).
        carry: bool,
        /// The miss was caused by DVFS transition overhead.
        transition_bound: bool,
    },
    /// A cluster coordinator leased a segment to the node on this
    /// track.
    LeaseGranted {
        /// Segment index within the job.
        segment: u32,
    },
    /// A lease timed out on the node on this track (dead or stalled
    /// worker); the segment goes back to the coordinator.
    LeaseExpired {
        /// Segment index within the job.
        segment: u32,
    },
    /// An expired segment re-entered the coordinator's pending pool
    /// (control track).
    LeaseRequeued {
        /// Segment index within the job.
        segment: u32,
    },
    /// A completed segment was stitched into the output bitstream in
    /// order (control track).
    SegmentReassembled {
        /// Segment index within the job.
        segment: u32,
    },
    /// The provisioning layer rented one instance of a priced platform
    /// preset for the serving fleet (control track).
    Provisioned {
        /// Index into the provisioning catalogue.
        preset: u32,
    },
    /// An evicted user re-entered the queue at the next-lower deadline
    /// class instead of being dropped (control track).
    Downgraded {
        /// Global user id.
        user: u32,
    },
}

impl EventKind {
    /// Stable numeric tag for the binary encoding.
    fn tag(self) -> u8 {
        match self {
            EventKind::GopBoundary => 0,
            EventKind::Replan { .. } => 1,
            EventKind::Admit { .. } => 2,
            EventKind::Evict { .. } => 3,
            EventKind::Depart { .. } => 4,
            EventKind::Abandon { .. } => 5,
            EventKind::Reject { .. } => 6,
            EventKind::QueueDepth { .. } => 7,
            EventKind::SlotCore { .. } => 8,
            EventKind::LeaseGranted { .. } => 9,
            EventKind::LeaseExpired { .. } => 10,
            EventKind::LeaseRequeued { .. } => 11,
            EventKind::SegmentReassembled { .. } => 12,
            EventKind::Provisioned { .. } => 13,
            EventKind::Downgraded { .. } => 14,
        }
    }

    /// Short stable label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::GopBoundary => "gop_boundary",
            EventKind::Replan { .. } => "replan",
            EventKind::Admit { .. } => "admit",
            EventKind::Evict { .. } => "evict",
            EventKind::Depart { .. } => "depart",
            EventKind::Abandon { .. } => "abandon",
            EventKind::Reject { .. } => "reject",
            EventKind::QueueDepth { .. } => "queue_depth",
            EventKind::SlotCore { .. } => "slot_core",
            EventKind::LeaseGranted { .. } => "lease_granted",
            EventKind::LeaseExpired { .. } => "lease_expired",
            EventKind::LeaseRequeued { .. } => "lease_requeued",
            EventKind::SegmentReassembled { .. } => "segment_reassembled",
            EventKind::Provisioned { .. } => "provisioned",
            EventKind::Downgraded { .. } => "downgraded",
        }
    }

    fn payload(self) -> u64 {
        match self {
            EventKind::GopBoundary => 0,
            EventKind::Replan { users } => u64::from(users),
            EventKind::Admit { user }
            | EventKind::Evict { user }
            | EventKind::Depart { user }
            | EventKind::Abandon { user }
            | EventKind::Reject { user } => u64::from(user),
            EventKind::QueueDepth { depth } => u64::from(depth),
            EventKind::LeaseGranted { segment }
            | EventKind::LeaseExpired { segment }
            | EventKind::LeaseRequeued { segment }
            | EventKind::SegmentReassembled { segment } => u64::from(segment),
            EventKind::Provisioned { preset } => u64::from(preset),
            EventKind::Downgraded { user } => u64::from(user),
            EventKind::SlotCore {
                core,
                busy_ns,
                carry,
                transition_bound,
            } => {
                (u64::from(core) << 48)
                    | (u64::from(busy_ns) << 16)
                    | (u64::from(carry) << 1)
                    | u64::from(transition_bound)
            }
        }
    }

    fn unpack(tag: u8, payload: u64) -> Option<EventKind> {
        let user = payload as u32;
        Some(match tag {
            0 => EventKind::GopBoundary,
            1 => EventKind::Replan { users: user },
            2 => EventKind::Admit { user },
            3 => EventKind::Evict { user },
            4 => EventKind::Depart { user },
            5 => EventKind::Abandon { user },
            6 => EventKind::Reject { user },
            7 => EventKind::QueueDepth { depth: user },
            8 => EventKind::SlotCore {
                core: (payload >> 48) as u16,
                busy_ns: (payload >> 16) as u32,
                carry: payload & 0b10 != 0,
                transition_bound: payload & 0b1 != 0,
            },
            9 => EventKind::LeaseGranted { segment: user },
            10 => EventKind::LeaseExpired { segment: user },
            11 => EventKind::LeaseRequeued { segment: user },
            12 => EventKind::SegmentReassembled { segment: user },
            13 => EventKind::Provisioned { preset: user },
            14 => EventKind::Downgraded { user },
            _ => return None,
        })
    }
}

/// One recorded occurrence: *what* ([`EventKind`]), *where* (`track`),
/// *when* in model time (`slot`) and — optionally — in wall time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Shard index, or [`CONTROL_TRACK`] for the control plane.
    pub track: u16,
    /// Modeled slot index the event belongs to.
    pub slot: u32,
    /// Wall-clock nanoseconds since recorder start; 0 when unset or
    /// after [`normalized`](crate::normalized).
    pub wall_ns: u64,
    /// The event payload.
    pub kind: EventKind,
}

impl Event {
    /// A wall-clock-free event (the recorder stamps `wall_ns`).
    #[inline]
    pub fn new(track: u16, slot: u32, kind: EventKind) -> Self {
        Event {
            track,
            slot,
            wall_ns: 0,
            kind,
        }
    }

    /// Packs into the three-word ring representation.
    #[inline]
    pub fn encode(&self) -> [u64; 3] {
        let w0 = (u64::from(self.kind.tag()) << 56)
            | (u64::from(self.track) << 40)
            | u64::from(self.slot);
        [w0, self.kind.payload(), self.wall_ns]
    }

    /// Unpacks a ring entry; `None` on an unknown tag (torn or
    /// corrupted slot — skipped by readers).
    pub fn decode(words: [u64; 3]) -> Option<Event> {
        let tag = (words[0] >> 56) as u8;
        let kind = EventKind::unpack(tag, words[1])?;
        Some(Event {
            track: (words[0] >> 40) as u16,
            slot: words[0] as u32,
            wall_ns: words[2],
            kind,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrips_every_kind() {
        let kinds = [
            EventKind::GopBoundary,
            EventKind::Replan { users: 173 },
            EventKind::Admit { user: 41 },
            EventKind::Evict { user: u32::MAX },
            EventKind::Depart { user: 0 },
            EventKind::Abandon { user: 7 },
            EventKind::Reject { user: 1_000_000 },
            EventKind::QueueDepth { depth: 65_535 },
            EventKind::SlotCore {
                core: 513,
                busy_ns: 41_666_667,
                carry: true,
                transition_bound: false,
            },
            EventKind::SlotCore {
                core: 0,
                busy_ns: 0,
                carry: false,
                transition_bound: true,
            },
            EventKind::LeaseGranted { segment: 12 },
            EventKind::LeaseExpired { segment: u32::MAX },
            EventKind::LeaseRequeued { segment: 0 },
            EventKind::SegmentReassembled { segment: 9_999 },
            EventKind::Provisioned { preset: 4 },
            EventKind::Downgraded { user: 2_000_000 },
        ];
        for (i, kind) in kinds.into_iter().enumerate() {
            let ev = Event {
                track: if i % 2 == 0 { i as u16 } else { CONTROL_TRACK },
                slot: (i as u32) * 97 + 3,
                wall_ns: (i as u64) * 1_000_003,
                kind,
            };
            assert_eq!(Event::decode(ev.encode()), Some(ev));
        }
    }

    #[test]
    fn unknown_tag_decodes_to_none() {
        assert_eq!(Event::decode([0xFFu64 << 56, 0, 0]), None);
    }
}

//! Monotonic counters and log-bucketed histograms.
//!
//! All cells are relaxed `AtomicU64`s: updating a counter or observing
//! a histogram sample is one or two atomic RMWs with no allocation, so
//! the always-on meters inside the serving loops cost nanoseconds.
//! Buckets are base-2 (`bucket(v) = 64 - v.leading_zeros()`, bucket 0
//! reserved for zero), which bounds quantile error to 2x — plenty for
//! p50/p95/p99 latency reporting — while keeping the histogram a flat
//! 65-word array. Sums are exact, so aggregate views built on top
//! (e.g. `ControllerTiming`'s nanosecond totals) lose nothing.

use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counter identities recorded across the serving stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterId {
    /// GOP/controller boundary passes.
    Boundaries,
    /// Placement re-plans that actually ran.
    Replans,
    /// Admission-control decisions considered (departs, evictions,
    /// queue scans, abandons).
    Decisions,
    /// Requests admitted onto a shard.
    Admits,
    /// Active users evicted for sustained misses.
    Evicts,
    /// Voluntary departures of active users.
    Departs,
    /// Queued requests that gave up waiting.
    Abandons,
    /// Requests rejected outright.
    Rejects,
    /// Slots executed across all drivers.
    SlotsExecuted,
    /// Core-slots whose deadline miss was DVFS-transition-bound.
    TransitionStalls,
}

impl CounterId {
    /// Every counter, in snapshot order.
    pub const ALL: [CounterId; 10] = [
        CounterId::Boundaries,
        CounterId::Replans,
        CounterId::Decisions,
        CounterId::Admits,
        CounterId::Evicts,
        CounterId::Departs,
        CounterId::Abandons,
        CounterId::Rejects,
        CounterId::SlotsExecuted,
        CounterId::TransitionStalls,
    ];

    /// Stable snake_case name used in snapshots.
    pub fn name(self) -> &'static str {
        match self {
            CounterId::Boundaries => "boundaries",
            CounterId::Replans => "replans",
            CounterId::Decisions => "decisions",
            CounterId::Admits => "admits",
            CounterId::Evicts => "evicts",
            CounterId::Departs => "departs",
            CounterId::Abandons => "abandons",
            CounterId::Rejects => "rejects",
            CounterId::SlotsExecuted => "slots_executed",
            CounterId::TransitionStalls => "transition_stalls",
        }
    }
}

/// Histogram identities (one latency/ratio distribution each).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistId {
    /// Wall nanoseconds spent refreshing/re-running placement, per
    /// driver GOP boundary.
    PlacementNs,
    /// Wall nanoseconds of one controller boundary pass (queue +
    /// membership work).
    BoundaryNs,
    /// Slots a request waited in the queue before admission.
    QueueWaitSlots,
    /// Measured-over-modeled window time ratio, in parts-per-million
    /// (1e6 = wall time exactly matches the model).
    WindowRatioPpm,
}

impl HistId {
    /// Every histogram, in snapshot order.
    pub const ALL: [HistId; 4] = [
        HistId::PlacementNs,
        HistId::BoundaryNs,
        HistId::QueueWaitSlots,
        HistId::WindowRatioPpm,
    ];

    /// Stable snake_case name used in snapshots.
    pub fn name(self) -> &'static str {
        match self {
            HistId::PlacementNs => "placement_ns",
            HistId::BoundaryNs => "boundary_ns",
            HistId::QueueWaitSlots => "queue_wait_slots",
            HistId::WindowRatioPpm => "window_ratio_ppm",
        }
    }
}

const BUCKETS: usize = 65;

/// Base-2 log-bucketed histogram with exact count/sum/max.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `b` (`0` for the zero bucket).
fn bucket_upper(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

impl Histogram {
    /// Records one sample.
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest sample recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Upper-bound estimate of quantile `q` in `[0, 1]`: the inclusive
    /// upper edge of the first bucket whose cumulative count reaches
    /// `q`, clamped to the observed maximum. Exact for the zero bucket;
    /// at most 2x above the true value elsewhere.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, cell) in self.buckets.iter().enumerate() {
            seen += cell.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper(b).min(self.max());
            }
        }
        self.max()
    }

    /// Folds another histogram's samples into this one.
    pub fn absorb(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        self.sum.fetch_add(other.sum(), Ordering::Relaxed);
        self.max.fetch_max(other.max(), Ordering::Relaxed);
    }

    /// Serializable summary (name supplied by the owning registry).
    pub fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let count = self.count();
        HistogramSnapshot {
            name: name.to_string(),
            count,
            sum: self.sum(),
            mean: if count == 0 {
                0.0
            } else {
                self.sum() as f64 / count as f64
            },
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            max: self.max(),
        }
    }
}

/// Point-in-time summary of one [`Histogram`].
#[derive(Debug, Clone, Serialize)]
pub struct HistogramSnapshot {
    /// Stable metric name (see [`HistId::name`]).
    pub name: String,
    /// Samples recorded.
    pub count: u64,
    /// Exact sum of samples.
    pub sum: u64,
    /// Exact mean (`sum / count`, 0 when empty).
    pub mean: f64,
    /// Upper-bound 50th percentile.
    pub p50: u64,
    /// Upper-bound 95th percentile.
    pub p95: u64,
    /// Upper-bound 99th percentile.
    pub p99: u64,
    /// Largest sample.
    pub max: u64,
}

/// Point-in-time value of one counter.
#[derive(Debug, Clone, Serialize)]
pub struct CounterSnapshot {
    /// Stable metric name (see [`CounterId::name`]).
    pub name: String,
    /// Current value.
    pub value: u64,
}

/// The full fixed registry: one cell per [`CounterId`], one
/// [`Histogram`] per [`HistId`]. Cheap enough to own per driver; fold
/// worker-local meters into a central one with [`Metrics::absorb`].
#[derive(Debug, Default)]
pub struct Metrics {
    counters: [AtomicU64; CounterId::ALL.len()],
    hists: [Histogram; HistId::ALL.len()],
}

impl Metrics {
    /// A zeroed registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Adds `v` to a counter.
    #[inline]
    pub fn add(&self, id: CounterId, v: u64) {
        self.counters[id as usize].fetch_add(v, Ordering::Relaxed);
    }

    /// Records one histogram sample.
    #[inline]
    pub fn observe(&self, id: HistId, v: u64) {
        self.hists[id as usize].observe(v);
    }

    /// Current counter value.
    pub fn counter(&self, id: CounterId) -> u64 {
        self.counters[id as usize].load(Ordering::Relaxed)
    }

    /// The histogram behind `id`.
    pub fn hist(&self, id: HistId) -> &Histogram {
        &self.hists[id as usize]
    }

    /// Folds `other`'s counters and histograms into this registry.
    pub fn absorb(&self, other: &Metrics) {
        for (mine, theirs) in self.counters.iter().zip(&other.counters) {
            let v = theirs.load(Ordering::Relaxed);
            if v > 0 {
                mine.fetch_add(v, Ordering::Relaxed);
            }
        }
        for (mine, theirs) in self.hists.iter().zip(&other.hists) {
            mine.absorb(theirs);
        }
    }

    /// Serializable summary of every counter and histogram.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: CounterId::ALL
                .iter()
                .map(|&id| CounterSnapshot {
                    name: id.name().to_string(),
                    value: self.counter(id),
                })
                .collect(),
            histograms: HistId::ALL
                .iter()
                .map(|&id| self.hist(id).snapshot(id.name()))
                .collect(),
        }
    }
}

/// Serializable summary of a [`Metrics`] registry.
#[derive(Debug, Clone, Serialize)]
pub struct MetricsSnapshot {
    /// All counters, in [`CounterId::ALL`] order.
    pub counters: Vec<CounterSnapshot>,
    /// All histograms, in [`HistId::ALL`] order.
    pub histograms: Vec<HistogramSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_u64_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn quantiles_bound_the_true_value_within_2x() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        assert_eq!(h.max(), 1000);
        let p50 = h.quantile(0.50);
        assert!((500..=1023).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile(0.99);
        assert!((990..=1000).contains(&p99), "p99 = {p99}");
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn zero_only_histogram_reports_zero() {
        let h = Histogram::default();
        h.observe(0);
        h.observe(0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn absorb_folds_counters_and_histograms() {
        let a = Metrics::new();
        let b = Metrics::new();
        a.add(CounterId::Boundaries, 3);
        b.add(CounterId::Boundaries, 4);
        b.add(CounterId::Admits, 2);
        a.observe(HistId::PlacementNs, 100);
        b.observe(HistId::PlacementNs, 900);
        a.absorb(&b);
        assert_eq!(a.counter(CounterId::Boundaries), 7);
        assert_eq!(a.counter(CounterId::Admits), 2);
        assert_eq!(a.hist(HistId::PlacementNs).count(), 2);
        assert_eq!(a.hist(HistId::PlacementNs).sum(), 1000);
        assert_eq!(a.hist(HistId::PlacementNs).max(), 900);
    }

    #[test]
    fn snapshot_names_are_stable() {
        let m = Metrics::new();
        let snap = m.snapshot();
        assert_eq!(snap.counters.len(), CounterId::ALL.len());
        assert_eq!(snap.counters[0].name, "boundaries");
        assert_eq!(snap.histograms[0].name, "placement_ns");
    }
}

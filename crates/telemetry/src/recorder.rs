//! Recorder dispatch: the [`Recorder`] trait, the zero-cost
//! [`NoopRecorder`], and the bounded-memory [`FlightRecorder`].

use crate::event::{Event, CONTROL_TRACK};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::ring::EventRing;
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Telemetry sink instrumented code is generic over.
///
/// Dispatch is static: the instrumentation sites monomorphize per
/// recorder type, and `if R::ENABLED` guards let them skip event
/// construction entirely for [`NoopRecorder`], so disabled telemetry
/// compiles down to nothing.
pub trait Recorder {
    /// Whether [`record`](Recorder::record) does anything; call sites
    /// gate event construction on this constant.
    const ENABLED: bool;

    /// Sinks one event. Must be cheap and allocation-free.
    fn record(&self, event: Event);

    /// Folds a worker-local [`Metrics`] registry into the recorder's
    /// aggregate (no-op for [`NoopRecorder`]).
    fn absorb(&self, metrics: &Metrics);
}

/// The disabled recorder: a zero-sized type whose methods inline to
/// nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&self, _event: Event) {}

    #[inline(always)]
    fn absorb(&self, _metrics: &Metrics) {}
}

/// Shared references forward, so `&FlightRecorder` is itself a `Copy`
/// recorder that many drivers can hold at once.
impl<R: Recorder + ?Sized> Recorder for &R {
    const ENABLED: bool = R::ENABLED;

    #[inline]
    fn record(&self, event: Event) {
        (**self).record(event);
    }

    #[inline]
    fn absorb(&self, metrics: &Metrics) {
        (**self).absorb(metrics);
    }
}

/// Bounded-memory flight recorder: per-track lock-free event rings
/// plus an aggregate [`Metrics`] registry.
///
/// Ring 0 holds control-plane events ([`CONTROL_TRACK`]); shard track
/// `t` maps to ring `1 + t % shard_rings`, so each single-threaded
/// driver writes its own ring (single-producer invariant) while the
/// total footprint stays `rings x capacity x 32 B` regardless of run
/// length or user count.
/// Wall stamps are **slot-granular**: the first event of each slot
/// reads the monotonic clock and later events of the same slot reuse
/// the cached stamp, so a burst of per-core events costs one clock
/// read. The stamp cache is racy-by-design (any worker may take the
/// slot's stamp first), which is fine for a flight recorder — the
/// deterministic ordering lives in `(track, slot)`, and the normalized
/// comparison view strips wall stamps entirely.
#[derive(Debug)]
pub struct FlightRecorder {
    rings: Vec<EventRing>,
    metrics: Metrics,
    t0: Instant,
    wall_clock: bool,
    stamp_slot: AtomicU64,
    stamp_ns: AtomicU64,
}

impl FlightRecorder {
    /// A recorder with one control ring plus `shard_rings` worker
    /// rings (min 1), each retaining `capacity` events.
    pub fn new(shard_rings: usize, capacity: usize) -> Self {
        let shard_rings = shard_rings.max(1);
        FlightRecorder {
            rings: (0..1 + shard_rings)
                .map(|_| EventRing::new(capacity))
                .collect(),
            metrics: Metrics::new(),
            t0: Instant::now(),
            wall_clock: true,
            stamp_slot: AtomicU64::new(0),
            stamp_ns: AtomicU64::new(0),
        }
    }

    /// Same geometry, but events are *not* stamped with wall-clock
    /// time: the stream is pure model time, byte-identical across
    /// backends without normalization.
    pub fn modeled(shard_rings: usize, capacity: usize) -> Self {
        let mut r = FlightRecorder::new(shard_rings, capacity);
        r.wall_clock = false;
        r
    }

    /// The wall stamp for `slot`: one clock read per slot, cached for
    /// the rest of the slot's event burst. A stale read under a racing
    /// slot change yields a stamp one slot old — coarse by contract.
    #[inline]
    fn slot_stamp(&self, slot: u32) -> u64 {
        let key = u64::from(slot) + 1;
        if self.stamp_slot.load(Ordering::Relaxed) == key {
            self.stamp_ns.load(Ordering::Relaxed)
        } else {
            let now = self.t0.elapsed().as_nanos() as u64;
            self.stamp_ns.store(now, Ordering::Relaxed);
            self.stamp_slot.store(key, Ordering::Relaxed);
            now
        }
    }

    #[inline]
    fn ring_for(&self, track: u16) -> &EventRing {
        if track == CONTROL_TRACK {
            &self.rings[0]
        } else if (track as usize) < self.rings.len() - 1 {
            // Every track has its own ring — the common case, kept
            // free of the wrap-around division below.
            &self.rings[1 + track as usize]
        } else {
            &self.rings[1 + track as usize % (self.rings.len() - 1)]
        }
    }

    /// The aggregate metrics registry (counters + histograms).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// All retained events, ring by ring (control ring first), oldest
    /// first within each ring.
    pub fn events(&self) -> Vec<Event> {
        let mut out = Vec::new();
        for ring in &self.rings {
            out.extend(ring.events());
        }
        out
    }

    /// Retained events with wall-clock fields stripped — the
    /// deterministic, backend-independent view (see [`normalized`]).
    pub fn normalized_events(&self) -> Vec<Event> {
        normalized(&self.events())
    }

    /// `(slot, depth)` series from the control ring's
    /// [`QueueDepth`](crate::EventKind::QueueDepth) events.
    pub fn queue_depths(&self) -> Vec<(u32, u32)> {
        self.rings[0]
            .events()
            .into_iter()
            .filter_map(|e| match e.kind {
                crate::EventKind::QueueDepth { depth } => Some((e.slot, depth)),
                _ => None,
            })
            .collect()
    }

    /// Total events recorded across all rings (including overwritten).
    pub fn recorded(&self) -> u64 {
        self.rings.iter().map(|r| r.recorded()).sum()
    }

    /// Total events lost to bounded retention across all rings.
    pub fn dropped(&self) -> u64 {
        self.rings.iter().map(|r| r.dropped()).sum()
    }

    /// Serializable summary: every counter/histogram plus per-ring
    /// retention stats.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            metrics: self.metrics.snapshot(),
            rings: self
                .rings
                .iter()
                .enumerate()
                .map(|(i, r)| RingStat {
                    ring: i,
                    capacity: r.capacity(),
                    recorded: r.recorded(),
                    dropped: r.dropped(),
                })
                .collect(),
        }
    }
}

impl Recorder for FlightRecorder {
    const ENABLED: bool = true;

    #[inline]
    fn record(&self, mut event: Event) {
        if self.wall_clock && event.wall_ns == 0 {
            event.wall_ns = self.slot_stamp(event.slot);
        }
        self.ring_for(event.track).write(&event);
    }

    #[inline]
    fn absorb(&self, metrics: &Metrics) {
        self.metrics.absorb(metrics);
    }
}

/// Strips wall-clock fields from an event stream, leaving the pure
/// model-time view. Two backends replaying the same trace must produce
/// identical normalized streams — the repo's sim-vs-pool bit-identity
/// invariant extended to telemetry.
pub fn normalized(events: &[Event]) -> Vec<Event> {
    events.iter().map(|&e| Event { wall_ns: 0, ..e }).collect()
}

/// Per-ring retention statistics.
#[derive(Debug, Clone, Serialize)]
pub struct RingStat {
    /// Ring index (0 = control plane).
    pub ring: usize,
    /// Retention capacity in events.
    pub capacity: usize,
    /// Total events ever written to this ring.
    pub recorded: u64,
    /// Events lost to the bounded retention window.
    pub dropped: u64,
}

/// Serializable summary of a [`FlightRecorder`].
#[derive(Debug, Clone, Serialize)]
pub struct TelemetrySnapshot {
    /// Counter and histogram summaries.
    pub metrics: MetricsSnapshot,
    /// Per-ring retention statistics.
    pub rings: Vec<RingStat>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::metrics::CounterId;

    #[test]
    fn routes_control_and_shard_tracks_to_distinct_rings() {
        let rec = FlightRecorder::modeled(2, 16);
        rec.record(Event::new(CONTROL_TRACK, 0, EventKind::GopBoundary));
        rec.record(Event::new(0, 1, EventKind::Admit { user: 1 }));
        rec.record(Event::new(1, 2, EventKind::Admit { user: 2 }));
        rec.record(Event::new(3, 3, EventKind::Admit { user: 3 })); // wraps to ring 2
        assert_eq!(rec.rings[0].len(), 1);
        assert_eq!(rec.rings[1].len(), 1);
        assert_eq!(rec.rings[2].len(), 2);
        assert_eq!(rec.events().len(), 4);
    }

    #[test]
    fn modeled_recorder_streams_are_already_normalized() {
        let rec = FlightRecorder::modeled(1, 8);
        rec.record(Event::new(0, 5, EventKind::Replan { users: 3 }));
        let events = rec.events();
        assert_eq!(events, normalized(&events));
        assert_eq!(events[0].wall_ns, 0);
    }

    #[test]
    fn wall_clock_recorder_stamps_and_normalizer_strips() {
        let rec = FlightRecorder::new(1, 8);
        // Busy-wait so the monotonic stamp is nonzero even on coarse
        // clocks.
        let t = Instant::now();
        while t.elapsed().as_nanos() == 0 {
            std::hint::spin_loop();
        }
        rec.record(Event::new(0, 5, EventKind::GopBoundary));
        let events = rec.events();
        assert!(events[0].wall_ns > 0);
        assert_eq!(normalized(&events)[0].wall_ns, 0);
    }

    #[test]
    fn reference_recorder_forwards_and_absorbs() {
        let rec = FlightRecorder::modeled(1, 8);
        let by_ref: &FlightRecorder = &rec;
        const { assert!(<&FlightRecorder as Recorder>::ENABLED) };
        by_ref.record(Event::new(0, 1, EventKind::GopBoundary));
        let m = Metrics::new();
        m.add(CounterId::Boundaries, 2);
        by_ref.absorb(&m);
        assert_eq!(rec.events().len(), 1);
        assert_eq!(rec.metrics().counter(CounterId::Boundaries), 2);
    }
}

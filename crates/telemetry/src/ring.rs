//! Lock-free bounded event ring with overwrite-oldest retention.
//!
//! Single-producer seqlock design, no `unsafe`: each slot holds a
//! sequence word plus the three encoded event words, all plain
//! `AtomicU64`s. The producer bumps the sequence to an odd value,
//! writes the payload, then publishes the even successor; readers
//! re-check the sequence around the payload load and skip torn slots.
//! A full ring overwrites the oldest entry, so memory stays fixed no
//! matter how long the run is; `dropped()` reports how many events the
//! retention window lost.
//!
//! Writes are a handful of relaxed/release stores — no allocation, no
//! locks — so the enabled recorder stays off the allocator on the hot
//! path (proven by `tests/zero_alloc.rs`).

use crate::event::Event;
use std::sync::atomic::{AtomicU64, Ordering};

struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; 3],
}

/// Fixed-capacity single-producer ring of encoded [`Event`]s.
pub struct EventRing {
    slots: Vec<Slot>,
    /// Total events ever written; `head & mask` is the next slot.
    head: AtomicU64,
    /// `capacity - 1`; capacity is rounded up to a power of two so the
    /// hot-path slot index is a mask, not a 64-bit division.
    mask: u64,
}

impl std::fmt::Debug for EventRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventRing")
            .field("capacity", &self.capacity())
            .field("recorded", &self.recorded())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl EventRing {
    /// A ring retaining the last `capacity` events (min 1, rounded up
    /// to the next power of two).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1).next_power_of_two();
        let slots: Vec<Slot> = (0..capacity)
            .map(|_| Slot {
                seq: AtomicU64::new(0),
                words: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
            })
            .collect();
        EventRing {
            slots,
            head: AtomicU64::new(0),
            mask: capacity as u64 - 1,
        }
    }

    /// Retention capacity in events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever written (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Events lost to the bounded retention window.
    pub fn dropped(&self) -> u64 {
        self.recorded().saturating_sub(self.capacity() as u64)
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.recorded().min(self.capacity() as u64) as usize
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.recorded() == 0
    }

    /// Appends `event`, overwriting the oldest entry when full.
    ///
    /// Single-producer: callers must serialize writes per ring (the
    /// [`FlightRecorder`](crate::FlightRecorder) routes each worker to
    /// its own ring).
    #[inline]
    pub fn write(&self, event: &Event) {
        let head = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(head & self.mask) as usize];
        // Odd sequence = write in progress; readers back off.
        let seq = slot.seq.load(Ordering::Relaxed);
        slot.seq.store(seq + 1, Ordering::Release);
        let words = event.encode();
        for (cell, word) in slot.words.iter().zip(words) {
            cell.store(word, Ordering::Release);
        }
        slot.seq.store(seq + 2, Ordering::Release);
        self.head.store(head + 1, Ordering::Release);
    }

    /// Snapshot of the retained events, oldest first. Slots torn by a
    /// concurrent write are skipped.
    pub fn events(&self) -> Vec<Event> {
        let head = self.recorded();
        let cap = self.slots.len() as u64;
        let start = head.saturating_sub(cap);
        let mut out = Vec::with_capacity((head - start) as usize);
        for i in start..head {
            let slot = &self.slots[(i % cap) as usize];
            let seq_before = slot.seq.load(Ordering::Acquire);
            if seq_before % 2 == 1 {
                continue; // write in flight
            }
            let words = [
                slot.words[0].load(Ordering::Acquire),
                slot.words[1].load(Ordering::Acquire),
                slot.words[2].load(Ordering::Acquire),
            ];
            if slot.seq.load(Ordering::Acquire) != seq_before {
                continue; // torn read
            }
            if let Some(ev) = Event::decode(words) {
                out.push(ev);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(slot: u32) -> Event {
        Event::new(0, slot, EventKind::Admit { user: slot })
    }

    #[test]
    fn retains_everything_under_capacity() {
        let ring = EventRing::new(8);
        for s in 0..5 {
            ring.write(&ev(s));
        }
        let got = ring.events();
        assert_eq!(got.len(), 5);
        assert_eq!(got.first().unwrap().slot, 0);
        assert_eq!(got.last().unwrap().slot, 4);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn wraps_keeping_the_newest_events() {
        let ring = EventRing::new(4);
        for s in 0..10 {
            ring.write(&ev(s));
        }
        let got = ring.events();
        assert_eq!(got.len(), 4);
        assert_eq!(
            got.iter().map(|e| e.slot).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
        assert_eq!(ring.recorded(), 10);
        assert_eq!(ring.dropped(), 6);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let ring = EventRing::new(0);
        ring.write(&ev(1));
        ring.write(&ev(2));
        assert_eq!(ring.capacity(), 1);
        assert_eq!(ring.events().len(), 1);
        assert_eq!(ring.events()[0].slot, 2);
    }
}

//! Event-stream exporters: JSON-lines and Chrome/Perfetto
//! `trace_event` JSON.
//!
//! Both formats are hand-assembled from fixed-shape records (labels
//! are static identifiers, all values numeric/boolean), so no escaping
//! machinery is needed and the output is stable across runs modulo the
//! wall-clock fields.

use crate::event::{Event, EventKind, CONTROL_TRACK};

fn push_common(out: &mut String, e: &Event) {
    out.push_str(&format!(
        "{{\"kind\":\"{}\",\"track\":{},\"slot\":{},\"wall_ns\":{}",
        e.kind.label(),
        e.track,
        e.slot,
        e.wall_ns
    ));
}

/// One compact JSON object per event, newline-separated — greppable
/// and streamable (`jq` friendly).
pub fn json_lines(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        push_common(&mut out, e);
        match e.kind {
            EventKind::GopBoundary => {}
            EventKind::Replan { users } => out.push_str(&format!(",\"users\":{users}")),
            EventKind::Admit { user }
            | EventKind::Evict { user }
            | EventKind::Depart { user }
            | EventKind::Abandon { user }
            | EventKind::Reject { user }
            | EventKind::Downgraded { user } => out.push_str(&format!(",\"user\":{user}")),
            EventKind::Provisioned { preset } => out.push_str(&format!(",\"preset\":{preset}")),
            EventKind::QueueDepth { depth } => out.push_str(&format!(",\"depth\":{depth}")),
            EventKind::LeaseGranted { segment }
            | EventKind::LeaseExpired { segment }
            | EventKind::LeaseRequeued { segment }
            | EventKind::SegmentReassembled { segment } => {
                out.push_str(&format!(",\"segment\":{segment}"))
            }
            EventKind::SlotCore {
                core,
                busy_ns,
                carry,
                transition_bound,
            } => out.push_str(&format!(
                ",\"core\":{core},\"busy_ns\":{busy_ns},\"carry\":{carry},\"transition_bound\":{transition_bound}"
            )),
        }
        out.push_str("}\n");
    }
    out
}

/// Perfetto/`chrome://tracing` process id for a track.
fn pid(track: u16) -> u32 {
    // Track 0 is a valid shard; keep pids 1-based so the control
    // plane can sit at pid 0 visibly on top.
    if track == CONTROL_TRACK {
        0
    } else {
        1 + u32::from(track)
    }
}

/// Chrome `trace_event` JSON (the "JSON Array Format" with a
/// `traceEvents` wrapper) laid out on the *modeled* timeline:
/// timestamps are `slot x slot_secs` microseconds, durations are the
/// modeled per-core busy time. Open the file directly in
/// <https://ui.perfetto.dev> or `chrome://tracing`.
///
/// Mapping: each shard is a process (`pid = shard + 1`, control plane
/// is `pid 0`), each core a thread; [`EventKind::SlotCore`] becomes a
/// complete ("X") span, admission/control events become instants
/// ("i"), and [`EventKind::QueueDepth`] becomes a counter ("C")
/// series.
pub fn chrome_trace(events: &[Event], slot_secs: f64) -> String {
    let slot_us = slot_secs * 1e6;
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut named: Vec<u16> = Vec::new();
    let emit = |out: &mut String, first: &mut bool, record: String| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(&record);
    };
    for e in events {
        if !named.contains(&e.track) {
            named.push(e.track);
            let name = if e.track == CONTROL_TRACK {
                "control-plane".to_string()
            } else {
                format!("shard {}", e.track)
            };
            emit(
                &mut out,
                &mut first,
                format!(
                    "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{},\"args\":{{\"name\":\"{}\"}}}}",
                    pid(e.track),
                    name
                ),
            );
        }
        let ts = e.slot as f64 * slot_us;
        match e.kind {
            EventKind::SlotCore {
                core,
                busy_ns,
                carry,
                transition_bound,
            } => emit(
                &mut out,
                &mut first,
                format!(
                    "{{\"ph\":\"X\",\"name\":\"slot\",\"cat\":\"core\",\"pid\":{},\"tid\":{},\"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"carry\":{},\"transition_bound\":{}}}}}",
                    pid(e.track),
                    core,
                    ts,
                    f64::from(busy_ns) / 1e3,
                    carry,
                    transition_bound
                ),
            ),
            EventKind::QueueDepth { depth } => emit(
                &mut out,
                &mut first,
                format!(
                    "{{\"ph\":\"C\",\"name\":\"queue_depth\",\"pid\":{},\"ts\":{:.3},\"args\":{{\"depth\":{}}}}}",
                    pid(e.track),
                    ts,
                    depth
                ),
            ),
            EventKind::LeaseGranted { segment }
            | EventKind::LeaseExpired { segment }
            | EventKind::LeaseRequeued { segment }
            | EventKind::SegmentReassembled { segment } => emit(
                &mut out,
                &mut first,
                format!(
                    "{{\"ph\":\"i\",\"name\":\"{}\",\"cat\":\"lease\",\"pid\":{},\"tid\":0,\"ts\":{:.3},\"s\":\"p\",\"args\":{{\"segment\":{}}}}}",
                    e.kind.label(),
                    pid(e.track),
                    ts,
                    segment
                ),
            ),
            _ => emit(
                &mut out,
                &mut first,
                format!(
                    "{{\"ph\":\"i\",\"name\":\"{}\",\"cat\":\"control\",\"pid\":{},\"tid\":0,\"ts\":{:.3},\"s\":\"p\"}}",
                    e.kind.label(),
                    pid(e.track),
                    ts
                ),
            ),
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn sample() -> Vec<Event> {
        vec![
            Event::new(CONTROL_TRACK, 0, EventKind::GopBoundary),
            Event::new(CONTROL_TRACK, 0, EventKind::Admit { user: 7 }),
            Event::new(CONTROL_TRACK, 4, EventKind::QueueDepth { depth: 2 }),
            Event::new(
                1,
                4,
                EventKind::SlotCore {
                    core: 3,
                    busy_ns: 41_666_667,
                    carry: false,
                    transition_bound: false,
                },
            ),
            Event::new(2, 5, EventKind::LeaseGranted { segment: 6 }),
            Event::new(2, 9, EventKind::LeaseExpired { segment: 6 }),
            Event::new(CONTROL_TRACK, 9, EventKind::LeaseRequeued { segment: 6 }),
            Event::new(
                CONTROL_TRACK,
                14,
                EventKind::SegmentReassembled { segment: 6 },
            ),
        ]
    }

    #[test]
    fn json_lines_has_one_object_per_event() {
        let text = json_lines(&sample());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 8);
        assert!(lines[0].starts_with("{\"kind\":\"gop_boundary\""));
        assert!(lines[1].contains("\"user\":7"));
        assert!(lines[2].contains("\"depth\":2"));
        assert!(lines[3].contains("\"busy_ns\":41666667"));
        assert!(lines[4].contains("\"kind\":\"lease_granted\""));
        assert!(lines[4].contains("\"segment\":6"));
        assert!(lines[7].contains("\"kind\":\"segment_reassembled\""));
        assert!(lines.iter().all(|l| l.ends_with('}')));
    }

    #[test]
    fn chrome_trace_emits_spans_instants_counters_and_metadata() {
        let text = chrome_trace(&sample(), 1.0 / 24.0);
        assert!(text.starts_with("{\"traceEvents\":["));
        assert!(text.ends_with("]}"));
        assert!(text.contains("\"ph\":\"M\""));
        assert!(text.contains("\"name\":\"control-plane\""));
        assert!(text.contains("\"name\":\"shard 1\""));
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"ph\":\"i\""));
        assert!(text.contains("\"ph\":\"C\""));
        // Slot 4 at 24 fps = 166666.667 us on the modeled timeline.
        assert!(text.contains("\"ts\":166666.667"));
        // 41,666,667 ns busy = 41666.667 us duration.
        assert!(text.contains("\"dur\":41666.667"));
        // No trailing comma / balanced braces — parse sanity by eye:
        assert!(!text.contains(",]"));
    }

    #[test]
    fn chrome_trace_puts_lease_instants_on_the_node_track() {
        let text = chrome_trace(&sample(), 1.0 / 24.0);
        // Lease grant/expiry land on the leasing node's track (track 2
        // -> pid 3), requeue/reassembly on the control plane (pid 0).
        assert!(text.contains(
            "{\"ph\":\"i\",\"name\":\"lease_granted\",\"cat\":\"lease\",\"pid\":3,\"tid\":0,"
        ));
        assert!(text.contains("\"name\":\"lease_expired\",\"cat\":\"lease\",\"pid\":3,"));
        assert!(text.contains("\"name\":\"lease_requeued\",\"cat\":\"lease\",\"pid\":0,"));
        assert!(text.contains("\"name\":\"segment_reassembled\",\"cat\":\"lease\",\"pid\":0,"));
        assert!(text.contains("\"args\":{\"segment\":6}"));
        assert!(text.contains("\"name\":\"shard 2\""));
    }
}

//! # medvt-analyze
//!
//! Content analysis and tiling for the `medvt` reproduction of *"Online
//! Efficient Bio-Medical Video Transcoding on MPSoCs Through
//! Content-Aware Workload Allocation"* (Iranfar et al., DATE 2018).
//!
//! This crate implements the paper's §III-A/§III-B machinery:
//!
//! * [`TextureClass`] / [`measure_texture`] — the coefficient-of-
//!   variation texture classifier of Eq. (1);
//! * [`probe_motion`] — the 6-point motion probe of Eqs. (2)–(3)
//!   (4 corners, center, maximum point; weights α=1, β=3, γ=3,
//!   threshold M_th = 3);
//! * [`Tiling`] — validated, 8-aligned exact frame partitions;
//! * [`Retiler`] — the content-aware re-tiler that grows quiet borders
//!   in 25% steps and carves the busy center into ≥4 tiles;
//! * [`CapacityBalancedTiler`] — the one-tile-per-core baseline of
//!   Khan et al. \[19\], the paper's comparison point.
//!
//! # Examples
//!
//! ```
//! use medvt_analyze::{AnalyzerConfig, Retiler};
//! use medvt_frame::synth::{BodyPart, PhantomVideo};
//! use medvt_frame::Resolution;
//!
//! let video = PhantomVideo::builder(BodyPart::Brain)
//!     .resolution(Resolution::new(320, 240))
//!     .seed(1)
//!     .build();
//! let f0 = video.render(0);
//! let f1 = video.render(4);
//! let retiler = Retiler::new(AnalyzerConfig {
//!     min_tile_width: 32,
//!     min_tile_height: 32,
//!     ..Default::default()
//! })?;
//! let outcome = retiler.retile(f1.y(), Some(f0.y()));
//! assert!(outcome.tiling.len() >= 4);
//! # Ok::<(), String>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod baseline;
mod config;
mod motion_probe;
mod retile;
mod texture;
mod tiling;

pub use baseline::CapacityBalancedTiler;
pub use config::AnalyzerConfig;
pub use motion_probe::{probe_motion, MotionScore};
pub use retile::{BorderWidths, RetileOutcome, Retiler};
pub use texture::{measure_texture, TextureClass, TextureMeasure};
pub use tiling::{analyze_tiling, TileAnalysis, Tiling};

//! The low-overhead motion probe — paper Eqs. (2)–(3).
//!
//! Instead of estimating motion vectors, the analyzer compares a
//! handful of salient samples between the current and previous frame:
//! the four tile corners, the tile center, and the location of the
//! previous frame's maximum sample. The weighted count of changed
//! samples, `M = α·Σxᵢ + β·c + γ·m`, thresholds into a binary
//! low/high motion class.

use crate::AnalyzerConfig;
use medvt_frame::{Plane, Rect, RegionStats};
use medvt_motion::MotionLevel;
use serde::{Deserialize, Serialize};

/// Result of probing one tile for motion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MotionScore {
    /// The weighted score `M` of Eq. (2).
    pub m: f64,
    /// Classified motion level (Eq. 3).
    pub level: MotionLevel,
    /// How many of the four corner samples changed.
    pub corners_changed: u8,
    /// Whether the center sample changed.
    pub center_changed: bool,
    /// Whether the previous-frame maximum point changed.
    pub max_changed: bool,
}

/// Probes `rect` for motion between `prev` and `cur`.
///
/// Samples compared: the four inner corners of the tile, its center,
/// and the coordinates of `prev`'s maximum sample inside the tile
/// (medical imaging: the brightest structure is diagnostic content, so
/// its movement matters most — hence γ = 3).
///
/// # Panics
///
/// Panics when the planes differ in size or `rect` is empty or outside
/// them.
pub fn probe_motion(cur: &Plane, prev: &Plane, rect: &Rect, cfg: &AnalyzerConfig) -> MotionScore {
    assert_eq!(cur.width(), prev.width(), "plane widths differ");
    assert_eq!(cur.height(), prev.height(), "plane heights differ");
    assert!(!rect.is_empty(), "cannot probe an empty rect");
    assert!(
        cur.bounds().contains_rect(rect),
        "rect {rect} outside planes"
    );
    let differs = |x: usize, y: usize| -> bool {
        let a = cur.get(x, y) as i16;
        let b = prev.get(x, y) as i16;
        (a - b).unsigned_abs() > cfg.pixel_tolerance as u16
    };
    let corners = [
        (rect.x, rect.y),
        (rect.right() - 1, rect.y),
        (rect.x, rect.bottom() - 1),
        (rect.right() - 1, rect.bottom() - 1),
    ];
    let corners_changed = corners.iter().filter(|&&(x, y)| differs(x, y)).count() as u8;
    let (cx, cy) = rect.center();
    let center_changed = differs(cx, cy);
    let (mx, my) = RegionStats::of(prev, rect).max_pos;
    let max_changed = differs(mx, my);
    let m = cfg.alpha * corners_changed as f64
        + cfg.beta * f64::from(center_changed)
        + cfg.gamma * f64::from(max_changed);
    let level = if m < cfg.motion_threshold {
        MotionLevel::Low
    } else {
        MotionLevel::High
    };
    MotionScore {
        m,
        level,
        corners_changed,
        center_changed,
        max_changed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medvt_frame::synth::{BodyPart, MotionPattern, PhantomVideo};
    use medvt_frame::Resolution;

    fn cfg() -> AnalyzerConfig {
        AnalyzerConfig::default()
    }

    #[test]
    fn identical_frames_are_low_motion() {
        let p = Plane::filled(64, 64, 90);
        let s = probe_motion(&p, &p, &Rect::frame(64, 64), &cfg());
        assert_eq!(s.m, 0.0);
        assert_eq!(s.level, MotionLevel::Low);
        assert_eq!(s.corners_changed, 0);
        assert!(!s.center_changed);
        assert!(!s.max_changed);
    }

    #[test]
    fn center_change_alone_crosses_threshold() {
        // β = 3 = M_th: a moving center is High motion by itself.
        let prev = Plane::filled(64, 64, 90);
        let mut cur = prev.clone();
        let r = Rect::frame(64, 64);
        let (cx, cy) = r.center();
        cur.set(cx, cy, 200);
        let s = probe_motion(&cur, &prev, &r, &cfg());
        assert!(s.center_changed);
        assert_eq!(s.m, 3.0);
        assert_eq!(s.level, MotionLevel::High);
    }

    #[test]
    fn max_point_movement_crosses_threshold() {
        let mut prev = Plane::filled(64, 64, 50);
        prev.set(10, 10, 255); // bright structure
        let mut cur = prev.clone();
        cur.set(10, 10, 50); // structure moved away
        cur.set(14, 10, 255);
        let s = probe_motion(&cur, &prev, &Rect::frame(64, 64), &cfg());
        assert!(s.max_changed);
        assert_eq!(s.level, MotionLevel::High);
    }

    #[test]
    fn corner_changes_need_three_to_trigger() {
        // Pin the maximum point away from the corners so only the α
        // term reacts.
        let mut prev = Plane::filled(64, 64, 50);
        prev.set(32, 32, 210);
        let r = Rect::frame(64, 64);
        // Two corners changed: M = 2 < 3 → Low.
        let mut cur = prev.clone();
        cur.set(0, 0, 200);
        cur.set(63, 0, 200);
        let s = probe_motion(&cur, &prev, &r, &cfg());
        assert_eq!(s.corners_changed, 2);
        assert!(!s.max_changed);
        assert_eq!(s.level, MotionLevel::Low);
        // Three corners: M = 3 → High.
        cur.set(0, 63, 200);
        let s = probe_motion(&cur, &prev, &r, &cfg());
        assert_eq!(s.corners_changed, 3);
        assert_eq!(s.level, MotionLevel::High);
    }

    #[test]
    fn tolerance_absorbs_noise() {
        let prev = Plane::filled(64, 64, 100);
        let mut cur = Plane::filled(64, 64, 100);
        // ±3 jitter everywhere: within tolerance.
        for (i, s) in cur.samples_mut().iter_mut().enumerate() {
            *s = (100 + (i % 7) as i32 - 3) as u8;
        }
        let s = probe_motion(&cur, &prev, &Rect::frame(64, 64), &cfg());
        assert_eq!(s.level, MotionLevel::Low, "m={}", s.m);
    }

    #[test]
    fn phantom_center_tile_high_corner_tile_low() {
        let v = PhantomVideo::builder(BodyPart::Bones)
            .resolution(Resolution::new(160, 120))
            .motion(MotionPattern::Pan { dx: 1.5, dy: 0.0 })
            .seed(4)
            .build();
        let f0 = v.render(0);
        let f1 = v.render(4);
        let c = cfg();
        let corner = probe_motion(f1.y(), f0.y(), &Rect::new(0, 0, 40, 32), &c);
        assert_eq!(corner.level, MotionLevel::Low, "corner m={}", corner.m);
        let center = probe_motion(f1.y(), f0.y(), &Rect::new(48, 40, 64, 40), &c);
        assert_eq!(center.level, MotionLevel::High, "center m={}", center.m);
    }

    #[test]
    fn max_score_is_ten_with_paper_weights() {
        let prev = Plane::filled(16, 16, 0);
        let cur = Plane::filled(16, 16, 255);
        let s = probe_motion(&cur, &prev, &Rect::frame(16, 16), &cfg());
        assert_eq!(s.m, 4.0 + 3.0 + 3.0);
        assert_eq!(s.level, MotionLevel::High);
    }
}

//! Analyzer configuration: the thresholds and weights of paper
//! Eqs. (1)–(3) and the geometric limits of the re-tiler (§III-B).

use serde::{Deserialize, Serialize};

/// All tunables of the content analyzer and re-tiler.
///
/// Defaults implement the paper's choices: texture thresholds on the
/// coefficient of variation, motion weights α=1, β=3, γ=3 with
/// threshold M_th = 3, 25% growth steps, and at least 4 tiles for the
/// high-activity center.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnalyzerConfig {
    /// CV at or below which texture is Low (`T_th,l` in Eq. 1).
    pub texture_low: f64,
    /// CV above which texture is High (`T_th,h` in Eq. 1).
    pub texture_high: f64,
    /// Absolute luma standard deviation at or below which a region is
    /// Low texture regardless of CV. CV (σ/μ) is scale-invariant, so a
    /// near-black border with faint residual glow can show a large CV
    /// while carrying almost no codable AC energy; the paper's clinical
    /// material has hard-black borders where this never arises, but a
    /// robust classifier needs the absolute floor.
    pub texture_stddev_floor: f64,
    /// Weight of the four corner comparisons (α in Eq. 2).
    pub alpha: f64,
    /// Weight of the center comparison (β in Eq. 2).
    pub beta: f64,
    /// Weight of the maximum-point comparison (γ in Eq. 2).
    pub gamma: f64,
    /// Motion threshold `M_th` of Eq. 3.
    pub motion_threshold: f64,
    /// Luma tolerance for "pixels are equal": differences at or below
    /// this are treated as equal, absorbing sensor/speckle noise.
    pub pixel_tolerance: u8,
    /// Minimum tile width in samples (8-aligned).
    pub min_tile_width: usize,
    /// Minimum tile height in samples (8-aligned).
    pub min_tile_height: usize,
    /// Maximum number of tiles in a frame.
    pub max_tiles: usize,
    /// Minimum number of tiles covering the high-activity center
    /// (paper: 4).
    pub min_center_tiles: usize,
    /// Border growth step as a fraction of the current size (paper:
    /// 25%).
    pub growth_step: f64,
}

impl AnalyzerConfig {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.texture_low >= 0.0 && self.texture_low < self.texture_high) {
            return Err(format!(
                "texture thresholds must satisfy 0 <= low < high, got {} / {}",
                self.texture_low, self.texture_high
            ));
        }
        if !self.min_tile_width.is_multiple_of(8) || !self.min_tile_height.is_multiple_of(8) {
            return Err("minimum tile size must be 8-aligned".into());
        }
        if self.min_tile_width == 0 || self.min_tile_height == 0 {
            return Err("minimum tile size must be non-zero".into());
        }
        if self.max_tiles < self.min_center_tiles {
            return Err(format!(
                "max tiles {} below min center tiles {}",
                self.max_tiles, self.min_center_tiles
            ));
        }
        if !(0.0 < self.growth_step && self.growth_step <= 1.0) {
            return Err("growth step must be in (0, 1]".into());
        }
        Ok(())
    }
}

impl Default for AnalyzerConfig {
    fn default() -> Self {
        // Texture thresholds are content-calibrated (the paper tuned
        // theirs to the partners' clinical videos); these defaults are
        // calibrated to the phantom suite in `medvt_frame::synth`.
        Self {
            texture_low: 0.12,
            texture_high: 0.35,
            texture_stddev_floor: 6.0,
            alpha: 1.0,
            beta: 3.0,
            gamma: 3.0,
            motion_threshold: 3.0,
            pixel_tolerance: 3,
            min_tile_width: 64,
            min_tile_height: 64,
            max_tiles: 16,
            min_center_tiles: 4,
            growth_step: 0.25,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_matches_paper() {
        let cfg = AnalyzerConfig::default();
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.alpha, 1.0);
        assert_eq!(cfg.beta, 3.0);
        assert_eq!(cfg.gamma, 3.0);
        assert_eq!(cfg.motion_threshold, 3.0);
        assert_eq!(cfg.min_center_tiles, 4);
        assert!((cfg.growth_step - 0.25).abs() < 1e-12);
    }

    #[test]
    fn validation_catches_bad_thresholds() {
        let cfg = AnalyzerConfig {
            texture_low: 0.5,
            texture_high: 0.4,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_catches_unaligned_min_tile() {
        let cfg = AnalyzerConfig {
            min_tile_width: 60,
            ..Default::default()
        };
        assert!(cfg.validate().unwrap_err().contains("8-aligned"));
    }

    #[test]
    fn validation_catches_tile_budget_conflict() {
        let cfg = AnalyzerConfig {
            max_tiles: 3,
            min_center_tiles: 4,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_catches_bad_growth() {
        let cfg = AnalyzerConfig {
            growth_step: 0.0,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
    }
}

//! Content-aware re-tiling — paper §III-B.
//!
//! Medical frames concentrate diagnostic content in the center and
//! keep corners/borders dark and still. The re-tiler exploits this by
//! *growing* border tiles (in 25% steps, width before height, while
//! their texture **and** motion stay low) and carving the remaining
//! center into at least four similar-size tiles, more when the center
//! texture is high.
//!
//! Geometry note: the paper grows the four corner tiles individually
//! and then handles border remainders. This reconstruction grows the
//! four *sides* (left/right/top/bottom), which yields the same ring
//! structure on center-weighted medical content while guaranteeing the
//! result is an exact, 8-aligned partition — see DESIGN.md.

use crate::motion_probe::probe_motion;
use crate::texture::{measure_texture, TextureClass};
use crate::tiling::{analyze_tiling, TileAnalysis, Tiling};
use crate::AnalyzerConfig;
use medvt_frame::{Plane, Rect};
use medvt_motion::MotionLevel;
use serde::{Deserialize, Serialize};

/// How far each border grew before hitting texture or motion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BorderWidths {
    /// Left border width in samples.
    pub left: usize,
    /// Right border width in samples.
    pub right: usize,
    /// Top border height in samples.
    pub top: usize,
    /// Bottom border height in samples.
    pub bottom: usize,
}

/// The re-tiler's product: a validated tiling plus the per-tile
/// analysis that justified it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetileOutcome {
    /// The new tiling.
    pub tiling: Tiling,
    /// Texture/motion analysis of every tile of the new tiling.
    pub analyses: Vec<TileAnalysis>,
    /// The grown border extents.
    pub borders: BorderWidths,
}

/// The content-aware re-tiler.
#[derive(Debug, Clone, Copy)]
pub struct Retiler {
    cfg: AnalyzerConfig,
}

impl Retiler {
    /// Creates a re-tiler.
    ///
    /// # Errors
    ///
    /// Returns the configuration's validation error, if any.
    pub fn new(cfg: AnalyzerConfig) -> Result<Self, String> {
        cfg.validate()?;
        Ok(Self { cfg })
    }

    /// The active configuration.
    pub fn config(&self) -> &AnalyzerConfig {
        &self.cfg
    }

    /// Re-tiles a frame based on its content.
    ///
    /// `prev` is the previous frame's luma (motion probing); `None`
    /// treats everything as low motion, as on the first frame.
    ///
    /// # Panics
    ///
    /// Panics when the plane is not 8-aligned or smaller than four
    /// minimum tiles.
    pub fn retile(&self, cur: &Plane, prev: Option<&Plane>) -> RetileOutcome {
        let frame = cur.bounds();
        assert!(
            frame.w.is_multiple_of(8) && frame.h.is_multiple_of(8),
            "frame must be 8-aligned"
        );
        assert!(
            frame.w >= 2 * self.cfg.min_tile_width && frame.h >= 2 * self.cfg.min_tile_height,
            "frame {frame} too small to re-tile"
        );

        // Phase 1 (paper: corner/border growth): grow each side while
        // the newly added strip stays low-texture AND low-motion.
        let max_lr = round_down8(frame.w / 3);
        let max_tb = round_down8(frame.h / 3);
        let left = self.grow_side(cur, prev, Side::Left, max_lr);
        let right = self.grow_side(cur, prev, Side::Right, max_lr);
        let top = self.grow_side(cur, prev, Side::Top, max_tb);
        let bottom = self.grow_side(cur, prev, Side::Bottom, max_tb);
        let borders = BorderWidths {
            left,
            right,
            top,
            bottom,
        };

        // Phase 2: assemble the ring tiles.
        let w = frame.w;
        let h = frame.h;
        let cw = w - left - right; // center width
        let ch = h - top - bottom;
        let mut tiles: Vec<Rect> = Vec::new();
        let mut push = |r: Rect| {
            if !r.is_empty() {
                tiles.push(r);
            }
        };
        push(Rect::new(0, 0, left, top));
        push(Rect::new(w - right, 0, right, top));
        push(Rect::new(0, h - bottom, left, bottom));
        push(Rect::new(w - right, h - bottom, right, bottom));
        push(Rect::new(left, 0, cw, top));
        push(Rect::new(left, h - bottom, cw, bottom));
        push(Rect::new(0, top, left, ch));
        push(Rect::new(w - right, top, right, ch));

        // Phase 3: carve the center. The paper keeps at least 4 tiles
        // there for parallelism, more when texture is high.
        let center = Rect::new(left, top, cw, ch);
        let center_texture = measure_texture(cur, &center, &self.cfg).class;
        let budget = self.cfg.max_tiles.saturating_sub(tiles.len());
        let want = match center_texture {
            TextureClass::High => budget,
            TextureClass::Medium => budget.min(6),
            TextureClass::Low => self.cfg.min_center_tiles,
        }
        .max(self.cfg.min_center_tiles);
        let (cols, rows) = center_grid(
            cw,
            ch,
            want,
            self.cfg.min_center_tiles,
            self.cfg.min_tile_width,
            self.cfg.min_tile_height,
        );
        let center_tiling = Tiling::uniform(center, cols, rows);
        tiles.extend(center_tiling.iter().copied());

        let tiling = Tiling::new(frame, tiles).expect("ring layout partitions the frame");
        let analyses = analyze_tiling(cur, prev, &tiling, &self.cfg);
        RetileOutcome {
            tiling,
            analyses,
            borders,
        }
    }

    /// Grows one side from `min_tile` size in `growth_step` increments
    /// while the *added strip* stays low, returning the final extent
    /// (possibly 0 when even the first strip is busy).
    fn grow_side(&self, cur: &Plane, prev: Option<&Plane>, side: Side, max: usize) -> usize {
        let start = match side {
            Side::Left | Side::Right => self.cfg.min_tile_width,
            Side::Top | Side::Bottom => self.cfg.min_tile_height,
        };
        if start > max || !self.strip_is_low(cur, prev, side, 0, start) {
            return 0;
        }
        let mut extent = start;
        loop {
            let step = round_up8(((extent as f64) * self.cfg.growth_step).max(8.0) as usize);
            if extent + step > max {
                return extent;
            }
            if self.strip_is_low(cur, prev, side, extent, step) {
                extent += step;
            } else {
                return extent;
            }
        }
    }

    /// Tests the strip `[offset, offset + span)` from `side` for low
    /// texture and low motion.
    fn strip_is_low(
        &self,
        cur: &Plane,
        prev: Option<&Plane>,
        side: Side,
        offset: usize,
        span: usize,
    ) -> bool {
        let frame = cur.bounds();
        let rect = match side {
            Side::Left => Rect::new(offset, 0, span, frame.h),
            Side::Right => Rect::new(frame.w - offset - span, 0, span, frame.h),
            Side::Top => Rect::new(0, offset, frame.w, span),
            Side::Bottom => Rect::new(0, frame.h - offset - span, frame.w, span),
        };
        let texture_low = measure_texture(cur, &rect, &self.cfg).class == TextureClass::Low;
        let motion_low = match prev {
            None => true,
            Some(p) => probe_motion(cur, p, &rect, &self.cfg).level == MotionLevel::Low,
        };
        texture_low && motion_low
    }
}

#[derive(Debug, Clone, Copy)]
enum Side {
    Left,
    Right,
    Top,
    Bottom,
}

/// Picks a `cols x rows` grid for the center region: as close to
/// `want` tiles as the minimum tile size allows (never below
/// `min_tiles` unless geometry forbids it), preferring near-square
/// tiles.
fn center_grid(
    w: usize,
    h: usize,
    want: usize,
    min_tiles: usize,
    min_w: usize,
    min_h: usize,
) -> (usize, usize) {
    let cmax = (w / min_w).max(1).min(w / 8);
    let rmax = (h / min_h).max(1).min(h / 8);
    let mut best: Option<(usize, usize, usize, f64)> = None; // cols, rows, count, aspect err
    for cols in 1..=cmax {
        for rows in 1..=rmax {
            let count = cols * rows;
            if count > want && count > min_tiles {
                continue;
            }
            let tile_aspect = (w as f64 / cols as f64) / (h as f64 / rows as f64);
            let err = (tile_aspect.ln()).abs();
            let better = match best {
                None => true,
                Some((_, _, bc, berr)) => count > bc || (count == bc && err < berr),
            };
            if better {
                best = Some((cols, rows, count, err));
            }
        }
    }
    let (cols, rows, _, _) = best.expect("cmax/rmax >= 1 guarantees a candidate");
    (cols, rows)
}

fn round_up8(v: usize) -> usize {
    v.div_ceil(8) * 8
}

fn round_down8(v: usize) -> usize {
    v / 8 * 8
}

#[cfg(test)]
mod tests {
    use super::*;
    use medvt_frame::synth::{BodyPart, MotionPattern, PhantomVideo};
    use medvt_frame::Resolution;

    fn retiler() -> Retiler {
        Retiler::new(AnalyzerConfig {
            min_tile_width: 32,
            min_tile_height: 32,
            ..Default::default()
        })
        .expect("valid config")
    }

    fn phantom_frames() -> (medvt_frame::Frame, medvt_frame::Frame) {
        let v = PhantomVideo::builder(BodyPart::Brain)
            .resolution(Resolution::new(320, 240))
            .motion(MotionPattern::Pan { dx: 1.5, dy: 0.0 })
            .seed(8)
            .build();
        (v.render(0), v.render(4))
    }

    #[test]
    fn phantom_grows_borders_and_partitions() {
        let (f0, f1) = phantom_frames();
        let out = retiler().retile(f1.y(), Some(f0.y()));
        assert!(out.borders.left > 0, "dark left border should grow");
        assert!(out.borders.right > 0);
        assert!(out.borders.top > 0);
        assert!(out.borders.bottom > 0);
        assert_eq!(out.tiling.covered_area(), 320 * 240);
        assert!(out.tiling.len() >= 4 + 4); // ring + center
        assert_eq!(out.analyses.len(), out.tiling.len());
    }

    #[test]
    fn center_has_at_least_four_tiles() {
        let (f0, f1) = phantom_frames();
        let r = retiler();
        let out = r.retile(f1.y(), Some(f0.y()));
        let center_tiles = out
            .tiling
            .iter()
            .filter(|t| {
                t.x >= out.borders.left
                    && t.right() <= 320 - out.borders.right
                    && t.y >= out.borders.top
                    && t.bottom() <= 240 - out.borders.bottom
            })
            .count();
        assert!(center_tiles >= 4, "only {center_tiles} center tiles");
    }

    #[test]
    fn respects_max_tiles() {
        let (f0, f1) = phantom_frames();
        let r = Retiler::new(AnalyzerConfig {
            min_tile_width: 32,
            min_tile_height: 32,
            max_tiles: 12,
            ..Default::default()
        })
        .unwrap();
        let out = r.retile(f1.y(), Some(f0.y()));
        assert!(out.tiling.len() <= 12, "{} tiles", out.tiling.len());
    }

    #[test]
    fn busy_everywhere_content_gets_no_borders() {
        // High-contrast checkerboard over the whole frame.
        let mut p = Plane::new(256, 192);
        for row in 0..192 {
            for col in 0..256 {
                p.set(
                    col,
                    row,
                    if (col / 4 + row / 4) % 2 == 0 {
                        20
                    } else {
                        230
                    },
                );
            }
        }
        let out = retiler().retile(&p, None);
        assert_eq!(out.borders, BorderWidths::default());
        // Falls back to a pure center grid.
        assert!(out.tiling.len() >= 4);
        assert_eq!(out.tiling.covered_area(), 256 * 192);
    }

    #[test]
    fn first_frame_without_prev_works() {
        let (f0, _) = phantom_frames();
        let out = retiler().retile(f0.y(), None);
        assert!(out.tiling.len() >= 4);
        assert!(out.analyses.iter().all(|a| a.motion.is_none()));
    }

    #[test]
    fn determinism() {
        let (f0, f1) = phantom_frames();
        let r = retiler();
        let a = r.retile(f1.y(), Some(f0.y()));
        let b = r.retile(f1.y(), Some(f0.y()));
        assert_eq!(a, b);
    }

    #[test]
    fn high_texture_center_gets_more_tiles_than_low() {
        // Low-texture center: flat bright disc.
        let mut flat = Plane::filled(320, 240, 16);
        flat.fill_rect(&Rect::new(96, 72, 128, 96), 140);
        let out_flat = retiler().retile(&flat, None);
        // High-texture center: checkerboard disc.
        let mut busy = Plane::filled(320, 240, 16);
        for row in 72..168 {
            for col in 96..224 {
                busy.set(col, row, if (col + row) % 2 == 0 { 30 } else { 230 });
            }
        }
        let out_busy = retiler().retile(&busy, None);
        assert!(
            out_busy.tiling.len() >= out_flat.tiling.len(),
            "busy {} vs flat {}",
            out_busy.tiling.len(),
            out_flat.tiling.len()
        );
    }

    #[test]
    fn center_grid_prefers_square_tiles() {
        let (c, r) = center_grid(320, 160, 8, 4, 32, 32);
        assert!(c * r >= 4 && c * r <= 8);
        assert!(c >= r, "wide region should get more columns: {c}x{r}");
    }

    #[test]
    fn center_grid_respects_min_tile_size() {
        // 64x64 region with 32-min tiles: at most 2x2.
        let (c, r) = center_grid(64, 64, 16, 4, 32, 32);
        assert!(c <= 2 && r <= 2);
    }

    #[test]
    fn rejects_invalid_config() {
        let bad = AnalyzerConfig {
            growth_step: 2.0,
            ..Default::default()
        };
        assert!(Retiler::new(bad).is_err());
    }
}

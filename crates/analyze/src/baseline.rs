//! The capacity-balanced baseline tiler of Khan et al. \[19\]
//! (IEEE TVLSI 2016), the comparison point of the paper's evaluation.
//!
//! \[19\] creates a limited set of predefined tile structures whose
//! per-tile workloads match each core's capacity, assigning exactly
//! **one tile per core**. Tiles are balanced by estimated workload,
//! not by content classes, and re-tiling only happens when every core
//! sits at the minimum or maximum frequency (that trigger lives in the
//! pipeline layer; this module provides the tiler itself).

use crate::tiling::Tiling;
use medvt_frame::{Plane, Rect, RegionStats};
use serde::{Deserialize, Serialize};

/// Workload-balanced tiler with one tile per core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CapacityBalancedTiler {
    /// Number of cores — and therefore tiles — to produce.
    pub cores: usize,
}

impl CapacityBalancedTiler {
    /// Creates a tiler for `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics when `cores` is zero.
    pub fn new(cores: usize) -> Self {
        assert!(cores > 0, "need at least one core");
        Self { cores }
    }

    /// Produces exactly `self.cores` tiles whose estimated workloads
    /// (texture-energy proxy) are as equal as the 8-sample grid allows.
    ///
    /// Layout: one row of tiles for up to 4 cores, two rows above that
    /// (mirroring the limited predefined structures of \[19\]).
    ///
    /// # Panics
    ///
    /// Panics when the frame is not 8-aligned or too small for one
    /// 8-sample tile per core.
    pub fn tile(&self, luma: &Plane) -> Tiling {
        let frame = luma.bounds();
        assert!(
            frame.w.is_multiple_of(8) && frame.h.is_multiple_of(8),
            "frame must be 8-aligned"
        );
        let rows = if self.cores <= 4 { 1 } else { 2 };
        assert!(frame.h / 8 >= rows, "frame too short for {rows} tile rows");
        // Distribute cores over rows: top row gets the remainder.
        let per_row = self.cores / rows;
        let extra = self.cores % rows;
        let mut tiles = Vec::with_capacity(self.cores);
        let row_bands = balanced_cuts_rows(luma, &frame, rows);
        for (i, (y, h)) in row_bands.iter().enumerate() {
            let cols = per_row + usize::from(i < extra);
            let band = Rect::new(frame.x, *y, frame.w, *h);
            let col_spans = balanced_cuts_cols(luma, &band, cols);
            for (x, w) in col_spans {
                tiles.push(Rect::new(x, *y, w, *h));
            }
        }
        Tiling::new(frame, tiles).expect("balanced cuts partition the frame")
    }
}

/// Texture-energy weight of an 8-sample column/row unit: its standard
/// deviation plus a floor so empty regions still carry area cost.
fn unit_weight(stats: &RegionStats) -> f64 {
    stats.stddev + 4.0
}

/// Cuts the frame's rows into `n` bands of approximately equal weight,
/// snapped to 8 samples.
fn balanced_cuts_rows(luma: &Plane, frame: &Rect, n: usize) -> Vec<(usize, usize)> {
    let units = frame.h / 8;
    let weights: Vec<f64> = (0..units)
        .map(|u| {
            let r = Rect::new(frame.x, frame.y + u * 8, frame.w, 8);
            unit_weight(&RegionStats::of(luma, &r))
        })
        .collect();
    cut_axis(&weights, n)
        .into_iter()
        .map(|(u0, un)| (frame.y + u0 * 8, un * 8))
        .collect()
}

/// Cuts a band's columns into `n` spans of approximately equal weight.
fn balanced_cuts_cols(luma: &Plane, band: &Rect, n: usize) -> Vec<(usize, usize)> {
    let units = band.w / 8;
    let weights: Vec<f64> = (0..units)
        .map(|u| {
            let r = Rect::new(band.x + u * 8, band.y, 8, band.h);
            unit_weight(&RegionStats::of(luma, &r))
        })
        .collect();
    cut_axis(&weights, n)
        .into_iter()
        .map(|(u0, un)| (band.x + u0 * 8, un * 8))
        .collect()
}

/// Splits `weights` into `n` contiguous parts of near-equal sum; every
/// part gets at least one unit. Returns `(start_unit, unit_count)`.
fn cut_axis(weights: &[f64], n: usize) -> Vec<(usize, usize)> {
    assert!(
        weights.len() >= n,
        "cannot cut {} units into {n} parts",
        weights.len()
    );
    let total: f64 = weights.iter().sum();
    let mut cuts = Vec::with_capacity(n);
    let mut start = 0usize;
    let mut acc = 0.0;
    let mut emitted = 0usize;
    for (u, &w) in weights.iter().enumerate() {
        acc += w;
        let remaining_units = weights.len() - u - 1;
        let remaining_parts = n - emitted - 1;
        let target = total * (emitted + 1) as f64 / n as f64;
        // Close the part when its cumulative weight reaches the target,
        // or when we must leave one unit for each remaining part.
        if (acc >= target && remaining_parts > 0 && u + 1 > start)
            || remaining_units == remaining_parts && remaining_parts > 0
        {
            cuts.push((start, u + 1 - start));
            start = u + 1;
            emitted += 1;
        }
    }
    cuts.push((start, weights.len() - start));
    debug_assert_eq!(cuts.len(), n);
    cuts
}

#[cfg(test)]
mod tests {
    use super::*;
    use medvt_frame::synth::{BodyPart, PhantomVideo};
    use medvt_frame::Resolution;

    fn phantom_luma() -> Plane {
        let v = PhantomVideo::builder(BodyPart::LungChest)
            .resolution(Resolution::new(320, 240))
            .seed(3)
            .build();
        let (y, _, _) = v.render(0).into_planes();
        y
    }

    #[test]
    fn produces_one_tile_per_core() {
        let luma = phantom_luma();
        for cores in [1usize, 2, 3, 4, 5, 6, 8] {
            let t = CapacityBalancedTiler::new(cores).tile(&luma);
            assert_eq!(t.len(), cores, "cores={cores}");
            assert_eq!(t.covered_area(), 320 * 240);
        }
    }

    #[test]
    fn single_row_up_to_four_cores() {
        let luma = phantom_luma();
        let t = CapacityBalancedTiler::new(4).tile(&luma);
        assert!(t.iter().all(|r| r.y == 0 && r.h == 240));
    }

    #[test]
    fn two_rows_above_four_cores() {
        let luma = phantom_luma();
        let t = CapacityBalancedTiler::new(6).tile(&luma);
        let ys: std::collections::HashSet<usize> = t.iter().map(|r| r.y).collect();
        assert_eq!(ys.len(), 2);
    }

    #[test]
    fn center_heavy_content_narrows_center_tiles() {
        // Center tiles cover the textured anatomy, so equal-workload
        // balancing must make them *narrower* than the flat border
        // tiles.
        let luma = phantom_luma();
        let t = CapacityBalancedTiler::new(4).tile(&luma);
        let tiles = t.tiles();
        let edge_w = tiles[0].w.min(tiles[3].w);
        let mid_w = tiles[1].w.max(tiles[2].w);
        assert!(
            mid_w <= edge_w,
            "middle tiles {mid_w} should be no wider than edge tiles {edge_w}"
        );
    }

    #[test]
    fn flat_content_gives_near_uniform_tiles() {
        let flat = Plane::filled(320, 240, 80);
        let t = CapacityBalancedTiler::new(4).tile(&flat);
        for tile in t.iter() {
            assert!((tile.w as i64 - 80).abs() <= 8, "tile {tile}");
        }
    }

    #[test]
    fn weight_balance_within_tolerance() {
        let luma = phantom_luma();
        let t = CapacityBalancedTiler::new(5).tile(&luma);
        let weights: Vec<f64> = t
            .iter()
            .map(|r| {
                let s = RegionStats::of(&luma, r);
                (s.stddev + 4.0) * r.area() as f64
            })
            .collect();
        let mean = weights.iter().sum::<f64>() / weights.len() as f64;
        for w in &weights {
            assert!(
                (w / mean) < 2.4 && (w / mean) > 0.25,
                "imbalanced tile: {w} vs mean {mean}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        CapacityBalancedTiler::new(0);
    }

    #[test]
    fn cut_axis_covers_all_units() {
        let weights = vec![1.0; 10];
        let cuts = cut_axis(&weights, 3);
        assert_eq!(cuts.len(), 3);
        let total: usize = cuts.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 10);
        assert!(cuts.iter().all(|&(_, n)| n >= 1));
    }

    #[test]
    fn cut_axis_tracks_weight_concentration() {
        // All weight at the end: first parts should be minimal.
        let mut weights = vec![0.1; 10];
        weights[8] = 50.0;
        weights[9] = 50.0;
        let cuts = cut_axis(&weights, 2);
        assert!(cuts[0].1 >= cuts[1].1, "light part should span more units");
    }
}

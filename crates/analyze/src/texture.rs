//! Texture classification — paper Eq. (1).
//!
//! Texture is measured as the coefficient of variation (CV = σ/μ) of
//! the luma samples in a tile and thresholded into three classes. The
//! class drives both the QP ladder (§III-C1) and the re-tiling
//! decisions (§III-B).

use crate::AnalyzerConfig;
use medvt_frame::{Plane, Rect, RegionStats};
use serde::{Deserialize, Serialize};

/// The three texture classes of Eq. (1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TextureClass {
    /// `CV <= T_th,l`.
    Low,
    /// `T_th,l < CV <= T_th,h`.
    Medium,
    /// `CV > T_th,h`.
    High,
}

impl TextureClass {
    /// Classifies a CV value against the configured thresholds.
    pub fn from_cv(cv: f64, cfg: &AnalyzerConfig) -> TextureClass {
        if cv <= cfg.texture_low {
            TextureClass::Low
        } else if cv <= cfg.texture_high {
            TextureClass::Medium
        } else {
            TextureClass::High
        }
    }

    /// Short label for reports.
    pub const fn label(&self) -> &'static str {
        match self {
            TextureClass::Low => "low",
            TextureClass::Medium => "medium",
            TextureClass::High => "high",
        }
    }
}

impl std::fmt::Display for TextureClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Texture measurement of one tile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TextureMeasure {
    /// Coefficient of variation of the tile's luma.
    pub cv: f64,
    /// Classified texture.
    pub class: TextureClass,
    /// Mean luma (used to distinguish dark borders from flat bright
    /// regions in diagnostics).
    pub mean: f64,
}

/// Measures and classifies the texture of `rect`.
///
/// Classification follows Eq. (1) on the CV, with one robustness
/// addition: regions whose absolute luma standard deviation is at or
/// below [`AnalyzerConfig::texture_stddev_floor`] are Low regardless of
/// CV (near-black borders have negligible codable energy even when
/// their *relative* variation is noisy).
///
/// # Panics
///
/// Panics when `rect` is empty or outside the plane.
pub fn measure_texture(plane: &Plane, rect: &Rect, cfg: &AnalyzerConfig) -> TextureMeasure {
    let stats = RegionStats::of(plane, rect);
    let cv = stats.cv();
    let class = if stats.stddev <= cfg.texture_stddev_floor {
        TextureClass::Low
    } else {
        TextureClass::from_cv(cv, cfg)
    };
    TextureMeasure {
        cv,
        class,
        mean: stats.mean,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medvt_frame::synth::{BodyPart, PhantomVideo};
    use medvt_frame::Resolution;

    fn cfg() -> AnalyzerConfig {
        AnalyzerConfig::default()
    }

    #[test]
    fn thresholds_partition_the_cv_axis() {
        let c = cfg();
        assert_eq!(TextureClass::from_cv(0.0, &c), TextureClass::Low);
        assert_eq!(TextureClass::from_cv(c.texture_low, &c), TextureClass::Low);
        assert_eq!(
            TextureClass::from_cv(c.texture_low + 1e-9, &c),
            TextureClass::Medium
        );
        assert_eq!(
            TextureClass::from_cv(c.texture_high, &c),
            TextureClass::Medium
        );
        assert_eq!(
            TextureClass::from_cv(c.texture_high + 1e-9, &c),
            TextureClass::High
        );
    }

    #[test]
    fn flat_plane_is_low_texture() {
        let p = Plane::filled(32, 32, 120);
        let m = measure_texture(&p, &Rect::frame(32, 32), &cfg());
        assert_eq!(m.class, TextureClass::Low);
        assert_eq!(m.cv, 0.0);
    }

    #[test]
    fn checkerboard_is_high_texture() {
        let mut p = Plane::new(32, 32);
        for row in 0..32 {
            for col in 0..32 {
                p.set(col, row, if (col + row) % 2 == 0 { 30 } else { 220 });
            }
        }
        let m = measure_texture(&p, &Rect::frame(32, 32), &cfg());
        assert_eq!(m.class, TextureClass::High);
        assert!(m.cv > 0.4);
    }

    #[test]
    fn phantom_anatomy_more_textured_than_corner() {
        let v = PhantomVideo::builder(BodyPart::LungChest)
            .resolution(Resolution::new(160, 120))
            .seed(2)
            .build();
        let f = v.render(0);
        let c = cfg();
        let corner = measure_texture(f.y(), &Rect::new(0, 0, 32, 24), &c);
        // The left lung lobe (speckled parenchyma) sits left of center.
        let lobe = measure_texture(f.y(), &Rect::new(48, 48, 32, 24), &c);
        assert_eq!(corner.class, TextureClass::Low, "corner cv={}", corner.cv);
        assert!(
            lobe.class >= TextureClass::Medium,
            "lobe cv={} stddev floor may be too high",
            lobe.cv
        );
    }

    #[test]
    fn ordering_matches_severity() {
        assert!(TextureClass::Low < TextureClass::Medium);
        assert!(TextureClass::Medium < TextureClass::High);
    }

    #[test]
    fn labels() {
        assert_eq!(TextureClass::Low.to_string(), "low");
        assert_eq!(TextureClass::High.label(), "high");
    }
}

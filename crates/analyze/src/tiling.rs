//! Validated frame tilings and per-tile content analysis.

use crate::motion_probe::{probe_motion, MotionScore};
use crate::texture::{measure_texture, TextureMeasure};
use crate::AnalyzerConfig;
use medvt_frame::{Plane, Rect};
use medvt_motion::MotionLevel;
use serde::{Deserialize, Serialize};

/// A validated partition of a frame into 8-aligned tiles.
///
/// Invariants (enforced at construction):
/// * every tile is non-empty, 8-aligned and inside the frame;
/// * tiles are pairwise disjoint;
/// * tiles cover the frame exactly.
///
/// # Examples
///
/// ```
/// use medvt_analyze::Tiling;
/// use medvt_frame::Rect;
///
/// let frame = Rect::frame(640, 480);
/// let tiling = Tiling::uniform(frame, 5, 3);
/// assert_eq!(tiling.len(), 15);
/// assert_eq!(tiling.covered_area(), frame.area());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tiling {
    frame: Rect,
    tiles: Vec<Rect>,
}

impl Tiling {
    /// Builds a tiling from rects, validating the partition invariant.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn new(frame: Rect, tiles: Vec<Rect>) -> Result<Self, String> {
        if tiles.is_empty() {
            return Err("tiling has no tiles".into());
        }
        let mut area = 0usize;
        for t in &tiles {
            if t.is_empty() {
                return Err(format!("empty tile {t}"));
            }
            if !frame.contains_rect(t) {
                return Err(format!("tile {t} outside frame {frame}"));
            }
            if t.x % 8 != 0 || t.y % 8 != 0 || t.w % 8 != 0 || t.h % 8 != 0 {
                return Err(format!("tile {t} not 8-aligned"));
            }
            area += t.area();
        }
        if area != frame.area() {
            return Err(format!("tiles cover {area} of {} samples", frame.area()));
        }
        if let Some((a, b)) = medvt_frame::find_overlap(&tiles) {
            return Err(format!("tiles {a} and {b} overlap"));
        }
        Ok(Self { frame, tiles })
    }

    /// A uniform `cols x rows` tiling with 8-aligned boundaries.
    ///
    /// # Panics
    ///
    /// Panics when the frame cannot host the grid (fewer than 8 samples
    /// per tile per axis) or is not 8-aligned itself.
    pub fn uniform(frame: Rect, cols: usize, rows: usize) -> Self {
        assert!(cols > 0 && rows > 0, "grid must be non-empty");
        assert!(
            frame.w.is_multiple_of(8) && frame.h.is_multiple_of(8),
            "frame must be 8-aligned"
        );
        assert!(
            frame.w / 8 >= cols && frame.h / 8 >= rows,
            "frame {frame} too small for {cols}x{rows} tiles"
        );
        let xs = split_units(frame.x, frame.w, cols);
        let ys = split_units(frame.y, frame.h, rows);
        let mut tiles = Vec::with_capacity(cols * rows);
        for (y, h) in &ys {
            for (x, w) in &xs {
                tiles.push(Rect::new(*x, *y, *w, *h));
            }
        }
        Self::new(frame, tiles).expect("uniform grid satisfies the invariant")
    }

    /// The frame rectangle this tiling partitions.
    pub fn frame(&self) -> Rect {
        self.frame
    }

    /// The tile rectangles.
    pub fn tiles(&self) -> &[Rect] {
        &self.tiles
    }

    /// Number of tiles.
    pub fn len(&self) -> usize {
        self.tiles.len()
    }

    /// `false` — a valid tiling always has tiles; provided for API
    /// completeness.
    pub fn is_empty(&self) -> bool {
        self.tiles.is_empty()
    }

    /// Iterates over the tiles.
    pub fn iter(&self) -> std::slice::Iter<'_, Rect> {
        self.tiles.iter()
    }

    /// Total covered area (equals the frame area by construction).
    pub fn covered_area(&self) -> usize {
        self.tiles.iter().map(Rect::area).sum()
    }

    /// The tile containing sample `(col, row)`, if inside the frame.
    pub fn tile_at(&self, col: usize, row: usize) -> Option<&Rect> {
        self.tiles.iter().find(|t| t.contains(col, row))
    }
}

impl<'a> IntoIterator for &'a Tiling {
    type Item = &'a Rect;
    type IntoIter = std::slice::Iter<'a, Rect>;

    fn into_iter(self) -> Self::IntoIter {
        self.tiles.iter()
    }
}

/// Splits `len` (multiple of 8) into `n` spans of whole 8-sample units.
fn split_units(origin: usize, len: usize, n: usize) -> Vec<(usize, usize)> {
    let units = len / 8;
    let base = units / n;
    let extra = units % n;
    let mut out = Vec::with_capacity(n);
    let mut pos = origin;
    for i in 0..n {
        let span = (base + usize::from(i < extra)) * 8;
        out.push((pos, span));
        pos += span;
    }
    out
}

/// Texture + motion analysis of one tile — the input to re-tiling, QP
/// selection and the ME policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TileAnalysis {
    /// The analyzed tile.
    pub rect: Rect,
    /// Texture measurement (Eq. 1).
    pub texture: TextureMeasure,
    /// Motion probe result (Eqs. 2–3); `None` for the first frame of a
    /// video (no previous frame), which the pipeline treats as low
    /// motion.
    pub motion: Option<MotionScore>,
}

impl TileAnalysis {
    /// The effective motion level (Low when no previous frame exists).
    pub fn motion_level(&self) -> MotionLevel {
        self.motion.map_or(MotionLevel::Low, |m| m.level)
    }
}

/// Analyzes every tile of `tiling` on the current luma plane, probing
/// motion against `prev` when available.
///
/// # Panics
///
/// Panics when plane sizes disagree with the tiling frame.
pub fn analyze_tiling(
    cur: &Plane,
    prev: Option<&Plane>,
    tiling: &Tiling,
    cfg: &AnalyzerConfig,
) -> Vec<TileAnalysis> {
    assert_eq!(
        cur.bounds(),
        tiling.frame(),
        "plane does not match tiling frame"
    );
    tiling
        .iter()
        .map(|rect| TileAnalysis {
            rect: *rect,
            texture: measure_texture(cur, rect, cfg),
            motion: prev.map(|p| probe_motion(cur, p, rect, cfg)),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use medvt_frame::synth::{BodyPart, MotionPattern, PhantomVideo};
    use medvt_frame::Resolution;
    use medvt_motion::MotionLevel;
    use proptest::prelude::*;

    #[test]
    fn uniform_covers_exactly() {
        let frame = Rect::frame(640, 480);
        for (c, r) in [(1, 1), (2, 4), (5, 6), (11, 3)] {
            let t = Tiling::uniform(frame, c, r);
            assert_eq!(t.len(), c * r);
            assert_eq!(t.covered_area(), frame.area());
        }
    }

    #[test]
    fn new_rejects_gap_overlap_misalignment() {
        let frame = Rect::frame(64, 64);
        assert!(Tiling::new(frame, vec![Rect::new(0, 0, 64, 32)])
            .unwrap_err()
            .contains("cover"));
        assert!(Tiling::new(
            frame,
            vec![Rect::new(0, 0, 64, 40), Rect::new(0, 32, 64, 32)]
        )
        .is_err());
        assert!(
            Tiling::new(frame, vec![Rect::new(0, 0, 4, 64), Rect::new(4, 0, 60, 64)])
                .unwrap_err()
                .contains("8-aligned")
        );
        assert!(Tiling::new(frame, vec![]).is_err());
    }

    #[test]
    fn tile_at_finds_owner() {
        let t = Tiling::uniform(Rect::frame(64, 64), 2, 2);
        assert_eq!(t.tile_at(0, 0), Some(&Rect::new(0, 0, 32, 32)));
        assert_eq!(t.tile_at(63, 63), Some(&Rect::new(32, 32, 32, 32)));
        assert_eq!(t.tile_at(100, 0), None);
    }

    #[test]
    fn analysis_covers_every_tile() {
        let v = PhantomVideo::builder(BodyPart::Brain)
            .resolution(Resolution::new(160, 120))
            .motion(MotionPattern::Pan { dx: 1.0, dy: 0.0 })
            .seed(6)
            .build();
        let f0 = v.render(0);
        let f1 = v.render(4);
        let tiling = Tiling::uniform(f0.y().bounds(), 4, 3);
        let cfg = AnalyzerConfig::default();
        let analyses = analyze_tiling(f1.y(), Some(f0.y()), &tiling, &cfg);
        assert_eq!(analyses.len(), 12);
        // Center tiles should be busier than corner tiles.
        let corner = &analyses[0];
        let center = &analyses[5];
        assert!(center.texture.cv >= corner.texture.cv);
        assert_eq!(corner.motion_level(), MotionLevel::Low);
    }

    #[test]
    fn first_frame_defaults_to_low_motion() {
        let v = PhantomVideo::builder(BodyPart::Cardiac)
            .resolution(Resolution::new(96, 72))
            .seed(1)
            .build();
        let f0 = v.render(0);
        let tiling = Tiling::uniform(f0.y().bounds(), 2, 2);
        let analyses = analyze_tiling(f0.y(), None, &tiling, &AnalyzerConfig::default());
        assert!(analyses.iter().all(|a| a.motion.is_none()));
        assert!(analyses
            .iter()
            .all(|a| a.motion_level() == MotionLevel::Low));
    }

    proptest! {
        #[test]
        fn prop_uniform_tiling_partitions(
            cols in 1usize..8,
            rows in 1usize..8,
            wu in 8usize..80,   // frame width in 8-sample units
            hu in 8usize..60,
        ) {
            let frame = Rect::frame(wu * 8, hu * 8);
            prop_assume!(wu >= cols && hu >= rows);
            let t = Tiling::uniform(frame, cols, rows);
            prop_assert_eq!(t.len(), cols * rows);
            prop_assert_eq!(t.covered_area(), frame.area());
            // Every sample belongs to exactly one tile (checked on a grid).
            for row in (0..frame.h).step_by(7) {
                for col in (0..frame.w).step_by(7) {
                    let owners = t.iter().filter(|r| r.contains(col, row)).count();
                    prop_assert_eq!(owners, 1);
                }
            }
        }
    }
}

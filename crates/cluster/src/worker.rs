//! Worker nodes: threads that transcode leased segments on their own
//! `Platform` through a per-assignment [`Node`](medvt_runtime::Node)
//! server loop.
//!
//! A worker is deliberately dumb: it owns no lease state. It drains
//! [`WorkerCommand`]s, answers every `Encode` with a
//! [`SegmentResult`], and exits on `Shutdown`. All fault handling
//! lives coordinator-side — a worker that stops answering is detected
//! purely by its leases expiring, which is exactly the failure surface
//! a wire-distributed worker would present.

use crate::message::{Assignment, SegmentResult, WorkerCommand};
use medvt_admission::Workload;
use medvt_core::LiveWorkload;
use medvt_mpsoc::{DvfsPolicy, Platform, PowerModel};
use medvt_runtime::{DemandSource, Node, NodeCommand, ReplanPolicy, ServerLoopConfig, SimBackend};
use std::sync::mpsc::{Receiver, Sender};

/// Maps segment-local slots back to absolute stream slots so the
/// worker's server loop replays the demand window its segment covers.
/// Cost-only on purpose: the loop prices the segment (energy, deadline
/// windows) while the bitstream bytes come from the deterministic
/// direct-encode path.
struct SegmentSource<'a> {
    workload: &'a LiveWorkload,
    base_slot: usize,
}

impl DemandSource for SegmentSource<'_> {
    fn demand_at(&self, _user: usize, slot: usize) -> Vec<f64> {
        self.workload.demand_at(self.base_slot + slot)
    }
}

/// Everything a worker thread needs to serve one node's share of the
/// cluster.
pub(crate) struct WorkerRole<'a> {
    /// This node's id (== its telemetry track and sharder index).
    pub node: usize,
    /// The node's own silicon.
    pub platform: Platform,
    /// Fault injection: after completing this many segments the worker
    /// "crashes" — it keeps draining commands (so channel sends still
    /// succeed, as they would against a dead TCP peer's kernel buffer)
    /// but never replies again.
    pub kill_after_segments: Option<usize>,
    /// Target frames per second.
    pub fps: f64,
    /// Slots per GOP.
    pub gop_slots: usize,
    /// DVFS policy for the node's backend.
    pub policy: DvfsPolicy,
    /// Placement headroom for the node's per-GOP replanner.
    pub headroom: f64,
    /// The shared stream being served.
    pub workload: &'a LiveWorkload,
}

/// The worker thread body: drain commands until `Shutdown` (or the
/// coordinator hangs up).
pub(crate) fn run_worker(
    role: WorkerRole<'_>,
    commands: Receiver<WorkerCommand>,
    results: Sender<SegmentResult>,
) {
    let mut completed = 0usize;
    for cmd in commands {
        match cmd {
            WorkerCommand::Shutdown => return,
            WorkerCommand::Encode(assignment) => {
                if role.kill_after_segments.is_some_and(|k| completed >= k) {
                    continue;
                }
                let result = encode_assignment(&role, assignment);
                completed += 1;
                if results.send(result).is_err() {
                    return;
                }
            }
        }
    }
}

/// Serves one leased segment: a fresh single-member [`Node`] advances
/// the segment's slot span for the modeled accounting (energy,
/// deadline windows), then the bitstream is produced by the
/// deterministic open-loop tile path in canonical order — slots in
/// display order, tiles in tile-index order within each slot.
fn encode_assignment(role: &WorkerRole<'_>, assignment: Assignment) -> SegmentResult {
    let seg = assignment.segment;
    let cfg = ServerLoopConfig {
        fps: role.fps,
        slots: seg.slots,
        policy: role.policy,
        replan: ReplanPolicy::PerGop {
            headroom: role.headroom,
        },
        gop_slots: role.gop_slots,
        window_slots: Some(role.gop_slots),
    };
    let source = SegmentSource {
        workload: role.workload,
        base_slot: seg.start_slot,
    };
    let mut node = Node::new(
        SimBackend::new(role.platform.clone(), PowerModel::default()),
        cfg,
    );
    node.handle(
        NodeCommand::UpdateMembership {
            add: vec![0],
            remove: vec![],
        },
        &source,
    );
    node.handle(NodeCommand::Advance { slots: seg.slots }, &source);
    let report = node
        .handle(NodeCommand::Stop, &source)
        .into_report()
        .expect("fresh node yields a final report");

    let mut bytes = Vec::new();
    let mut tiles = 0usize;
    for slot in seg.slot_range() {
        for thread in 0..role.workload.demand_at(slot).len() {
            let outcome = role
                .workload
                .encode_direct(slot, thread)
                .expect("every profiled tile encodes");
            bytes.extend(outcome.bytes);
            tiles += 1;
        }
    }

    SegmentResult {
        node: role.node,
        segment: seg,
        attempt: assignment.attempt,
        bytes,
        tiles,
        energy_j: report.energy_j,
        windows: report.windows,
        window_misses: report.window_misses,
    }
}

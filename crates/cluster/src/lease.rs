//! Segment leasing: the coordinator-side pending pool with
//! timeout/retry/backoff.
//!
//! Life of a segment:
//!
//! ```text
//!          next_ready            grant
//! Pending ───────────▶ (picked) ───────▶ Leased ──▶ complete ──▶ Done
//!    ▲                                     │
//!    │            requeue (attempt < max,  │ deadline passes
//!    └── backoff ── linear backoff) ◀── Expired
//!                                          │ attempt == max
//!                                          ▼
//!                        LeaseFailure::RetriesExhausted
//! ```
//!
//! The pool is pure bookkeeping over caller-supplied clocks
//! (`Instant`s passed in), so every transition is unit-testable
//! without sleeping.

use crate::message::LeaseFailure;
use std::collections::{BTreeMap, VecDeque};
use std::time::{Duration, Instant};

/// One outstanding lease: a segment assigned to a node until a
/// deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lease {
    /// Leased segment index.
    pub segment: usize,
    /// Node holding the lease.
    pub node: usize,
    /// 1-based delivery attempt.
    pub attempt: usize,
    /// When the lease was granted.
    pub granted_at: Instant,
    /// When it expires unless completed.
    pub deadline: Instant,
}

/// A pending (not currently leased) segment.
#[derive(Debug, Clone, Copy)]
struct Pending {
    segment: usize,
    /// Next delivery attempt (1 on first lease).
    attempt: usize,
    /// Earliest instant it may be re-leased (`None`: immediately).
    not_before: Option<Instant>,
}

/// The coordinator's lease book: pending segments, outstanding leases,
/// bounded retries.
#[derive(Debug)]
pub struct LeasePool {
    pending: VecDeque<Pending>,
    leases: BTreeMap<usize, Lease>,
    timeout: Duration,
    backoff: Duration,
    max_attempts: usize,
}

impl LeasePool {
    /// A pool with `segments` pending segments (indices `0..segments`,
    /// first attempt each), leases lasting `timeout`, re-leases backed
    /// off by `backoff * previous_attempt`, and at most `max_attempts`
    /// delivery attempts per segment.
    ///
    /// # Panics
    ///
    /// Panics when `max_attempts` is zero.
    pub fn new(segments: usize, timeout: Duration, backoff: Duration, max_attempts: usize) -> Self {
        assert!(max_attempts > 0, "need at least one delivery attempt");
        LeasePool {
            pending: (0..segments)
                .map(|segment| Pending {
                    segment,
                    attempt: 1,
                    not_before: None,
                })
                .collect(),
            leases: BTreeMap::new(),
            timeout,
            backoff,
            max_attempts,
        }
    }

    /// Segments waiting to be leased (including ones still backing
    /// off).
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Outstanding leases.
    pub fn outstanding(&self) -> usize {
        self.leases.len()
    }

    /// `true` once nothing is pending or leased.
    pub fn is_drained(&self) -> bool {
        self.pending.is_empty() && self.leases.is_empty()
    }

    /// The segment at the head of the pending queue (ready or backing
    /// off) — what a `NoLiveNodes` reject names.
    pub fn first_pending(&self) -> Option<usize> {
        self.pending.front().map(|p| p.segment)
    }

    /// Pops the first pending segment whose backoff has passed at
    /// `now`, returning `(segment, attempt)`. Backing-off entries are
    /// rotated to the tail so one hot segment cannot starve the rest.
    pub fn next_ready(&mut self, now: Instant) -> Option<(usize, usize)> {
        for _ in 0..self.pending.len() {
            let p = self.pending.pop_front().expect("len checked");
            if p.not_before.is_none_or(|t| t <= now) {
                return Some((p.segment, p.attempt));
            }
            self.pending.push_back(p);
        }
        None
    }

    /// Records a granted lease for a segment popped by
    /// [`next_ready`](Self::next_ready).
    ///
    /// # Panics
    ///
    /// Panics when the segment is already leased (a segment is either
    /// pending or leased, never both).
    pub fn grant(&mut self, segment: usize, attempt: usize, node: usize, now: Instant) -> Lease {
        let lease = Lease {
            segment,
            node,
            attempt,
            granted_at: now,
            deadline: now + self.timeout,
        };
        let prior = self.leases.insert(segment, lease);
        assert!(prior.is_none(), "segment {segment} double-leased");
        lease
    }

    /// Completes the lease on `segment`, returning it; `None` when no
    /// lease is outstanding (late result after expiry — the bytes are
    /// still usable, only the lease is gone).
    pub fn complete(&mut self, segment: usize) -> Option<Lease> {
        self.leases.remove(&segment)
    }

    /// Drops a *pending* entry for `segment` (a late result arrived
    /// while the retry sat in the queue). Returns `true` when an entry
    /// was removed.
    pub fn cancel_pending(&mut self, segment: usize) -> bool {
        let before = self.pending.len();
        self.pending.retain(|p| p.segment != segment);
        before != self.pending.len()
    }

    /// Removes and returns every lease whose deadline passed at `now`.
    pub fn expired(&mut self, now: Instant) -> Vec<Lease> {
        let dead: Vec<usize> = self
            .leases
            .iter()
            .filter(|(_, l)| l.deadline <= now)
            .map(|(&s, _)| s)
            .collect();
        dead.into_iter()
            .map(|s| self.leases.remove(&s).expect("listed above"))
            .collect()
    }

    /// Removes and returns every outstanding lease held by `node`
    /// (called when a node is declared dead: one expiry condemns all
    /// of its in-flight work at once).
    pub fn revoke_node(&mut self, node: usize) -> Vec<Lease> {
        let held: Vec<usize> = self
            .leases
            .iter()
            .filter(|(_, l)| l.node == node)
            .map(|(&s, _)| s)
            .collect();
        held.into_iter()
            .map(|s| self.leases.remove(&s).expect("listed above"))
            .collect()
    }

    /// Requeues an expired lease's segment with linear backoff
    /// (`backoff * attempt`), or surfaces the typed reject once its
    /// delivery attempts are exhausted.
    pub fn requeue(&mut self, lease: Lease, now: Instant) -> Result<(), LeaseFailure> {
        if lease.attempt >= self.max_attempts {
            return Err(LeaseFailure::RetriesExhausted {
                segment: lease.segment,
                attempts: lease.attempt,
            });
        }
        self.pending.push_back(Pending {
            segment: lease.segment,
            attempt: lease.attempt + 1,
            not_before: Some(now + self.backoff * lease.attempt as u32),
        });
        Ok(())
    }

    /// How long the coordinator may sleep at `now` before something
    /// can change on its own: the nearest lease deadline or pending
    /// backoff expiry. `None` when nothing is outstanding or backing
    /// off.
    pub fn next_wakeup(&self, now: Instant) -> Option<Duration> {
        let lease_deadline = self.leases.values().map(|l| l.deadline).min();
        let backoff_ready = self.pending.iter().filter_map(|p| p.not_before).min();
        [lease_deadline, backoff_ready]
            .into_iter()
            .flatten()
            .min()
            .map(|t| t.saturating_duration_since(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: Duration = Duration::from_millis(100);
    const B: Duration = Duration::from_millis(10);

    #[test]
    fn segments_flow_pending_to_leased_to_done() {
        let mut pool = LeasePool::new(2, T, B, 3);
        let now = Instant::now();
        assert_eq!(pool.pending_len(), 2);
        let (seg, attempt) = pool.next_ready(now).expect("ready");
        assert_eq!((seg, attempt), (0, 1));
        let lease = pool.grant(seg, attempt, 7, now);
        assert_eq!(lease.node, 7);
        assert_eq!(pool.outstanding(), 1);
        assert_eq!(pool.complete(0).map(|l| l.attempt), Some(1));
        let (seg, attempt) = pool.next_ready(now).expect("ready");
        pool.grant(seg, attempt, 7, now);
        pool.complete(1).expect("leased");
        assert!(pool.is_drained());
        assert!(pool.complete(0).is_none(), "completion is idempotent");
    }

    #[test]
    fn expiry_requeues_with_growing_backoff_until_exhausted() {
        let mut pool = LeasePool::new(1, T, B, 3);
        let t0 = Instant::now();
        let mut now = t0;
        for attempt in 1..=3usize {
            let (seg, a) = pool.next_ready(now).expect("ready");
            assert_eq!(a, attempt);
            pool.grant(seg, a, 0, now);
            // Not expired before the deadline.
            assert!(pool.expired(now + T / 2).is_empty());
            now += T;
            let expired = pool.expired(now);
            assert_eq!(expired.len(), 1);
            let lease = expired[0];
            if attempt < 3 {
                pool.requeue(lease, now).expect("retries remain");
                // Backing off: not ready immediately, ready after
                // backoff * attempt.
                assert!(pool.next_ready(now).is_none());
                now += B * attempt as u32;
            } else {
                let err = pool.requeue(lease, now).expect_err("exhausted");
                assert_eq!(
                    err,
                    LeaseFailure::RetriesExhausted {
                        segment: 0,
                        attempts: 3
                    }
                );
            }
        }
    }

    #[test]
    fn backoff_rotation_does_not_starve_other_segments() {
        let mut pool = LeasePool::new(3, T, Duration::from_secs(1000), 5);
        let now = Instant::now();
        // Lease and expire segment 0: it requeues far in the future.
        let (s0, a0) = pool.next_ready(now).expect("ready");
        pool.grant(s0, a0, 0, now);
        let lease = pool.expired(now + 2 * T).remove(0);
        pool.requeue(lease, now + 2 * T).expect("retry");
        // Segments 1 and 2 are still immediately ready.
        assert_eq!(pool.next_ready(now + 2 * T), Some((1, 1)));
        assert_eq!(pool.next_ready(now + 2 * T), Some((2, 1)));
        assert_eq!(pool.next_ready(now + 2 * T), None, "0 is backing off");
        assert_eq!(pool.pending_len(), 1);
    }

    #[test]
    fn revoke_node_condemns_every_lease_it_holds() {
        let mut pool = LeasePool::new(3, T, B, 3);
        let now = Instant::now();
        for node in [5usize, 5, 9] {
            let (s, a) = pool.next_ready(now).expect("ready");
            pool.grant(s, a, node, now);
        }
        let revoked = pool.revoke_node(5);
        assert_eq!(revoked.len(), 2);
        assert_eq!(pool.outstanding(), 1, "node 9's lease survives");
    }

    #[test]
    fn wakeup_tracks_nearest_deadline() {
        let mut pool = LeasePool::new(2, T, B, 3);
        let now = Instant::now();
        assert_eq!(pool.next_wakeup(now), None, "nothing outstanding");
        let (s, a) = pool.next_ready(now).expect("ready");
        pool.grant(s, a, 0, now);
        let wake = pool.next_wakeup(now).expect("lease outstanding");
        assert!(wake <= T);
        assert!(wake > T / 2);
    }

    #[test]
    fn cancel_pending_removes_a_requeued_segment() {
        let mut pool = LeasePool::new(1, T, B, 3);
        let now = Instant::now();
        let (s, a) = pool.next_ready(now).expect("ready");
        pool.grant(s, a, 0, now);
        let lease = pool.expired(now + 2 * T).remove(0);
        pool.requeue(lease, now).expect("retry");
        assert!(pool.cancel_pending(0), "late result cancels the retry");
        assert!(pool.is_drained());
        assert!(!pool.cancel_pending(0));
    }
}

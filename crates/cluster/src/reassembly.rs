//! Bitstream reassembly: stitching returned segments back into one
//! stream, in order, with the tile path's bit-identity guarantee.
//!
//! Segments encode open-loop (every tile depends only on original
//! frames), so each segment's bytes are independent of which node
//! produced them and on which attempt. Reassembly therefore reduces to
//! placing each segment's bytes at its index — plus two invariant
//! checks: the segment plan must tile the slot horizon contiguously,
//! and a duplicate delivery (a late first attempt racing its retry)
//! must be byte-identical to what was already accepted.

use medvt_encoder::SegmentSpec;

/// A duplicate segment delivery disagreed with the accepted bytes —
/// the determinism invariant is broken (or a worker is corrupt).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReassemblyConflict {
    /// The segment delivered twice with different bytes.
    pub segment: usize,
}

impl std::fmt::Display for ReassemblyConflict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "segment {} delivered twice with different bytes",
            self.segment
        )
    }
}

impl std::error::Error for ReassemblyConflict {}

/// Collects segment bitstreams and stitches them in plan order.
#[derive(Debug)]
pub struct Reassembler {
    plan: Vec<SegmentSpec>,
    parts: Vec<Option<Vec<u8>>>,
    received: usize,
}

impl Reassembler {
    /// A reassembler expecting exactly the segments of `plan`.
    ///
    /// # Panics
    ///
    /// Panics when the plan is not a contiguous tiling (each segment's
    /// start must be the previous segment's end, indices in order) —
    /// a malformed plan would silently reorder the output.
    pub fn new(plan: Vec<SegmentSpec>) -> Self {
        let mut cursor = 0usize;
        for (i, s) in plan.iter().enumerate() {
            assert_eq!(s.index, i, "segment indices must be in plan order");
            assert_eq!(
                s.start_slot,
                cursor,
                "segment {i} must start where segment {} ended",
                i.wrapping_sub(1)
            );
            cursor = s.end_slot();
        }
        let parts = vec![None; plan.len()];
        Reassembler {
            plan,
            parts,
            received: 0,
        }
    }

    /// The expected segment plan.
    pub fn plan(&self) -> &[SegmentSpec] {
        &self.plan
    }

    /// Segments accepted so far.
    pub fn received(&self) -> usize {
        self.received
    }

    /// `true` once every planned segment has bytes.
    pub fn is_complete(&self) -> bool {
        self.received == self.plan.len()
    }

    /// Accepts one segment's bytes. Idempotent for byte-identical
    /// duplicates (returns `Ok(false)`); a mismatching duplicate is a
    /// broken-invariant error. Returns `Ok(true)` when the segment was
    /// new.
    ///
    /// # Panics
    ///
    /// Panics when `segment` is outside the plan.
    pub fn accept(&mut self, segment: usize, bytes: Vec<u8>) -> Result<bool, ReassemblyConflict> {
        assert!(segment < self.plan.len(), "segment {segment} not in plan");
        match &self.parts[segment] {
            Some(existing) if *existing == bytes => Ok(false),
            Some(_) => Err(ReassemblyConflict { segment }),
            None => {
                self.parts[segment] = Some(bytes);
                self.received += 1;
                Ok(true)
            }
        }
    }

    /// `true` when `segment` already has accepted bytes.
    pub fn has(&self, segment: usize) -> bool {
        segment < self.parts.len() && self.parts[segment].is_some()
    }

    /// Stitches the accepted segments into one bitstream, in plan
    /// order.
    ///
    /// # Panics
    ///
    /// Panics unless [`is_complete`](Self::is_complete) — assembling
    /// with holes would silently desynchronize every later segment.
    pub fn assemble(self) -> Vec<u8> {
        assert!(
            self.is_complete(),
            "cannot assemble: {}/{} segments received",
            self.received,
            self.plan.len()
        );
        let mut out = Vec::with_capacity(
            self.parts
                .iter()
                .map(|p| p.as_ref().map_or(0, Vec::len))
                .sum(),
        );
        for part in self.parts {
            out.extend(part.expect("completeness checked"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medvt_encoder::plan_segments;

    #[test]
    fn stitches_in_plan_order_regardless_of_arrival_order() {
        let plan = plan_segments(24, 8, 1);
        let mut r = Reassembler::new(plan);
        assert!(r.accept(2, vec![7, 8]).expect("new"));
        assert!(r.accept(0, vec![1, 2]).expect("new"));
        assert!(!r.is_complete());
        assert!(r.accept(1, vec![4]).expect("new"));
        assert!(r.is_complete());
        assert_eq!(r.assemble(), vec![1, 2, 4, 7, 8]);
    }

    #[test]
    fn identical_duplicate_is_idempotent_mismatch_is_fatal() {
        let plan = plan_segments(16, 8, 1);
        let mut r = Reassembler::new(plan);
        assert!(r.accept(0, vec![1, 2]).expect("new"));
        assert!(!r.accept(0, vec![1, 2]).expect("identical dup ok"));
        assert_eq!(r.received(), 1);
        let err = r.accept(0, vec![9]).expect_err("conflicting bytes");
        assert_eq!(err.segment, 0);
    }

    #[test]
    #[should_panic(expected = "cannot assemble")]
    fn assembling_with_holes_panics() {
        let r = Reassembler::new(plan_segments(16, 8, 1));
        r.assemble();
    }

    #[test]
    #[should_panic(expected = "must start where")]
    fn non_contiguous_plan_rejected() {
        let mut plan = plan_segments(24, 8, 1);
        plan.remove(1);
        let plan: Vec<_> = plan
            .into_iter()
            .enumerate()
            .map(|(i, mut s)| {
                s.index = i;
                s
            })
            .collect();
        Reassembler::new(plan);
    }
}

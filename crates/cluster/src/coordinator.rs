//! The cluster coordinator: segment leasing over a fleet of worker
//! nodes, with fault-tolerant reassembly.
//!
//! ```text
//!              plan_segments              lease (Sharder pick)
//!  stream ───▶ [seg0|seg1|…] ──▶ LeasePool ───────────────▶ worker node
//!                                   ▲  │ expiry                 │
//!                                   │  ▼                        ▼
//!                            requeue+backoff             SegmentResult
//!                                   │                           │
//!                                   └───────── Reassembler ◀────┘
//!                                                  │
//!                                                  ▼
//!                                       bit-identical bitstream
//! ```
//!
//! The coordinator reuses the single-host control plane wholesale:
//! node selection is [`Sharder::pick_attached`] over per-node
//! capacities (sum of core speed factors — the same normalization the
//! admission layer uses for sockets), and each lease counts one
//! reference core of load against its node. A node whose lease expires
//! is declared dead: every lease it holds is revoked at once, its
//! capacity is saturated so the sharder never picks it again, and the
//! orphaned segments re-queue with linear backoff until the bounded
//! retry budget surfaces a typed [`LeaseFailure`].

use crate::lease::LeasePool;
use crate::message::{Assignment, LeaseFailure, SegmentResult, WorkerCommand};
use crate::reassembly::Reassembler;
use crate::worker::{run_worker, WorkerRole};
use medvt_admission::{ShardPolicy, Sharder, Workload};
use medvt_core::LiveWorkload;
use medvt_encoder::plan_segments;
use medvt_mpsoc::{DvfsPolicy, Platform};
use medvt_telemetry::{Event, EventKind, NoopRecorder, Recorder, CONTROL_TRACK};
use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::mpsc::{self, RecvTimeoutError};
use std::time::{Duration, Instant};

/// Load one outstanding lease places on its node, in reference cores.
const LEASE_DEMAND: f64 = 1.0;

/// One worker node's identity in the fleet.
#[derive(Debug, Clone)]
pub struct NodeSpec {
    /// The node's own silicon (typically one socket view).
    pub platform: Platform,
    /// Fault injection: crash the worker after it completes this many
    /// segments (`Some(0)` = born dead). `None` = healthy.
    pub kill_after_segments: Option<usize>,
}

impl NodeSpec {
    /// A healthy node on `platform`.
    pub fn healthy(platform: Platform) -> Self {
        NodeSpec {
            platform,
            kill_after_segments: None,
        }
    }
}

/// A heterogeneous fleet of `n` nodes alternating Xeon sockets (4
/// reference cores each) and big.LITTLE sockets (5.8 effective cores)
/// — the paper's server-class and embedded-class silicon mixed in one
/// cluster.
pub fn mixed_fleet(n: usize) -> Vec<NodeSpec> {
    let xeon = Platform::xeon_e5_2667_quad();
    let arm = Platform::big_little();
    (0..n)
        .map(|i| {
            NodeSpec::healthy(if i % 2 == 0 {
                xeon.socket_view((i / 2) % xeon.sockets)
            } else {
                arm.socket_view((i / 2) % arm.sockets)
            })
        })
        .collect()
}

/// Cluster-run parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// The worker fleet.
    pub nodes: Vec<NodeSpec>,
    /// Target frames per second.
    pub fps: f64,
    /// Slots per GOP (segments are GOP-aligned).
    pub gop_slots: usize,
    /// GOPs per segment task.
    pub gops_per_segment: usize,
    /// Total stream slots to serve.
    pub total_slots: usize,
    /// DVFS policy for every node's backend.
    pub policy: DvfsPolicy,
    /// Placement headroom for per-GOP replanning on each node.
    pub headroom: f64,
    /// How long a lease lives before the node is presumed dead.
    pub lease_timeout: Duration,
    /// Base re-lease backoff (scaled linearly by attempt).
    pub lease_backoff: Duration,
    /// Delivery attempts per segment before the typed reject.
    pub max_attempts: usize,
}

impl ClusterConfig {
    /// A config with serving defaults: 24 fps, 8-slot GOPs, 2 GOPs per
    /// segment, race-to-idle DVFS, 15% headroom, 2 s leases, 10 ms
    /// backoff, 4 attempts.
    pub fn new(nodes: Vec<NodeSpec>, total_slots: usize) -> Self {
        ClusterConfig {
            nodes,
            fps: 24.0,
            gop_slots: 8,
            gops_per_segment: 2,
            total_slots,
            policy: DvfsPolicy::RaceToIdle,
            headroom: 1.15,
            lease_timeout: Duration::from_secs(2),
            lease_backoff: Duration::from_millis(10),
            max_attempts: 4,
        }
    }
}

/// One node's contribution to a cluster run.
#[derive(Debug, Clone, Serialize)]
pub struct NodeRunStats {
    /// Node id.
    pub node: usize,
    /// Effective capacity in reference cores.
    pub capacity_cores: f64,
    /// Segments this node delivered (first acceptance only).
    pub segments: usize,
    /// Tiles this node encoded into accepted segments.
    pub tiles: usize,
    /// Modeled energy of the node's accepted segment loops, J.
    pub energy_j: f64,
    /// Deadline windows its loops evaluated.
    pub windows: usize,
    /// Windows ending with unfinished work.
    pub window_misses: usize,
    /// Whether the coordinator declared this node dead.
    pub declared_dead: bool,
}

/// One segment's recovery after a node death: from the instant its
/// first lease expired to the instant a replacement node's bytes were
/// accepted.
#[derive(Debug, Clone, Serialize)]
pub struct RecoveryRecord {
    /// The recovered segment.
    pub segment: usize,
    /// The delivery attempt that finally landed.
    pub attempts: usize,
    /// First-expiry → acceptance latency, seconds.
    pub latency_secs: f64,
}

/// Everything a cluster run produced.
#[derive(Debug)]
pub struct ClusterOutcome {
    /// The reassembled bitstream: segments stitched in plan order,
    /// byte-identical to a single-node encode of the same stream.
    pub bitstream: Vec<u8>,
    /// Segments in the plan.
    pub segments: usize,
    /// Leases granted (≥ segments when faults forced re-leases).
    pub leases_granted: usize,
    /// Leases that expired.
    pub leases_expired: usize,
    /// Expired leases successfully re-queued.
    pub leases_requeued: usize,
    /// Byte-identical duplicate deliveries discarded.
    pub duplicates: usize,
    /// Per-node accounting.
    pub nodes: Vec<NodeRunStats>,
    /// Per-segment recovery latencies (empty on a fault-free run).
    pub recoveries: Vec<RecoveryRecord>,
    /// Coordinator wall-clock for the whole run, seconds.
    pub wall_secs: f64,
}

/// [`run_cluster_with`] without telemetry.
pub fn run_cluster(
    cfg: &ClusterConfig,
    workload: &LiveWorkload,
) -> Result<ClusterOutcome, LeaseFailure> {
    run_cluster_with(cfg, workload, NoopRecorder)
}

/// Serves `workload` across the fleet: plans GOP-aligned segments,
/// leases them to nodes, recovers from node deaths via lease expiry,
/// and reassembles the bitstream in order.
///
/// Lease-lifecycle telemetry goes to `recorder`: grants and expiries
/// as instants on the holding node's track, requeues and reassemblies
/// on the control track. The coordinator thread is the only producer
/// on every track it stamps, so a shared `&FlightRecorder`'s
/// single-producer-per-ring contract holds (worker loops run
/// telemetry-free nodes).
///
/// # Errors
///
/// [`LeaseFailure::RetriesExhausted`] when a segment's lease expired
/// on every allowed attempt; [`LeaseFailure::NoLiveNodes`] when every
/// node died with segments still pending.
///
/// # Panics
///
/// Panics when the fleet is empty, when slot/GOP parameters are zero,
/// or if two nodes deliver different bytes for one segment (the
/// open-loop determinism invariant is broken).
pub fn run_cluster_with<R: Recorder>(
    cfg: &ClusterConfig,
    workload: &LiveWorkload,
    recorder: R,
) -> Result<ClusterOutcome, LeaseFailure> {
    assert!(!cfg.nodes.is_empty(), "cluster needs at least one node");
    let plan = plan_segments(cfg.total_slots, cfg.gop_slots, cfg.gops_per_segment);
    let capacities: Vec<f64> = cfg
        .nodes
        .iter()
        .map(|n| n.platform.core_speeds().iter().sum())
        .collect();
    let started = Instant::now();

    let mut reassembler = Reassembler::new(plan.clone());
    let mut pool = LeasePool::new(
        plan.len(),
        cfg.lease_timeout,
        cfg.lease_backoff,
        cfg.max_attempts,
    );
    let mut sharder = Sharder::new(ShardPolicy::LeastLoaded);
    sharder.attach(capacities.clone());
    let class = workload.content_class().to_string();

    let mut stats: Vec<NodeRunStats> = capacities
        .iter()
        .enumerate()
        .map(|(node, &capacity_cores)| NodeRunStats {
            node,
            capacity_cores,
            segments: 0,
            tiles: 0,
            energy_j: 0.0,
            windows: 0,
            window_misses: 0,
            declared_dead: false,
        })
        .collect();
    let mut live_nodes = cfg.nodes.len();
    let mut leases_granted = 0usize;
    let mut leases_expired = 0usize;
    let mut leases_requeued = 0usize;
    let mut duplicates = 0usize;
    let mut first_expiry: BTreeMap<usize, Instant> = BTreeMap::new();
    let mut recoveries: Vec<RecoveryRecord> = Vec::new();

    let (result_tx, result_rx) = mpsc::channel::<SegmentResult>();

    let run = std::thread::scope(|scope| {
        let command_txs: Vec<mpsc::Sender<WorkerCommand>> = cfg
            .nodes
            .iter()
            .enumerate()
            .map(|(node, spec)| {
                let (tx, rx) = mpsc::channel::<WorkerCommand>();
                let role = WorkerRole {
                    node,
                    platform: spec.platform.clone(),
                    kill_after_segments: spec.kill_after_segments,
                    fps: cfg.fps,
                    gop_slots: cfg.gop_slots,
                    policy: cfg.policy,
                    headroom: cfg.headroom,
                    workload,
                };
                let results = result_tx.clone();
                scope.spawn(move || run_worker(role, rx, results));
                tx
            })
            .collect();

        let run = loop {
            let now = Instant::now();

            // 1. Expiry scan. One expired lease condemns its holder:
            // the node is declared dead, its remaining leases are
            // revoked in the same sweep, and its capacity saturates so
            // the sharder never offers it work again.
            let mut condemned = pool.expired(now);
            let mut i = 0;
            while i < condemned.len() {
                let node = condemned[i].node;
                if !stats[node].declared_dead {
                    stats[node].declared_dead = true;
                    live_nodes -= 1;
                    sharder.admit_load(node, capacities[node] + LEASE_DEMAND);
                    condemned.extend(pool.revoke_node(node));
                }
                i += 1;
            }
            let mut failure = None;
            for lease in &condemned {
                leases_expired += 1;
                sharder.release_load(lease.node, LEASE_DEMAND);
                recorder.record(Event::new(
                    lease.node as u16,
                    plan[lease.segment].start_slot as u32,
                    EventKind::LeaseExpired {
                        segment: lease.segment as u32,
                    },
                ));
                first_expiry.entry(lease.segment).or_insert(now);
                match pool.requeue(*lease, now) {
                    Ok(()) => {
                        leases_requeued += 1;
                        recorder.record(Event::new(
                            CONTROL_TRACK,
                            plan[lease.segment].start_slot as u32,
                            EventKind::LeaseRequeued {
                                segment: lease.segment as u32,
                            },
                        ));
                    }
                    Err(e) => failure = Some(e),
                }
            }
            if let Some(e) = failure {
                break Err(e);
            }

            // 2. Grant every ready segment a node with lease headroom.
            while sharder.any_fits(LEASE_DEMAND) {
                let Some((segment, attempt)) = pool.next_ready(now) else {
                    break;
                };
                let node = sharder
                    .pick_attached(LEASE_DEMAND, &class)
                    .expect("any_fits held");
                sharder.admit_load(node, LEASE_DEMAND);
                pool.grant(segment, attempt, node, now);
                leases_granted += 1;
                recorder.record(Event::new(
                    node as u16,
                    plan[segment].start_slot as u32,
                    EventKind::LeaseGranted {
                        segment: segment as u32,
                    },
                ));
                // A send can only fail if the worker thread panicked;
                // the lease then expires and the node is condemned
                // through the normal path.
                let _ = command_txs[node].send(WorkerCommand::Encode(Assignment {
                    segment: plan[segment],
                    attempt,
                }));
            }

            if reassembler.is_complete() {
                break Ok(());
            }
            if live_nodes == 0 {
                break Err(LeaseFailure::NoLiveNodes {
                    segment: pool.first_pending().unwrap_or(0),
                });
            }

            // 3. Wait for the next result, but never past the nearest
            // lease deadline or backoff expiry.
            let wait = pool
                .next_wakeup(now)
                .unwrap_or(Duration::from_millis(5))
                .max(Duration::from_millis(1));
            match result_rx.recv_timeout(wait) {
                Ok(result) => {
                    let now = Instant::now();
                    let segment = result.segment.index;
                    match pool.complete(segment) {
                        Some(lease) => sharder.release_load(lease.node, LEASE_DEMAND),
                        // A late result after expiry: the bytes are
                        // still good — drop any queued retry.
                        None => {
                            pool.cancel_pending(segment);
                        }
                    }
                    match reassembler.accept(segment, result.bytes) {
                        Ok(true) => {
                            let s = &mut stats[result.node];
                            s.segments += 1;
                            s.tiles += result.tiles;
                            s.energy_j += result.energy_j;
                            s.windows += result.windows;
                            s.window_misses += result.window_misses;
                            recorder.record(Event::new(
                                CONTROL_TRACK,
                                result.segment.start_slot as u32,
                                EventKind::SegmentReassembled {
                                    segment: segment as u32,
                                },
                            ));
                            if let Some(&t0) = first_expiry.get(&segment) {
                                recoveries.push(RecoveryRecord {
                                    segment,
                                    attempts: result.attempt,
                                    latency_secs: now.duration_since(t0).as_secs_f64(),
                                });
                            }
                        }
                        Ok(false) => duplicates += 1,
                        Err(conflict) => panic!("cluster determinism violated: {conflict}"),
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    unreachable!("coordinator holds a result sender")
                }
            }
        };

        for tx in &command_txs {
            let _ = tx.send(WorkerCommand::Shutdown);
        }
        run
    });
    drop(result_tx);

    run.map(|()| ClusterOutcome {
        segments: reassembler.plan().len(),
        bitstream: reassembler.assemble(),
        leases_granted,
        leases_expired,
        leases_requeued,
        duplicates,
        nodes: stats,
        recoveries,
        wall_secs: started.elapsed().as_secs_f64(),
    })
}

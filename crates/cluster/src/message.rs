//! Wire-shaped messages between the coordinator and its worker nodes.
//!
//! Everything that crosses the coordinator/worker channel is plain
//! data (`Serialize`/`Deserialize`), mirroring the
//! [`NodeCommand`](medvt_runtime::NodeCommand) contract: the in-process
//! mpsc channels these flow over today can be replaced by a wire
//! protocol without touching either endpoint's logic.

use medvt_encoder::SegmentSpec;
use serde::{Deserialize, Serialize};

/// Coordinator → worker: one leased unit of work.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    /// The segment to transcode.
    pub segment: SegmentSpec,
    /// 1-based delivery attempt (grows on every re-lease).
    pub attempt: usize,
}

/// Coordinator → worker: the full command set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkerCommand {
    /// Transcode one leased segment and reply with a
    /// [`SegmentResult`].
    Encode(Assignment),
    /// Drain and exit; the worker sends nothing further.
    Shutdown,
}

/// Worker → coordinator: one completed segment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentResult {
    /// The node that transcoded the segment.
    pub node: usize,
    /// The segment covered.
    pub segment: SegmentSpec,
    /// The attempt this result answers.
    pub attempt: usize,
    /// Concatenated tile bitstreams: slots in display order, tiles in
    /// tile-index order within each slot — the canonical reassembly
    /// layout.
    pub bytes: Vec<u8>,
    /// Tiles encoded.
    pub tiles: usize,
    /// Modeled energy of the node's server loop over this segment, J.
    pub energy_j: f64,
    /// Deadline windows the node's loop evaluated.
    pub windows: usize,
    /// Windows that ended with unfinished work.
    pub window_misses: usize,
}

/// Why the cluster gave up on a segment — the typed reject surfaced
/// after bounded lease retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LeaseFailure {
    /// The segment's lease expired on every attempt it was allowed.
    RetriesExhausted {
        /// The segment that could not be completed.
        segment: usize,
        /// Delivery attempts consumed (== the configured maximum).
        attempts: usize,
    },
    /// No live node remains to lease to.
    NoLiveNodes {
        /// The segment that was next in line.
        segment: usize,
    },
}

impl std::fmt::Display for LeaseFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LeaseFailure::RetriesExhausted { segment, attempts } => {
                write!(
                    f,
                    "segment {segment} failed after {attempts} lease attempts"
                )
            }
            LeaseFailure::NoLiveNodes { segment } => {
                write!(f, "no live nodes remain to lease segment {segment}")
            }
        }
    }
}

impl std::error::Error for LeaseFailure {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_wire_shaped() {
        let cmd = WorkerCommand::Encode(Assignment {
            segment: SegmentSpec {
                index: 2,
                start_gop: 4,
                gops: 2,
                start_slot: 32,
                slots: 16,
            },
            attempt: 1,
        });
        let json = serde_json::to_string(&cmd).expect("serializes");
        assert!(json.contains("Encode"), "{json}");
        assert!(json.contains("\"start_slot\":32"), "{json}");
        let fail = LeaseFailure::RetriesExhausted {
            segment: 2,
            attempts: 3,
        };
        assert_eq!(fail.to_string(), "segment 2 failed after 3 lease attempts");
    }
}

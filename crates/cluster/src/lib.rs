//! Coordinator/worker cluster serving: the two-tier layer above the
//! single-host online stack.
//!
//! The single-host stack (`medvt-admission` over `medvt-runtime`)
//! serves many users on one machine's sockets. This crate scales the
//! same machinery *out*: a coordinator splits a stream into GOP-aligned
//! [segment tasks](medvt_encoder::SegmentSpec), leases each segment to
//! a worker node in a heterogeneous fleet, and stitches the returned
//! bitstreams back together — byte-identical to a single-node encode,
//! even across worker deaths.
//!
//! | layer | piece | reused from |
//! |---|---|---|
//! | node selection | [`Sharder`](medvt_admission::Sharder) over per-node capacities | admission's shard policies |
//! | per-node serving | [`Node`](medvt_runtime::Node) command seam | runtime's server loop |
//! | work unit | [`SegmentSpec`](medvt_encoder::SegmentSpec) (contiguous GOP range) | encoder's GOP structure |
//! | fault model | [`LeasePool`] timeout/retry/backoff | new in this crate |
//! | output | [`Reassembler`] in-order stitch | encoder's open-loop determinism |
//!
//! Fault tolerance rests on one invariant inherited from
//! [`medvt_core::LiveWorkload`]: tiles encode open-loop, so a
//! segment's bytes depend only on (segment, stream) — never on which
//! node encoded it, on which attempt, or in what order. A lease that
//! expires simply re-queues; whichever node eventually delivers, the
//! reassembled stream is the same.
//!
//! Entry point: [`run_cluster`] / [`run_cluster_with`] (telemetry).

#![warn(missing_docs)]

mod coordinator;
mod lease;
mod message;
mod reassembly;
mod worker;

pub use coordinator::{
    mixed_fleet, run_cluster, run_cluster_with, ClusterConfig, ClusterOutcome, NodeRunStats,
    NodeSpec, RecoveryRecord,
};
pub use lease::{Lease, LeasePool};
pub use message::{Assignment, LeaseFailure, SegmentResult, WorkerCommand};
pub use reassembly::{Reassembler, ReassemblyConflict};

//! Counting-allocator proof that the steady-state encode hot path is
//! allocation-free.
//!
//! A wrapping global allocator counts every `alloc`/`realloc`. After a
//! warmup pass populates the scratch buffers (and the thread-local
//! search-memo pool), one full per-block encode iteration — block
//! gather, intra reference gather + mode decision, motion search,
//! motion compensation, luma + chroma residual coding, reconstruction
//! stitch — must perform **zero** heap allocations. A second test
//! checks the same property at tile granularity: per-tile allocations
//! must not scale with the number of blocks in the tile.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`, only adding a counter.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn alloc_events() -> u64 {
    ALLOC_EVENTS.load(Ordering::Relaxed)
}

use medvt_encoder::bits::BitWriter;
use medvt_encoder::{
    code_residual_into, encode_tile_with_scratch, EncScratch, EncoderConfig, IntraMode, IntraRefs,
    Qp, ResidualScratch, SearchSpec, TileConfig, TxPath,
};
use medvt_frame::synth::{BodyPart, MotionPattern, PhantomVideo};
use medvt_frame::{Frame, FrameKind, Plane, Rect, Resolution};
use medvt_motion::{Best, CostMetric, MotionVector, SearchContext, SearchWindow};

fn textured_plane(width: usize, height: usize, salt: usize) -> Plane {
    let mut p = Plane::new(width, height);
    for row in 0..height {
        for col in 0..width {
            p.set(col, row, ((col * 7 + row * 13 + salt * 31) % 256) as u8);
        }
    }
    p
}

/// One per-block encode iteration over caller-owned buffers — the loop
/// body of `encode_tile` expressed through the public `_into` kernels.
#[allow(clippy::too_many_arguments)]
fn block_iteration(
    cur: &Plane,
    reference: &Plane,
    recon: &mut Plane,
    block: Rect,
    writer: &mut BitWriter,
    orig: &mut Vec<u8>,
    pred: &mut Vec<u8>,
    tmp: &mut Vec<u8>,
    inter_pred: &mut Vec<u8>,
    recon_block: &mut Vec<u8>,
    refs: &mut IntraRefs,
    rs: &mut ResidualScratch,
) -> u64 {
    // Gather the block and its intra references.
    cur.copy_rect_into(&block, orig);
    refs.regather(recon, &block, &cur.bounds());
    let (_mode, intra_sad) = refs.best_mode_into(orig, block.w, block.h, pred, tmp);

    // Motion search: seeded best + a probe ring, early-terminated.
    let ctx = SearchContext::new(
        cur,
        reference,
        block,
        SearchWindow::W16,
        CostMetric::Sad,
        MotionVector::ZERO,
    );
    let mut best = Best::seeded(&ctx, &[MotionVector::ZERO]);
    for dy in -2i16..=2 {
        for dx in -2i16..=2 {
            best.try_candidate(&ctx, MotionVector::new(dx * 3, dy * 3));
        }
    }

    // Motion compensation + luma and chroma-geometry residual coding.
    reference.copy_block_clamped_into(
        block.x as isize + best.mv.x as isize,
        block.y as isize + best.mv.y as isize,
        block.w,
        block.h,
        inter_pred,
    );
    let luma = code_residual_into(
        orig,
        inter_pred,
        block.w,
        block.h,
        8,
        Qp::new(32).unwrap(),
        TxPath::F64,
        writer,
        rs,
        recon_block,
    );
    recon.write_rect(&block, recon_block);
    let chroma = code_residual_into(
        &orig[..block.area() / 4],
        &inter_pred[..block.area() / 4],
        block.w / 2,
        block.h / 2,
        4,
        Qp::new(34).unwrap(),
        TxPath::F64,
        writer,
        rs,
        recon_block,
    );
    intra_sad + best.cost + luma.bits + chroma.bits
}

#[test]
fn steady_state_block_iteration_allocates_nothing() {
    let cur = textured_plane(96, 96, 1);
    let reference = textured_plane(96, 96, 2);
    let mut recon = Plane::new(96, 96);
    let mut writer = BitWriter::new();
    let (mut orig, mut pred, mut tmp, mut inter_pred, mut recon_block) =
        (Vec::new(), Vec::new(), Vec::new(), Vec::new(), Vec::new());
    let mut refs = IntraRefs::default();
    let mut rs = ResidualScratch::default();

    let mut run = |block: Rect, writer: &mut BitWriter| {
        writer.clear();
        block_iteration(
            &cur,
            &reference,
            &mut recon,
            block,
            writer,
            &mut orig,
            &mut pred,
            &mut tmp,
            &mut inter_pred,
            &mut recon_block,
            &mut refs,
            &mut rs,
        )
    };

    // Warmup: grow every buffer, the bit writer and the thread-local
    // search-memo pool.
    let block = Rect::new(40, 40, 16, 16);
    let warm = run(block, &mut writer);
    let warm2 = run(block, &mut writer);
    assert_eq!(warm, warm2, "iteration must be deterministic");

    // Steady state: an entire block encode without touching the heap.
    let before = alloc_events();
    let steady = run(block, &mut writer);
    let after = alloc_events();
    assert_eq!(steady, warm, "steady-state iteration changed results");
    assert_eq!(
        after - before,
        0,
        "steady-state block iteration must not allocate"
    );
}

#[test]
fn per_tile_allocations_do_not_scale_with_block_count() {
    let video = PhantomVideo::builder(BodyPart::Brain)
        .resolution(Resolution::new(128, 128))
        .motion(MotionPattern::Pan { dx: 1.0, dy: 0.5 })
        .seed(9)
        .build();
    let f0 = video.render(0);
    let f1 = video.render(1);
    let refs: Vec<&Frame> = vec![&f0];
    let tcfg = TileConfig {
        qp: Qp::new(32).unwrap(),
        search: SearchSpec::Diamond,
        window: SearchWindow::W16,
    };
    let ecfg = EncoderConfig::default();
    let mut scratch = EncScratch::new();

    let mut measure = |tile: Rect| {
        // Warmup growing scratch for this geometry, then measure.
        encode_tile_with_scratch(
            &f1,
            &refs,
            FrameKind::Predicted,
            tile,
            &tcfg,
            &ecfg,
            &mut scratch,
        );
        let before = alloc_events();
        encode_tile_with_scratch(
            &f1,
            &refs,
            FrameKind::Predicted,
            tile,
            &tcfg,
            &ecfg,
            &mut scratch,
        );
        alloc_events() - before
    };

    let small = measure(Rect::new(0, 0, 32, 32)); // 4 blocks
    let large = measure(Rect::new(0, 0, 128, 128)); // 64 blocks
                                                    // Per-tile outputs (recon planes, bitstream) still allocate, but
                                                    // 16x the blocks must not mean 16x the allocations — the per-block
                                                    // path is scratch-backed. The slack covers bitstream buffer
                                                    // doubling on the larger output.
    assert!(
        large <= small + 24,
        "per-tile allocations scale with block count: {small} allocs for 4 blocks, \
         {large} for 64"
    );
}

#[test]
fn into_kernels_are_allocation_free_once_warm() {
    let qp = Qp::new(27).unwrap();
    let input: Vec<i32> = (0..64).map(|i| (i * 19 % 255) - 127).collect();
    let (mut coeffs, mut tmp, mut levels, mut rec) =
        (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    let mut refs = IntraRefs::default();
    let plane = textured_plane(32, 32, 3);
    let mut edge = Vec::new();

    // Warmup.
    medvt_encoder::transform::forward_into(8, &input, &mut coeffs, &mut tmp);
    medvt_encoder::quant::quantize_into(&coeffs, qp, &mut levels);
    medvt_encoder::quant::dequantize_into(&levels, qp, &mut rec);
    refs.regather(&plane, &Rect::new(8, 8, 8, 8), &plane.bounds());
    refs.predict_into(IntraMode::Planar, 8, 8, &mut edge);

    let before = alloc_events();
    medvt_encoder::transform::forward_into(8, &input, &mut coeffs, &mut tmp);
    medvt_encoder::quant::quantize_into(&coeffs, qp, &mut levels);
    medvt_encoder::quant::dequantize_into(&levels, qp, &mut rec);
    refs.regather(&plane, &Rect::new(8, 8, 8, 8), &plane.bounds());
    refs.predict_into(IntraMode::Planar, 8, 8, &mut edge);
    assert_eq!(
        alloc_events() - before,
        0,
        "warm _into kernels must not allocate"
    );
}

//! Bit-level entropy writer: exp-Golomb codes and transform-block
//! coefficient coding.
//!
//! The encoder produces a real bitstream (not an estimate), so bitrate
//! numbers in the experiment tables are measured from actual emitted
//! bytes. The coefficient syntax is a simplified CAVLC-style scheme:
//! zig-zag scan, `ue(last_significant)`, then per-coefficient
//! significance flags with signed exp-Golomb levels.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// An MSB-first bit writer.
///
/// Bits accumulate in a `u64` and flush to the byte buffer in whole
/// bytes, so `write_bits` / `write_ue` / `write_se` append runs of up
/// to 32 bits in O(1) amortized instead of poking the buffer once per
/// bit. Output is byte-for-byte identical to the retained per-bit
/// writer ([`reference::BitWriter`]) — enforced by differential
/// proptests and the frozen FNV bitstream goldens.
///
/// # Examples
///
/// ```
/// use medvt_encoder::bits::BitWriter;
///
/// let mut w = BitWriter::new();
/// w.write_bits(0b101, 3);
/// w.write_ue(4);
/// assert_eq!(w.bits_written(), 3 + 5);
/// let bytes = w.into_bytes();
/// assert_eq!(bytes.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Pending bits, right-aligned: the low `acc_bits` bits of `acc`
    /// are the tail of the stream. Bits above `acc_bits` are stale and
    /// never observed (the flush shifts them away before truncating).
    acc: u64,
    /// Number of pending bits in `acc` (always < 32 between calls, so
    /// a 32-bit append still fits the 64-bit accumulator).
    acc_bits: u8,
    bits: u64,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bits written so far.
    pub fn bits_written(&self) -> u64 {
        self.bits
    }

    /// Resets the writer to empty while keeping the buffer capacity,
    /// so a reused writer appends without reallocating.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.acc = 0;
        self.acc_bits = 0;
        self.bits = 0;
    }

    /// Appends a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        self.write_bits(bit as u32, 1);
    }

    /// Appends the `n` low bits of `value`, MSB first.
    ///
    /// # Panics
    ///
    /// Panics when `n > 32`.
    pub fn write_bits(&mut self, value: u32, n: u8) {
        assert!(n <= 32, "at most 32 bits at a time");
        // acc_bits < 32 on entry, so acc_bits + n <= 63 and the shift
        // never loses pending bits.
        let v = (value as u64) & ((1u64 << n) - 1);
        self.acc = (self.acc << n) | v;
        self.acc_bits += n;
        self.bits += n as u64;
        // Flush a whole 32-bit word at a time: one branch per call
        // instead of a per-byte loop.
        if self.acc_bits >= 32 {
            self.acc_bits -= 32;
            let word = (self.acc >> self.acc_bits) as u32;
            self.buf.extend_from_slice(&word.to_be_bytes());
        }
    }

    /// Appends an unsigned exp-Golomb code.
    ///
    /// The `len - 1` prefix zeros go out as one `write_bits` run (the
    /// seed writer looped `write_bit` per zero); codes longer than 32
    /// bits (`value >= u32::MAX`, 33 info bits) split into two runs.
    pub fn write_ue(&mut self, value: u32) {
        let v = value as u64 + 1;
        let len = 64 - v.leading_zeros() as u8; // bit length of v: 1..=33
        self.write_bits(0, len - 1);
        if len <= 32 {
            self.write_bits(v as u32, len);
        } else {
            self.write_bits((v >> 32) as u32, len - 32);
            self.write_bits(v as u32, 32);
        }
    }

    /// Appends a signed exp-Golomb code (HEVC `se(v)` mapping).
    pub fn write_se(&mut self, value: i32) {
        let mapped = if value <= 0 {
            (-2i64 * value as i64) as u32
        } else {
            (2i64 * value as i64 - 1) as u32
        };
        self.write_ue(mapped);
    }

    /// Pads with zero bits to the next byte boundary.
    pub fn byte_align(&mut self) {
        let rem = self.acc_bits % 8;
        if rem != 0 {
            self.write_bits(0, 8 - rem);
        }
    }

    /// Finishes the stream (byte-aligned) and returns the bytes.
    pub fn into_bytes(mut self) -> Vec<u8> {
        self.byte_align();
        while self.acc_bits >= 8 {
            self.acc_bits -= 8;
            self.buf.push((self.acc >> self.acc_bits) as u8);
        }
        self.buf
    }
}

/// Number of bits `ue(value)` occupies, without writing.
pub fn ue_len(value: u32) -> u64 {
    let v = value as u64 + 1;
    let len = 64 - v.leading_zeros() as u64;
    2 * len - 1
}

/// Number of bits `se(value)` occupies, without writing.
pub fn se_len(value: i32) -> u64 {
    let mapped = if value <= 0 {
        (-2i64 * value as i64) as u32
    } else {
        (2i64 * value as i64 - 1) as u32
    };
    ue_len(mapped)
}

/// Zig-zag scan order for an `n x n` block, cached per size.
///
/// The coder's block sizes (4 and 8) hit dedicated lock-free
/// [`OnceLock`] slots — the hot path never takes a mutex, and
/// concurrent first use computes at most once per size. Other sizes
/// fall back to a mutexed map.
pub fn zigzag(n: usize) -> &'static [usize] {
    static Z4: OnceLock<Box<[usize]>> = OnceLock::new();
    static Z8: OnceLock<Box<[usize]>> = OnceLock::new();
    match n {
        4 => Z4.get_or_init(|| compute_zigzag(4)),
        8 => Z8.get_or_init(|| compute_zigzag(8)),
        _ => {
            static CACHE: OnceLock<Mutex<HashMap<usize, &'static [usize]>>> = OnceLock::new();
            let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
            let mut guard = cache.lock().expect("zigzag cache poisoned");
            if let Some(&z) = guard.get(&n) {
                return z;
            }
            let leaked: &'static [usize] = Box::leak(compute_zigzag(n));
            guard.insert(n, leaked);
            leaked
        }
    }
}

/// The zig-zag anti-diagonal traversal, alternating direction.
fn compute_zigzag(n: usize) -> Box<[usize]> {
    let mut order = Vec::with_capacity(n * n);
    for s in 0..(2 * n - 1) {
        let range: Vec<usize> = (0..=s.min(n - 1)).rev().collect();
        let cells: Vec<(usize, usize)> = range
            .into_iter()
            .filter(|&i| s - i < n)
            .map(|i| (i, s - i))
            .collect();
        if s % 2 == 0 {
            for (r, c) in cells.into_iter().rev() {
                order.push(r * n + c);
            }
        } else {
            for (r, c) in cells {
                order.push(r * n + c);
            }
        }
    }
    order.into_boxed_slice()
}

/// Codes one quantized transform block into `w` and returns the number
/// of bits produced.
///
/// Syntax: `coded_block_flag` (1 bit); when set, `ue(last_sig)` in scan
/// order followed, for positions `0..=last_sig`, by a significance flag
/// and `se(level)` for significant positions.
///
/// # Panics
///
/// Panics when `levels.len()` is not `n * n`.
pub fn code_block(levels: &[i32], n: usize, w: &mut BitWriter) -> u64 {
    assert_eq!(levels.len(), n * n, "block must be {n}x{n}");
    let before = w.bits_written();
    let scan = zigzag(n);
    let last_sig = scan.iter().rposition(|&pos| levels[pos] != 0);
    match last_sig {
        None => w.write_bit(false),
        Some(last) => {
            w.write_bit(true);
            w.write_ue(last as u32);
            for &pos in &scan[..=last] {
                let level = levels[pos];
                if level == 0 {
                    w.write_bit(false);
                } else {
                    w.write_bit(true);
                    w.write_se(level);
                }
            }
        }
    }
    w.bits_written() - before
}

/// Decodes nothing — the substrate is an encoder-side model — but the
/// bit count of a block can be computed without a writer.
pub fn block_bits(levels: &[i32], n: usize) -> u64 {
    let scan = zigzag(n);
    let last_sig = scan.iter().rposition(|&pos| levels[pos] != 0);
    match last_sig {
        None => 1,
        Some(last) => {
            let mut bits = 1 + ue_len(last as u32);
            for &pos in &scan[..=last] {
                let level = levels[pos];
                bits += 1;
                if level != 0 {
                    bits += se_len(level);
                }
            }
            bits
        }
    }
}

/// The seed per-bit writer, kept verbatim as the executable
/// specification of the bitstream layout.
///
/// The word-batched [`BitWriter`] must emit byte-for-byte
/// identical streams for any call sequence (enforced by differential
/// proptests in `tests/kernel_differential.rs`); the kernel benchmark
/// measures it as the "before".
pub mod reference {
    /// Specification [`super::BitWriter`]: pushes one bit at a time
    /// into the byte buffer.
    #[derive(Debug, Clone, Default)]
    pub struct BitWriter {
        buf: Vec<u8>,
        /// Bits used in the trailing partial byte (0..8).
        partial: u8,
        bits: u64,
    }

    impl BitWriter {
        /// Creates an empty writer.
        pub fn new() -> Self {
            Self::default()
        }

        /// Total bits written so far.
        pub fn bits_written(&self) -> u64 {
            self.bits
        }

        /// Appends a single bit.
        pub fn write_bit(&mut self, bit: bool) {
            if self.partial == 0 {
                self.buf.push(0);
            }
            if bit {
                let last = self.buf.last_mut().expect("buffer non-empty");
                *last |= 1 << (7 - self.partial);
            }
            self.partial = (self.partial + 1) % 8;
            self.bits += 1;
        }

        /// Appends the `n` low bits of `value`, MSB first.
        ///
        /// # Panics
        ///
        /// Panics when `n > 32`.
        pub fn write_bits(&mut self, value: u32, n: u8) {
            assert!(n <= 32, "at most 32 bits at a time");
            for i in (0..n).rev() {
                self.write_bit((value >> i) & 1 == 1);
            }
        }

        /// Appends an unsigned exp-Golomb code (prefix zeros emitted
        /// one [`Self::write_bit`] call at a time — the loop the
        /// batched writer folds into a single run).
        pub fn write_ue(&mut self, value: u32) {
            let v = value as u64 + 1;
            let len = 64 - v.leading_zeros() as u8; // bit length of v
            for _ in 0..len - 1 {
                self.write_bit(false);
            }
            for i in (0..len).rev() {
                self.write_bit((v >> i) & 1 == 1);
            }
        }

        /// Appends a signed exp-Golomb code (HEVC `se(v)` mapping).
        pub fn write_se(&mut self, value: i32) {
            let mapped = if value <= 0 {
                (-2i64 * value as i64) as u32
            } else {
                (2i64 * value as i64 - 1) as u32
            };
            self.write_ue(mapped);
        }

        /// Pads with zero bits to the next byte boundary.
        pub fn byte_align(&mut self) {
            while self.partial != 0 {
                self.write_bit(false);
            }
        }

        /// Finishes the stream (byte-aligned) and returns the bytes.
        pub fn into_bytes(mut self) -> Vec<u8> {
            self.byte_align();
            self.buf
        }
    }

    /// Specification [`super::code_block`] driving the per-bit writer
    /// (same syntax, same scan tables).
    ///
    /// # Panics
    ///
    /// Panics when `levels.len()` is not `n * n`.
    pub fn code_block(levels: &[i32], n: usize, w: &mut BitWriter) -> u64 {
        assert_eq!(levels.len(), n * n, "block must be {n}x{n}");
        let before = w.bits_written();
        let scan = super::zigzag(n);
        let last_sig = scan.iter().rposition(|&pos| levels[pos] != 0);
        match last_sig {
            None => w.write_bit(false),
            Some(last) => {
                w.write_bit(true);
                w.write_ue(last as u32);
                for &pos in &scan[..=last] {
                    let level = levels[pos];
                    if level == 0 {
                        w.write_bit(false);
                    } else {
                        w.write_bit(true);
                        w.write_se(level);
                    }
                }
            }
        }
        w.bits_written() - before
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bitwriter_packs_msb_first() {
        let mut w = BitWriter::new();
        w.write_bits(0b1010_1100, 8);
        assert_eq!(w.into_bytes(), vec![0b1010_1100]);
    }

    #[test]
    fn bitwriter_pads_on_finish() {
        let mut w = BitWriter::new();
        w.write_bits(0b11, 2);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0b1100_0000]);
    }

    #[test]
    fn ue_small_values() {
        // ue(0) = "1", ue(1) = "010", ue(2) = "011".
        let mut w = BitWriter::new();
        w.write_ue(0);
        assert_eq!(w.bits_written(), 1);
        let mut w = BitWriter::new();
        w.write_ue(1);
        assert_eq!(w.bits_written(), 3);
        assert_eq!(w.into_bytes(), vec![0b0100_0000]);
        assert_eq!(ue_len(0), 1);
        assert_eq!(ue_len(1), 3);
        assert_eq!(ue_len(2), 3);
        assert_eq!(ue_len(3), 5);
    }

    #[test]
    fn se_mapping() {
        // se: 0→ue(0), 1→ue(1), -1→ue(2), 2→ue(3), -2→ue(4).
        assert_eq!(se_len(0), ue_len(0));
        assert_eq!(se_len(1), ue_len(1));
        assert_eq!(se_len(-1), ue_len(2));
        assert_eq!(se_len(2), ue_len(3));
        assert_eq!(se_len(-2), ue_len(4));
    }

    #[test]
    fn zigzag_4x4_starts_correctly() {
        let z = zigzag(4);
        assert_eq!(z.len(), 16);
        // First entries of the classic zig-zag: (0,0),(0,1),(1,0),(2,0),(1,1),(0,2)…
        assert_eq!(z[0], 0);
        assert!(z[1] == 1 || z[1] == 4); // direction convention
                                         // Must be a permutation.
        let mut sorted = z.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn zigzag_is_permutation_for_all_sizes() {
        for n in [4usize, 8, 16, 32] {
            let z = zigzag(n);
            let mut sorted = z.to_vec();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..n * n).collect::<Vec<_>>(), "n={n}");
        }
    }

    #[test]
    fn zigzag_concurrent_first_use_yields_one_table() {
        // All threads race through the lock-free fast path on first
        // use and must observe the same cached table (same address)
        // with correct contents.
        use std::sync::Barrier;
        let barrier = Barrier::new(8);
        let tables: Vec<(usize, usize)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    scope.spawn(|| {
                        barrier.wait();
                        (zigzag(4).as_ptr() as usize, zigzag(8).as_ptr() as usize)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for &(p4, p8) in &tables[1..] {
            assert_eq!(p4, tables[0].0, "4x4 table must be computed once");
            assert_eq!(p8, tables[0].1, "8x8 table must be computed once");
        }
        assert_eq!(zigzag(4)[..3], [0, 4, 1]);
        assert_eq!(zigzag(8).len(), 64);
    }

    #[test]
    fn empty_block_costs_one_bit() {
        let mut w = BitWriter::new();
        let bits = code_block(&[0; 16], 4, &mut w);
        assert_eq!(bits, 1);
        assert_eq!(block_bits(&[0; 16], 4), 1);
    }

    #[test]
    fn dc_only_block_is_cheap() {
        let mut levels = [0i32; 16];
        levels[0] = 3;
        let bits = block_bits(&levels, 4);
        // flag + ue(0) + sig + se(3) = 1 + 1 + 1 + 5 = 8.
        assert_eq!(bits, 8);
    }

    #[test]
    fn code_block_and_block_bits_agree() {
        let mut levels = [0i32; 64];
        levels[0] = -5;
        levels[9] = 2;
        levels[3] = 1;
        let mut w = BitWriter::new();
        let written = code_block(&levels, 8, &mut w);
        assert_eq!(written, block_bits(&levels, 8));
    }

    #[test]
    fn more_coefficients_cost_more_bits() {
        let sparse = {
            let mut l = [0i32; 64];
            l[0] = 4;
            l
        };
        let dense = {
            let mut l = [0i32; 64];
            for (i, v) in l.iter_mut().enumerate() {
                *v = if i % 3 == 0 { 2 } else { 0 };
            }
            l
        };
        assert!(block_bits(&dense, 8) > block_bits(&sparse, 8));
    }

    #[test]
    fn ue_long_codes_match_reference_writer() {
        // u32::MAX is the worst case: a 32-zero prefix plus a 33-bit
        // info field, which the batched writer must split across runs.
        for v in [0, 1, 255, 65_535, 1 << 20, u32::MAX - 1, u32::MAX] {
            let mut w = BitWriter::new();
            w.write_ue(v);
            let mut r = reference::BitWriter::new();
            r.write_ue(v);
            assert_eq!(w.bits_written(), r.bits_written(), "v={v}");
            assert_eq!(w.bits_written(), ue_len(v), "v={v}");
            assert_eq!(w.into_bytes(), r.into_bytes(), "v={v}");
        }
    }

    #[test]
    fn batched_writer_matches_reference_on_mixed_sequence() {
        let mut w = BitWriter::new();
        let mut r = reference::BitWriter::new();
        for i in 0..500u32 {
            match i % 5 {
                0 => {
                    w.write_bit(i % 2 == 0);
                    r.write_bit(i % 2 == 0);
                }
                1 => {
                    w.write_bits(i.wrapping_mul(2_654_435_761), (i % 33) as u8);
                    r.write_bits(i.wrapping_mul(2_654_435_761), (i % 33) as u8);
                }
                2 => {
                    w.write_ue(i * 37);
                    r.write_ue(i * 37);
                }
                3 => {
                    w.write_se(1000 - i as i32 * 7);
                    r.write_se(1000 - i as i32 * 7);
                }
                _ => {
                    w.byte_align();
                    r.byte_align();
                }
            }
            assert_eq!(w.bits_written(), r.bits_written(), "step {i}");
        }
        assert_eq!(w.into_bytes(), r.into_bytes());
    }

    proptest! {
        #[test]
        fn prop_writer_matches_estimator(
            levels in proptest::collection::vec(-64i32..=64, 16),
        ) {
            let mut w = BitWriter::new();
            let written = code_block(&levels, 4, &mut w);
            prop_assert_eq!(written, block_bits(&levels, 4));
            // Stream length in bytes covers the bits.
            let bytes = w.into_bytes();
            prop_assert!(bytes.len() as u64 * 8 >= written);
        }

        #[test]
        fn prop_ue_len_matches_writer(v in 0u32..100_000) {
            let mut w = BitWriter::new();
            w.write_ue(v);
            prop_assert_eq!(w.bits_written(), ue_len(v));
        }
    }
}
